package spblock_test

import (
	"fmt"

	"spblock"
)

// ExampleMTTKRP computes the mode-1 MTTKRP of the paper's Figure 1
// tensor against rank-2 factors.
func ExampleMTTKRP() {
	// The 3x3x3 tensor of Figure 1a (0-based coordinates).
	x := spblock.NewTensor(spblock.Dims{3, 3, 3}, 7)
	entries := [][4]int{
		{0, 0, 0, 5}, {0, 1, 1, 3}, {0, 1, 2, 1},
		{1, 0, 2, 2}, {1, 1, 1, 9}, {1, 2, 2, 7}, {2, 0, 0, 9},
	}
	for _, e := range entries {
		x.Append(int32(e[0]), int32(e[1]), int32(e[2]), float64(e[3]))
	}

	b := spblock.NewMatrix(3, 2) // mode-2 factor, rows 1,2,3
	c := spblock.NewMatrix(3, 2) // mode-3 factor, rows 10,20,30
	b.FillFunc(func(i, j int) float64 { return float64(i + 1) })
	c.FillFunc(func(i, j int) float64 { return float64(10 * (i + 1)) })

	out := spblock.NewMatrix(3, 2)
	if err := spblock.MTTKRP(x, b, c, out, spblock.Plan{Method: spblock.MethodMBRankB,
		Grid: [3]int{1, 3, 1}, RankBlockCols: 16}); err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		fmt.Printf("A[%d] = %v\n", i, out.Row(i))
	}
	// Output:
	// A[0] = [230 230]
	// A[1] = [1050 1050]
	// A[2] = [90 90]
}

// ExampleComputeStats reports a tensor's shape statistics in the
// vocabulary of the paper's Table II.
func ExampleComputeStats() {
	x := spblock.NewTensor(spblock.Dims{4, 8, 2}, 4)
	x.Append(0, 0, 0, 1)
	x.Append(0, 1, 0, 1) // same mode-2 fiber as the first entry
	x.Append(0, 0, 1, 1)
	x.Append(3, 7, 1, 1)
	s := spblock.ComputeStats(x)
	fmt.Printf("nnz=%d fibers=%d avgFiber=%.2f\n", s.NNZ, s.Fibers, s.AvgFiberLength)
	// Output:
	// nnz=4 fibers=3 avgFiber=1.33
}

// ExampleExecutor shows the intended production loop: preprocess once,
// run many times (as CP-ALS does).
func ExampleExecutor() {
	x := spblock.NewTensor(spblock.Dims{2, 2, 2}, 2)
	x.Append(0, 0, 0, 2)
	x.Append(1, 1, 1, 3)
	exec, err := spblock.NewExecutor(x, spblock.Plan{Method: spblock.MethodSPLATT})
	if err != nil {
		panic(err)
	}
	b := spblock.NewMatrix(2, 1)
	c := spblock.NewMatrix(2, 1)
	b.FillFunc(func(i, j int) float64 { return 1 })
	c.FillFunc(func(i, j int) float64 { return 10 })
	out := spblock.NewMatrix(2, 1)
	for iter := 0; iter < 3; iter++ { // e.g. ALS sweeps
		if err := exec.Run(b, c, out); err != nil {
			panic(err)
		}
	}
	fmt.Println(out.Row(0), out.Row(1))
	// Output:
	// [20] [30]
}
