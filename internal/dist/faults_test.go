package dist

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"spblock/internal/core"
	"spblock/internal/la"
	"spblock/internal/mpi"
	"spblock/internal/tensor"
)

// TestSubCommColorsDisjoint enumerates every rank of tall and wide 3D/4D
// grids and checks the color spaces: two ranks share a color exactly
// when they belong in the same sub-communicator. The former
// g*1000-offset scheme merged the B and C communicators once an inner
// grid dimension reached 500; the grids here cross that line.
func TestSubCommColorsDisjoint(t *testing.T) {
	cases := []struct {
		name     string
		q, rr, s int
		tParts   int
	}{
		{"tall-3D", 1, 600, 1, 1},
		{"wide-3D", 600, 1, 1, 1},
		{"tall-4D", 1, 512, 1, 2},
		{"boxy-4D", 4, 500, 1, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			innerP := tc.q * tc.rr * tc.s
			p := innerP * tc.tParts
			type coord struct{ g, x, y, z, inner int }
			coords := make([]coord, p)
			colors := make([][4]int, p)
			for r := 0; r < p; r++ {
				g := r / innerP
				inner := r % innerP
				x := inner / (tc.rr * tc.s)
				y := (inner / tc.s) % tc.rr
				z := inner % tc.s
				coords[r] = coord{g, x, y, z, inner}
				b, c, a, gg := subCommColors(g, x, y, z, inner, p, tc.tParts)
				colors[r] = [4]int{b, c, a, gg}
			}
			// Kinds must never collide across each other…
			seen := map[int]int{}
			for r := 0; r < p; r++ {
				for kind := 0; kind < 4; kind++ {
					if prev, ok := seen[colors[r][kind]]; ok && prev != kind {
						t.Fatalf("color %d used by kinds %d and %d", colors[r][kind], prev, kind)
					}
					seen[colors[r][kind]] = kind
				}
			}
			// …and within a kind, equal color must mean same communicator.
			for i := 0; i < p; i++ {
				for j := i + 1; j < p; j++ {
					ci, cj := coords[i], coords[j]
					wants := [4]bool{
						ci.g == cj.g && ci.y == cj.y,
						ci.g == cj.g && ci.z == cj.z,
						ci.g == cj.g && ci.x == cj.x,
						ci.inner == cj.inner,
					}
					for kind := 0; kind < 4; kind++ {
						if (colors[i][kind] == colors[j][kind]) != wants[kind] {
							t.Fatalf("kind %d: ranks %d/%d coords %+v/%+v: same-color=%v want %v",
								kind, i, j, ci, cj, colors[i][kind] == colors[j][kind], wants[kind])
						}
					}
				}
			}
		})
	}
}

// TestSubCommSplitTallGrid is the end-to-end regression for the color
// collision: on a 1×600×1 inner grid the old scheme fused the B
// communicator of y=500 with the C communicator (z+500 = 500), so the
// split produced wrongly-sized groups. The fixed colors must yield
// B groups of size 1 and C groups spanning all 600 ranks.
func TestSubCommSplitTallGrid(t *testing.T) {
	const q, rr, s, tParts = 1, 600, 1, 1
	const p = q * rr * s * tParts
	_, err := mpi.Run(p, mpi.Zero(), func(c *mpi.Comm) error {
		inner := c.Rank() % (q * rr * s)
		g := c.Rank() / (q * rr * s)
		x := inner / (rr * s)
		y := (inner / s) % rr
		z := inner % s
		bColor, cColor, aColor, gColor := subCommColors(g, x, y, z, inner, p, tParts)
		bComm, err := c.Split(bColor, inner)
		if err != nil {
			return err
		}
		cComm, err := c.Split(cColor, inner)
		if err != nil {
			return err
		}
		aComm, err := c.Split(aColor, inner)
		if err != nil {
			return err
		}
		gComm, err := c.Split(gColor, g)
		if err != nil {
			return err
		}
		if bComm.Size() != 1 {
			return fmt.Errorf("rank %d: B group size %d, want 1", c.Rank(), bComm.Size())
		}
		if cComm.Size() != p {
			return fmt.Errorf("rank %d: C group size %d, want %d", c.Rank(), cComm.Size(), p)
		}
		if aComm.Size() != p {
			return fmt.Errorf("rank %d: A group size %d, want %d", c.Rank(), aComm.Size(), p)
		}
		if gComm.Size() != 1 {
			return fmt.Errorf("rank %d: G group size %d, want 1", c.Rank(), gComm.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// poisonedRunner is a blockRunner that always fails.
type poisonedRunner struct{}

func (poisonedRunner) Run(b, c, out *la.Matrix) error {
	return fmt.Errorf("injected executor failure")
}

func TestPoisonedExecutorSurfacesError(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := randCOO(rng, tensor.Dims{16, 16, 16}, 400)
	rank := 8
	b := randMatrix(rng, 16, rank)
	c := randMatrix(rng, 16, rank)
	eng, err := NewEngine(x, rank, Config{
		Ranks: 4,
		Plan:  core.Plan{Method: core.MethodSPLATT, Workers: 1},
		Model: mpi.Zero(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range eng.execs {
		eng.execs[i] = poisonedRunner{}
	}
	res, err := eng.Run(b, c)
	if err == nil {
		t.Fatal("poisoned executor did not surface as an error")
	}
	if !strings.Contains(err.Error(), "block executor") {
		t.Fatalf("error does not identify the executor: %v", err)
	}
	if res == nil {
		t.Fatal("partial result missing on failure")
	}
}

func TestMTTKRPValidatesFactorShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := randCOO(rng, tensor.Dims{8, 8, 8}, 50)
	cfg := Config{Ranks: 2, Plan: core.Plan{Method: core.MethodSPLATT, Workers: 1}}
	cases := []struct {
		name    string
		bCols   int
		cCols   int
		wantSub string
	}{
		{"rank mismatch", 16, 8, "rank mismatch"},
		{"zero rank", 0, 0, "rank must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := randMatrix(rng, 8, tc.bCols)
			c := randMatrix(rng, 8, tc.cCols)
			_, err := MTTKRP(x, b, c, cfg)
			if err == nil {
				t.Fatal("bad factors accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestMTTKRPCorrectUnderLinkFaults(t *testing.T) {
	// The reliability protocol must make a lossy network look like a
	// perfect one: the distributed result stays bit-identical to the
	// clean run, with the loss visible only in the telemetry.
	rng := rand.New(rand.NewSource(23))
	x := randCOO(rng, tensor.Dims{24, 24, 24}, 800)
	rank := 16
	b := randMatrix(rng, 24, rank)
	c := randMatrix(rng, 24, rank)

	clean, err := MTTKRP(x, b, c, Config{Ranks: 4, Model: mpi.Zero(),
		Plan: core.Plan{Method: core.MethodSPLATT, Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}

	plan := mpi.NewFaultPlan(31)
	plan.DropProb = 0.05
	plan.DupProb = 0.1
	plan.CorruptProb = 0.05
	plan.Timeout = 100 * time.Millisecond
	faulted, err := MTTKRP(x, b, c, Config{Ranks: 4, Model: mpi.Zero(), Faults: plan,
		Plan: core.Plan{Method: core.MethodSPLATT, Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if d := faulted.Out.MaxAbsDiff(clean.Out); d != 0 {
		t.Fatalf("faulted network changed the result by %v", d)
	}
	if faulted.Stats.TotalRetries() == 0 {
		t.Fatal("no retries recorded; the plan did not bite")
	}
}
