package dist

import (
	"math"
	"math/rand"
	"testing"

	"spblock/internal/core"
	"spblock/internal/cpd"
	"spblock/internal/la"
	"spblock/internal/mpi"
	"spblock/internal/tensor"
)

// plantedTensor builds a dense exactly-rank-r tensor.
func plantedTensor(seed int64, dims tensor.Dims, r int) *tensor.COO {
	rng := rand.New(rand.NewSource(seed))
	var f [3]*la.Matrix
	for n := 0; n < 3; n++ {
		f[n] = la.NewMatrix(dims[n], r)
		for i := range f[n].Data {
			f[n].Data[i] = rng.Float64() + 0.1
		}
	}
	t := tensor.NewCOO(dims, dims[0]*dims[1]*dims[2])
	for i := 0; i < dims[0]; i++ {
		for j := 0; j < dims[1]; j++ {
			for k := 0; k < dims[2]; k++ {
				var s float64
				for q := 0; q < r; q++ {
					s += f[0].At(i, q) * f[1].At(j, q) * f[2].At(k, q)
				}
				t.Append(tensor.Index(i), tensor.Index(j), tensor.Index(k), s)
			}
		}
	}
	return t
}

func TestDistCPALSValidation(t *testing.T) {
	x := plantedTensor(1, tensor.Dims{4, 4, 4}, 1)
	cfg := Config{Ranks: 2, Model: mpi.Zero(), Plan: core.Plan{Method: core.MethodSPLATT, Workers: 1}}
	if _, err := CPALS(x, cfg, CPOptions{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	bad := tensor.NewCOO(tensor.Dims{2, 2, 2}, 0)
	bad.Append(5, 0, 0, 1)
	if _, err := CPALS(bad, cfg, CPOptions{Rank: 2}); err == nil {
		t.Fatal("invalid tensor accepted")
	}
	// Rank not divisible by RankParts fails at engine construction.
	cfg4 := cfg
	cfg4.Ranks = 4
	cfg4.RankParts = 2
	if _, err := CPALS(x, cfg4, CPOptions{Rank: 3}); err == nil {
		t.Fatal("indivisible rank accepted with 4D partitioning")
	}
}

func TestDistCPALSMatchesSharedMemoryTrajectory(t *testing.T) {
	// Same seed, same data: the distributed decomposition must follow
	// the shared-memory decomposition's fit trajectory (the MTTKRP
	// results agree to float round-off, and everything downstream is
	// identical arithmetic).
	x := plantedTensor(2, tensor.Dims{10, 9, 8}, 3)
	const rank = 4
	const iters = 8

	shared, err := cpd.CPALS(x, cpd.Options{Rank: rank, MaxIters: iters, Tol: 1e-14, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"3D p=4", Config{Ranks: 4, Model: mpi.Zero(), Plan: core.Plan{Method: core.MethodSPLATT, Workers: 1}}},
		{"4D p=4 t=2", Config{Ranks: 4, RankParts: 2, Model: mpi.Zero(), Plan: core.Plan{Method: core.MethodSPLATT, Workers: 1}}},
		{"3D blocked", Config{Ranks: 2, Model: mpi.DefaultCluster(), Plan: core.Plan{Method: core.MethodMBRankB, Grid: [3]int{1, 2, 1}, RankBlockCols: 16, Workers: 1}}},
	} {
		res, err := CPALS(x, tc.cfg, CPOptions{Rank: rank, MaxIters: iters, Tol: 1e-14, Seed: 6})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(res.Fits) != len(shared.Fits) {
			t.Fatalf("%s: %d sweeps vs shared %d", tc.name, len(res.Fits), len(shared.Fits))
		}
		for i := range res.Fits {
			if math.Abs(res.Fits[i]-shared.Fits[i]) > 1e-8 {
				t.Fatalf("%s: sweep %d fit %v vs shared %v", tc.name, i, res.Fits[i], shared.Fits[i])
			}
		}
	}
}

func TestDistCPALSAccountsCosts(t *testing.T) {
	x := plantedTensor(3, tensor.Dims{8, 8, 8}, 2)
	cfg := Config{Ranks: 4, Model: mpi.DefaultCluster(), Plan: core.Plan{Method: core.MethodSPLATT, Workers: 1}}
	res, err := CPALS(x, cfg, CPOptions{Rank: 2, MaxIters: 4, Tol: 1e-14, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ModeledSeconds <= 0 {
		t.Fatal("no modeled time accumulated")
	}
	if res.CommBytes <= 0 {
		t.Fatal("no communication accounted")
	}
	if res.Iters == 0 || res.Fit() <= 0 {
		t.Fatalf("decomposition did not progress: %+v", res)
	}
}

func TestDistCPALSConverges(t *testing.T) {
	x := plantedTensor(4, tensor.Dims{6, 6, 6}, 2)
	cfg := Config{Ranks: 2, Model: mpi.Zero(), Plan: core.Plan{Method: core.MethodSPLATT, Workers: 1}}
	res, err := CPALS(x, cfg, CPOptions{Rank: 2, MaxIters: 400, Tol: 1e-7, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge (fit %v after %d sweeps)", res.Fit(), res.Iters)
	}
	if res.Fit() < 0.95 {
		t.Fatalf("fit = %v", res.Fit())
	}
}

func TestEngineReuse(t *testing.T) {
	// Run must be repeatable and rank-checked.
	rng := rand.New(rand.NewSource(5))
	x := randCOO(rng, tensor.Dims{12, 12, 12}, 300)
	eng, err := NewEngine(x, 8, Config{Ranks: 4, Model: mpi.Zero(),
		Plan: core.Plan{Method: core.MethodSPLATT, Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	b := randMatrix(rng, 12, 8)
	c := randMatrix(rng, 12, 8)
	r1, err := eng.Run(b, c)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Run(b, c)
	if err != nil {
		t.Fatal(err)
	}
	if d := r1.Out.MaxAbsDiff(r2.Out); d != 0 {
		t.Fatalf("engine runs differ by %v", d)
	}
	if _, err := eng.Run(randMatrix(rng, 12, 4), c); err == nil {
		t.Fatal("wrong-rank factors accepted")
	}
	if _, err := eng.Run(randMatrix(rng, 5, 8), c); err == nil {
		t.Fatal("wrong-shape factors accepted")
	}
	if _, err := NewEngine(x, 0, Config{Ranks: 2}); err == nil {
		t.Fatal("rank 0 engine accepted")
	}
}
