package dist

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"spblock/internal/core"
	"spblock/internal/mpi"
	"spblock/internal/tensor"
)

func chaosConfig(faults *mpi.FaultPlan) Config {
	return Config{
		Ranks:  4,
		Plan:   core.Plan{Method: core.MethodSPLATT, Workers: 1},
		Model:  mpi.Zero(),
		Faults: faults,
	}
}

func TestDistCPALSUnarmedPlanIdenticalTrajectory(t *testing.T) {
	// An unarmed fault plan must be invisible: the decomposition
	// trajectory is bit-identical to a run without the fault layer and
	// all telemetry stays zero.
	x := plantedTensor(8, tensor.Dims{10, 9, 8}, 3)
	opts := CPOptions{Rank: 4, MaxIters: 6, Tol: 1e-14, Seed: 5}
	clean, err := CPALS(x, chaosConfig(nil), opts)
	if err != nil {
		t.Fatal(err)
	}
	armedless, err := CPALS(x, chaosConfig(mpi.NewFaultPlan(1)), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean.Fits, armedless.Fits) {
		t.Fatalf("unarmed plan changed the trajectory:\n%v\nvs\n%v", clean.Fits, armedless.Fits)
	}
	if armedless.Comm.Faulted() {
		t.Fatalf("telemetry nonzero on a clean run: %+v", armedless.Comm)
	}
	if armedless.SurvivingRanks != 4 {
		t.Fatalf("surviving ranks = %d, want 4", armedless.SurvivingRanks)
	}
}

func TestDistCPALSCompletesUnderLinkFaults(t *testing.T) {
	// A lossy-but-recoverable network: drops, dups and corruption within
	// the retry budget. The decomposition must finish with the exact
	// fault-free trajectory (the protocol re-delivers identical bytes),
	// reporting the effort in CPResult.Comm.
	x := plantedTensor(8, tensor.Dims{10, 9, 8}, 3)
	opts := CPOptions{Rank: 4, MaxIters: 4, Tol: 1e-14, Seed: 5}
	clean, err := CPALS(x, chaosConfig(nil), opts)
	if err != nil {
		t.Fatal(err)
	}
	plan := mpi.NewFaultPlan(17)
	plan.DropProb = 0.01
	plan.DupProb = 0.05
	plan.CorruptProb = 0.01
	plan.DelayProb = 0.05
	plan.DelaySec = 1e-4
	plan.Timeout = 100 * time.Millisecond
	res, err := CPALS(x, chaosConfig(plan), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean.Fits, res.Fits) {
		t.Fatalf("link faults changed the trajectory:\n%v\nvs\n%v", clean.Fits, res.Fits)
	}
	if res.Comm.Retries == 0 && res.Comm.Timeouts == 0 {
		t.Fatalf("no reliability effort recorded: %+v", res.Comm)
	}
	if res.Comm.Crashes != 0 || res.SurvivingRanks != 4 {
		t.Fatalf("phantom crash: %+v surviving %d", res.Comm, res.SurvivingRanks)
	}
}

func TestDistCPALSDegradesAfterCrash(t *testing.T) {
	// Rank 3 dies a few operations into the first distributed MTTKRP.
	// The driver must re-partition over the three survivors and finish
	// the decomposition degraded — no panic, no hang, full telemetry.
	x := plantedTensor(8, tensor.Dims{10, 9, 8}, 3)
	plan := mpi.NewFaultPlan(3)
	plan.CrashRank = 3
	plan.CrashAfterOps = 5
	plan.Timeout = 50 * time.Millisecond
	plan.MaxRetries = 2
	done := make(chan struct{})
	var res *CPResult
	var err error
	go func() {
		defer close(done)
		res, err = CPALS(x, chaosConfig(plan), CPOptions{Rank: 4, MaxIters: 5, Tol: 1e-14, Seed: 5})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("crashed decomposition hung")
	}
	if err != nil {
		t.Fatalf("degradation failed: %v", err)
	}
	if res.SurvivingRanks != 3 {
		t.Fatalf("surviving ranks = %d, want 3", res.SurvivingRanks)
	}
	if res.Comm.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", res.Comm.Crashes)
	}
	if res.Comm.SweepRetries == 0 {
		t.Fatal("crash recovery did not count a sweep retry")
	}
	if res.Comm.DegradedSweeps == 0 {
		t.Fatal("no degraded sweeps reported")
	}
	if res.Iters != 5 || res.Fit() <= 0.5 {
		t.Fatalf("degraded decomposition did not progress: iters=%d fit=%v", res.Iters, res.Fit())
	}
	// The crashed run must match the trajectory of a clean 3-rank run
	// from the restart point onward in spirit: at minimum, the fits are
	// monotone-ish and finite.
	for i, f := range res.Fits {
		if f != f || f < -1 || f > 1+1e-9 {
			t.Fatalf("fit %d out of range: %v", i, f)
		}
	}
}

func TestDistCPALSUnrecoverableFaultsError(t *testing.T) {
	// Total packet loss exhausts every retry and every sweep restart;
	// the decomposition must surface an error — never hang.
	x := plantedTensor(8, tensor.Dims{8, 8, 8}, 2)
	plan := mpi.NewFaultPlan(9)
	plan.DropProb = 1.0
	plan.MaxRetries = 1
	plan.Timeout = 20 * time.Millisecond
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = CPALS(x, chaosConfig(plan), CPOptions{Rank: 2, MaxIters: 3, Seed: 1, MaxSweepRetries: 1})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("unrecoverable run hung")
	}
	if err == nil {
		t.Fatal("total loss did not surface as an error")
	}
	if !errors.Is(err, mpi.ErrTimeout) {
		t.Fatalf("error does not carry ErrTimeout: %v", err)
	}
}

func TestRecoverSweepRepartitionsOnCrash(t *testing.T) {
	// Unit test of the degradation decision: a transient error retries
	// in place; a crash shrinks the world and rebuilds the engines.
	x := plantedTensor(8, tensor.Dims{10, 9, 8}, 3)
	cfg := chaosConfig(mpi.NewFaultPlan(1))
	res := &CPResult{SurvivingRanks: cfg.Ranks}
	var pts [3]*tensor.COO
	var engines [3]*Engine
	for n := 0; n < 3; n++ {
		pt := x // orientation does not matter for this test
		pts[n] = pt
		eng, err := NewEngine(pt, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		engines[n] = eng
	}
	k := &distKernel{dims: x.Dims[:], pts: pts, cfg: cfg, rank: 4,
		engines: engines, res: res, degradedAt: -1}

	if !k.RecoverSweep(2, 0, 0, fmt.Errorf("transient: %w", mpi.ErrTimeout)) {
		t.Fatal("transient failure not retryable")
	}
	if k.cfg.Ranks != 4 || k.degradedAt != -1 {
		t.Fatal("transient retry must not re-partition")
	}

	crashErr := &mpi.RankFailure{Rank: 2, Peer: -1, Collective: "Barrier", Err: mpi.ErrCrashed}
	if !k.RecoverSweep(3, 1, 0, crashErr) {
		t.Fatal("single crash not recoverable")
	}
	if k.cfg.Ranks != 3 {
		t.Fatalf("world not shrunk: %d ranks", k.cfg.Ranks)
	}
	if k.cfg.Faults.CrashRank != -1 {
		t.Fatal("crash fault still armed after re-partition")
	}
	if res.Comm.Crashes != 1 || k.degradedAt != 3 {
		t.Fatalf("telemetry wrong: crashes=%d degradedAt=%d", res.Comm.Crashes, k.degradedAt)
	}

	// Losing everyone is not recoverable.
	all := errors.Join(
		&mpi.RankFailure{Rank: 0, Peer: -1, Collective: "Barrier", Err: mpi.ErrCrashed},
		&mpi.RankFailure{Rank: 1, Peer: -1, Collective: "Barrier", Err: mpi.ErrCrashed},
		&mpi.RankFailure{Rank: 2, Peer: -1, Collective: "Barrier", Err: mpi.ErrCrashed},
	)
	if k.RecoverSweep(4, 0, 0, all) {
		t.Fatal("losing all remaining ranks reported recoverable")
	}
}
