package dist

import (
	"fmt"
	"math"
	"math/rand"

	"spblock/internal/engine"
	"spblock/internal/la"
	"spblock/internal/tensor"
)

// CPOptions configures a distributed CP-ALS decomposition.
type CPOptions struct {
	// Rank is the decomposition rank R. Required; must be divisible by
	// the configured RankParts.
	Rank int
	// MaxIters bounds the ALS sweeps. Default 20.
	MaxIters int
	// Tol stops iteration when the fit improves by less than this.
	// Default 1e-5.
	Tol float64
	// Seed drives the random factor initialisation.
	Seed int64
}

// CPResult reports a distributed decomposition.
type CPResult struct {
	Lambda    []float64
	Factors   [3]*la.Matrix
	Fits      []float64
	Iters     int
	Converged bool
	// ModeledSeconds accumulates the modeled parallel time of every
	// distributed MTTKRP executed (3 per sweep) — the quantity a real
	// cluster would spend in the kernel this paper optimises.
	ModeledSeconds float64
	// CommBytes accumulates point-to-point payload bytes across all
	// MTTKRP calls.
	CommBytes int64
}

// Fit returns the final fit, or 0 before any sweep ran.
func (r *CPResult) Fit() float64 {
	if len(r.Fits) == 0 {
		return 0
	}
	return r.Fits[len(r.Fits)-1]
}

// CPALS runs the full CP-ALS decomposition with every MTTKRP executed
// on the distributed runtime (one engine per mode, partitioned once).
// The R×R normal-equation solves and column normalisations run
// centrally — they are O(I·R²) work against the MTTKRP's O(nnz·R),
// which is the standard practice the paper's distributed evaluation
// follows (it measures MTTKRP time).
func CPALS(t *tensor.COO, cfg Config, opts CPOptions) (*CPResult, error) {
	if opts.Rank <= 0 {
		return nil, fmt.Errorf("dist: rank must be positive, got %d", opts.Rank)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 20
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-5
	}
	r := opts.Rank

	// One engine per mode, partitioned once per decomposition. The
	// permuted inputs are zero-copy views (engine.PermuteView); the
	// partitioner and block builder only read them.
	var engines [3]*Engine
	for n := 0; n < 3; n++ {
		pt, err := engine.PermuteView(t, engine.Modes[n].Perm)
		if err != nil {
			return nil, err
		}
		eng, err := NewEngine(pt, r, cfg)
		if err != nil {
			return nil, fmt.Errorf("dist: mode-%d engine: %w", n+1, err)
		}
		engines[n] = eng
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	res := &CPResult{Lambda: make([]float64, r)}
	grams := [3]*la.Matrix{}
	for n := 0; n < 3; n++ {
		m := la.NewMatrix(t.Dims[n], r)
		for i := range m.Data {
			m.Data[i] = rng.Float64()
		}
		res.Factors[n] = m
		grams[n] = la.Gram(m)
	}

	normX := math.Sqrt(t.NormSquared())
	var lastMTTKRP *la.Matrix

	prevFit := 0.0
	for iter := 0; iter < opts.MaxIters; iter++ {
		for n := 0; n < 3; n++ {
			mp := engine.Modes[n]
			dr, err := engines[n].Run(res.Factors[mp.BFactor], res.Factors[mp.CFactor])
			if err != nil {
				return res, err
			}
			res.ModeledSeconds += dr.ModeledSeconds
			res.CommBytes += dr.Stats.TotalBytes()
			if n == 2 {
				lastMTTKRP = dr.Out
			}
			v := la.Hadamard(grams[mp.BFactor], grams[mp.CFactor])
			res.Factors[n].CopyFrom(dr.Out)
			if err := la.SolveSPD(v, res.Factors[n]); err != nil {
				return res, fmt.Errorf("dist: mode-%d solve: %w", n+1, err)
			}
			copy(res.Lambda, la.NormalizeColumns(res.Factors[n]))
			for q := 0; q < r; q++ {
				if res.Lambda[q] == 0 {
					for i := 0; i < res.Factors[n].Rows; i++ {
						res.Factors[n].Set(i, q, rng.Float64())
					}
				}
			}
			grams[n] = la.Gram(res.Factors[n])
		}

		fit := distFit(normX, res, grams, lastMTTKRP)
		res.Fits = append(res.Fits, fit)
		res.Iters = iter + 1
		if iter > 0 && math.Abs(fit-prevFit) < opts.Tol {
			res.Converged = true
			break
		}
		prevFit = fit
	}
	return res, nil
}

// distFit mirrors the shared-memory fit computation.
func distFit(normX float64, res *CPResult, grams [3]*la.Matrix, lastMTTKRP *la.Matrix) float64 {
	r := len(res.Lambda)
	gAll := la.Hadamard(la.Hadamard(grams[0], grams[1]), grams[2])
	var normM2 float64
	for p := 0; p < r; p++ {
		row := gAll.Row(p)
		for q := 0; q < r; q++ {
			normM2 += res.Lambda[p] * res.Lambda[q] * row[q]
		}
	}
	if normM2 < 0 {
		normM2 = 0
	}
	var inner float64
	c := res.Factors[2]
	for i := 0; i < c.Rows; i++ {
		crow, mrow := c.Row(i), lastMTTKRP.Row(i)
		for q := 0; q < r; q++ {
			inner += res.Lambda[q] * crow[q] * mrow[q]
		}
	}
	residual2 := normX*normX + normM2 - 2*inner
	if residual2 < 0 {
		residual2 = 0
	}
	if normX == 0 {
		return 1
	}
	return 1 - math.Sqrt(residual2)/normX
}
