package dist

import (
	"fmt"
	"math"

	"spblock/internal/als"
	"spblock/internal/engine"
	"spblock/internal/la"
	"spblock/internal/metrics"
	"spblock/internal/tensor"
)

// CPOptions configures a distributed CP-ALS decomposition.
type CPOptions struct {
	// Rank is the decomposition rank R. Required; must be divisible by
	// the configured RankParts.
	Rank int
	// MaxIters bounds the ALS sweeps. Default 20.
	MaxIters int
	// Tol stops iteration when the fit improves by less than this.
	// Default 1e-5.
	Tol float64
	// Seed drives the random factor initialisation.
	Seed int64
}

// CPResult reports a distributed decomposition.
type CPResult struct {
	Lambda    []float64
	Factors   [3]*la.Matrix
	Fits      []float64
	Iters     int
	Converged bool
	// ModeledSeconds accumulates the modeled parallel time of every
	// distributed MTTKRP executed (3 per sweep) — the quantity a real
	// cluster would spend in the kernel this paper optimises.
	ModeledSeconds float64
	// CommBytes accumulates point-to-point payload bytes across all
	// MTTKRP calls.
	CommBytes int64
	// Phases buckets the driver-side wall time by phase (MTTKRP vs solve
	// vs fit) — see metrics.PhaseTimes. The MTTKRP bucket measures the
	// in-process simulation, not the modeled cluster time.
	Phases metrics.PhaseTimes
}

// Fit returns the final fit, or 0 before any sweep ran.
func (r *CPResult) Fit() float64 {
	if len(r.Fits) == 0 {
		return 0
	}
	return r.Fits[len(r.Fits)-1]
}

// distKernel adapts the distributed runtime to the shared ALS core:
// each mode product runs on its partitioned engine, the result is
// copied into the core's output buffer, and the modeled time /
// communication volume accumulate on the CPResult as they always did.
type distKernel struct {
	dims    []int
	engines [3]*Engine
	res     *CPResult
}

func (k *distKernel) Dims() []int { return k.dims }

func (k *distKernel) MTTKRP(mode int, factors []*la.Matrix, out *la.Matrix) error {
	mp := engine.Modes[mode]
	dr, err := k.engines[mode].Run(factors[mp.BFactor], factors[mp.CFactor])
	if err != nil {
		return err
	}
	k.res.ModeledSeconds += dr.ModeledSeconds
	k.res.CommBytes += dr.Stats.TotalBytes()
	out.CopyFrom(dr.Out)
	return nil
}

// CPALS runs the full CP-ALS decomposition with every MTTKRP executed
// on the distributed runtime (one engine per mode, partitioned once).
// The R×R normal-equation solves and column normalisations run
// centrally — they are O(I·R²) work against the MTTKRP's O(nnz·R),
// which is the standard practice the paper's distributed evaluation
// follows (it measures MTTKRP time). The sweep loop is the shared
// internal/als core, so the trajectory matches cpd.CPALS bit for bit
// when the kernels agree numerically.
func CPALS(t *tensor.COO, cfg Config, opts CPOptions) (*CPResult, error) {
	if opts.Rank <= 0 {
		return nil, fmt.Errorf("dist: rank must be positive, got %d", opts.Rank)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 20
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-5
	}
	r := opts.Rank

	// One engine per mode, partitioned once per decomposition. The
	// permuted inputs are zero-copy views (engine.PermuteView); the
	// partitioner and block builder only read them.
	var engines [3]*Engine
	for n := 0; n < 3; n++ {
		pt, err := engine.PermuteView(t, engine.Modes[n].Perm)
		if err != nil {
			return nil, err
		}
		eng, err := NewEngine(pt, r, cfg)
		if err != nil {
			return nil, fmt.Errorf("dist: mode-%d engine: %w", n+1, err)
		}
		engines[n] = eng
	}

	res := &CPResult{}
	ares, aerr := als.Run(&distKernel{dims: t.Dims[:], engines: engines, res: res}, als.Config{
		Rank:      r,
		MaxIters:  opts.MaxIters,
		Tol:       opts.Tol,
		Seed:      opts.Seed,
		NormX:     math.Sqrt(t.NormSquared()),
		ErrPrefix: "dist",
	})
	if ares == nil {
		return nil, aerr
	}
	res.Lambda = ares.Lambda
	copy(res.Factors[:], ares.Factors)
	res.Fits = ares.Fits
	res.Iters = ares.Iters
	res.Converged = ares.Converged
	res.Phases = ares.Phases
	return res, aerr
}
