package dist

import (
	"fmt"
	"math"

	"spblock/internal/als"
	"spblock/internal/engine"
	"spblock/internal/la"
	"spblock/internal/metrics"
	"spblock/internal/mpi"
	"spblock/internal/tensor"
)

// CPOptions configures a distributed CP-ALS decomposition.
type CPOptions struct {
	// Rank is the decomposition rank R. Required; must be divisible by
	// the configured RankParts.
	Rank int
	// MaxIters bounds the ALS sweeps. Default 20.
	MaxIters int
	// Tol stops iteration when the fit improves by less than this.
	// Default 1e-5.
	Tol float64
	// Seed drives the random factor initialisation.
	Seed int64
	// MaxSweepRetries bounds how many times one failed sweep is retried
	// after the runtime recovers (re-rolled fault epoch, or a
	// re-partition around a crashed rank). Defaults to 3 when cfg.Faults
	// is set, 0 otherwise — a fault-free run never retries.
	MaxSweepRetries int
}

// CPResult reports a distributed decomposition.
type CPResult struct {
	Lambda    []float64
	Factors   [3]*la.Matrix
	Fits      []float64
	Iters     int
	Converged bool
	// ModeledSeconds accumulates the modeled parallel time of every
	// distributed MTTKRP executed (3 per sweep) — the quantity a real
	// cluster would spend in the kernel this paper optimises.
	ModeledSeconds float64
	// CommBytes accumulates point-to-point payload bytes across all
	// MTTKRP calls.
	CommBytes int64
	// Phases buckets the driver-side wall time by phase (MTTKRP vs solve
	// vs fit) — see metrics.PhaseTimes. The MTTKRP bucket measures the
	// in-process simulation, not the modeled cluster time.
	Phases metrics.PhaseTimes
	// Comm carries the fault-tolerance telemetry: collective retries and
	// timeouts, modeled backoff, crashes, sweep retries and degraded
	// sweeps. All zero on a healthy run.
	Comm metrics.CommStats
	// SurvivingRanks is the rank count the decomposition finished on —
	// equal to the configured Ranks unless a crash forced a
	// re-partition over the survivors.
	SurvivingRanks int
}

// Fit returns the final fit, or 0 before any sweep ran.
func (r *CPResult) Fit() float64 {
	if len(r.Fits) == 0 {
		return 0
	}
	return r.Fits[len(r.Fits)-1]
}

// distKernel adapts the distributed runtime to the shared ALS core:
// each mode product runs on its partitioned engine, the result is
// copied into the core's output buffer, and the modeled time /
// communication volume accumulate on the CPResult as they always did.
//
// It is also the fault-recovery seat: on a kernel failure the ALS loop
// calls RecoverSweep, which either simply re-rolls the fault epoch (a
// transient loss — timeouts exhausted on a lossy link) or, after a
// crash, re-partitions all three engines over the surviving ranks and
// lets the decomposition continue degraded.
type distKernel struct {
	dims    []int
	pts     [3]*tensor.COO // permuted views, kept for re-partitioning
	cfg     Config         // current (possibly shrunken) configuration
	rank    int
	engines [3]*Engine
	res     *CPResult
	// degradedAt is the sweep index of the first re-partition, -1 while
	// the full rank set is alive.
	degradedAt int
}

func (k *distKernel) Dims() []int { return k.dims }

func (k *distKernel) MTTKRP(mode int, factors []*la.Matrix, out *la.Matrix) error {
	mp := engine.Modes[mode]
	dr, err := k.engines[mode].Run(factors[mp.BFactor], factors[mp.CFactor])
	if dr != nil {
		// Account the attempt's modeled time, traffic and reliability
		// telemetry even when it failed — the cluster really spent it.
		k.res.ModeledSeconds += dr.ModeledSeconds
		k.res.CommBytes += dr.Stats.TotalBytes()
		k.res.Comm.Retries += dr.Stats.TotalRetries()
		k.res.Comm.Timeouts += dr.Stats.TotalTimeouts()
		k.res.Comm.BackoffSec += dr.Stats.TotalBackoffSec()
	}
	if err != nil {
		return err
	}
	out.CopyFrom(dr.Out)
	return nil
}

// RecoverSweep implements als.SweepRecoverer: it decides whether a
// failed sweep can be retried and prepares the runtime for the retry.
func (k *distKernel) RecoverSweep(sweep, mode, attempt int, err error) bool {
	crashed := mpi.CrashedRanks(err)
	if len(crashed) == 0 {
		// Transient loss (drops/corruption past the retry budget, or a
		// stall outliving the timeout): the engines are intact, and the
		// fault plan draws a fresh epoch on the next Run, so simply
		// retrying the sweep is meaningful.
		return true
	}
	// A crash: re-partition over the survivors, like a resource manager
	// shrinking the job. The replay keeps the same tensor orientation
	// views; only the grid and block ownership change.
	survivors := k.cfg.Ranks - len(crashed)
	if survivors < 1 {
		return false
	}
	cfg := k.cfg
	cfg.Ranks = survivors
	if cfg.RankParts > 1 && (survivors%cfg.RankParts != 0 || k.rank%cfg.RankParts != 0) {
		// The 4D factorisation no longer divides evenly; degrade to the
		// medium-grained 3D decomposition.
		cfg.RankParts = 1
	}
	// The dead node is gone from the new world; keep the link faults.
	cfg.Faults = cfg.Faults.WithoutCrash()
	var engines [3]*Engine
	for n := 0; n < 3; n++ {
		eng, err2 := NewEngine(k.pts[n], k.rank, cfg)
		if err2 != nil {
			return false
		}
		engines[n] = eng
	}
	k.engines = engines
	k.cfg = cfg
	k.res.Comm.Crashes += len(crashed)
	if k.degradedAt < 0 {
		k.degradedAt = sweep
	}
	return true
}

// CPALS runs the full CP-ALS decomposition with every MTTKRP executed
// on the distributed runtime (one engine per mode, partitioned once).
// The R×R normal-equation solves and column normalisations run
// centrally — they are O(I·R²) work against the MTTKRP's O(nnz·R),
// which is the standard practice the paper's distributed evaluation
// follows (it measures MTTKRP time). The sweep loop is the shared
// internal/als core, so the trajectory matches cpd.CPALS bit for bit
// when the kernels agree numerically.
func CPALS(t *tensor.COO, cfg Config, opts CPOptions) (*CPResult, error) {
	if opts.Rank <= 0 {
		return nil, fmt.Errorf("dist: rank must be positive, got %d", opts.Rank)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 20
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-5
	}
	r := opts.Rank
	if opts.MaxSweepRetries <= 0 && cfg.Faults != nil {
		opts.MaxSweepRetries = 3
	}

	// One engine per mode, partitioned once per decomposition. The
	// permuted inputs are zero-copy views (engine.PermuteView); the
	// partitioner and block builder only read them — and the recovery
	// path re-partitions the same views after a crash.
	var pts [3]*tensor.COO
	var engines [3]*Engine
	for n := 0; n < 3; n++ {
		pt, err := engine.PermuteView(t, engine.Modes[n].Perm)
		if err != nil {
			return nil, err
		}
		pts[n] = pt
		eng, err := NewEngine(pt, r, cfg)
		if err != nil {
			return nil, fmt.Errorf("dist: mode-%d engine: %w", n+1, err)
		}
		engines[n] = eng
	}

	res := &CPResult{SurvivingRanks: cfg.Ranks}
	kernel := &distKernel{
		dims:       t.Dims[:],
		pts:        pts,
		cfg:        cfg,
		rank:       r,
		engines:    engines,
		res:        res,
		degradedAt: -1,
	}
	ares, aerr := als.Run(kernel, als.Config{
		Rank:            r,
		MaxIters:        opts.MaxIters,
		Tol:             opts.Tol,
		Seed:            opts.Seed,
		NormX:           math.Sqrt(t.NormSquared()),
		ErrPrefix:       "dist",
		MaxSweepRetries: opts.MaxSweepRetries,
	})
	if ares == nil {
		return nil, aerr
	}
	res.Lambda = ares.Lambda
	copy(res.Factors[:], ares.Factors)
	res.Fits = ares.Fits
	res.Iters = ares.Iters
	res.Converged = ares.Converged
	res.Phases = ares.Phases
	res.Comm.SweepRetries = ares.SweepRetries
	res.SurvivingRanks = kernel.cfg.Ranks
	if kernel.degradedAt >= 0 && ares.Iters > kernel.degradedAt {
		res.Comm.DegradedSweeps = ares.Iters - kernel.degradedAt
	}
	return res, aerr
}
