// Package dist implements the distributed MTTKRP of Sec. VI-D: the
// medium-grained (3D) decomposition used by distributed SPLATT as the
// baseline, and the paper's 4D partitioning that first splits the
// processors into t rank-groups (each holding a full tensor replica and
// computing R/t factor columns) and then applies the medium-grained
// decomposition inside each group.
//
// Ranks execute on the in-process MPI runtime (internal/mpi): factor
// chunks really move between ranks through collectives, partial outputs
// are really reduce-scattered, and the result is verified against the
// shared-memory kernels. Per-rank compute is measured serially;
// communication time is modeled from the actual byte volumes with an
// α-β cost model (see the mpi package for why).
package dist

import (
	"fmt"
	"sort"
	"sync"

	"spblock/internal/core"
	"spblock/internal/la"
	"spblock/internal/mpi"
	"spblock/internal/partition"
	"spblock/internal/tensor"
)

// Config describes one distributed MTTKRP execution.
type Config struct {
	// Ranks is the total process count p (the paper runs 2 per node).
	Ranks int
	// RankParts is t of the 4D partitioning; 1 selects the plain
	// medium-grained (3D) decomposition.
	RankParts int
	// Plan is the local kernel each rank runs on its tensor block
	// (SPLATT for the baseline, MB/MB+RankB for "our" rows of
	// Table III). Grid is interpreted relative to the local block.
	Plan core.Plan
	// Model prices the communication.
	Model mpi.CostModel
	// Faults optionally injects seeded faults under the collectives
	// (see mpi.FaultPlan). Nil — or an unarmed plan — is a perfect
	// network: execution and stats are bit-identical to a run without
	// the fault layer.
	Faults *mpi.FaultPlan
}

// Result reports one distributed execution.
type Result struct {
	// Grid is the processor grid actually used (Inner × RankParts).
	Grid partition.Grid4
	// Stats carries per-rank measured compute and modeled comm time.
	Stats mpi.RunStats
	// ModeledSeconds is max over ranks of compute+comm.
	ModeledSeconds float64
	// Out is the assembled global mode-1 MTTKRP result (I × R),
	// gathered out-of-band for verification.
	Out *la.Matrix
	// MaxRankNNZ / MinRankNNZ summarise load balance.
	MaxRankNNZ, MinRankNNZ int
}

// block is one rank's tensor portion with localised coordinates.
type block struct {
	coo           *tensor.COO
	xlo, ylo, zlo int
	xhi, yhi, zhi int
}

// blockRunner is the per-block kernel interface: one MTTKRP over a
// rank's local tensor block. Production blocks are *core.Executor;
// tests substitute poisoned runners to exercise the rank-error path.
type blockRunner interface {
	Run(b, c, out *la.Matrix) error
}

// Engine owns the distributed setup for one tensor orientation at one
// rank: the 3D/4D grid, the greedy chunk boundaries, and one local
// executor per tensor block. The setup cost is paid once and amortised
// over the 10–1000s of MTTKRP calls of a CPD run, exactly like the
// shared-memory preprocessing; Run executes one distributed MTTKRP
// against the current factor matrices.
type Engine struct {
	cfg    Config
	dims   tensor.Dims
	rank   int
	grid   partition.Grid4
	strips []int
	innerP int
	tParts int
	bounds [3][]int
	execs  []blockRunner

	maxNNZ, minNNZ int
}

// NewEngine partitions t for rank-R factors under cfg.
func NewEngine(t *tensor.COO, rank int, cfg Config) (*Engine, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if rank <= 0 {
		return nil, fmt.Errorf("dist: rank must be positive, got %d", rank)
	}
	p := cfg.Ranks
	tParts := cfg.RankParts
	if tParts <= 0 {
		tParts = 1
	}
	grid, err := partition.NewGrid4(p, tParts, rank, t.Dims)
	if err != nil {
		return nil, err
	}
	strips, err := partition.RankStrips(rank, tParts)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:    cfg,
		dims:   t.Dims,
		rank:   rank,
		grid:   grid,
		strips: strips,
		innerP: p / tParts,
		tParts: tParts,
	}
	q, rr, s := grid.Inner[0], grid.Inner[1], grid.Inner[2]

	// Chunk each mode by nonzero weight (the medium-grained greedy
	// boundaries). All rank groups share the same partition because
	// they replicate the same tensor.
	for m, parts := range []int{q, rr, s} {
		w, err := partition.SliceWeights(t, m)
		if err != nil {
			return nil, err
		}
		e.bounds[m], err = partition.Chunk(w, parts)
		if err != nil {
			return nil, err
		}
	}

	blocks, err := buildBlocks(t, e.bounds)
	if err != nil {
		return nil, err
	}
	e.execs = make([]blockRunner, e.innerP)
	e.minNNZ = -1
	for idx, blk := range blocks {
		nnz := 0
		if blk.coo != nil {
			nnz = blk.coo.NNZ()
		}
		if nnz > e.maxNNZ {
			e.maxNNZ = nnz
		}
		if e.minNNZ < 0 || nnz < e.minNNZ {
			e.minNNZ = nnz
		}
		if nnz == 0 {
			continue
		}
		plan := cfg.Plan
		plan.Grid = clampGrid(plan.Grid, blk.coo.Dims)
		exec, err := core.NewExecutor(blk.coo, plan)
		if err != nil {
			return nil, fmt.Errorf("dist: block %d: %w", idx, err)
		}
		e.execs[idx] = exec
	}
	return e, nil
}

// MTTKRP partitions t and runs one distributed mode-1 MTTKRP
// A = X₍₁₎(B ⊙ C). Repeated products over the same tensor should build
// a NewEngine and call Run.
func MTTKRP(t *tensor.COO, b, c *la.Matrix, cfg Config) (*Result, error) {
	if b.Cols != c.Cols {
		return nil, fmt.Errorf("dist: rank mismatch: B has %d cols, C %d", b.Cols, c.Cols)
	}
	if b.Cols <= 0 {
		return nil, fmt.Errorf("dist: rank must be positive, got %d", b.Cols)
	}
	e, err := NewEngine(t, b.Cols, cfg)
	if err != nil {
		return nil, err
	}
	return e.Run(b, c)
}

// Run executes one distributed MTTKRP against the engine's setup.
func (eng *Engine) Run(b, c *la.Matrix) (*Result, error) {
	r := eng.rank
	if b.Cols != r || c.Cols != r {
		return nil, fmt.Errorf("dist: factor rank mismatch (%d, %d), engine built for %d",
			b.Cols, c.Cols, r)
	}
	if b.Rows != eng.dims[1] || c.Rows != eng.dims[2] {
		return nil, fmt.Errorf("dist: factor shapes do not match tensor %v", eng.dims)
	}
	p := eng.cfg.Ranks
	tParts := eng.tParts
	innerP := eng.innerP
	strips := eng.strips
	bounds := eng.bounds
	execs := eng.execs
	grid := eng.grid
	rr, s := grid.Inner[1], grid.Inner[2]

	out := la.NewMatrix(eng.dims[0], r)
	var outMu sync.Mutex

	stats, err := mpi.RunWithFaults(p, eng.cfg.Model, eng.cfg.Faults, func(comm *mpi.Comm) error {
		g := comm.Rank() / innerP // rank group (4D dimension)
		inner := comm.Rank() % innerP
		x := inner / (rr * s)
		y := (inner / s) % rr
		z := inner % s
		colLo, colHi := strips[g], strips[g+1]
		w := colHi - colLo

		// Sub-communicators:
		//  - bComm: ranks of this group sharing the mode-2 chunk y
		//    (they co-own the B chunk and allgather it);
		//  - cComm: ranks of this group sharing the mode-3 chunk z;
		//  - aComm: ranks of this group sharing the mode-1 chunk x
		//    (they reduce-scatter the partial A chunk);
		//  - gComm: same inner position across rank groups (the 4D
		//    AllGather along the rank dimension).
		bColor, cColor, aColor, gColor := subCommColors(g, x, y, z, inner, p, tParts)
		bComm, err := comm.Split(bColor, inner)
		if err != nil {
			return err
		}
		cComm, err := comm.Split(cColor, inner)
		if err != nil {
			return err
		}
		aComm, err := comm.Split(aColor, inner)
		if err != nil {
			return err
		}
		gComm, err := comm.Split(gColor, g)
		if err != nil {
			return err
		}

		// Gather the B chunk (rows bounds[1][y] .. bounds[1][y+1],
		// columns of this group's strip) from its co-owners.
		bChunk, err := gatherChunk(bComm, b, bounds[1][y], bounds[1][y+1], colLo, colHi)
		if err != nil {
			return err
		}
		cChunk, err := gatherChunk(cComm, c, bounds[2][z], bounds[2][z+1], colLo, colHi)
		if err != nil {
			return err
		}

		// Local compute: partial A rows for chunk x over the strip. A
		// failing block executor surfaces as this rank's error from Run —
		// never a panic.
		xRows := bounds[0][x+1] - bounds[0][x]
		partial := la.NewMatrix(maxInt(xRows, 1), w)
		if execs[inner] != nil {
			e := execs[inner]
			if err := comm.TimeCompute(func() error {
				return e.Run(bChunk, cChunk, partial)
			}); err != nil {
				return fmt.Errorf("dist: rank %d block executor: %w", comm.Rank(), err)
			}
		}

		// Reduce-scatter the partial A chunk among the ranks sharing x.
		flat := flattenRows(partial, xRows)
		counts, rowBounds := ownedCounts(xRows, aComm.Size(), w)
		mine, err := aComm.ReduceScatter(flat, counts)
		if err != nil {
			return err
		}
		myRowLo := bounds[0][x] + rowBounds[aComm.Rank()]
		myRows := rowBounds[aComm.Rank()+1] - rowBounds[aComm.Rank()]

		// 4D: assemble the full rank for owned rows across the rank
		// groups — "this method requires an extra AllGather operation
		// compared to the medium-grained decomposition" (Sec. VI-D).
		fullRows := mine
		if tParts > 1 {
			parts, err := gComm.Allgatherv(mine)
			if err != nil {
				return err
			}
			fullRows = make([]float64, myRows*r)
			for gg, part := range parts {
				lo := strips[gg]
				ww := strips[gg+1] - strips[gg]
				for row := 0; row < myRows; row++ {
					copy(fullRows[row*r+lo:row*r+lo+ww], part[row*ww:(row+1)*ww])
				}
			}
		}

		// Deposit owned rows into the verification output (out of
		// band, not part of the modeled iteration). With t > 1 every
		// group holds identical full rows; group 0 deposits.
		if g == 0 {
			outMu.Lock()
			for row := 0; row < myRows; row++ {
				if tParts > 1 {
					copy(out.Row(myRowLo+row), fullRows[row*r:(row+1)*r])
				} else {
					copy(out.Row(myRowLo + row)[colLo:colHi], fullRows[row*w:(row+1)*w])
				}
			}
			outMu.Unlock()
		}
		return nil
	})
	// On error the Result still carries the grid and the (partial) run
	// stats, so drivers can account retries/timeouts and identify
	// crashed ranks before degrading; Out is only valid when err is nil.
	res := &Result{
		Grid:           grid,
		Stats:          stats,
		ModeledSeconds: stats.ModeledSeconds(),
		Out:            out,
		MaxRankNNZ:     eng.maxNNZ,
		MinRankNNZ:     eng.minNNZ,
	}
	return res, err
}

// subCommColors derives the four sub-communicator colors for one rank
// of the 4D decomposition. The color spaces are provably disjoint: with
// stride = tParts*p, kind k occupies [k*stride, (k+1)*stride) and
// within a kind the color is g*p + coord with g < tParts and every
// coordinate (x, y, z, inner) < innerP <= p, so distinct (kind, group,
// coordinate) triples never collide — unlike the former g*1000-based
// scheme, which merged communicators once an inner grid dimension
// reached 500 (and collided with the cross-group color for large
// grids).
func subCommColors(g, x, y, z, inner, p, tParts int) (bColor, cColor, aColor, gColor int) {
	stride := tParts * p
	bColor = 0*stride + g*p + y
	cColor = 1*stride + g*p + z
	aColor = 2*stride + g*p + x
	gColor = 3*stride + inner
	return bColor, cColor, aColor, gColor
}

// buildBlocks partitions t into the q×r×s blocks of one rank group,
// localising coordinates so each block's factors are compact chunks.
func buildBlocks(t *tensor.COO, bounds [3][]int) ([]*block, error) {
	q := len(bounds[0]) - 1
	r := len(bounds[1]) - 1
	s := len(bounds[2]) - 1
	blocks := make([]*block, q*r*s)
	for x := 0; x < q; x++ {
		for y := 0; y < r; y++ {
			for z := 0; z < s; z++ {
				idx := (x*r+y)*s + z
				blocks[idx] = &block{
					xlo: bounds[0][x], xhi: bounds[0][x+1],
					ylo: bounds[1][y], yhi: bounds[1][y+1],
					zlo: bounds[2][z], zhi: bounds[2][z+1],
				}
			}
		}
	}
	locate := func(bs []int, v int) int {
		// Find the chunk containing v: the last boundary <= v.
		return sort.Search(len(bs)-1, func(i int) bool { return bs[i+1] > v })
	}
	for pnt := 0; pnt < t.NNZ(); pnt++ {
		x := locate(bounds[0], int(t.I[pnt]))
		y := locate(bounds[1], int(t.J[pnt]))
		z := locate(bounds[2], int(t.K[pnt]))
		blk := blocks[(x*r+y)*s+z]
		if blk.coo == nil {
			dims := tensor.Dims{
				maxInt(blk.xhi-blk.xlo, 1),
				maxInt(blk.yhi-blk.ylo, 1),
				maxInt(blk.zhi-blk.zlo, 1),
			}
			blk.coo = tensor.NewCOO(dims, 16)
		}
		blk.coo.Append(
			t.I[pnt]-tensor.Index(blk.xlo),
			t.J[pnt]-tensor.Index(blk.ylo),
			t.K[pnt]-tensor.Index(blk.zlo),
			t.Val[pnt],
		)
	}
	return blocks, nil
}

// gatherChunk assembles factor rows [rowLo, rowHi) × cols [colLo, colHi)
// by allgathering each co-owner's share. The share boundaries split the
// chunk rows evenly over the sub-communicator in rank order.
func gatherChunk(comm *mpi.Comm, m *la.Matrix, rowLo, rowHi, colLo, colHi int) (*la.Matrix, error) {
	rows := rowHi - rowLo
	w := colHi - colLo
	pSub := comm.Size()
	bound := evenBounds(rows, pSub)
	meLo, meHi := bound[comm.Rank()], bound[comm.Rank()+1]
	mine := make([]float64, 0, (meHi-meLo)*w)
	for row := meLo; row < meHi; row++ {
		mine = append(mine, m.Data[(rowLo+row)*m.Stride+colLo:(rowLo+row)*m.Stride+colHi]...)
	}
	parts, err := comm.Allgatherv(mine)
	if err != nil {
		return nil, err
	}
	chunk := la.NewMatrix(maxInt(rows, 1), w)
	row := 0
	for _, part := range parts {
		n := len(part) / maxInt(w, 1)
		for pr := 0; pr < n; pr++ {
			copy(chunk.Row(row), part[pr*w:(pr+1)*w])
			row++
		}
	}
	return chunk, nil
}

// ownedCounts splits `rows` rows of width w among pSub ranks, returning
// the flat element counts per rank and the row boundaries.
func ownedCounts(rows, pSub, w int) (counts []int, rowBounds []int) {
	rowBounds = evenBounds(rows, pSub)
	counts = make([]int, pSub)
	for i := 0; i < pSub; i++ {
		counts[i] = (rowBounds[i+1] - rowBounds[i]) * w
	}
	return counts, rowBounds
}

// evenBounds splits n items into p nearly equal contiguous ranges.
func evenBounds(n, p int) []int {
	b := make([]int, p+1)
	for i := 0; i <= p; i++ {
		b[i] = i * n / p
	}
	return b
}

// flattenRows copies the first `rows` rows of m into a flat slice.
func flattenRows(m *la.Matrix, rows int) []float64 {
	out := make([]float64, rows*m.Cols)
	for i := 0; i < rows; i++ {
		copy(out[i*m.Cols:(i+1)*m.Cols], m.Row(i))
	}
	return out
}

func clampGrid(g [3]int, dims tensor.Dims) [3]int {
	for m := 0; m < 3; m++ {
		if g[m] < 1 {
			g[m] = 1
		}
		if g[m] > dims[m] {
			g[m] = dims[m]
		}
	}
	return g
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
