package dist

import (
	"math/rand"
	"testing"

	"spblock/internal/core"
	"spblock/internal/la"
	"spblock/internal/mpi"
	"spblock/internal/tensor"
)

func randCOO(rng *rand.Rand, dims tensor.Dims, nnz int) *tensor.COO {
	t := tensor.NewCOO(dims, nnz)
	for p := 0; p < nnz; p++ {
		t.Append(
			tensor.Index(rng.Intn(dims[0])),
			tensor.Index(rng.Intn(dims[1])),
			tensor.Index(rng.Intn(dims[2])),
			rng.NormFloat64(),
		)
	}
	t.Dedup()
	return t
}

func randMatrix(rng *rand.Rand, rows, cols int) *la.Matrix {
	m := la.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func sharedMemoryReference(t *testing.T, x *tensor.COO, b, c *la.Matrix) *la.Matrix {
	t.Helper()
	out := la.NewMatrix(x.Dims[0], b.Cols)
	if err := core.MTTKRP(x, b, c, out, core.Plan{Method: core.MethodSPLATT, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDistributedMatchesSharedMemory3D(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dims := tensor.Dims{40, 30, 20}
	x := randCOO(rng, dims, 1500)
	rank := 16
	b := randMatrix(rng, dims[1], rank)
	c := randMatrix(rng, dims[2], rank)
	want := sharedMemoryReference(t, x, b, c)

	for _, p := range []int{1, 2, 4, 8} {
		res, err := MTTKRP(x, b, c, Config{
			Ranks: p,
			Plan:  core.Plan{Method: core.MethodSPLATT, Workers: 1},
			Model: mpi.Zero(),
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if d := res.Out.MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("p=%d: distributed result differs by %v", p, d)
		}
		if res.Grid.RankParts != 1 {
			t.Fatalf("p=%d: unexpected rank parts %d", p, res.Grid.RankParts)
		}
	}
}

func TestDistributedMatchesSharedMemory4D(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dims := tensor.Dims{24, 32, 16}
	x := randCOO(rng, dims, 1200)
	rank := 32
	b := randMatrix(rng, dims[1], rank)
	c := randMatrix(rng, dims[2], rank)
	want := sharedMemoryReference(t, x, b, c)

	for _, tc := range []struct{ p, t int }{{2, 2}, {4, 2}, {8, 4}, {8, 8}} {
		res, err := MTTKRP(x, b, c, Config{
			Ranks:     tc.p,
			RankParts: tc.t,
			Plan:      core.Plan{Method: core.MethodSPLATT, Workers: 1},
			Model:     mpi.Zero(),
		})
		if err != nil {
			t.Fatalf("p=%d t=%d: %v", tc.p, tc.t, err)
		}
		if d := res.Out.MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("p=%d t=%d: differs by %v", tc.p, tc.t, d)
		}
		if res.Grid.RankParts != tc.t {
			t.Fatalf("rank parts = %d, want %d", res.Grid.RankParts, tc.t)
		}
	}
}

func TestDistributedWithBlockedLocalKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dims := tensor.Dims{30, 40, 30}
	x := randCOO(rng, dims, 2000)
	rank := 32
	b := randMatrix(rng, dims[1], rank)
	c := randMatrix(rng, dims[2], rank)
	want := sharedMemoryReference(t, x, b, c)

	res, err := MTTKRP(x, b, c, Config{
		Ranks:     4,
		RankParts: 2,
		Plan:      core.Plan{Method: core.MethodMBRankB, Grid: [3]int{2, 2, 2}, RankBlockCols: 16, Workers: 1},
		Model:     mpi.DefaultCluster(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Out.MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("blocked local kernel differs by %v", d)
	}
	if res.ModeledSeconds <= 0 {
		t.Fatal("no modeled time")
	}
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dims := tensor.Dims{8, 8, 8}
	x := randCOO(rng, dims, 50)
	b := randMatrix(rng, 8, 16)
	c := randMatrix(rng, 8, 16)
	if _, err := MTTKRP(x, b, randMatrix(rng, 8, 8), Config{Ranks: 2}); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if _, err := MTTKRP(x, randMatrix(rng, 5, 16), c, Config{Ranks: 2}); err == nil {
		t.Fatal("B shape mismatch accepted")
	}
	if _, err := MTTKRP(x, b, c, Config{Ranks: 3, RankParts: 2}); err == nil {
		t.Fatal("t not dividing p accepted")
	}
	if _, err := MTTKRP(x, b, c, Config{Ranks: 4, RankParts: 3}); err == nil {
		t.Fatal("rank not divisible by t accepted")
	}
	bad := tensor.NewCOO(dims, 0)
	bad.Append(20, 0, 0, 1)
	if _, err := MTTKRP(bad, b, c, Config{Ranks: 2}); err == nil {
		t.Fatal("invalid tensor accepted")
	}
}

func TestLoadBalanceReported(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randCOO(rng, tensor.Dims{64, 64, 64}, 4000)
	b := randMatrix(rng, 64, 16)
	c := randMatrix(rng, 64, 16)
	res, err := MTTKRP(x, b, c, Config{Ranks: 8, Model: mpi.Zero(),
		Plan: core.Plan{Method: core.MethodSPLATT, Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRankNNZ <= 0 || res.MinRankNNZ < 0 || res.MinRankNNZ > res.MaxRankNNZ {
		t.Fatalf("load stats broken: min=%d max=%d", res.MinRankNNZ, res.MaxRankNNZ)
	}
	// Greedy medium-grained chunks should keep imbalance moderate on a
	// uniform random tensor.
	if res.MaxRankNNZ > 4*(x.NNZ()/8+1) {
		t.Fatalf("severe imbalance: max=%d nnz/p=%d", res.MaxRankNNZ, x.NNZ()/8)
	}
}

func TestFourDReducesCommBytes(t *testing.T) {
	// The 4D scheme's point: each group gathers only R/t columns, so
	// per-iteration communication volume drops relative to 3D at the
	// same total rank count (at the cost of replicating the tensor).
	rng := rand.New(rand.NewSource(6))
	dims := tensor.Dims{64, 512, 64}
	x := randCOO(rng, dims, 3000)
	rank := 64
	b := randMatrix(rng, dims[1], rank)
	c := randMatrix(rng, dims[2], rank)

	res3D, err := MTTKRP(x, b, c, Config{Ranks: 16, Model: mpi.Zero(),
		Plan: core.Plan{Method: core.MethodSPLATT, Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res4D, err := MTTKRP(x, b, c, Config{Ranks: 16, RankParts: 4, Model: mpi.Zero(),
		Plan: core.Plan{Method: core.MethodSPLATT, Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res4D.Stats.TotalBytes() >= res3D.Stats.TotalBytes() {
		t.Fatalf("4D bytes %d not below 3D bytes %d",
			res4D.Stats.TotalBytes(), res3D.Stats.TotalBytes())
	}
	t.Logf("comm bytes: 3D=%d 4D=%d", res3D.Stats.TotalBytes(), res4D.Stats.TotalBytes())
}

func TestEmptyBlocksSurvive(t *testing.T) {
	// A tensor whose nonzeros all sit in one corner leaves most blocks
	// empty; the exchange must still complete and verify.
	x := tensor.NewCOO(tensor.Dims{32, 32, 32}, 0)
	rng := rand.New(rand.NewSource(7))
	for p := 0; p < 100; p++ {
		x.Append(tensor.Index(rng.Intn(4)), tensor.Index(rng.Intn(4)), tensor.Index(rng.Intn(4)), 1)
	}
	x.Dedup()
	b := randMatrix(rng, 32, 16)
	c := randMatrix(rng, 32, 16)
	want := sharedMemoryReference(t, x, b, c)
	res, err := MTTKRP(x, b, c, Config{Ranks: 8, Model: mpi.Zero(),
		Plan: core.Plan{Method: core.MethodSPLATT, Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Out.MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("corner tensor differs by %v", d)
	}
}
