package als

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"spblock/internal/la"
)

// denseKernel is a brute-force MTTKRP over an explicit dense tensor,
// stored as nested index arithmetic over a flat value slice.
type denseKernel struct {
	dims []int
	vals []float64
	// sweepStarts counts StartSweep invocations when used as a starter.
	sweepStarts int
	failMode    int // MTTKRP on this mode errors; -1 disables
}

func (k *denseKernel) Dims() []int { return k.dims }

func (k *denseKernel) MTTKRP(mode int, factors []*la.Matrix, out *la.Matrix) error {
	if mode == k.failMode {
		return errors.New("injected kernel failure")
	}
	out.Zero()
	n := len(k.dims)
	coords := make([]int, n)
	for p, v := range k.vals {
		if v == 0 {
			continue
		}
		rem := p
		for m := n - 1; m >= 0; m-- {
			coords[m] = rem % k.dims[m]
			rem /= k.dims[m]
		}
		row := out.Row(coords[mode])
		for q := 0; q < out.Cols; q++ {
			w := v
			for m := 0; m < n; m++ {
				if m != mode {
					w *= factors[m].At(coords[m], q)
				}
			}
			row[q] += w
		}
	}
	return nil
}

// startingKernel adds the SweepStarter extension.
type startingKernel struct{ denseKernel }

func (k *startingKernel) StartSweep([]*la.Matrix) error {
	k.sweepStarts++
	return nil
}

// rankOne builds a dense rank-1 tensor a ⊗ b ⊗ c with positive entries
// and returns the kernel plus ‖X‖.
func rankOne(dims []int) (*denseKernel, float64) {
	n := len(dims)
	vecs := make([][]float64, n)
	for m, d := range dims {
		vecs[m] = make([]float64, d)
		for i := range vecs[m] {
			vecs[m][i] = float64(i+1) / float64(d)
		}
	}
	total := 1
	for _, d := range dims {
		total *= d
	}
	k := &denseKernel{dims: dims, vals: make([]float64, total), failMode: -1}
	var norm2 float64
	for p := range k.vals {
		rem, v := p, 1.0
		for m := n - 1; m >= 0; m-- {
			v *= vecs[m][rem%dims[m]]
			rem /= dims[m]
		}
		k.vals[p] = v
		norm2 += v * v
	}
	return k, math.Sqrt(norm2)
}

func TestRunValidation(t *testing.T) {
	k, _ := rankOne([]int{3, 3})
	if _, err := Run(k, Config{Rank: 0}); err == nil {
		t.Error("rank 0 accepted")
	}
	if _, err := Run(k, Config{Rank: 0, ErrPrefix: "cpd"}); err == nil ||
		!strings.HasPrefix(err.Error(), "cpd:") {
		t.Error("ErrPrefix not applied")
	}
	short := &denseKernel{dims: []int{4}, failMode: -1}
	if _, err := Run(short, Config{Rank: 1}); err == nil {
		t.Error("order-1 kernel accepted")
	}
}

func TestRunRecoversRankOne(t *testing.T) {
	for _, dims := range [][]int{{6, 5}, {5, 4, 3}, {4, 3, 3, 2}} {
		k, normX := rankOne(dims)
		res, err := Run(k, Config{Rank: 1, MaxIters: 60, Tol: 1e-12, Seed: 3, NormX: normX})
		if err != nil {
			t.Fatal(err)
		}
		if f := res.Fits[len(res.Fits)-1]; f < 0.9999 {
			t.Errorf("order %d: rank-1 fit = %v", len(dims), f)
		}
		if len(res.Factors) != len(dims) || len(res.Lambda) != 1 {
			t.Errorf("order %d: result shape wrong", len(dims))
		}
		for i := 1; i < len(res.Fits); i++ {
			if res.Fits[i] < res.Fits[i-1]-1e-8 {
				t.Errorf("order %d: fit decreased at sweep %d", len(dims), i)
			}
		}
	}
}

func TestRunDeterministicTrajectory(t *testing.T) {
	k, normX := rankOne([]int{5, 4, 3})
	cfg := Config{Rank: 2, MaxIters: 8, Tol: 1e-15, Seed: 7, NormX: normX}
	a, err := Run(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Fits) != len(b.Fits) {
		t.Fatalf("sweep counts differ: %d vs %d", len(a.Fits), len(b.Fits))
	}
	for i := range a.Fits {
		if a.Fits[i] != b.Fits[i] {
			t.Fatalf("sweep %d: %v vs %v", i, a.Fits[i], b.Fits[i])
		}
	}
}

func TestRunStartSweepHook(t *testing.T) {
	base, normX := rankOne([]int{4, 3, 2})
	k := &startingKernel{denseKernel: *base}
	res, err := Run(k, Config{Rank: 1, MaxIters: 5, Tol: 1e-15, Seed: 1, NormX: normX})
	if err != nil {
		t.Fatal(err)
	}
	if k.sweepStarts != res.Iters {
		t.Fatalf("StartSweep ran %d times over %d sweeps", k.sweepStarts, res.Iters)
	}
}

func TestRunKernelErrorReturnsPartialResult(t *testing.T) {
	k, normX := rankOne([]int{4, 3, 2})
	k.failMode = 1
	res, err := Run(k, Config{Rank: 1, MaxIters: 5, Seed: 1, NormX: normX})
	if err == nil {
		t.Fatal("injected failure not surfaced")
	}
	if res == nil || len(res.Factors) != 3 {
		t.Fatal("partial result missing")
	}
}

// TestRunPhaseTiming: every completed sweep accounts wall time to all
// three phase buckets, and a mid-sweep kernel error still returns the
// MTTKRP time spent before the failure.
func TestRunPhaseTiming(t *testing.T) {
	k, normX := rankOne([]int{6, 5, 4})
	res, err := Run(k, Config{Rank: 2, MaxIters: 4, Tol: 1e-15, Seed: 2, NormX: normX})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Phases
	if p.MTTKRPNS <= 0 || p.SolveNS <= 0 || p.NormNS <= 0 {
		t.Fatalf("phase buckets not all fed: %+v", p)
	}
	if s := p.MTTKRPShare(); s <= 0 || s >= 1 {
		t.Fatalf("MTTKRP share = %v", s)
	}

	k2, normX2 := rankOne([]int{4, 3, 2})
	k2.failMode = 1
	res2, err := Run(k2, Config{Rank: 1, MaxIters: 5, Seed: 1, NormX: normX2})
	if err == nil {
		t.Fatal("injected failure not surfaced")
	}
	if res2.Phases.MTTKRPNS <= 0 {
		t.Fatalf("partial result lost its phase time: %+v", res2.Phases)
	}
}

// recoveringKernel adds the SweepRecoverer extension: MTTKRP on mode 1
// fails failuresLeft times, and RecoverSweep records its consultations.
type recoveringKernel struct {
	denseKernel
	failuresLeft int
	recoverCalls int
	refuse       bool
	nanMode0     bool
}

func (k *recoveringKernel) MTTKRP(mode int, factors []*la.Matrix, out *la.Matrix) error {
	if k.nanMode0 && mode == 0 {
		if err := k.denseKernel.MTTKRP(mode, factors, out); err != nil {
			return err
		}
		out.Data[0] = math.NaN() // poisons the gram; the *solve* fails
		return nil
	}
	if k.failuresLeft > 0 && mode == 1 {
		k.failuresLeft--
		return errors.New("transient kernel failure")
	}
	return k.denseKernel.MTTKRP(mode, factors, out)
}

func (k *recoveringKernel) RecoverSweep(sweep, mode, attempt int, err error) bool {
	k.recoverCalls++
	return !k.refuse
}

func TestSweepRetryRecovers(t *testing.T) {
	base, normX := rankOne([]int{5, 4, 3})
	k := &recoveringKernel{denseKernel: *base, failuresLeft: 2}
	res, err := Run(k, Config{Rank: 1, MaxIters: 30, Tol: 1e-12, Seed: 3,
		NormX: normX, MaxSweepRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.SweepRetries != 2 {
		t.Fatalf("SweepRetries = %d, want 2", res.SweepRetries)
	}
	if k.recoverCalls != 2 {
		t.Fatalf("recoverer consulted %d times, want 2", k.recoverCalls)
	}
	if f := res.Fits[len(res.Fits)-1]; f < 0.999 {
		t.Fatalf("recovered run did not converge: fit %v", f)
	}
}

func TestSweepRetryExhaustsBudget(t *testing.T) {
	base, normX := rankOne([]int{4, 3, 2})
	k := &recoveringKernel{denseKernel: *base, failuresLeft: 100}
	res, err := Run(k, Config{Rank: 1, MaxIters: 5, Seed: 1, NormX: normX,
		MaxSweepRetries: 2})
	if err == nil {
		t.Fatal("permanent failure not surfaced")
	}
	if res.SweepRetries != 2 {
		t.Fatalf("SweepRetries = %d, want 2", res.SweepRetries)
	}
	if k.recoverCalls != 2 {
		t.Fatalf("recoverer consulted %d times, want 2", k.recoverCalls)
	}
}

func TestSweepRetryRefusedByKernel(t *testing.T) {
	base, normX := rankOne([]int{4, 3, 2})
	k := &recoveringKernel{denseKernel: *base, failuresLeft: 1, refuse: true}
	res, err := Run(k, Config{Rank: 1, MaxIters: 5, Seed: 1, NormX: normX,
		MaxSweepRetries: 3})
	if err == nil {
		t.Fatal("refused recovery must abort")
	}
	if res.SweepRetries != 0 || k.recoverCalls != 1 {
		t.Fatalf("retries=%d calls=%d, want 0/1", res.SweepRetries, k.recoverCalls)
	}
}

func TestSweepRetryDisabledByDefault(t *testing.T) {
	base, normX := rankOne([]int{4, 3, 2})
	k := &recoveringKernel{denseKernel: *base, failuresLeft: 1}
	_, err := Run(k, Config{Rank: 1, MaxIters: 5, Seed: 1, NormX: normX})
	if err == nil {
		t.Fatal("MaxSweepRetries=0 must disable retry")
	}
	if k.recoverCalls != 0 {
		t.Fatalf("recoverer consulted %d times with retry disabled", k.recoverCalls)
	}
}

func TestSolveErrorsNeverRetried(t *testing.T) {
	base, normX := rankOne([]int{4, 3, 2})
	k := &recoveringKernel{denseKernel: *base, nanMode0: true}
	res, err := Run(k, Config{Rank: 1, MaxIters: 5, Seed: 1, NormX: normX,
		MaxSweepRetries: 5})
	if err == nil {
		t.Fatal("poisoned solve not surfaced")
	}
	if !strings.Contains(err.Error(), "solve") {
		t.Fatalf("error does not identify the solve: %v", err)
	}
	if k.recoverCalls != 0 || res.SweepRetries != 0 {
		t.Fatalf("numerical failure was retried: calls=%d retries=%d",
			k.recoverCalls, res.SweepRetries)
	}
}

// replanningKernel adds the sched.Replanner extension.
type replanningKernel struct {
	denseKernel
	calls []int
	fail  bool
}

func (k *replanningKernel) ReplanSweep(sweep int) error {
	k.calls = append(k.calls, sweep)
	if k.fail {
		return errors.New("injected replan failure")
	}
	return nil
}

// TestReplanHookBetweenSweeps pins the hook's contract: called exactly
// once after every successful sweep that is not the last one — never
// after the final (budget-exhausted) sweep, where no further sweep
// could use the replanned layout.
func TestReplanHookBetweenSweeps(t *testing.T) {
	base, normX := rankOne([]int{5, 4, 3})
	k := &replanningKernel{denseKernel: *base}
	res, err := Run(k, Config{Rank: 2, MaxIters: 4, Tol: 1e-300, Seed: 1, NormX: normX})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Skip("converged exactly; the non-final-sweep count is not deterministic")
	}
	if len(k.calls) != res.Iters-1 {
		t.Fatalf("replan called %d times over %d sweeps, want %d", len(k.calls), res.Iters, res.Iters-1)
	}
	for i, sweep := range k.calls {
		if sweep != i {
			t.Fatalf("replan call %d carried sweep %d", i, sweep)
		}
	}
}

// TestReplanHookNotCalledAfterConvergence: a converged sweep breaks the
// loop before the hook — the decomposition is done, there is nothing to
// replan for.
func TestReplanHookNotCalledAfterConvergence(t *testing.T) {
	base, normX := rankOne([]int{5, 4, 3})
	k := &replanningKernel{denseKernel: *base}
	res, err := Run(k, Config{Rank: 1, MaxIters: 50, Tol: 10, Seed: 1, NormX: normX})
	if err != nil {
		t.Fatal(err)
	}
	// Tol 10 converges at the first eligible check (iter 1), so the only
	// hook call is the one after sweep 0.
	if !res.Converged || res.Iters != 2 {
		t.Fatalf("expected convergence at iter 2, got %+v", res)
	}
	if len(k.calls) != 1 || k.calls[0] != 0 {
		t.Fatalf("replan calls = %v, want [0]", k.calls)
	}
}

// TestReplanErrorAborts: a replan failure aborts the decomposition like
// a kernel failure, returning the partial result.
func TestReplanErrorAborts(t *testing.T) {
	base, normX := rankOne([]int{5, 4, 3})
	k := &replanningKernel{denseKernel: *base, fail: true}
	res, err := Run(k, Config{Rank: 2, MaxIters: 4, Tol: 1e-300, Seed: 1, NormX: normX})
	if err == nil || !strings.Contains(err.Error(), "replan after sweep 1") {
		t.Fatalf("err = %v, want a replan-after-sweep-1 failure", err)
	}
	if res == nil || res.Iters != 1 {
		t.Fatalf("partial result = %+v, want the one completed sweep", res)
	}
}

// cancellingKernel cancels its context after a fixed number of MTTKRP
// dispatches and records whether the loop ever consulted the recoverer
// afterwards — cancellation must be non-retryable.
type cancellingKernel struct {
	denseKernel
	cancel      func()
	cancelAfter int
	calls       int
	recoverAsks int
}

func (k *cancellingKernel) MTTKRP(mode int, factors []*la.Matrix, out *la.Matrix) error {
	k.calls++
	if k.calls == k.cancelAfter {
		k.cancel()
	}
	return k.denseKernel.MTTKRP(mode, factors, out)
}

func (k *cancellingKernel) RecoverSweep(sweep, mode, attempt int, err error) bool {
	k.recoverAsks++
	return true
}

func TestRunCtxCancelMidSweep(t *testing.T) {
	base, normX := rankOne([]int{5, 4, 3})
	ctx, cancel := context.WithCancel(context.Background())
	k := &cancellingKernel{denseKernel: *base, cancel: cancel, cancelAfter: 4}
	res, err := Run(k, Config{
		Rank: 2, MaxIters: 50, Tol: 1e-12, Seed: 1, NormX: normX,
		Ctx: ctx, MaxSweepRetries: 3,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The cancel lands during call 4 (sweep 2, mode 1); the loop must
	// stop at the next between-products check, before mode 2 dispatches.
	if k.calls != 4 {
		t.Fatalf("kernel ran %d products after cancel, want exactly 4", k.calls)
	}
	if k.recoverAsks != 0 {
		t.Fatalf("cancellation was offered to the recoverer %d times", k.recoverAsks)
	}
	if res == nil || res.Iters != 1 {
		t.Fatalf("partial result missing or wrong: %+v", res)
	}
}

func TestRunCtxPreCanceled(t *testing.T) {
	k, normX := rankOne([]int{4, 3, 3})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(k, Config{Rank: 1, Seed: 1, NormX: normX, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Iters != 0 || len(res.Fits) != 0 {
		t.Fatalf("pre-canceled run produced sweeps: %+v", res)
	}
}

func TestRunCtxCancelBeforeStartSweep(t *testing.T) {
	base, normX := rankOne([]int{4, 3, 3})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	k := &startingKernel{denseKernel: *base}
	if _, err := Run(k, Config{Rank: 1, Seed: 1, NormX: normX, Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if k.sweepStarts != 0 {
		t.Fatalf("StartSweep ran %d times on a canceled context", k.sweepStarts)
	}
}
