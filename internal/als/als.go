// Package als holds the single CP-ALS sweep loop shared by every
// decomposition driver in the repo (cpd.CPALS, cpd.CPALSN, dist.CPALS).
// The loop — random factor init, per-mode MTTKRP dispatch, Gram /
// Hadamard normal-equation solve, lambda normalisation, fit and
// convergence — is identical across the shared-memory order-3, order-N
// and distributed paths; only the MTTKRP kernel differs, so the kernel
// is the interface and everything else lives here exactly once.
//
// The random number stream is part of the contract: factors are
// initialised mode by mode from one rand source, and dead-column
// reseeds draw from the same source, so two drivers with numerically
// identical kernels produce identical trajectories (the property the
// dist-vs-cpd and memoized-vs-plain equivalence tests pin down).
package als

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"spblock/internal/la"
	"spblock/internal/metrics"
	"spblock/internal/sched"
)

// Kernel supplies the mode products for one decomposition. MTTKRP
// receives the full factor set indexed by mode (the output mode's entry
// may be ignored) and must leave out = the mode-`mode` matricised
// tensor times Khatri-Rao product.
type Kernel interface {
	Dims() []int
	MTTKRP(mode int, factors []*la.Matrix, out *la.Matrix) error
}

// SweepStarter is an optional Kernel extension invoked once at the top
// of every sweep with the current factors — the hook the memoized
// order-3 path uses to compute its shared mode-3 contraction.
type SweepStarter interface {
	StartSweep(factors []*la.Matrix) error
}

// SweepRecoverer is an optional Kernel extension for fault-tolerant
// kernels: when an MTTKRP dispatch (or StartSweep) fails mid-sweep, the
// loop asks the kernel whether it has recovered — e.g. the distributed
// runtime re-partitioning around a crashed rank — and, if so, restarts
// the sweep with the current factors. attempt counts restarts of this
// sweep (0 on the first failure); returning false aborts with err as a
// plain kernel failure would. Solve and normalisation errors are never
// retried — they indicate numerical trouble, not a lost rank.
type SweepRecoverer interface {
	RecoverSweep(sweep, mode, attempt int, err error) bool
}

// Config parameterises Run. Callers own their public-facing defaults;
// Run only backstops MaxIters (50) and Tol (1e-5).
type Config struct {
	Rank     int
	MaxIters int
	Tol      float64
	Seed     int64
	// NormX is ‖X‖ of the input tensor, used by the fit identity.
	NormX float64
	// ErrPrefix names the calling package in error messages ("cpd",
	// "dist"); empty means "als".
	ErrPrefix string
	// MaxSweepRetries bounds how many times one sweep may be restarted
	// through a SweepRecoverer kernel before its error becomes fatal.
	// 0 (the default) disables sweep retry entirely.
	MaxSweepRetries int
	// Ctx cancels the decomposition between mode products: the loop
	// checks it before StartSweep and before every MTTKRP dispatch, so a
	// canceled run stops within one mode product rather than finishing
	// the decomposition. Cancellation is never retryable (it is not a
	// kernel fault); the partial result is returned with ctx's error.
	// nil means never canceled.
	Ctx context.Context
}

// Result is a fitted Kruskal tensor with one factor per mode.
type Result struct {
	Lambda    []float64
	Factors   []*la.Matrix
	Fits      []float64
	Iters     int
	Converged bool
	// Phases buckets the decomposition's wall time: MTTKRP dispatches
	// (plus the memoized path's StartSweep contraction), the
	// normal-equation solves, and the fit evaluation. Accumulated as the
	// loop runs, so a partial result from a mid-sweep error still carries
	// the time spent so far. Retried sweeps keep their aborted attempts'
	// time — it was really spent.
	Phases metrics.PhaseTimes
	// SweepRetries counts sweeps restarted through a SweepRecoverer
	// after a kernel failure (0 on a healthy run).
	SweepRetries int
}

// Run executes CP-ALS sweeps over k until convergence or MaxIters. On a
// mid-sweep error the partial result is returned alongside the error.
func Run(k Kernel, cfg Config) (*Result, error) {
	pfx := cfg.ErrPrefix
	if pfx == "" {
		pfx = "als"
	}
	dims := k.Dims()
	n := len(dims)
	r := cfg.Rank
	if r <= 0 {
		return nil, fmt.Errorf("%s: rank must be positive, got %d", pfx, r)
	}
	if n < 2 {
		return nil, fmt.Errorf("%s: CP-ALS needs order >= 2, got %d", pfx, n)
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 50
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-5
	}

	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{
		Lambda:  make([]float64, r),
		Factors: make([]*la.Matrix, n),
	}
	for mode := 0; mode < n; mode++ {
		m := la.NewMatrix(dims[mode], r)
		for i := range m.Data {
			m.Data[i] = rng.Float64()
		}
		res.Factors[mode] = m
	}
	grams := make([]*la.Matrix, n)
	for mode := 0; mode < n; mode++ {
		grams[mode] = la.Gram(res.Factors[mode])
	}

	outs := make([]*la.Matrix, n)
	for mode := 0; mode < n; mode++ {
		outs[mode] = la.NewMatrix(dims[mode], r)
	}

	starter, _ := k.(SweepStarter)
	recoverer, _ := k.(SweepRecoverer)
	replanner, _ := k.(sched.Replanner)
	// runSweep executes one full ALS sweep against the current factors,
	// reporting the failing mode (-1 for StartSweep) and whether the
	// error is a retryable kernel failure (solve errors are not).
	runSweep := func() (failedMode int, retryable bool, err error) {
		if starter != nil {
			if err := ctx.Err(); err != nil {
				return -1, false, fmt.Errorf("%s: canceled: %w", pfx, err)
			}
			t0 := time.Now()
			err := starter.StartSweep(res.Factors)
			res.Phases.MTTKRPNS += time.Since(t0).Nanoseconds()
			if err != nil {
				return -1, true, err
			}
		}
		for mode := 0; mode < n; mode++ {
			if err := ctx.Err(); err != nil {
				return mode, false, fmt.Errorf("%s: canceled before mode-%d product: %w", pfx, mode+1, err)
			}
			t0 := time.Now()
			err := k.MTTKRP(mode, res.Factors, outs[mode])
			res.Phases.MTTKRPNS += time.Since(t0).Nanoseconds()
			if err != nil {
				return mode, true, err
			}
			t0 = time.Now()
			// V = Hadamard of all other modes' Gram matrices.
			var v *la.Matrix
			for other := 0; other < n; other++ {
				if other == mode {
					continue
				}
				if v == nil {
					v = grams[other].Clone()
				} else {
					la.HadamardInPlace(v, grams[other])
				}
			}
			res.Factors[mode].CopyFrom(outs[mode])
			if err := la.SolveSPD(v, res.Factors[mode]); err != nil {
				res.Phases.SolveNS += time.Since(t0).Nanoseconds()
				return mode, false, fmt.Errorf("%s: mode-%d solve: %w", pfx, mode+1, err)
			}
			copy(res.Lambda, la.NormalizeColumns(res.Factors[mode]))
			// Guard against dead columns: a zero column would make all
			// later Gram products singular; re-seed it randomly.
			for q := 0; q < r; q++ {
				if res.Lambda[q] == 0 {
					for i := 0; i < res.Factors[mode].Rows; i++ {
						res.Factors[mode].Set(i, q, rng.Float64())
					}
				}
			}
			grams[mode] = la.Gram(res.Factors[mode])
			res.Phases.SolveNS += time.Since(t0).Nanoseconds()
		}
		return -1, true, nil
	}
	prevFit := 0.0
	for iter := 0; iter < cfg.MaxIters; iter++ {
		// Retryable sweep: a mid-sweep kernel failure is handed to the
		// kernel's SweepRecoverer (if any); on recovery — e.g. after the
		// distributed runtime re-partitioned around a crashed rank — the
		// sweep restarts against the current (possibly half-updated)
		// factors, which is still a valid ALS state. On a fault-free run
		// this loop runs the sweep exactly once, preserving the rng
		// stream and trajectory bit for bit.
		for attempt := 0; ; attempt++ {
			failedMode, retryable, err := runSweep()
			if err == nil {
				break
			}
			if !retryable || recoverer == nil || attempt >= cfg.MaxSweepRetries ||
				!recoverer.RecoverSweep(iter, failedMode, attempt, err) {
				return res, err
			}
			res.SweepRetries++
		}

		t0 := time.Now()
		fit := fit(cfg.NormX, res, grams, outs[n-1])
		res.Phases.NormNS += time.Since(t0).Nanoseconds()
		res.Fits = append(res.Fits, fit)
		res.Iters = iter + 1
		if iter > 0 && math.Abs(fit-prevFit) < cfg.Tol {
			res.Converged = true
			break
		}
		prevFit = fit
		// Between-sweep replan hook (sched.Replanner): the decomposition
		// will run at least one more sweep, so an adaptive kernel may
		// re-cost its plan against the observed imbalance and swap layouts
		// here — the only point where rebuilding executors cannot perturb
		// an in-flight sweep. Never called after the final or converged
		// sweep; a replan error aborts like a kernel failure.
		if replanner != nil && iter+1 < cfg.MaxIters {
			if err := replanner.ReplanSweep(iter); err != nil {
				return res, fmt.Errorf("%s: replan after sweep %d: %w", pfx, iter+1, err)
			}
		}
	}
	return res, nil
}

// fit evaluates 1 − ‖X − M‖/‖X‖ with the standard identity
// ‖X − M‖² = ‖X‖² + ‖M‖² − 2⟨X, M⟩: ‖M‖² = λᵀ (∘_n G_n) λ, and ⟨X, M⟩
// falls out of the last mode's MTTKRP against the (normalised) last
// factor and λ.
func fit(normX float64, res *Result, grams []*la.Matrix, lastMTTKRP *la.Matrix) float64 {
	r := len(res.Lambda)
	var gAll *la.Matrix
	for _, g := range grams {
		if gAll == nil {
			gAll = g.Clone()
		} else {
			la.HadamardInPlace(gAll, g)
		}
	}
	var normM2 float64
	for p := 0; p < r; p++ {
		row := gAll.Row(p)
		for q := 0; q < r; q++ {
			normM2 += res.Lambda[p] * res.Lambda[q] * row[q]
		}
	}
	if normM2 < 0 {
		normM2 = 0
	}
	var inner float64
	last := res.Factors[len(res.Factors)-1]
	for i := 0; i < last.Rows; i++ {
		frow, mrow := last.Row(i), lastMTTKRP.Row(i)
		for q := 0; q < r; q++ {
			inner += res.Lambda[q] * frow[q] * mrow[q]
		}
	}
	residual2 := normX*normX + normM2 - 2*inner
	if residual2 < 0 {
		residual2 = 0
	}
	if normX == 0 {
		return 1
	}
	return 1 - math.Sqrt(residual2)/normX
}
