// Package sched owns the work-distribution contract for the blocked
// MTTKRP executors, the way internal/kernel owns the accumulate
// contract: how a run's work units — CSF slice ranges, multi-block
// layers, COO nonzero ranges, fiber-tree root ranges — are carved into
// shares and handed to the prebuilt worker goroutines.
//
// Three pieces compose:
//
//   - Shares / UniformChunks: the single weighted-partition routine
//     both internal/core and internal/nmode previously duplicated
//     (and both got subtly wrong on skewed weights — see Shares).
//   - Queue: the per-executor distribution state. It precomputes a
//     static layout (one contiguous share per worker, bit-identical
//     to the historical behaviour) and, when the plan asks for it, a
//     chunked work-stealing layout (many weight-balanced chunks,
//     per-worker segments, forward-only atomic cursors). Both live in
//     the cold ensure half of the workspace; the hot Next path is
//     zero-allocation.
//   - Controller: the adaptive half. Fed the measured per-window
//     imbalance from internal/metrics, it promotes an executor from
//     the static layout to the stealing layout when the imbalance
//     stays above a threshold for a configurable number of runs.
//
// The package sits below core/nmode/engine and imports nothing from
// them, so every executor layer can share it without cycles.
package sched

import "fmt"

// Policy selects how an executor distributes work units to workers.
type Policy uint8

const (
	// PolicyStatic is the paper's layout-driven split: each worker owns
	// one precomputed contiguous share (or, for multi-block layer
	// queues, workers drain one shared layer counter). Deterministic
	// worker→work assignment, bit-identical to the pre-sched executors.
	PolicyStatic Policy = iota
	// PolicySteal carves the same work into smaller weight-balanced
	// chunks and lets idle workers steal from their neighbours'
	// segments. Output rows of distinct chunks are disjoint for every
	// tree-based method, so results stay bit-identical to static; only
	// the assignment of chunk to worker becomes dynamic.
	PolicySteal
	// PolicyAdaptive starts static and promotes to stealing when the
	// metrics-measured worker imbalance stays above the controller's
	// threshold for its patience window. Promotion is a one-way ratchet
	// (see Controller), so a run never thrashes between layouts.
	PolicyAdaptive
)

// Resolved scheduler names as they appear in metrics.Snapshot.Sched
// and BENCH records. The adaptive policy reports which layout it is
// currently running; the promotion happens on the hot path, so both
// strings are preallocated constants.
const (
	StaticName         = "static"
	StealName          = "steal"
	AdaptiveName       = "adaptive"
	AdaptiveStaticName = "adaptive:static"
	AdaptiveStealName  = "adaptive:steal"
)

// Valid reports whether p is one of the defined policies. Plans are
// validated at executor construction so a stray integer fails fast
// instead of silently scheduling statically.
func (p Policy) Valid() bool { return p <= PolicyAdaptive }

func (p Policy) String() string {
	switch p {
	case PolicyStatic:
		return StaticName
	case PolicySteal:
		return StealName
	case PolicyAdaptive:
		return AdaptiveName
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// ParsePolicy maps the CLI spelling (mttkrp-bench -sched, facade) to a
// Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case StaticName:
		return PolicyStatic, nil
	case StealName:
		return PolicySteal, nil
	case AdaptiveName:
		return PolicyAdaptive, nil
	default:
		return PolicyStatic, fmt.Errorf("sched: unknown policy %q (want static, steal, or adaptive)", s)
	}
}
