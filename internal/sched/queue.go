package sched

import "sync/atomic"

// cursor is one claimant's next-chunk index, padded to a cache line so
// neighbouring workers' claims never false-share.
type cursor struct {
	v atomic.Int64
	_ [56]byte
}

// layout is one precomputed way of carving a run's work: a chunk list
// (contiguous work-unit ranges) plus the chunk-index segment each
// claimant owns. shared marks the degenerate single-segment form where
// every worker drains one queue — the historical multi-block layer
// counter.
type layout struct {
	chunks [][2]int
	segs   [][2]int
	shared bool
}

// Queue is an executor's work-distribution state. Both layouts are
// built in the cold ensure half of the workspace (allocations allowed
// there and only there); the hot half — Reset before each launch, Next
// inside each worker loop — touches only preallocated state. Promotion
// from the static to the stealing layout is a flag flip, so the
// adaptive controller can promote between runs without allocating.
//
// Claim protocol: cursors only move forward, one CAS per chunk, so
// every chunk is handed out exactly once per run, and a claimant that
// observes a segment empty can rely on it staying empty for the rest
// of the run. That makes a single forward scan over victim segments a
// complete steal search — no retry loop, no termination flag.
//
//spblock:workspace
type Queue struct {
	static   layout
	stealing layout
	// steal selects the active layout. Written only by the launching
	// goroutine between runs (SetStealing happens strictly after
	// wg.Wait and before the next go statement), so workers always
	// observe it through a happens-before edge.
	steal bool
	cur   []cursor
}

// InitStatic installs the static layout: each worker owns exactly one
// contiguous share, claimed once per run. Bit-identical to the
// pre-sched per-worker share slices.
//
//spblock:coldpath
func (q *Queue) InitStatic(shares [][2]int) {
	segs := make([][2]int, len(shares))
	for i := range segs {
		segs[i] = [2]int{i, i + 1}
	}
	q.static = layout{chunks: shares, segs: segs}
	q.ensureCursors(len(segs))
}

// InitStaticShared installs a single shared segment all workers drain
// in claim order — the historical multi-block nextLayer counter, one
// unit per block layer.
//
//spblock:coldpath
func (q *Queue) InitStaticShared(units [][2]int) {
	q.static = layout{chunks: units, segs: [][2]int{{0, len(units)}}, shared: true}
	q.ensureCursors(1)
}

// InitStealing installs the work-stealing layout: a weight-balanced
// chunk list (see StealChunks) split into one contiguous chunk-index
// segment per worker. Workers drain their own segment first and then
// scan the others.
//
//spblock:coldpath
func (q *Queue) InitStealing(chunks [][2]int, workers int) {
	if workers < 1 {
		workers = 1
	}
	segs := make([][2]int, workers)
	for w := range segs {
		segs[w] = [2]int{len(chunks) * w / workers, len(chunks) * (w + 1) / workers}
	}
	q.stealing = layout{chunks: chunks, segs: segs}
	q.ensureCursors(workers)
}

//spblock:coldpath
func (q *Queue) ensureCursors(n int) {
	if n < 1 {
		n = 1
	}
	if len(q.cur) < n {
		q.cur = make([]cursor, n)
	}
}

// SetStealing flips the active layout. A request to steal is ignored
// unless InitStealing was called — executors that must stay static
// (COO's ordered privatised reduction) simply never build the stealing
// layout. Must only be called between runs, from the goroutine that
// launches the workers.
//
//spblock:hotpath
func (q *Queue) SetStealing(on bool) {
	if on && q.stealing.chunks == nil {
		return
	}
	q.steal = on
}

// Stealing reports whether the stealing layout is active.
func (q *Queue) Stealing() bool { return q.steal }

// CanSteal reports whether a stealing layout was built — i.e. whether
// SetStealing(true) would have any effect.
func (q *Queue) CanSteal() bool { return q.stealing.chunks != nil }

// active returns the layout the current run claims from.
//
//spblock:hotpath
func (q *Queue) active() *layout {
	if q.steal {
		return &q.stealing
	}
	return &q.static
}

// Reset rewinds the active layout's cursors to the start of each
// segment. Called once per run, before the workers launch.
//
//spblock:hotpath
func (q *Queue) Reset() {
	l := q.active()
	for i := range l.segs {
		q.cur[i].v.Store(int64(l.segs[i][0]))
	}
}

// Next claims the next work-unit range for worker w. stolen reports
// that the range came from another worker's segment (counted into the
// metrics steal buckets); ok=false means the run's work is exhausted
// for this worker.
//
//spblock:hotpath
func (q *Queue) Next(w int) (lo, hi int, stolen, ok bool) {
	l := q.active()
	if l.shared {
		if c := q.claim(0, l); c >= 0 {
			u := l.chunks[c]
			return u[0], u[1], false, true
		}
		return 0, 0, false, false
	}
	if w < len(l.segs) {
		if c := q.claim(w, l); c >= 0 {
			u := l.chunks[c]
			return u[0], u[1], false, true
		}
	}
	if !q.steal {
		return 0, 0, false, false
	}
	// Own segment drained: one forward scan over the victims. Cursors
	// never rewind mid-run, so a segment observed empty is empty for
	// good and a single pass is a complete search.
	n := len(l.segs)
	for i := 1; i < n; i++ {
		v := w + i
		if v >= n {
			v -= n
		}
		if c := q.claim(v, l); c >= 0 {
			u := l.chunks[c]
			return u[0], u[1], true, true
		}
	}
	return 0, 0, false, false
}

// claim pops the next chunk index from segment s, or -1 if drained.
//
//spblock:hotpath
func (q *Queue) claim(s int, l *layout) int {
	seg := l.segs[s]
	for {
		c := q.cur[s].v.Load()
		if int(c) >= seg[1] {
			return -1
		}
		if q.cur[s].v.CompareAndSwap(c, c+1) {
			return int(c)
		}
	}
}
