package sched

import (
	"math/rand"
	"testing"
)

func cumOf(weights []int64) func(int) int64 {
	prefix := make([]int64, len(weights))
	var s int64
	for i, w := range weights {
		s += w
		prefix[i] = s
	}
	return func(i int) int64 { return prefix[i] }
}

// checkPartition pins the share invariants the executors rely on:
// shares cover exactly [0, n), are contiguous, non-overlapping,
// non-empty, and never outnumber workers.
func checkPartition(t *testing.T, shares [][2]int, n, workers int) {
	t.Helper()
	if n == 0 {
		if shares != nil {
			t.Fatalf("n=0: got %v, want nil", shares)
		}
		return
	}
	if len(shares) == 0 {
		t.Fatalf("n=%d workers=%d: no shares", n, workers)
	}
	if len(shares) > workers && workers >= 1 {
		t.Fatalf("n=%d workers=%d: %d shares exceed worker count", n, workers, len(shares))
	}
	lo := 0
	for i, s := range shares {
		if s[0] != lo {
			t.Fatalf("share %d starts at %d, want %d (gap or overlap): %v", i, s[0], lo, shares)
		}
		if s[1] <= s[0] {
			t.Fatalf("share %d empty: %v", i, shares)
		}
		lo = s[1]
	}
	if lo != n {
		t.Fatalf("shares end at %d, want %d: %v", lo, n, shares)
	}
}

func TestSharesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(200)
		workers := rng.Intn(12) + 1
		weights := make([]int64, n)
		for i := range weights {
			switch rng.Intn(3) {
			case 0:
				weights[i] = 0 // empty slices happen in real CSF
			case 1:
				weights[i] = int64(rng.Intn(10)) + 1
			default:
				weights[i] = int64(rng.Intn(1000)) + 1 // heavy tail
			}
		}
		shares := Shares(n, workers, cumOf(weights))
		checkPartition(t, shares, n, workers)
	}
}

// TestSharesSkewRegression pins the fix for the historical greedy
// partitioners: a heavy tail item made the greedy target swallow the
// whole prefix into one share, silently serialising the executor. The
// scaled-target walk must keep the partition parallel.
func TestSharesSkewRegression(t *testing.T) {
	shares := Shares(5, 2, cumOf([]int64{1, 1, 1, 1, 10}))
	if len(shares) != 2 {
		t.Fatalf("skewed tail collapsed to %v, want 2 shares", shares)
	}
	checkPartition(t, shares, 5, 2)

	// Heavy head: the first share must stop at the heavy item instead
	// of overshooting past the scaled target.
	shares = Shares(5, 2, cumOf([]int64{10, 1, 1, 1, 1}))
	if len(shares) != 2 || shares[0][1] != 1 {
		t.Fatalf("heavy head: got %v, want [[0 1] [1 5]]", shares)
	}
}

func TestSharesDegenerate(t *testing.T) {
	cum := cumOf([]int64{3, 1, 4})
	if got := Shares(0, 4, cum); got != nil {
		t.Errorf("n=0: got %v", got)
	}
	if got := Shares(3, 1, cum); len(got) != 1 || got[0] != [2]int{0, 3} {
		t.Errorf("workers=1: got %v, want [[0 3]]", got)
	}
	// More workers than items: one item per share.
	got := Shares(3, 8, cum)
	if len(got) != 3 {
		t.Errorf("workers>n: got %v, want 3 unit shares", got)
	}
	checkPartition(t, got, 3, 8)
	// All-zero weights fall back to a uniform item split.
	got = Shares(8, 4, cumOf(make([]int64, 8)))
	checkPartition(t, got, 8, 4)
	if len(got) != 4 {
		t.Errorf("weightless: got %v, want 4 uniform shares", got)
	}
}

// TestUniformChunks pins the historical nnzRanges semantics the COO
// executor's bit-identical reduction order depends on: ceil(n/chunks)
// sized ranges, nil when the split is trivial.
func TestUniformChunks(t *testing.T) {
	if got := UniformChunks(10, 1); got != nil {
		t.Errorf("chunks=1: got %v, want nil", got)
	}
	if got := UniformChunks(0, 4); got != nil {
		t.Errorf("n=0: got %v, want nil", got)
	}
	got := UniformChunks(10, 4)
	want := [][2]int{{0, 3}, {3, 6}, {6, 9}, {9, 10}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	checkPartition(t, got, 10, 4)
}

func TestStealChunksGranularity(t *testing.T) {
	weights := make([]int64, 1000)
	for i := range weights {
		weights[i] = 1
	}
	chunks := StealChunks(1000, 4, cumOf(weights))
	checkPartition(t, chunks, 1000, 4*ChunksPerWorker)
	if len(chunks) != 4*ChunksPerWorker {
		t.Errorf("uniform weights: got %d chunks, want %d", len(chunks), 4*ChunksPerWorker)
	}
}
