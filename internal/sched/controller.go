package sched

// Controller is the adaptive policy's decision loop. The executor
// feeds it one imbalance observation per run (max worker busy-time
// over mean, from metrics.Collector.WindowImbalance — 1.0 is perfectly
// balanced); when the imbalance holds at or above PromoteAbove for
// Patience consecutive runs, Observe returns true exactly once and the
// executor flips its Queue to the stealing layout.
//
// Hysteresis is a one-way ratchet: once promoted, the controller never
// demotes. The symmetric design thrashes by construction — stealing
// lowers the measured imbalance, which would argue for demotion, which
// restores the imbalance — and the stealing layout's overhead on
// already-balanced work is a couple of atomic claims per worker per
// run, far cheaper than re-oscillating the layout. The same ratchet is
// what lets promotion stay on the allocation-free hot path: there is
// exactly one transition, and both layouts were prebuilt for it.
type Controller struct {
	cfg      ControllerConfig
	streak   int
	promoted bool
}

// ControllerConfig tunes the promotion threshold. The zero value picks
// the defaults below.
type ControllerConfig struct {
	// PromoteAbove is the imbalance ratio at or above which a run
	// counts toward promotion. Default 1.25: the slowest worker runs
	// 25% past the mean, i.e. a quarter of the parallel time is spent
	// waiting on stragglers.
	PromoteAbove float64
	// Patience is how many consecutive runs must breach PromoteAbove
	// before promoting. Default 3: one skewed run can be scheduling
	// noise or a cold cache; three in a row is a workload property.
	Patience int
}

const (
	// DefaultPromoteAbove and DefaultPatience are the zero-value
	// ControllerConfig thresholds.
	DefaultPromoteAbove = 1.25
	DefaultPatience     = 3
)

// NewController returns a controller with cfg's zero fields filled
// with the defaults.
func NewController(cfg ControllerConfig) *Controller {
	if cfg.PromoteAbove <= 0 {
		cfg.PromoteAbove = DefaultPromoteAbove
	}
	if cfg.Patience <= 0 {
		cfg.Patience = DefaultPatience
	}
	return &Controller{cfg: cfg}
}

// Observe records one run's measured imbalance and reports whether the
// executor should promote to stealing now. Returns true at most once
// over the controller's lifetime. Runs on the executor hot path: no
// allocation, a handful of compares.
//
//spblock:hotpath
func (c *Controller) Observe(imbalance float64) bool {
	if c.promoted {
		return false
	}
	if imbalance >= c.cfg.PromoteAbove {
		c.streak++
	} else {
		c.streak = 0
	}
	if c.streak >= c.cfg.Patience {
		c.promoted = true
		return true
	}
	return false
}

// Promoted reports whether the ratchet has fired.
func (c *Controller) Promoted() bool { return c.promoted }
