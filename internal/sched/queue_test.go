package sched

import (
	"sync"
	"testing"
)

// drain claims everything worker w can reach and returns the covered
// item ranges plus how many claims were steals.
func drain(q *Queue, w int) (ranges [][2]int, steals int) {
	for {
		lo, hi, stolen, ok := q.Next(w)
		if !ok {
			return ranges, steals
		}
		if stolen {
			steals++
		}
		ranges = append(ranges, [2]int{lo, hi})
	}
}

// TestQueueStaticOwnShare: under the static layout each worker claims
// exactly its own share, in order, and never steals — the pre-sched
// assignment, bit for bit.
func TestQueueStaticOwnShare(t *testing.T) {
	shares := [][2]int{{0, 5}, {5, 9}, {9, 20}}
	var q Queue
	q.InitStatic(shares)
	for run := 0; run < 3; run++ {
		q.Reset()
		for w, want := range shares {
			got, steals := drain(&q, w)
			if steals != 0 {
				t.Fatalf("run %d worker %d stole %d chunks under static", run, w, steals)
			}
			if len(got) != 1 || got[0] != want {
				t.Fatalf("run %d worker %d claimed %v, want [%v]", run, w, got, want)
			}
		}
		// A worker beyond the share count finds nothing.
		if got, _ := drain(&q, len(shares)); got != nil {
			t.Fatalf("run %d extra worker claimed %v", run, got)
		}
	}
}

// TestQueueStaticShared: the shared single-segment form hands units
// out in claim order to whoever asks — the historical MB layer
// counter.
func TestQueueStaticShared(t *testing.T) {
	units := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	var q Queue
	q.InitStaticShared(units)
	q.Reset()
	seen := make(map[int]bool)
	for i := 0; i < len(units); i++ {
		lo, hi, stolen, ok := q.Next(i % 2)
		if !ok || stolen {
			t.Fatalf("claim %d: ok=%v stolen=%v", i, ok, stolen)
		}
		if hi != lo+1 || seen[lo] {
			t.Fatalf("claim %d: bad or duplicate unit [%d,%d)", i, lo, hi)
		}
		seen[lo] = true
	}
	if _, _, _, ok := q.Next(0); ok {
		t.Fatal("drained queue still handing out units")
	}
}

// TestQueueStealExactlyOnce: under concurrent draining with stealing
// active, every item is claimed exactly once per run. Run under -race
// this also checks the claim protocol's memory discipline.
func TestQueueStealExactlyOnce(t *testing.T) {
	const n, workers = 503, 4
	chunks := StealChunks(n, workers, func(i int) int64 { return int64(i + 1) })
	var q Queue
	q.InitStatic(Shares(n, workers, func(i int) int64 { return int64(i + 1) }))
	q.InitStealing(chunks, workers)
	q.SetStealing(true)
	if !q.Stealing() {
		t.Fatal("SetStealing(true) did not activate the stealing layout")
	}
	for run := 0; run < 5; run++ {
		q.Reset()
		claimed := make([][][2]int, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				claimed[w], _ = drain(&q, w)
			}(w)
		}
		wg.Wait()
		got := make([]int, n)
		for _, rs := range claimed {
			for _, r := range rs {
				for i := r[0]; i < r[1]; i++ {
					got[i]++
				}
			}
		}
		for i, c := range got {
			if c != 1 {
				t.Fatalf("run %d: item %d claimed %d times", run, i, c)
			}
		}
	}
}

// TestQueueStealVictimScan: a worker whose own segment is empty steals
// the rest of the queue, and the steals are flagged.
func TestQueueStealVictimScan(t *testing.T) {
	chunks := [][2]int{{0, 2}, {2, 4}, {4, 6}, {6, 8}}
	var q Queue
	q.InitStealing(chunks, 2) // segs: worker 0 -> chunks 0,1; worker 1 -> chunks 2,3
	q.SetStealing(true)
	q.Reset()
	ranges, steals := drain(&q, 0)
	if len(ranges) != 4 || steals != 2 {
		t.Fatalf("lone worker claimed %v with %d steals, want all 4 chunks with 2 steals", ranges, steals)
	}
}

// TestQueueSetStealingRequiresLayout: an executor that never built a
// stealing layout (COO) cannot be promoted — the flip is ignored.
func TestQueueSetStealingRequiresLayout(t *testing.T) {
	var q Queue
	q.InitStatic([][2]int{{0, 3}, {3, 6}})
	q.SetStealing(true)
	if q.Stealing() {
		t.Fatal("queue without a stealing layout accepted promotion")
	}
	q.Reset()
	if got, _ := drain(&q, 0); len(got) != 1 || got[0] != [2]int{0, 3} {
		t.Fatalf("static claim after ignored promotion: %v", got)
	}
}

// TestQueuePromotionBetweenRuns: the adaptive flip mid-lifetime — runs
// before promotion behave statically, runs after drain the stealing
// layout, with no re-initialisation in between.
func TestQueuePromotionBetweenRuns(t *testing.T) {
	n := 24
	cum := func(i int) int64 { return int64(i + 1) }
	var q Queue
	q.InitStatic(Shares(n, 3, cum))
	q.InitStealing(StealChunks(n, 3, cum), 3)

	q.Reset()
	covered := 0
	for w := 0; w < 3; w++ {
		rs, steals := drain(&q, w)
		if steals != 0 {
			t.Fatalf("pre-promotion worker %d stole", w)
		}
		for _, r := range rs {
			covered += r[1] - r[0]
		}
	}
	if covered != n {
		t.Fatalf("static run covered %d of %d items", covered, n)
	}

	q.SetStealing(true)
	q.Reset()
	covered = 0
	for w := 0; w < 3; w++ {
		rs, _ := drain(&q, w)
		for _, r := range rs {
			covered += r[1] - r[0]
		}
	}
	if covered != n {
		t.Fatalf("post-promotion run covered %d of %d items", covered, n)
	}
}
