package sched

import "testing"

// TestControllerPromotesAfterPatience: the controller ignores
// imbalance spikes shorter than its patience window and fires exactly
// once when the threshold holds.
func TestControllerPromotesAfterPatience(t *testing.T) {
	c := NewController(ControllerConfig{PromoteAbove: 1.25, Patience: 3})
	// Two breaches, then a calm run: streak must reset.
	for _, imb := range []float64{1.5, 1.5, 1.0} {
		if c.Observe(imb) {
			t.Fatalf("promoted on interrupted streak at imbalance %v", imb)
		}
	}
	// Three consecutive breaches: fires on the third.
	if c.Observe(1.3) || c.Observe(1.3) {
		t.Fatal("promoted before patience expired")
	}
	if !c.Observe(1.3) {
		t.Fatal("did not promote after patience consecutive breaches")
	}
	if !c.Promoted() {
		t.Fatal("Promoted() false after firing")
	}
}

// TestControllerNeverThrashes pins the one-way ratchet: after
// promotion, no observation — however balanced or however skewed —
// produces another transition. Stealing lowers the measured imbalance,
// so a symmetric controller would demote and re-promote forever; the
// ratchet makes the post-promotion signal inert.
func TestControllerNeverThrashes(t *testing.T) {
	c := NewController(ControllerConfig{PromoteAbove: 1.2, Patience: 1})
	if !c.Observe(2.0) {
		t.Fatal("patience=1 controller did not promote on first breach")
	}
	for _, imb := range []float64{0.9, 1.0, 5.0, 1.0, 3.0} {
		if c.Observe(imb) {
			t.Fatalf("controller fired again at imbalance %v after promotion", imb)
		}
	}
	if !c.Promoted() {
		t.Fatal("ratchet lost its promoted state")
	}
}

// TestControllerDefaults: the zero config picks the documented
// defaults and behaves sanely at the threshold boundary.
func TestControllerDefaults(t *testing.T) {
	c := NewController(ControllerConfig{})
	for i := 0; i < DefaultPatience-1; i++ {
		if c.Observe(DefaultPromoteAbove) {
			t.Fatalf("promoted after %d runs, patience is %d", i+1, DefaultPatience)
		}
	}
	if !c.Observe(DefaultPromoteAbove) {
		t.Fatal("threshold breach at exactly PromoteAbove did not count")
	}
	// Balanced work never promotes.
	c = NewController(ControllerConfig{})
	for i := 0; i < 100; i++ {
		if c.Observe(1.0) {
			t.Fatal("balanced runs promoted")
		}
	}
}
