package sched

// This file is the one share-computation routine in the tree. Both
// internal/core (CSF slice shares, nnz-weighted) and internal/nmode
// (root shares, leaf-weighted) previously carried near-identical
// greedy partitioners with the same defect: the greedy target
// `total/workers` measured each share in isolation, so a heavy tail
// item let an early share swallow the whole prefix and collapsed the
// partition to a single degenerate share — the executor then ran
// sequentially on exactly the skewed inputs parallelism matters for.
// Shares fixes that by walking cumulative scaled targets (share w ends
// at the item nearest total*w/workers), which bounds every share's
// weight error by one item and can never produce fewer shares than the
// weight distribution forces.

// Shares partitions the items [0, n) into at most workers contiguous,
// non-overlapping, non-empty ranges of approximately equal cumulative
// weight. cum(i) must return the total weight of items [0, i] and be
// non-decreasing; it is called O(n) times, so it should be O(1) (an
// index into a prefix-sum array or CSF pointer level).
//
// Degenerate cases: n <= 0 returns nil; workers <= 1 returns the
// single share {0, n}. When the weight mass is concentrated on fewer
// than workers items, fewer than workers shares come back — callers
// size their worker pool from len(shares).
//
//spblock:coldpath
func Shares(n, workers int, cum func(int) int64) [][2]int {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return [][2]int{{0, n}}
	}
	total := cum(n - 1)
	if total <= 0 {
		// Weightless items (e.g. an all-empty slice range): fall back
		// to a uniform item split.
		return Shares(n, workers, func(i int) int64 { return int64(i + 1) })
	}
	shares := make([][2]int, 0, workers)
	lo := 0
	for w := 1; w <= workers && lo < n; w++ {
		if w == workers {
			shares = append(shares, [2]int{lo, n})
			break
		}
		target := total * int64(w) / int64(workers)
		// Advance to the first boundary at or past the scaled target...
		hi := lo + 1
		for hi < n && cum(hi-1) < target {
			hi++
		}
		// ...then step back one item if the previous boundary sits
		// closer to it. Without this, one heavy item just past the
		// target drags the entire prefix into this share.
		if hi-1 > lo && cum(hi-1)-target > target-cum(hi-2) {
			hi--
		}
		shares = append(shares, [2]int{lo, hi})
		lo = hi
	}
	return shares
}

// UniformChunks splits [0, n) into ceil(n/chunks)-sized ranges — the
// historical nnzRanges split used by the COO executor, preserved
// verbatim so COO's privatised-output reduction order (and therefore
// its floating-point result) is unchanged. Returns nil when the split
// degenerates to a single range.
//
//spblock:coldpath
func UniformChunks(n, chunks int) [][2]int {
	if chunks > n {
		chunks = n
	}
	if chunks <= 1 {
		return nil
	}
	size := (n + chunks - 1) / chunks
	ranges := make([][2]int, 0, chunks)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		ranges = append(ranges, [2]int{lo, hi})
	}
	return ranges
}

// UnitRanges returns the n single-item ranges {i, i+1} — the unit list
// for shared-queue layouts where one work unit is one multi-block
// layer.
//
//spblock:coldpath
func UnitRanges(n int) [][2]int {
	units := make([][2]int, n)
	for i := range units {
		units[i] = [2]int{i, i + 1}
	}
	return units
}

// ChunksPerWorker is the work-stealing granularity: the stealing
// layout carves roughly this many weight-balanced chunks per worker.
// Small enough that a worker finishing early finds meaningful work to
// steal, large enough that the per-chunk atomic claim stays noise
// against the kernel work inside a chunk.
const ChunksPerWorker = 8

// StealChunks carves [0, n) into the stealing layout's chunk list:
// up to workers*ChunksPerWorker weight-balanced contiguous ranges.
//
//spblock:coldpath
func StealChunks(n, workers int, cum func(int) int64) [][2]int {
	if workers < 1 {
		workers = 1
	}
	return Shares(n, workers*ChunksPerWorker, cum)
}
