package sched

// Replanner is the between-sweep replanning hook, mirroring als's
// SweepStarter/SweepRecoverer extension pattern: an ALS kernel that
// also implements Replanner is offered the gap after each successful,
// non-final sweep to act on the metrics gathered so far — typically by
// asking internal/autotune to re-cost the plan space under the
// measured imbalance and rebuilding its executors on a layout or
// scheduler the model now prefers. sweep is the 0-based index of the
// sweep that just completed. Returning an error aborts the
// decomposition; a kernel that merely decides not to replan returns
// nil.
type Replanner interface {
	ReplanSweep(sweep int) error
}
