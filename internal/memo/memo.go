// Package memo implements memoized MTTKRP for third-order tensors, the
// storage-for-time trade the paper's related work attributes to the
// HyperTensor extension ("memoization, which trades off storage
// overhead in order to reduce the cost of individual MTTKRP
// operations", Kaya's dimension trees).
//
// The observation for N = 3: the mode-1 and mode-2 products share the
// contraction over mode 3,
//
//	S[(i,j)] = Σ_k x_{ijk} · C[k,:]   (one row per non-empty (i,j) pair)
//
// so one pass over the nonzeros (2·R·nnz flops) plus two passes over
// the P = #distinct (i,j) pairs (2·R·P flops each) replaces two full
// MTTKRPs (≈ 4·R·nnz flops). The cost is storing S: P×R doubles. A
// CP-ALS sweep updates A and B from the same C, so S stays valid for
// both folds; mode 3 runs a plain MTTKRP.
package memo

import (
	"fmt"

	"spblock/internal/la"
	"spblock/internal/tensor"
)

// Engine owns the (i,j)-pair structure and the memo buffer.
type Engine struct {
	dims tensor.Dims

	// pairI/pairJ identify each non-empty (i, j) pair; pairs are sorted.
	pairI, pairJ []tensor.Index
	// pairPtr[p] .. pairPtr[p+1] is pair p's range in leafK/leafVal.
	pairPtr []int32
	leafK   []tensor.Index
	leafVal []float64

	// s is the memo buffer (P × rank), reallocated when the rank changes.
	s *la.Matrix
}

// NewEngine builds the pair structure from t. The input is unchanged.
func NewEngine(t *tensor.COO) (*Engine, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	// Sort a copy by (i, j, k) with three stable counting passes.
	srcI, srcJ, srcK, srcV := t.I, t.J, t.K, t.Val
	n := t.NNZ()
	dstI := make([]tensor.Index, n)
	dstJ := make([]tensor.Index, n)
	dstK := make([]tensor.Index, n)
	dstV := make([]float64, n)
	// Copy first so the source slices are ours to ping-pong.
	dstI = append(dstI[:0], srcI...)
	dstJ = append(dstJ[:0], srcJ...)
	dstK = append(dstK[:0], srcK...)
	dstV = append(dstV[:0], srcV...)
	srcI, srcJ, srcK, srcV = dstI, dstJ, dstK, dstV
	dstI = make([]tensor.Index, n)
	dstJ = make([]tensor.Index, n)
	dstK = make([]tensor.Index, n)
	dstV = make([]float64, n)
	for pass := 0; pass < 3; pass++ {
		var key []tensor.Index
		var dim int
		switch pass {
		case 0:
			key, dim = srcK, t.Dims[2]
		case 1:
			key, dim = srcJ, t.Dims[1]
		default:
			key, dim = srcI, t.Dims[0]
		}
		counts := make([]int32, dim+1)
		for _, v := range key {
			counts[v+1]++
		}
		for d := 0; d < dim; d++ {
			counts[d+1] += counts[d]
		}
		for p := 0; p < n; p++ {
			pos := counts[key[p]]
			counts[key[p]]++
			dstI[pos], dstJ[pos], dstK[pos], dstV[pos] = srcI[p], srcJ[p], srcK[p], srcV[p]
		}
		srcI, dstI = dstI, srcI
		srcJ, dstJ = dstJ, srcJ
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}

	e := &Engine{dims: t.Dims, leafK: srcK, leafVal: srcV}
	for p := 0; p < n; p++ {
		if p == 0 || srcI[p] != srcI[p-1] || srcJ[p] != srcJ[p-1] {
			e.pairI = append(e.pairI, srcI[p])
			e.pairJ = append(e.pairJ, srcJ[p])
			e.pairPtr = append(e.pairPtr, int32(p))
		}
	}
	e.pairPtr = append(e.pairPtr, int32(n))
	return e, nil
}

// NumPairs returns P, the number of distinct (i, j) pairs.
func (e *Engine) NumPairs() int { return len(e.pairI) }

// MemoBytes returns the memo buffer size for a given rank — the
// storage overhead of the method.
func (e *Engine) MemoBytes(rank int) int64 {
	return int64(e.NumPairs()) * int64(rank) * 8
}

// ComputeS contracts the tensor with the mode-3 factor C into the memo
// buffer: S[p,:] = Σ_{k in pair p} val · C[k,:].
func (e *Engine) ComputeS(c *la.Matrix) error {
	if c.Rows != e.dims[2] {
		return fmt.Errorf("memo: C has %d rows, want %d", c.Rows, e.dims[2])
	}
	r := c.Cols
	if r == 0 {
		return fmt.Errorf("memo: rank must be positive")
	}
	// Reuse the memo buffer by capacity, not by exact shape: a CP-ALS
	// driver that lowers the rank on a long-lived engine (the common
	// case once engines are cached and shared across jobs) must not keep
	// the larger stale matrix header around forever, nor pay a fresh
	// P×r allocation for a buffer that already fits. Retention is
	// bounded by the high-water rank.
	need := e.NumPairs() * r
	if e.s == nil || cap(e.s.Data) < need {
		e.s = la.NewMatrix(e.NumPairs(), r)
	} else {
		e.s.Rows, e.s.Cols, e.s.Stride = e.NumPairs(), r, r
		e.s.Data = e.s.Data[:need]
		e.s.Zero()
	}
	for p := 0; p < e.NumPairs(); p++ {
		row := e.s.Row(p)
		for q := e.pairPtr[p]; q < e.pairPtr[p+1]; q++ {
			v := e.leafVal[q]
			crow := c.Row(int(e.leafK[q]))
			for x := range row {
				row[x] += v * crow[x]
			}
		}
	}
	return nil
}

// FoldMode1 computes the mode-1 MTTKRP from the memo buffer:
// out[i,:] += S[p,:] ∘ B[j_p,:] for every pair p with pairI[p] == i.
// ComputeS must have run with the current C. out is zeroed first.
func (e *Engine) FoldMode1(b, out *la.Matrix) error {
	if err := e.checkFold(b, out, e.dims[1], e.dims[0]); err != nil {
		return err
	}
	out.Zero()
	for p := 0; p < e.NumPairs(); p++ {
		srow := e.s.Row(p)
		brow := b.Row(int(e.pairJ[p]))
		orow := out.Row(int(e.pairI[p]))
		for x := range srow {
			orow[x] += srow[x] * brow[x]
		}
	}
	return nil
}

// FoldMode2 computes the mode-2 MTTKRP from the memo buffer:
// out[j,:] += S[p,:] ∘ A[i_p,:]. ComputeS must have run with the
// current C. out is zeroed first.
func (e *Engine) FoldMode2(a, out *la.Matrix) error {
	if err := e.checkFold(a, out, e.dims[0], e.dims[1]); err != nil {
		return err
	}
	out.Zero()
	for p := 0; p < e.NumPairs(); p++ {
		srow := e.s.Row(p)
		arow := a.Row(int(e.pairI[p]))
		orow := out.Row(int(e.pairJ[p]))
		for x := range srow {
			orow[x] += srow[x] * arow[x]
		}
	}
	return nil
}

func (e *Engine) checkFold(f, out *la.Matrix, fRows, outRows int) error {
	if e.s == nil {
		return fmt.Errorf("memo: ComputeS has not run")
	}
	if f.Cols != e.s.Cols || out.Cols != e.s.Cols {
		return fmt.Errorf("memo: rank mismatch (%d, %d vs memo %d)", f.Cols, out.Cols, e.s.Cols)
	}
	if f.Rows != fRows {
		return fmt.Errorf("memo: factor has %d rows, want %d", f.Rows, fRows)
	}
	if out.Rows != outRows {
		return fmt.Errorf("memo: out has %d rows, want %d", out.Rows, outRows)
	}
	return nil
}

// FlopsPlain returns the flop count of computing modes 1 and 2 with two
// plain SPLATT MTTKRPs (Equation 2, counting the dominant nnz term and
// the fiber term F of each orientation as equal to nnz for simplicity
// of comparison: 2 · 2·R·nnz).
func (e *Engine) FlopsPlain(rank, nnz int) int64 {
	return 2 * 2 * int64(rank) * int64(nnz)
}

// FlopsMemoized returns the flop count of ComputeS + two folds:
// 2·R·nnz + 2 · 2·R·P.
func (e *Engine) FlopsMemoized(rank, nnz int) int64 {
	return 2*int64(rank)*int64(nnz) + 2*2*int64(rank)*int64(e.NumPairs())
}
