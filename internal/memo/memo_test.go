package memo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spblock/internal/core"
	"spblock/internal/la"
	"spblock/internal/tensor"
)

func randCOO(rng *rand.Rand, dims tensor.Dims, nnz int) *tensor.COO {
	t := tensor.NewCOO(dims, nnz)
	for p := 0; p < nnz; p++ {
		t.Append(
			tensor.Index(rng.Intn(dims[0])),
			tensor.Index(rng.Intn(dims[1])),
			tensor.Index(rng.Intn(dims[2])),
			rng.NormFloat64(),
		)
	}
	t.Dedup()
	return t
}

func randMatrix(rng *rand.Rand, rows, cols int) *la.Matrix {
	m := la.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewEngineValidation(t *testing.T) {
	bad := tensor.NewCOO(tensor.Dims{2, 2, 2}, 0)
	bad.Append(5, 0, 0, 1)
	if _, err := NewEngine(bad); err == nil {
		t.Fatal("invalid tensor accepted")
	}
}

func TestPairStructure(t *testing.T) {
	x := tensor.NewCOO(tensor.Dims{3, 3, 4}, 0)
	x.Append(0, 0, 1, 1)
	x.Append(0, 0, 3, 2) // same pair (0,0)
	x.Append(0, 1, 0, 3)
	x.Append(2, 0, 2, 4)
	e, err := NewEngine(x)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumPairs() != 3 {
		t.Fatalf("pairs = %d, want 3", e.NumPairs())
	}
	if e.MemoBytes(16) != 3*16*8 {
		t.Fatalf("MemoBytes = %d", e.MemoBytes(16))
	}
}

func TestFoldsMatchPlainMTTKRP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dims := tensor.Dims{12, 14, 10}
	x := randCOO(rng, dims, 400)
	e, err := NewEngine(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, rank := range []int{1, 8, 17, 32} {
		a := randMatrix(rng, dims[0], rank)
		b := randMatrix(rng, dims[1], rank)
		c := randMatrix(rng, dims[2], rank)

		if err := e.ComputeS(c); err != nil {
			t.Fatal(err)
		}

		// Mode 1 oracle: plain SPLATT kernel.
		want1 := la.NewMatrix(dims[0], rank)
		if err := core.MTTKRP(x, b, c, want1, core.Plan{Method: core.MethodSPLATT, Workers: 1}); err != nil {
			t.Fatal(err)
		}
		got1 := la.NewMatrix(dims[0], rank)
		if err := e.FoldMode1(b, got1); err != nil {
			t.Fatal(err)
		}
		if d := got1.MaxAbsDiff(want1); d > 1e-9 {
			t.Fatalf("rank %d: mode-1 fold differs by %v", rank, d)
		}

		// Mode 2 oracle: permuted plain kernel.
		perm, err := x.PermuteModes([3]int{1, 0, 2})
		if err != nil {
			t.Fatal(err)
		}
		want2 := la.NewMatrix(dims[1], rank)
		if err := core.MTTKRP(perm, a, c, want2, core.Plan{Method: core.MethodSPLATT, Workers: 1}); err != nil {
			t.Fatal(err)
		}
		got2 := la.NewMatrix(dims[1], rank)
		if err := e.FoldMode2(a, got2); err != nil {
			t.Fatal(err)
		}
		if d := got2.MaxAbsDiff(want2); d > 1e-9 {
			t.Fatalf("rank %d: mode-2 fold differs by %v", rank, d)
		}
	}
}

func TestFoldValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dims := tensor.Dims{4, 5, 6}
	x := randCOO(rng, dims, 30)
	e, err := NewEngine(x)
	if err != nil {
		t.Fatal(err)
	}
	b := randMatrix(rng, 5, 8)
	out := la.NewMatrix(4, 8)
	if err := e.FoldMode1(b, out); err == nil {
		t.Fatal("fold before ComputeS accepted")
	}
	if err := e.ComputeS(randMatrix(rng, 5, 8)); err == nil {
		t.Fatal("wrong C rows accepted")
	}
	if err := e.ComputeS(la.NewMatrix(6, 0)); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if err := e.ComputeS(randMatrix(rng, 6, 8)); err != nil {
		t.Fatal(err)
	}
	if err := e.FoldMode1(randMatrix(rng, 5, 4), out); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if err := e.FoldMode1(randMatrix(rng, 4, 8), out); err == nil {
		t.Fatal("wrong factor rows accepted")
	}
	if err := e.FoldMode2(randMatrix(rng, 4, 8), la.NewMatrix(3, 8)); err == nil {
		t.Fatal("wrong out rows accepted")
	}
}

func TestComputeSRankChangeReallocates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randCOO(rng, tensor.Dims{6, 6, 6}, 50)
	e, err := NewEngine(x)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ComputeS(randMatrix(rng, 6, 8)); err != nil {
		t.Fatal(err)
	}
	if err := e.ComputeS(randMatrix(rng, 6, 16)); err != nil {
		t.Fatal(err)
	}
	out := la.NewMatrix(6, 16)
	if err := e.FoldMode1(randMatrix(rng, 6, 16), out); err != nil {
		t.Fatal(err)
	}
}

func TestFlopAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Long fibers in k: many nonzeros share (i,j) pairs, so P << nnz
	// and memoization pays off.
	x := tensor.NewCOO(tensor.Dims{10, 10, 200}, 0)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			for k := 0; k < 50; k++ {
				x.Append(tensor.Index(i), tensor.Index(j), tensor.Index(rng.Intn(200)), 1)
			}
		}
	}
	x.Dedup()
	e, err := NewEngine(x)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumPairs() != 100 {
		t.Fatalf("pairs = %d, want 100", e.NumPairs())
	}
	plain := e.FlopsPlain(64, x.NNZ())
	memo := e.FlopsMemoized(64, x.NNZ())
	if memo >= plain {
		t.Fatalf("memoization does not save flops: %d >= %d", memo, plain)
	}
	// With P = nnz/48 the saving should approach the 2x bound.
	if float64(plain)/float64(memo) < 1.5 {
		t.Fatalf("saving ratio %.2f below 1.5", float64(plain)/float64(memo))
	}
}

// Property: folds match a brute-force per-nonzero computation for
// random tensors and ranks.
func TestQuickMemoFolds(t *testing.T) {
	f := func(seed int64, r uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := tensor.Dims{6, 7, 5}
		x := randCOO(rng, dims, 100)
		rank := int(r%20) + 1
		a := randMatrix(rng, dims[0], rank)
		b := randMatrix(rng, dims[1], rank)
		c := randMatrix(rng, dims[2], rank)
		e, err := NewEngine(x)
		if err != nil {
			return false
		}
		if e.ComputeS(c) != nil {
			return false
		}
		want1 := la.NewMatrix(dims[0], rank)
		want2 := la.NewMatrix(dims[1], rank)
		for p := 0; p < x.NNZ(); p++ {
			arow := a.Row(int(x.I[p]))
			brow := b.Row(int(x.J[p]))
			crow := c.Row(int(x.K[p]))
			o1 := want1.Row(int(x.I[p]))
			o2 := want2.Row(int(x.J[p]))
			for q := 0; q < rank; q++ {
				o1[q] += x.Val[p] * brow[q] * crow[q]
				o2[q] += x.Val[p] * arow[q] * crow[q]
			}
		}
		got1 := la.NewMatrix(dims[0], rank)
		got2 := la.NewMatrix(dims[1], rank)
		if e.FoldMode1(b, got1) != nil || e.FoldMode2(a, got2) != nil {
			return false
		}
		return got1.MaxAbsDiff(want1) < 1e-9 && got2.MaxAbsDiff(want2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestComputeSRankChangeReuse pins the memo buffer's shrink-or-reuse
// contract: lowering the rank on a long-lived engine must reuse the
// existing allocation (0 allocs, retention bounded by the high-water
// rank) while the folds stay correct at the new rank, and growing past
// the high-water mark allocates a fresh buffer.
func TestComputeSRankChangeReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dims := tensor.Dims{9, 8, 7}
	x := randCOO(rng, dims, 160)
	e, err := NewEngine(x)
	if err != nil {
		t.Fatal(err)
	}
	const hi, lo = 12, 5
	cHi := randMatrix(rng, dims[2], hi)
	if err := e.ComputeS(cHi); err != nil {
		t.Fatal(err)
	}
	hiData := &e.s.Data[0]
	hiCap := cap(e.s.Data)

	cLo := randMatrix(rng, dims[2], lo)
	allocs := testing.AllocsPerRun(10, func() {
		if err := e.ComputeS(cLo); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ComputeS after rank decrease allocated %.0f times per run, want 0", allocs)
	}
	if &e.s.Data[0] != hiData {
		t.Fatalf("rank decrease replaced the memo buffer instead of reusing it")
	}
	if cap(e.s.Data) != hiCap {
		t.Fatalf("memo buffer capacity changed across shrink: %d -> %d", hiCap, cap(e.s.Data))
	}
	if e.s.Rows != e.NumPairs() || e.s.Cols != lo || e.s.Stride != lo || len(e.s.Data) != e.NumPairs()*lo {
		t.Fatalf("shrunk memo header wrong: %dx%d stride %d len %d",
			e.s.Rows, e.s.Cols, e.s.Stride, len(e.s.Data))
	}

	// Folds at the shrunk rank must match a fresh engine (no stale
	// high-rank values can leak through the reused storage).
	b := randMatrix(rng, dims[1], lo)
	got := la.NewMatrix(dims[0], lo)
	if err := e.FoldMode1(b, got); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewEngine(x)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.ComputeS(cLo); err != nil {
		t.Fatal(err)
	}
	want := la.NewMatrix(dims[0], lo)
	if err := fresh.FoldMode1(b, want); err != nil {
		t.Fatal(err)
	}
	if d := got.MaxAbsDiff(want); d != 0 {
		t.Fatalf("fold after shrink differs from fresh engine by %g", d)
	}

	// Growing back within capacity still reuses; past it, reallocates.
	if err := e.ComputeS(cHi); err != nil {
		t.Fatal(err)
	}
	if &e.s.Data[0] != hiData {
		t.Fatalf("regrow within high-water capacity reallocated")
	}
	cBig := randMatrix(rng, dims[2], hi+4)
	if err := e.ComputeS(cBig); err != nil {
		t.Fatal(err)
	}
	if got := e.s.Cols; got != hi+4 {
		t.Fatalf("grown memo rank = %d, want %d", got, hi+4)
	}
	if cap(e.s.Data) < e.NumPairs()*(hi+4) {
		t.Fatalf("grown memo buffer too small: cap %d", cap(e.s.Data))
	}
}
