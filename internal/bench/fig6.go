package bench

import (
	"fmt"

	"spblock/internal/autotune"
	"spblock/internal/cachesim"
	"spblock/internal/core"
	"spblock/internal/gen"
	"spblock/internal/la"
	"spblock/internal/roofline"
	"spblock/internal/tensor"
)

// Fig6Ranks are the decomposition ranks swept in Figure 6. The paper
// sweeps 16–2048; the bench default stops at 512 to keep the
// single-core run in minutes (the trend is established well before).
var Fig6Ranks = []int{16, 32, 64, 128, 256, 512}

// Fig6Datasets lists the six data sets of Figure 6(a)–(f).
var Fig6Datasets = []string{"Poisson2", "Poisson3", "NELL2", "Netflix", "Reddit", "Amazon"}

// Fig6 regenerates Figure 6: speedup of MB, RankB and MB+RankB over
// SPLATT across ranks and data sets. Block sizes come from the
// Sec. V-C heuristic, tuned once per data set at a mid-range rank and
// reused across the sweep (full per-rank tuning would multiply the
// wall-clock cost without changing the trend).
func Fig6(cfg Config, ranks []int, datasets []string) (*Table, error) {
	cfg = cfg.withDefaults()
	if len(ranks) == 0 {
		ranks = Fig6Ranks
	}
	if len(datasets) == 0 {
		datasets = Fig6Datasets
	}
	t := &Table{
		Title:  "Figure 6: speedup of blocking methods over SPLATT",
		Note:   "block sizes from the Sec. V-C heuristic (tuned at rank 64)",
		Header: []string{"Dataset", "Rank", "SPLATT (s)", "MB", "RankB", "MB+RankB", "Tuned grid", "Tuned BS"},
	}
	for _, name := range datasets {
		x, _, err := Dataset(cfg, name)
		if err != nil {
			return nil, err
		}
		if _, err := gen.Lookup(name); err != nil {
			return nil, err
		}
		// Tune once per data set at a mid-range rank.
		tuneOpts := core.AutotuneOptions{Trials: 1, Seed: cfg.Seed, Workers: cfg.Workers}
		mbPlan, _, err := core.Autotune(x, 64, core.MethodMB, tuneOpts)
		if err != nil {
			return nil, err
		}
		combPlan, _, err := core.Autotune(x, 64, core.MethodMBRankB, tuneOpts)
		if err != nil {
			return nil, err
		}

		splattExec, err := core.NewExecutor(x, core.Plan{Method: core.MethodSPLATT, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		mbExec, err := core.NewExecutor(x, mbPlan)
		if err != nil {
			return nil, err
		}
		combExec, err := core.NewExecutor(x, combPlan)
		if err != nil {
			return nil, err
		}

		for _, rank := range ranks {
			b := randomMatrix(x.Dims[1], rank, cfg.Seed+int64(rank))
			c := randomMatrix(x.Dims[2], rank, cfg.Seed+int64(rank)+1)
			out := la.NewMatrix(x.Dims[0], rank)

			// RankB strip width follows the heuristic rule of thumb:
			// keep strips at the tuned width but never wider than the
			// rank.
			rbWidth := combPlan.RankBlockCols
			if rbWidth <= 0 || rbWidth > rank {
				rbWidth = minInt(64, rank)
			}
			rbExec, err := core.NewExecutor(x, core.Plan{
				Method: core.MethodRankB, RankBlockCols: rbWidth, Workers: cfg.Workers,
			})
			if err != nil {
				return nil, err
			}

			run := func(e *core.Executor) float64 {
				return TimeBest(cfg.Reps, func() {
					if err := e.Run(b, c, out); err != nil {
						panic(err)
					}
				})
			}
			baseSec := run(splattExec)
			mbSec := run(mbExec)
			rbSec := run(rbExec)
			combSec := run(combExec)
			t.Add(name, fmt.Sprintf("%d", rank),
				fmt.Sprintf("%.4f", baseSec),
				fmt.Sprintf("%.2fx", baseSec/mbSec),
				fmt.Sprintf("%.2fx", baseSec/rbSec),
				fmt.Sprintf("%.2fx", baseSec/combSec),
				fmt.Sprintf("%dx%dx%d", combPlan.Grid[0], combPlan.Grid[1], combPlan.Grid[2]),
				fmt.Sprintf("%d", combPlan.RankBlockCols),
			)
		}
	}
	return t, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Fig6Traffic is the cache-simulator companion to Figure 6: simulated
// DRAM bytes per kernel at one rank, which exposes the blocking benefit
// independently of the host CPU. It runs at a reduced tensor size
// because trace simulation is ~100x slower than execution.
func Fig6Traffic(cfg Config, rank int, datasets []string) (*Table, error) {
	cfg = cfg.withDefaults()
	if len(datasets) == 0 {
		datasets = Fig6Datasets
	}
	if rank <= 0 {
		rank = 128
	}
	t := &Table{
		Title: fmt.Sprintf("Figure 6 (traffic view): simulated DRAM MB at rank %d, POWER8-like cache", rank),
		Note: "modeled speedup = roofline time ratio vs SPLATT on a POWER8 socket " +
			"(time = max(DRAM bytes / 75 GB/s, flops / 279 GFLOP/s))",
		Header: []string{"Dataset", "SPLATT MB", "MB", "RankB", "MB+RankB",
			"B share", "MB spd", "RankB spd", "MB+RankB spd"},
	}
	for _, name := range datasets {
		x, _, err := Dataset(cfg, name)
		if err != nil {
			return nil, err
		}
		tr, err := simulateKernels(x, rank)
		if err != nil {
			return nil, err
		}
		stats := tensor.ComputeStats(x)
		flops := 2 * float64(rank) * float64(stats.NNZ+stats.Fibers)
		modelSec := func(memMB float64) float64 {
			memSec := memMB * 1e6 / (roofline.POWER8Socket.MemGBs * 1e9)
			cpuSec := flops / (roofline.POWER8Socket.PeakGFLOP * 1e9)
			if memSec > cpuSec {
				return memSec
			}
			return cpuSec
		}
		base := modelSec(tr[0])
		t.Add(name,
			fmt.Sprintf("%.1f", tr[0]),
			fmt.Sprintf("%.1f", tr[1]),
			fmt.Sprintf("%.1f", tr[2]),
			fmt.Sprintf("%.1f", tr[3]),
			fmt.Sprintf("%.0f%%", tr[4]*100),
			fmt.Sprintf("%.2fx", base/modelSec(tr[1])),
			fmt.Sprintf("%.2fx", base/modelSec(tr[2])),
			fmt.Sprintf("%.2fx", base/modelSec(tr[3])),
		)
	}
	return t, nil
}

// simulateKernels returns DRAM MB for SPLATT, MB, RankB, MB+RankB and
// the fraction of SPLATT DRAM traffic attributable to the B factor.
// Block sizes come from the model-based autotuner (tuned against the
// same simulated cache the traffic is measured on — the host machine's
// own cache sizes are irrelevant to this experiment).
func simulateKernels(x *tensor.COO, rank int) ([5]float64, error) {
	var out [5]float64
	csf, err := tensor.BuildCSF(x)
	if err != nil {
		return out, err
	}
	tuneOpts := autotune.Options{Seed: 7}
	mbRes, err := autotune.Tune(x, rank, core.MethodMB, autotune.StrategyModel, tuneOpts)
	if err != nil {
		return out, err
	}
	rbRes, err := autotune.Tune(x, rank, core.MethodRankB, autotune.StrategyModel, tuneOpts)
	if err != nil {
		return out, err
	}
	combRes, err := autotune.Tune(x, rank, core.MethodMBRankB, autotune.StrategyModel, tuneOpts)
	if err != nil {
		return out, err
	}
	bt, err := core.BuildBlocked(x, mbRes.Plan.Grid)
	if err != nil {
		return out, err
	}
	btComb, err := core.BuildBlocked(x, combRes.Plan.Grid)
	if err != nil {
		return out, err
	}
	rb := rbRes.Plan.RankBlockCols
	rbComb := combRes.Plan.RankBlockCols

	measure := func(trace func(h *cachesim.Hierarchy) error) (totalMB, bShare float64, err error) {
		tr, err := cachesim.MeasureTraffic(cachesim.POWER8(), trace)
		if err != nil {
			return 0, 0, err
		}
		total := float64(tr.MemBytes(-1))
		share := 0.0
		if total > 0 {
			share = float64(tr.MemBytes(cachesim.RegionB)) / total
		}
		return total / 1e6, share, nil
	}
	base, bShare, err := measure(func(h *cachesim.Hierarchy) error {
		return cachesim.TraceSPLATT(h, csf, cachesim.Options{Rank: rank})
	})
	if err != nil {
		return out, err
	}
	mb, _, err := measure(func(h *cachesim.Hierarchy) error {
		return cachesim.TraceMB(h, bt, cachesim.Options{Rank: rank})
	})
	if err != nil {
		return out, err
	}
	rbT, _, err := measure(func(h *cachesim.Hierarchy) error {
		return cachesim.TraceRankB(h, csf, cachesim.Options{Rank: rank, RankBlockCols: rb})
	})
	if err != nil {
		return out, err
	}
	comb, _, err := measure(func(h *cachesim.Hierarchy) error {
		return cachesim.TraceMB(h, btComb, cachesim.Options{Rank: rank, RankBlockCols: rbComb})
	})
	if err != nil {
		return out, err
	}
	out = [5]float64{base, mb, rbT, comb, bShare}
	return out, nil
}
