package bench

import (
	"fmt"

	"spblock/internal/cachesim"
	"spblock/internal/core"
	"spblock/internal/la"
	"spblock/internal/tensor"
)

// fig4Rank is the rank Figure 4 sweeps at (the paper uses 512).
const fig4Rank = 512

// Fig4 regenerates Figure 4: performance vs the number of rank blocks
// for Poisson2 and Poisson3 at rank 512, against the SPLATT baseline.
// Larger block count = narrower strips (BS = R / NRankB).
func Fig4(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Figure 4: performance vs RankB block count (rank 512)",
		Note:   "GFLOP/s per Equation 2; block size BS = 512/N columns",
		Header: []string{"Dataset", "Config", "BS (cols)", "Time (s)", "GFLOP/s", "vs SPLATT"},
	}
	for _, name := range []string{"Poisson2", "Poisson3"} {
		x, _, err := Dataset(cfg, name)
		if err != nil {
			return nil, err
		}
		csf, err := tensor.BuildCSF(x)
		if err != nil {
			return nil, err
		}
		nnz, fibers := int64(csf.NNZ()), int64(csf.NumFibers())
		b := randomMatrix(x.Dims[1], fig4Rank, cfg.Seed+3)
		c := randomMatrix(x.Dims[2], fig4Rank, cfg.Seed+4)
		out := la.NewMatrix(x.Dims[0], fig4Rank)

		baselineExec, err := core.NewExecutor(x, core.Plan{Method: core.MethodSPLATT, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		baseSec := TimeBest(cfg.Reps, func() {
			if err := baselineExec.Run(b, c, out); err != nil {
				panic(err)
			}
		})
		t.Add(name, "SPLATT", "-", fmt.Sprintf("%.4f", baseSec),
			fmt.Sprintf("%.2f", GFLOPS(nnz, fibers, fig4Rank, baseSec)), "1.00x")

		for _, blocks := range []int{1, 2, 4, 8, 16, 32} {
			bs := fig4Rank / blocks
			e, err := core.NewExecutor(x, core.Plan{
				Method: core.MethodRankB, RankBlockCols: bs, Workers: cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			sec := TimeBest(cfg.Reps, func() {
				if err := e.Run(b, c, out); err != nil {
					panic(err)
				}
			})
			t.Add(name, fmt.Sprintf("RankB N=%d", blocks), fmt.Sprintf("%d", bs),
				fmt.Sprintf("%.4f", sec),
				fmt.Sprintf("%.2f", GFLOPS(nnz, fibers, fig4Rank, sec)),
				fmt.Sprintf("%.2fx", baseSec/sec))
		}
	}
	return t, nil
}

// Fig5Traffic is the cache-simulator companion to Figure 5: the same
// MB grid sweep measured as DRAM traffic through the POWER8-like
// hierarchy, which is where the grid choice actually shows up (the
// reproduction host's 260 MB L3 hides it from wall-clock).
func Fig5Traffic(cfg Config, rank int) (*Table, error) {
	cfg = cfg.withDefaults()
	if rank <= 0 {
		rank = fig5Rank
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 5 (traffic view): simulated DRAM MB vs MB grid (rank %d)", rank),
		Header: []string{"Dataset", "Grid", "DRAM MB", "B MB", "A MB", "vs SPLATT"},
	}
	for _, name := range []string{"Poisson2", "Poisson3"} {
		x, _, err := Dataset(cfg, name)
		if err != nil {
			return nil, err
		}
		csf, err := tensor.BuildCSF(x)
		if err != nil {
			return nil, err
		}
		baseTr, err := cachesim.MeasureTraffic(cachesim.POWER8(), func(h *cachesim.Hierarchy) error {
			return cachesim.TraceSPLATT(h, csf, cachesim.Options{Rank: rank})
		})
		if err != nil {
			return nil, err
		}
		base := float64(baseTr.MemBytes(-1))
		t.Add(name, "SPLATT",
			fmt.Sprintf("%.1f", base/1e6),
			fmt.Sprintf("%.1f", float64(baseTr.MemBytes(cachesim.RegionB))/1e6),
			fmt.Sprintf("%.1f", float64(baseTr.MemBytes(cachesim.RegionA))/1e6),
			"1.00x")
		for _, grid := range fig5Grids {
			g := grid
			ok := true
			for m := 0; m < 3; m++ {
				if g[m] > x.Dims[m] {
					ok = false
				}
			}
			if !ok {
				continue
			}
			bt, err := core.BuildBlocked(x, g)
			if err != nil {
				return nil, err
			}
			tr, err := cachesim.MeasureTraffic(cachesim.POWER8(), func(h *cachesim.Hierarchy) error {
				return cachesim.TraceMB(h, bt, cachesim.Options{Rank: rank})
			})
			if err != nil {
				return nil, err
			}
			total := float64(tr.MemBytes(-1))
			t.Add(name, fmt.Sprintf("%dx%dx%d", g[0], g[1], g[2]),
				fmt.Sprintf("%.1f", total/1e6),
				fmt.Sprintf("%.1f", float64(tr.MemBytes(cachesim.RegionB))/1e6),
				fmt.Sprintf("%.1f", float64(tr.MemBytes(cachesim.RegionA))/1e6),
				fmt.Sprintf("%.2fx", base/total))
		}
	}
	return t, nil
}

// fig5Grids are the MB grid shapes Figure 5 sweeps (the paper's x axis
// mixes mode-2-only blocking with mixed and extreme shapes).
var fig5Grids = [][3]int{
	{1, 2, 1}, {1, 4, 1}, {1, 8, 1}, {1, 16, 1}, {1, 32, 1},
	{2, 4, 1}, {1, 4, 2}, {1, 4, 4}, {2, 8, 2},
	{1, 1, 8}, {8, 1, 1}, {1, 10, 5},
	{16, 16, 16},
}

// fig5Rank is the rank used for the Figure 5 sweep.
const fig5Rank = 256

// Fig5 regenerates Figure 5: performance vs multi-dimensional block
// counts for Poisson2 and Poisson3.
func Fig5(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  fmt.Sprintf("Figure 5: performance vs MB grid (rank %d)", fig5Rank),
		Header: []string{"Dataset", "Grid", "Time (s)", "GFLOP/s", "vs SPLATT"},
	}
	for _, name := range []string{"Poisson2", "Poisson3"} {
		x, _, err := Dataset(cfg, name)
		if err != nil {
			return nil, err
		}
		stats := tensor.ComputeStats(x)
		nnz, fibers := int64(stats.NNZ), int64(stats.Fibers)
		b := randomMatrix(x.Dims[1], fig5Rank, cfg.Seed+5)
		c := randomMatrix(x.Dims[2], fig5Rank, cfg.Seed+6)
		out := la.NewMatrix(x.Dims[0], fig5Rank)

		baselineExec, err := core.NewExecutor(x, core.Plan{Method: core.MethodSPLATT, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		baseSec := TimeBest(cfg.Reps, func() {
			if err := baselineExec.Run(b, c, out); err != nil {
				panic(err)
			}
		})
		t.Add(name, "SPLATT", fmt.Sprintf("%.4f", baseSec),
			fmt.Sprintf("%.2f", GFLOPS(nnz, fibers, fig5Rank, baseSec)), "1.00x")

		for _, grid := range fig5Grids {
			g := grid
			ok := true
			for m := 0; m < 3; m++ {
				if g[m] > x.Dims[m] {
					ok = false
				}
			}
			if !ok {
				continue
			}
			e, err := core.NewExecutor(x, core.Plan{Method: core.MethodMB, Grid: g, Workers: cfg.Workers})
			if err != nil {
				return nil, err
			}
			sec := TimeBest(cfg.Reps, func() {
				if err := e.Run(b, c, out); err != nil {
					panic(err)
				}
			})
			t.Add(name, fmt.Sprintf("%dx%dx%d", g[0], g[1], g[2]),
				fmt.Sprintf("%.4f", sec),
				fmt.Sprintf("%.2f", GFLOPS(nnz, fibers, fig5Rank, sec)),
				fmt.Sprintf("%.2fx", baseSec/sec))
		}
	}
	return t, nil
}
