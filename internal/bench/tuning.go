package bench

import (
	"fmt"

	"spblock/internal/autotune"
	"spblock/internal/core"
)

// TuningTable compares the three autotuning strategies (the paper's
// Sec. V-C heuristic, the model-based search of the future-work
// framework, and a bounded exhaustive sweep) on the MB+RankB space:
// chosen plan, model-predicted cost, and the number of candidate
// evaluations each strategy spent.
func TuningTable(cfg Config, rank int, datasets []string) (*Table, error) {
	cfg = cfg.withDefaults()
	if rank <= 0 {
		rank = 128
	}
	if len(datasets) == 0 {
		datasets = []string{"Poisson2", "Poisson3", "NELL2", "Netflix"}
	}
	t := &Table{
		Title: fmt.Sprintf("Autotuning strategies (MB+RankB, rank %d)", rank),
		Note: "cost = model-predicted seconds on a POWER8-like socket (simulated traffic x roofline); " +
			"heuristic = Sec. V-C measured greedy, model = traffic-model greedy, exhaustive = bounded sweep",
		Header: []string{"Dataset", "Strategy", "Chosen plan", "Model cost (ms)", "Evals"},
	}
	for _, name := range datasets {
		x, _, err := Dataset(cfg, name)
		if err != nil {
			return nil, err
		}
		opts := autotune.Options{Seed: cfg.Seed, Workers: cfg.Workers, MaxGridSteps: 4}
		cost, err := autotune.ModelCost(x, rank, opts)
		if err != nil {
			return nil, err
		}
		for _, strat := range []autotune.Strategy{
			autotune.StrategyHeuristic, autotune.StrategyModel, autotune.StrategyExhaustive,
		} {
			res, err := autotune.Tune(x, rank, core.MethodMBRankB, strat, opts)
			if err != nil {
				return nil, err
			}
			t.Add(name, strat.String(), res.Plan.String(),
				fmt.Sprintf("%.3f", cost(res.Plan)*1e3),
				fmt.Sprintf("%d", res.Evaluated))
		}
	}
	return t, nil
}
