package bench

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"spblock/internal/metrics"
)

// updateGolden regenerates testdata/BENCH_golden.json in place:
//
//	go test ./internal/bench -run TestRecordGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files")

func testRecord() *Record {
	r := NewRecord("Poisson1", []int{64, 64, 64}, 5000, 32, 3, 1)
	r.GoMaxProcs = 8 // pin the host-dependent field for golden comparison
	r.Entries = []RecordEntry{
		{
			Plan:      "splatt(w=1)",
			BestNS:    123456,
			GFLOPS:    1.5,
			Imbalance: 1,
			Counters: metrics.Snapshot{
				Runs: 3, NNZ: 15000, Fibers: 3000, Strips: 0,
				BytesEst: 2400000, WallNS: 370368, WorkerNS: []int64{370368},
			},
		},
		{
			Plan:      "rankb(bs=16,w=1)",
			Kernel:    "w16",
			BestNS:    98765,
			GFLOPS:    1.9,
			Speedup:   1.25,
			Imbalance: 1,
			Counters: metrics.Snapshot{
				Runs: 3, NNZ: 30000, Fibers: 6000, Strips: 6,
				BytesEst: 3100000, WallNS: 296295, WorkerNS: []int64{296295},
				Kernel: "w16",
			},
		},
		{
			Plan:      "SPLATT sched=steal",
			Sched:     "steal",
			BestNS:    87654,
			GFLOPS:    2.1,
			Speedup:   1.41,
			Imbalance: 1.05,
			Counters: metrics.Snapshot{
				Runs: 3, NNZ: 15000, Fibers: 3000, Strips: 0,
				BytesEst: 2400000, WallNS: 262962,
				WorkerNS:     []int64{131481, 131481},
				Sched:        "steal",
				WorkerSteals: []int64{0, 7},
			},
		},
	}
	return r
}

func TestRecordRoundTrip(t *testing.T) {
	rec := testRecord()
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteRecord(path, rec); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, back) {
		t.Fatalf("round trip changed record:\nwrote %+v\nread  %+v", rec, back)
	}
}

func TestRecordSchemaVersionEnforced(t *testing.T) {
	rec := testRecord()
	rec.Schema = RecordSchemaVersion + 1
	path := filepath.Join(t.TempDir(), "BENCH_future.json")
	if err := WriteRecord(path, rec); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRecord(path); err == nil {
		t.Fatal("unknown schema version accepted")
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRecord(path); err == nil {
		t.Fatal("malformed record accepted")
	}
}

// TestRecordGolden pins the serialised schema: a change to any JSON key
// or to the document shape must show up as a diff against the committed
// golden file, forcing a conscious schema-version bump.
func TestRecordGolden(t *testing.T) {
	rec := testRecord()
	got, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "BENCH_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("BENCH record schema drifted from %s.\nIf the change is intended, bump RecordSchemaVersion and regenerate the golden file.\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
	// The version field must be spelled "schema" — the key CI reads
	// before trusting anything else in the document.
	var top map[string]json.RawMessage
	if err := json.Unmarshal(got, &top); err != nil {
		t.Fatal(err)
	}
	if string(top["schema"]) != "3" {
		t.Fatalf(`"schema" field = %s, want 3`, top["schema"])
	}
}

// TestLoadRecordAcceptsOldSchemas pins backwards compatibility: the
// committed results/BENCH_seed.json baseline predates the kernel and
// scheduler fields and must keep loading (its entries just carry no
// kernel or scheduler name).
func TestLoadRecordAcceptsOldSchemas(t *testing.T) {
	for _, schema := range []int{1, 2} {
		rec := testRecord()
		rec.Schema = schema
		for i := range rec.Entries {
			rec.Entries[i].Sched = ""
			rec.Entries[i].Counters.Sched = ""
			rec.Entries[i].Counters.WorkerSteals = nil
			if schema < 2 {
				rec.Entries[i].Kernel = ""
				rec.Entries[i].Counters.Kernel = ""
			}
		}
		path := filepath.Join(t.TempDir(), "BENCH_old.json")
		if err := WriteRecord(path, rec); err != nil {
			t.Fatal(err)
		}
		back, err := LoadRecord(path)
		if err != nil {
			t.Fatalf("schema-%d record rejected: %v", schema, err)
		}
		if back.Schema != schema {
			t.Fatalf("schema mangled: %d", back.Schema)
		}
		// An old baseline still compares cleanly against a v3 run.
		if regs := CompareRecords(back, testRecord(), 2.0); len(regs) != 0 {
			t.Fatalf("v%d baseline vs v3 run flagged: %v", schema, regs)
		}
	}
}

func TestCompareRecords(t *testing.T) {
	base := testRecord()
	cur := testRecord()
	if regs := CompareRecords(base, cur, 2.0); len(regs) != 0 {
		t.Fatalf("identical records regressed: %v", regs)
	}
	// Within threshold: 1.5x is fine at a 2x limit.
	cur.Entries[0].BestNS = base.Entries[0].BestNS * 3 / 2
	if regs := CompareRecords(base, cur, 2.0); len(regs) != 0 {
		t.Fatalf("1.5x flagged at a 2x limit: %v", regs)
	}
	// Past threshold: 3x must be flagged, and the message names the plan.
	cur.Entries[0].BestNS = base.Entries[0].BestNS * 3
	regs := CompareRecords(base, cur, 2.0)
	if len(regs) != 1 || !strings.Contains(regs[0], cur.Entries[0].Plan) {
		t.Fatalf("3x regression not reported properly: %v", regs)
	}
	// Plans absent from the baseline are skipped, not flagged.
	cur.Entries[0].Plan = "brand-new-plan"
	if regs := CompareRecords(base, cur, 2.0); len(regs) != 0 {
		t.Fatalf("unmatched plan flagged: %v", regs)
	}
	// maxRatio <= 0 falls back to the generous 2x default.
	cur = testRecord()
	cur.Entries[1].BestNS = base.Entries[1].BestNS * 3
	if regs := CompareRecords(base, cur, 0); len(regs) != 1 {
		t.Fatalf("default threshold broken: %v", regs)
	}
}
