package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"a", "long-column"},
	}
	tab.Add("1", "2")
	tab.Add("333", "4")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "a note", "long-column", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}}
	tab.Add(`va"l`, "x,y")
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"va""l"`) || !strings.Contains(out, `"x,y"`) {
		t.Fatalf("CSV escaping broken:\n%s", out)
	}
}

func TestTimeBest(t *testing.T) {
	calls := 0
	sec := TimeBest(3, func() { calls++ })
	if calls != 3 {
		t.Fatalf("f called %d times", calls)
	}
	if sec < 0 {
		t.Fatal("negative time")
	}
	TimeBest(0, func() { calls++ }) // clamps to 1
	if calls != 4 {
		t.Fatal("reps=0 should run once")
	}
}

func TestGFLOPS(t *testing.T) {
	if GFLOPS(1000, 100, 16, 0) != 0 {
		t.Fatal("zero time must give zero")
	}
	// 2*16*1100 flops in 1 s = 35200 flops = 3.52e-5 GFLOP/s.
	if got := GFLOPS(1000, 100, 16, 1); got != 35200.0/1e9 {
		t.Fatalf("GFLOPS = %v", got)
	}
}

func TestDatasetScaling(t *testing.T) {
	cfg := Quick()
	x, spec, err := Dataset(cfg, "Poisson1")
	if err != nil {
		t.Fatal(err)
	}
	if x.NNZ() == 0 {
		t.Fatal("empty dataset")
	}
	if x.NNZ() >= spec.BenchNNZ {
		t.Fatalf("quick scale did not shrink: %d >= %d", x.NNZ(), spec.BenchNNZ)
	}
	// Cache: same call returns the same pointer.
	x2, _, err := Dataset(cfg, "Poisson1")
	if err != nil {
		t.Fatal(err)
	}
	if x2 != x {
		t.Fatal("dataset cache miss on identical request")
	}
	if _, _, err := Dataset(cfg, "zzz"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestFig2(t *testing.T) {
	tab, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("Figure 2 has %d alpha rows, want 9", len(tab.Rows))
	}
	if len(tab.Header) != 9 { // alpha + 8 ranks
		t.Fatalf("Figure 2 has %d cols", len(tab.Header))
	}
}

func TestTable1Quick(t *testing.T) {
	tab, err := Table1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("Table I has %d rows, want 6", len(tab.Rows))
	}
	// Last row is the unchanged baseline with relative 1.000.
	last := tab.Rows[len(tab.Rows)-1]
	if last[2] != "1.000" {
		t.Fatalf("baseline relative = %q", last[2])
	}
}

func TestTable2Quick(t *testing.T) {
	tab, err := Table2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("Table II has %d rows, want 7", len(tab.Rows))
	}
	if tab.Rows[0][0] != "Poisson1" || tab.Rows[6][0] != "Amazon" {
		t.Fatalf("Table II order wrong: %v", tab.Rows)
	}
}

func TestFig4Quick(t *testing.T) {
	tab, err := Fig4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets x (1 baseline + 6 block counts).
	if len(tab.Rows) != 14 {
		t.Fatalf("Figure 4 has %d rows, want 14", len(tab.Rows))
	}
}

func TestFig5Quick(t *testing.T) {
	tab, err := Fig5(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 10 {
		t.Fatalf("Figure 5 has only %d rows", len(tab.Rows))
	}
}

func TestFig6Quick(t *testing.T) {
	tab, err := Fig6(Quick(), []int{16, 32}, []string{"Poisson2", "NELL2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Figure 6 quick has %d rows, want 4", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, col := range []int{3, 4, 5} {
			if !strings.HasSuffix(row[col], "x") {
				t.Fatalf("speedup cell %q not a ratio", row[col])
			}
		}
	}
}

func TestFig6TrafficQuick(t *testing.T) {
	tab, err := Fig6Traffic(Quick(), 64, []string{"Poisson2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTable3Quick(t *testing.T) {
	tab, err := Table3(Quick(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets x 2 node counts.
	if len(tab.Rows) != 4 {
		t.Fatalf("Table III quick has %d rows, want 4", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] == "" || row[4] == "" {
			t.Fatalf("missing timings in %v", row)
		}
	}
}

func TestTuningTableQuick(t *testing.T) {
	tab, err := TuningTable(Quick(), 64, []string{"Poisson2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("tuning table has %d rows, want 3 strategies", len(tab.Rows))
	}
	// The exhaustive strategy must evaluate at least as many candidates
	// as the greedy ones.
	var evals [3]int
	for i, row := range tab.Rows {
		if _, err := fmt.Sscan(row[4], &evals[i]); err != nil {
			t.Fatal(err)
		}
	}
	if evals[2] < evals[1] {
		t.Fatalf("exhaustive evals %d < model evals %d", evals[2], evals[1])
	}
}

func TestFig5TrafficQuick(t *testing.T) {
	tab, err := Fig5Traffic(Quick(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 10 {
		t.Fatalf("Figure 5 traffic has only %d rows", len(tab.Rows))
	}
	// Each dataset leads with a SPLATT baseline at 1.00x.
	if tab.Rows[0][1] != "SPLATT" || tab.Rows[0][5] != "1.00x" {
		t.Fatalf("first row = %v", tab.Rows[0])
	}
}
