package bench

import (
	"fmt"

	"spblock/internal/core"
	"spblock/internal/dist"
	"spblock/internal/la"
	"spblock/internal/mpi"
	"spblock/internal/partition"
	"spblock/internal/tensor"
)

// Table3Nodes are the node counts of Table III (two MPI ranks per node,
// matching the paper's one rank per socket).
var Table3Nodes = []int{1, 2, 4, 8, 16, 32, 64}

// table3Rank is the decomposition rank for the distributed runs.
const table3Rank = 32

// Table3 regenerates the distributed execution-time comparison:
// distributed SPLATT (medium-grained, unblocked local kernel) vs our 3D
// (medium-grained + blocked local kernel) vs our 4D (rank-partitioned)
// for NELL2 and Netflix. The 4D column reports the best rank-part count
// t over the divisors of p, mirroring the paper's "determine an optimal
// partition count t".
//
// Per-rank compute is measured serially on this host; communication is
// modeled with an α-β cost model from the actual byte volumes (see
// internal/mpi).
func Table3(cfg Config, nodes []int) (*Table, error) {
	cfg = cfg.withDefaults()
	if len(nodes) == 0 {
		nodes = Table3Nodes
	}
	t := &Table{
		Title:  fmt.Sprintf("Table III: distributed execution time (rank %d, 2 ranks/node, modeled comm)", table3Rank),
		Note:   "SPLATT = medium-grained + unblocked kernel; 3D = medium-grained + MB+RankB kernel; 4D = rank-partitioned, best t",
		Header: []string{"Dataset", "Nodes", "SPLATT (s)", "3D grid", "3D (s)", "4D grid", "4D (s)", "best vs SPLATT"},
	}
	model := mpi.DefaultCluster()
	for _, name := range []string{"NELL2", "Netflix"} {
		x, _, err := Dataset(cfg, name)
		if err != nil {
			return nil, err
		}
		for _, n := range nodes {
			p := 2 * n
			baseline, err := dist.MTTKRP(x, factorB(cfg, x, name), factorC(cfg, x, name), dist.Config{
				Ranks: p,
				Plan:  core.Plan{Method: core.MethodSPLATT, Workers: 1},
				Model: model,
			})
			if err != nil {
				return nil, err
			}
			ours3D, err := dist.MTTKRP(x, factorB(cfg, x, name), factorC(cfg, x, name), dist.Config{
				Ranks: p,
				Plan:  localBlockedPlan(),
				Model: model,
			})
			if err != nil {
				return nil, err
			}

			best4D := (*dist.Result)(nil)
			for _, tp := range partition.Divisors(p) {
				if tp == 1 || tp > table3Rank/8 || table3Rank%tp != 0 {
					continue
				}
				res, err := dist.MTTKRP(x, factorB(cfg, x, name), factorC(cfg, x, name), dist.Config{
					Ranks:     p,
					RankParts: tp,
					Plan:      localBlockedPlan(),
					Model:     model,
				})
				if err != nil {
					continue // e.g. inner grid impossible for tiny dims
				}
				if best4D == nil || res.ModeledSeconds < best4D.ModeledSeconds {
					best4D = res
				}
			}

			bestSec := ours3D.ModeledSeconds
			if best4D != nil && best4D.ModeledSeconds < bestSec {
				bestSec = best4D.ModeledSeconds
			}
			fourDGrid, fourDSec := "-", "-"
			if best4D != nil {
				fourDGrid = best4D.Grid.String()
				fourDSec = fmt.Sprintf("%.4f", best4D.ModeledSeconds)
			}
			t.Add(name, fmt.Sprintf("%d", n),
				fmt.Sprintf("%.4f", baseline.ModeledSeconds),
				ours3D.Grid.String(),
				fmt.Sprintf("%.4f", ours3D.ModeledSeconds),
				fourDGrid, fourDSec,
				fmt.Sprintf("%.2fx", baseline.ModeledSeconds/bestSec),
			)
		}
	}
	return t, nil
}

func localBlockedPlan() core.Plan {
	// Local blocks are already cache-scaled by the distribution, so a
	// modest MB grid plus rank blocking matches what the paper applies
	// "locally on the partition of each processor".
	return core.Plan{Method: core.MethodMBRankB, Grid: [3]int{1, 2, 1}, RankBlockCols: 16, Workers: 1}
}

// factorB/factorC build deterministic factor matrices per data set.
func factorB(cfg Config, x *tensor.COO, name string) *la.Matrix {
	return randomMatrix(x.Dims[1], table3Rank, cfg.Seed+int64(len(name)))
}

func factorC(cfg Config, x *tensor.COO, name string) *la.Matrix {
	return randomMatrix(x.Dims[2], table3Rank, cfg.Seed+int64(len(name))+100)
}
