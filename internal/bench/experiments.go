package bench

import (
	"fmt"

	"spblock/internal/cachesim"
	"spblock/internal/gen"
	"spblock/internal/la"
	"spblock/internal/ppa"
	"spblock/internal/roofline"
	"spblock/internal/tensor"
)

// Fig2 regenerates Figure 2: arithmetic intensity of SPLATT MTTKRP for
// different cache hit rates and rank sizes (Equation 3).
func Fig2() (*Table, error) {
	series, err := roofline.Figure2Series()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 2: arithmetic intensity vs rank (I = R / (8 + 4R(1-α)))",
		Header: []string{"alpha"},
	}
	for _, r := range roofline.Figure2Ranks {
		t.Header = append(t.Header, fmt.Sprintf("R=%d", r))
	}
	for ai, alpha := range roofline.Figure2Alphas {
		row := []string{fmt.Sprintf("%.2f", alpha)}
		for ri := range roofline.Figure2Ranks {
			row = append(row, fmt.Sprintf("%.3f", series[ai][ri]))
		}
		t.Add(row...)
	}
	t.Note = fmt.Sprintf("POWER8 socket balance: %.2f flops/byte; generic CPU/GPU balance 6-12 (paper) => memory bound below those lines",
		roofline.POWER8Socket.Balance())
	return t, nil
}

// Table1 regenerates the pressure point analysis on a Poisson3-shaped
// tensor at rank 128 (Sec. IV-B): measured wall-clock per variant plus
// simulated DRAM traffic through the POWER8-like hierarchy.
func Table1(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	x, _, err := Dataset(cfg, "Poisson3")
	if err != nil {
		return nil, err
	}
	csf, err := tensor.BuildCSF(x)
	if err != nil {
		return nil, err
	}
	const rank = 128
	b := randomMatrix(x.Dims[1], rank, cfg.Seed+1)
	c := randomMatrix(x.Dims[2], rank, cfg.Seed+2)

	results, err := ppa.Measure(csf, b, c, rank, cfg.Reps)
	if err != nil {
		return nil, err
	}

	// Simulated traffic uses a (possibly) smaller replica so the
	// line-by-line simulation stays fast.
	simX := x
	if x.NNZ() > 400_000 {
		simCfg := cfg
		simCfg.Scale = cfg.Scale * 400_000 / float64(x.NNZ())
		simX, _, err = Dataset(simCfg, "Poisson3")
		if err != nil {
			return nil, err
		}
	}
	simCSF, err := tensor.BuildCSF(simX)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Table I: pressure points for SPLATT MTTKRP (Poisson3 shape, rank 128)",
		Note: fmt.Sprintf("tensor %v nnz=%d; times on this host, traffic simulated on POWER8-like 64KB L1 + 512KB L2",
			x.Dims, x.NNZ()),
		Header: []string{"Type", "Exec time (s)", "Relative", "Sim DRAM MB", "Description"},
	}
	for _, res := range results {
		tr, err := cachesim.MeasureTraffic(cachesim.POWER8(), func(h *cachesim.Hierarchy) error {
			return cachesim.TraceSPLATT(h, simCSF, res.Variant.TraceOptions(rank))
		})
		if err != nil {
			return nil, err
		}
		t.Add(
			fmt.Sprintf("%d", int(res.Variant)),
			fmt.Sprintf("%.4f", res.Seconds),
			fmt.Sprintf("%.3f", res.Relative),
			fmt.Sprintf("%.1f", float64(tr.MemBytes(-1))/1e6),
			res.Variant.Description(),
		)
	}
	return t, nil
}

// Table2 regenerates the data-set inventory, reporting both the paper
// scale and the scale this reproduction generates.
func Table2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Table II: synthetic and real-world data sets",
		Note:   "paper-scale columns are the published shapes; bench columns are what this reproduction generates",
		Header: []string{"Name", "Paper dims", "Paper NNZ", "Paper sparsity", "Bench dims", "Bench NNZ", "Bench sparsity", "Fibers"},
	}
	for _, name := range gen.Names() {
		x, spec, err := Dataset(cfg, name)
		if err != nil {
			return nil, err
		}
		stats := tensor.ComputeStats(x)
		t.Add(
			name,
			spec.PaperDims.String(),
			fmt.Sprintf("%.3g", float64(spec.PaperNNZ)),
			fmt.Sprintf("%.1e", spec.PaperSparsity()),
			stats.Dims.String(),
			fmt.Sprintf("%d", stats.NNZ),
			fmt.Sprintf("%.1e", stats.Density),
			fmt.Sprintf("%d", stats.Fibers),
		)
	}
	return t, nil
}

func randomMatrix(rows, cols int, seed int64) *la.Matrix {
	m := la.NewMatrix(rows, cols)
	state := uint64(seed)
	for i := range m.Data {
		m.Data[i] = float64(gen.SplitMix64(&state)%1000)/1000 + 0.001
	}
	return m
}
