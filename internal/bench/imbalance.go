package bench

import (
	"fmt"
	"runtime"

	"spblock/internal/gen"
	"spblock/internal/la"
	"spblock/internal/nmode"
	"spblock/internal/sched"
)

// imbalanceRank is the decomposition rank the scheduler comparison runs
// at; imbalanceStrip is the rank-blocking strip width. Strips multiply
// the per-fiber epilogue cost (one epilogue per strip per fiber), which
// is what makes fiber-density skew visible as time skew.
const (
	imbalanceRank  = 32
	imbalanceStrip = 8
)

// imbalanceWarmRuns is how many untimed runs each executor gets before
// the timed window. The adaptive controller needs DefaultPatience
// consecutive observations above DefaultPromoteAbove before it promotes
// to the stealing layout, so the warm-up must cover comfortably more
// than patience runs for the timed window to see the promoted executor.
const imbalanceWarmRuns = 8

// skewedTensorN builds a deterministically skewed order-4 tensor: the
// low half of mode 0 carries clustered, dense-fibered nonzeros (many
// leaves per fiber, so the per-nonzero cost is dominated by the strip
// walk), the high half carries a near-uniform scatter whose fibers are
// almost all singletons (every nonzero pays a full fiber epilogue per
// rank strip). Both halves hold the same nonzero count, so the static
// scheduler's nnz-balanced shares put the cheap half on one worker and
// the expensive half on another — a guaranteed time imbalance that no
// cluster-placement seed can average away, which is the regime the
// work-stealing and adaptive schedulers exist for.
func skewedTensorN(cfg Config) (*nmode.Tensor, error) {
	// The dense half lives on deliberately compact dims: the cluster
	// boxes must hold far more nonzeros than they have (i,j,k) fiber
	// prefixes, or the "dense" fibers degenerate into singletons too.
	denseDims := []int{32, 32, 30, 64}
	scatterDims := []int{128, 192, 160, 64}
	nnz := 240_000
	if cfg.Scale != 1 {
		f := cfg.Scale
		if f > 1 {
			f = 1
		}
		scaleDims := func(dims []int) {
			for m := range dims {
				if d := int(float64(dims[m]) * f); d >= 16 {
					dims[m] = d
				} else {
					dims[m] = 16
				}
			}
		}
		scaleDims(denseDims)
		scaleDims(scatterDims)
		if v := int(float64(nnz) * cfg.Scale); v >= 4000 {
			nnz = v
		} else {
			nnz = 4000
		}
	}
	half := nnz / 2
	dense, err := gen.ClusteredN(gen.ClusteredNParams{
		Dims:        denseDims,
		NNZ:         half,
		Clusters:    2,
		ClusterFrac: 0.99,
		ClusterSide: 0.6,
	}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	scatter, err := gen.PoissonN(gen.PoissonNParams{
		Dims:       scatterDims,
		Events:     half,
		Components: 64,
		Spread:     1,
	}, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	merged := nmode.NewTensor(
		[]int{denseDims[0] + scatterDims[0],
			max(denseDims[1], scatterDims[1]),
			max(denseDims[2], scatterDims[2]),
			max(denseDims[3], scatterDims[3])},
		dense.NNZ()+scatter.NNZ(),
	)
	coord := make([]nmode.Index, 4)
	for p := 0; p < dense.NNZ(); p++ {
		merged.Append(dense.Coord(p, coord), dense.Val[p])
	}
	off := nmode.Index(denseDims[0])
	for p := 0; p < scatter.NNZ(); p++ {
		scatter.Coord(p, coord)
		coord[0] += off
		merged.Append(coord, scatter.Val[p])
	}
	if _, err := merged.Dedup(); err != nil {
		return nil, err
	}
	return merged, nil
}

// Imbalance compares the static, work-stealing and adaptive schedulers
// (internal/sched) on the skewed clustered tensor above, where
// nnz-balanced static shares are strongly time-imbalanced. Each row is
// one rank-blocked mode-0 executor: the scheduler it resolved to after
// warm-up (the adaptive row reports whether the controller promoted),
// its ns/run over the timed window, the measured max/mean worker busy
// time, the stolen-chunk count, and the speedup over the static row.
func Imbalance(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// One worker has nothing to balance; the comparison needs at least
	// two shares even in the quick configuration.
	if workers < 2 {
		workers = 2
	}
	x, err := skewedTensorN(cfg)
	if err != nil {
		return nil, err
	}
	n := x.Order()
	factors := make([]*la.Matrix, n)
	for m := 1; m < n; m++ {
		factors[m] = randomMatrix(x.Dims[m], imbalanceRank, cfg.Seed+int64(m))
	}
	out := la.NewMatrix(x.Dims[0], imbalanceRank)

	t := &Table{
		Title: "Scheduler comparison: static vs stealing vs adaptive on a skewed clustered tensor",
		Note: fmt.Sprintf("tensor %v nnz=%d (dense-fiber low half, singleton high half), rank %d strip %d, %d workers, gomaxprocs %d; imbalance = max/mean worker busy time over the timed window",
			x.Dims, x.NNZ(), imbalanceRank, imbalanceStrip, workers, runtime.GOMAXPROCS(0)),
		Header: []string{"policy", "resolved", "ns/run", "imbalance", "steals", "speedup"},
	}
	var staticNS int64
	for _, pol := range []sched.Policy{sched.PolicyStatic, sched.PolicySteal, sched.PolicyAdaptive} {
		exec, err := nmode.NewExecutor(x, 0, nmode.Options{
			RankBlockCols: imbalanceStrip,
			Workers:       workers,
			Sched:         pol,
		})
		if err != nil {
			return nil, err
		}
		for i := 0; i < imbalanceWarmRuns; i++ {
			if err := exec.Run(factors, out); err != nil {
				return nil, err
			}
		}
		exec.Metrics().Reset() // counters cover exactly the timed window
		var runErr error
		sec := TimeBest(cfg.Reps, func() {
			if err := exec.Run(factors, out); err != nil {
				runErr = err
			}
		})
		if runErr != nil {
			return nil, runErr
		}
		ns := int64(sec * 1e9)
		if pol == sched.PolicyStatic {
			staticNS = ns
		}
		speedup := "-"
		if pol != sched.PolicyStatic && ns > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(staticNS)/float64(ns))
		}
		snap := exec.Metrics().Snapshot()
		t.Add(
			policyName(pol),
			exec.Sched(),
			fmt.Sprintf("%d", ns),
			fmt.Sprintf("%.3f", snap.Imbalance()),
			fmt.Sprintf("%d", snap.Steals()),
			speedup,
		)
	}
	return t, nil
}

// policyName renders the requested (pre-resolution) policy for the
// table's first column.
func policyName(p sched.Policy) string {
	switch p {
	case sched.PolicySteal:
		return sched.StealName
	case sched.PolicyAdaptive:
		return sched.AdaptiveName
	default:
		return sched.StaticName
	}
}
