package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"spblock/internal/metrics"
)

// RecordSchemaVersion is the current BENCH_*.json schema. Bump it when
// a field changes meaning; readers reject records from other versions
// instead of silently comparing incompatible quantities.
//
// v2 added the per-entry kernel variant (RecordEntry.Kernel) and the
// -widths sweep entries. v3 added the resolved scheduler identity
// (RecordEntry.Sched, plus the sched / worker_steals counters inside
// the metrics snapshot). v1 and v2 records are still loadable: every
// older field kept its meaning and each bump only added optional
// fields, so comparisons against an older baseline remain valid (old
// entries simply carry no kernel or scheduler name).
const RecordSchemaVersion = 3

// minReadableSchema is the oldest schema LoadRecord still accepts.
const minReadableSchema = 1

// Record is one mttkrp-bench run in machine-readable form: the input
// tensor, the sweep configuration, and one entry per timed plan. CI
// stores these as artifacts and compares fresh runs against a committed
// baseline record.
type Record struct {
	// Schema is the record format version (RecordSchemaVersion).
	Schema int `json:"schema"`
	// Tool identifies the producer ("mttkrp-bench").
	Tool string `json:"tool"`
	// Dataset names the input (-dataset name or -in path).
	Dataset string `json:"dataset"`
	// Dims and NNZ describe the benchmarked tensor.
	Dims []int `json:"dims"`
	NNZ  int   `json:"nnz"`
	// Rank, Reps and Workers echo the sweep configuration.
	Rank    int `json:"rank"`
	Reps    int `json:"reps"`
	Workers int `json:"workers"`
	// GoMaxProcs records the host parallelism the run actually had.
	GoMaxProcs int `json:"gomaxprocs"`
	// Entries holds one timed result per plan, in sweep order.
	Entries []RecordEntry `json:"entries"`
}

// RecordEntry is one timed plan of a Record.
type RecordEntry struct {
	// Plan is the plan's canonical string form — the comparison key
	// between a fresh run and the baseline.
	Plan string `json:"plan"`
	// Kernel names the width-specialized rank-strip kernel variant the
	// plan dispatched through (e.g. "w16"; empty for plans that never
	// resolve one, and in schema-1 records). Schema 2.
	Kernel string `json:"kernel,omitempty"`
	// Sched names the resolved scheduler the plan's executor ran
	// (internal/sched: "static", "steal", "adaptive:static",
	// "adaptive:steal"; empty for sequential plans and in pre-v3
	// records). An adaptive plan records the layout it ended the timed
	// window on. Schema 3.
	Sched string `json:"sched,omitempty"`
	// BestNS is the fastest repetition's wall time in nanoseconds.
	BestNS int64 `json:"best_ns"`
	// GFLOPS is the Equation 2 throughput at BestNS.
	GFLOPS float64 `json:"gflops"`
	// Speedup is BestNS relative to the sweep's baseline plan (0 when
	// the entry is itself the baseline or no baseline ran).
	Speedup float64 `json:"speedup,omitempty"`
	// Imbalance is the max/mean worker busy-time ratio over the timed
	// window (1 = balanced or sequential).
	Imbalance float64 `json:"imbalance,omitempty"`
	// Counters is the executor's metrics snapshot over the timed window
	// (warm-up excluded).
	Counters metrics.Snapshot `json:"counters"`
}

// NewRecord starts a record with the schema and host fields filled in.
func NewRecord(dataset string, dims []int, nnz, rank, reps, workers int) *Record {
	return &Record{
		Schema:     RecordSchemaVersion,
		Tool:       "mttkrp-bench",
		Dataset:    dataset,
		Dims:       dims,
		NNZ:        nnz,
		Rank:       rank,
		Reps:       reps,
		Workers:    workers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
}

// WriteRecord writes r as indented JSON to path.
func WriteRecord(path string, r *Record) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRecord reads a record back and rejects unknown schema versions.
func LoadRecord(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if r.Schema < minReadableSchema || r.Schema > RecordSchemaVersion {
		return nil, fmt.Errorf("bench: %s: schema %d, want %d..%d", path, r.Schema, minReadableSchema, RecordSchemaVersion)
	}
	return &r, nil
}

// CompareRecords checks cur against base plan by plan and returns one
// message per regression: a plan whose best time exceeds the baseline's
// by more than maxRatio. Plans present in only one record are skipped —
// the sweep composition may legitimately change — and maxRatio is
// deliberately generous because CI machines are noisy; the check exists
// to catch order-of-magnitude breakage, not 5% drift.
func CompareRecords(base, cur *Record, maxRatio float64) []string {
	if maxRatio <= 0 {
		maxRatio = 2
	}
	baseline := make(map[string]RecordEntry, len(base.Entries))
	for _, e := range base.Entries {
		baseline[e.Plan] = e
	}
	var regressions []string
	for _, e := range cur.Entries {
		b, ok := baseline[e.Plan]
		if !ok || b.BestNS <= 0 {
			continue
		}
		if ratio := float64(e.BestNS) / float64(b.BestNS); ratio > maxRatio {
			regressions = append(regressions,
				fmt.Sprintf("%s: %d ns vs baseline %d ns (%.2fx > %.2fx limit)",
					e.Plan, e.BestNS, b.BestNS, ratio, maxRatio))
		}
	}
	return regressions
}
