package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"

	"spblock/internal/cpd"
	"spblock/internal/gen"
	"spblock/internal/nmode"
	"spblock/internal/ooc"
)

// oocBudgets are the working-set budgets swept by the out-of-core
// experiment, as fractions of the staged tensor's total decoded block
// footprint. 1.0 keeps every block slot in flight (streaming overhead
// only); 0.1 forces the pipeline down to a handful of resident slots.
var oocBudgets = []float64{1.0, 0.5, 0.25, 0.1}

// oocDataset builds the experiment's order-4 Poisson tensor at cfg's
// scale, mirroring the scaling discipline of the other experiments.
func oocDataset(cfg Config) (*nmode.Tensor, error) {
	dims := []int{96, 72, 60, 48}
	events := 400_000
	if cfg.Scale != 1 {
		f := cfg.Scale
		if f > 1 {
			f = 1
		}
		for m := range dims {
			if d := int(float64(dims[m]) * f); d >= 12 {
				dims[m] = d
			} else {
				dims[m] = 12
			}
		}
		if v := int(float64(events) * cfg.Scale); v >= 4000 {
			events = v
		} else {
			events = 4000
		}
	}
	return gen.PoissonN(gen.PoissonNParams{
		Dims:       dims,
		Events:     events,
		Components: 48,
		Spread:     1,
	}, cfg.Seed)
}

// OOC measures the out-of-core CP-ALS path (internal/ooc) against the
// in-memory engine on the same tensor and blocking grid. The tensor is
// written to a .tns file, staged to the paper's MB spatial blocks on
// disk, and decomposed at a sweep of working-set budgets; every run is
// checked bit-identical to the in-memory decomposition (same grid,
// same seed), so the table is a measurement, never a numerics fork.
// Per budget it reports the resident slot count, the streamed wall
// time, the consumer's IO-wait share of it, and how much prefetch work
// (read + decode + CSF build) was overlapped behind the MTTKRP kernel.
// A budget row errors out rather than report a run whose prefetch
// pipeline never engaged or whose result diverged.
func OOC(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	rank, iters := 32, 8
	grid := []int{3, 2, 2, 2}

	// The pipeline's decoder goroutines can only run concurrently with
	// the consumer when the runtime has at least two Ps; on a
	// single-core host GOMAXPROCS=1 serialises them and the overlap
	// measurement is zero by construction (the same reason Imbalance
	// forces two workers). Raise it for the experiment's duration.
	if runtime.GOMAXPROCS(0) < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}

	x, err := oocDataset(cfg)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "spblock-ooc")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	tnsPath := filepath.Join(dir, "x.tns")
	if err := nmode.SaveTNSFile(tnsPath, x); err != nil {
		return nil, err
	}
	man, err := ooc.Stage(tnsPath, filepath.Join(dir, "staged"), ooc.StageOptions{Grid: grid})
	if err != nil {
		return nil, err
	}

	opts := cpd.NOptions{Rank: rank, MaxIters: iters, Tol: 1e-12, Seed: cfg.Seed,
		Kernel: nmode.Options{Grid: grid, Workers: cfg.Workers}}
	var want *cpd.NResult
	memSec := TimeBest(1, func() {
		want, err = cpd.CPALSN(x, opts)
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Out-of-core CP-ALS: streamed blocked partitions vs in-memory, by working-set budget",
		Note: fmt.Sprintf("tensor %v nnz=%d grid %v (%d blocks, slot %d B, total %d B), rank %d, %d sweeps; in-memory CP-ALS %.0f ms; every row bit-identical to the in-memory result; overlap = prefetch work hidden behind kernel time",
			x.Dims, x.NNZ(), man.Grid, len(man.Blocks), man.SlotBytes(), man.TotalBlockBytes(),
			rank, want.Iters, memSec*1e3),
		Header: []string{"budget", "slots", "resident_bytes", "wall_ms", "io_wait", "prefetch_ms", "overlap_ms", "fit", "parity"},
	}
	for _, frac := range oocBudgets {
		budget := int64(frac * float64(man.TotalBlockBytes()))
		e, err := ooc.Open(filepath.Join(dir, "staged"), ooc.Options{BudgetBytes: budget})
		if err != nil {
			return nil, err
		}
		var got *cpd.NResult
		sec := TimeBest(1, func() {
			got, err = cpd.CPALSOOC(e, cpd.OOCOptions{Rank: rank, MaxIters: iters, Tol: 1e-12, Seed: cfg.Seed})
		})
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("ooc: budget %.2f: %w", frac, err)
		}
		if err := oocParity(want, got); err != nil {
			e.Close()
			return nil, fmt.Errorf("ooc: budget %.2f: %w", frac, err)
		}
		var wallNS, ioWaitNS, prefetchNS int64
		for m := range x.Dims {
			snap := e.Metrics(m).Snapshot()
			wallNS += snap.WallNS
			ioWaitNS += snap.IOWaitNS
			prefetchNS += snap.PrefetchTotalNS()
		}
		e.Close()
		if prefetchNS == 0 {
			return nil, fmt.Errorf("ooc: budget %.2f: prefetch pipeline recorded no work", frac)
		}
		overlapNS := prefetchNS - ioWaitNS
		if overlapNS < 0 {
			overlapNS = 0
		}
		ioFrac := 0.0
		if wallNS > 0 {
			ioFrac = float64(ioWaitNS) / float64(wallNS)
		}
		t.Add(
			fmt.Sprintf("%.2f", frac),
			fmt.Sprintf("%d", e.Depth()),
			fmt.Sprintf("%d", e.WorkingSetBytes()),
			fmt.Sprintf("%.1f", sec*1e3),
			fmt.Sprintf("%.1f%%", ioFrac*100),
			fmt.Sprintf("%.1f", float64(prefetchNS)/1e6),
			fmt.Sprintf("%.1f", float64(overlapNS)/1e6),
			fmt.Sprintf("%.6f", got.Fits[len(got.Fits)-1]),
			"ok",
		)
	}
	return t, nil
}

// oocParity demands the streamed decomposition reproduced the
// in-memory trajectory exactly — iteration count and every fit bit.
func oocParity(want, got *cpd.NResult) error {
	if want.Iters != got.Iters || want.Converged != got.Converged {
		return fmt.Errorf("trajectory diverged: iters %d/%d converged %v/%v",
			want.Iters, got.Iters, want.Converged, got.Converged)
	}
	for i := range want.Fits {
		if math.Float64bits(want.Fits[i]) != math.Float64bits(got.Fits[i]) {
			return fmt.Errorf("fit %d differs: in-memory %v streamed %v", i, want.Fits[i], got.Fits[i])
		}
	}
	for m := range want.Factors {
		for i, v := range want.Factors[m].Data {
			if math.Float64bits(v) != math.Float64bits(got.Factors[m].Data[i]) {
				return fmt.Errorf("factor %d element %d differs: in-memory %v streamed %v",
					m, i, v, got.Factors[m].Data[i])
			}
		}
	}
	return nil
}
