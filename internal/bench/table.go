// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (Sec. IV and VI) as text tables,
// shared between the spblock-exp command and the Go benchmarks.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV.
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// TimeBest runs f reps times and returns the fastest wall-clock seconds
// (minimum is the standard noise-robust estimator for benchmarks).
func TimeBest(reps int, f func()) float64 {
	if reps <= 0 {
		reps = 1
	}
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		sec := time.Since(start).Seconds()
		if i == 0 || sec < best {
			best = sec
		}
	}
	return best
}

// GFLOPS converts an MTTKRP execution (2·R·(nnz+F) flops, Equation 2)
// into GFLOP/s for the given time.
func GFLOPS(nnz, fibers int64, rank int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return 2 * float64(rank) * float64(nnz+fibers) / seconds / 1e9
}

// Config controls experiment sizing so the full suite can run at bench
// scale on one core, and at tiny scale inside unit tests.
type Config struct {
	// Scale multiplies the registry's bench-scale nnz and mode lengths
	// (1.0 = registry defaults, Quick uses much smaller).
	Scale float64
	// Reps is timed repetitions per measurement (best kept).
	Reps int
	// Workers is kernel parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed drives all data generation.
	Seed int64
}

// Quick returns a configuration small enough for unit tests and smoke
// benchmarks.
func Quick() Config { return Config{Scale: 0.04, Reps: 1, Workers: 1, Seed: 42} }

// Full returns the bench-scale defaults used for EXPERIMENTS.md.
func Full() Config { return Config{Scale: 1, Reps: 3, Workers: 0, Seed: 42} }

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Reps <= 0 {
		c.Reps = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}
