package bench

import (
	"fmt"
	"math"
	"sync"

	"spblock/internal/gen"
	"spblock/internal/tensor"
)

// datasetCache memoises generated tensors so a full experiment run
// (which reuses Poisson2/Poisson3/NELL2/Netflix across experiments)
// pays each generation once.
var (
	datasetMu    sync.Mutex
	datasetCache = map[string]*tensor.COO{}
)

// Dataset returns the named Table II tensor at the configuration's
// scale. Mode lengths scale with the cube root of Scale and nnz scales
// linearly, which approximately preserves the registry densities.
func Dataset(cfg Config, name string) (*tensor.COO, gen.DatasetSpec, error) {
	cfg = cfg.withDefaults()
	spec, err := gen.Lookup(name)
	if err != nil {
		return nil, spec, err
	}
	dims, nnz := scaledShape(spec, cfg.Scale)
	key := fmt.Sprintf("%s/%v/%d/%d", name, dims, nnz, cfg.Seed)
	datasetMu.Lock()
	defer datasetMu.Unlock()
	if t, ok := datasetCache[key]; ok {
		return t, spec, nil
	}
	t, err := spec.GenerateAt(dims, nnz, cfg.Seed)
	if err != nil {
		return nil, spec, err
	}
	datasetCache[key] = t
	return t, spec, nil
}

func scaledShape(spec gen.DatasetSpec, scale float64) (tensor.Dims, int) {
	if scale == 1 {
		return spec.BenchDims, spec.BenchNNZ
	}
	dimScale := math.Cbrt(scale)
	var dims tensor.Dims
	for m := 0; m < 3; m++ {
		d := int(float64(spec.BenchDims[m]) * dimScale)
		if d < 16 {
			d = 16
		}
		if d > spec.BenchDims[m] {
			d = spec.BenchDims[m]
		}
		dims[m] = d
	}
	nnz := int(float64(spec.BenchNNZ) * scale)
	if nnz < 2000 {
		nnz = 2000
	}
	// nnz cannot exceed the (scaled) volume.
	if v := dims.Volume(); float64(nnz) > v/2 {
		nnz = int(v / 2)
		if nnz < 1 {
			nnz = 1
		}
	}
	return dims, nnz
}
