package bench

import (
	"fmt"
	"time"

	"spblock/internal/core"
	"spblock/internal/dist"
	"spblock/internal/mpi"
)

// ChaosKinds are the fault families the chaos experiment exercises, one
// row each: a clean baseline, the four link faults, a stalling straggler
// and a mid-decomposition crash.
var ChaosKinds = []string{"none", "drop", "dup", "corrupt", "delay", "stall", "crash"}

// chaosRanks is the world size of every chaos run (small enough that a
// lossy schedule's real timeout waits stay in CI budget).
const chaosRanks = 4

// chaosPlan arms one fault family at the given rate. The reliability
// knobs are tight on purpose: short timeouts keep a lossy run fast, and
// a small retry budget makes exhaustion reachable.
func chaosPlan(kind string, rate float64, seed int64) (*mpi.FaultPlan, error) {
	if kind == "none" {
		return nil, nil
	}
	p := mpi.NewFaultPlan(seed)
	p.Timeout = 100 * time.Millisecond
	p.MaxRetries = 3
	switch kind {
	case "drop":
		p.DropProb = rate
	case "dup":
		p.DupProb = rate
	case "corrupt":
		p.CorruptProb = rate
	case "delay":
		p.DelayProb = rate
		p.DelaySec = 1e-4
	case "stall":
		p.StallRank = chaosRanks - 1
		p.StallSleep = time.Millisecond
		p.StallSec = 1e-3
	case "crash":
		p.CrashRank = chaosRanks - 1
		p.CrashAfterOps = 5
	default:
		return nil, fmt.Errorf("bench: unknown chaos kind %q", kind)
	}
	return p, nil
}

// Chaos runs the distributed CP-ALS decomposition under each requested
// fault family and tabulates the outcome: whether the run completed,
// completed degraded (fewer surviving ranks) or failed, plus the full
// fault-tolerance telemetry from CPResult. It is the runnable form of
// the degradation contract in DESIGN.md §9.
func Chaos(cfg Config, kinds []string, rate float64, seed int64) (*Table, error) {
	cfg = cfg.withDefaults()
	if len(kinds) == 0 {
		kinds = ChaosKinds
	}
	if rate <= 0 {
		rate = 0.02
	}
	x, _, err := Dataset(cfg, "Poisson1")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Chaos: distributed CP-ALS under injected faults (p=%d, rate %.2g, seed %d)", chaosRanks, rate, seed),
		Note:  "status: ok = clean finish, degraded = finished on fewer ranks after a crash, failed = error surfaced (never a hang)",
		Header: []string{"Fault", "Status", "Iters", "Fit", "SweepRetry", "Retries",
			"Timeouts", "Crashes", "Degraded", "Backoff (ms)", "Ranks left"},
	}
	for _, kind := range kinds {
		plan, err := chaosPlan(kind, rate, seed)
		if err != nil {
			return nil, err
		}
		res, err := dist.CPALS(x, dist.Config{
			Ranks:  chaosRanks,
			Plan:   core.Plan{Method: core.MethodSPLATT, Workers: 1},
			Model:  mpi.DefaultCluster(),
			Faults: plan,
		}, dist.CPOptions{Rank: 8, MaxIters: 5, Tol: 1e-9, Seed: cfg.Seed})
		status := "ok"
		switch {
		case err != nil:
			status = "failed"
		case res.SurvivingRanks < chaosRanks:
			status = "degraded"
		}
		if res == nil {
			res = &dist.CPResult{}
		}
		t.Add(kind, status,
			fmt.Sprintf("%d", res.Iters),
			fmt.Sprintf("%.4f", res.Fit()),
			fmt.Sprintf("%d", res.Comm.SweepRetries),
			fmt.Sprintf("%d", res.Comm.Retries),
			fmt.Sprintf("%d", res.Comm.Timeouts),
			fmt.Sprintf("%d", res.Comm.Crashes),
			fmt.Sprintf("%d", res.Comm.DegradedSweeps),
			fmt.Sprintf("%.2f", res.Comm.BackoffSec*1e3),
			fmt.Sprintf("%d", res.SurvivingRanks),
		)
	}
	return t, nil
}
