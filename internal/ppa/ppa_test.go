package ppa

import (
	"math/rand"
	"testing"

	"spblock/internal/cachesim"
	"spblock/internal/la"
	"spblock/internal/tensor"
)

func testTensor(t *testing.T, seed int64, dims tensor.Dims, nnz int) *tensor.CSF {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := tensor.NewCOO(dims, nnz)
	for p := 0; p < nnz; p++ {
		c.Append(
			tensor.Index(rng.Intn(dims[0])),
			tensor.Index(rng.Intn(dims[1])),
			tensor.Index(rng.Intn(dims[2])),
			rng.Float64()+0.1,
		)
	}
	c.Dedup()
	csf, err := tensor.BuildCSF(c)
	if err != nil {
		t.Fatal(err)
	}
	return csf
}

func TestVariantsCompleteAndDescribed(t *testing.T) {
	vs := Variants()
	if len(vs) != 6 {
		t.Fatalf("got %d variants, Table I has 6", len(vs))
	}
	seen := map[Variant]bool{}
	for _, v := range vs {
		if v.Description() == "" || seen[v] {
			t.Fatalf("variant %d bad or duplicated", v)
		}
		seen[v] = true
	}
	if Variant(0).Description() == "" {
		t.Fatal("unknown variant should still describe itself")
	}
}

func TestBaselineMatchesSPLATTSemantics(t *testing.T) {
	// Type 6 must compute a real MTTKRP (it is the reference all other
	// pressure points are compared against).
	csf := testTensor(t, 1, tensor.Dims{8, 8, 8}, 100)
	rank := 16
	rng := rand.New(rand.NewSource(2))
	b := la.NewMatrix(8, rank)
	c := la.NewMatrix(8, rank)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	out := la.NewMatrix(8, rank)
	accum := make([]float64, rank)
	Run(Type6Unchanged, csf, b, c, out, accum)

	// Oracle: COO accumulation.
	want := la.NewMatrix(8, rank)
	coo := csf.ToCOO()
	for p := 0; p < coo.NNZ(); p++ {
		brow := b.Row(int(coo.J[p]))
		crow := c.Row(int(coo.K[p]))
		orow := want.Row(int(coo.I[p]))
		for q := 0; q < rank; q++ {
			orow[q] += coo.Val[p] * brow[q] * crow[q]
		}
	}
	if d := out.MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("baseline kernel wrong by %v", d)
	}

	// Type 5 rearranges the same arithmetic: identical result.
	out5 := la.NewMatrix(8, rank)
	Run(Type5FlopsInner, csf, b, c, out5, accum)
	if d := out5.MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("flops-inner kernel wrong by %v", d)
	}
}

func TestAllVariantsRunWithoutPanic(t *testing.T) {
	csf := testTensor(t, 3, tensor.Dims{10, 12, 9}, 200)
	for _, rank := range []int{8, 16, 24, 33} { // includes non-multiple-of-16 tails
		b := la.NewMatrix(12, rank)
		c := la.NewMatrix(9, rank)
		out := la.NewMatrix(10, rank)
		accum := make([]float64, rank)
		for _, v := range Variants() {
			out.Zero()
			Run(v, csf, b, c, out, accum)
		}
	}
}

func TestRunPanicsOnUnknownVariant(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	csf := testTensor(t, 4, tensor.Dims{4, 4, 4}, 10)
	Run(Variant(0), csf, la.NewMatrix(4, 8), la.NewMatrix(4, 8), la.NewMatrix(4, 8), make([]float64, 8))
}

func TestMeasureValidation(t *testing.T) {
	csf := testTensor(t, 5, tensor.Dims{4, 4, 4}, 10)
	if _, err := Measure(csf, la.NewMatrix(4, 8), la.NewMatrix(4, 4), 8, 1); err == nil {
		t.Fatal("mismatched ranks accepted")
	}
	if _, err := Measure(csf, la.NewMatrix(3, 8), la.NewMatrix(4, 8), 8, 1); err == nil {
		t.Fatal("mismatched B rows accepted")
	}
}

func TestMeasureProducesOrderedResults(t *testing.T) {
	csf := testTensor(t, 6, tensor.Dims{16, 64, 16}, 2000)
	rank := 32
	rng := rand.New(rand.NewSource(7))
	b := la.NewMatrix(64, rank)
	c := la.NewMatrix(16, rank)
	for i := range b.Data {
		b.Data[i] = rng.Float64()
	}
	for i := range c.Data {
		c.Data[i] = rng.Float64()
	}
	res, err := Measure(csf, b, c, rank, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("got %d results", len(res))
	}
	for i, v := range Variants() {
		if res[i].Variant != v {
			t.Fatalf("result %d is %v, want %v (Table I order)", i, res[i].Variant, v)
		}
		if res[i].Seconds < 0 {
			t.Fatalf("negative time for %v", v)
		}
	}
	// Baseline's relative time is 1 by construction.
	last := res[len(res)-1]
	if last.Variant != Type6Unchanged || last.Relative != 1 {
		t.Fatalf("baseline relative = %v", last.Relative)
	}
}

// The traffic-side reproduction of Table I: simulated DRAM traffic must
// order the pressure points the way the paper's measured times do —
// removing B saves the most, then pinning B to L1; removing C saves
// little; moving flops inward costs little.
func TestTrafficOrderingMatchesTableI(t *testing.T) {
	// A tensor whose B footprint dwarfs the cache: J = 8192, rank 128
	// -> 8 MB.
	csf := testTensor(t, 8, tensor.Dims{64, 8192, 64}, 60000)
	rank := 128
	mem := func(v Variant) int64 {
		tr, err := cachesim.MeasureTraffic(cachesim.POWER8(), func(h *cachesim.Hierarchy) error {
			return cachesim.TraceSPLATT(h, csf, v.TraceOptions(rank))
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr.MemBytes(-1)
	}
	base := mem(Type6Unchanged)
	noB := mem(Type1NoB)
	bL1 := mem(Type2BInL1)
	noC := mem(Type4NoC)
	inner := mem(Type5FlopsInner)

	if noB >= base {
		t.Fatalf("removing B did not cut traffic: %d >= %d", noB, base)
	}
	if bL1 >= base {
		t.Fatalf("pinning B to L1 did not cut traffic: %d >= %d", bL1, base)
	}
	savedB := base - noB
	savedC := base - noC
	if savedB <= savedC {
		t.Fatalf("B savings (%d) must exceed C savings (%d) — the paper's key finding", savedB, savedC)
	}
	// Type 5 barely moves traffic (< 15% delta) — computation, not
	// data, is what it changes.
	delta := inner - base
	if delta < 0 {
		delta = -delta
	}
	if float64(delta) > 0.15*float64(base) {
		t.Fatalf("flops-inner moved traffic by %d (>15%% of %d)", delta, base)
	}
	t.Logf("DRAM bytes: base=%d noB=%d bL1=%d noC=%d inner=%d", base, noB, bL1, noC, inner)
}
