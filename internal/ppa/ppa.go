// Package ppa implements the pressure point analysis of Sec. IV-B:
// six variants of the SPLATT MTTKRP kernel, each with one resource
// artificially removed or redirected, used to attribute execution time
// to specific micro-architectural resources (Table I).
//
// The variants intentionally change the kernel's semantics — their
// outputs are meaningless; what matters is the execution time delta
// against the unchanged kernel. A checksum sink defeats dead-code
// elimination so the measured loops really execute.
package ppa

import (
	"fmt"
	"time"

	"spblock/internal/cachesim"
	"spblock/internal/la"
	"spblock/internal/tensor"
)

// Variant identifies one pressure point of Table I.
type Variant int

const (
	// Type1NoB removes all accesses to the mode-2 factor B.
	Type1NoB Variant = 1
	// Type2BInL1 redirects every access to B to its first row, so B is
	// served from L1.
	Type2BInL1 Variant = 2
	// Type3NoAccumLoads eliminates the load instructions on the
	// accumulator array by keeping partial sums in registers.
	Type3NoAccumLoads Variant = 3
	// Type4NoC removes all accesses to the mode-3 factor C.
	Type4NoC Variant = 4
	// Type5FlopsInner moves the per-fiber floating-point operations
	// into the per-nonzero inner loop, emulating the COO kernel.
	Type5FlopsInner Variant = 5
	// Type6Unchanged is the baseline SPLATT kernel.
	Type6Unchanged Variant = 6
)

// Variants lists all pressure points in Table I order.
func Variants() []Variant {
	return []Variant{Type1NoB, Type2BInL1, Type3NoAccumLoads, Type4NoC, Type5FlopsInner, Type6Unchanged}
}

// Description returns the Table I description of the variant.
func (v Variant) Description() string {
	switch v {
	case Type1NoB:
		return "Access to B removed"
	case Type2BInL1:
		return "All accesses to B limited to L1"
	case Type3NoAccumLoads:
		return "Eliminating load instructions"
	case Type4NoC:
		return "Access to C removed"
	case Type5FlopsInner:
		return "Moving flops to the inner-loop"
	case Type6Unchanged:
		return "Unchanged"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// TraceOptions maps a variant onto the cache-simulator pressure-point
// options, so the same experiment can be replayed for traffic.
func (v Variant) TraceOptions(rank int) cachesim.Options {
	opt := cachesim.Options{Rank: rank}
	switch v {
	case Type1NoB:
		opt.SkipB = true
	case Type2BInL1:
		opt.BRowZero = true
	case Type3NoAccumLoads:
		opt.SkipAccumLoads = true
	case Type4NoC:
		opt.SkipC = true
	case Type5FlopsInner:
		opt.FlopsInner = true
	}
	return opt
}

// Run executes the variant kernel once over t at the rank implied by
// out.Cols, accumulating into out (whose contents are meaningful only
// for Type6Unchanged), and returns a checksum that the caller should
// consume to keep the compiler honest.
func Run(v Variant, t *tensor.CSF, b, c, out *la.Matrix, accum []float64) float64 {
	switch v {
	case Type1NoB:
		return runNoB(t, c, out, accum)
	case Type2BInL1:
		return runBInL1(t, b, c, out, accum)
	case Type3NoAccumLoads:
		return runNoAccumLoads(t, b, c, out)
	case Type4NoC:
		return runNoC(t, b, out, accum)
	case Type5FlopsInner:
		return runFlopsInner(t, b, c, out)
	case Type6Unchanged:
		return runBaseline(t, b, c, out, accum)
	default:
		panic(fmt.Sprintf("ppa: unknown variant %d", int(v)))
	}
}

func runBaseline(t *tensor.CSF, b, c, out *la.Matrix, accum []float64) float64 {
	r := out.Cols
	for s := 0; s < t.NumSlices(); s++ {
		orow := out.Row(int(t.SliceID[s]))
		for f := t.SlicePtr[s]; f < t.SlicePtr[s+1]; f++ {
			clear(accum)
			for p := t.FiberPtr[f]; p < t.FiberPtr[f+1]; p++ {
				v := t.Val[p]
				brow := b.Row(int(t.NzJ[p]))
				for q := 0; q < r; q++ {
					accum[q] += v * brow[q]
				}
			}
			crow := c.Row(int(t.FiberK[f]))
			for q := 0; q < r; q++ {
				orow[q] += accum[q] * crow[q]
			}
		}
	}
	return out.Data[0]
}

// runNoB replaces the B row read with the nonzero value itself: the
// inner loop's loads of B disappear while the flop count stays.
func runNoB(t *tensor.CSF, c, out *la.Matrix, accum []float64) float64 {
	r := out.Cols
	for s := 0; s < t.NumSlices(); s++ {
		orow := out.Row(int(t.SliceID[s]))
		for f := t.SlicePtr[s]; f < t.SlicePtr[s+1]; f++ {
			clear(accum)
			for p := t.FiberPtr[f]; p < t.FiberPtr[f+1]; p++ {
				v := t.Val[p]
				for q := 0; q < r; q++ {
					accum[q] += v * v
				}
			}
			crow := c.Row(int(t.FiberK[f]))
			for q := 0; q < r; q++ {
				orow[q] += accum[q] * crow[q]
			}
		}
	}
	return out.Data[0]
}

func runBInL1(t *tensor.CSF, b, c, out *la.Matrix, accum []float64) float64 {
	r := out.Cols
	brow0 := b.Row(0)
	for s := 0; s < t.NumSlices(); s++ {
		orow := out.Row(int(t.SliceID[s]))
		for f := t.SlicePtr[s]; f < t.SlicePtr[s+1]; f++ {
			clear(accum)
			for p := t.FiberPtr[f]; p < t.FiberPtr[f+1]; p++ {
				v := t.Val[p]
				// The j index is still loaded (the instruction stream is
				// unchanged); only the row it selects is redirected.
				_ = t.NzJ[p]
				for q := 0; q < r; q++ {
					accum[q] += v * brow0[q]
				}
			}
			crow := c.Row(int(t.FiberK[f]))
			for q := 0; q < r; q++ {
				orow[q] += accum[q] * crow[q]
			}
		}
	}
	return out.Data[0]
}

// runNoAccumLoads keeps partial sums in 16-wide register blocks,
// removing the accumulator array's load/store traffic and the loads of
// A in the epilogue (lines 7 and 9 of Algorithm 1).
func runNoAccumLoads(t *tensor.CSF, b, c, out *la.Matrix) float64 {
	r := out.Cols
	for s := 0; s < t.NumSlices(); s++ {
		i := int(t.SliceID[s])
		for f := t.SlicePtr[s]; f < t.SlicePtr[s+1]; f++ {
			pLo, pHi := int(t.FiberPtr[f]), int(t.FiberPtr[f+1])
			k := int(t.FiberK[f])
			r0 := 0
			for ; r0+16 <= r; r0 += 16 {
				registerBlock16(t, b, c, out, pLo, pHi, i, k, r0)
			}
			if r0 < r {
				registerBlockTail(t, b, c, out, pLo, pHi, i, k, r0, r)
			}
		}
	}
	return out.Data[0]
}

func registerBlock16(t *tensor.CSF, b, c, out *la.Matrix, pLo, pHi, i, k, r0 int) {
	var a0, a1, a2, a3, a4, a5, a6, a7 float64
	var a8, a9, a10, a11, a12, a13, a14, a15 float64
	bd, bs := b.Data, b.Stride
	for p := pLo; p < pHi; p++ {
		v := t.Val[p]
		brow := bd[int(t.NzJ[p])*bs+r0:]
		brow = brow[:16:16]
		a0 += v * brow[0]
		a1 += v * brow[1]
		a2 += v * brow[2]
		a3 += v * brow[3]
		a4 += v * brow[4]
		a5 += v * brow[5]
		a6 += v * brow[6]
		a7 += v * brow[7]
		a8 += v * brow[8]
		a9 += v * brow[9]
		a10 += v * brow[10]
		a11 += v * brow[11]
		a12 += v * brow[12]
		a13 += v * brow[13]
		a14 += v * brow[14]
		a15 += v * brow[15]
	}
	crow := c.Data[k*c.Stride+r0:]
	crow = crow[:16:16]
	orow := out.Data[i*out.Stride+r0:]
	orow = orow[:16:16]
	// Stores only: the A loads of line 9 are what this pressure point
	// eliminates.
	orow[0] = a0 * crow[0]
	orow[1] = a1 * crow[1]
	orow[2] = a2 * crow[2]
	orow[3] = a3 * crow[3]
	orow[4] = a4 * crow[4]
	orow[5] = a5 * crow[5]
	orow[6] = a6 * crow[6]
	orow[7] = a7 * crow[7]
	orow[8] = a8 * crow[8]
	orow[9] = a9 * crow[9]
	orow[10] = a10 * crow[10]
	orow[11] = a11 * crow[11]
	orow[12] = a12 * crow[12]
	orow[13] = a13 * crow[13]
	orow[14] = a14 * crow[14]
	orow[15] = a15 * crow[15]
}

func registerBlockTail(t *tensor.CSF, b, c, out *la.Matrix, pLo, pHi, i, k, r0, r1 int) {
	var acc [16]float64
	w := r1 - r0
	for p := pLo; p < pHi; p++ {
		v := t.Val[p]
		brow := b.Data[int(t.NzJ[p])*b.Stride+r0:]
		for q := 0; q < w; q++ {
			acc[q] += v * brow[q]
		}
	}
	crow := c.Data[k*c.Stride+r0:]
	orow := out.Data[i*out.Stride+r0:]
	for q := 0; q < w; q++ {
		orow[q] = acc[q] * crow[q]
	}
}

func runNoC(t *tensor.CSF, b, out *la.Matrix, accum []float64) float64 {
	r := out.Cols
	for s := 0; s < t.NumSlices(); s++ {
		orow := out.Row(int(t.SliceID[s]))
		for f := t.SlicePtr[s]; f < t.SlicePtr[s+1]; f++ {
			clear(accum)
			for p := t.FiberPtr[f]; p < t.FiberPtr[f+1]; p++ {
				v := t.Val[p]
				brow := b.Row(int(t.NzJ[p]))
				for q := 0; q < r; q++ {
					accum[q] += v * brow[q]
				}
			}
			kv := float64(t.FiberK[f]) // stands in for the C row without touching C
			for q := 0; q < r; q++ {
				orow[q] += accum[q] * kv
			}
		}
	}
	return out.Data[0]
}

// runFlopsInner is the COO emulation: the fiber epilogue's multiply by
// C and accumulate into A happens per nonzero, increasing flops but
// not (much) data movement.
func runFlopsInner(t *tensor.CSF, b, c, out *la.Matrix) float64 {
	r := out.Cols
	for s := 0; s < t.NumSlices(); s++ {
		orow := out.Row(int(t.SliceID[s]))
		for f := t.SlicePtr[s]; f < t.SlicePtr[s+1]; f++ {
			crow := c.Row(int(t.FiberK[f]))
			for p := t.FiberPtr[f]; p < t.FiberPtr[f+1]; p++ {
				v := t.Val[p]
				brow := b.Row(int(t.NzJ[p]))
				for q := 0; q < r; q++ {
					orow[q] += v * brow[q] * crow[q]
				}
			}
		}
	}
	return out.Data[0]
}

// Result is one measured pressure point.
type Result struct {
	Variant  Variant
	Seconds  float64
	Relative float64 // Seconds / baseline Seconds
	Checksum float64
}

// Measure times every variant over reps repetitions (keeping the
// minimum) on a single goroutine, as the paper measured on a single
// core, and returns results in Table I order with Relative filled in.
func Measure(t *tensor.CSF, b, c *la.Matrix, rank, reps int) ([]Result, error) {
	if rank <= 0 || rank != b.Cols || rank != c.Cols {
		return nil, fmt.Errorf("ppa: rank %d inconsistent with factors (%d, %d)", rank, b.Cols, c.Cols)
	}
	if b.Rows != t.Dims[1] || c.Rows != t.Dims[2] {
		return nil, fmt.Errorf("ppa: factor shapes do not match tensor %v", t.Dims)
	}
	if reps <= 0 {
		reps = 3
	}
	out := la.NewMatrix(t.Dims[0], rank)
	accum := make([]float64, rank)
	var results []Result
	var sink float64
	for _, v := range Variants() {
		best := 0.0
		for rep := 0; rep < reps; rep++ {
			out.Zero()
			start := time.Now()
			sink += Run(v, t, b, c, out, accum)
			sec := time.Since(start).Seconds()
			if rep == 0 || sec < best {
				best = sec
			}
		}
		results = append(results, Result{Variant: v, Seconds: best, Checksum: sink})
	}
	baseline := results[len(results)-1].Seconds // Type6Unchanged is last
	for i := range results {
		if baseline > 0 {
			results[i].Relative = results[i].Seconds / baseline
		}
	}
	return results, nil
}
