package autotune

import (
	"maps"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"spblock/internal/core"
	"spblock/internal/kernel"
	"spblock/internal/la"
	"spblock/internal/sched"
	"spblock/internal/tensor"
)

func randCOO(rng *rand.Rand, dims tensor.Dims, nnz int) *tensor.COO {
	t := tensor.NewCOO(dims, nnz)
	for p := 0; p < nnz; p++ {
		t.Append(
			tensor.Index(rng.Intn(dims[0])),
			tensor.Index(rng.Intn(dims[1])),
			tensor.Index(rng.Intn(dims[2])),
			rng.Float64()+0.1,
		)
	}
	t.Dedup()
	return t
}

func TestStrategyString(t *testing.T) {
	if StrategyHeuristic.String() != "heuristic" ||
		StrategyModel.String() != "model" ||
		StrategyExhaustive.String() != "exhaustive" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy should render")
	}
}

func TestTuneValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randCOO(rng, tensor.Dims{8, 8, 8}, 50)
	if _, err := Tune(x, 0, core.MethodMB, StrategyModel, Options{}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := Tune(x, 16, core.MethodMB, Strategy(42), Options{}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	bad := tensor.NewCOO(tensor.Dims{2, 2, 2}, 0)
	bad.Append(9, 0, 0, 1)
	if _, err := Tune(bad, 16, core.MethodMB, StrategyModel, Options{}); err == nil {
		t.Fatal("invalid tensor accepted")
	}
}

func TestSampleKeepsSmallTensors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randCOO(rng, tensor.Dims{10, 10, 10}, 100)
	if got := sample(x, 1000, 1); got != x {
		t.Fatal("small tensor should not be copied")
	}
	big := randCOO(rng, tensor.Dims{50, 50, 50}, 20000)
	sub := sample(big, 2000, 1)
	if sub.NNZ() == 0 || sub.NNZ() > 4000 {
		t.Fatalf("sample size %d, want about 2000", sub.NNZ())
	}
	if sub.Dims != big.Dims {
		t.Fatal("sample changed dims")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestModelCostOrdersKernelsSensibly(t *testing.T) {
	// On a tensor whose B factor dwarfs the simulated cache, the model
	// must price a sensible rank-blocked plan below the unblocked one.
	rng := rand.New(rand.NewSource(3))
	x := randCOO(rng, tensor.Dims{32, 2048, 32}, 30000)
	rank := 128
	cost, err := ModelCost(x, rank, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	splatt := cost(core.Plan{Method: core.MethodSPLATT, Grid: [3]int{1, 1, 1}})
	blocked := cost(core.Plan{Method: core.MethodMB, Grid: [3]int{1, 8, 1}})
	if splatt <= 0 || blocked <= 0 {
		t.Fatal("non-positive model costs")
	}
	if blocked >= splatt {
		t.Fatalf("model prices MB (%v) above SPLATT (%v) on a cache-busting tensor", blocked, splatt)
	}
	// Unknown methods are priced out.
	if c := cost(core.Plan{Method: core.MethodCOO}); c < 1e200 {
		t.Fatalf("unsupported method got finite cost %v", c)
	}
}

func TestModelTuneFindsTrafficReducingPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randCOO(rng, tensor.Dims{32, 2048, 32}, 30000)
	rank := 128
	res, err := Tune(x, rank, core.MethodMBRankB, StrategyModel, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated == 0 {
		t.Fatal("no candidates evaluated")
	}
	if res.Plan.Method != core.MethodMBRankB {
		t.Fatalf("method = %v", res.Plan.Method)
	}
	// The tensor's B footprint (2048x128x8B = 2MB) demands blocking:
	// the tuned plan must not be the do-nothing plan.
	if res.Plan.Grid == [3]int{1, 1, 1} && res.Plan.RankBlockCols == 0 {
		t.Fatalf("model tuning chose the unblocked plan: %v", res.Plan)
	}
	// And the plan must execute correctly.
	b := la.NewMatrix(x.Dims[1], rank)
	c := la.NewMatrix(x.Dims[2], rank)
	for i := range b.Data {
		b.Data[i] = rng.Float64()
	}
	for i := range c.Data {
		c.Data[i] = rng.Float64()
	}
	want := la.NewMatrix(x.Dims[0], rank)
	if err := core.MTTKRP(x, b, c, want, core.Plan{Method: core.MethodSPLATT, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	got := la.NewMatrix(x.Dims[0], rank)
	if err := core.MTTKRP(x, b, c, got, res.Plan); err != nil {
		t.Fatal(err)
	}
	if d := got.MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("tuned plan wrong by %v", d)
	}
}

func TestExhaustiveIsTheCeiling(t *testing.T) {
	// The greedy model search must come within 25% of the exhaustive
	// optimum (same cost model, same sample) on a blocking-friendly
	// tensor — the quality claim behind using the cheap search.
	rng := rand.New(rand.NewSource(5))
	x := randCOO(rng, tensor.Dims{32, 1024, 32}, 20000)
	rank := 64
	opts := Options{Seed: 3, MaxGridSteps: 3}

	exh, err := Tune(x, rank, core.MethodMBRankB, StrategyExhaustive, opts)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Tune(x, rank, core.MethodMBRankB, StrategyModel, opts)
	if err != nil {
		t.Fatal(err)
	}
	if exh.Evaluated <= greedy.Evaluated {
		t.Fatalf("exhaustive evaluated %d <= greedy %d", exh.Evaluated, greedy.Evaluated)
	}
	cost, err := ModelCost(x, rank, opts)
	if err != nil {
		t.Fatal(err)
	}
	ce, cg := cost(exh.Plan), cost(greedy.Plan)
	if cg > ce*1.25 {
		t.Fatalf("greedy plan %v costs %v, exhaustive %v costs %v (>25%% gap)",
			greedy.Plan, cg, exh.Plan, ce)
	}
	t.Logf("exhaustive %v (%.3g) vs greedy %v (%.3g), %d vs %d evals",
		exh.Plan, ce, greedy.Plan, cg, exh.Evaluated, greedy.Evaluated)
}

func TestModelStripWalkMatchesExhaustive(t *testing.T) {
	// Regression: tuneWithModel walked the rank strips as bs *= 2
	// (16, 32, 64, ...) while the exhaustive sweep walks register-width
	// increments (16, 32, 48, ...), so the model could never evaluate —
	// let alone pick — the in-between widths, and at rank <= 16 it
	// evaluated no strip at all. The two strategies share one cost model
	// and one sample, so on a pure rank-blocking search the model's
	// chosen plan must now price exactly at the exhaustive optimum.
	rng := rand.New(rand.NewSource(7))
	x := randCOO(rng, tensor.Dims{32, 1024, 32}, 20000)
	rank := 64
	opts := Options{Seed: 4}

	exh, err := Tune(x, rank, core.MethodRankB, StrategyExhaustive, opts)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Tune(x, rank, core.MethodRankB, StrategyModel, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The model must have walked the full register-width ladder.
	seen := map[int]bool{}
	for _, tr := range mod.Trials {
		seen[tr.Plan.RankBlockCols] = true
	}
	for bs := core.RegisterBlockWidth; bs < rank; bs += core.RegisterBlockWidth {
		if !seen[bs] {
			t.Fatalf("model never evaluated strip width %d (trials: %v)", bs, seen)
		}
	}
	cost, err := ModelCost(x, rank, opts)
	if err != nil {
		t.Fatal(err)
	}
	ce, cm := cost(exh.Plan), cost(mod.Plan)
	if cm != ce {
		t.Fatalf("model plan %v costs %v, exhaustive plan %v costs %v — same ladder, same model, must agree",
			mod.Plan, cm, exh.Plan, ce)
	}
}

func TestModelEvaluatesStripAtSmallRank(t *testing.T) {
	// Regression: with bs *= 2; bs < rank, a rank <= RegisterBlockWidth
	// search body never ran, so StrategyModel on MethodRankB degenerated
	// to pricing only the unstripped baseline.
	rng := rand.New(rand.NewSource(8))
	x := randCOO(rng, tensor.Dims{32, 256, 32}, 5000)
	rank := core.RegisterBlockWidth
	res, err := Tune(x, rank, core.MethodRankB, StrategyModel, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var stripTrials int
	for _, tr := range res.Trials {
		if tr.Plan.RankBlockCols > 0 {
			stripTrials++
		}
	}
	if stripTrials == 0 {
		t.Fatalf("rank %d search evaluated no strip candidate (%d trials)", rank, len(res.Trials))
	}
}

func TestTuneNormalizesWorkers(t *testing.T) {
	// Regression: withDefaults never defaulted Workers, so returned plans
	// carried Workers: 0 while the heuristic's measurements ran at
	// GOMAXPROCS — re-running the tuned plan could use a different
	// parallelism than the one that was actually measured.
	rng := rand.New(rand.NewSource(9))
	x := randCOO(rng, tensor.Dims{16, 32, 16}, 800)
	want := runtime.GOMAXPROCS(0)
	for _, s := range []Strategy{StrategyHeuristic, StrategyModel, StrategyExhaustive} {
		res, err := Tune(x, 32, core.MethodRankB, s, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Plan.Workers != want {
			t.Fatalf("%v: plan.Workers = %d, want GOMAXPROCS %d", s, res.Plan.Workers, want)
		}
	}
	// An explicit worker count passes through untouched.
	res, err := Tune(x, 32, core.MethodRankB, StrategyModel, Options{Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Workers != 2 {
		t.Fatalf("plan.Workers = %d, want explicit 2", res.Plan.Workers)
	}
}

func TestSampleNeverOutgrowsTarget(t *testing.T) {
	// Regression: the Bernoulli draw has expected count == target, so
	// about half of all seeds used to overflow the pre-sized capacity and
	// silently reallocate; the draw is now capped at target.
	rng := rand.New(rand.NewSource(10))
	big := randCOO(rng, tensor.Dims{50, 50, 50}, 30000)
	for seed := int64(0); seed < 20; seed++ {
		sub := sample(big, 1000, seed)
		if sub.NNZ() > 1000 {
			t.Fatalf("seed %d: sample has %d nonzeros, cap is 1000", seed, sub.NNZ())
		}
		if sub.Dims != big.Dims {
			t.Fatalf("seed %d: sample changed dims", seed)
		}
		if err := sub.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestHeuristicStrategyDelegates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randCOO(rng, tensor.Dims{16, 32, 16}, 800)
	res, err := Tune(x, 32, core.MethodRankB, StrategyHeuristic, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != StrategyHeuristic {
		t.Fatalf("strategy = %v", res.Strategy)
	}
	if res.Plan.Method != core.MethodRankB {
		t.Fatalf("method = %v", res.Plan.Method)
	}
}

func TestEnumerateGridsBounds(t *testing.T) {
	grids := enumerateGrids(tensor.Dims{3, 100, 100}, 3)
	for _, g := range grids {
		if g[0] > 3 || g[1] > 8 || g[2] > 8 {
			t.Fatalf("grid %v out of bounds", g)
		}
	}
	// Mode 0 allows 1, 2; modes 1-2 allow 1, 2, 4, 8.
	if len(grids) != 2*4*4 {
		t.Fatalf("got %d grids, want 32", len(grids))
	}
}

func TestHeuristicAndModelWalkSameStripLadder(t *testing.T) {
	// Regression for the core/heuristic.go ladder: its old
	// `bs < rank` loop never evaluated a strip at bs == rank, while
	// the model walk (fixed earlier) did — so under a cost that keeps
	// improving up to the full rank the two searches disagreed on the
	// winner. Both ladders now come from kernel.StripCandidates; under
	// a strictly decreasing cost the heuristic's stopping rule never
	// fires, so both must visit exactly the baseline plus every
	// registry candidate, full-rank rung included.
	rank := 48
	decreasing := func(p core.Plan) float64 {
		if p.RankBlockCols == 0 {
			return 1000
		}
		return 1000 - float64(p.RankBlockCols)
	}
	plan, trials, err := core.AutotuneWithCost(tensor.Dims{16, 16, 16}, rank, core.MethodRankB,
		core.Plan{Method: core.MethodRankB}, decreasing, core.AutotuneOptions{Tolerance: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	heuristicSeen := map[int]bool{}
	for _, tr := range trials {
		heuristicSeen[tr.Plan.RankBlockCols] = true
	}

	rng := rand.New(rand.NewSource(11))
	x := randCOO(rng, tensor.Dims{16, 256, 16}, 4000)
	mod, err := Tune(x, rank, core.MethodRankB, StrategyModel, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	modelSeen := map[int]bool{}
	for _, tr := range mod.Trials {
		modelSeen[tr.Plan.RankBlockCols] = true
	}

	want := map[int]bool{0: true}
	for _, bs := range kernel.StripCandidates(rank) {
		want[bs] = true
	}
	if !maps.Equal(heuristicSeen, want) {
		t.Fatalf("heuristic visited %v, want %v", heuristicSeen, want)
	}
	if !maps.Equal(modelSeen, want) {
		t.Fatalf("model visited %v, want %v", modelSeen, want)
	}
	if plan.RankBlockCols != rank {
		t.Fatalf("heuristic best bs = %d under strictly improving cost, want the full-rank rung %d",
			plan.RankBlockCols, rank)
	}
}

func TestSchedCostFactor(t *testing.T) {
	// Static pays the observed imbalance in full: its critical path is
	// the most loaded worker.
	if f := SchedCostFactor(sched.PolicyStatic, 1.8); f != 1.8 {
		t.Errorf("static factor at 1.8 = %v", f)
	}
	// Stealing pays only its constant claim overhead, however skewed the
	// static shares were.
	if f := SchedCostFactor(sched.PolicySteal, 3.0); f != stealOverheadFactor {
		t.Errorf("steal factor at 3.0 = %v, want %v", f, stealOverheadFactor)
	}
	// Adaptive settles into the cheaper layout.
	if f := SchedCostFactor(sched.PolicyAdaptive, 3.0); f != stealOverheadFactor {
		t.Errorf("adaptive factor at 3.0 = %v, want %v", f, stealOverheadFactor)
	}
	if f := SchedCostFactor(sched.PolicyAdaptive, 1.0); f != 1.0 {
		t.Errorf("adaptive factor at 1.0 = %v, want 1", f)
	}
	// Degenerate observations clamp to balanced.
	if f := SchedCostFactor(sched.PolicyStatic, 0); f != 1.0 {
		t.Errorf("static factor at 0 = %v, want 1", f)
	}
	if f := SchedCostFactor(sched.PolicyStatic, math.NaN()); f != 1.0 {
		t.Errorf("static factor at NaN = %v, want 1", f)
	}
}

// TestReplanPolicyFollowsImbalance pins the Replan trade-off: heavy
// observed imbalance makes every static candidate pay its skew, so the
// winner schedules by stealing; a balanced observation keeps static
// (stealing would pay its claim overhead for nothing). The worker count
// of the running plan is preserved either way.
func TestReplanPolicyFollowsImbalance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randCOO(rng, tensor.Dims{48, 40, 32}, 4000)
	cur := core.Plan{Method: core.MethodSPLATT, Grid: [3]int{1, 1, 1}, Workers: 4}
	skewed, err := Replan(x, 16, cur, 2.5, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if skewed.Plan.Sched != sched.PolicySteal {
		t.Errorf("imbalance 2.5: plan %v, want a stealing plan", skewed.Plan)
	}
	if skewed.Plan.Workers != 4 {
		t.Errorf("imbalance 2.5: workers %d, want the running plan's 4", skewed.Plan.Workers)
	}
	balanced, err := Replan(x, 16, cur, 1.0, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if balanced.Plan.Sched != sched.PolicyStatic {
		t.Errorf("imbalance 1.0: plan %v, want a static plan", balanced.Plan)
	}
	if len(skewed.Trials) == 0 || skewed.Evaluated != len(skewed.Trials) {
		t.Errorf("trial accounting: evaluated %d, %d trials", skewed.Evaluated, len(skewed.Trials))
	}
}

// TestReplanKeepsAdaptive: an adaptive plan stays adaptive — the
// executor's own ratchet subsumes the static/steal choice, and demoting
// it would discard its promotion state.
func TestReplanKeepsAdaptive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randCOO(rng, tensor.Dims{32, 32, 32}, 2000)
	cur := core.Plan{Method: core.MethodSPLATT, Grid: [3]int{1, 1, 1}, Workers: 2, Sched: sched.PolicyAdaptive}
	res, err := Replan(x, 16, cur, 2.0, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Sched != sched.PolicyAdaptive {
		t.Errorf("adaptive plan replanned to %v", res.Plan)
	}
	for _, tr := range res.Trials {
		if tr.Plan.Sched != sched.PolicyAdaptive {
			t.Fatalf("adaptive replan evaluated a %v candidate", tr.Plan.Sched)
		}
	}
}

// TestReplanNeverRegressesRunningPlan is the regression test for the
// missing-cur bug: the greedy walks reseed from {1,1,1} and only step
// through power-of-two block counts, so a running plan with a grid the
// walk cannot reach (here 3x1x1) was never in the trial set, and Replan
// could return a plan its own model costed *above* the plan already
// running. The fix always evaluates cur first; pin both halves — cur is
// a trial, and the winner's modeled cost never exceeds cur's.
func TestReplanNeverRegressesRunningPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randCOO(rng, tensor.Dims{48, 36, 30}, 3000)
	cur := core.Plan{Method: core.MethodMB, Grid: [3]int{3, 1, 1}, Workers: 2}
	res, err := Replan(x, 16, cur, 1.4, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantCur := cur // the trial carries opts-normalised Workers
	curCost := math.Inf(1)
	for _, tr := range res.Trials {
		if tr.Plan.String() == wantCur.String() && tr.Plan.Workers == cur.Workers {
			curCost = tr.Cost
			break
		}
	}
	if math.IsInf(curCost, 1) {
		t.Fatalf("running plan %v missing from the trial set (%d trials)", cur, len(res.Trials))
	}
	var bestCost float64 = math.Inf(1)
	for _, tr := range res.Trials {
		if tr.Plan.String() == res.Plan.String() && tr.Cost < bestCost {
			bestCost = tr.Cost
		}
	}
	if math.IsInf(bestCost, 1) {
		t.Fatalf("returned plan %v has no trial", res.Plan)
	}
	if bestCost > curCost {
		t.Errorf("replan returned %v at cost %v, above the running plan's %v", res.Plan, bestCost, curCost)
	}
}

func TestReplanValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randCOO(rng, tensor.Dims{8, 8, 8}, 50)
	if _, err := Replan(x, 0, core.Plan{Method: core.MethodSPLATT}, 1.5, Options{}); err == nil {
		t.Error("rank 0 accepted")
	}
	bad := tensor.NewCOO(tensor.Dims{2, 2, 2}, 0)
	bad.Append(9, 0, 0, 1)
	if _, err := Replan(bad, 8, core.Plan{Method: core.MethodSPLATT}, 1.5, Options{}); err == nil {
		t.Error("invalid tensor accepted")
	}
}
