// Package autotune realises the paper's future-work proposal
// (Sec. VII): "finding the optimal sizes would require a more accurate
// model for data movement, as well as an efficient heuristic to search
// through the parameter space. That is, a well designed autotuning
// framework would allow the work presented here to be practical."
//
// It offers three search strategies over the (MB grid, RankB strip)
// space, all returning a core.Plan:
//
//   - StrategyHeuristic — the paper's own Sec. V-C greedy walk, timed
//     on real executions (delegates to core.Autotune);
//   - StrategyModel — the same greedy walk, but driven by a *data
//     movement model*: each candidate's DRAM traffic is predicted by
//     replaying its access trace through the cache simulator on a
//     sampled sub-tensor, converted to time with the roofline bound.
//     No candidate kernel ever executes, so tuning cost is independent
//     of the rank and of machine noise;
//   - StrategyExhaustive — a bounded sweep of the whole space, the
//     quality ceiling the cheap strategies are judged against.
package autotune

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"spblock/internal/cachesim"
	"spblock/internal/core"
	"spblock/internal/kernel"
	"spblock/internal/roofline"
	"spblock/internal/sched"
	"spblock/internal/tensor"
)

// Strategy selects a search algorithm.
type Strategy int

const (
	// StrategyHeuristic is the paper's Sec. V-C measured greedy search.
	StrategyHeuristic Strategy = iota
	// StrategyModel is the greedy search driven by simulated traffic.
	StrategyModel
	// StrategyExhaustive sweeps a bounded grid of candidates.
	StrategyExhaustive
)

func (s Strategy) String() string {
	switch s {
	case StrategyHeuristic:
		return "heuristic"
	case StrategyModel:
		return "model"
	case StrategyExhaustive:
		return "exhaustive"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures a tuning run.
type Options struct {
	// Machine supplies the roofline parameters for the model strategy
	// (zero value = the paper's POWER8 socket).
	Machine roofline.Machine
	// Cache is the simulated hierarchy for the model strategy
	// (zero value = POWER8-like 64 KB L1 + 512 KB L2).
	Cache cachesim.Config
	// SampleNNZ bounds the sub-tensor used for trace simulation
	// (default 100k nonzeros). Sampling keeps model evaluation fast on
	// multi-million-nonzero tensors; block-size *ratios* survive
	// sampling because the factor-row working sets shrink with the
	// tensor.
	SampleNNZ int
	// MaxGridSteps bounds the exhaustive sweep: per mode the candidate
	// block counts are 1, 2, 4, ..., 2^MaxGridSteps (default 4).
	MaxGridSteps int
	// Seed drives sampling and the heuristic's factor matrices.
	Seed int64
	// Workers is the parallelism for the heuristic's measurements.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Machine == (roofline.Machine{}) {
		o.Machine = roofline.POWER8Socket
	}
	if o.Cache.LineSize == 0 {
		o.Cache = cachesim.POWER8()
	}
	if o.SampleNNZ <= 0 {
		o.SampleNNZ = 100_000
	}
	if o.MaxGridSteps <= 0 {
		o.MaxGridSteps = 4
	}
	// Pin the worker count the returned plans carry. The heuristic's
	// measurements always ran at GOMAXPROCS when Workers was 0, but the
	// plan recorded the raw 0 — so a caller re-running the plan on a
	// capped executor could silently get a different parallelism than the
	// one that was tuned.
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Result reports a tuning run.
type Result struct {
	Plan      Plan
	Trials    []core.Trial
	Strategy  Strategy
	Evaluated int
}

// Plan aliases core.Plan for callers that only import this package.
type Plan = core.Plan

// Tune searches for block sizes for the given method on tensor t at
// rank R.
func Tune(t *tensor.COO, rank int, method core.Method, strategy Strategy, opts Options) (Result, error) {
	if err := t.Validate(); err != nil {
		return Result{}, err
	}
	if rank <= 0 {
		return Result{}, fmt.Errorf("autotune: rank must be positive, got %d", rank)
	}
	opts = opts.withDefaults()
	switch strategy {
	case StrategyHeuristic:
		plan, trials, err := core.Autotune(t, rank, method, core.AutotuneOptions{
			Workers: opts.Workers, Seed: opts.Seed,
		})
		return Result{Plan: plan, Trials: trials, Strategy: strategy, Evaluated: len(trials)}, err
	case StrategyModel:
		return tuneWithModel(t, rank, method, opts)
	case StrategyExhaustive:
		return tuneExhaustive(t, rank, method, opts)
	default:
		return Result{}, fmt.Errorf("autotune: unknown strategy %v", strategy)
	}
}

// sample returns t, or a uniformly sampled sub-tensor of about
// opts.SampleNNZ nonzeros when t is larger.
func sample(t *tensor.COO, target int, seed int64) *tensor.COO {
	if t.NNZ() <= target {
		return t
	}
	rng := rand.New(rand.NewSource(seed))
	out := tensor.NewCOO(t.Dims, target)
	// Bernoulli sampling with the right expected count keeps the
	// spatial distribution intact. The draw is capped at target so an
	// above-expectation run cannot outgrow the pre-sized capacity.
	p := float64(target) / float64(t.NNZ())
	for i := 0; i < t.NNZ() && out.NNZ() < target; i++ {
		if rng.Float64() < p {
			out.Append(t.I[i], t.J[i], t.K[i], t.Val[i])
		}
	}
	// Degenerate draw: keep one real nonzero so downstream builders see a
	// non-empty tensor with the original Dims.
	if out.NNZ() == 0 {
		out.Append(t.I[0], t.J[0], t.K[0], t.Val[0])
	}
	return out
}

// ModelCost builds a CostFunc that prices a plan by simulated DRAM
// traffic converted to seconds with the roofline bound. Exposed so
// experiments can tune against traffic explicitly.
func ModelCost(t *tensor.COO, rank int, opts Options) (core.CostFunc, error) {
	opts = opts.withDefaults()
	sub := sample(t, opts.SampleNNZ, opts.Seed)
	csf, err := tensor.BuildCSF(sub)
	if err != nil {
		return nil, err
	}
	stats := tensor.ComputeStats(sub)
	flops := 2 * float64(rank) * float64(stats.NNZ+stats.Fibers)
	cpuSec := flops / (opts.Machine.PeakGFLOP * 1e9)

	// Blocked structures are rebuilt per candidate grid; cache them.
	blockedCache := map[[3]int]*core.BlockedTensor{}
	infinity := 1e300

	return func(p core.Plan) float64 {
		var trace func(h *cachesim.Hierarchy) error
		simOpt := cachesim.Options{Rank: rank, RankBlockCols: p.RankBlockCols}
		switch p.Method {
		case core.MethodSPLATT:
			trace = func(h *cachesim.Hierarchy) error {
				return cachesim.TraceSPLATT(h, csf, simOpt)
			}
		case core.MethodRankB:
			trace = func(h *cachesim.Hierarchy) error {
				return cachesim.TraceRankB(h, csf, simOpt)
			}
		case core.MethodMB, core.MethodMBRankB:
			grid := p.Grid
			bt, ok := blockedCache[grid]
			if !ok {
				var err error
				bt, err = core.BuildBlocked(sub, grid)
				if err != nil {
					return infinity
				}
				blockedCache[grid] = bt
			}
			if p.Method == core.MethodMB {
				simOpt.RankBlockCols = 0
			}
			trace = func(h *cachesim.Hierarchy) error {
				return cachesim.TraceMB(h, bt, simOpt)
			}
		default:
			return infinity
		}
		tr, err := cachesim.MeasureTraffic(opts.Cache, trace)
		if err != nil {
			return infinity
		}
		memSec := float64(tr.MemBytes(-1)) / (opts.Machine.MemGBs * 1e9)
		if memSec > cpuSec {
			return memSec
		}
		return cpuSec
	}, nil
}

// tuneWithModel runs a "patient" greedy search against the traffic
// model: along each mode (in the paper's traversal order) it evaluates
// every power-of-two block count up to 2^MaxGridSteps and keeps the
// best, rather than stopping at the first non-improving doubling. The
// paper's stopping rule exists to bound *measurement* cost; model
// evaluations are cheap enough to explore the plateau, which matters
// because the benefit of blocking often only appears once the per-block
// working set first fits the cache (e.g. a 2.3 MB factor needs 8
// blocks before anything changes at a 512 KB L2 — doubling once shows
// no gain and the impatient rule gives up).
func tuneWithModel(t *tensor.COO, rank int, method core.Method, opts Options) (Result, error) {
	cost, err := ModelCost(t, rank, opts)
	if err != nil {
		return Result{}, err
	}
	var trials []core.Trial
	eval := func(p core.Plan) float64 {
		c := cost(p)
		trials = append(trials, core.Trial{Plan: p, Cost: c})
		return c
	}
	seed := core.Plan{Method: method, Grid: [3]int{1, 1, 1}, Workers: opts.Workers}
	best, _ := greedyModelSearch(t.Dims, rank, seed, opts.MaxGridSteps, eval)
	return Result{Plan: best, Trials: trials, Strategy: StrategyModel, Evaluated: len(trials)}, nil
}

// greedyModelSearch is the patient greedy walk shared by the model
// strategy and Replan: starting from seed (whose Method, Workers and
// Sched pass through unchanged), along each mode (in the paper's
// traversal order) it evaluates every power-of-two block count up to
// 2^maxGridSteps and keeps the best, then walks the kernel registry's
// strip ladder capped at and including the rank, exactly like the
// exhaustive sweep. The ladder is every width the registered
// register-block variants execute without a super-MinWidth scalar tail
// (multiples of kernel.MinWidth), plus the rank itself — so a
// rank <= MinWidth search still evaluates the whole-rank strip and the
// strategies agree on small ranks.
func greedyModelSearch(dims tensor.Dims, rank int, seed core.Plan, maxGridSteps int, eval func(core.Plan) float64) (core.Plan, float64) {
	best := seed
	bestCost := eval(best)
	method := seed.Method
	if method == core.MethodMB || method == core.MethodMBRankB {
		for _, m := range core.MBModeOrder(dims) {
			for blocks := 2; blocks <= dims[m] && blocks <= 1<<maxGridSteps; blocks *= 2 {
				cand := best
				cand.Grid[m] = blocks
				if c := eval(cand); c < bestCost {
					best, bestCost = cand, c
				}
			}
		}
	}
	if method == core.MethodRankB || method == core.MethodMBRankB {
		for _, bs := range kernel.StripCandidates(rank) {
			cand := best
			cand.RankBlockCols = bs
			if c := eval(cand); c < bestCost {
				best, bestCost = cand, c
			}
		}
	}
	return best, bestCost
}

// stealOverheadFactor prices the stealing scheduler's per-chunk atomic
// claims and the locality it gives up at chunk boundaries: a balanced
// workload should keep the static layout rather than paying it for
// nothing.
const stealOverheadFactor = 1.02

// SchedCostFactor scales a model-predicted perfectly-parallel runtime
// by the scheduling policy's expected load behaviour under the observed
// per-worker imbalance (max/mean busy time, 1 = perfectly balanced;
// see metrics.Snapshot.Imbalance). Static's critical path is the most
// loaded worker, so it pays the full imbalance; stealing re-balances
// whatever the weight estimates got wrong at a small constant
// overhead; adaptive settles into whichever of the two layouts is
// cheaper (the ratchet's patience lag is noise at sweep counts).
func SchedCostFactor(p sched.Policy, imbalance float64) float64 {
	if imbalance < 1 || math.IsNaN(imbalance) {
		imbalance = 1
	}
	switch p {
	case sched.PolicySteal:
		return stealOverheadFactor
	case sched.PolicyAdaptive:
		return math.Min(imbalance, stealOverheadFactor)
	default:
		return imbalance
	}
}

// Replan re-costs the plan space in the light of a running executor's
// observed worker imbalance, for the between-sweep replan hook
// (sched.Replanner): every blocked method is searched with the model
// strategy's greedy walk under both the static and stealing policies,
// each candidate's predicted time scaled by SchedCostFactor. cur
// contributes the worker count (preserved — the executors are already
// sized for it) and the policy constraint: an adaptive plan stays
// adaptive, since the executor's own ratchet subsumes the static/steal
// choice and demoting it would discard its promotion state. cur is
// also always in the trial set itself, so the returned plan is never
// one the model costs above the plan already running.
func Replan(t *tensor.COO, rank int, cur core.Plan, imbalance float64, opts Options) (Result, error) {
	if err := t.Validate(); err != nil {
		return Result{}, err
	}
	if rank <= 0 {
		return Result{}, fmt.Errorf("autotune: rank must be positive, got %d", rank)
	}
	opts = opts.withDefaults()
	if cur.Workers > 0 {
		opts.Workers = cur.Workers
	}
	cost, err := ModelCost(t, rank, opts)
	if err != nil {
		return Result{}, err
	}
	var trials []core.Trial
	eval := func(p core.Plan) float64 {
		c := cost(p) * SchedCostFactor(p.Sched, imbalance)
		trials = append(trials, core.Trial{Plan: p, Cost: c})
		return c
	}
	methods := []core.Method{core.MethodSPLATT, core.MethodRankB, core.MethodMB, core.MethodMBRankB}
	policies := []sched.Policy{sched.PolicyStatic, sched.PolicySteal}
	if cur.Sched == sched.PolicyAdaptive {
		policies = []sched.Policy{sched.PolicyAdaptive}
	}
	// The running plan is always a candidate. The greedy walks reseed
	// from {1,1,1} and only visit power-of-two grid steps, so nothing
	// guarantees they revisit cur's exact configuration — without this
	// trial a between-sweep replan could hand back a plan the model
	// itself costs above what is already running, and the driver would
	// pay an engine rebuild for a predicted slowdown.
	best := cur
	if best.Grid == ([3]int{}) {
		best.Grid = [3]int{1, 1, 1}
	}
	best.Workers = opts.Workers
	bestCost := eval(best)
	for _, method := range methods {
		for _, pol := range policies {
			seed := core.Plan{Method: method, Grid: [3]int{1, 1, 1}, Workers: opts.Workers, Sched: pol}
			p, c := greedyModelSearch(t.Dims, rank, seed, opts.MaxGridSteps, eval)
			if c < bestCost {
				best, bestCost = p, c
			}
		}
	}
	return Result{Plan: best, Trials: trials, Strategy: StrategyModel, Evaluated: len(trials)}, nil
}

func tuneExhaustive(t *tensor.COO, rank int, method core.Method, opts Options) (Result, error) {
	cost, err := ModelCost(t, rank, opts)
	if err != nil {
		return Result{}, err
	}
	grids := [][3]int{{1, 1, 1}}
	if method == core.MethodMB || method == core.MethodMBRankB {
		grids = enumerateGrids(t.Dims, opts.MaxGridSteps)
	}
	strips := []int{0}
	if method == core.MethodRankB || method == core.MethodMBRankB {
		strips = append(strips, kernel.StripCandidates(rank)...)
	}
	best := core.Plan{Method: method, Grid: [3]int{1, 1, 1}, Workers: opts.Workers}
	bestCost := 1e300
	var trials []core.Trial
	for _, g := range grids {
		for _, bs := range strips {
			cand := core.Plan{Method: method, Grid: g, RankBlockCols: bs, Workers: opts.Workers}
			c := cost(cand)
			trials = append(trials, core.Trial{Plan: cand, Cost: c})
			if c < bestCost {
				best, bestCost = cand, c
			}
		}
	}
	return Result{Plan: best, Trials: trials, Strategy: StrategyExhaustive, Evaluated: len(trials)}, nil
}

// enumerateGrids lists power-of-two grids up to 2^steps per mode,
// bounded by the mode lengths.
func enumerateGrids(dims tensor.Dims, steps int) [][3]int {
	var axis [3][]int
	for m := 0; m < 3; m++ {
		for v := 1; v <= dims[m] && v <= 1<<steps; v *= 2 {
			axis[m] = append(axis[m], v)
		}
	}
	var out [][3]int
	for _, a := range axis[0] {
		for _, b := range axis[1] {
			for _, c := range axis[2] {
				out = append(out, [3]int{a, b, c})
			}
		}
	}
	return out
}
