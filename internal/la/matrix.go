// Package la provides the small dense linear-algebra substrate used by
// the MTTKRP kernels and the CP-ALS decomposition: row-major matrices,
// Gram products, Hadamard products, Cholesky solves and the explicit
// Khatri-Rao product used as a test oracle.
//
// Matrices here are deliberately simple: factor matrices in tensor
// decompositions are tall and narrow (I x R with R <= a few thousand),
// so a flat row-major []float64 with an explicit stride is both the
// fastest and the clearest representation.
package la

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix. Element (i, j) is stored at
// Data[i*Stride+j]. Stride >= Cols; kernels that process rank blocks
// keep Stride equal to the full rank while viewing a column strip.
type Matrix struct {
	Rows   int
	Cols   int
	Stride int
	Data   []float64
}

// NewMatrix allocates a zeroed rows x cols matrix with Stride == cols.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("la: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{
		Rows:   rows,
		Cols:   cols,
		Stride: cols,
		Data:   make([]float64, rows*cols),
	}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Row returns the i-th row as a slice sharing the matrix storage.
// Only the first Cols entries are meaningful.
//
//spblock:hotpath
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Stride : i*m.Stride+m.Cols]
}

// Zero sets every element to zero.
//
//spblock:hotpath
func (m *Matrix) Zero() {
	if m.Stride == m.Cols {
		clear(m.Data[:m.Rows*m.Cols])
		return
	}
	for i := 0; i < m.Rows; i++ {
		clear(m.Row(i))
	}
}

// Clone returns a deep copy with a compact stride.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(c.Row(i), m.Row(i))
	}
	return c
}

// CopyFrom copies src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("la: CopyFrom shape mismatch %dx%d vs %dx%d",
			m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// ColumnView returns a matrix sharing m's storage that exposes columns
// [lo, hi). The view keeps m's stride, so row slices remain contiguous
// within the parent storage — this is exactly the "strip" a rank block
// operates on.
func (m *Matrix) ColumnView(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("la: ColumnView [%d,%d) out of range for %d cols", lo, hi, m.Cols))
	}
	return &Matrix{
		Rows:   m.Rows,
		Cols:   hi - lo,
		Stride: m.Stride,
		Data:   m.Data[lo:],
	}
}

// Equal reports whether m and o have the same shape and all elements
// within tol of each other.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		a, b := m.Row(i), o.Row(i)
		for j := range a {
			if math.Abs(a[j]-b[j]) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference.
// Panics on shape mismatch.
func (m *Matrix) MaxAbsDiff(o *Matrix) float64 {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("la: MaxAbsDiff shape mismatch")
	}
	var d float64
	for i := 0; i < m.Rows; i++ {
		a, b := m.Row(i), o.Row(i)
		for j := range a {
			if v := math.Abs(a[j] - b[j]); v > d {
				d = v
			}
		}
	}
	return d
}

// FrobeniusNorm returns sqrt(sum of squares).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// Scale multiplies every element by a.
func (m *Matrix) Scale(a float64) {
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		for j := range r {
			r[j] *= a
		}
	}
}

// AddScaled computes m += a*o element-wise. Shapes must match.
func (m *Matrix) AddScaled(a float64, o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("la: AddScaled shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst, src := m.Row(i), o.Row(i)
		for j := range dst {
			dst[j] += a * src[j]
		}
	}
}

// FillFunc sets every element (i, j) to f(i, j).
func (m *Matrix) FillFunc(f func(i, j int) float64) {
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		for j := range r {
			r[j] = f(i, j)
		}
	}
}

// String renders small matrices for debugging; large matrices render a
// shape summary only.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("la.Matrix{%dx%d}", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("la.Matrix{%dx%d:", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		s += fmt.Sprintf(" %v", m.Row(i))
	}
	return s + "}"
}
