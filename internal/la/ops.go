package la

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned by CholeskyDecompose when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotSPD = errors.New("la: matrix is not symmetric positive definite")

// Gram computes G = Aᵀ·A, an R x R symmetric matrix where R = A.Cols.
// This is the building block of the CP-ALS normal equations.
func Gram(a *Matrix) *Matrix {
	r := a.Cols
	g := NewMatrix(r, r)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for p := 0; p < r; p++ {
			vp := row[p]
			if vp == 0 {
				continue
			}
			grow := g.Row(p)
			for q := p; q < r; q++ {
				grow[q] += vp * row[q]
			}
		}
	}
	// Mirror the upper triangle.
	for p := 0; p < r; p++ {
		for q := p + 1; q < r; q++ {
			g.Set(q, p, g.At(p, q))
		}
	}
	return g
}

// Hadamard computes the element-wise product c = a .* b into a new
// matrix. Shapes must match.
func Hadamard(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("la: Hadamard shape mismatch %dx%d vs %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		ra, rb, rc := a.Row(i), b.Row(i), c.Row(i)
		for j := range rc {
			rc[j] = ra[j] * rb[j]
		}
	}
	return c
}

// HadamardInPlace computes a .*= b.
func HadamardInPlace(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("la: HadamardInPlace shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			ra[j] *= rb[j]
		}
	}
}

// MatMul computes C = A·B with fresh storage.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("la: MatMul inner dim mismatch %d vs %d", a.Cols, b.Rows))
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ra, rc := a.Row(i), c.Row(i)
		for k, av := range ra {
			if av == 0 {
				continue
			}
			rb := b.Row(k)
			for j := range rc {
				rc[j] += av * rb[j]
			}
		}
	}
	return c
}

// KhatriRao computes the column-wise Kronecker product K = B ⊙ C of a
// J x R and a K x R matrix, producing a (J*K) x R matrix where row
// (j*K + k) is the Hadamard product of B's row j and C's row k.
//
// This is the explicit product the paper describes in Sec. III-B; real
// MTTKRP kernels never materialise it, so this implementation exists as
// the test oracle for every kernel in internal/core.
func KhatriRao(b, c *Matrix) *Matrix {
	if b.Cols != c.Cols {
		panic(fmt.Sprintf("la: KhatriRao rank mismatch %d vs %d", b.Cols, c.Cols))
	}
	r := b.Cols
	k := NewMatrix(b.Rows*c.Rows, r)
	for j := 0; j < b.Rows; j++ {
		rb := b.Row(j)
		for kk := 0; kk < c.Rows; kk++ {
			rc := c.Row(kk)
			out := k.Row(j*c.Rows + kk)
			for q := 0; q < r; q++ {
				out[q] = rb[q] * rc[q]
			}
		}
	}
	return k
}

// CholeskyDecompose factors the SPD matrix a = L·Lᵀ in place on a copy
// and returns the lower-triangular factor L (entries above the diagonal
// are zero). Returns ErrNotSPD when a pivot is not strictly positive.
func CholeskyDecompose(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("la: Cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := a.Clone()
	for j := 0; j < n; j++ {
		d := l.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := l.At(i, j)
			li, lj := l.Row(i), l.Row(j)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			l.Set(i, j, s*inv)
		}
	}
	// Zero the strictly-upper triangle so L is a clean factor.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			l.Set(i, j, 0)
		}
	}
	return l, nil
}

// SolveSPD solves X·A = B for X, where A is R x R symmetric positive
// definite and B is M x R; the solution overwrites B. This is the
// factor-matrix update of CP-ALS: Anew = MTTKRP · (V)⁻¹ with V the
// Hadamard product of Gram matrices. A ridge term eps*I is added when
// the plain factorisation fails, which keeps ALS running on rank
// deficient iterates.
func SolveSPD(a, b *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("la: SolveSPD needs square A, got %dx%d", a.Rows, a.Cols)
	}
	if b.Cols != a.Rows {
		return fmt.Errorf("la: SolveSPD dim mismatch: B is %dx%d, A is %dx%d",
			b.Rows, b.Cols, a.Rows, a.Cols)
	}
	l, err := CholeskyDecompose(a)
	if err != nil {
		// Ridge fallback: scale with the diagonal magnitude.
		var trace float64
		for i := 0; i < a.Rows; i++ {
			trace += math.Abs(a.At(i, i))
		}
		eps := 1e-12*trace + 1e-300
		for attempt := 0; attempt < 40 && err != nil; attempt++ {
			reg := a.Clone()
			for i := 0; i < reg.Rows; i++ {
				reg.Set(i, i, reg.At(i, i)+eps)
			}
			l, err = CholeskyDecompose(reg)
			eps *= 10
		}
		if err != nil {
			return err
		}
	}
	// Solve x·L·Lᵀ = b row by row: first y·Lᵀ = b (forward in the
	// transposed sense), then x·L = y.
	n := a.Rows
	for i := 0; i < b.Rows; i++ {
		row := b.Row(i)
		// y = row · L⁻ᵀ  (forward substitution on Lᵀ from the left is
		// forward substitution on columns of L): y[j] = (row[j] - Σ_{k<j} y[k]·L[j][k]) / L[j][j]
		for j := 0; j < n; j++ {
			s := row[j]
			lj := l.Row(j)
			for k := 0; k < j; k++ {
				s -= row[k] * lj[k]
			}
			row[j] = s / lj[j]
		}
		// x = y · L⁻¹: x[j] = (y[j] - Σ_{k>j} x[k]·L[k][j]) / L[j][j]
		for j := n - 1; j >= 0; j-- {
			s := row[j]
			for k := j + 1; k < n; k++ {
				s -= row[k] * l.At(k, j)
			}
			row[j] = s / l.At(j, j)
		}
	}
	return nil
}

// ColumnNorms returns the Euclidean norm of each column of a.
func ColumnNorms(a *Matrix) []float64 {
	norms := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		r := a.Row(i)
		for j := range r {
			norms[j] += r[j] * r[j]
		}
	}
	for j := range norms {
		norms[j] = math.Sqrt(norms[j])
	}
	return norms
}

// NormalizeColumns scales each column of a to unit norm and returns the
// original norms (zero-norm columns are left untouched and report 0).
func NormalizeColumns(a *Matrix) []float64 {
	norms := ColumnNorms(a)
	for i := 0; i < a.Rows; i++ {
		r := a.Row(i)
		for j := range r {
			if norms[j] > 0 {
				r[j] /= norms[j]
			}
		}
	}
	return norms
}

// Dot returns the Frobenius inner product Σ a[i][j]*b[i][j].
func Dot(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("la: Dot shape mismatch")
	}
	var s float64
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			s += ra[j] * rb[j]
		}
	}
	return s
}
