package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewMatrixShape(t *testing.T) {
	m := NewMatrix(3, 5)
	if m.Rows != 3 || m.Cols != 5 || m.Stride != 5 {
		t.Fatalf("unexpected shape: %+v", m)
	}
	if len(m.Data) != 15 {
		t.Fatalf("data length = %d, want 15", len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("new matrix not zeroed")
		}
	}
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dims")
		}
	}()
	NewMatrix(-1, 2)
}

func TestAtSetRow(t *testing.T) {
	m := NewMatrix(4, 3)
	m.Set(2, 1, 7.5)
	if got := m.At(2, 1); got != 7.5 {
		t.Fatalf("At(2,1) = %v, want 7.5", got)
	}
	row := m.Row(2)
	if row[1] != 7.5 {
		t.Fatalf("Row(2)[1] = %v, want 7.5", row[1])
	}
	row[0] = 3 // row must alias storage
	if m.At(2, 0) != 3 {
		t.Fatal("Row does not alias matrix storage")
	}
}

func TestZeroWithStride(t *testing.T) {
	m := NewMatrix(4, 8)
	for i := range m.Data {
		m.Data[i] = 1
	}
	v := m.ColumnView(2, 6)
	v.Zero()
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			want := 1.0
			if j >= 2 && j < 6 {
				want = 0
			}
			if m.At(i, j) != want {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestColumnViewAliasesParent(t *testing.T) {
	m := NewMatrix(3, 6)
	v := m.ColumnView(2, 5)
	if v.Rows != 3 || v.Cols != 3 || v.Stride != 6 {
		t.Fatalf("view shape wrong: %+v", v)
	}
	v.Set(2, 2, 42)
	if m.At(2, 4) != 42 {
		t.Fatalf("view write did not reach parent: %v", m.At(2, 4))
	}
	m.Set(0, 2, 9)
	if v.At(0, 0) != 9 {
		t.Fatalf("parent write did not reach view: %v", v.At(0, 0))
	}
}

func TestColumnViewBounds(t *testing.T) {
	m := NewMatrix(2, 4)
	for _, bad := range [][2]int{{-1, 2}, {0, 5}, {3, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ColumnView(%d,%d) should panic", bad[0], bad[1])
				}
			}()
			m.ColumnView(bad[0], bad[1])
		}()
	}
	// Full-width and empty views are legal.
	if v := m.ColumnView(0, 4); v.Cols != 4 {
		t.Fatal("full view broken")
	}
	if v := m.ColumnView(4, 4); v.Cols != 0 {
		t.Fatal("empty view broken")
	}
}

func TestCloneIsDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(rng, 5, 7)
	c := m.Clone()
	if !m.Equal(c, 0) {
		t.Fatal("clone differs from original")
	}
	c.Set(0, 0, c.At(0, 0)+1)
	if m.At(0, 0) == c.At(0, 0) {
		t.Fatal("clone shares storage with original")
	}
}

func TestCloneOfView(t *testing.T) {
	m := NewMatrix(3, 6)
	m.FillFunc(func(i, j int) float64 { return float64(10*i + j) })
	c := m.ColumnView(1, 4).Clone()
	if c.Stride != c.Cols {
		t.Fatalf("clone should be compact, stride=%d cols=%d", c.Stride, c.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if c.At(i, j) != float64(10*i+j+1) {
				t.Fatalf("clone(%d,%d) = %v", i, j, c.At(i, j))
			}
		}
	}
}

func TestCopyFromMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2, 2).CopyFrom(NewMatrix(2, 3))
}

func TestEqualAndMaxAbsDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 4, 4)
	b := a.Clone()
	b.Set(3, 3, b.At(3, 3)+1e-3)
	if a.Equal(b, 1e-6) {
		t.Fatal("Equal too lax")
	}
	if !a.Equal(b, 1e-2) {
		t.Fatal("Equal too strict")
	}
	if d := a.MaxAbsDiff(b); math.Abs(d-1e-3) > 1e-12 {
		t.Fatalf("MaxAbsDiff = %v, want 1e-3", d)
	}
	if a.Equal(NewMatrix(4, 5), 1) {
		t.Fatal("Equal must reject shape mismatch")
	}
}

func TestScaleAndAddScaled(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 3, 3)
	b := a.Clone()
	a.Scale(2)
	a.AddScaled(-2, b)
	if a.FrobeniusNorm() > 1e-12 {
		t.Fatalf("2a - 2a != 0, norm=%v", a.FrobeniusNorm())
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 3)
	m.Set(1, 1, 4)
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-14 {
		t.Fatalf("norm = %v, want 5", got)
	}
}

func TestStringFormats(t *testing.T) {
	small := NewMatrix(2, 2)
	if s := small.String(); len(s) == 0 {
		t.Fatal("empty String for small matrix")
	}
	big := NewMatrix(100, 100)
	if s := big.String(); s != "la.Matrix{100x100}" {
		t.Fatalf("big matrix String = %q", s)
	}
}

// Property: Clone followed by any single-element mutation never affects
// the original (deep-copy invariant), for arbitrary shapes.
func TestQuickCloneIndependence(t *testing.T) {
	f := func(rows, cols uint8, seed int64) bool {
		r, c := int(rows%16)+1, int(cols%16)+1
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, r, c)
		before := m.Clone()
		cl := m.Clone()
		for i := range cl.Data {
			cl.Data[i] += 1
		}
		return m.Equal(before, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a ColumnView of a ColumnView equals a direct ColumnView
// with composed offsets.
func TestQuickNestedColumnViews(t *testing.T) {
	f := func(seed int64, aLo, aW, bLo, bW uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, 5, 12)
		lo1 := int(aLo) % 6
		hi1 := lo1 + int(aW)%(12-lo1+1)
		v1 := m.ColumnView(lo1, hi1)
		if v1.Cols == 0 {
			return true
		}
		lo2 := int(bLo) % v1.Cols
		hi2 := lo2 + int(bW)%(v1.Cols-lo2+1)
		v2 := v1.ColumnView(lo2, hi2)
		direct := m.ColumnView(lo1+lo2, lo1+hi2)
		return v2.Equal(direct, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
