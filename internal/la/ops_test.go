package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMatMul is an index-by-index reference used to validate the
// slightly restructured production loops.
func naiveMatMul(a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func TestGramMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, shape := range [][2]int{{1, 1}, {5, 3}, {8, 8}, {20, 4}, {3, 9}} {
		a := randMatrix(rng, shape[0], shape[1])
		got := Gram(a)
		// Aᵀ·A via naive matmul on an explicit transpose.
		at := NewMatrix(a.Cols, a.Rows)
		at.FillFunc(func(i, j int) float64 { return a.At(j, i) })
		want := naiveMatMul(at, a)
		if d := got.MaxAbsDiff(want); d > 1e-10 {
			t.Fatalf("shape %v: Gram differs from naive by %v", shape, d)
		}
	}
}

func TestGramIsSymmetric(t *testing.T) {
	f := func(seed int64, rows, cols uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMatrix(rng, int(rows%20)+1, int(cols%10)+1)
		g := Gram(a)
		for i := 0; i < g.Rows; i++ {
			for j := 0; j < g.Cols; j++ {
				if g.At(i, j) != g.At(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHadamard(t *testing.T) {
	a := NewMatrix(2, 2)
	b := NewMatrix(2, 2)
	a.FillFunc(func(i, j int) float64 { return float64(i + j + 1) })
	b.FillFunc(func(i, j int) float64 { return 2 })
	c := Hadamard(a, b)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != 2*float64(i+j+1) {
				t.Fatalf("(%d,%d) = %v", i, j, c.At(i, j))
			}
		}
	}
	// In-place variant must agree.
	a2 := a.Clone()
	HadamardInPlace(a2, b)
	if !a2.Equal(c, 0) {
		t.Fatal("HadamardInPlace differs from Hadamard")
	}
}

func TestHadamardShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Hadamard(NewMatrix(2, 2), NewMatrix(2, 3))
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range [][3]int{{1, 1, 1}, {3, 4, 5}, {7, 2, 7}, {10, 10, 1}} {
		a := randMatrix(rng, shape[0], shape[1])
		b := randMatrix(rng, shape[1], shape[2])
		if d := MatMul(a, b).MaxAbsDiff(naiveMatMul(a, b)); d > 1e-10 {
			t.Fatalf("shape %v: MatMul differs by %v", shape, d)
		}
	}
}

func TestKhatriRaoSmall(t *testing.T) {
	// Worked example: B is 2x2, C is 2x2; row (j*K+k) = B[j] .* C[k].
	b := NewMatrix(2, 2)
	c := NewMatrix(2, 2)
	b.FillFunc(func(i, j int) float64 { return float64(1 + i*2 + j) }) // [1 2; 3 4]
	c.FillFunc(func(i, j int) float64 { return float64(5 + i*2 + j) }) // [5 6; 7 8]
	k := KhatriRao(b, c)
	want := [][]float64{{5, 12}, {7, 16}, {15, 24}, {21, 32}}
	for i, row := range want {
		for j, v := range row {
			if k.At(i, j) != v {
				t.Fatalf("K(%d,%d) = %v, want %v", i, j, k.At(i, j), v)
			}
		}
	}
}

func TestKhatriRaoShape(t *testing.T) {
	k := KhatriRao(NewMatrix(3, 4), NewMatrix(5, 4))
	if k.Rows != 15 || k.Cols != 4 {
		t.Fatalf("shape = %dx%d, want 15x4", k.Rows, k.Cols)
	}
}

func spdMatrix(rng *rand.Rand, n int) *Matrix {
	// A = MᵀM + n·I is SPD with overwhelming probability.
	m := randMatrix(rng, n+3, n)
	a := Gram(m)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 2, 5, 16, 33} {
		a := spdMatrix(rng, n)
		l, err := CholeskyDecompose(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		lt := NewMatrix(n, n)
		lt.FillFunc(func(i, j int) float64 { return l.At(j, i) })
		if d := MatMul(l, lt).MaxAbsDiff(a); d > 1e-8*float64(n) {
			t.Fatalf("n=%d: L·Lᵀ differs from A by %v", n, d)
		}
		// Strictly upper part must be zero.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("L(%d,%d) = %v, want 0", i, j, l.At(i, j))
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	if _, err := CholeskyDecompose(a); err == nil {
		t.Fatal("expected ErrNotSPD for indefinite matrix")
	}
	if _, err := CholeskyDecompose(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestSolveSPDRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 3, 8, 16} {
		a := spdMatrix(rng, n)
		x := randMatrix(rng, 6, n)
		b := MatMul(x, a) // B = X·A
		if err := SolveSPD(a, b); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := b.MaxAbsDiff(x); d > 1e-8 {
			t.Fatalf("n=%d: solve error %v", n, d)
		}
	}
}

func TestSolveSPDSingularFallsBackToRidge(t *testing.T) {
	// A singular PSD matrix: rank-1.
	n := 4
	a := NewMatrix(n, n)
	a.FillFunc(func(i, j int) float64 { return 1 })
	b := NewMatrix(2, n)
	b.FillFunc(func(i, j int) float64 { return 1 })
	if err := SolveSPD(a, b); err != nil {
		t.Fatalf("ridge fallback failed: %v", err)
	}
	for i := range b.Data {
		if math.IsNaN(b.Data[i]) || math.IsInf(b.Data[i], 0) {
			t.Fatal("ridge solve produced non-finite values")
		}
	}
}

func TestSolveSPDDimChecks(t *testing.T) {
	if err := SolveSPD(NewMatrix(2, 3), NewMatrix(2, 2)); err == nil {
		t.Fatal("expected error for non-square A")
	}
	if err := SolveSPD(spdMatrix(rand.New(rand.NewSource(1)), 3), NewMatrix(2, 2)); err == nil {
		t.Fatal("expected error for B/A dim mismatch")
	}
}

func TestColumnNormsAndNormalize(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 3)
	m.Set(1, 0, 4)
	m.Set(0, 1, 2)
	// column 2 is all zero
	norms := ColumnNorms(m)
	if math.Abs(norms[0]-5) > 1e-14 || math.Abs(norms[1]-2) > 1e-14 || norms[2] != 0 {
		t.Fatalf("norms = %v", norms)
	}
	got := NormalizeColumns(m)
	if math.Abs(got[0]-5) > 1e-14 {
		t.Fatalf("NormalizeColumns returned %v", got)
	}
	after := ColumnNorms(m)
	if math.Abs(after[0]-1) > 1e-14 || math.Abs(after[1]-1) > 1e-14 || after[2] != 0 {
		t.Fatalf("post-normalisation norms = %v", after)
	}
}

func TestDot(t *testing.T) {
	a := NewMatrix(2, 2)
	a.FillFunc(func(i, j int) float64 { return 1 })
	b := NewMatrix(2, 2)
	b.FillFunc(func(i, j int) float64 { return float64(i*2 + j) })
	if got := Dot(a, b); got != 6 {
		t.Fatalf("Dot = %v, want 6", got)
	}
}

// Property: KhatriRao dims and the defining identity
// K[j*Kc+k][r] == B[j][r]*C[k][r] hold for random shapes.
func TestQuickKhatriRaoDefinition(t *testing.T) {
	f := func(seed int64, jr, kr, rr uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		j, k, r := int(jr%6)+1, int(kr%6)+1, int(rr%5)+1
		b := randMatrix(rng, j, r)
		c := randMatrix(rng, k, r)
		kr2 := KhatriRao(b, c)
		if kr2.Rows != j*k || kr2.Cols != r {
			return false
		}
		for jj := 0; jj < j; jj++ {
			for kk := 0; kk < k; kk++ {
				for q := 0; q < r; q++ {
					if kr2.At(jj*k+kk, q) != b.At(jj, q)*c.At(kk, q) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: SolveSPD(A, X·A) recovers X for random SPD A.
func TestQuickSolveSPDInverse(t *testing.T) {
	f := func(seed int64, nn, mm uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := int(nn%8)+1, int(mm%6)+1
		a := spdMatrix(rng, n)
		x := randMatrix(rng, m, n)
		b := MatMul(x, a)
		if err := SolveSPD(a, b); err != nil {
			return false
		}
		return b.MaxAbsDiff(x) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
