package analysis

import (
	"strings"
	"testing"
)

// refParseDirective is a naive reference implementation of
// parseDirective: split the comment body at the first space or tab and
// compare the leading token against the directive name, instead of the
// production code's prefix-cut-then-inspect approach. The fuzz target
// below cross-checks the two, so any divergence — a directive name
// that prefix-matches another (hotpath vs a hypothetical hotpathfoo),
// odd whitespace, truncated comments — is found mechanically.
func refParseDirective(text, name string) (string, bool) {
	body, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		return "", false
	}
	tok, arg := body, ""
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		tok, arg = body[:i], strings.TrimSpace(body[i+1:])
	}
	if tok != name {
		return "", false
	}
	return arg, true
}

// directiveNames are the names parseDirective is ever called with.
var directiveNames = []string{
	DirectiveHotpath, DirectiveColdpath, DirectiveWorkspace, DirectiveAllow,
}

func FuzzParseDirectives(f *testing.F) {
	for _, text := range []string{
		"//spblock:hotpath",
		"//spblock:hotpathalloc",
		"//spblock:coldpath ",
		"//spblock:allow reason with words",
		"//spblock:allow\ttab separated",
		"//spblock:allow \t mixed",
		"//spblock:allow\nnewline",
		"//spblock:workspace trailing  ",
		"// spblock:hotpath",
		"//spblock:",
		"//spblock",
		"plain comment",
		"",
	} {
		for i := range directiveNames {
			f.Add(text, i)
		}
	}
	f.Fuzz(func(t *testing.T, text string, nameIdx int) {
		if nameIdx < 0 {
			nameIdx = -nameIdx
		}
		name := directiveNames[nameIdx%len(directiveNames)]
		arg, ok := parseDirective(text, name)
		refArg, refOK := refParseDirective(text, name)
		if ok != refOK || arg != refArg {
			t.Fatalf("parseDirective(%q, %q) = (%q, %v), reference = (%q, %v)",
				text, name, arg, ok, refArg, refOK)
		}
	})
}
