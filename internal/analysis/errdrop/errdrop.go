// Package errdrop enforces error flow out of the fault-tolerance APIs:
// every error-returning call into internal/mpi, internal/dist or
// internal/als must have its error checked or propagated. A dropped
// error there is not a style problem — the reliability protocol (PR 5)
// reports rank crashes, checksum corruption and retry exhaustion
// exclusively through returned errors, so discarding one silently
// converts a detected fault into a wrong answer.
//
// Three discard shapes are flagged, module-wide:
//
//   - a call statement whose results are all dropped
//     (c.Barrier() as a statement);
//
//   - a blank identifier at the error result position
//     (rows, _ := c.Recv(...); _ = c.Barrier());
//
//   - go and defer statements, whose return values Go itself discards
//     (go c.Barrier(), defer comm.Send(...)).
//
// A site that drops an error deliberately — a best-effort drain on a
// teardown path, say — is waived with a reasoned //spblock:allow
// comment, which the shared driver applies; the reason is mandatory.
package errdrop

import (
	"fmt"
	"go/ast"
	"go/types"

	"spblock/internal/analysis"
)

// Analyzer is the errdrop pass.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "forbid dropping errors returned by internal/mpi, internal/dist and internal/als fault-tolerance APIs",
	Run:  run,
}

// targetPkgs are the fault-tolerance packages whose returned errors
// carry the reliability protocol.
var targetPkgs = map[string]bool{
	"spblock/internal/mpi":  true,
	"spblock/internal/dist": true,
	"spblock/internal/als":  true,
}

var errorType = types.Universe.Lookup("error").Type()

func run(prog *analysis.Program) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	report := func(call *ast.CallExpr, fn *types.Func, how string) {
		diags = append(diags, analysis.Diagnostic{
			Pos: call.Pos(),
			Message: fmt.Sprintf(
				"error from %s %s; check it, propagate it, or waive with //spblock:allow <reason>",
				analysis.FuncDisplayName(fn), how),
		})
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			info := pkg.Info
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						if fn := targetCall(info, call); fn != nil {
							report(call, fn, "discarded by call statement")
						}
					}
				case *ast.GoStmt:
					if fn := targetCall(info, n.Call); fn != nil {
						report(n.Call, fn, "dropped by go statement")
					}
				case *ast.DeferStmt:
					if fn := targetCall(info, n.Call); fn != nil {
						report(n.Call, fn, "dropped by defer")
					}
				case *ast.AssignStmt:
					checkAssign(info, n, report)
				}
				return true
			})
		}
	}
	return diags, nil
}

// checkAssign flags blank identifiers bound to the error results of
// target calls, in both the tuple form (rows, _ := c.Recv(...)) and the
// 1:1 form (_ = c.Barrier()).
func checkAssign(info *types.Info, assign *ast.AssignStmt, report func(*ast.CallExpr, *types.Func, string)) {
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fn := targetCall(info, call)
		if fn == nil {
			return
		}
		sig := fn.Type().(*types.Signature)
		for i := 0; i < sig.Results().Len() && i < len(assign.Lhs); i++ {
			if !isError(sig.Results().At(i).Type()) {
				continue
			}
			if isBlank(assign.Lhs[i]) {
				report(call, fn, "discarded with _")
			}
		}
		return
	}
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBlank(assign.Lhs[i]) {
			continue
		}
		if fn := targetCall(info, call); fn != nil {
			report(call, fn, "discarded with _")
		}
	}
}

// targetCall resolves call to its static callee and returns it when the
// callee is declared in a fault-tolerance package (including interface
// methods such as als.Kernel.MTTKRP) and returns an error.
func targetCall(info *types.Info, call *ast.CallExpr) *types.Func {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || !targetPkgs[fn.Pkg().Path()] {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isError(sig.Results().At(i).Type()) {
			return fn
		}
	}
	return nil
}

func isError(t types.Type) bool { return types.Identical(t, errorType) }

func isBlank(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == "_"
}
