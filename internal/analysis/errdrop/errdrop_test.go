package errdrop_test

import (
	"testing"

	"spblock/internal/analysis/analysistest"
	"spblock/internal/analysis/errdrop"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "spblock/internal/analysis/testdata/src/errdrop",
		errdrop.Analyzer)
}
