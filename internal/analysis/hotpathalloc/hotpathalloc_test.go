package hotpathalloc_test

import (
	"testing"

	"spblock/internal/analysis/analysistest"
	"spblock/internal/analysis/hotpathalloc"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "spblock/internal/analysis/testdata/src/hotpathalloc",
		hotpathalloc.Analyzer)
}
