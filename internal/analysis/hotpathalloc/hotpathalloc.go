// Package hotpathalloc enforces the zero-allocation contract on
// annotated hot paths: a function marked //spblock:hotpath — and every
// function it statically calls within the module — must not contain
// constructs that allocate or may allocate on the steady-state path.
//
// The paper's roofline model (Eq. 1/3) says MTTKRP is bound by memory
// traffic per nonzero; PR 1/2 made every kernel steady-state 0 B/op
// with pooled workspaces, but that contract was only guarded by
// AllocsPerRun tests that are skipped under -race. This analyzer moves
// the guard to compile time: a stray append, closure or interface
// boxing in a kernel fails the build instead of silently re-adding
// per-call memory traffic.
//
// Flagged constructs: make/new/append calls, map writes, function
// literals (closure allocation), slice and map composite literals,
// address-of composite literals, method-value bindings, string
// concatenation, string<->[]byte/[]rune conversions, and conversions of
// concrete values to interface types (including implicit boxing at call
// sites, assignments and returns).
//
// Amortised or error-path callees are excluded by marking them
// //spblock:coldpath; individual lines (e.g. fmt.Errorf on an error
// branch of a hot function) are suppressed with a reasoned
// //spblock:allow comment.
package hotpathalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"spblock/internal/analysis"
)

// Analyzer is the hotpathalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocating constructs in //spblock:hotpath functions and their module-local callees",
	Run:  run,
}

func run(prog *analysis.Program) ([]analysis.Diagnostic, error) {
	// Roots and the coldpath exclusions come from the program's shared
	// directive index; the traversal follows its static call graph.
	for _, fn := range prog.HotFuncs() {
		if prog.IsCold(fn) {
			return nil, fmt.Errorf("%s: %s is both hotpath and coldpath",
				prog.Position(prog.DeclPos(fn)), fn.FullName())
		}
	}

	var diags []analysis.Diagnostic
	// via[fn] names the hot root whose traversal first reached fn, for
	// diagnostic context.
	via := make(map[*types.Func]string)
	queue := make([]*types.Func, 0, 64)
	for _, fn := range prog.HotFuncs() {
		if _, seen := via[fn]; seen {
			continue
		}
		via[fn] = shortName(fn)
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		src := prog.FuncSource(fn)
		if src == nil {
			continue // external or bodiless; contract stops at the module edge
		}
		c := &checker{prog: prog, pkg: src.Pkg, fn: fn, root: via[fn]}
		diags = append(diags, c.check(src.Decl.Body)...)
		for _, callee := range prog.Callees(fn) {
			if prog.IsCold(callee) {
				continue
			}
			if _, seen := via[callee]; seen {
				continue
			}
			via[callee] = via[fn]
			queue = append(queue, callee)
		}
	}
	return diags, nil
}

// shortName renders pkg.Func or pkg.(Recv).Method without the full
// import path, for readable diagnostics.
func shortName(fn *types.Func) string { return analysis.FuncDisplayName(fn) }

// checker scans one reached function body.
type checker struct {
	prog       *analysis.Program
	pkg        *analysis.Package
	fn         *types.Func
	root       string
	calledFuns map[ast.Expr]bool
	diags      []analysis.Diagnostic
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	c.diags = append(c.diags, analysis.Diagnostic{
		Pos: pos,
		Message: fmt.Sprintf("%s in hot path %s (via //spblock:hotpath %s)",
			msg, shortName(c.fn), c.root),
	})
}

func (c *checker) check(body *ast.BlockStmt) []analysis.Diagnostic {
	c.calledFuns = make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// The literal itself allocates a closure; its body runs on
			// the same hot path but is not descended into — one finding
			// per construct is enough.
			c.report(n.Pos(), "function literal (closure allocation)")
			return false
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.CompositeLit:
			c.checkCompositeLit(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.report(cl.Pos(), "address of composite literal (heap allocation)")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(c.pkg.Info.Types[n].Type) {
				c.report(n.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.IncDecStmt:
			if c.isMapIndex(n.X) {
				c.report(n.Pos(), "map write")
			}
		case *ast.ReturnStmt:
			c.checkReturn(n)
		case *ast.SelectorExpr:
			c.checkMethodValue(n)
		}
		return true
	})
	return c.diags
}

func (c *checker) checkCall(call *ast.CallExpr) {
	info := c.pkg.Info
	fun := ast.Unparen(call.Fun)
	c.calledFuns[fun] = true

	// Conversions.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}
	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				c.report(call.Pos(), b.Name()+" allocates")
			}
			return
		}
	}
	// Static callees continue the traversal through the program's
	// shared call graph (prog.Callees); nothing to collect here.
	// Implicit interface boxing of concrete arguments.
	sig, ok := info.Types[call.Fun].Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			param = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		c.checkBoxing(arg, param)
	}
}

// checkConversion flags conversions that copy (string <-> byte/rune
// slices) or box (concrete -> interface).
func (c *checker) checkConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := c.pkg.Info.Types[call.Args[0]].Type
	if from == nil {
		return
	}
	switch {
	case isString(to) && isByteOrRuneSlice(from),
		isByteOrRuneSlice(to) && isString(from):
		c.report(call.Pos(), "string conversion copies")
	case types.IsInterface(to) && !types.IsInterface(from):
		c.report(call.Pos(), "interface conversion boxes")
	}
}

// checkBoxing flags a concrete value supplied where an interface is
// expected.
func (c *checker) checkBoxing(expr ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := c.pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() || types.IsInterface(tv.Type) {
		return
	}
	c.report(expr.Pos(), "interface conversion boxes concrete value")
}

func (c *checker) checkCompositeLit(lit *ast.CompositeLit) {
	t := c.pkg.Info.Types[lit].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.report(lit.Pos(), "slice literal allocates")
	case *types.Map:
		c.report(lit.Pos(), "map literal allocates")
	}
}

func (c *checker) checkAssign(assign *ast.AssignStmt) {
	for _, lhs := range assign.Lhs {
		if c.isMapIndex(lhs) {
			c.report(lhs.Pos(), "map write")
		}
	}
	// Boxing via assignment to interface-typed destinations. Parallel
	// assignment pairs positionally except for the 2-from-1 forms,
	// which cannot assign interfaces from concrete values implicitly in
	// hot code we care about, so only the 1:1 shape is checked.
	if len(assign.Lhs) == len(assign.Rhs) {
		for i, lhs := range assign.Lhs {
			lt := c.pkg.Info.Types[lhs].Type
			c.checkBoxing(assign.Rhs[i], lt)
		}
	}
}

func (c *checker) checkReturn(ret *ast.ReturnStmt) {
	sig := c.fn.Type().(*types.Signature)
	if sig.Results().Len() != len(ret.Results) {
		return // bare return or 1:n form
	}
	for i, res := range ret.Results {
		c.checkBoxing(res, sig.Results().At(i).Type())
	}
}

// checkMethodValue flags method-value bindings (x.M used as a value
// rather than called), which allocate a bound-method closure. ast.Inspect
// visits a CallExpr before its Fun, so checkCall has already recorded
// called selectors by the time this runs.
func (c *checker) checkMethodValue(sel *ast.SelectorExpr) {
	if c.calledFuns[sel] {
		return
	}
	s, ok := c.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	c.report(sel.Pos(), "method value binding allocates")
}

// isMapIndex reports whether expr is an index into a map.
func (c *checker) isMapIndex(expr ast.Expr) bool {
	idx, ok := ast.Unparen(expr).(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := c.pkg.Info.Types[idx.X].Type
	if t == nil {
		return false
	}
	_, ok = t.Underlying().(*types.Map)
	return ok
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
