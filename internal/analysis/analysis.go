// Package analysis is the spblock static-analysis framework: a small,
// dependency-free reimplementation of the go/analysis driver shape
// (golang.org/x/tools is deliberately not vendored) plus the annotation
// conventions the spblock analyzers enforce.
//
// The framework loads whole programs (see load.go), hands each analyzer
// a *Program with full type information and program-wide object
// identity, and applies the shared `//spblock:allow` suppression pass
// to every diagnostic. The three production analyzers live in the
// hotpathalloc, workspaceescape and kernelpar subpackages and are wired
// together by cmd/spblock-lint.
//
// # Annotations
//
// Annotations are machine-readable comment directives placed directly
// above a declaration (no blank line in between), in the style of
// //go:noinline:
//
//	//spblock:hotpath
//	    Marks a function as a steady-state hot path. The function and
//	    everything it statically calls within the module must not
//	    contain allocating constructs (enforced by hotpathalloc).
//
//	//spblock:coldpath
//	    Marks a function as excluded from the hot-path contract even
//	    when it is called from a hot function: amortised resizing
//	    (Executor.ensure), operand validation that allocates only on
//	    the error path, and debug-build validators. hotpathalloc stops
//	    its call-graph traversal at coldpath functions.
//
//	//spblock:workspace
//	    Marks a type as pooled-workspace storage. Values reached
//	    through a workspace must not escape the owning executor
//	    (enforced by workspaceescape).
//
//	//spblock:allow <reason>
//	    Trailing same-line comment that suppresses every diagnostic
//	    reported on that line. The reason is mandatory; a bare allow is
//	    itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Directive names understood by the suite.
const (
	DirectiveHotpath   = "hotpath"
	DirectiveColdpath  = "coldpath"
	DirectiveWorkspace = "workspace"
	DirectiveAllow     = "allow"
)

const directivePrefix = "//spblock:"

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Analyzer is one whole-program check. Run receives the loaded program
// and returns raw diagnostics; the driver applies suppression and
// attribution.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Program) ([]Diagnostic, error)
}

// Package is one type-checked module package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// FuncSource locates the syntax of a function whose body the program
// contains.
type FuncSource struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// Program is a load result: every package of the enclosing module that
// the requested patterns (transitively) reach, type-checked from source
// against one shared FileSet, so *types.Func identity holds across
// package boundaries.
type Program struct {
	Fset *token.FileSet
	// Packages holds all module-local packages in dependency order.
	Packages []*Package
	// Roots holds the pattern-matched packages (a subset of Packages).
	Roots []*Package

	byPath map[string]*Package
	funcs  map[*types.Func]*FuncSource
	// graph is the program-wide call graph and directive index (see
	// callgraph.go), built once after type checking.
	graph *callGraph
	// allows maps "file:line" to the allow-comment reason ("" = bare).
	allows map[string]string
	// bareAllows collects positions of reason-less allow comments.
	bareAllows []token.Pos
}

// Package returns the module package with the given import path, or nil.
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// FuncSource returns the declaration of fn if its body is part of the
// program, or nil for external (std-lib or bodiless) functions.
func (p *Program) FuncSource(fn *types.Func) *FuncSource { return p.funcs[fn] }

// Position resolves a token position against the program's FileSet.
func (p *Program) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// index builds the program-wide function and suppression indexes; the
// loader calls it once after type checking.
func (p *Program) index() {
	p.funcs = make(map[*types.Func]*FuncSource)
	p.allows = make(map[string]string)
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.funcs[fn] = &FuncSource{Pkg: pkg, Decl: fd}
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					arg, ok := parseDirective(c.Text, DirectiveAllow)
					if !ok {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					if strings.TrimSpace(arg) == "" {
						p.bareAllows = append(p.bareAllows, c.Pos())
						continue
					}
					p.allows[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = arg
				}
			}
		}
	}
	p.buildCallGraph()
}

// allowed reports whether a diagnostic at pos is suppressed by a
// reasoned //spblock:allow comment on the same line.
func (p *Program) allowed(pos token.Pos) bool {
	tp := p.Fset.Position(pos)
	_, ok := p.allows[fmt.Sprintf("%s:%d", tp.Filename, tp.Line)]
	return ok
}

// parseDirective matches "//spblock:<name>" optionally followed by
// whitespace and an argument; it returns the argument text.
func parseDirective(text, name string) (string, bool) {
	rest, ok := strings.CutPrefix(text, directivePrefix+name)
	if !ok {
		return "", false
	}
	if rest == "" {
		return "", true
	}
	if rest[0] != ' ' && rest[0] != '\t' {
		return "", false // a longer directive name, e.g. hotpathfoo
	}
	return strings.TrimSpace(rest), true
}

// HasDirective reports whether the doc comment carries the directive.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if _, ok := parseDirective(c.Text, name); ok {
			return true
		}
	}
	return false
}

// Callee resolves a statically-dispatched call to its *types.Func:
// direct calls of named functions and methods. It returns nil for
// builtins, conversions, and calls through function values or
// interfaces.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return nil // conversion
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[f.Sel] // package-qualified function
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// Run executes the analyzers over the program, attributes and filters
// the diagnostics (dropping suppressed lines, reporting bare allow
// comments), and returns them in position order.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, a := range analyzers {
		ds, err := a.Run(prog)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range ds {
			if d.Analyzer == "" {
				d.Analyzer = a.Name
			}
			if prog.allowed(d.Pos) {
				continue
			}
			all = append(all, d)
		}
	}
	for _, pos := range prog.bareAllows {
		all = append(all, Diagnostic{
			Pos:      pos,
			Message:  "//spblock:allow requires a reason",
			Analyzer: "spblock-lint",
		})
	}
	sort.SliceStable(all, func(i, j int) bool {
		pi, pj := prog.Position(all[i].Pos), prog.Position(all[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return all, nil
}
