// Package kernelpar enforces parallel-kernel hygiene on the worker
// machinery around the MTTKRP kernels: the prebuilt worker closures,
// the WaitGroup launch/join protocol, and the atomic block-layer work
// queue. Each check targets a bug class that the pooled-workspace
// refactors of PR 1/2 made easy to reintroduce:
//
//   - Loop-variable capture: a goroutine launched with `go func(){...}()`
//     must not reference an enclosing for/range loop variable directly;
//     it must take the value as a parameter or use an explicit `v := v`
//     rebinding. (Go 1.22 made direct capture memory-safe, but the
//     worker-share pattern here indexes shared state by worker id —
//     an implicit per-iteration binding hides that dependency and
//     regresses silently when a closure is hoisted into a pool.)
//
//   - WaitGroup pairing: `wg.Done()` inside a go-launched closure must
//     be deferred (a panic between Done and return deadlocks Wait);
//     `wg.Add` must not be called inside a go-launched closure (it
//     races with the corresponding Wait); `wg.Add` with a negative
//     constant is always a bug.
//
// The atomic/plain field-mixing check this package used to carry moved
// to the program-wide atomicfield analyzer, which tracks field identity
// across package boundaries instead of per package; kernelpar keeps the
// goroutine-shape checks only so the same site is never double-reported.
package kernelpar

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"spblock/internal/analysis"
)

// Analyzer is the kernelpar pass.
var Analyzer = &analysis.Analyzer{
	Name: "kernelpar",
	Doc:  "parallel-kernel hygiene: loop-var capture in goroutines, WaitGroup pairing",
	Run:  run,
}

func run(prog *analysis.Program) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, pkg := range prog.Packages {
		c := &checker{prog: prog, pkg: pkg}
		c.checkPackage()
		diags = append(diags, c.diags...)
	}
	return diags, nil
}

type checker struct {
	prog  *analysis.Program
	pkg   *analysis.Package
	diags []analysis.Diagnostic
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	c.diags = append(c.diags, analysis.Diagnostic{
		Pos:     pos,
		Message: fmt.Sprintf(format, args...),
	})
}

func (c *checker) checkPackage() {
	for _, file := range c.pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkGoroutines(fd.Body)
		}
	}
}

// checkGoroutines walks a function body tracking the loop variables in
// scope at each go statement.
func (c *checker) checkGoroutines(body *ast.BlockStmt) {
	info := c.pkg.Info

	// loopVars maps loop-variable objects to the loop position, for the
	// stack of enclosing loops. A recursive walk keeps scope exact.
	loopVars := make(map[types.Object]token.Pos)

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			added := c.declaredVars(n.Init)
			for _, obj := range added {
				loopVars[obj] = n.Pos()
			}
			walkChildren(n, walk)
			for _, obj := range added {
				delete(loopVars, obj)
			}
			return
		case *ast.RangeStmt:
			var added []types.Object
			if n.Tok == token.DEFINE {
				for _, expr := range []ast.Expr{n.Key, n.Value} {
					if id, ok := expr.(*ast.Ident); ok && id.Name != "_" {
						if obj := info.Defs[id]; obj != nil {
							added = append(added, obj)
						}
					}
				}
			}
			for _, obj := range added {
				loopVars[obj] = n.Pos()
			}
			walkChildren(n, walk)
			for _, obj := range added {
				delete(loopVars, obj)
			}
			return
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				c.checkGoClosure(lit, loopVars)
			}
			// Arguments are evaluated in the launching goroutine; walk
			// them (and the closure body for nested go statements).
			walkChildren(n, walk)
			return
		}
		walkChildren(n, walk)
	}
	walk(body)
}

// declaredVars extracts the objects declared by a for-init statement.
func (c *checker) declaredVars(stmt ast.Stmt) []types.Object {
	assign, ok := stmt.(*ast.AssignStmt)
	if !ok || assign.Tok != token.DEFINE {
		return nil
	}
	var objs []types.Object
	for _, lhs := range assign.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			if obj := c.pkg.Info.Defs[id]; obj != nil {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}

// checkGoClosure inspects one go-launched function literal for loop-var
// capture and WaitGroup misuse.
func (c *checker) checkGoClosure(lit *ast.FuncLit, loopVars map[types.Object]token.Pos) {
	info := c.pkg.Info
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil {
				if _, isLoop := loopVars[obj]; isLoop {
					c.report(n.Pos(),
						"goroutine captures loop variable %s; pass it as a parameter or rebind it (%s := %s)",
						obj.Name(), obj.Name(), obj.Name())
				}
			}
		case *ast.CallExpr:
			switch wgMethod(info, n) {
			case "Add":
				if isNegativeConst(info, n) {
					// Add(-n) inside a goroutine is the Done idiom; it
					// still belongs in a defer, but the dedicated
					// negative-Add check below reports it.
					c.report(n.Pos(), "WaitGroup.Add with negative value; use Done")
				} else {
					c.report(n.Pos(), "WaitGroup.Add inside goroutine races with Wait; Add before launching")
				}
			case "Done":
				if !inDefer(lit.Body, n) {
					c.report(n.Pos(), "WaitGroup.Done in goroutine must be deferred (a panic before it deadlocks Wait)")
				}
			}
		}
		return true
	})
}

// wgMethod returns "Add"/"Done"/"Wait" when call is that method on a
// sync.WaitGroup, else "".
func wgMethod(info *types.Info, call *ast.CallExpr) string {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); !ok || named.Obj().Name() != "WaitGroup" {
		return ""
	}
	return fn.Name()
}

// isNegativeConst reports whether the call's first argument is a
// negative constant.
func isNegativeConst(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v < 0
}

// inDefer reports whether node n is (part of) a deferred call within
// body.
func inDefer(body *ast.BlockStmt, n ast.Node) bool {
	found := false
	ast.Inspect(body, func(m ast.Node) bool {
		if found {
			return false
		}
		if d, ok := m.(*ast.DeferStmt); ok {
			ast.Inspect(d.Call, func(k ast.Node) bool {
				if k == n {
					found = true
				}
				return !found
			})
			// Also treat calls inside a deferred closure as deferred.
			if !found {
				if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
					ast.Inspect(lit, func(k ast.Node) bool {
						if k == n {
							found = true
						}
						return !found
					})
				}
			}
			return !found
		}
		return !found
	})
	return found
}

// walkChildren visits the direct children of n with walk.
func walkChildren(n ast.Node, walk func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == n {
			return true
		}
		if m != nil {
			walk(m)
		}
		return false
	})
}
