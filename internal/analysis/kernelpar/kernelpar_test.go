package kernelpar_test

import (
	"testing"

	"spblock/internal/analysis/analysistest"
	"spblock/internal/analysis/kernelpar"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "spblock/internal/analysis/testdata/src/kernelpar",
		kernelpar.Analyzer)
}
