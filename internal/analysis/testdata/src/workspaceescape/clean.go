// Package wsgold is the workspaceescape golden package: this file must
// stay diagnostic-free, dirty.go seeds one violation per escape route
// the analyzer knows.
package wsgold

// pool is the pooled per-executor scratch state.
//
//spblock:workspace
type pool struct {
	buf []float64
	tmp []float64
}

// engine owns a pool, so pool-derived values may live in its fields.
type engine struct {
	ws  pool
	cur []float64
}

// foreign has no pool field: storing pool memory here is an escape.
type foreign struct {
	data []float64
}

// run uses pool memory locally and stashes it in the owner — both the
// intended use.
func (e *engine) run(xs []float64) float64 {
	b := e.ws.buf
	var s float64
	for i, v := range xs {
		b[i] = v
		s += b[i]
	}
	e.cur = b // fields of the owning type are inside the ownership boundary
	return s
}

// reset is a method on the workspace type itself; internal plumbing is
// exempt.
func (p *pool) reset() {
	for i := range p.buf {
		p.buf[i] = 0
	}
	p.tmp = p.buf[:0]
}
