package wsgold

var global []float64

// leak hands pool memory to the caller, which may retain it across the
// next Run and read torn data.
func (e *engine) leak() []float64 {
	return e.ws.buf // want `returned to caller`
}

// leakVar shows derivation tracking through a local.
func (e *engine) leakVar() []float64 {
	b := e.ws.tmp
	return b // want `returned to caller`
}

func (e *engine) send(ch chan []float64) {
	ch <- e.ws.tmp // want `sent on channel`
}

func (e *engine) publish() {
	global = e.ws.buf // want `stored in package-level variable global`
}

func (e *engine) stash(f *foreign) {
	f.data = e.ws.buf // want `stored in field data of non-owner type`
}

func (e *engine) scatter(dst [][]float64) {
	dst[0] = e.ws.buf // want `non-workspace container`
}
