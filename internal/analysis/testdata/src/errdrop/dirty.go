package edgold

import (
	"spblock/internal/als"
	"spblock/internal/la"
	"spblock/internal/mpi"
)

// Every shape of dropped fault-tolerance error, against the real APIs:
// the goldens import internal/mpi and internal/als themselves so the
// analyzer is proven against the signatures the module actually ships.

func dropStatement(c *mpi.Comm) {
	c.Barrier() // want `error from mpi.Comm.Barrier discarded by call statement`
}

func dropBlankTuple(c *mpi.Comm) []float64 {
	rows, _ := c.Recv(0, 1) // want `error from mpi.Comm.Recv discarded with _`
	return rows
}

func dropBlankSingle(c *mpi.Comm, data []float64) {
	_ = c.Send(1, 1, data) // want `error from mpi.Comm.Send discarded with _`
}

func dropGo(c *mpi.Comm) {
	go c.Barrier() // want `error from mpi.Comm.Barrier dropped by go statement`
}

func dropDefer(c *mpi.Comm) {
	defer c.Barrier() // want `error from mpi.Comm.Barrier dropped by defer`
}

func dropRun(body func(*mpi.Comm) error) {
	mpi.Run(2, mpi.CostModel{}, body) // want `error from mpi.Run discarded by call statement`
}

// dropKernel drops through an interface method: the callee resolves to
// als.Kernel.MTTKRP even though the dynamic kernel is unknown.
func dropKernel(k als.Kernel, factors []*la.Matrix, out *la.Matrix) {
	k.MTTKRP(0, factors, out) // want `error from als.Kernel.MTTKRP discarded by call statement`
}
