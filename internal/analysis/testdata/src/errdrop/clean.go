// Package edgold is the errdrop golden package: this file must stay
// diagnostic-free, dirty.go seeds the violations.
package edgold

import (
	"fmt"

	"spblock/internal/mpi"
)

// checked handles the error on the spot.
func checked(c *mpi.Comm) error {
	if err := c.Barrier(); err != nil {
		return fmt.Errorf("sync: %w", err)
	}
	return nil
}

// propagated returns the error directly.
func propagated(c *mpi.Comm, data []float64) error {
	return c.Send(1, 1, data)
}

// blankData discards the payload but keeps the error: only the error
// result position is guarded.
func blankData(c *mpi.Comm) error {
	_, err := c.Recv(0, 1)
	return err
}

// waived drops deliberately, with the mandatory reason.
func waived(c *mpi.Comm) {
	c.Barrier() //spblock:allow best-effort drain on a teardown path
}

// noError calls a fault-tolerance API with no error result; nothing to
// drop.
func noError(err error) int {
	return len(mpi.CrashedRanks(err))
}
