// Package hcgold is the hotcover golden package: this file must stay
// diagnostic-free, dirty.go seeds the violations.
package hcgold

// teardown ends the hot-path contract explicitly: coverage stops at a
// coldpath function, and the reference from Kernel keeps it live.
//
//spblock:coldpath
func teardown(s float64) {
	_ = s
}

// Scale is a hot root whose whole chain carries directives.
//
//spblock:hotpath
func Scale(xs []float64, a float64) {
	for i := range xs {
		xs[i] = scaledMul(xs[i], a)
	}
}

// scaledMul is annotated itself: covered, and live through Scale.
//
//spblock:hotpath
func scaledMul(x, a float64) float64 {
	return x * a
}

// table is the registry pattern: tableKernel is never statically
// called, but the package-level initializer reference keeps it (and
// its directive) live.
var table = [...]func(float64) float64{tableKernel}

//spblock:hotpath
func tableKernel(x float64) float64 {
	return x + 1
}

// Dispatch calls through a function value: no static call edge exists,
// but the identifier use of valueKernel is a liveness edge.
func Dispatch(x float64) float64 {
	f := valueKernel
	return f(x)
}

//spblock:hotpath
func valueKernel(x float64) float64 {
	return 2 * x
}

// plainDead is unreachable but carries no directive: dead code is the
// compiler's business, not directive drift.
func plainDead() {}
