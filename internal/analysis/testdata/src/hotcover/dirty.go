package hcgold

// Kernel is a hot root: helper and deep inherit the allocation
// contract through the static call chain but never say so — the drift
// hotcover exists to catch.
//
//spblock:hotpath
func Kernel(xs []float64) float64 {
	s := 0.0
	for i := range xs {
		s += helper(xs[i])
	}
	teardown(s)
	return s
}

func helper(x float64) float64 { // want `hcgold.helper is reachable from //spblock:hotpath hcgold.Kernel but carries no`
	return deep(x) * x
}

func deep(x float64) float64 { // want `hcgold.deep is reachable from //spblock:hotpath hcgold.Kernel but carries no`
	return x + 1
}

// orphanHot documents a hot loop nothing runs anymore: unexported,
// never called, never referenced.
//
//spblock:hotpath
func orphanHot(x int) int { // want `stale //spblock:hotpath directive: hcgold.orphanHot is not reachable`
	return x + 1
}

// orphanCold is the same drift on the cold side.
//
//spblock:coldpath
func orphanCold() { // want `stale //spblock:coldpath directive: hcgold.orphanCold is not reachable`
}
