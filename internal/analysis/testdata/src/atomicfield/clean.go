// Package afgold is the atomicfield golden package: this file must stay
// diagnostic-free, dirty.go seeds the violations.
package afgold

import "sync/atomic"

// typedQueue uses a typed atomic: the word is unexported, plain access
// cannot compile, and the analyzer deliberately ignores it.
type typedQueue struct {
	next atomic.Int64
}

func typedClaim(q *typedQueue) int64 {
	return q.next.Add(1) - 1
}

// seed is constructed through a composite literal: initialising flag
// before the value is shared is not a selector access and stays exempt,
// as does the package-level initializer reading it below.
var seed = gauge{flag: 1}

func construct() *gauge {
	return &gauge{flag: 0, hits: 0}
}

// resetCold runs with the workers quiescent; the coldpath directive
// makes the plain reset legal.
//
//spblock:coldpath
func resetCold(g *gauge) {
	g.flag = 0
	g.hits = 0
}

// init runs before any goroutine can observe the value.
func init() {
	seed.hits = 0
}

// atomicRead is the correct hot-path read: the operand of the atomic
// call is the atomic access itself, not a plain one.
func atomicRead(g *gauge) uint32 {
	return atomic.LoadUint32(&g.flag)
}

// waived carries a reasoned allow: the shared driver suppresses the
// finding on that line.
func waived(g *gauge) int64 {
	return g.hits //spblock:allow single-writer phase, workers joined
}
