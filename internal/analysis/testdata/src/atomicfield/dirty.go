package afgold

import "sync/atomic"

// gauge.flag is published with address-based sync/atomic calls, so
// every plain access of the field outside construction and coldpath
// functions is a race, module-wide.
type gauge struct {
	flag uint32
	hits int64
}

func (g *gauge) trip() {
	atomic.StoreUint32(&g.flag, 1)
}

func (g *gauge) bump() {
	atomic.AddInt64(&g.hits, 1)
}

func tripped(g *gauge) bool {
	return g.flag != 0 // want `plain access of field gauge.flag`
}

// resetPlain clears the flag without the workers quiescent: writes mix
// with the atomic publication exactly like reads do.
func resetPlain(g *gauge) {
	g.flag = 0 // want `plain access of field gauge.flag`
}

// crossFunction shows the fixpoint is program-wide, not per-function:
// this function never touches sync/atomic itself, yet the plain read
// still races with trip's atomic store.
func crossFunction(g *gauge) int64 {
	return g.hits // want `plain access of field gauge.hits`
}

// compoundPlain mixes through a compound assignment.
func compoundPlain(g *gauge) {
	g.hits += 2 // want `plain access of field gauge.hits`
}
