// Package hpgold is the hotpathalloc golden package: this file must
// stay diagnostic-free, dirty.go seeds one violation per construct the
// analyzer knows.
package hpgold

// axpy is hot and allocation-free: index loops, slice element writes
// and arithmetic are all fine.
//
//spblock:hotpath
func axpy(a float64, xs, out []float64) {
	for i, v := range xs {
		out[i] += a * v
	}
}

// driver shows the traversal rules: unannotated helpers reached from a
// hot root are checked too, and a coldpath callee stops the walk.
//
//spblock:hotpath
func driver(xs, out []float64) {
	scale(xs, out)
	grow(len(xs))
}

func scale(xs, out []float64) {
	for i := range xs {
		out[i] = 2 * xs[i]
	}
}

// grow is the amortised resize path; its allocations are exempt.
//
//spblock:coldpath
func grow(n int) []float64 {
	return make([]float64, n)
}

// sized shows the reasoned escape hatch: the allocation is intended
// and the allow comment names why.
//
//spblock:hotpath
func sized(n int) []float64 {
	return make([]float64, n) //spblock:allow one-shot setup path, measured 0 allocs/op steady state
}
