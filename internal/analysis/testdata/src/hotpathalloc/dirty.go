package hpgold

// dirtyKernel packs one instance of each allocating construct the
// analyzer must catch inside an annotated function.
//
//spblock:hotpath
func dirtyKernel(n int, m map[int]int, s string, xs []float64) []float64 {
	buf := make([]float64, n) // want `make allocates`
	buf = append(buf, 1)      // want `append allocates`
	p := new(int)             // want `new allocates`
	m[*p] = n                 // want `map write`
	t := s + "x"              // want `string concatenation`
	bs := []byte(t)           // want `string conversion copies`
	f := func() {}            // want `function literal`
	f()
	box(n) // want `interface conversion boxes concrete value`
	_ = bs
	return buf
}

func box(v any) { _ = v }

// viaRoot proves traversal: the violation sits in an unannotated
// helper, reached from the hot root.
//
//spblock:hotpath
func viaRoot(xs []float64) {
	leakyHelper(xs)
}

func leakyHelper(xs []float64) {
	pair := []float64{xs[0], xs[0]} // want `slice literal allocates`
	_ = pair
}
