// Package kpgold is the kernelpar golden package: this file must stay
// diagnostic-free, dirty.go seeds one violation per hazard the
// analyzer knows.
package kpgold

import (
	"sync"
	"sync/atomic"
)

// queue uses a typed atomic, which is immune to atomic/plain mixing by
// construction.
type queue struct {
	next atomic.Int64
}

func claim(q *queue, limit int64) int64 {
	n := q.next.Add(1) - 1
	if n >= limit {
		return -1
	}
	return n
}

// fanOutRebind makes the worker-id dependency explicit with the v := v
// idiom; Add precedes the launches and Done is deferred.
func fanOutRebind(work [][]float64) {
	var wg sync.WaitGroup
	wg.Add(len(work))
	for w := range work {
		w := w
		go func() {
			defer wg.Done()
			work[w][0] = 1
		}()
	}
	wg.Wait()
}

// fanOutParam passes the loop variable as a parameter instead.
func fanOutParam(work [][]float64) {
	var wg sync.WaitGroup
	wg.Add(len(work))
	for w := range work {
		go func(w int) {
			defer wg.Done()
			work[w][0] = 1
		}(w)
	}
	wg.Wait()
}
