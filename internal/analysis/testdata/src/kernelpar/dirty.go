package kpgold

import "sync"

// The atomic/plain mixing case that used to live here moved to the
// atomicfield golden package when that check became program-wide.

func fanOutBad(work [][]float64) {
	var wg sync.WaitGroup
	for w := range work {
		go func() {
			wg.Add(1)      // want `races with Wait`
			wg.Done()      // want `must be deferred`
			work[w][0] = 1 // want `captures loop variable w`
		}()
	}
	wg.Wait()
}

func negativeAdd(done chan struct{}) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wg.Add(-1) // want `negative value; use Done`
		done <- struct{}{}
	}()
	wg.Wait()
}
