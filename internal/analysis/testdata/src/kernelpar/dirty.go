package kpgold

import (
	"sync"
	"sync/atomic"
)

// counter is accessed through address-based sync/atomic calls, so any
// plain access of hits elsewhere in the package is a race.
type counter struct {
	hits int64
}

func bump(c *counter) {
	atomic.AddInt64(&c.hits, 1)
}

func read(c *counter) int64 {
	return c.hits // want `plain access of field counter.hits`
}

func fanOutBad(work [][]float64) {
	var wg sync.WaitGroup
	for w := range work {
		go func() {
			wg.Add(1)      // want `races with Wait`
			wg.Done()      // want `must be deferred`
			work[w][0] = 1 // want `captures loop variable w`
		}()
	}
	wg.Wait()
}

func negativeAdd(done chan struct{}) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wg.Add(-1) // want `negative value; use Done`
		done <- struct{}{}
	}()
	wg.Wait()
}
