//go:build spblockcheck

package check

// Enabled gates the deep structure validation at production call sites.
// This build carries the spblockcheck tag, so executor construction and
// the amortised resize paths verify every structure they build.
const Enabled = true
