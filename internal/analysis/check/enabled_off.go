//go:build !spblockcheck

package check

// Enabled gates the deep structure validation at production call
// sites. Without the spblockcheck build tag it is a false constant, so
// every `if check.Enabled { ... }` block is dead-code eliminated: the
// validators cost nothing in normal and benchmark builds.
const Enabled = false
