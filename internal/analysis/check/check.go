// Package check is the spblockcheck deep structure oracle: build-tag
// gated validators for the CSF-tree, blocked-layout and strip-packing
// invariants that the kernels assume but never re-verify on the hot
// path.
//
// The validators themselves are ordinary exported functions, always
// compiled, so fuzz targets and tests can call them under any build
// configuration. Production call sites (executor construction, the
// amortised ensure paths) guard calls with the Enabled constant:
//
//	if check.Enabled {
//		check.Must("core.NewExecutor", validateCSF(csf))
//	}
//
// Enabled is a constant — false without the spblockcheck build tag — so
// the branch and everything behind it is dead-code eliminated from
// normal and benchmark builds; `go test -tags spblockcheck ./...` and
// fuzzing runs get the deep oracle.
//
// The package deliberately depends on nothing else in the module (the
// tensor package imports nmode, so a tensor dependency here would cut
// nmode off from the oracle). Both the order-3 SPLATT structure and
// the order-N CSF are level arrays of ids and child pointers; callers
// pass those arrays directly and keep any struct-specific adaptation
// (block coordinate decoding, coverage sums) in thin coldpath wrappers
// next to the structs.
//
// Invariants verified (Sec. III-C / V-A of the paper):
//
//   - CSF trees: pointer arrays are monotone, start at 0 and span the
//     next level exactly; ids are within the mode dimension; sibling
//     ids are sorted (strictly below the leaf level — only duplicate
//     coordinates may repeat a leaf id); no node is childless (builders
//     compress empty slices and fibers); leaf count equals the value
//     count.
//   - Blocked layouts: every block's ids stay inside the block's
//     axis-aligned coordinate box (IDBox), and the caller confirms
//     block nonzero counts sum to the tensor total (exact coverage).
//   - Rank strips: the strip ladder covers [0, R) exactly with widths
//     in (0, BS].
package check

import "fmt"

// Must panics when err is non-nil, prefixing the failing call site.
// Structure validation failing under the spblockcheck tag means a
// builder produced a layout the kernels would silently mis-read, so an
// error return would only let the corruption travel further.
func Must(site string, err error) {
	if err != nil {
		panic(fmt.Sprintf("spblockcheck: %s: %v", site, err))
	}
}

// Tree verifies the CSF invariants for a tree of any order: level
// sizes, pointer spans, id ranges, sibling ordering, no childless
// nodes, leaf count. ids and ptrs are the per-level id and child
// pointer arrays (len(ptrs) == len(ids)-1); modeOrder maps level d to
// the tensor mode it stores; nVals is the leaf value count.
//
// The order-3 SPLATT structure is the three-level case: levels
// (SliceID, FiberK, NzJ), pointers (SlicePtr, FiberPtr), mode order
// {0, 2, 1}.
func Tree(dims, modeOrder []int, ids, ptrs [][]int32, nVals int) error {
	n := len(dims)
	if n < 1 || len(ids) != n || len(ptrs) != n-1 || len(modeOrder) != n {
		return fmt.Errorf("malformed levels: order %d, %d id levels, %d ptr levels",
			n, len(ids), len(ptrs))
	}
	seen := make([]bool, n)
	for _, m := range modeOrder {
		if m < 0 || m >= n || seen[m] {
			return fmt.Errorf("invalid mode order %v", modeOrder)
		}
		seen[m] = true
	}
	for d := 0; d < n; d++ {
		if err := idRange(fmt.Sprintf("level %d ids", d), ids[d], dims[modeOrder[d]]); err != nil {
			return err
		}
	}
	for d := 0; d < n-1; d++ {
		if len(ptrs[d]) != len(ids[d])+1 {
			return fmt.Errorf("level %d: %d pointers for %d nodes", d, len(ptrs[d]), len(ids[d]))
		}
		if err := ptrSpan(fmt.Sprintf("level %d pointers", d), ptrs[d], len(ids[d+1])); err != nil {
			return err
		}
		// Children of one parent are sorted: strictly increasing above
		// the leaf level, non-decreasing at the leaves (duplicate
		// coordinates each keep their own leaf). Builders store only
		// non-empty slices and fibers, so a childless node is corrupt.
		strict := d+1 < n-1
		for x := 0; x < len(ids[d]); x++ {
			if ptrs[d][x] == ptrs[d][x+1] {
				return fmt.Errorf("level %d node %d has no children", d, x)
			}
			for ch := ptrs[d][x] + 1; ch < ptrs[d][x+1]; ch++ {
				prev, cur := ids[d+1][ch-1], ids[d+1][ch]
				if cur < prev || (strict && cur == prev) {
					return fmt.Errorf("level %d node %d: children not sorted at %d", d, x, ch)
				}
			}
		}
	}
	// Roots strictly increasing (each stored once).
	for x := 1; x < len(ids[0]); x++ {
		if ids[0][x] <= ids[0][x-1] {
			return fmt.Errorf("root ids not strictly increasing at %d", x)
		}
	}
	if len(ids[n-1]) != nVals {
		return fmt.Errorf("%d leaves for %d values", len(ids[n-1]), nVals)
	}
	return nil
}

// IDBox verifies that every id lies inside block coordinate b of a
// mode with the given block edge length and mode dimension — the
// axis-aligned containment invariant of blocked layouts.
func IDBox(name string, ids []int32, b, blockDim, dim int) error {
	lo := b * blockDim
	hi := lo + blockDim
	if hi > dim {
		hi = dim
	}
	for i, id := range ids {
		if int(id) < lo || int(id) >= hi {
			return fmt.Errorf("%s[%d] = %d outside block range [%d,%d)", name, i, id, lo, hi)
		}
	}
	return nil
}

// Coverage verifies that per-block nonzero counts sum to the tensor
// total: blocking must partition the nonzeros with no loss and no
// duplication.
func Coverage(covered, total int) error {
	if covered != total {
		return fmt.Errorf("blocks cover %d nonzeros, tensor has %d", covered, total)
	}
	return nil
}

// StripLadder verifies the rank-strip schedule: widths in (0, bs]
// covering [0, r) contiguously — the "strip widths <= BS" contract of
// Algorithm 2. A bs outside (0, r) means whole-rank execution and is
// trivially valid.
func StripLadder(r, bs int) error {
	if r <= 0 {
		return fmt.Errorf("rank %d", r)
	}
	if bs <= 0 || bs >= r {
		return nil // no strips: whole-rank execution
	}
	covered := 0
	for rr := 0; rr < r; rr += bs {
		w := bs
		if rr+w > r {
			w = r - rr
		}
		if w <= 0 || w > bs {
			return fmt.Errorf("strip at %d has width %d (bs %d)", rr, w, bs)
		}
		covered += w
	}
	return Coverage(covered, r)
}

func idRange(name string, ids []int32, dim int) error {
	for i, id := range ids {
		if id < 0 || int(id) >= dim {
			return fmt.Errorf("%s[%d] = %d outside [0,%d)", name, i, id, dim)
		}
	}
	return nil
}

func ptrSpan(name string, ptr []int32, next int) error {
	if len(ptr) == 0 {
		return fmt.Errorf("%s is empty", name)
	}
	if ptr[0] != 0 {
		return fmt.Errorf("%s starts at %d", name, ptr[0])
	}
	if int(ptr[len(ptr)-1]) != next {
		return fmt.Errorf("%s ends at %d, next level has %d entries", name, ptr[len(ptr)-1], next)
	}
	for i := 1; i < len(ptr); i++ {
		if ptr[i] < ptr[i-1] {
			return fmt.Errorf("%s not monotone at %d", name, i)
		}
	}
	return nil
}
