package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// Load resolves the patterns with the go tool (run in dir; an empty dir
// means the current directory), type-checks every module-local package
// the patterns reach from source, and imports everything else (the
// standard library) from compiler export data. Because all module
// packages are checked from source against one FileSet and one package
// map, type-checker objects are identical across package boundaries —
// the property the cross-package call-graph traversal relies on.
//
// Load shells out to `go list -export`, which compiles dependencies
// into the build cache; it needs no network access.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	byPath := make(map[string]*listedPackage, len(listed))
	for _, lp := range listed {
		byPath[lp.ImportPath] = lp
	}

	prog := &Program{
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}
	imp := &progImporter{
		prog:    prog,
		exports: make(map[string]string),
	}
	imp.gc = importer.ForCompiler(prog.Fset, "gc", imp.lookup)
	for _, lp := range listed {
		if lp.Export != "" {
			imp.exports[lp.ImportPath] = lp.Export
		}
	}

	// Type-check module packages in dependency (topological) order.
	var order []*listedPackage
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(lp *listedPackage) error
	visit = func(lp *listedPackage) error {
		switch state[lp.ImportPath] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", lp.ImportPath)
		case 2:
			return nil
		}
		state[lp.ImportPath] = 1
		for _, path := range lp.Imports {
			if dep, ok := byPath[path]; ok && dep.Module != nil && !dep.Standard {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[lp.ImportPath] = 2
		order = append(order, lp)
		return nil
	}
	for _, lp := range listed {
		if lp.Module == nil || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if err := visit(lp); err != nil {
			return nil, err
		}
	}

	for _, lp := range order {
		pkg, err := checkPackage(prog, imp, lp)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[lp.ImportPath] = pkg
		if !lp.DepOnly {
			prog.Roots = append(prog.Roots, pkg)
		}
	}
	if len(prog.Roots) == 0 {
		return nil, fmt.Errorf("analysis: no module packages match %v", patterns)
	}
	prog.index()
	return prog, nil
}

// goList runs `go list -e -export -deps -json` over the patterns.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var listed []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// checkPackage parses and type-checks one module package from source.
func checkPackage(prog *Program, imp types.Importer, lp *listedPackage) (*Package, error) {
	if len(lp.GoFiles) == 0 {
		return nil, fmt.Errorf("analysis: %s has no Go files", lp.ImportPath)
	}
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(prog.Fset, filepath.Join(lp.Dir, name),
			nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, prog.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Dir:   lp.Dir,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// progImporter serves imports during type checking: module packages
// resolve to the already source-checked *types.Package (guaranteed by
// the topological check order), everything else to gc export data
// recorded by `go list -export`.
type progImporter struct {
	prog    *Program
	exports map[string]string
	gc      types.Importer
}

func (i *progImporter) Import(path string) (*types.Package, error) {
	if pkg := i.prog.byPath[path]; pkg != nil {
		return pkg.Types, nil
	}
	return i.gc.Import(path)
}

// lookup feeds export data files to the gc importer.
func (i *progImporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := i.exports[path]
	if !ok {
		return nil, fmt.Errorf("analysis: no export data for %q", path)
	}
	return os.Open(file)
}
