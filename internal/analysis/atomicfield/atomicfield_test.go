package atomicfield_test

import (
	"testing"

	"spblock/internal/analysis/analysistest"
	"spblock/internal/analysis/atomicfield"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "spblock/internal/analysis/testdata/src/atomicfield",
		atomicfield.Analyzer)
}
