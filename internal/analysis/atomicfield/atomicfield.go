// Package atomicfield enforces program-wide atomic access discipline:
// a struct field that is accessed through the address-based sync/atomic
// functions (atomic.AddInt64(&s.f, ...), atomic.LoadUint32(&s.f), ...)
// anywhere in the module must never be read or written plainly anywhere
// else in the module, outside construction and //spblock:coldpath
// functions.
//
// This generalizes the per-package, per-function heuristic that
// kernelpar used to carry: the scheduling layer (PR 7) claims
// work-stealing chunks with atomics and the distributed runtime (PR 5)
// publishes crash flags across goroutines, and the plain access that
// races with those can live in a *different package* than the atomic
// one — the facade reading a counter the executor bumps atomically, a
// benchmark driver resetting a queue mid-run. Field identity is the
// type-checker's *types.Var object on the shared program FileSet, so
// the fixpoint is exact across package boundaries.
//
// Two escape hatches keep the contract honest rather than noisy:
//
//   - Construction: a composite literal (s := S{hits: 0}) initialises
//     the field before the value is shared and is not a selector
//     access, so it is naturally exempt; likewise package-level
//     variable initializers and init functions run before any
//     goroutine can observe the value.
//
//   - //spblock:coldpath functions: the annotated cold half of an
//     executor (construction, amortised resizing, teardown) runs while
//     the workers are quiescent — the same happens-before argument the
//     pooled workspaces already rely on. A plain reset of an
//     atomically-claimed cursor is legal there and only there.
//
// Individual lines elsewhere are waived with a reasoned
// //spblock:allow comment, which the shared driver applies.
//
// The typed atomics (atomic.Int64, atomic.Bool, ...) are safe by
// construction — their word is unexported, so a plain access cannot
// compile — and are what new code should use; this analyzer exists to
// guard the address-based style where raw-word mixing does compile.
package atomicfield

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"spblock/internal/analysis"
)

// Analyzer is the atomicfield pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "forbid plain access, module-wide, of struct fields accessed through address-based sync/atomic (outside construction and coldpath functions)",
	Run:  run,
}

func run(prog *analysis.Program) ([]analysis.Diagnostic, error) {
	// Pass 1, program-wide: every field object reached by the address
	// operand of an address-based sync/atomic call, with one witness
	// position for the diagnostic text; and the selector expressions
	// that *are* those atomic accesses, so pass 2 can skip them.
	atomicFields := make(map[*types.Var]token.Pos)
	atomicUses := make(map[ast.Expr]bool)
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAddrAtomicCall(pkg.Info, call) || len(call.Args) == 0 {
					return true
				}
				operand := addrOperand(call.Args[0])
				atomicUses[operand] = true
				if fld, _, ok := fieldObject(pkg.Info, operand); ok {
					if _, seen := atomicFields[fld]; !seen {
						atomicFields[fld] = call.Pos()
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return nil, nil
	}

	// Pass 2, program-wide: plain selector accesses of those fields.
	var diags []analysis.Diagnostic
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				// Only function bodies are scanned: package-level
				// initializers run before main and are construction by
				// definition.
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					// Cold functions and init run with the workers
					// quiescent (or before they exist).
					if prog.IsCold(fn) || fn.Name() == "init" {
						continue
					}
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok || atomicUses[sel] {
						return true
					}
					fld, name, ok := fieldObject(pkg.Info, sel)
					if !ok {
						return true
					}
					atomicPos, isAtomic := atomicFields[fld]
					if !isAtomic {
						return true
					}
					diags = append(diags, analysis.Diagnostic{
						Pos: sel.Pos(),
						Message: fmt.Sprintf(
							"plain access of field %s, which is accessed via sync/atomic at %s; use atomics, or move the access to a //spblock:coldpath function",
							name, prog.Position(atomicPos)),
					})
					return true
				})
			}
		}
	}
	return diags, nil
}

// fieldObject resolves expr to a struct field's object and its
// "Type.field" display name if expr is a field selector with a named
// base type.
func fieldObject(info *types.Info, expr ast.Expr) (*types.Var, string, bool) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, "", false
	}
	fld, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, "", false
	}
	t := s.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	name := fld.Name()
	if named, ok := t.(*types.Named); ok {
		name = named.Obj().Name() + "." + name
	}
	return fld, name, true
}

// addrOperand unwraps &expr to expr.
func addrOperand(arg ast.Expr) ast.Expr {
	if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return ast.Unparen(u.X)
	}
	return ast.Unparen(arg)
}

// isAddrAtomicCall reports whether call is one of the address-based
// sync/atomic functions (atomic.AddInt64, atomic.LoadUint32, ...). The
// typed atomics' methods have a named receiver, not a *T argument, and
// are deliberately not matched.
func isAddrAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // typed-atomic method, safe by construction
	}
	name := fn.Name()
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}
