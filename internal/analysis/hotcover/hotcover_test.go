package hotcover_test

import (
	"testing"

	"spblock/internal/analysis/analysistest"
	"spblock/internal/analysis/hotcover"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "spblock/internal/analysis/testdata/src/hotcover",
		hotcover.Analyzer)
}
