// Package hotcover detects directive drift in both directions: code
// that slipped into the hot-path contract without saying so, and
// directives that outlived the code they described.
//
//   - Coverage: every function reachable from a //spblock:hotpath root
//     through statically-dispatched calls must itself carry
//     //spblock:hotpath or //spblock:coldpath. hotpathalloc already
//     checks such functions for allocating constructs, but silently —
//     a helper extracted from a kernel inherits the contract without
//     its author ever being told, and the first sign is a lint failure
//     three PRs later. Requiring the annotation makes the contract
//     visible at the declaration and forces the hot/cold decision at
//     the moment the function is written.
//
//   - Staleness: a function carrying //spblock:hotpath or
//     //spblock:coldpath that is no longer reachable from any entry
//     point is dead contract: the directive documents a hot loop that
//     no executor runs anymore. Reachability here is deliberately
//     liberal — the roots are every exported function or method, main
//     and init, plus functions referenced from package-level variable
//     initializers (the width-specialized kernel registry, the scalar
//     fallback strip table), and the edges are all identifier uses,
//     not just calls, so a kernel that is only ever dispatched through
//     a table is still live.
//
// The two passes share the program's call graph with hotpathalloc, so
// "reachable from a hot root" means exactly the same thing to both
// analyzers.
package hotcover

import (
	"fmt"
	"go/ast"
	"go/types"

	"spblock/internal/analysis"
)

// Analyzer is the hotcover pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotcover",
	Doc:  "require hotpath/coldpath directives on functions reachable from hot roots, and flag stale directives on unreachable functions",
	Run:  run,
}

func run(prog *analysis.Program) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic

	// Pass 1 — coverage. BFS over static call edges from the hot roots,
	// stopping at coldpath functions (they end the contract); every
	// reached function without a directive is drift.
	via := make(map[*types.Func]string)
	queue := make([]*types.Func, 0, 64)
	for _, fn := range prog.HotFuncs() {
		if _, seen := via[fn]; seen {
			continue
		}
		via[fn] = analysis.FuncDisplayName(fn)
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if !prog.IsHot(fn) && !prog.IsCold(fn) {
			diags = append(diags, analysis.Diagnostic{
				Pos: prog.DeclPos(fn),
				Message: fmt.Sprintf(
					"%s is reachable from //spblock:hotpath %s but carries no //spblock:hotpath or //spblock:coldpath directive",
					analysis.FuncDisplayName(fn), via[fn]),
			})
		}
		for _, callee := range prog.Callees(fn) {
			if prog.IsCold(callee) {
				continue
			}
			if _, seen := via[callee]; seen {
				continue
			}
			via[callee] = via[fn]
			queue = append(queue, callee)
		}
	}

	// Pass 2 — staleness. BFS over reference edges from every entry
	// point; a directive-carrying function the traversal never reaches
	// documents a hot (or cold) path that no longer exists.
	live := make(map[*types.Func]bool)
	queue = queue[:0]
	enqueue := func(fn *types.Func) {
		if !live[fn] {
			live[fn] = true
			queue = append(queue, fn)
		}
	}
	for _, pkg := range prog.Packages {
		for fn := range entryPoints(prog, pkg) {
			enqueue(fn)
		}
	}
	for _, fn := range prog.InitRefs() {
		enqueue(fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, ref := range prog.RefFuncs(fn) {
			enqueue(ref)
		}
	}
	for _, pkg := range prog.Packages {
		for _, fn := range directiveFuncs(prog, pkg) {
			if live[fn] {
				continue
			}
			dir := analysis.DirectiveHotpath
			if prog.IsCold(fn) {
				dir = analysis.DirectiveColdpath
			}
			diags = append(diags, analysis.Diagnostic{
				Pos: prog.DeclPos(fn),
				Message: fmt.Sprintf(
					"stale //spblock:%s directive: %s is not reachable from any entry point",
					dir, analysis.FuncDisplayName(fn)),
			})
		}
	}
	return diags, nil
}

// entryPoints yields the functions of pkg that are reachable from
// outside the module's static call graph: exported functions and
// methods (an exported method on an unexported type counts — it is how
// interface implementations like distKernel.MTTKRP are entered), main,
// and init.
func entryPoints(prog *analysis.Program, pkg *analysis.Package) map[*types.Func]bool {
	roots := make(map[*types.Func]bool)
	for _, fn := range moduleFuncs(prog, pkg) {
		name := fn.Name()
		if fn.Exported() || name == "main" || name == "init" {
			roots[fn] = true
		}
	}
	return roots
}

// directiveFuncs returns pkg's functions that carry a hotpath or
// coldpath directive, in declaration order.
func directiveFuncs(prog *analysis.Program, pkg *analysis.Package) []*types.Func {
	var fns []*types.Func
	for _, fn := range moduleFuncs(prog, pkg) {
		if prog.IsHot(fn) || prog.IsCold(fn) {
			fns = append(fns, fn)
		}
	}
	return fns
}

// moduleFuncs lists pkg's declared functions (with bodies) in file
// order.
func moduleFuncs(prog *analysis.Program, pkg *analysis.Package) []*types.Func {
	var fns []*types.Func
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					fns = append(fns, fn)
				}
			}
		}
	}
	return fns
}
