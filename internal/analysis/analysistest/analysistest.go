// Package analysistest runs an analyzer over a golden package and
// matches its diagnostics against `// want` comments, in the style of
// golang.org/x/tools' package of the same name (rebuilt here on the
// stdlib-only loader so the module stays dependency-free).
//
// A golden file marks each expected diagnostic with a trailing comment
// on the offending line:
//
//	buf := make([]float64, n) // want `make allocates`
//
// The comment holds one or more Go-quoted regular expressions; each
// must match at least one diagnostic reported on that line, and every
// diagnostic on the line must match at least one expectation. A
// diagnostic on a line with no want comment, or a want comment whose
// line stays silent, fails the test — the goldens prove both "no false
// negatives" and "no false positives" per seeded case.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"spblock/internal/analysis"
)

// wantRe extracts the expectation list from a comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the package named by pattern (a module import path such as
// spblock/internal/analysis/testdata/src/hotpathalloc — testdata
// directories are loadable when named explicitly), runs the analyzers,
// and matches diagnostics against the package's want comments.
func Run(t *testing.T, pattern string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	prog, err := analysis.Load("", pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	// Collect expectations keyed by "file:line".
	wants := make(map[string][]*expectation)
	for _, pkg := range prog.Roots {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					exps, err := parseWants(m[1])
					if err != nil {
						t.Fatalf("%s: bad want comment: %v", key, err)
					}
					wants[key] = append(wants[key], exps...)
				}
			}
		}
	}

	for _, d := range diags {
		pos := prog.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		exps := wants[key]
		found := false
		for _, e := range exps {
			if e.re.MatchString(d.Message) {
				e.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", key, d.Analyzer, d.Message)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: no diagnostic matching %q", key, e.re)
			}
		}
	}
}

// parseWants splits a want payload into its quoted regexps.
func parseWants(s string) ([]*expectation, error) {
	var exps []*expectation
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		s = s[len(q):]
		pat, err := strconv.Unquote(q)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, err
		}
		exps = append(exps, &expectation{re: re})
	}
	if len(exps) == 0 {
		return nil, fmt.Errorf("want comment carries no expectations")
	}
	return exps, nil
}
