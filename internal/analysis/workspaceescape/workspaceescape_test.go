package workspaceescape_test

import (
	"testing"

	"spblock/internal/analysis/analysistest"
	"spblock/internal/analysis/workspaceescape"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "spblock/internal/analysis/testdata/src/workspaceescape",
		workspaceescape.Analyzer)
}
