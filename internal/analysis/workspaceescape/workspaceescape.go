// Package workspaceescape enforces the ownership contract of pooled
// workspaces: memory reached through a type marked //spblock:workspace
// (core.workspace, nmode.nworkspace, the pooled walkers, strip-pack
// buffers, COO privatised outputs) belongs to exactly one executor and
// must not outlive or escape it. An escaped workspace buffer turns the
// "one Executor must not Run concurrently with itself" rule into a
// silent data race and lets a caller observe buffers the next Run will
// overwrite — exactly the layout-invariant class of bug that only
// surfaces as wrong numbers.
//
// The analyzer tracks workspace-derived expressions inside each
// function: any value of an annotated workspace type, any field/index/
// slice chain rooted at one, and any local variable assigned such an
// expression (propagated to a fixpoint). It then reports when a derived
// value is
//
//   - returned to a caller,
//   - assigned to a struct field whose owner is neither a workspace
//     type nor a struct embedding one (the owning executor),
//   - assigned to a package-level variable, or
//   - sent on a channel.
//
// Passing derived values DOWN the call tree (kernel operands) is fine:
// the callee frame cannot outlive the Run call that passed them.
package workspaceescape

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"spblock/internal/analysis"
)

// Analyzer is the workspaceescape pass.
var Analyzer = &analysis.Analyzer{
	Name: "workspaceescape",
	Doc:  "forbid //spblock:workspace-derived values from escaping the owning executor",
	Run:  run,
}

func run(prog *analysis.Program) ([]analysis.Diagnostic, error) {
	// Workspace types, program-wide.
	wsTypes := make(map[*types.TypeName]bool)
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = gd.Doc
					}
					if !analysis.HasDirective(doc, analysis.DirectiveWorkspace) {
						continue
					}
					if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
						wsTypes[tn] = true
					}
				}
			}
		}
	}
	if len(wsTypes) == 0 {
		return nil, nil
	}

	esc := &escapes{prog: prog, wsTypes: wsTypes}
	for _, pkg := range prog.Packages {
		esc.pkg = pkg
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					esc.checkFunc(fd)
				}
			}
		}
	}
	return esc.diags, nil
}

type escapes struct {
	prog    *analysis.Program
	pkg     *analysis.Package
	wsTypes map[*types.TypeName]bool
	diags   []analysis.Diagnostic
}

// carriesRef reports whether values of type t can alias workspace
// memory: pointer-shaped types and aggregates containing one. A scalar
// (or string, which is immutable) read out of a pooled buffer is a
// plain copy and free to escape.
func carriesRef(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Array:
		return carriesRef(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesRef(u.Field(i).Type()) {
				return true
			}
		}
		return false
	}
	return true // pointers, slices, maps, chans, funcs, interfaces
}

// isWorkspaceType reports whether t (or what it points to) is an
// annotated workspace type.
func (e *escapes) isWorkspaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && e.wsTypes[named.Obj()]
}

// isOwnerType reports whether t is a struct that directly embeds a
// workspace-typed field — the executor that owns the pool. Storing
// workspace values into the owner (or into the workspace itself) is the
// intended data flow.
func (e *escapes) isOwnerType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if e.isWorkspaceType(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if e.isWorkspaceType(ft) {
			return true
		}
		// A slice/array/map of workspace values also marks the owner.
		switch c := ft.Underlying().(type) {
		case *types.Slice:
			if e.isWorkspaceType(c.Elem()) {
				return true
			}
		case *types.Array:
			if e.isWorkspaceType(c.Elem()) {
				return true
			}
		}
	}
	return false
}

// checkFunc runs the per-function derived-value analysis.
func (e *escapes) checkFunc(fd *ast.FuncDecl) {
	info := e.pkg.Info

	// derivedVars: local objects holding workspace-derived values.
	derivedVars := make(map[types.Object]bool)

	// Methods of a workspace type may do anything with their receiver's
	// own storage: the workspace's internal plumbing (publish, launch,
	// bind) is where derived values legitimately live.
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if rt := info.TypeOf(fd.Recv.List[0].Type); e.isWorkspaceType(rt) {
			return
		}
	}

	// isDerived reports whether expr reaches workspace storage,
	// consulting the current derivedVars set.
	var isDerived func(expr ast.Expr) bool
	isDerived = func(expr ast.Expr) bool {
		expr = ast.Unparen(expr)
		t := info.TypeOf(expr)
		if t != nil && !carriesRef(t) {
			// Scalars copied out of workspace storage (s += buf[i]) are
			// plain values; only reference-carrying types can alias the
			// pool's memory.
			return false
		}
		if e.isWorkspaceType(t) {
			return true
		}
		switch x := expr.(type) {
		case *ast.Ident:
			return derivedVars[info.ObjectOf(x)]
		case *ast.SelectorExpr:
			// A field read from a workspace value is derived; a selector
			// on a non-workspace base is only derived if the base is.
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				return isDerived(x.X)
			}
			return false
		case *ast.IndexExpr:
			return isDerived(x.X)
		case *ast.SliceExpr:
			return isDerived(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				return isDerived(x.X)
			}
			return false
		case *ast.StarExpr:
			return isDerived(x.X)
		}
		return false
	}

	// Propagate derived-ness through local assignments to a fixpoint
	// (the chains are short: ws := &e.ws; priv := ws.privates[w]).
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.ObjectOf(id)
				if obj == nil || derivedVars[obj] {
					continue
				}
				if isDerived(assign.Rhs[i]) {
					derivedVars[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	report := func(n ast.Node, format string, args ...any) {
		e.diags = append(e.diags, analysis.Diagnostic{
			Pos:     n.Pos(),
			Message: fmt.Sprintf(format, args...),
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if isDerived(res) {
					report(res, "workspace-derived value returned to caller")
				}
			}
		case *ast.SendStmt:
			if isDerived(n.Value) {
				report(n.Value, "workspace-derived value sent on channel")
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if !isDerived(n.Rhs[i]) {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					obj := info.ObjectOf(l)
					if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
						report(lhs, "workspace-derived value stored in package-level variable %s", v.Name())
					}
				case *ast.SelectorExpr:
					sel, ok := info.Selections[l]
					if !ok || sel.Kind() != types.FieldVal {
						continue
					}
					base := info.TypeOf(l.X)
					if e.isOwnerType(base) || isDerived(l.X) {
						continue // workspace-internal or owner-internal store
					}
					report(lhs, "workspace-derived value stored in field %s of non-owner type %s",
						l.Sel.Name, typeString(base))
				case *ast.IndexExpr:
					// Storing into a map or slice that is not itself
					// workspace-derived leaks through the container.
					if !isDerived(l.X) {
						report(lhs, "workspace-derived value stored in non-workspace container")
					}
				}
			}
		}
		return true
	})
}

func typeString(t types.Type) string {
	if t == nil {
		return "<unknown>"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
