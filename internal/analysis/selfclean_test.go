package analysis_test

import (
	"testing"

	"spblock/internal/analysis"
	"spblock/internal/analysis/atomicfield"
	"spblock/internal/analysis/errdrop"
	"spblock/internal/analysis/hotcover"
	"spblock/internal/analysis/hotpathalloc"
	"spblock/internal/analysis/kernelpar"
	"spblock/internal/analysis/workspaceescape"
)

// TestRepoSelfClean locks in the repo-wide contract: the annotated hot
// paths, workspace types, worker machinery, atomically-published
// fields, fault-tolerance error flow and directive coverage must
// produce zero diagnostics under the full six-analyzer suite. A
// regression here means either the module picked up an allocating
// construct / escape / parallelism hazard / race / dropped error /
// directive drift, or an analyzer grew a false positive — both are
// bugs.
func TestRepoSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	prog, err := analysis.Load("", "spblock/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	diags, err := analysis.Run(prog, []*analysis.Analyzer{
		hotpathalloc.Analyzer,
		workspaceescape.Analyzer,
		kernelpar.Analyzer,
		atomicfield.Analyzer,
		errdrop.Analyzer,
		hotcover.Analyzer,
	})
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", prog.Position(d.Pos), d.Analyzer, d.Message)
	}
}
