package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The program-wide call graph and directive index. Built once by
// index() after type checking, shared by every analyzer that reasons
// about reachability (hotpathalloc's zero-alloc traversal, hotcover's
// directive-coverage and staleness passes) so they all agree on what
// "reachable" means.
//
// Two edge relations are maintained:
//
//   - Callees: statically-dispatched calls only (direct calls of named
//     functions and methods with bodies in the module). This is the
//     conservative relation the hot-path contract traverses — a call
//     through a function value or interface stops the contract at that
//     edge, exactly like a call out of the module.
//
//   - Refs: every use of a module function's identifier, call or not.
//     This is the liberal relation staleness detection needs: a kernel
//     body registered in a dispatch table is never statically called,
//     but it is referenced, and a reference keeps it (and its
//     directives) alive.
type callGraph struct {
	// callees maps each module function with a body to its
	// statically-dispatched module-local callees, in first-use order.
	callees map[*types.Func][]*types.Func
	// refs maps each module function with a body to every module
	// function it references (including callees), in first-use order.
	refs map[*types.Func][]*types.Func
	// initRefs lists module functions referenced from package-level
	// variable initializers — reachable the moment the package loads.
	initRefs []*types.Func
	// hot and cold record the //spblock:hotpath / coldpath directive on
	// each declaration.
	hot, cold map[*types.Func]bool
	// hotOrder lists the hotpath-annotated functions in file order.
	hotOrder []*types.Func
	// declPos locates each directive-carrying declaration.
	declPos map[*types.Func]token.Pos
}

// buildCallGraph populates the program's call graph and directive
// index; index() calls it once, after the function index exists.
func (p *Program) buildCallGraph() {
	g := &callGraph{
		callees: make(map[*types.Func][]*types.Func),
		refs:    make(map[*types.Func][]*types.Func),
		hot:     make(map[*types.Func]bool),
		cold:    make(map[*types.Func]bool),
		declPos: make(map[*types.Func]token.Pos),
	}
	p.graph = g
	initSeen := make(map[*types.Func]bool)
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					g.declPos[fn] = d.Pos()
					if HasDirective(d.Doc, DirectiveHotpath) {
						g.hot[fn] = true
						g.hotOrder = append(g.hotOrder, fn)
					}
					if HasDirective(d.Doc, DirectiveColdpath) {
						g.cold[fn] = true
					}
					if d.Body != nil {
						p.collectEdges(pkg, fn, d.Body)
					}
				case *ast.GenDecl:
					// Function references in package-level initializers
					// (kernel registries, dispatch tables) count as
					// load-time roots for reachability.
					if d.Tok != token.VAR {
						continue
					}
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, val := range vs.Values {
							p.collectFuncUses(pkg, val, func(fn *types.Func) {
								if !initSeen[fn] {
									initSeen[fn] = true
									g.initRefs = append(g.initRefs, fn)
								}
							})
						}
					}
				}
			}
		}
	}
}

// collectEdges records fn's callee and reference edges from its body.
func (p *Program) collectEdges(pkg *Package, fn *types.Func, body *ast.BlockStmt) {
	g := p.graph
	calleeSeen := make(map[*types.Func]bool)
	refSeen := make(map[*types.Func]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := Callee(pkg.Info, call); callee != nil {
				if p.funcs[callee] != nil && !calleeSeen[callee] {
					calleeSeen[callee] = true
					g.callees[fn] = append(g.callees[fn], callee)
				}
			}
		}
		return true
	})
	p.collectFuncUses(pkg, body, func(used *types.Func) {
		if !refSeen[used] {
			refSeen[used] = true
			g.refs[fn] = append(g.refs[fn], used)
		}
	})
}

// collectFuncUses walks node and reports every module-local function
// whose identifier is used (called, stored, passed) within it.
func (p *Program) collectFuncUses(pkg *Package, node ast.Node, emit func(*types.Func)) {
	ast.Inspect(node, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if fn, ok := pkg.Info.Uses[id].(*types.Func); ok && p.funcs[fn] != nil {
			emit(fn)
		}
		return true
	})
}

// Callees returns fn's statically-dispatched module-local callees (only
// functions whose bodies the program contains), in first-use order.
// Calls through function values, interfaces and builtins carry no edge.
func (p *Program) Callees(fn *types.Func) []*types.Func { return p.graph.callees[fn] }

// RefFuncs returns every module-local function fn's body references —
// called or used as a value — in first-use order.
func (p *Program) RefFuncs(fn *types.Func) []*types.Func { return p.graph.refs[fn] }

// InitRefs returns the module functions referenced from package-level
// variable initializers (dispatch tables, registries): reachable as
// soon as their package is linked in.
func (p *Program) InitRefs() []*types.Func { return p.graph.initRefs }

// HotFuncs returns the //spblock:hotpath-annotated functions in file
// order — the roots of the hot-path contract traversals.
func (p *Program) HotFuncs() []*types.Func { return p.graph.hotOrder }

// IsHot reports whether fn's declaration carries //spblock:hotpath.
func (p *Program) IsHot(fn *types.Func) bool { return p.graph.hot[fn] }

// IsCold reports whether fn's declaration carries //spblock:coldpath.
func (p *Program) IsCold(fn *types.Func) bool { return p.graph.cold[fn] }

// DeclPos returns the declaration position of a module function, or
// token.NoPos for functions outside the program.
func (p *Program) DeclPos(fn *types.Func) token.Pos { return p.graph.declPos[fn] }

// FuncDisplayName renders pkg.Func or pkg.Type.Method without the full
// import path, for readable diagnostics.
func FuncDisplayName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fn.Pkg().Name() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Name() + "." + fn.Name()
}
