package ooc_test

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spblock/internal/la"
	"spblock/internal/nmode"
	"spblock/internal/ooc"
)

// randTensor builds a deterministic random tensor with a sprinkling of
// exact duplicate coordinates (ReadTNS preserves duplicates as
// separate entries; the staged path must too).
func randTensor(seed int64, dims []int, nnz int) *nmode.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := nmode.NewTensor(dims, nnz)
	coords := make([]nmode.Index, len(dims))
	for p := 0; p < nnz; p++ {
		if p > 0 && rng.Intn(16) == 0 {
			q := rng.Intn(p)
			t.Append(t.Coord(q, coords), rng.NormFloat64())
			continue
		}
		for m, d := range dims {
			coords[m] = nmode.Index(rng.Intn(d))
		}
		t.Append(coords, rng.NormFloat64())
	}
	return t
}

// stageTensor writes t to a .tns file and stages it, returning the
// staging dir and manifest.
func stageTensor(t *testing.T, x *nmode.Tensor, grid []int) (string, *ooc.Manifest) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "in.tns")
	if err := nmode.SaveTNSFile(path, x); err != nil {
		t.Fatal(err)
	}
	stage := filepath.Join(dir, "staged")
	man, err := ooc.Stage(path, stage, ooc.StageOptions{Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	return stage, man
}

func TestStageManifestMatchesBuildBlocked(t *testing.T) {
	x := randTensor(1, []int{17, 13, 11}, 600)
	grid := []int{3, 2, 2}
	_, man := stageTensor(t, x, grid)

	if man.NNZ != int64(x.NNZ()) {
		t.Fatalf("staged nnz %d, want %d", man.NNZ, x.NNZ())
	}
	var normSq float64
	for _, v := range x.Val {
		normSq += v * v
	}
	if man.NormSq != normSq {
		t.Fatalf("staged normSq %v, want %v", man.NormSq, normSq)
	}
	bt, err := nmode.BuildBlocked(x, grid, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int{}
	for id, blk := range bt.Blocks {
		if blk != nil {
			want[id] = blk.NNZ()
		}
	}
	if len(man.Blocks) != len(want) {
		t.Fatalf("staged %d blocks, want %d", len(man.Blocks), len(want))
	}
	prev := -1
	for _, b := range man.Blocks {
		if b.ID <= prev {
			t.Fatalf("block ids not ascending: %d after %d", b.ID, prev)
		}
		prev = b.ID
		if want[b.ID] != b.NNZ {
			t.Fatalf("block %d staged %d nnz, want %d", b.ID, b.NNZ, want[b.ID])
		}
	}
}

// TestStreamedMTTKRPBitIdentical pins the tentpole contract: the
// streamed product equals the in-memory blocked executor bit for bit,
// for every mode, at several working-set budgets, for order 3 and 4.
func TestStreamedMTTKRPBitIdentical(t *testing.T) {
	cases := []struct {
		dims []int
		grid []int
		nnz  int
	}{
		{[]int{17, 13, 11}, []int{3, 2, 2}, 700},
		{[]int{9, 14, 7, 10}, []int{2, 3, 2, 2}, 500},
	}
	const rank = 9
	for _, tc := range cases {
		x := randTensor(7, tc.dims, tc.nnz)
		stage, man := stageTensor(t, x, tc.grid)
		budgets := []int64{
			0, // minimum pipeline
			man.SlotBytes() + 1,
			man.TotalBlockBytes() / 4,
			man.TotalBlockBytes() * 2,
		}
		factors := make([]*la.Matrix, len(tc.dims))
		for m, d := range tc.dims {
			factors[m] = la.NewMatrix(d, rank)
			rng := rand.New(rand.NewSource(int64(100 + m)))
			for i := range factors[m].Data {
				factors[m].Data[i] = rng.NormFloat64()
			}
		}
		for mode := range tc.dims {
			ex, err := nmode.NewExecutor(x, mode, nmode.Options{Grid: tc.grid, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			want := la.NewMatrix(tc.dims[mode], rank)
			if err := ex.Run(factors, want); err != nil {
				t.Fatal(err)
			}
			for _, budget := range budgets {
				for _, decoders := range []int{1, 3} {
					e, err := ooc.Open(stage, ooc.Options{BudgetBytes: budget, Decoders: decoders})
					if err != nil {
						t.Fatal(err)
					}
					got := la.NewMatrix(tc.dims[mode], rank)
					if err := e.MTTKRP(mode, factors, got); err != nil {
						t.Fatal(err)
					}
					for i, v := range want.Data {
						if math.Float64bits(v) != math.Float64bits(got.Data[i]) {
							t.Fatalf("order-%d mode %d budget %d (depth %d): element %d differs: %v vs %v",
								len(tc.dims), mode, budget, e.Depth(), i, got.Data[i], v)
						}
					}
					snap := e.Metrics(mode).Snapshot()
					if snap.Runs != 1 || snap.NNZ != int64(x.NNZ()) {
						t.Fatalf("metrics wrong: %+v", snap)
					}
					if snap.PrefetchTotalNS() <= 0 {
						t.Fatal("no prefetch busy time recorded")
					}
					e.Close()
				}
			}
		}
	}
}

// TestStagedWithoutDimsComment exercises the two-pass staging path:
// dims derived from max coordinates, exactly as ReadTNS derives them.
func TestStagedWithoutDimsComment(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "in.tns")
	body := "1 2 3 1.5\n4 5 1 -2\n2 2 2 0.25\n4 1 6 1\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	man, err := ooc.Stage(path, filepath.Join(dir, "staged"), ooc.StageOptions{Grid: []int{2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := nmode.ReadTNS(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for m := range want.Dims {
		if man.Dims[m] != want.Dims[m] {
			t.Fatalf("derived dims %v, want %v", man.Dims, want.Dims)
		}
	}
	if man.NNZ != int64(want.NNZ()) {
		t.Fatalf("nnz %d, want %d", man.NNZ, want.NNZ())
	}
}

// TestStageSpill forces the in-memory partition buffers to spill many
// times and checks the staged result is unchanged.
func TestStageSpill(t *testing.T) {
	x := randTensor(3, []int{12, 10, 8}, 400)
	dir := t.TempDir()
	path := filepath.Join(dir, "in.tns")
	if err := nmode.SaveTNSFile(path, x); err != nil {
		t.Fatal(err)
	}
	grid := []int{2, 2, 2}
	big, err := ooc.Stage(path, filepath.Join(dir, "a"), ooc.StageOptions{Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	// BufferBytes of 1: every add flushes.
	small, err := ooc.Stage(path, filepath.Join(dir, "b"), ooc.StageOptions{Grid: grid, BufferBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", big.Blocks) != fmt.Sprintf("%+v", small.Blocks) {
		t.Fatalf("spilled staging differs:\n%+v\n%+v", big.Blocks, small.Blocks)
	}
	a, _ := os.ReadFile(filepath.Join(dir, "a", "blocks.dat"))
	b, _ := os.ReadFile(filepath.Join(dir, "b", "blocks.dat"))
	if string(a) != string(b) {
		t.Fatal("spilled blocks.dat differs from buffered staging")
	}
	// Spill files are cleaned up.
	ents, err := os.ReadDir(filepath.Join(dir, "b"))
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if strings.HasPrefix(ent.Name(), "spill-") {
			t.Fatalf("leftover spill file %s", ent.Name())
		}
	}
}

func TestStageEmptyWithDims(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "in.tns")
	if err := os.WriteFile(path, []byte("# dims: 6 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	man, err := ooc.Stage(path, filepath.Join(dir, "staged"), ooc.StageOptions{Grid: []int{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if man.NNZ != 0 || len(man.Blocks) != 0 {
		t.Fatalf("empty stage wrong: %+v", man)
	}
	e, err := ooc.Open(filepath.Join(dir, "staged"), ooc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	out := la.NewMatrix(6, 4)
	factors := []*la.Matrix{nil, la.NewMatrix(5, 4)}
	if err := e.MTTKRP(0, factors, out); err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Data {
		if v != 0 {
			t.Fatal("empty tensor product must be zero")
		}
	}
}

func TestStageErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		path string
		opts ooc.StageOptions
	}{
		{"empty no dims", write("a.tns", "# nothing\n"), ooc.StageOptions{}},
		{"grid order mismatch", write("b.tns", "1 1 1 1\n"), ooc.StageOptions{Grid: []int{2, 2}}},
		{"coord above declared dim", write("c.tns", "# dims: 2 2 2\n3 1 1 1\n"), ooc.StageOptions{}},
		{"dims comment mismatch", write("d.tns", "# dims: 2 2\n1 1 1 1\n"), ooc.StageOptions{}},
		{"late dims comment mismatch", write("e.tns", "1 1 1 1\n# dims: 2 2\n"), ooc.StageOptions{}},
		{"parse error", write("f.tns", "1 1 x 1\n"), ooc.StageOptions{}},
	}
	for _, tc := range cases {
		if _, err := ooc.Stage(tc.path, filepath.Join(dir, "out"), tc.opts); err == nil {
			t.Errorf("%s: staged successfully", tc.name)
		}
	}
	if _, err := ooc.Stage(filepath.Join(dir, "missing.tns"), dir, ooc.StageOptions{}); err == nil {
		t.Error("missing input staged successfully")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := ooc.Open(t.TempDir(), ooc.Options{}); err == nil {
		t.Fatal("opened an unstaged directory")
	}
	x := randTensor(5, []int{8, 8, 8}, 100)
	stage, _ := stageTensor(t, x, []int{2, 2, 2})
	if _, err := ooc.Open(stage, ooc.Options{Decoders: -1}); err == nil {
		t.Fatal("negative decoders accepted")
	}
	if _, err := ooc.Open(stage, ooc.Options{BudgetBytes: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
	// Truncated payload must be rejected at open.
	data, err := os.ReadFile(filepath.Join(stage, "blocks.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stage, "blocks.dat"), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ooc.Open(stage, ooc.Options{}); err == nil {
		t.Fatal("opened truncated blocks.dat")
	}
}

func TestMTTKRPOperandErrors(t *testing.T) {
	x := randTensor(6, []int{8, 7, 6}, 150)
	stage, _ := stageTensor(t, x, []int{2, 2, 2})
	e, err := ooc.Open(stage, ooc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	r := 4
	good := []*la.Matrix{la.NewMatrix(8, r), la.NewMatrix(7, r), la.NewMatrix(6, r)}
	out := la.NewMatrix(8, r)
	if err := e.MTTKRP(3, good, out); err == nil {
		t.Fatal("mode out of range accepted")
	}
	if err := e.MTTKRP(0, good[:2], out); err == nil {
		t.Fatal("short factor list accepted")
	}
	if err := e.MTTKRP(0, []*la.Matrix{nil, nil, good[2]}, out); err == nil {
		t.Fatal("missing factor accepted")
	}
	if err := e.MTTKRP(0, good, la.NewMatrix(5, r)); err == nil {
		t.Fatal("wrong-shape output accepted")
	}
	if err := e.MTTKRP(0, []*la.Matrix{nil, la.NewMatrix(7, r+1), good[2]}, out); err == nil {
		t.Fatal("rank-mismatched factor accepted")
	}
}

// faultSource injects a read failure on one block to exercise the
// pipeline's error drain: the run must return the error promptly with
// no goroutine leak or hang, and the engine must stay usable.
type faultSource struct {
	ooc.BlockSource
	failID int
}

func (s *faultSource) ReadBlock(b ooc.BlockInfo, dst []byte) error {
	if b.ID == s.failID {
		return fmt.Errorf("injected read failure on block %d", b.ID)
	}
	return s.BlockSource.ReadBlock(b, dst)
}

func TestDecodeFailureDrainsPipeline(t *testing.T) {
	x := randTensor(8, []int{12, 11, 10}, 500)
	stage, man := stageTensor(t, x, []int{3, 2, 2})
	src, err := ooc.OpenSource(stage)
	if err != nil {
		t.Fatal(err)
	}
	failID := man.Blocks[len(man.Blocks)/2].ID
	e, err := ooc.NewEngine(&faultSource{BlockSource: src, failID: failID}, ooc.Options{Decoders: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	r := 5
	factors := []*la.Matrix{nil, la.NewMatrix(11, r), la.NewMatrix(10, r)}
	out := la.NewMatrix(12, r)
	if err := e.MTTKRP(0, factors, out); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("err = %v, want injected failure", err)
	}
	// A later product over a healthy source path must not be poisoned
	// by the failed run's state.
	healthy, err := ooc.Open(stage, ooc.Options{Decoders: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	for m := range factors {
		factors[m] = la.NewMatrix(x.Dims[m], r)
	}
	if err := healthy.MTTKRP(0, factors, out); err != nil {
		t.Fatal(err)
	}
}
