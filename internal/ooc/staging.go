// Package ooc is the out-of-core MTTKRP/CP-ALS execution path for
// tensors larger than RAM, following Nguyen et al.'s out-of-memory
// MTTKRP design: the paper's MB spatial blocks are the disk staging
// unit. Stage streams a FROSTT .tns file through one bounded-memory
// pass, partitioning nonzeros into grid blocks spilled to an on-disk
// staging format; Engine then runs MTTKRP with only a small working
// set of decoded blocks plus the factor matrices resident, refilled by
// a prefetch pipeline that overlaps IO and decode with kernel
// execution.
//
// The streamed product is bit-identical to the in-memory blocked
// executor's at any worker count: both visit each output row's blocks
// in ascending block id (the in-memory path walks root layers with
// blocks id-ordered inside each layer; a row belongs to exactly one
// layer), both build each block's CSF with the same stable sort and
// mode order, and both dispatch the same width-specialized leaf
// kernel. See DESIGN.md §14.
package ooc

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"spblock/internal/nmode"
)

const (
	manifestFile = "manifest.json"
	blocksFile   = "blocks.dat"
	// manifestVersion is bumped on any staging-format change; Open
	// rejects directories staged by a different version.
	manifestVersion = 1
	// maxBlocks bounds the grid product, mirroring BuildBlocked's
	// sanity cap but tighter: staging keeps per-block bookkeeping.
	maxBlocks = 1 << 20
)

// BlockInfo locates one non-empty block's records inside blocks.dat.
type BlockInfo struct {
	// ID is the row-major flattening of the block coordinates — the
	// same id formula BuildBlocked uses, so staged ids and in-memory
	// block ids coincide.
	ID int `json:"id"`
	// NNZ is the block's stored nonzero count.
	NNZ int `json:"nnz"`
	// Off is the byte offset of the block's first record.
	Off int64 `json:"off"`
}

// Manifest describes a staged tensor: the shape, the blocking grid,
// and the id-ascending block directory. It is written as
// manifest.json next to blocks.dat, whose payload is the concatenation
// of every non-empty block's records in id order. A record is the
// block-local storage of one nonzero: order little-endian uint32
// coordinates (global, zero-based) followed by the float64 value bits.
// Records within a block preserve the input file's relative order —
// the property the stable CSF sort needs for bit-identity with the
// in-memory path.
type Manifest struct {
	Version int   `json:"version"`
	Dims    []int `json:"dims"`
	Grid    []int `json:"grid"`
	// NNZ is the total stored nonzero count (duplicates preserved,
	// exactly as ReadTNS stores them).
	NNZ int64 `json:"nnz"`
	// NormSq is Σv² accumulated in file order — the same summation
	// order the in-memory CP-ALS drivers use for ‖X‖², so the fit
	// trajectories agree bit for bit. It is persisted as IEEE 754 bits
	// (NormSqBits): a bit pattern survives JSON exactly and encodes
	// NaN/Inf, which encoding/json refuses as a float.
	NormSq     float64     `json:"-"`
	NormSqBits uint64      `json:"norm_sq_bits"`
	Blocks     []BlockInfo `json:"blocks"`
}

// Order returns the number of modes.
func (m *Manifest) Order() int { return len(m.Dims) }

// BlockDims returns the per-mode block edge lengths, ceil(dim/grid) —
// identical to BlockedTensor.BlockDims.
func (m *Manifest) BlockDims() []int {
	bd := make([]int, len(m.Dims))
	for i := range m.Dims {
		bd[i] = (m.Dims[i] + m.Grid[i] - 1) / m.Grid[i]
	}
	return bd
}

// recordBytes is the encoded size of one nonzero at the given order.
//
//spblock:hotpath
func recordBytes(order int) int { return 4*order + 8 }

// maxBlockNNZ returns the largest per-block nonzero count.
func (m *Manifest) maxBlockNNZ() int {
	mx := 0
	for _, b := range m.Blocks {
		if b.NNZ > mx {
			mx = b.NNZ
		}
	}
	return mx
}

// maxBlockDim returns the largest block edge length across modes — the
// counting-sort bucket bound.
func (m *Manifest) maxBlockDim() int {
	mx := 0
	for _, d := range m.BlockDims() {
		if d > mx {
			mx = d
		}
	}
	return mx
}

// SlotBytes estimates the decoded in-memory footprint of one prefetch
// slot: every slot is pre-sized to the largest block so the
// steady-state pipeline never reallocates. This is the unit
// Options.BudgetBytes is divided by.
func (m *Manifest) SlotBytes() int64 {
	return slotFootprint(m.Order(), m.maxBlockNNZ(), m.maxBlockDim())
}

// TotalBlockBytes is the decoded footprint of keeping every block
// resident at once — the denominator for "working-set budget as a
// fraction of the tensor". A budget of TotalBlockBytes or more keeps
// the whole tensor in flight; 25% keeps a quarter of the slots.
func (m *Manifest) TotalBlockBytes() int64 {
	return m.SlotBytes() * int64(len(m.Blocks))
}

// StageOptions configures Stage.
type StageOptions struct {
	// Grid is the blocking grid, one entry per mode; entries are
	// clamped to [1, dim] like the in-memory executors. nil defaults
	// to 4 per mode (clamped). The grid is part of the staged layout:
	// MTTKRP over the staged tensor is bit-identical to the in-memory
	// blocked executor run with this same grid.
	Grid []int
	// BufferBytes bounds the in-memory partition buffers during the
	// staging pass; when the buffered total exceeds it, every buffer
	// is appended to its block's spill file and released. Default
	// 32 MiB. The bound is on buffered payload, so staging memory
	// stays O(BufferBytes + one line), independent of tensor size.
	BufferBytes int64
}

// blockBuf is the staging-side state of one (possibly future) block.
type blockBuf struct {
	mem     []byte
	nnz     int
	spilled bool
}

// stager owns the single bounded-memory partitioning pass.
type stager struct {
	dir       string
	dims      []int
	grid      []int
	blockDims []int
	bufBytes  int64

	bufs     []*blockBuf
	buffered int64
	nnz      int64
	normSq   float64
	rec      []byte
}

// Stage streams the .tns file at tnsPath into the staging directory
// dir (created if needed), producing blocks.dat + manifest.json. The
// pass is bounded-memory: one line plus StageOptions.BufferBytes of
// partition buffers, spilled per block when full. When the file
// carries a "# dims:" comment before its first data line the tensor
// is staged in a single pass; otherwise a first scan derives the mode
// lengths from the maximum coordinates (exactly like ReadTNS) and a
// second pass partitions. Parsing is shared with ReadTNS via
// nmode.TNSStream, so the two paths accept identical inputs.
func Stage(tnsPath, dir string, opts StageOptions) (*Manifest, error) {
	f, err := os.Open(tnsPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	st := nmode.NewTNSStream(f)
	coords, val, err := st.Next()
	if err == io.EOF {
		declared := st.DeclaredDims()
		if declared == nil {
			return nil, fmt.Errorf("ooc: %w", nmode.ErrNoData)
		}
		s, err := newStager(dir, declared, opts)
		if err != nil {
			return nil, err
		}
		return s.finish()
	}
	if err != nil {
		return nil, err
	}

	order := len(coords)
	if declared := st.DeclaredDims(); len(declared) > 0 {
		// Dims known up front: single-pass staging.
		if len(declared) != order {
			return nil, fmt.Errorf("nmode: dims comment has %d modes, data has %d", len(declared), order)
		}
		s, err := newStager(dir, declared, opts)
		if err != nil {
			return nil, err
		}
		if err := s.add(coords, val); err != nil {
			return nil, err
		}
		for {
			coords, val, err = st.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			if err := s.add(coords, val); err != nil {
				return nil, err
			}
		}
		if d := st.DeclaredDims(); len(d) != order {
			return nil, fmt.Errorf("nmode: dims comment has %d modes, data has %d", len(d), order)
		}
		return s.finish()
	}

	// No dims comment yet: finish scanning to derive the shape, then
	// re-stream and partition.
	for {
		if _, _, err = st.Next(); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
	}
	var dims []int
	if declared := st.DeclaredDims(); declared != nil {
		if len(declared) != order {
			return nil, fmt.Errorf("nmode: dims comment has %d modes, data has %d", len(declared), order)
		}
		dims = declared
	} else {
		dims = make([]int, order)
		for m, mc := range st.MaxCoords() {
			dims[m] = int(mc)
		}
	}
	s, err := newStager(dir, dims, opts)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	st = nmode.NewTNSStream(f)
	for {
		coords, val, err = st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := s.add(coords, val); err != nil {
			return nil, err
		}
	}
	return s.finish()
}

func newStager(dir string, dims []int, opts StageOptions) (*stager, error) {
	order := len(dims)
	for m, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("ooc: mode %d has non-positive length %d", m, d)
		}
	}
	grid := opts.Grid
	if grid == nil {
		grid = make([]int, order)
		for m := range grid {
			grid[m] = 4
		}
	}
	if len(grid) != order {
		return nil, fmt.Errorf("ooc: grid %v for order-%d tensor", grid, order)
	}
	norm := make([]int, order)
	total := 1
	for m, g := range grid {
		if g < 1 {
			g = 1
		}
		if g > dims[m] {
			g = dims[m]
		}
		norm[m] = g
		total *= g
		if total > maxBlocks {
			return nil, fmt.Errorf("ooc: grid %v yields more than %d blocks", grid, maxBlocks)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &stager{
		dir:       dir,
		dims:      append([]int(nil), dims...),
		grid:      norm,
		blockDims: make([]int, order),
		bufBytes:  opts.BufferBytes,
		bufs:      make([]*blockBuf, total),
		rec:       make([]byte, recordBytes(order)),
	}
	if s.bufBytes <= 0 {
		s.bufBytes = 32 << 20
	}
	for m := range dims {
		s.blockDims[m] = (dims[m] + norm[m] - 1) / norm[m]
	}
	return s, nil
}

// add partitions one nonzero into its block buffer, spilling all
// buffers to disk when the in-memory bound is exceeded.
func (s *stager) add(coords []nmode.Index, val float64) error {
	id := 0
	off := 0
	for m, c := range coords {
		if int(c) >= s.dims[m] {
			return fmt.Errorf("%w: entry %d mode %d coordinate %d outside [0,%d)",
				nmode.ErrBadTensor, s.nnz, m, c, s.dims[m])
		}
		id = id*s.grid[m] + int(c)/s.blockDims[m]
		binary.LittleEndian.PutUint32(s.rec[off:], uint32(c))
		off += 4
	}
	binary.LittleEndian.PutUint64(s.rec[off:], math.Float64bits(val))
	b := s.bufs[id]
	if b == nil {
		b = &blockBuf{}
		s.bufs[id] = b
	}
	b.mem = append(b.mem, s.rec...)
	b.nnz++
	s.buffered += int64(len(s.rec))
	s.nnz++
	s.normSq += val * val
	if s.buffered > s.bufBytes {
		return s.spillAll()
	}
	return nil
}

func (s *stager) spillPath(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("spill-%d.bin", id))
}

// spillAll appends every buffered partition to its block's spill file
// and releases the buffers. Files are opened and closed per flush so
// the descriptor count stays O(1) regardless of the block count.
func (s *stager) spillAll() error {
	for id, b := range s.bufs {
		if b == nil || len(b.mem) == 0 {
			continue
		}
		f, err := os.OpenFile(s.spillPath(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(b.mem); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		b.spilled = true
		b.mem = b.mem[:0]
	}
	s.buffered = 0
	return nil
}

// finish concatenates the partitions into blocks.dat in block-id order
// (spilled bytes first, then the in-memory remainder — together the
// file order of the block's records), removes the spill files, and
// writes the manifest.
func (s *stager) finish() (*Manifest, error) {
	man := &Manifest{
		Version:    manifestVersion,
		Dims:       s.dims,
		Grid:       s.grid,
		NNZ:        s.nnz,
		NormSq:     s.normSq,
		NormSqBits: math.Float64bits(s.normSq),
		Blocks:     []BlockInfo{},
	}
	out, err := os.Create(filepath.Join(s.dir, blocksFile))
	if err != nil {
		return nil, err
	}
	var off int64
	for id, b := range s.bufs {
		if b == nil || b.nnz == 0 {
			continue
		}
		if b.spilled {
			sp, err := os.Open(s.spillPath(id))
			if err != nil {
				out.Close()
				return nil, err
			}
			n, err := io.Copy(out, sp)
			sp.Close()
			if err != nil {
				out.Close()
				return nil, err
			}
			if err := os.Remove(s.spillPath(id)); err != nil {
				out.Close()
				return nil, err
			}
			off += n
		}
		if len(b.mem) > 0 {
			if _, err := out.Write(b.mem); err != nil {
				out.Close()
				return nil, err
			}
			off += int64(len(b.mem))
		}
		man.Blocks = append(man.Blocks, BlockInfo{
			ID:  id,
			NNZ: b.nnz,
			Off: off - int64(b.nnz)*int64(recordBytes(len(s.dims))),
		})
	}
	if err := out.Close(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(s.dir, manifestFile), append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	return man, nil
}

// LoadManifest reads and validates a staged directory's manifest.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("ooc: bad manifest: %v", err)
	}
	if man.Version != manifestVersion {
		return nil, fmt.Errorf("ooc: manifest version %d, want %d", man.Version, manifestVersion)
	}
	order := len(man.Dims)
	if order < 2 || len(man.Grid) != order {
		return nil, fmt.Errorf("ooc: malformed manifest shape dims=%v grid=%v", man.Dims, man.Grid)
	}
	for m := 0; m < order; m++ {
		if man.Dims[m] <= 0 || man.Grid[m] < 1 || man.Grid[m] > man.Dims[m] {
			return nil, fmt.Errorf("ooc: malformed manifest shape dims=%v grid=%v", man.Dims, man.Grid)
		}
	}
	rec := int64(recordBytes(order))
	var nnz int64
	prevEnd := int64(0)
	prevID := -1
	for _, b := range man.Blocks {
		if b.ID <= prevID || b.NNZ <= 0 || b.Off != prevEnd {
			return nil, fmt.Errorf("ooc: malformed block directory at id %d", b.ID)
		}
		prevID = b.ID
		prevEnd = b.Off + int64(b.NNZ)*rec
		nnz += int64(b.NNZ)
	}
	if nnz != man.NNZ {
		return nil, fmt.Errorf("ooc: manifest nnz %d but blocks sum to %d", man.NNZ, nnz)
	}
	man.NormSq = math.Float64frombits(man.NormSqBits)
	return &man, nil
}
