package ooc

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"spblock/internal/la"
	"spblock/internal/metrics"
	"spblock/internal/nmode"
)

// Options configures the out-of-core executor.
type Options struct {
	// BudgetBytes bounds the decoded working set: the pipeline holds
	// BudgetBytes / Manifest.SlotBytes() block slots (clamped to
	// [1, number of blocks]). 0 means the minimum overlapping
	// pipeline of two slots. Factor matrices and the output are the
	// caller's and not counted.
	BudgetBytes int64
	// Decoders is the number of parallel read+decode goroutines,
	// clamped to [1, slot count]. Default 2.
	Decoders int
}

// block is one prefetch slot: the raw read buffer, the decoded
// coordinates, and the per-slot CSF built over preallocated backing
// arrays. Every slot is sized for the largest staged block at Open, so
// the steady-state pipeline never grows a buffer.
type block struct {
	seq    int
	failed bool

	raw  []byte
	idx  [][]nmode.Index
	val  []float64
	perm []int32
	tmp  []int32

	csf  nmode.CSF
	ids  [][]nmode.Index
	ptrs [][]int32
	cval []float64

	counts []int32
}

// slotFootprint is the decoded per-slot memory estimate Open sizes
// budgets against: raw records, coordinate/value arrays, sort scratch,
// counting-sort buckets, and the CSF backing arrays.
func slotFootprint(order, nnz, maxLocalDim int) int64 {
	n := int64(nnz)
	o := int64(order)
	s := n * int64(recordBytes(order)) // raw
	s += o * 4 * n                     // idx
	s += 8 * n                         // val
	s += 2 * 4 * n                     // perm + tmp
	s += 4 * int64(maxLocalDim+1)      // counts
	s += o * 4 * n                     // csf ids
	s += (o - 1) * 4 * (n + 1)         // csf ptrs
	s += 8 * n                         // csf vals
	return s
}

// Engine runs MTTKRP products over a staged tensor with a bounded
// working set, implementing als.Kernel so the shared CP-ALS sweep loop
// drives it unchanged. Blocks flow through a depth-bounded pipeline:
// decoder goroutines claim block indices from an atomic counter, read
// and decode them into free slots, and hand them to the consuming Run
// goroutine, which reorders them into flat block-id order (the order
// that makes the output bit-identical to the in-memory blocked
// executor), walks each with the pooled kernel walker, and recycles
// the slot through the free list. Steady-state products perform no
// heap allocations.
//
// Like the in-memory executors, an Engine must not run two products
// concurrently with itself.
type Engine struct {
	src    BlockSource
	man    *Manifest
	order  int
	dims   []int
	bases  [][]nmode.Index // bases[i][m]: block i's base coordinate in mode m
	maxDim []int           // per mode: block-local coordinate bound

	modeOrders [][]int
	depth      int
	ndec       int
	slotBytes  int64

	freec  chan *block
	outc   chan *block
	ring   []*block
	decFns []func()
	wg     sync.WaitGroup
	next   atomic.Int64
	abort  atomic.Bool
	errMu  sync.Mutex
	runErr error
	mode   int

	rank int
	wk   *nmode.Walker
	met  []metrics.Collector
}

// Open opens a staged directory as an out-of-core engine.
func Open(dir string, opts Options) (*Engine, error) {
	src, err := OpenSource(dir)
	if err != nil {
		return nil, err
	}
	e, err := NewEngine(src, opts)
	if err != nil {
		src.Close()
		return nil, err
	}
	return e, nil
}

// NewEngine builds the prefetch pipeline over an already-open source.
// The engine takes ownership of src: Close closes it.
func NewEngine(src BlockSource, opts Options) (*Engine, error) {
	man := src.Manifest()
	order := man.Order()
	if opts.Decoders < 0 {
		return nil, fmt.Errorf("ooc: negative decoder count %d", opts.Decoders)
	}
	if opts.BudgetBytes < 0 {
		return nil, fmt.Errorf("ooc: negative budget %d", opts.BudgetBytes)
	}
	e := &Engine{
		src:   src,
		man:   man,
		order: order,
		dims:  append([]int(nil), man.Dims...),
	}
	blockDims := man.BlockDims()
	e.maxDim = blockDims
	e.bases = make([][]nmode.Index, len(man.Blocks))
	for i, b := range man.Blocks {
		base := make([]nmode.Index, order)
		id := b.ID
		for m := order - 1; m >= 0; m-- {
			base[m] = nmode.Index((id % man.Grid[m]) * blockDims[m])
			id /= man.Grid[m]
		}
		e.bases[i] = base
	}
	e.modeOrders = make([][]int, order)
	for m := 0; m < order; m++ {
		e.modeOrders[m] = nmode.DefaultModeOrder(e.dims, m)
	}

	nb := len(man.Blocks)
	maxNNZ := man.maxBlockNNZ()
	maxLocal := man.maxBlockDim()
	e.slotBytes = slotFootprint(order, maxNNZ, maxLocal)
	depth := 2
	if opts.BudgetBytes > 0 {
		depth = int(opts.BudgetBytes / e.slotBytes)
	}
	if depth < 1 {
		depth = 1
	}
	if nb > 0 && depth > nb {
		depth = nb
	}
	e.depth = depth
	ndec := opts.Decoders
	if ndec == 0 {
		ndec = 2
	}
	if ndec > depth {
		ndec = depth
	}
	e.ndec = ndec

	e.freec = make(chan *block, depth)
	e.outc = make(chan *block, depth)
	e.ring = make([]*block, depth)
	for i := 0; i < depth; i++ {
		e.freec <- newSlot(order, maxNNZ, maxLocal, e.dims)
	}
	e.decFns = make([]func(), ndec)
	for w := 0; w < ndec; w++ {
		e.decFns[w] = e.decodeLoop(w)
	}
	e.met = make([]metrics.Collector, order)
	for m := range e.met {
		e.met[m].SizeWorkers(1)
		e.met[m].SizePrefetchers(ndec)
	}
	return e, nil
}

func newSlot(order, maxNNZ, maxLocal int, dims []int) *block {
	b := &block{
		raw:    make([]byte, maxNNZ*recordBytes(order)),
		idx:    make([][]nmode.Index, order),
		val:    make([]float64, maxNNZ),
		perm:   make([]int32, maxNNZ),
		tmp:    make([]int32, maxNNZ),
		ids:    make([][]nmode.Index, order),
		ptrs:   make([][]int32, order-1),
		cval:   make([]float64, 0, maxNNZ),
		counts: make([]int32, maxLocal+1),
	}
	for m := 0; m < order; m++ {
		b.idx[m] = make([]nmode.Index, maxNNZ)
		b.ids[m] = make([]nmode.Index, 0, maxNNZ)
	}
	for d := 0; d < order-1; d++ {
		b.ptrs[d] = make([]int32, 0, maxNNZ+1)
	}
	b.csf.Dims = dims
	b.csf.ID = make([][]nmode.Index, order)
	b.csf.Ptr = make([][]int32, order-1)
	return b
}

// Close releases the block source. The engine must be quiescent.
func (e *Engine) Close() error { return e.src.Close() }

// Dims returns the tensor shape (als.Kernel).
func (e *Engine) Dims() []int { return e.dims }

// NNZ returns the staged nonzero count.
func (e *Engine) NNZ() int64 { return e.man.NNZ }

// NormSq returns Σv² accumulated in file order at staging time — the
// ‖X‖² the CP-ALS fit identity needs, with the same summation order as
// the in-memory drivers.
func (e *Engine) NormSq() float64 { return e.man.NormSq }

// NumBlocks returns the number of non-empty staged blocks.
func (e *Engine) NumBlocks() int { return len(e.man.Blocks) }

// Depth returns the pipeline depth in slots — the resident working set
// BudgetBytes bought.
func (e *Engine) Depth() int { return e.depth }

// Decoders returns the decoder goroutine count.
func (e *Engine) Decoders() int { return e.ndec }

// WorkingSetBytes returns the decoded resident footprint (depth×slot).
func (e *Engine) WorkingSetBytes() int64 { return e.slotBytes * int64(e.depth) }

// Metrics returns mode m's collector (IO-wait, prefetch busy time and
// the usual per-run counters). Snapshot between products, never mid
// product.
func (e *Engine) Metrics(mode int) *metrics.Collector { return &e.met[mode] }

//spblock:coldpath
func (e *Engine) checkOperands(mode int, factors []*la.Matrix, out *la.Matrix) error {
	if mode < 0 || mode >= e.order {
		return fmt.Errorf("ooc: mode %d out of range [0,%d)", mode, e.order)
	}
	if len(factors) != e.order {
		return fmt.Errorf("ooc: %d factors for order-%d tensor", len(factors), e.order)
	}
	r := out.Cols
	if r <= 0 {
		return fmt.Errorf("ooc: rank must be positive")
	}
	if out.Rows != e.dims[mode] {
		return fmt.Errorf("ooc: out has %d rows, want %d", out.Rows, e.dims[mode])
	}
	for m := 0; m < e.order; m++ {
		if m == mode {
			continue
		}
		f := factors[m]
		if f == nil {
			return fmt.Errorf("ooc: missing factor for mode %d", m)
		}
		if f.Cols != r || f.Rows != e.dims[m] {
			return fmt.Errorf("ooc: factor for mode %d is %dx%d, want %dx%d",
				m, f.Rows, f.Cols, e.dims[m], r)
		}
	}
	return nil
}

// ensure re-sizes the pooled walker on rank changes — the engine's
// amortised cold path, mirroring the in-memory executors.
//
//spblock:coldpath
func (e *Engine) ensure(r int) {
	if e.rank == r {
		return
	}
	e.rank = r
	e.wk = nmode.NewWalker(e.order, r)
	for m := range e.met {
		e.met[m].SetKernel(e.wk.Kernel())
		// Fibers are unknown without building every tree; the traffic
		// estimate prices the nnz terms only.
		e.met[m].SetPerRun(metrics.PerRun{
			NNZ:      e.man.NNZ,
			Blocks:   int64(len(e.man.Blocks)),
			BytesEst: metrics.EqBytes(e.man.NNZ, 0, r, 1),
		})
	}
}

// MTTKRP streams the staged blocks through the prefetch pipeline and
// accumulates the mode-`mode` product into out (als.Kernel). Blocks
// are consumed in flat block-id order — ascending id within every root
// layer — so the per-row accumulation order, and therefore every
// output bit, matches the in-memory blocked executor at any worker
// count. Steady-state calls at a fixed rank are allocation-free.
//
//spblock:hotpath
func (e *Engine) MTTKRP(mode int, factors []*la.Matrix, out *la.Matrix) error {
	if err := e.checkOperands(mode, factors, out); err != nil {
		return err
	}
	e.ensure(out.Cols)
	met := &e.met[mode]
	start := time.Now()
	out.Zero()
	nb := len(e.man.Blocks)
	if nb == 0 {
		met.EndRun(start)
		return nil
	}
	e.mode = mode
	e.runErr = nil
	e.abort.Store(false)
	e.next.Store(0)
	e.wg.Add(e.ndec)
	for _, fn := range e.decFns {
		go fn()
	}
	for want := 0; want < nb; {
		b := e.ring[want%e.depth]
		if b == nil {
			t0 := time.Now()
			got := <-e.outc
			met.AddIOWait(time.Since(t0))
			e.ring[got.seq%e.depth] = got
			continue
		}
		e.ring[want%e.depth] = nil
		if !b.failed && !e.abort.Load() {
			e.wk.Walk(&b.csf, factors, out)
		}
		b.failed = false
		e.freec <- b
		want++
	}
	e.wg.Wait()
	met.EndRun(start)
	return e.runErr
}

// fail records the first decode error and stops further claims; the
// pipeline still drains every remaining sequence slot so the run ends
// without a hang.
func (e *Engine) fail(err error) {
	e.errMu.Lock()
	if e.runErr == nil {
		e.runErr = err
	}
	e.errMu.Unlock()
	e.abort.Store(true)
}

// decodeLoop builds decoder w's prebuilt goroutine body: claim the
// next block index, take a free slot, read + decode + build the CSF,
// hand the slot to the consumer. Busy time (read+decode only, not
// backpressure waits) goes to the decoder's prefetch bucket.
func (e *Engine) decodeLoop(w int) func() {
	return func() {
		defer e.wg.Done()
		nb := int64(len(e.man.Blocks))
		for {
			i := e.next.Add(1) - 1
			if i >= nb {
				return
			}
			b := <-e.freec
			b.seq = int(i)
			if e.abort.Load() {
				b.failed = true
			} else {
				t0 := time.Now()
				err := e.decode(b, int(i))
				e.met[e.mode].AddPrefetch(w, time.Since(t0))
				if err != nil {
					e.fail(err)
					b.failed = true
				}
			}
			e.outc <- b
		}
	}
}

// decode reads block i and rebuilds its CSF into b's pooled arrays:
// positioned read, record parse, stable block-local counting sort in
// the mode order, then the same boundary-based level emission
// nmode.Build uses — so the tree (and the walk over it) is identical
// to the in-memory BuildBlocked block.
//
//spblock:hotpath
func (e *Engine) decode(b *block, i int) error {
	info := e.man.Blocks[i]
	nnz := info.NNZ
	raw := b.raw[:nnz*recordBytes(e.order)]
	if err := e.src.ReadBlock(info, raw); err != nil {
		return err
	}
	parseRecords(raw, b.idx, b.val, nnz)
	mo := e.modeOrders[e.mode]
	perm := e.sortLocal(b, i, mo)
	e.buildCSF(b, mo, perm, nnz)
	return nil
}

// sortLocal stable-sorts block i's nonzeros lexicographically by mo
// (mo[0] most significant) via the same LSD counting sort as
// Tensor.SortByModes, but with block-local keys: coordinates shifted
// by the block base index into buckets bounded by the block edge
// length. The shift preserves order, and both sorts are stable, so
// the resulting permutation equals the in-memory sort's restriction
// to this block. Returns the permutation slice (perm or tmp,
// depending on pass parity).
//
//spblock:hotpath
func (e *Engine) sortLocal(b *block, i int, mo []int) []int32 {
	nnz := e.man.Blocks[i].NNZ
	base := e.bases[i]
	p := b.perm[:nnz]
	q := b.tmp[:nnz]
	for j := range p {
		p[j] = int32(j)
	}
	for lvl := e.order - 1; lvl >= 0; lvl-- {
		m := mo[lvl]
		key := b.idx[m]
		lo := base[m]
		nbk := e.maxDim[m]
		counts := b.counts[:nbk+1]
		clear(counts)
		for _, x := range p {
			counts[key[x]-lo+1]++
		}
		for d := 0; d < nbk; d++ {
			counts[d+1] += counts[d]
		}
		for _, x := range p {
			k := key[x] - lo
			q[counts[k]] = x
			counts[k]++
		}
		p, q = q, p
	}
	return p
}

// buildCSF emits the level ids and child pointers from the sorted
// order into the slot's preallocated backing arrays, replicating
// nmode.Build's boundary construction (duplicates of the predecessor
// still form their own leaf).
//
//spblock:hotpath
func (e *Engine) buildCSF(b *block, mo []int, perm []int32, nnz int) {
	n := e.order
	// The non-final sort buffer is free scratch now: reuse it for the
	// per-leaf boundary levels.
	bnd := b.tmp
	if &bnd[0] == &perm[0] {
		bnd = b.perm
	}
	bnd = bnd[:nnz]
	bnd[0] = 0
	for p := 1; p < nnz; p++ {
		bb := int32(n - 1)
		for d := 0; d < n; d++ {
			if b.idx[mo[d]][perm[p]] != b.idx[mo[d]][perm[p-1]] {
				bb = int32(d)
				break
			}
		}
		bnd[p] = bb
	}
	for d := 0; d < n; d++ {
		ids := b.ids[d][:0]
		key := b.idx[mo[d]]
		if d < n-1 {
			ptr := b.ptrs[d][:0]
			children := int32(0)
			for p := 0; p < nnz; p++ {
				if int(bnd[p]) <= d {
					ids = append(ids, key[perm[p]]) //spblock:allow slot arrays are pre-capped to the manifest's largest block at Open; AllocsPerRun pins 0
					ptr = append(ptr, children)     //spblock:allow same pre-capped slot backing as ids
				}
				if int(bnd[p]) <= d+1 {
					children++
				}
			}
			b.csf.Ptr[d] = append(ptr, children) //spblock:allow ptr capacity is nnz+1, reserved at slot construction
		} else {
			for p := 0; p < nnz; p++ {
				ids = append(ids, key[perm[p]]) //spblock:allow leaf ids share the same pre-capped slot backing
			}
		}
		b.csf.ID[d] = ids
	}
	cval := b.cval[:0]
	for p := 0; p < nnz; p++ {
		cval = append(cval, b.val[perm[p]]) //spblock:allow cval is pre-capped to the largest block's nnz at Open
	}
	b.csf.Val = cval
	b.csf.ModeOrder = mo
}

// parseRecords decodes nnz staged records into the coordinate and
// value arrays.
//
//spblock:hotpath
func parseRecords(raw []byte, idx [][]nmode.Index, val []float64, nnz int) {
	order := len(idx)
	off := 0
	for p := 0; p < nnz; p++ {
		for m := 0; m < order; m++ {
			idx[m][p] = nmode.Index(binary.LittleEndian.Uint32(raw[off:]))
			off += 4
		}
		val[p] = math.Float64frombits(binary.LittleEndian.Uint64(raw[off:]))
		off += 8
	}
}
