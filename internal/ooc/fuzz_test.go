package ooc_test

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"spblock/internal/nmode"
	"spblock/internal/ooc"
)

// FuzzStageAgainstReadTNS cross-checks the chunked streaming reader
// against the in-memory parser: whatever ReadTNS accepts, Stage must
// accept, and the staged blocks must hold exactly the same multiset of
// nonzeros under the same dims — with per-block file order preserved.
// Whatever ReadTNS rejects, Stage must reject too (the two paths share
// nmode.TNSStream, so parse behaviour cannot drift).
func FuzzStageAgainstReadTNS(f *testing.F) {
	seeds := []string{
		"1 1 1 5.0\n",
		"# dims: 3 4 2\n1 2 1 -1\n3 4 2 2.5\n3 4 2 2.5\n",
		"2 3 1 4 -2\n1 1 1 1 1\n",
		"# dims: 5 5\n",
		"# comment\n\n10 1 1 7\n1 1 1 nan\n",
		"1 1 2\n",
		"# dims: 2 2\n1 1 1 1\n",
		"5 1 1\n1 9 1e3\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		want, werr := nmode.ReadTNS(strings.NewReader(input))
		dir := t.TempDir()
		path := filepath.Join(dir, "in.tns")
		if err := os.WriteFile(path, []byte(input), 0o644); err != nil {
			t.Fatal(err)
		}
		stage := filepath.Join(dir, "staged")
		man, serr := ooc.Stage(path, stage, ooc.StageOptions{})
		if werr != nil {
			if serr == nil {
				t.Fatalf("ReadTNS rejected (%v) but Stage accepted", werr)
			}
			return
		}
		if serr != nil {
			t.Fatalf("ReadTNS accepted but Stage rejected: %v", serr)
		}
		if man.NNZ != int64(want.NNZ()) {
			t.Fatalf("staged %d nnz, want %d", man.NNZ, want.NNZ())
		}
		for m := range want.Dims {
			if man.Dims[m] != want.Dims[m] {
				t.Fatalf("staged dims %v, want %v", man.Dims, want.Dims)
			}
		}
		got := decodeStaged(t, stage, man)
		// Same multiset: sort both by coordinates then value bits.
		sortEntries(got)
		wantEntries := tensorEntries(want)
		sortEntries(wantEntries)
		if len(got) != len(wantEntries) {
			t.Fatalf("decoded %d entries, want %d", len(got), len(wantEntries))
		}
		for i := range got {
			if !sameEntry(got[i], wantEntries[i]) {
				t.Fatalf("entry %d: %v vs %v", i, got[i], wantEntries[i])
			}
		}
	})
}

type entry struct {
	coords []nmode.Index
	bits   uint64
}

func tensorEntries(x *nmode.Tensor) []entry {
	es := make([]entry, x.NNZ())
	for p := range es {
		es[p] = entry{coords: x.Coord(p, nil), bits: math.Float64bits(x.Val[p])}
	}
	return es
}

// decodeStaged reads blocks.dat back record by record, checking each
// coordinate lands inside its block's box.
func decodeStaged(t *testing.T, dir string, man *ooc.Manifest) []entry {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "blocks.dat"))
	if err != nil {
		t.Fatal(err)
	}
	order := man.Order()
	bd := man.BlockDims()
	rec := 4*order + 8
	var es []entry
	for _, b := range man.Blocks {
		base := make([]int, order)
		id := b.ID
		for m := order - 1; m >= 0; m-- {
			base[m] = (id % man.Grid[m]) * bd[m]
			id /= man.Grid[m]
		}
		off := int(b.Off)
		for p := 0; p < b.NNZ; p++ {
			e := entry{coords: make([]nmode.Index, order)}
			for m := 0; m < order; m++ {
				c := int(binary.LittleEndian.Uint32(data[off:]))
				off += 4
				if c < base[m] || c >= base[m]+bd[m] || c >= man.Dims[m] {
					t.Fatalf("block %d record %d mode %d: coord %d outside box [%d,%d) dims %v",
						b.ID, p, m, c, base[m], base[m]+bd[m], man.Dims)
				}
				e.coords[m] = nmode.Index(c)
			}
			e.bits = binary.LittleEndian.Uint64(data[off:])
			off += 8
			es = append(es, e)
		}
		if off != int(b.Off)+b.NNZ*rec {
			t.Fatalf("block %d: consumed %d bytes, want %d records of %d bytes",
				b.ID, off-int(b.Off), b.NNZ, rec)
		}
	}
	return es
}

func sortEntries(es []entry) {
	sort.SliceStable(es, func(a, b int) bool {
		for m := range es[a].coords {
			if es[a].coords[m] != es[b].coords[m] {
				return es[a].coords[m] < es[b].coords[m]
			}
		}
		return es[a].bits < es[b].bits
	})
}

func sameEntry(a, b entry) bool {
	if a.bits != b.bits {
		return false
	}
	for m := range a.coords {
		if a.coords[m] != b.coords[m] {
			return false
		}
	}
	return true
}
