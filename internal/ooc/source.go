package ooc

import (
	"fmt"
	"os"
	"path/filepath"
)

// BlockSource is the chunked staging interface the prefetch pipeline
// reads from: a random-access collection of encoded block partitions
// (the record format documented on Manifest). Reads of distinct blocks
// must be safe concurrently — the decoders issue them in parallel.
type BlockSource interface {
	// Manifest describes the staged layout the blocks belong to.
	Manifest() *Manifest
	// ReadBlock fills dst with block b's encoded records; dst is
	// exactly NNZ*recordBytes long. Implementations must not retain
	// dst.
	ReadBlock(b BlockInfo, dst []byte) error
	// Close releases the underlying storage.
	Close() error
}

// fileSource serves blocks from a staged directory's blocks.dat using
// positioned reads (pread), which are concurrency-safe and
// allocation-free — the steady-state pipeline stays 0 allocs/op.
type fileSource struct {
	man *Manifest
	f   *os.File
}

// OpenSource opens a staged directory (manifest.json + blocks.dat) as
// a BlockSource.
func OpenSource(dir string) (BlockSource, error) {
	man, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(dir, blocksFile))
	if err != nil {
		return nil, err
	}
	if len(man.Blocks) > 0 {
		last := man.Blocks[len(man.Blocks)-1]
		need := last.Off + int64(last.NNZ)*int64(recordBytes(man.Order()))
		if fi, err := f.Stat(); err != nil {
			f.Close()
			return nil, err
		} else if fi.Size() < need {
			f.Close()
			return nil, fmt.Errorf("ooc: blocks.dat is %d bytes, manifest needs %d", fi.Size(), need)
		}
	}
	return &fileSource{man: man, f: f}, nil
}

func (s *fileSource) Manifest() *Manifest { return s.man }

func (s *fileSource) ReadBlock(b BlockInfo, dst []byte) error {
	_, err := s.f.ReadAt(dst, b.Off)
	return err
}

func (s *fileSource) Close() error { return s.f.Close() }
