package ooc_test

import (
	"testing"

	"spblock/internal/la"
	"spblock/internal/ooc"
	"spblock/internal/testutil/raceflag"
)

// TestSteadyStatePrefetchAllocations pins the pipeline's free-list
// recycling: after a warm-up product sizes the walker, repeated
// streamed MTTKRP products — goroutine launches, channel traffic,
// positioned reads, decode, CSF rebuild, kernel walk — must not touch
// the heap. Every slot is pre-sized to the largest staged block at
// Open, so no growth path survives into steady state.
func TestSteadyStatePrefetchAllocations(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	x := randTensor(21, []int{20, 16, 12, 10}, 2000)
	stage, man := stageTensor(t, x, []int{2, 2, 2, 2})
	const rank = 16
	factors := make([]*la.Matrix, len(x.Dims))
	for m, d := range x.Dims {
		factors[m] = la.NewMatrix(d, rank)
		for i := range factors[m].Data {
			factors[m].Data[i] = float64(i%7) - 3
		}
	}
	out := la.NewMatrix(x.Dims[0], rank)
	for _, opt := range []ooc.Options{
		{},
		{Decoders: 1},
		{BudgetBytes: man.TotalBlockBytes() / 4, Decoders: 3},
	} {
		e, err := ooc.Open(stage, opt)
		if err != nil {
			t.Fatal(err)
		}
		// Warm-up resolves the walker at this rank.
		if err := e.MTTKRP(0, factors, out); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if err := e.MTTKRP(0, factors, out); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("depth %d decoders %d: steady-state MTTKRP allocates %.1f/run, want 0",
				e.Depth(), e.Decoders(), allocs)
		}
		e.Close()
	}
}
