//go:build race

package nmode

// raceEnabled reports that this test binary runs under the race
// detector, whose instrumentation allocates on its own and would make
// AllocsPerRun assertions meaningless.
const raceEnabled = true
