package nmode

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ErrNoData reports an input with neither data lines nor a dims
// comment, so the order is unknowable. Adapters with a fixed order
// (tensor.ReadTNS) match it to substitute an empty tensor.
var ErrNoData = errors.New("nmode: empty input with no dims comment")

// ReadTNS parses a FROSTT-style text tensor of any order: each line is
// N 1-based coordinates followed by a value; blank lines and '#'
// comments are ignored. The order is fixed by the first data line.
// Mode lengths are the maximum coordinate seen unless a comment of the
// form "# dims: d1 d2 ... dN" declares them.
func ReadTNS(r io.Reader) (*Tensor, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var t *Tensor
	var declared []int
	var maxCoord []Index
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if rest, ok := strings.CutPrefix(text, "# dims:"); ok {
				for _, f := range strings.Fields(rest) {
					d, err := strconv.Atoi(f)
					if err != nil {
						return nil, fmt.Errorf("nmode: line %d: bad dims comment: %v", line, err)
					}
					declared = append(declared, d)
				}
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, fmt.Errorf("nmode: line %d: want >= 2 coordinates and a value, got %d fields",
				line, len(fields))
		}
		order := len(fields) - 1
		if t == nil {
			dims := make([]int, order)
			for m := range dims {
				dims[m] = 1
			}
			t = NewTensor(dims, 1024)
			maxCoord = make([]Index, order)
		} else if order != t.Order() {
			return nil, fmt.Errorf("nmode: line %d: order %d conflicts with earlier order %d",
				line, order, t.Order())
		}
		coords := make([]Index, order)
		for m := 0; m < order; m++ {
			v, err := strconv.ParseInt(fields[m], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("nmode: line %d: bad coordinate %q: %v", line, fields[m], err)
			}
			if v < 1 {
				return nil, fmt.Errorf("nmode: line %d: coordinates are 1-based, got %d", line, v)
			}
			if v > 1<<31-1 {
				return nil, fmt.Errorf("nmode: line %d: coordinate %d exceeds int32 range", line, v)
			}
			coords[m] = Index(v - 1)
			if coords[m]+1 > maxCoord[m] {
				maxCoord[m] = coords[m] + 1
			}
		}
		val, err := strconv.ParseFloat(fields[order], 64)
		if err != nil {
			return nil, fmt.Errorf("nmode: line %d: bad value %q: %v", line, fields[order], err)
		}
		t.Append(coords, val)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("nmode: read: %w", err)
	}
	if t == nil {
		if declared != nil {
			t = NewTensor(declared, 0)
			if err := t.Validate(); err != nil {
				return nil, err
			}
			return t, nil
		}
		return nil, ErrNoData
	}
	if declared != nil {
		if len(declared) != t.Order() {
			return nil, fmt.Errorf("nmode: dims comment has %d modes, data has %d",
				len(declared), t.Order())
		}
		t.Dims = declared
	} else {
		for m := range t.Dims {
			t.Dims[m] = int(maxCoord[m])
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteTNS writes the tensor in FROSTT text form with a dims comment.
func WriteTNS(w io.Writer, t *Tensor) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "# dims:")
	for _, d := range t.Dims {
		fmt.Fprintf(bw, " %d", d)
	}
	fmt.Fprintln(bw)
	for p := 0; p < t.NNZ(); p++ {
		for m := range t.Dims {
			fmt.Fprintf(bw, "%d ", t.Idx[m][p]+1)
		}
		if _, err := fmt.Fprintln(bw, strconv.FormatFloat(t.Val[p], 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadTNSFile reads an order-N tensor from a file path.
func LoadTNSFile(path string) (*Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTNS(f)
}

// SaveTNSFile writes an order-N tensor to a file path.
func SaveTNSFile(path string, t *Tensor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTNS(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
