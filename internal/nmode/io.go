package nmode

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ErrNoData reports an input with neither data lines nor a dims
// comment, so the order is unknowable. Adapters with a fixed order
// (tensor.ReadTNS) match it to substitute an empty tensor.
var ErrNoData = errors.New("nmode: empty input with no dims comment")

// lineReader yields '\n'-terminated lines of unbounded length from a
// bufio.Reader. Unlike bufio.Scanner there is no maximum token size:
// fragments that overflow the reader's internal buffer are accumulated
// into a reusable line buffer, so a multi-megabyte line costs one
// amortised allocation instead of a "token too long" error. The
// returned slice is valid until the next call.
type lineReader struct {
	br   *bufio.Reader
	buf  []byte
	done bool
}

func newLineReader(r io.Reader) *lineReader {
	return &lineReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// next returns the next line without its trailing newline (a trailing
// '\r' is also dropped, matching bufio.ScanLines). It returns io.EOF
// once the input is exhausted; a final unterminated line is returned
// first with a nil error.
func (lr *lineReader) next() ([]byte, error) {
	if lr.done {
		return nil, io.EOF
	}
	lr.buf = lr.buf[:0]
	for {
		frag, err := lr.br.ReadSlice('\n')
		lr.buf = append(lr.buf, frag...)
		if err == bufio.ErrBufferFull {
			continue
		}
		if err == io.EOF {
			lr.done = true
			if len(lr.buf) == 0 {
				return nil, io.EOF
			}
			err = nil
		}
		if err != nil {
			return nil, err
		}
		line := lr.buf
		if n := len(line); n > 0 && line[n-1] == '\n' {
			line = line[:n-1]
		}
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		return line, nil
	}
}

// TNSStream parses a FROSTT-style text tensor one nonzero at a time
// without materialising it: each data line is N 1-based coordinates
// followed by a value; blank lines and '#' comments are ignored, and a
// "# dims: d1 ... dN" comment declares mode lengths. The order is
// fixed by the first data line. The out-of-core staging pass and
// ReadTNS share this parser, so streamed and in-memory reads accept
// exactly the same inputs.
type TNSStream struct {
	lr       *lineReader
	line     int
	declared []int
	maxCoord []Index
	coords   []Index
	nnz      int
}

// NewTNSStream wraps r in a streaming .tns parser.
func NewTNSStream(r io.Reader) *TNSStream {
	return &TNSStream{lr: newLineReader(r)}
}

// Next returns the next nonzero's zero-based coordinates and value, or
// io.EOF when the input is exhausted. The coordinate slice is reused
// across calls; callers that retain coordinates must copy them.
func (s *TNSStream) Next() ([]Index, float64, error) {
	for {
		raw, err := s.lr.next()
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		if err != nil {
			return nil, 0, fmt.Errorf("nmode: read: %w", err)
		}
		s.line++
		text := strings.TrimSpace(string(raw))
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if rest, ok := strings.CutPrefix(text, "# dims:"); ok {
				for _, f := range strings.Fields(rest) {
					d, err := strconv.Atoi(f)
					if err != nil {
						return nil, 0, fmt.Errorf("nmode: line %d: bad dims comment: %v", s.line, err)
					}
					s.declared = append(s.declared, d)
				}
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, 0, fmt.Errorf("nmode: line %d: want >= 2 coordinates and a value, got %d fields",
				s.line, len(fields))
		}
		order := len(fields) - 1
		if s.coords == nil {
			s.coords = make([]Index, order)
			s.maxCoord = make([]Index, order)
		} else if order != len(s.coords) {
			return nil, 0, fmt.Errorf("nmode: line %d: order %d conflicts with earlier order %d",
				s.line, order, len(s.coords))
		}
		for m := 0; m < order; m++ {
			v, err := strconv.ParseInt(fields[m], 10, 64)
			if err != nil {
				return nil, 0, fmt.Errorf("nmode: line %d: bad coordinate %q: %v", s.line, fields[m], err)
			}
			if v < 1 {
				return nil, 0, fmt.Errorf("nmode: line %d: coordinates are 1-based, got %d", s.line, v)
			}
			if v > 1<<31-1 {
				return nil, 0, fmt.Errorf("nmode: line %d: coordinate %d exceeds int32 range", s.line, v)
			}
			s.coords[m] = Index(v - 1)
			if s.coords[m]+1 > s.maxCoord[m] {
				s.maxCoord[m] = s.coords[m] + 1
			}
		}
		val, err := strconv.ParseFloat(fields[order], 64)
		if err != nil {
			return nil, 0, fmt.Errorf("nmode: line %d: bad value %q: %v", s.line, fields[order], err)
		}
		s.nnz++
		return s.coords, val, nil
	}
}

// Order reports the tensor order fixed by the first data line, or 0 if
// no data line has been seen yet.
func (s *TNSStream) Order() int { return len(s.coords) }

// NNZ reports the number of data lines parsed so far.
func (s *TNSStream) NNZ() int { return s.nnz }

// DeclaredDims returns the mode lengths from "# dims:" comments seen
// so far, or nil if none. Multiple comments concatenate, mirroring
// ReadTNS; a length mismatch with the data order is the caller's check.
func (s *TNSStream) DeclaredDims() []int { return s.declared }

// MaxCoords returns, per mode, one past the largest zero-based
// coordinate seen so far — the derived mode lengths when no dims
// comment is present. Nil before the first data line.
func (s *TNSStream) MaxCoords() []Index { return s.maxCoord }

// ReadTNS parses a FROSTT-style text tensor of any order: each line is
// N 1-based coordinates followed by a value; blank lines and '#'
// comments are ignored. The order is fixed by the first data line.
// Mode lengths are the maximum coordinate seen unless a comment of the
// form "# dims: d1 d2 ... dN" declares them. Lines may be arbitrarily
// long: parsing is built on TNSStream's bufio.Reader line reading, not
// a capped bufio.Scanner.
func ReadTNS(r io.Reader) (*Tensor, error) {
	s := NewTNSStream(r)
	var t *Tensor
	for {
		coords, val, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if t == nil {
			dims := make([]int, len(coords))
			for m := range dims {
				dims[m] = 1
			}
			t = NewTensor(dims, 1024)
		}
		t.Append(coords, val)
	}
	declared := s.DeclaredDims()
	if t == nil {
		if declared != nil {
			t = NewTensor(declared, 0)
			if err := t.Validate(); err != nil {
				return nil, err
			}
			return t, nil
		}
		return nil, ErrNoData
	}
	if declared != nil {
		if len(declared) != t.Order() {
			return nil, fmt.Errorf("nmode: dims comment has %d modes, data has %d",
				len(declared), t.Order())
		}
		t.Dims = declared
	} else {
		for m, mc := range s.MaxCoords() {
			t.Dims[m] = int(mc)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteTNS writes the tensor in FROSTT text form with a dims comment.
func WriteTNS(w io.Writer, t *Tensor) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "# dims:")
	for _, d := range t.Dims {
		fmt.Fprintf(bw, " %d", d)
	}
	fmt.Fprintln(bw)
	for p := 0; p < t.NNZ(); p++ {
		for m := range t.Dims {
			fmt.Fprintf(bw, "%d ", t.Idx[m][p]+1)
		}
		if _, err := fmt.Fprintln(bw, strconv.FormatFloat(t.Val[p], 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadTNSFile reads an order-N tensor from a file path.
func LoadTNSFile(path string) (*Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTNS(f)
}

// SaveTNSFile writes an order-N tensor to a file path.
func SaveTNSFile(path string, t *Tensor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTNS(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
