package nmode

import (
	"fmt"

	"spblock/internal/analysis/check"
)

// validateTree runs the spblockcheck structure oracle over an order-N
// CSF tree.
//
//spblock:coldpath
func validateTree(c *CSF) error {
	if c == nil {
		return fmt.Errorf("nil CSF")
	}
	return check.Tree(c.Dims, c.ModeOrder, c.ID, c.Ptr, len(c.Val))
}

// validateBlocked runs the oracle over an order-N blocked layout:
// per-block tree invariants, per-block coordinate containment in every
// mode, exact nonzero coverage.
//
//spblock:coldpath
func validateBlocked(bt *BlockedTensor) error {
	if bt == nil {
		return fmt.Errorf("nil BlockedTensor")
	}
	n := len(bt.Dims)
	total := 1
	for _, g := range bt.Grid {
		total *= g
	}
	if len(bt.Blocks) != total {
		return fmt.Errorf("%d blocks for grid %v", len(bt.Blocks), bt.Grid)
	}
	coord := make([]int, n)
	covered := 0
	for id, blk := range bt.Blocks {
		if blk == nil {
			continue
		}
		if err := validateTree(blk); err != nil {
			return fmt.Errorf("block %d: %w", id, err)
		}
		// Decode the row-major block coordinates.
		rem := id
		for m := n - 1; m >= 0; m-- {
			coord[m] = rem % bt.Grid[m]
			rem /= bt.Grid[m]
		}
		for d := 0; d < n; d++ {
			m := blk.ModeOrder[d]
			name := fmt.Sprintf("level %d ids (mode %d)", d, m)
			if err := check.IDBox(name, blk.ID[d], coord[m], bt.BlockDims[m], bt.Dims[m]); err != nil {
				return fmt.Errorf("block %d: %w", id, err)
			}
		}
		covered += blk.NNZ()
	}
	return check.Coverage(covered, bt.nnz)
}
