package nmode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spblock/internal/la"
)

func randTensorN(rng *rand.Rand, dims []int, nnz int) *Tensor {
	t := NewTensor(dims, nnz)
	coords := make([]Index, len(dims))
	for p := 0; p < nnz; p++ {
		for m, d := range dims {
			coords[m] = Index(rng.Intn(d))
		}
		t.Append(coords, rng.NormFloat64())
	}
	if _, err := t.Dedup(); err != nil {
		panic(err)
	}
	return t
}

func randMatrix(rng *rand.Rand, rows, cols int) *la.Matrix {
	m := la.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// denseMTTKRP is the brute-force oracle: out[i_mode] += val * Π rows.
func denseMTTKRP(t *Tensor, factors []*la.Matrix, mode, rank int) *la.Matrix {
	out := la.NewMatrix(t.Dims[mode], rank)
	for p := 0; p < t.NNZ(); p++ {
		orow := out.Row(int(t.Idx[mode][p]))
		for q := 0; q < rank; q++ {
			v := t.Val[p]
			for m := range t.Dims {
				if m == mode {
					continue
				}
				v *= factors[m].At(int(t.Idx[m][p]), q)
			}
			orow[q] += v
		}
	}
	return out
}

func TestTensorValidate(t *testing.T) {
	x := NewTensor([]int{2, 3}, 0)
	x.Append([]Index{1, 2}, 1)
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := NewTensor([]int{2, 3}, 0)
	bad.Append([]Index{2, 0}, 1)
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := NewTensor([]int{2, 0}, 0).Validate(); err == nil {
		t.Fatal("zero dim accepted")
	}
	if err := (&Tensor{}).Validate(); err == nil {
		t.Fatal("order-0 accepted")
	}
}

func TestSortByModes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randTensorN(rng, []int{5, 6, 7, 4}, 150)
	order := []int{2, 0, 3, 1}
	if err := x.SortByModes(order); err != nil {
		t.Fatal(err)
	}
	for p := 1; p < x.NNZ(); p++ {
		for _, m := range order {
			if x.Idx[m][p] != x.Idx[m][p-1] {
				if x.Idx[m][p] < x.Idx[m][p-1] {
					t.Fatalf("order violated at %d mode %d", p, m)
				}
				break
			}
		}
	}
	if err := x.SortByModes([]int{0, 0, 1, 2}); err == nil {
		t.Fatal("non-permutation accepted")
	}
	if err := x.SortByModes([]int{0, 1}); err == nil {
		t.Fatal("short order accepted")
	}
}

func TestDedupN(t *testing.T) {
	x := NewTensor([]int{2, 2}, 0)
	x.Append([]Index{1, 1}, 2)
	x.Append([]Index{1, 1}, 3)
	x.Append([]Index{0, 0}, 1)
	merged, err := x.Dedup()
	if err != nil {
		t.Fatal(err)
	}
	if merged != 1 || x.NNZ() != 2 {
		t.Fatalf("merged=%d nnz=%d", merged, x.NNZ())
	}
	if x.Val[0] != 1 || x.Val[1] != 5 {
		t.Fatalf("vals = %v", x.Val)
	}
}

func TestDefaultModeOrder(t *testing.T) {
	order := DefaultModeOrder([]int{100, 5, 50, 5}, 2)
	if order[0] != 2 {
		t.Fatalf("output mode not at root: %v", order)
	}
	// Remaining sorted by increasing length: 5 (mode1), 5 (mode3), 100 (mode0).
	want := []int{2, 1, 3, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBuildMatchesFigure1(t *testing.T) {
	// The paper's 3x3x3 example with ordering (i, k, j) must reproduce
	// the SPLATT structure: 3 slices, 6 fibers, 7 leaves.
	x := NewTensor([]int{3, 3, 3}, 7)
	for _, e := range [][4]int{
		{0, 0, 0, 5}, {0, 1, 1, 3}, {0, 1, 2, 1},
		{1, 0, 2, 2}, {1, 1, 1, 9}, {1, 2, 2, 7}, {2, 0, 0, 9},
	} {
		x.Append([]Index{Index(e[0]), Index(e[1]), Index(e[2])}, float64(e[3]))
	}
	c, err := Build(x, []int{0, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumNodes(0) != 3 || c.NumNodes(1) != 6 || c.NNZ() != 7 {
		t.Fatalf("tree shape %d/%d/%d, want 3/6/7", c.NumNodes(0), c.NumNodes(1), c.NNZ())
	}
}

func TestBuildRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][]int{{6, 7}, {5, 6, 7}, {4, 5, 3, 6}, {3, 4, 3, 2, 3}} {
		x := randTensorN(rng, dims, 200)
		c, err := Build(x, nil)
		if err != nil {
			t.Fatalf("dims %v: %v", dims, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("dims %v: %v", dims, err)
		}
		back := c.ToTensor()
		if _, err := back.Dedup(); err != nil {
			t.Fatal(err)
		}
		if back.NNZ() != x.NNZ() {
			t.Fatalf("dims %v: round trip %d != %d", dims, back.NNZ(), x.NNZ())
		}
		// Compare entry by entry: both are sorted by mode order 0..N-1.
		sorted := x.Clone()
		order := make([]int, len(dims))
		for m := range order {
			order[m] = m
		}
		if err := sorted.SortByModes(order); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < x.NNZ(); p++ {
			if back.Val[p] != sorted.Val[p] {
				t.Fatalf("dims %v: value mismatch at %d", dims, p)
			}
			for m := range dims {
				if back.Idx[m][p] != sorted.Idx[m][p] {
					t.Fatalf("dims %v: coord mismatch at %d mode %d", dims, p, m)
				}
			}
		}
	}
}

func TestBuildEmpty(t *testing.T) {
	x := NewTensor([]int{3, 3, 3}, 0)
	c, err := Build(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	out := la.NewMatrix(3, 4)
	factors := []*la.Matrix{nil, la.NewMatrix(3, 4), la.NewMatrix(3, 4)}
	if err := MTTKRP(c, factors, out, Options{}); err != nil {
		t.Fatal(err)
	}
	if out.FrobeniusNorm() != 0 {
		t.Fatal("empty tensor produced output")
	}
}

func TestMTTKRPMatchesOracleAcrossOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := [][]int{
		{8, 9},
		{7, 8, 9},
		{5, 6, 7, 8},
		{4, 5, 3, 4, 5},
	}
	for _, dims := range shapes {
		x := randTensorN(rng, dims, 300)
		for _, rank := range []int{1, 8, 16, 17, 33} {
			factors := make([]*la.Matrix, len(dims))
			for m, d := range dims {
				factors[m] = randMatrix(rng, d, rank)
			}
			for mode := range dims {
				want := denseMTTKRP(x, factors, mode, rank)
				c, err := Build(x, DefaultModeOrder(dims, mode))
				if err != nil {
					t.Fatal(err)
				}
				for _, opt := range []Options{
					{Workers: 1},
					{Workers: 3},
					{RankBlockCols: 16, Workers: 1},
					{RankBlockCols: 16, Workers: 2},
				} {
					out := la.NewMatrix(dims[mode], rank)
					if err := MTTKRP(c, factors, out, opt); err != nil {
						t.Fatalf("dims %v mode %d rank %d: %v", dims, mode, rank, err)
					}
					if d := out.MaxAbsDiff(want); d > 1e-9 {
						t.Fatalf("dims %v mode %d rank %d opt %+v: differs by %v",
							dims, mode, rank, opt, d)
					}
				}
			}
		}
	}
}

func TestMTTKRPValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randTensorN(rng, []int{4, 5, 6}, 30)
	c, err := Build(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	good := []*la.Matrix{nil, randMatrix(rng, 5, 8), randMatrix(rng, 6, 8)}
	out := la.NewMatrix(4, 8)
	if err := MTTKRP(c, good, out, Options{}); err != nil {
		t.Fatalf("valid call rejected: %v", err)
	}
	if err := MTTKRP(c, good[:2], out, Options{}); err == nil {
		t.Fatal("short factor list accepted")
	}
	if err := MTTKRP(c, []*la.Matrix{nil, nil, good[2]}, out, Options{}); err == nil {
		t.Fatal("missing factor accepted")
	}
	if err := MTTKRP(c, good, la.NewMatrix(5, 8), Options{}); err == nil {
		t.Fatal("wrong output rows accepted")
	}
	bad := []*la.Matrix{nil, randMatrix(rng, 5, 4), randMatrix(rng, 6, 8)}
	if err := MTTKRP(c, bad, out, Options{}); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if err := MTTKRP(c, good, la.NewMatrix(4, 0), Options{}); err == nil {
		t.Fatal("rank 0 accepted")
	}
}

func TestCSFMemoryBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randTensorN(rng, []int{6, 6, 6}, 100)
	c, err := Build(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.MemoryBytes() <= 0 {
		t.Fatal("no memory reported")
	}
}

// Property: for random order-4 tensors, rank-blocked parallel MTTKRP
// agrees with the plain kernel.
func TestQuickRankBlockedAgrees(t *testing.T) {
	f := func(seed int64, r uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{5, 4, 6, 3}
		x := randTensorN(rng, dims, 120)
		rank := int(r%40) + 1
		factors := make([]*la.Matrix, len(dims))
		for m, d := range dims {
			factors[m] = randMatrix(rng, d, rank)
		}
		c, err := Build(x, nil)
		if err != nil {
			return false
		}
		a := la.NewMatrix(dims[0], rank)
		b := la.NewMatrix(dims[0], rank)
		if MTTKRP(c, factors, a, Options{Workers: 1}) != nil {
			return false
		}
		if MTTKRP(c, factors, b, Options{RankBlockCols: 16, Workers: 3}) != nil {
			return false
		}
		return a.MaxAbsDiff(b) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
