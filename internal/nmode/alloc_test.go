package nmode

import (
	"fmt"
	"math/rand"
	"testing"

	"spblock/internal/la"
	"spblock/internal/sched"
	"spblock/internal/testutil/raceflag"
)

// allocCases is the options matrix for the N-mode executor tests:
// sequential and parallel, unblocked / rank strips / MB grid / both.
func allocCases() []Options {
	return []Options{
		{Workers: 1},
		{Workers: 4},
		{RankBlockCols: 16, Workers: 1},
		{RankBlockCols: 16, Workers: 4},
		// The remaining registered kernel widths plus a below-MinWidth
		// strip (scalar tails): the walker's cached-kernel dispatch must
		// stay allocation-free and correct for every registry entry.
		{RankBlockCols: 8, Workers: 1},
		{RankBlockCols: 24, Workers: 1},
		{RankBlockCols: 32, Workers: 1},
		{RankBlockCols: 4, Workers: 1},
		{Grid: []int{2, 2, 1, 2}, Workers: 1},
		{Grid: []int{2, 2, 1, 2}, Workers: 4},
		{Grid: []int{2, 2, 1, 2}, RankBlockCols: 16, Workers: 1},
		{Grid: []int{2, 2, 1, 2}, RankBlockCols: 16, Workers: 4},
		// Stealing and adaptive scheduling over both the root-range and
		// the block-layer work units hold the same zero-alloc and
		// bit-identity contracts as static (see internal/sched).
		{Workers: 4, Sched: sched.PolicySteal},
		{Workers: 4, Sched: sched.PolicyAdaptive},
		{RankBlockCols: 16, Workers: 4, Sched: sched.PolicySteal},
		{Grid: []int{2, 2, 1, 2}, Workers: 4, Sched: sched.PolicySteal},
		{Grid: []int{2, 2, 1, 2}, RankBlockCols: 16, Workers: 4, Sched: sched.PolicyAdaptive},
	}
}

// TestExecutorSteadyStateAllocations mirrors the order-3 regression
// guard in internal/core: after a warm-up run sizes the pooled
// workspace, repeated Executor.Run calls must not touch the heap at
// all — CPALSN calls this kernel once per mode per sweep.
func TestExecutorSteadyStateAllocations(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	rng := rand.New(rand.NewSource(1))
	dims := []int{24, 20, 16, 12}
	x := randTensorN(rng, dims, 3000)
	const rank = 48
	factors := make([]*la.Matrix, len(dims))
	for m := 1; m < len(dims); m++ {
		factors[m] = randMatrix(rng, dims[m], rank)
	}
	out := la.NewMatrix(dims[0], rank)
	for _, opts := range allocCases() {
		e, err := NewExecutor(x, 0, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Warm-up: the first Run at a rank sizes the pooled buffers and
		// the parallel launches spawn their first goroutines.
		for i := 0; i < 2; i++ {
			if err := e.Run(factors, out); err != nil {
				t.Fatal(err)
			}
		}
		e.Metrics().Reset()
		allocs := testing.AllocsPerRun(20, func() {
			if err := e.Run(factors, out); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%+v: %.2f allocs per steady-state Run, want 0", opts, allocs)
		}
		// The collector must have been live during the zero-alloc window
		// (see the order-3 twin of this assertion).
		snap := e.Metrics().Snapshot()
		if snap.Runs < 20 || snap.NNZ <= 0 || snap.BytesEst <= 0 || snap.WallNS <= 0 {
			t.Errorf("%+v: collector dead or degenerate during alloc window: %+v", opts, snap)
		}
		var workerNS int64
		for _, ns := range snap.WorkerNS {
			workerNS += ns
		}
		if workerNS <= 0 {
			t.Errorf("%+v: no worker time recorded: %v", opts, snap.WorkerNS)
		}
	}
}

// TestExecutorMatchesOracle checks every options row against the dense
// oracle, for every output mode, across orders 2–5.
func TestExecutorMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	shapes := [][]int{
		{13, 9},
		{11, 8, 7},
		{9, 8, 7, 6},
		{7, 6, 5, 4, 3},
	}
	const rank = 19 // off the register-block width on purpose
	for _, dims := range shapes {
		x := randTensorN(rng, dims, 400)
		all := make([]*la.Matrix, len(dims))
		for m := range dims {
			all[m] = randMatrix(rng, dims[m], rank)
		}
		for mode := range dims {
			want := denseMTTKRP(x, all, mode, rank)
			for _, opts := range allocCases() {
				if opts.Grid != nil {
					// Fit the grid to this shape's order: reuse the 2s
					// pattern, padding higher orders with 1s.
					g := make([]int, len(dims))
					for m := range g {
						g[m] = 1
						if m < len(opts.Grid) {
							g[m] = opts.Grid[m]
						}
					}
					opts.Grid = g
				}
				e, err := NewExecutor(x, mode, opts)
				if err != nil {
					t.Fatal(err)
				}
				got := la.NewMatrix(dims[mode], rank)
				// Twice: the second run exercises workspace reuse.
				for i := 0; i < 2; i++ {
					if err := e.Run(all, got); err != nil {
						t.Fatal(err)
					}
				}
				if d := got.MaxAbsDiff(want); d > 1e-9 {
					t.Errorf("order %d mode %d %+v: differs from oracle by %v",
						len(dims), mode, opts, d)
				}
			}
		}
	}
}

// TestExecutorRankChangeResizesWorkspace: running the same executor at
// a new rank must re-size the pooled buffers, then stay correct and
// allocation-free at the new rank.
func TestExecutorRankChangeResizesWorkspace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dims := []int{12, 10, 8, 6}
	x := randTensorN(rng, dims, 600)
	e, err := NewExecutor(x, 0, Options{RankBlockCols: 16, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, rank := range []int{48, 17, 48} {
		factors := make([]*la.Matrix, len(dims))
		for m := 1; m < len(dims); m++ {
			factors[m] = randMatrix(rng, dims[m], rank)
		}
		want := denseMTTKRP(x, factors, 0, rank)
		got := la.NewMatrix(dims[0], rank)
		for i := 0; i < 2; i++ {
			if err := e.Run(factors, got); err != nil {
				t.Fatal(err)
			}
		}
		if d := got.MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("rank %d after resize: differs from oracle by %v", rank, d)
		}
	}
}

// TestExecutorValidation covers constructor and Run operand checks.
func TestExecutorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dims := []int{6, 5, 4}
	x := randTensorN(rng, dims, 40)
	if _, err := NewExecutor(x, -1, Options{}); err == nil {
		t.Error("mode -1 accepted")
	}
	if _, err := NewExecutor(x, 3, Options{}); err == nil {
		t.Error("mode out of range accepted")
	}
	if _, err := NewExecutor(x, 0, Options{Workers: -1}); err == nil {
		t.Error("Workers=-1 accepted")
	}
	if _, err := NewExecutor(x, 0, Options{Grid: []int{2, 2}}); err == nil {
		t.Error("short grid accepted")
	}
	e, err := NewExecutor(x, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Mode() != 1 || e.Order() != 3 || e.NNZ() != x.NNZ() {
		t.Fatalf("accessors: mode=%d order=%d nnz=%d", e.Mode(), e.Order(), e.NNZ())
	}
	a := randMatrix(rng, dims[0], 8)
	c := randMatrix(rng, dims[2], 8)
	out := la.NewMatrix(dims[1], 8)
	cases := []struct {
		name    string
		factors []*la.Matrix
		out     *la.Matrix
	}{
		{"wrong factor count", []*la.Matrix{a, nil}, out},
		{"missing factor", []*la.Matrix{a, nil, nil}, out},
		{"wrong out rows", []*la.Matrix{a, nil, c}, la.NewMatrix(dims[0], 8)},
		{"rank mismatch", []*la.Matrix{a, nil, c}, la.NewMatrix(dims[1], 9)},
	}
	for _, tc := range cases {
		if err := e.Run(tc.factors, tc.out); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	if err := e.Run([]*la.Matrix{a, nil, c}, out); err != nil {
		t.Errorf("valid operands rejected: %v", err)
	}
}

// TestExecutorEmptyTensor: an executor over an empty tensor zeroes the
// output and returns.
func TestExecutorEmptyTensor(t *testing.T) {
	x := NewTensor([]int{4, 3, 2}, 0)
	for _, opts := range []Options{{}, {Grid: []int{2, 1, 1}}} {
		e, err := NewExecutor(x, 0, opts)
		if err != nil {
			t.Fatal(err)
		}
		b := la.NewMatrix(3, 5)
		c := la.NewMatrix(2, 5)
		out := la.NewMatrix(4, 5)
		out.Data[0] = 7 // must be cleared
		if err := e.Run([]*la.Matrix{nil, b, c}, out); err != nil {
			t.Fatal(err)
		}
		for i, v := range out.Data {
			if v != 0 {
				t.Fatalf("%+v: out[%d] = %v, want 0", opts, i, v)
			}
		}
	}
}

// TestExecutorGridNormalization: grids clamp to the shape, and all-ones
// grids take the unblocked path.
func TestExecutorGridNormalization(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dims := []int{6, 5, 4}
	x := randTensorN(rng, dims, 60)
	factors := make([]*la.Matrix, 3)
	for m := 1; m < 3; m++ {
		factors[m] = randMatrix(rng, dims[m], 8)
	}
	want := denseMTTKRP(x, factors, 0, 8)
	for _, grid := range [][]int{nil, {1, 1, 1}, {100, 1, 9}, {0, -2, 1}} {
		e, err := NewExecutor(x, 0, Options{Grid: grid})
		if err != nil {
			t.Fatalf("grid %v: %v", grid, err)
		}
		got := la.NewMatrix(dims[0], 8)
		if err := e.Run(factors, got); err != nil {
			t.Fatal(err)
		}
		if d := got.MaxAbsDiff(want); d > 1e-9 {
			t.Errorf("grid %v: differs from oracle by %v", grid, d)
		}
	}
}

// TestRootShares: the leaf-balanced root split — now sched.Shares over
// the rootLeafEnds weight function — covers every root exactly once,
// in order.
func TestRootShares(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randTensorN(rng, []int{17, 6, 5}, 300)
	c, err := Build(x, DefaultModeOrder(x.Dims, 0))
	if err != nil {
		t.Fatal(err)
	}
	end := rootLeafEnds(c)
	cum := func(i int) int64 { return end[i] }
	for _, workers := range []int{2, 3, 5, 32} {
		shares := sched.Shares(c.NumNodes(0), workers, cum)
		if shares == nil {
			t.Fatalf("workers=%d: nil shares", workers)
		}
		prev := 0
		for _, s := range shares {
			if s[0] != prev {
				t.Fatalf("workers=%d: share starts at %d, want %d (%v)", workers, s[0], prev, shares)
			}
			if s[1] < s[0] {
				t.Fatalf("workers=%d: inverted share %v", workers, s)
			}
			prev = s[1]
		}
		if prev != c.NumNodes(0) {
			t.Fatalf("workers=%d: shares end at %d, want %d", workers, prev, c.NumNodes(0))
		}
	}
	if s := sched.Shares(c.NumNodes(0), 1, cum); len(s) != 1 {
		t.Errorf("workers=1: got shares %v, want one full-span share", s)
	}
}

// TestExecutorAgainstOneShot: the pooled executor and the one-shot
// MTTKRP entry point agree bit for bit on the same tree shape.
func TestExecutorAgainstOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := []int{10, 9, 8, 7}
	x := randTensorN(rng, dims, 500)
	const rank = 24
	factors := make([]*la.Matrix, len(dims))
	for m := range dims {
		factors[m] = randMatrix(rng, dims[m], rank)
	}
	for mode := range dims {
		opts := Options{RankBlockCols: 16, Workers: 1}
		c, err := Build(x, DefaultModeOrder(dims, mode))
		if err != nil {
			t.Fatal(err)
		}
		want := la.NewMatrix(dims[mode], rank)
		if err := MTTKRP(c, factors, want, opts); err != nil {
			t.Fatal(err)
		}
		e, err := NewExecutor(x, mode, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := la.NewMatrix(dims[mode], rank)
		if err := e.Run(factors, got); err != nil {
			t.Fatal(err)
		}
		if d := got.MaxAbsDiff(want); d != 0 {
			t.Errorf("mode %d: executor differs from one-shot by %v", mode, d)
		}
	}
}

func ExampleNewExecutor() {
	x := NewTensor([]int{2, 2, 2, 2}, 2)
	x.Append([]Index{0, 1, 0, 1}, 2)
	x.Append([]Index{1, 0, 1, 0}, 3)
	factors := make([]*la.Matrix, 4)
	for m := 1; m < 4; m++ {
		factors[m] = la.NewMatrix(2, 1)
		for i := range factors[m].Data {
			factors[m].Data[i] = 1
		}
	}
	e, err := NewExecutor(x, 0, Options{})
	if err != nil {
		panic(err)
	}
	out := la.NewMatrix(2, 1)
	if err := e.Run(factors, out); err != nil {
		panic(err)
	}
	fmt.Println(out.Data)
	// Output: [2 3]
}
