package nmode

import (
	"fmt"

	"spblock/internal/kernel"
	"spblock/internal/la"
)

// BlockedTensor generalises Sec. V-A's multi-dimensional blocking to
// order-N data: the index space is cut into Grid[0] x ... x Grid[N-1]
// axis-aligned blocks, each stored as its own CSF tree over global
// coordinates.
type BlockedTensor struct {
	Dims      []int
	Grid      []int
	BlockDims []int
	ModeOrder []int
	// Blocks is indexed by the row-major flattening of the block
	// coordinates; empty blocks are nil.
	Blocks []*CSF

	nnz int
}

// BuildBlocked reorganises t into grid blocks using the given CSF mode
// order (nil = DefaultModeOrder for mode 0).
func BuildBlocked(t *Tensor, grid []int, modeOrder []int) (*BlockedTensor, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := t.Order()
	if len(grid) != n {
		return nil, fmt.Errorf("%w: grid %v for order-%d tensor", ErrBadTensor, grid, n)
	}
	if modeOrder == nil {
		modeOrder = DefaultModeOrder(t.Dims, 0)
	}
	bt := &BlockedTensor{
		Dims:      append([]int(nil), t.Dims...),
		Grid:      append([]int(nil), grid...),
		BlockDims: make([]int, n),
		ModeOrder: append([]int(nil), modeOrder...),
		nnz:       t.NNZ(),
	}
	total := 1
	for m := 0; m < n; m++ {
		if grid[m] < 1 || grid[m] > t.Dims[m] {
			return nil, fmt.Errorf("%w: grid[%d] = %d outside [1,%d]", ErrBadTensor, m, grid[m], t.Dims[m])
		}
		bt.BlockDims[m] = (t.Dims[m] + grid[m] - 1) / grid[m]
		total *= grid[m]
	}
	if total > 1<<22 {
		return nil, fmt.Errorf("%w: %d blocks is unreasonable", ErrBadTensor, total)
	}
	bt.Blocks = make([]*CSF, total)

	// Bucket nonzeros by block id.
	buckets := make([]*Tensor, total)
	coords := make([]Index, n)
	for p := 0; p < t.NNZ(); p++ {
		id := 0
		for m := 0; m < n; m++ {
			id = id*grid[m] + int(t.Idx[m][p])/bt.BlockDims[m]
		}
		if buckets[id] == nil {
			buckets[id] = NewTensor(t.Dims, 16)
		}
		buckets[id].Append(t.Coord(p, coords), t.Val[p])
	}
	for id, b := range buckets {
		if b == nil {
			continue
		}
		csf, err := Build(b, modeOrder)
		if err != nil {
			return nil, err
		}
		bt.Blocks[id] = csf
	}
	return bt, nil
}

// NNZ returns the total nonzero count.
//
//spblock:hotpath
func (bt *BlockedTensor) NNZ() int { return bt.nnz }

// NumBlocks returns the number of non-empty blocks.
func (bt *BlockedTensor) NumBlocks() int {
	c := 0
	for _, b := range bt.Blocks {
		if b != nil {
			c++
		}
	}
	return c
}

// MTTKRP runs the blocked N-mode product: every block's tree is walked
// in sequence (rank strips outermost when RankBlockCols is set),
// accumulating into the shared output. Blocks write disjoint leaf
// contributions but may share output rows, so this sequential-per-call
// form is the safe default; parallel callers should shard by the root
// mode's block coordinate.
func (bt *BlockedTensor) MTTKRP(factors []*la.Matrix, out *la.Matrix, opts Options) error {
	n := len(bt.Dims)
	if len(factors) != n {
		return fmt.Errorf("nmode: %d factors for order-%d tensor", len(factors), n)
	}
	r := out.Cols
	if r <= 0 {
		return fmt.Errorf("nmode: rank must be positive")
	}
	rootMode := bt.ModeOrder[0]
	if out.Rows != bt.Dims[rootMode] {
		return fmt.Errorf("nmode: out has %d rows, want %d", out.Rows, bt.Dims[rootMode])
	}
	for d := 1; d < n; d++ {
		m := bt.ModeOrder[d]
		if factors[m] == nil || factors[m].Cols != r || factors[m].Rows != bt.Dims[m] {
			return fmt.Errorf("nmode: bad factor for mode %d", m)
		}
	}
	out.Zero()

	eff := r
	if bs := opts.RankBlockCols; bs > 0 && bs < r {
		eff = bs
	}
	wk := newWalkerBufs(n, r, kernel.Resolve(eff))
	run := func(fs []*la.Matrix, o *la.Matrix) {
		for _, blk := range bt.Blocks {
			if blk == nil {
				continue
			}
			wk.bind(blk, fs, o)
			wk.roots(0, blk.NumNodes(0))
		}
	}

	bs := opts.RankBlockCols
	if bs <= 0 || bs >= r {
		run(factors, out)
		return nil
	}
	packed := make([]*la.Matrix, n)
	for d := 1; d < n; d++ {
		m := bt.ModeOrder[d]
		packed[m] = la.NewMatrix(factors[m].Rows, bs)
	}
	oPack := la.NewMatrix(out.Rows, bs)
	pf := make([]*la.Matrix, n)
	for rr := 0; rr < r; rr += bs {
		w := bs
		if rr+w > r {
			w = r - rr
		}
		for d := 1; d < n; d++ {
			m := bt.ModeOrder[d]
			pv := stripView(packed[m], w)
			packStrip(pv, factors[m], rr)
			pf[m] = pv
		}
		po := stripView(oPack, w)
		po.Zero()
		run(pf, po)
		unpackStrip(out, po, rr)
	}
	return nil
}
