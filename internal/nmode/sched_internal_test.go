package nmode

import (
	"math/rand"
	"testing"
	"time"

	"spblock/internal/la"
	"spblock/internal/sched"
)

// TestAdaptiveRatchetSurvivesSetWorkersN is the N-mode half of the
// stale-baseline regression test (see core's
// TestAdaptiveRatchetSurvivesSetWorkers): after a mid-life SetWorkers
// re-sizes the worker buckets, the ensure path must re-size the
// adaptive window baseline too, or WindowImbalance observes 1 forever
// and the static→stealing ratchet silently dies.
func TestAdaptiveRatchetSurvivesSetWorkersN(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dims := []int{24, 12, 10, 8}
	x := randTensorN(rng, dims, 2500)
	const rank = 9
	factors := make([]*la.Matrix, len(dims))
	for m := 1; m < len(dims); m++ {
		factors[m] = randMatrix(rng, dims[m], rank)
	}
	want := la.NewMatrix(dims[0], rank)
	eS, err := NewExecutor(x, 0, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eS.Run(factors, want); err != nil {
		t.Fatal(err)
	}

	e, err := NewExecutor(x, 0, Options{Workers: 4, Sched: sched.PolicyAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	got := la.NewMatrix(dims[0], rank)
	if err := e.Run(factors, got); err != nil { // sizes buckets and baseline at 4
		t.Fatal(err)
	}
	if err := e.SetWorkers(3); err != nil {
		t.Fatal(err)
	}
	if e.ctrl == nil {
		t.Fatal("SetWorkers dropped the adaptive controller")
	}
	for run := 0; run < 8 && e.Sched() != sched.AdaptiveStealName; run++ {
		if err := e.Run(factors, got); err != nil {
			t.Fatal(err)
		}
		for i, v := range got.Data {
			if v != want.Data[i] {
				t.Fatalf("post-resize run %d differs at %d", run, i)
			}
		}
		e.met.AddWorkerTime(0, 500*time.Millisecond)
	}
	if e.Sched() != sched.AdaptiveStealName {
		t.Fatalf("ratchet never fired after SetWorkers: sched = %q", e.Sched())
	}
	if err := e.Run(factors, got); err != nil {
		t.Fatal(err)
	}
	for i, v := range got.Data {
		if v != want.Data[i] {
			t.Fatalf("post-promotion output differs at %d", i)
		}
	}
}

// TestAdaptivePromotionBitIdenticalN pins the promotion transition
// itself on the N-mode executor: an adaptive executor starts on the
// static layout, and after the queue is flipped to stealing (exactly
// the way observe() does it) subsequent runs remain bit-identical —
// for both the unblocked root-range and blocked layer work units.
func TestAdaptivePromotionBitIdenticalN(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := []int{16, 12, 10, 8}
	x := randTensorN(rng, dims, 2500)
	const rank = 17
	factors := make([]*la.Matrix, len(dims))
	for m := 1; m < len(dims); m++ {
		factors[m] = randMatrix(rng, dims[m], rank)
	}
	for _, opts := range []Options{
		{Workers: 4, Sched: sched.PolicyAdaptive},
		{Workers: 4, Grid: []int{2, 2, 1, 2}, Sched: sched.PolicyAdaptive},
	} {
		static := opts
		static.Sched = sched.PolicyStatic
		eS, err := NewExecutor(x, 0, static)
		if err != nil {
			t.Fatal(err)
		}
		want := la.NewMatrix(dims[0], rank)
		if err := eS.Run(factors, want); err != nil {
			t.Fatal(err)
		}
		e, err := NewExecutor(x, 0, opts)
		if err != nil {
			t.Fatal(err)
		}
		if e.ctrl == nil {
			t.Fatalf("%+v: adaptive executor built no controller", opts)
		}
		if got := e.Sched(); got != sched.AdaptiveStaticName {
			t.Fatalf("%+v: pre-promotion sched = %q, want %q", opts, got, sched.AdaptiveStaticName)
		}
		got := la.NewMatrix(dims[0], rank)
		if err := e.Run(factors, got); err != nil {
			t.Fatal(err)
		}
		// Promote exactly the way observe() does on a fired ratchet.
		e.ws.q.SetStealing(true)
		e.met.SetSched(sched.AdaptiveStealName)
		for run := 0; run < 3; run++ {
			if err := e.Run(factors, got); err != nil {
				t.Fatal(err)
			}
			for i, v := range got.Data {
				if v != want.Data[i] {
					t.Fatalf("%+v run %d: promoted output differs from static at %d: %v != %v",
						opts, run, i, v, want.Data[i])
				}
			}
		}
		if got := e.Sched(); got != sched.AdaptiveStealName {
			t.Fatalf("%+v: post-promotion sched = %q, want %q", opts, got, sched.AdaptiveStealName)
		}
	}
}
