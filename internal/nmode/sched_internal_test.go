package nmode

import (
	"math/rand"
	"testing"

	"spblock/internal/la"
	"spblock/internal/sched"
)

// TestAdaptivePromotionBitIdenticalN pins the promotion transition
// itself on the N-mode executor: an adaptive executor starts on the
// static layout, and after the queue is flipped to stealing (exactly
// the way observe() does it) subsequent runs remain bit-identical —
// for both the unblocked root-range and blocked layer work units.
func TestAdaptivePromotionBitIdenticalN(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := []int{16, 12, 10, 8}
	x := randTensorN(rng, dims, 2500)
	const rank = 17
	factors := make([]*la.Matrix, len(dims))
	for m := 1; m < len(dims); m++ {
		factors[m] = randMatrix(rng, dims[m], rank)
	}
	for _, opts := range []Options{
		{Workers: 4, Sched: sched.PolicyAdaptive},
		{Workers: 4, Grid: []int{2, 2, 1, 2}, Sched: sched.PolicyAdaptive},
	} {
		static := opts
		static.Sched = sched.PolicyStatic
		eS, err := NewExecutor(x, 0, static)
		if err != nil {
			t.Fatal(err)
		}
		want := la.NewMatrix(dims[0], rank)
		if err := eS.Run(factors, want); err != nil {
			t.Fatal(err)
		}
		e, err := NewExecutor(x, 0, opts)
		if err != nil {
			t.Fatal(err)
		}
		if e.ctrl == nil {
			t.Fatalf("%+v: adaptive executor built no controller", opts)
		}
		if got := e.Sched(); got != sched.AdaptiveStaticName {
			t.Fatalf("%+v: pre-promotion sched = %q, want %q", opts, got, sched.AdaptiveStaticName)
		}
		got := la.NewMatrix(dims[0], rank)
		if err := e.Run(factors, got); err != nil {
			t.Fatal(err)
		}
		// Promote exactly the way observe() does on a fired ratchet.
		e.ws.q.SetStealing(true)
		e.met.SetSched(sched.AdaptiveStealName)
		for run := 0; run < 3; run++ {
			if err := e.Run(factors, got); err != nil {
				t.Fatal(err)
			}
			for i, v := range got.Data {
				if v != want.Data[i] {
					t.Fatalf("%+v run %d: promoted output differs from static at %d: %v != %v",
						opts, run, i, v, want.Data[i])
				}
			}
		}
		if got := e.Sched(); got != sched.AdaptiveStealName {
			t.Fatalf("%+v: post-promotion sched = %q, want %q", opts, got, sched.AdaptiveStealName)
		}
	}
}
