// Package nmode generalises the library to tensors of arbitrary order,
// following the paper's note that "our methodology and result can
// trivially be extended to higher-order data" via the compressed sparse
// fiber (CSF) format of Smith & Karypis (Sec. III-C): an N-level tree
// whose root level is the MTTKRP output mode, with blocking applied the
// same way as in the third-order kernels.
package nmode

import (
	"errors"
	"fmt"
	"sort"
)

// Index is the coordinate type, matching the third-order packages.
type Index = int32

// ErrBadTensor wraps structural validation failures.
var ErrBadTensor = errors.New("nmode: invalid tensor")

// Tensor is an order-N sparse tensor in coordinate format.
type Tensor struct {
	Dims []int
	// Idx[m][p] is the mode-m coordinate of nonzero p.
	Idx [][]Index
	Val []float64
}

// NewTensor allocates an empty tensor of the given shape.
func NewTensor(dims []int, capacity int) *Tensor {
	t := &Tensor{
		Dims: append([]int(nil), dims...),
		Idx:  make([][]Index, len(dims)),
		Val:  make([]float64, 0, capacity),
	}
	for m := range t.Idx {
		t.Idx[m] = make([]Index, 0, capacity)
	}
	return t
}

// Order returns the number of modes.
func (t *Tensor) Order() int { return len(t.Dims) }

// NNZ returns the number of stored entries.
func (t *Tensor) NNZ() int { return len(t.Val) }

// Append adds a nonzero; coords must have one entry per mode.
func (t *Tensor) Append(coords []Index, v float64) {
	for m := range t.Idx {
		t.Idx[m] = append(t.Idx[m], coords[m])
	}
	t.Val = append(t.Val, v)
}

// Coord collects nonzero p's coordinates into dst (allocating when nil).
func (t *Tensor) Coord(p int, dst []Index) []Index {
	if dst == nil {
		dst = make([]Index, t.Order())
	}
	for m := range t.Idx {
		dst[m] = t.Idx[m][p]
	}
	return dst
}

// Validate checks dims, slice lengths and coordinate ranges.
func (t *Tensor) Validate() error {
	if t.Order() < 1 {
		return fmt.Errorf("%w: zero-order tensor", ErrBadTensor)
	}
	for m, d := range t.Dims {
		if d <= 0 {
			return fmt.Errorf("%w: mode %d has non-positive length %d", ErrBadTensor, m, d)
		}
		if len(t.Idx[m]) != t.NNZ() {
			return fmt.Errorf("%w: mode %d has %d coords for %d values",
				ErrBadTensor, m, len(t.Idx[m]), t.NNZ())
		}
	}
	for p := 0; p < t.NNZ(); p++ {
		for m := range t.Dims {
			if c := t.Idx[m][p]; c < 0 || int(c) >= t.Dims[m] {
				return fmt.Errorf("%w: entry %d mode %d coordinate %d outside [0,%d)",
					ErrBadTensor, p, m, c, t.Dims[m])
			}
		}
	}
	return nil
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := NewTensor(t.Dims, t.NNZ())
	for m := range t.Idx {
		c.Idx[m] = append(c.Idx[m], t.Idx[m]...)
	}
	c.Val = append(c.Val, t.Val...)
	return c
}

// SortByModes sorts entries lexicographically by the given mode order
// (order[0] most significant) using a stable LSD counting sort, one
// linear pass per mode.
func (t *Tensor) SortByModes(order []int) error {
	if len(order) != t.Order() {
		return fmt.Errorf("%w: mode order %v for order-%d tensor", ErrBadTensor, order, t.Order())
	}
	seen := make([]bool, t.Order())
	for _, m := range order {
		if m < 0 || m >= t.Order() || seen[m] {
			return fmt.Errorf("%w: bad mode order %v", ErrBadTensor, order)
		}
		seen[m] = true
	}
	if err := t.Validate(); err != nil {
		return err
	}
	n := t.NNZ()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	next := make([]int32, n)
	// Least significant mode first.
	for lvl := len(order) - 1; lvl >= 0; lvl-- {
		m := order[lvl]
		key := t.Idx[m]
		counts := make([]int32, t.Dims[m]+1)
		for _, p := range perm {
			counts[key[p]+1]++
		}
		for d := 0; d < t.Dims[m]; d++ {
			counts[d+1] += counts[d]
		}
		for _, p := range perm {
			next[counts[key[p]]] = p
			counts[key[p]]++
		}
		perm, next = next, perm
	}
	// Apply the permutation.
	for m := range t.Idx {
		applied := make([]Index, n)
		for i, p := range perm {
			applied[i] = t.Idx[m][p]
		}
		t.Idx[m] = applied
	}
	vals := make([]float64, n)
	for i, p := range perm {
		vals[i] = t.Val[p]
	}
	t.Val = vals
	return nil
}

// Dedup merges duplicate coordinates (summing values) after sorting by
// the natural mode order 0..N-1. Returns the number of merged entries.
func (t *Tensor) Dedup() (int, error) {
	if t.NNZ() == 0 {
		return 0, nil
	}
	order := make([]int, t.Order())
	for m := range order {
		order[m] = m
	}
	if err := t.SortByModes(order); err != nil {
		return 0, err
	}
	w := 0
	for p := 1; p < t.NNZ(); p++ {
		same := true
		for m := range t.Idx {
			if t.Idx[m][p] != t.Idx[m][w] {
				same = false
				break
			}
		}
		if same {
			t.Val[w] += t.Val[p]
			continue
		}
		w++
		for m := range t.Idx {
			t.Idx[m][w] = t.Idx[m][p]
		}
		t.Val[w] = t.Val[p]
	}
	merged := t.NNZ() - (w + 1)
	for m := range t.Idx {
		t.Idx[m] = t.Idx[m][:w+1]
	}
	t.Val = t.Val[:w+1]
	return merged, nil
}

// DefaultModeOrder returns the CSF mode ordering for MTTKRP on
// `mode`: the output mode at the root, remaining modes by increasing
// length — short modes near the root maximise branch sharing, the
// standard SPLATT/CSF choice.
func DefaultModeOrder(dims []int, mode int) []int {
	rest := make([]int, 0, len(dims)-1)
	for m := range dims {
		if m != mode {
			rest = append(rest, m)
		}
	}
	sort.Slice(rest, func(a, b int) bool {
		if dims[rest[a]] != dims[rest[b]] {
			return dims[rest[a]] < dims[rest[b]]
		}
		return rest[a] < rest[b]
	})
	return append([]int{mode}, rest...)
}
