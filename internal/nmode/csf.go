package nmode

import (
	"fmt"
)

// CSF is the order-N compressed sparse fiber structure: an N-level
// tree. Level 0 holds the (compressed) root slices in ModeOrder[0];
// each deeper level holds the distinct child ids beneath each parent;
// the leaf level carries one id and one value per nonzero.
//
// For N = 3 with ModeOrder (i, k, j) this is exactly the SPLATT
// structure of Figure 1b: ID[0] = slice ids, ID[1] = k_index,
// Ptr[1] = k_pointer, ID[2] = j_index.
type CSF struct {
	Dims      []int
	ModeOrder []int
	// ID[d] are the ids at level d (coordinates in mode ModeOrder[d]).
	ID [][]Index
	// Ptr[d] (for d < N-1) gives the child range of each level-d node:
	// children of node x are ID[d+1][Ptr[d][x] : Ptr[d][x+1]].
	Ptr [][]int32
	// Val[p] is the value of leaf p.
	Val []float64
}

// Order returns the number of modes.
//
//spblock:hotpath
func (c *CSF) Order() int { return len(c.Dims) }

// NNZ returns the number of leaves.
//
//spblock:hotpath
func (c *CSF) NNZ() int { return len(c.Val) }

// NumNodes returns the node count at level d.
//
//spblock:hotpath
func (c *CSF) NumNodes(d int) int { return len(c.ID[d]) }

// MemoryBytes reports the in-memory footprint (4-byte ids/pointers,
// 8-byte values).
func (c *CSF) MemoryBytes() int64 {
	var s int64
	for d := range c.ID {
		s += 4 * int64(len(c.ID[d]))
	}
	for d := range c.Ptr {
		s += 4 * int64(len(c.Ptr[d]))
	}
	return s + 8*int64(len(c.Val))
}

// Build converts t into CSF form with the given mode order (defaulting
// to DefaultModeOrder for mode 0 when nil). The input is not modified.
func Build(t *Tensor, modeOrder []int) (*CSF, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if modeOrder == nil {
		modeOrder = DefaultModeOrder(t.Dims, 0)
	}
	n := t.Order()
	if len(modeOrder) != n {
		return nil, fmt.Errorf("%w: mode order %v for order-%d tensor", ErrBadTensor, modeOrder, n)
	}
	sorted := t.Clone()
	if err := sorted.SortByModes(modeOrder); err != nil {
		return nil, err
	}
	c := &CSF{
		Dims:      append([]int(nil), t.Dims...),
		ModeOrder: append([]int(nil), modeOrder...),
		ID:        make([][]Index, n),
		Ptr:       make([][]int32, n-1),
	}
	nnz := sorted.NNZ()
	if nnz == 0 {
		for d := 0; d < n-1; d++ {
			c.Ptr[d] = []int32{0}
		}
		return c, nil
	}

	// keys[d][p] is nonzero p's coordinate at tree level d.
	keys := make([][]Index, n)
	for d, m := range modeOrder {
		keys[d] = sorted.Idx[m]
	}
	// boundary[p] is the shallowest level at which nonzero p differs
	// from p-1; a node starts at p on every level >= boundary[p].
	boundary := make([]int, nnz)
	boundary[0] = 0
	for p := 1; p < nnz; p++ {
		b := n - 1 // duplicates of the predecessor still form their own leaf
		for d := 0; d < n; d++ {
			if keys[d][p] != keys[d][p-1] {
				b = d
				break
			}
		}
		boundary[p] = b
	}

	// Per level: emit ids at node starts, and count level-(d+1) starts
	// within each node to form the child pointers.
	for d := 0; d < n; d++ {
		var ids []Index
		var ptr []int32
		children := int32(0)
		for p := 0; p < nnz; p++ {
			if boundary[p] <= d {
				ids = append(ids, keys[d][p])
				if d < n-1 {
					ptr = append(ptr, children)
				}
			}
			if d < n-1 && boundary[p] <= d+1 {
				children++
			}
		}
		c.ID[d] = ids
		if d < n-1 {
			c.Ptr[d] = append(ptr, children)
		}
	}
	c.Val = append([]float64(nil), sorted.Val...)
	return c, nil
}

// Validate checks the tree invariants: consistent level sizes, monotone
// pointers spanning the next level, in-range ids.
func (c *CSF) Validate() error {
	n := c.Order()
	if n < 1 || len(c.ID) != n || len(c.Ptr) != n-1 {
		return fmt.Errorf("%w: malformed CSF levels", ErrBadTensor)
	}
	if len(c.ModeOrder) != n {
		return fmt.Errorf("%w: mode order length %d", ErrBadTensor, len(c.ModeOrder))
	}
	for d := 0; d < n; d++ {
		dim := c.Dims[c.ModeOrder[d]]
		for _, id := range c.ID[d] {
			if id < 0 || int(id) >= dim {
				return fmt.Errorf("%w: level %d id %d outside [0,%d)", ErrBadTensor, d, id, dim)
			}
		}
	}
	for d := 0; d < n-1; d++ {
		ptr := c.Ptr[d]
		if len(ptr) != len(c.ID[d])+1 {
			return fmt.Errorf("%w: level %d pointer length %d for %d nodes",
				ErrBadTensor, d, len(ptr), len(c.ID[d]))
		}
		if len(ptr) > 0 && (ptr[0] != 0 || int(ptr[len(ptr)-1]) != len(c.ID[d+1])) {
			return fmt.Errorf("%w: level %d pointers do not span level %d", ErrBadTensor, d, d+1)
		}
		for x := 1; x < len(ptr); x++ {
			if ptr[x] < ptr[x-1] {
				return fmt.Errorf("%w: level %d pointers not monotone", ErrBadTensor, d)
			}
		}
	}
	if len(c.ID[n-1]) != len(c.Val) {
		return fmt.Errorf("%w: %d leaf ids for %d values", ErrBadTensor, len(c.ID[n-1]), len(c.Val))
	}
	return nil
}

// ToTensor expands the CSF back to coordinate form.
func (c *CSF) ToTensor() *Tensor {
	t := NewTensor(c.Dims, c.NNZ())
	n := c.Order()
	coords := make([]Index, n)
	var walk func(d int, node int32)
	walk = func(d int, node int32) {
		coords[c.ModeOrder[d]] = c.ID[d][node]
		if d == n-1 {
			t.Append(coords, c.Val[node])
			return
		}
		for ch := c.Ptr[d][node]; ch < c.Ptr[d][node+1]; ch++ {
			walk(d+1, ch)
		}
	}
	for root := 0; root < c.NumNodes(0); root++ {
		walk(0, int32(root))
	}
	return t
}
