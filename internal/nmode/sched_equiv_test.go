package nmode_test

// Order-4 cross-scheduler equivalence: the static, stealing and
// adaptive schedulers must produce bit-identical MTTKRP outputs on
// Poisson and clustered-skew tensors, for both the unblocked
// (root-range) and blocked (layer) work units. This is the N-mode half
// of the matrix pinned for order 3 in internal/core/sched_test.go; it
// lives in an external test package because internal/gen imports
// internal/nmode.

import (
	"math/rand"
	"testing"

	"spblock/internal/gen"
	"spblock/internal/la"
	"spblock/internal/nmode"
	"spblock/internal/sched"
)

func randFactors(seed int64, dims []int, mode, rank int) ([]*la.Matrix, *la.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	factors := make([]*la.Matrix, len(dims))
	for m := range dims {
		if m == mode {
			continue
		}
		f := la.NewMatrix(dims[m], rank)
		for i := range f.Data {
			f.Data[i] = rng.NormFloat64()
		}
		factors[m] = f
	}
	return factors, la.NewMatrix(dims[mode], rank)
}

func equivTensors(t *testing.T) map[string]*nmode.Tensor {
	t.Helper()
	dims := []int{18, 14, 12, 10}
	poisson, err := gen.PoissonN(gen.PoissonNParams{Dims: dims, Events: 5000}, 21)
	if err != nil {
		t.Fatal(err)
	}
	// Few large clusters holding most of the mass: the skewed shape the
	// stealing scheduler exists for.
	clustered, err := gen.ClusteredN(gen.ClusteredNParams{
		Dims: dims, NNZ: 4000, Clusters: 3, ClusterFrac: 0.9, ClusterSide: 0.3,
	}, 22)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*nmode.Tensor{"poisson4": poisson, "clustered4": clustered}
}

// TestSchedulerEquivalenceOrder4 pins bit-identity of steal and
// adaptive against static across the unblocked and blocked paths, with
// and without rank strips, on two output modes.
func TestSchedulerEquivalenceOrder4(t *testing.T) {
	const rank = 19
	configs := []struct {
		name string
		opts nmode.Options
	}{
		{"unblocked", nmode.Options{Workers: 4}},
		{"unblocked-strips", nmode.Options{Workers: 4, RankBlockCols: 8}},
		{"blocked", nmode.Options{Workers: 4, Grid: []int{3, 2, 1, 2}}},
		{"blocked-strips", nmode.Options{Workers: 4, Grid: []int{3, 2, 1, 2}, RankBlockCols: 8}},
	}
	for name, x := range equivTensors(t) {
		for _, cfg := range configs {
			for _, mode := range []int{0, 2} {
				factors, want := randFactors(int64(100+mode), x.Dims, mode, rank)
				base := cfg.opts
				base.Sched = sched.PolicyStatic
				eS, err := nmode.NewExecutor(x, mode, base)
				if err != nil {
					t.Fatal(err)
				}
				if err := eS.Run(factors, want); err != nil {
					t.Fatal(err)
				}
				for _, pol := range []sched.Policy{sched.PolicySteal, sched.PolicyAdaptive} {
					opts := cfg.opts
					opts.Sched = pol
					e, err := nmode.NewExecutor(x, mode, opts)
					if err != nil {
						t.Fatal(err)
					}
					got := la.NewMatrix(x.Dims[mode], rank)
					for run := 0; run < 4; run++ {
						if err := e.Run(factors, got); err != nil {
							t.Fatal(err)
						}
						for i, v := range got.Data {
							if v != want.Data[i] {
								t.Fatalf("%s/%s mode %d sched %v run %d: output differs from static at %d: %v != %v",
									name, cfg.name, mode, pol, run, i, v, want.Data[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestSchedPolicyRejectedOrder4 pins Options.Sched validation at the
// N-mode executor boundary.
func TestSchedPolicyRejectedOrder4(t *testing.T) {
	x := nmode.NewTensor([]int{4, 4, 4, 4}, 1)
	x.Append([]nmode.Index{1, 1, 1, 1}, 1)
	if _, err := nmode.NewExecutor(x, 0, nmode.Options{Sched: sched.Policy(9)}); err == nil {
		t.Fatal("NewExecutor accepted an invalid sched policy")
	}
}
