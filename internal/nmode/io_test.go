package nmode

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadTNSNOrder4(t *testing.T) {
	in := `# a 4-way tensor
1 1 1 1 5.0
2 3 1 4 -2
1 2 2 2 0.25
`
	x, err := ReadTNS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if x.Order() != 4 || x.NNZ() != 3 {
		t.Fatalf("order=%d nnz=%d", x.Order(), x.NNZ())
	}
	want := []int{2, 3, 2, 4}
	for m, d := range want {
		if x.Dims[m] != d {
			t.Fatalf("dims = %v, want %v", x.Dims, want)
		}
	}
	if x.Val[1] != -2 || x.Idx[3][1] != 3 {
		t.Fatal("entries parsed wrong")
	}
}

func TestReadTNSNDimsComment(t *testing.T) {
	in := "# dims: 5 5 5 5 5\n1 1 1 1 1 2.5\n"
	x, err := ReadTNS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if x.Order() != 5 || x.Dims[4] != 5 {
		t.Fatalf("dims = %v", x.Dims)
	}
}

func TestReadTNSNErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields":      "1 1\n",
		"mixed order":         "1 1 1 1\n1 1 1 1 1\n",
		"zero coordinate":     "0 1 1 1\n",
		"bad coordinate":      "x 1 1 1\n",
		"bad value":           "1 1 1 zz\n",
		"dims comment order":  "# dims: 2 2\n1 1 1 1\n",
		"dims below data":     "# dims: 1 1 1\n2 1 1 1\n",
		"bad dims comment":    "# dims: a b\n1 1 1 1\n",
		"empty without dims":  "# nothing\n",
		"coordinate overflow": "4294967296 1 1 1\n",
	}
	for name, in := range cases {
		if _, err := ReadTNS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestReadTNSNEmptyWithDims(t *testing.T) {
	x, err := ReadTNS(strings.NewReader("# dims: 3 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if x.Order() != 2 || x.NNZ() != 0 {
		t.Fatalf("order=%d nnz=%d", x.Order(), x.NNZ())
	}
}

// A single .tns line larger than bufio.Scanner's old 1<<22 token cap
// must parse: the reader is built on bufio.Reader line accumulation,
// not a capped Scanner. Regression test for the "token too long"
// failure on >4 MiB lines.
func TestReadTNSLongLine(t *testing.T) {
	var b strings.Builder
	b.WriteString("1 1 1 2.5")
	// Trailing spaces are legal field separators; pad the line past the
	// old cap without changing its meaning.
	pad := strings.Repeat(" ", 1<<16)
	for b.Len() < (1<<22)+(1<<20) {
		b.WriteString(pad)
	}
	b.WriteString("\n2 2 2 -1\n")
	x, err := ReadTNS(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("long line rejected: %v", err)
	}
	if x.NNZ() != 2 || x.Val[0] != 2.5 || x.Val[1] != -1 {
		t.Fatalf("long line parsed wrong: nnz=%d val=%v", x.NNZ(), x.Val)
	}
}

func TestTNSStreamMatchesReadTNS(t *testing.T) {
	in := "# dims: 4 5 3\n1 2 3 1.5\n4 5 1 -2\n\n# comment\n2 2 2 0.25"
	want, err := ReadTNS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	s := NewTNSStream(strings.NewReader(in))
	p := 0
	for {
		coords, val, err := s.Next()
		if err != nil {
			break
		}
		if val != want.Val[p] {
			t.Fatalf("entry %d: val %v want %v", p, val, want.Val[p])
		}
		for m := range coords {
			if coords[m] != want.Idx[m][p] {
				t.Fatalf("entry %d mode %d: %d want %d", p, m, coords[m], want.Idx[m][p])
			}
		}
		p++
	}
	if p != want.NNZ() || s.NNZ() != want.NNZ() {
		t.Fatalf("streamed %d entries, want %d", p, want.NNZ())
	}
	dd := s.DeclaredDims()
	if len(dd) != 3 || dd[0] != 4 || dd[1] != 5 || dd[2] != 3 {
		t.Fatalf("declared dims = %v", dd)
	}
	if s.Order() != 3 {
		t.Fatalf("order = %d", s.Order())
	}
}

func TestWriteReadRoundTripN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randTensorN(rng, []int{4, 5, 3, 6}, 120)
	var buf bytes.Buffer
	if err := WriteTNS(&buf, x); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTNS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Order() != 4 || back.NNZ() != x.NNZ() {
		t.Fatalf("round trip shape wrong: order=%d nnz=%d", back.Order(), back.NNZ())
	}
	for m := range x.Dims {
		if back.Dims[m] != x.Dims[m] {
			t.Fatalf("dims = %v vs %v", back.Dims, x.Dims)
		}
	}
	// Entry-by-entry (x is deduped-sorted; back preserves write order).
	for p := 0; p < x.NNZ(); p++ {
		if back.Val[p] != x.Val[p] {
			t.Fatalf("value mismatch at %d", p)
		}
		for m := range x.Dims {
			if back.Idx[m][p] != x.Idx[m][p] {
				t.Fatalf("coord mismatch at %d mode %d", p, m)
			}
		}
	}
}

func TestFileRoundTripN(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t4.tns")
	rng := rand.New(rand.NewSource(2))
	x := randTensorN(rng, []int{3, 3, 3, 3}, 30)
	if err := SaveTNSFile(path, x); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTNSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != x.NNZ() {
		t.Fatal("file round trip lost entries")
	}
	if _, err := LoadTNSFile(filepath.Join(dir, "missing.tns")); err == nil {
		t.Fatal("missing file accepted")
	}
}
