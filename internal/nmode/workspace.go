package nmode

import (
	"runtime"
	"sync"
	"time"

	"spblock/internal/analysis/check"
	"spblock/internal/kernel"
	"spblock/internal/la"
	"spblock/internal/metrics"
	"spblock/internal/sched"
)

// nworkspace owns every buffer the N-mode kernels touch beyond the
// caller's operands, mirroring internal/core's workspace discipline: a
// CP-ALS decomposition calls MTTKRP 10-1000s of times, and the one-shot
// MTTKRP's per-call makes (packed factor strips, per-worker DFS
// accumulators, goroutine closures) turn into allocator pressure and GC
// noise on every sweep and every autotuner measurement.
//
// Worker-count-dependent state (the sched.Queue layouts, the worker
// closures) is built once in NewExecutor; rank-dependent buffers (walkers, packed
// strips) are sized lazily on the first Run and rebuilt only when the
// rank changes. Ownership rule: everything here belongs to exactly one
// Executor, which must not Run concurrently with itself.
//
//spblock:workspace
type nworkspace struct {
	// rank the rank-dependent buffers are sized for (0 = never sized).
	rank int

	// runners are the prebuilt worker bodies; empty when the plan
	// resolves to sequential execution.
	runners []func()
	wg      sync.WaitGroup

	// Operand state of the in-flight Run (or strip), published before
	// the workers launch and joined before it changes.
	factors []*la.Matrix
	out     *la.Matrix

	// q distributes the run's work units — root-slice ranges on the
	// unblocked path, root-mode block layers on the blocked path — to
	// the prebuilt runners under the requested scheduling policy (see
	// internal/sched). Built once in initRunners.
	q sched.Queue

	// walkers holds one DFS accumulator set per worker (index 0 serves
	// the sequential path).
	walkers []*walker

	// Packed rank-strip buffers (Sec. V-B "stacked strips"), one per
	// non-root mode, plus reusable view headers and the factor-pointer
	// slice handed to the walkers during strips.
	packed []*la.Matrix
	views  []la.Matrix
	pf     []*la.Matrix
	oPack  *la.Matrix
	oView  la.Matrix

	// kern is the register-block kernel variant for the effective strip
	// width, resolved once per rank change and copied into every pooled
	// walker.
	kern kernel.Strip
}

// ensure sizes the rank-dependent buffers for rank r. No-op when the
// rank is unchanged, which is the steady state of a decomposition.
//
//spblock:coldpath
func (e *Executor) ensure(r int) {
	ws := &e.ws
	if ws.rank == r {
		return
	}
	ws.rank = r
	// The adaptive window baseline must track the worker buckets: after
	// a mid-life SetWorkers the buckets were re-sized, and a stale-length
	// baseline makes WindowImbalance report 1 ("balanced") forever — the
	// promotion ratchet would silently die. SizeWorkers zeroed the fresh
	// buckets, so a zero baseline is exact.
	if e.ctrl != nil && len(e.prevNS) != e.met.Workers() {
		e.prevNS = make([]int64, e.met.Workers())
	}
	// The effective strip width drives the kernel variant: packed
	// strips are RankBlockCols wide, otherwise the whole rank is one
	// strip (narrower final strips fall to the variant's scalar tail).
	eff := r
	if bs := e.opts.RankBlockCols; bs > 0 && bs < r {
		eff = bs
	}
	ws.kern = kernel.Resolve(eff)
	e.met.SetKernel(ws.kern.Name)
	nw := max(len(ws.runners), 1)
	ws.walkers = ws.walkers[:0]
	for w := 0; w < nw; w++ {
		ws.walkers = append(ws.walkers, newWalkerBufs(e.order, r, ws.kern))
	}
	if bs := e.opts.RankBlockCols; bs > 0 && bs < r {
		if check.Enabled {
			check.Must("nmode.ensure", check.StripLadder(r, bs))
		}
		if ws.packed == nil {
			ws.packed = make([]*la.Matrix, e.order)
			ws.views = make([]la.Matrix, e.order)
			ws.pf = make([]*la.Matrix, e.order)
		}
		for m := 0; m < e.order; m++ {
			if m == e.mode {
				ws.packed[m] = nil
				continue
			}
			ws.packed[m] = la.NewMatrix(e.dims[m], bs)
		}
		ws.oPack = la.NewMatrix(e.dims[e.mode], bs)
	}
	e.met.SetPerRun(e.perRunMetrics(r))
}

// perRunMetrics derives the per-Run counter deltas from the
// preprocessed structure at rank r, on the amortised resize path (the
// same split internal/core uses): "fibers" are the parents of the leaf
// level, the N-mode generalisation of the order-3 fiber epilogue.
//
//spblock:coldpath
func (e *Executor) perRunMetrics(r int) metrics.PerRun {
	var nnz, fibers, blocks int64
	if e.blocked != nil {
		nnz = int64(e.blocked.NNZ())
		for _, layer := range e.layers {
			for _, blk := range layer {
				fibers += int64(blk.NumNodes(blk.Order() - 2))
				blocks++
			}
		}
	} else {
		nnz = int64(e.csf.NNZ())
		fibers = int64(e.csf.NumNodes(e.order - 2))
	}
	strips := 0
	if bs := e.opts.RankBlockCols; bs > 0 && bs < r {
		strips = (r + bs - 1) / bs
	}
	walks := int64(max(strips, 1))
	return metrics.PerRun{
		NNZ:      nnz * walks,
		Fibers:   fibers * walks,
		Blocks:   blocks * walks,
		Strips:   int64(strips),
		BytesEst: metrics.EqBytes(nnz, fibers, r, int(walks)),
	}
}

// launch runs every worker body and waits. The closures were built in
// NewExecutor and goroutine descriptors are recycled by the runtime, so
// a steady-state launch does not allocate.
//
//spblock:hotpath
func (ws *nworkspace) launch() {
	ws.q.Reset()
	ws.wg.Add(len(ws.runners))
	for _, fn := range ws.runners {
		go fn()
	}
	ws.wg.Wait()
}

// initRunners builds the worker closures and the sched.Queue layouts
// they claim from, once, after the tree structures exist. Runners are
// only built when the plan resolves to more than one effective worker;
// otherwise Run takes the inline sequential paths. All share/chunk
// computation lives in internal/sched — this function only defines the
// work units (root ranges, block layers) and their weight functions.
//
//spblock:coldpath
func (e *Executor) initRunners() {
	ws := &e.ws
	workers := e.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if e.blocked != nil {
		if workers > len(e.layers) {
			workers = len(e.layers)
		}
		if workers <= 1 {
			return
		}
		// Static: the historical shared layer counter. Stealing:
		// nnz-balanced groups of adjacent layers with per-worker
		// segments.
		ws.q.InitStaticShared(sched.UnitRanges(len(e.layers)))
		if e.opts.Sched != sched.PolicyStatic {
			cum := layerCum(e.layers)
			ws.q.InitStealing(sched.StealChunks(len(e.layers), workers, cum), workers)
		}
		for w := 0; w < workers; w++ {
			w := w
			ws.runners = append(ws.runners, func() {
				defer ws.wg.Done()
				t0 := time.Now()
				wk := ws.walkers[w]
				for {
					lo, hi, stolen, ok := ws.q.Next(w)
					if !ok {
						break
					}
					if stolen {
						e.met.AddWorkerSteal(w)
					}
					for li := lo; li < hi; li++ {
						for _, blk := range e.layers[li] {
							wk.bind(blk, ws.factors, ws.out)
							wk.roots(0, blk.NumNodes(0))
						}
					}
				}
				e.met.AddWorkerTime(w, time.Since(t0))
			})
		}
		return
	}
	// Unblocked path: root-slice ranges weighted by leaf count —
	// distinct roots own distinct output rows, so any partition is
	// race-free and bit-identical.
	roots := e.csf.NumNodes(0)
	end := rootLeafEnds(e.csf)
	cum := func(i int) int64 { return end[i] }
	shares := sched.Shares(roots, workers, cum)
	if len(shares) <= 1 {
		return
	}
	nw := len(shares)
	ws.q.InitStatic(shares)
	if e.opts.Sched != sched.PolicyStatic {
		ws.q.InitStealing(sched.StealChunks(roots, nw, cum), nw)
	}
	for w := 0; w < nw; w++ {
		w := w
		ws.runners = append(ws.runners, func() {
			defer ws.wg.Done()
			t0 := time.Now()
			wk := ws.walkers[w]
			wk.bind(e.csf, ws.factors, ws.out)
			for {
				lo, hi, stolen, ok := ws.q.Next(w)
				if !ok {
					break
				}
				if stolen {
					e.met.AddWorkerSteal(w)
				}
				wk.roots(lo, hi)
			}
			e.met.AddWorkerTime(w, time.Since(t0))
		})
	}
}

// rootLeafEnds returns end[x] = leaves under roots [0, x], by composing
// the child pointers level by level (subtrees are contiguous at every
// level) — the leaf-count weight function for the root partition.
//
//spblock:coldpath
func rootLeafEnds(c *CSF) []int64 {
	roots := c.NumNodes(0)
	n := c.Order()
	end := make([]int64, roots)
	for x := 0; x < roots; x++ {
		p := int32(x + 1)
		for d := 0; d < n-1; d++ {
			p = c.Ptr[d][p]
		}
		end[x] = int64(p)
	}
	return end
}

// layerCum returns the cumulative-nonzero weight function over the
// blocked tensor's root-mode layers, for nnz-balanced steal chunks.
//
//spblock:coldpath
func layerCum(layers [][]*CSF) func(int) int64 {
	prefix := make([]int64, len(layers))
	var total int64
	for li, layer := range layers {
		for _, blk := range layer {
			total += int64(blk.NNZ())
		}
		prefix[li] = total
	}
	return func(i int) int64 { return prefix[i] }
}
