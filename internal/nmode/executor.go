package nmode

import (
	"fmt"
	"time"

	"spblock/internal/analysis/check"
	"spblock/internal/kernel"
	"spblock/internal/la"
	"spblock/internal/metrics"
	"spblock/internal/sched"
)

// Executor owns the preprocessed structures and pooled workspace for
// repeated MTTKRP products over one mode of an order-N tensor — the
// N-mode counterpart of core.Executor. NewExecutor builds the
// mode-rooted CSF tree (or the blocked layout when opts.Grid asks for
// one) and validates it exactly once; Run then reuses pooled walkers,
// packed rank-strip buffers and prebuilt worker closures, so
// steady-state calls perform no heap allocations.
//
// Like core.Executor, one Executor must not Run concurrently with
// itself; distinct Executors (e.g. distinct modes of an engine.NEngine)
// are independent.
type Executor struct {
	dims  []int
	mode  int
	order int
	opts  Options

	// Exactly one of csf / blocked is non-nil.
	csf     *CSF
	blocked *BlockedTensor
	// layers groups the non-empty blocks by their root-mode block
	// coordinate: blocks in different layers write disjoint output rows,
	// so layers are the parallel work units of the blocked path.
	layers [][]*CSF

	ws  nworkspace
	met metrics.Collector

	// ctrl is the adaptive policy's promotion loop (nil unless
	// Options.Sched is PolicyAdaptive and the executor runs parallel);
	// prevNS is its per-worker busy-time window baseline, pre-sized on
	// the cold path.
	ctrl   *sched.Controller
	prevNS []int64
}

// NewExecutor preprocesses t for mode-`mode` MTTKRP products under
// opts. The CSF mode order is DefaultModeOrder (output mode at the
// root, remaining modes by increasing length).
func NewExecutor(t *Tensor, mode int, opts Options) (*Executor, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := t.Order()
	if n < 2 {
		return nil, fmt.Errorf("nmode: executor needs order >= 2, got %d", n)
	}
	if mode < 0 || mode >= n {
		return nil, fmt.Errorf("nmode: mode %d out of range [0,%d)", mode, n)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("nmode: negative worker count %d", opts.Workers)
	}
	if opts.RankBlockCols < 0 {
		return nil, fmt.Errorf("nmode: negative RankBlockCols %d", opts.RankBlockCols)
	}
	if !opts.Sched.Valid() {
		return nil, fmt.Errorf("nmode: unknown sched policy %d", opts.Sched)
	}
	e := &Executor{
		dims:  append([]int(nil), t.Dims...),
		mode:  mode,
		order: n,
		opts:  opts,
	}
	modeOrder := DefaultModeOrder(t.Dims, mode)
	grid, blocked, err := normalizeGrid(opts.Grid, t.Dims)
	if err != nil {
		return nil, err
	}
	if blocked {
		bt, err := BuildBlocked(t, grid, modeOrder)
		if err != nil {
			return nil, err
		}
		e.blocked = bt
		e.layers = rootLayers(bt, mode)
	} else {
		c, err := Build(t, modeOrder)
		if err != nil {
			return nil, err
		}
		e.csf = c
	}
	if check.Enabled {
		if e.blocked != nil {
			check.Must("nmode.NewExecutor", validateBlocked(e.blocked))
		} else {
			check.Must("nmode.NewExecutor", validateTree(e.csf))
		}
	}
	e.initRunners()
	e.met.SizeWorkers(len(e.ws.runners))
	e.initSched()
	return e, nil
}

// initSched applies the requested scheduling policy to the queue the
// runners claim from, mirroring core.Executor.initSched. Re-entrant:
// SetWorkers calls it again after rebuilding the runners, and an
// adaptive executor keeps its controller (and any promotion already
// ratcheted) across the resize; the window baseline is sized by the
// ensure path, which re-sizes it whenever the worker buckets change.
//
//spblock:coldpath
func (e *Executor) initSched() {
	if len(e.ws.runners) == 0 {
		e.ctrl = nil
		e.prevNS = nil
		e.met.SetSched("")
		return
	}
	switch {
	case e.opts.Sched == sched.PolicySteal && e.ws.q.CanSteal():
		e.ws.q.SetStealing(true)
		e.met.SetSched(sched.StealName)
	case e.opts.Sched == sched.PolicyAdaptive && e.ws.q.CanSteal():
		if e.ctrl == nil {
			e.ctrl = sched.NewController(sched.ControllerConfig{})
		}
		if e.ctrl.Promoted() {
			e.ws.q.SetStealing(true)
			e.met.SetSched(sched.AdaptiveStealName)
		} else {
			e.met.SetSched(sched.AdaptiveStaticName)
		}
	default:
		e.ctrl = nil
		e.prevNS = nil
		e.met.SetSched(sched.StaticName)
	}
}

// SetWorkers re-sizes the executor's parallelism mid-life to n workers
// (0 = GOMAXPROCS), rebuilding the worker closures, queue layouts and
// metrics buckets while keeping the preprocessed tree structures — the
// N-mode counterpart of core.Executor.SetWorkers, with the same
// contract: never call it concurrently with Run, and an adaptive
// executor's controller (and promotion state) survives the resize.
//
//spblock:coldpath
func (e *Executor) SetWorkers(n int) error {
	if n < 0 {
		return fmt.Errorf("nmode: negative worker count %d", n)
	}
	e.opts.Workers = n
	e.ws.runners = nil
	e.ws.q = sched.Queue{}
	e.initRunners()
	e.met.SizeWorkers(len(e.ws.runners))
	e.initSched()
	// Force the next Run through ensure so the per-worker walkers and
	// the adaptive window baseline re-size at the new width.
	e.ws.rank = 0
	return nil
}

// Mode returns the output mode this executor serves.
func (e *Executor) Mode() int { return e.mode }

// Kernel reports the register-block kernel variant the executor's leaf
// level dispatches through, resolved from the effective strip width on
// the first Run at a given rank (the zero Variant before any Run).
func (e *Executor) Kernel() kernel.Variant { return e.ws.kern.Variant }

// Metrics returns the executor's instrumentation collector: per-Run
// counters and per-worker time buckets, always collecting. Snapshot it
// between Runs, never mid-Run.
func (e *Executor) Metrics() *metrics.Collector { return &e.met }

// Sched reports the resolved scheduler identity (the internal/sched
// name constants); adaptive executors report their current layout.
// Empty for sequential executors.
func (e *Executor) Sched() string { return e.met.Sched() }

// Dims returns the tensor shape.
func (e *Executor) Dims() []int { return e.dims }

// Order returns the number of modes.
func (e *Executor) Order() int { return e.order }

// NNZ returns the nonzero count of the preprocessed tensor.
//
//spblock:hotpath
func (e *Executor) NNZ() int {
	if e.blocked != nil {
		return e.blocked.NNZ()
	}
	return e.csf.NNZ()
}

// Run computes out = MTTKRP over the executor's mode. factors is
// indexed by mode (the output mode's entry may be nil); out must be
// dims[mode] x R and is zeroed first. Steady-state calls at a fixed
// rank are allocation-free; a rank change re-sizes the pooled buffers
// once.
//
//spblock:hotpath
func (e *Executor) Run(factors []*la.Matrix, out *la.Matrix) error {
	if err := e.checkOperands(factors, out); err != nil {
		return err
	}
	r := out.Cols
	e.ensure(r)
	start := time.Now()
	out.Zero()
	if e.NNZ() == 0 {
		e.met.EndRun(start)
		return nil
	}
	bs := e.opts.RankBlockCols
	if bs <= 0 || bs >= r {
		e.runAll(factors, out)
		e.met.EndRun(start)
		e.observe()
		return nil
	}
	// Rank strips (Sec. V-B): pack each operand strip into the pooled
	// contiguous buffers, reusing the workspace's view headers.
	ws := &e.ws
	for rr := 0; rr < r; rr += bs {
		w := min(bs, r-rr)
		for m := 0; m < e.order; m++ {
			if m == e.mode {
				ws.pf[m] = nil
				continue
			}
			pv := &ws.views[m]
			*pv = la.Matrix{Rows: ws.packed[m].Rows, Cols: w, Stride: ws.packed[m].Stride, Data: ws.packed[m].Data}
			packStrip(pv, factors[m], rr)
			ws.pf[m] = pv
		}
		po := &ws.oView
		*po = la.Matrix{Rows: ws.oPack.Rows, Cols: w, Stride: ws.oPack.Stride, Data: ws.oPack.Data}
		po.Zero()
		e.runAll(ws.pf, po)
		unpackStrip(out, po, rr)
	}
	e.met.EndRun(start)
	e.observe()
	return nil
}

// observe feeds the adaptive controller this run's worker-imbalance
// window and flips the queue to the stealing layout when the ratchet
// fires — the same allocation-free transition core.Executor.observe
// performs.
//
//spblock:hotpath
func (e *Executor) observe() {
	if e.ctrl == nil {
		return
	}
	if e.ctrl.Observe(e.met.WindowImbalance(e.prevNS)) {
		e.ws.q.SetStealing(true)
		e.met.SetSched(sched.AdaptiveStealName)
	}
}

//spblock:coldpath
func (e *Executor) checkOperands(factors []*la.Matrix, out *la.Matrix) error {
	if len(factors) != e.order {
		return fmt.Errorf("nmode: %d factors for order-%d tensor", len(factors), e.order)
	}
	r := out.Cols
	if r <= 0 {
		return fmt.Errorf("nmode: rank must be positive")
	}
	if out.Rows != e.dims[e.mode] {
		return fmt.Errorf("nmode: out has %d rows, want %d", out.Rows, e.dims[e.mode])
	}
	for m := 0; m < e.order; m++ {
		if m == e.mode {
			continue
		}
		f := factors[m]
		if f == nil {
			return fmt.Errorf("nmode: missing factor for mode %d", m)
		}
		if f.Cols != r || f.Rows != e.dims[m] {
			return fmt.Errorf("nmode: factor for mode %d is %dx%d, want %dx%d",
				m, f.Rows, f.Cols, e.dims[m], r)
		}
	}
	return nil
}

// runAll walks every tree once with the given operands, sequentially or
// via the prebuilt workers.
//
//spblock:hotpath
func (e *Executor) runAll(factors []*la.Matrix, out *la.Matrix) {
	ws := &e.ws
	if len(ws.runners) == 0 {
		wk := ws.walkers[0]
		if e.blocked != nil {
			for _, layer := range e.layers {
				for _, blk := range layer {
					wk.bind(blk, factors, out)
					wk.roots(0, blk.NumNodes(0))
				}
			}
			return
		}
		wk.bind(e.csf, factors, out)
		wk.roots(0, e.csf.NumNodes(0))
		return
	}
	ws.factors, ws.out = factors, out
	ws.launch()
}

// normalizeGrid clamps a requested grid to the tensor shape. Returns
// blocked=false when the request is nil or degenerates to all ones.
func normalizeGrid(grid, dims []int) ([]int, bool, error) {
	if len(grid) == 0 {
		return nil, false, nil
	}
	if len(grid) != len(dims) {
		return nil, false, fmt.Errorf("nmode: grid %v for order-%d tensor", grid, len(dims))
	}
	out := make([]int, len(grid))
	blocked := false
	for m, g := range grid {
		if g < 1 {
			g = 1
		}
		if g > dims[m] {
			g = dims[m]
		}
		out[m] = g
		if g > 1 {
			blocked = true
		}
	}
	return out, blocked, nil
}

// rootLayers buckets the non-empty blocks by their root-mode block
// coordinate. Blocks in one layer share output rows (they run
// sequentially within a worker); distinct layers are disjoint in the
// output, so workers claim whole layers from an atomic queue.
func rootLayers(bt *BlockedTensor, rootMode int) [][]*CSF {
	stride := 1
	for m := rootMode + 1; m < len(bt.Grid); m++ {
		stride *= bt.Grid[m]
	}
	byCoord := make([][]*CSF, bt.Grid[rootMode])
	for id, blk := range bt.Blocks {
		if blk == nil {
			continue
		}
		li := (id / stride) % bt.Grid[rootMode]
		byCoord[li] = append(byCoord[li], blk)
	}
	layers := byCoord[:0]
	for _, layer := range byCoord {
		if len(layer) > 0 {
			layers = append(layers, layer)
		}
	}
	return layers
}
