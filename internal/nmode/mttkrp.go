package nmode

import (
	"fmt"
	"runtime"
	"sync"

	"spblock/internal/kernel"
	"spblock/internal/la"
	"spblock/internal/sched"
)

// Options configures the N-mode MTTKRP.
type Options struct {
	// RankBlockCols is the rank-blocking strip width (0 = whole rank).
	// Strips are packed into contiguous buffers exactly as the
	// third-order kernels do (Sec. V-B).
	RankBlockCols int
	// Workers is the parallelism degree over root slices (0 = GOMAXPROCS).
	Workers int
	// Grid requests multi-dimensional blocking (Sec. V-A) with one entry
	// per mode; nil or all-ones means unblocked. Entries are clamped to
	// [1, dim]. Only Executor and the engine layer honour it — the
	// one-shot MTTKRP below operates on an already-built tree.
	Grid []int
	// Sched selects the work-distribution policy (internal/sched),
	// mirroring core.Plan.Sched: zero value static, PolicySteal chunked
	// work-stealing over root ranges or block layers, PolicyAdaptive
	// static with metrics-driven promotion. Only Executor and the
	// engine layer honour it.
	Sched sched.Policy
}

// MTTKRP computes the mode-ModeOrder[0] matricised tensor times
// Khatri-Rao product:
//
//	out[i] += Σ_{leaves under i} val · ⊙_{d>0} factors[ModeOrder[d]][id_d]
//
// factors is indexed by mode; the entry for the output mode may be nil.
// out must be Dims[ModeOrder[0]] x R and is zeroed first.
func MTTKRP(c *CSF, factors []*la.Matrix, out *la.Matrix, opts Options) error {
	if err := c.Validate(); err != nil {
		return err
	}
	n := c.Order()
	if n < 2 {
		return fmt.Errorf("nmode: MTTKRP needs order >= 2, got %d", n)
	}
	if len(factors) != n {
		return fmt.Errorf("nmode: %d factors for order-%d tensor", len(factors), n)
	}
	r := out.Cols
	if r <= 0 {
		return fmt.Errorf("nmode: rank must be positive")
	}
	if out.Rows != c.Dims[c.ModeOrder[0]] {
		return fmt.Errorf("nmode: out has %d rows, want %d", out.Rows, c.Dims[c.ModeOrder[0]])
	}
	for d := 1; d < n; d++ {
		m := c.ModeOrder[d]
		f := factors[m]
		if f == nil {
			return fmt.Errorf("nmode: missing factor for mode %d", m)
		}
		if f.Cols != r || f.Rows != c.Dims[m] {
			return fmt.Errorf("nmode: factor for mode %d is %dx%d, want %dx%d",
				m, f.Rows, f.Cols, c.Dims[m], r)
		}
	}
	out.Zero()
	if c.NNZ() == 0 {
		return nil
	}

	bs := opts.RankBlockCols
	if bs <= 0 || bs >= r {
		runOverRoots(c, factors, out, 0, opts.Workers)
		return nil
	}

	// Rank strips with packed factor buffers.
	packed := make([]*la.Matrix, n)
	for d := 1; d < n; d++ {
		m := c.ModeOrder[d]
		packed[m] = la.NewMatrix(factors[m].Rows, bs)
	}
	oPack := la.NewMatrix(out.Rows, bs)
	pf := make([]*la.Matrix, n)
	for rr := 0; rr < r; rr += bs {
		w := bs
		if rr+w > r {
			w = r - rr
		}
		for d := 1; d < n; d++ {
			m := c.ModeOrder[d]
			pv := stripView(packed[m], w)
			packStrip(pv, factors[m], rr)
			pf[m] = pv
		}
		po := stripView(oPack, w)
		po.Zero()
		runOverRoots(c, pf, po, 0, opts.Workers)
		unpackStrip(out, po, rr)
	}
	return nil
}

func stripView(m *la.Matrix, w int) *la.Matrix {
	return &la.Matrix{Rows: m.Rows, Cols: w, Stride: m.Stride, Data: m.Data}
}

//spblock:hotpath
func packStrip(dst, src *la.Matrix, rr int) {
	w := dst.Cols
	for i := 0; i < dst.Rows; i++ {
		copy(dst.Row(i), src.Data[i*src.Stride+rr:i*src.Stride+rr+w])
	}
}

//spblock:hotpath
func unpackStrip(dst, src *la.Matrix, rr int) {
	w := src.Cols
	for i := 0; i < src.Rows; i++ {
		copy(dst.Data[i*dst.Stride+rr:i*dst.Stride+rr+w], src.Row(i))
	}
}

// runOverRoots executes the tree walk for all roots, optionally in
// parallel: distinct roots own distinct output rows, so root ranges are
// race-free (the same argument as SPLATT's slice parallelism).
func runOverRoots(c *CSF, factors []*la.Matrix, out *la.Matrix, _ int, workers int) {
	roots := c.NumNodes(0)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > roots {
		workers = roots
	}
	if workers <= 1 {
		w := newWalker(c, factors, out)
		w.roots(0, roots)
		return
	}
	var wg sync.WaitGroup
	chunk := (roots + workers - 1) / workers
	for lo := 0; lo < roots; lo += chunk {
		hi := lo + chunk
		if hi > roots {
			hi = roots
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			w := newWalker(c, factors, out)
			w.roots(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Walker is a reusable, exported handle on the pooled DFS state for
// callers outside this package (the out-of-core executor): size it once
// for an order and rank, then Walk any number of CSF trees of that
// order at up to that rank. Accumulation order inside Walk is exactly
// the in-memory executor's — same resolved kernel variant, same
// root-major DFS — so walking blocks in the executor's block order
// reproduces its output bit for bit.
type Walker struct {
	w *walker
}

// NewWalker sizes a Walker for order-`order` trees at rank `rank`,
// resolving the same width-specialized leaf kernel the in-memory
// executors use at that rank.
func NewWalker(order, rank int) *Walker {
	return &Walker{w: newWalkerBufs(order, rank, kernel.Resolve(rank))}
}

// Kernel reports the resolved leaf kernel's name (for metrics).
func (wk *Walker) Kernel() string { return wk.w.kern.Name }

// Walk accumulates c's MTTKRP contribution into out (not zeroed here:
// the caller owns the block loop and zeroes once per product).
//
//spblock:hotpath
func (wk *Walker) Walk(c *CSF, factors []*la.Matrix, out *la.Matrix) {
	w := wk.w
	w.bind(c, factors, out)
	w.roots(0, c.NumNodes(0))
}

// walker carries the per-goroutine DFS state: one accumulator buffer
// per internal tree level (bufs[d] holds the running value of the
// current level-d node, the N-mode generalisation of Algorithm 1's s).
//
// A walker owns only its accumulators; the tree and operands are bound
// per use, so a pooled walker can serve many trees (blocked layouts)
// and many rank strips without reallocating.
//
//spblock:workspace
type walker struct {
	c       *CSF
	factors []*la.Matrix
	out     *la.Matrix
	bufs    [][]float64
	width   int
	// kern is the register-block kernel variant for the walker's
	// effective strip width, resolved once on the owner's cold path
	// (Executor.ensure or newWalker); node dispatches its leaf level
	// through these cached function pointers.
	kern kernel.Strip
}

// newWalkerBufs allocates the accumulators for an order-`order` tree at
// up to `rank` columns; bind narrows the active width per use. kern is
// the variant resolved from the caller's effective strip width — taking
// it here guarantees no construction path leaves the walker without
// dispatchable leaf kernels.
func newWalkerBufs(order, rank int, kern kernel.Strip) *walker {
	w := &walker{kern: kern}
	w.bufs = make([][]float64, order-1)
	for d := range w.bufs {
		w.bufs[d] = make([]float64, rank)
	}
	return w //spblock:allow constructor hands a fresh walker to its owning workspace
}

// bind points the walker at a tree and operand set. out.Cols must not
// exceed the rank the accumulators were sized for.
//
//spblock:hotpath
func (w *walker) bind(c *CSF, factors []*la.Matrix, out *la.Matrix) {
	w.c, w.factors, w.out = c, factors, out
	w.width = out.Cols
}

func newWalker(c *CSF, factors []*la.Matrix, out *la.Matrix) *walker {
	w := newWalkerBufs(c.Order(), out.Cols, kernel.Resolve(out.Cols))
	w.bind(c, factors, out)
	return w //spblock:allow constructor hands a fresh walker to its one-shot caller
}

//spblock:hotpath
func (w *walker) roots(lo, hi int) {
	for root := lo; root < hi; root++ {
		w.node(0, int32(root))
		kernel.Add(w.out.Row(int(w.c.ID[0][root])), w.bufs[0])
	}
}

// node fills bufs[d] with the subtree value of the given level-d node:
// Σ over leaves below of val · ⊙_{levels e>d} U_{m_e}[id_e].
//
//spblock:hotpath
func (w *walker) node(d int, nd int32) {
	buf := w.bufs[d][:w.width]
	clear(buf)
	c := w.c
	n := c.Order()
	if d == n-2 {
		// Children are leaves: the fiber accumulation of Algorithm 1,
		// register-blocked through the resolved width-specialized kernel
		// (the tail is always narrower than kernel.MaxWidth — see the
		// rankBRange contract in internal/core).
		leaf := w.factors[c.ModeOrder[n-1]]
		ids := c.ID[n-1]
		pLo, pHi := int(c.Ptr[d][nd]), int(c.Ptr[d][nd+1])
		q0 := 0
		if kw := w.kern.Width; kw > 0 {
			for ; q0+kw <= w.width; q0 += kw {
				w.kern.Leaf(c.Val, ids, leaf, buf, pLo, pHi, q0)
			}
		}
		if q0 < w.width {
			w.kern.LeafTail(c.Val, ids, leaf, buf, pLo, pHi, q0, w.width)
		}
		return
	}
	mid := w.factors[c.ModeOrder[d+1]]
	child := w.bufs[d+1]
	for ch := c.Ptr[d][nd]; ch < c.Ptr[d][nd+1]; ch++ {
		w.node(d+1, ch)
		kernel.ScaleAdd(buf, child, mid.Row(int(c.ID[d+1][ch])))
	}
}
