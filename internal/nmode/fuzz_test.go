package nmode

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTNS drives the order-N text parser with arbitrary inputs: it
// must never panic, and whatever it accepts must validate and
// round-trip, mirroring the order-3 parser's fuzz contract in
// internal/tensor.
func FuzzReadTNS(f *testing.F) {
	seeds := []string{
		"1 1 1 5.0\n",
		"1 1 1 1 1 5.0\n",
		"# dims: 3 3 3 3\n1 2 3 1 -1e4\n2 2 2 2 0.5\n",
		"# comment\n\n10 1 1 1\n",
		"1 1 2\n1 2 3\n",
		"1 1 1 1\n1 1 2\n",
		"9999999 1 1\n",
		"1 1 nan\n",
		"a b c d\n",
		"# dims: 0 0\n",
		"1 1 1e309\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		c, err := ReadTNS(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("accepted tensor fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteTNS(&buf, c); err != nil {
			t.Fatalf("cannot re-serialise accepted tensor: %v", err)
		}
		back, err := ReadTNS(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted tensor failed: %v", err)
		}
		if back.NNZ() != c.NNZ() || back.Order() != c.Order() {
			t.Fatalf("round trip changed shape: %v/%d vs %v/%d",
				back.Dims, back.NNZ(), c.Dims, c.NNZ())
		}
	})
}

// FuzzCSFBuild decodes an arbitrary byte string into a small sparse
// tensor, builds the CSF tree (and a blocked layout) from it, and runs
// the spblockcheck structure oracle over the result. Build must either
// reject the input or produce a tree satisfying every kernel
// invariant; the oracle panicking or reporting a violation means a
// builder bug that the kernels would silently mis-read.
func FuzzCSFBuild(f *testing.F) {
	f.Add([]byte{3, 4, 5, 6, 0, 1, 2, 7, 3, 3, 3, 1, 1, 1})
	f.Add([]byte{2, 1, 1, 0, 0})
	f.Add([]byte{4, 2, 2, 2, 2, 1, 2, 3, 0, 1, 2, 3, 0, 0, 1, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tsr := decodeTensor(data)
		if tsr == nil {
			return
		}
		if err := tsr.Validate(); err != nil {
			return // decodeTensor aims for valid tensors, but don't insist
		}
		for mode := 0; mode < tsr.Order(); mode++ {
			c, err := Build(tsr, DefaultModeOrder(tsr.Dims, mode))
			if err != nil {
				t.Fatalf("Build rejected a valid tensor: %v", err)
			}
			if err := validateTree(c); err != nil {
				t.Fatalf("mode %d: CSF violates structure invariants: %v", mode, err)
			}
			grid := make([]int, tsr.Order())
			for m := range grid {
				grid[m] = min(2, tsr.Dims[m])
			}
			bt, err := BuildBlocked(tsr, grid, DefaultModeOrder(tsr.Dims, mode))
			if err != nil {
				t.Fatalf("BuildBlocked rejected a valid tensor: %v", err)
			}
			if err := validateBlocked(bt); err != nil {
				t.Fatalf("mode %d: blocked layout violates structure invariants: %v", mode, err)
			}
		}
	})
}

// decodeTensor deterministically maps a byte string onto a small
// order-2..4 tensor: byte 0 picks the order, the next `order` bytes
// pick the dims (1..8), and each following (order+1)-byte group is one
// nonzero (coordinates folded into range, value from the last byte).
// Returns nil when the prefix is too short.
func decodeTensor(data []byte) *Tensor {
	if len(data) < 1 {
		return nil
	}
	order := 2 + int(data[0])%3
	data = data[1:]
	if len(data) < order {
		return nil
	}
	dims := make([]int, order)
	for m := 0; m < order; m++ {
		dims[m] = 1 + int(data[m])%8
	}
	data = data[order:]
	tsr := NewTensor(dims, len(data)/(order+1))
	coords := make([]Index, order)
	for len(data) >= order+1 {
		for m := 0; m < order; m++ {
			coords[m] = Index(int(data[m]) % dims[m])
		}
		v := float64(int8(data[order])) / 4
		tsr.Append(coords, v)
		data = data[order+1:]
	}
	return tsr
}
