package nmode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spblock/internal/la"
)

func TestBuildBlockedNValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randTensorN(rng, []int{6, 6, 6, 6}, 100)
	if _, err := BuildBlocked(x, []int{2, 2}, nil); err == nil {
		t.Fatal("short grid accepted")
	}
	if _, err := BuildBlocked(x, []int{0, 1, 1, 1}, nil); err == nil {
		t.Fatal("zero grid accepted")
	}
	if _, err := BuildBlocked(x, []int{7, 1, 1, 1}, nil); err == nil {
		t.Fatal("oversized grid accepted")
	}
	bad := NewTensor([]int{2, 2}, 0)
	bad.Append([]Index{3, 0}, 1)
	if _, err := BuildBlocked(bad, []int{1, 1}, nil); err == nil {
		t.Fatal("invalid tensor accepted")
	}
}

func TestBlockedNConservesNNZ(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randTensorN(rng, []int{8, 9, 10, 6}, 400)
	bt, err := BuildBlocked(x, []int{2, 3, 2, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bt.NNZ() != x.NNZ() {
		t.Fatalf("nnz %d != %d", bt.NNZ(), x.NNZ())
	}
	total := 0
	for _, blk := range bt.Blocks {
		if blk == nil {
			continue
		}
		if err := blk.Validate(); err != nil {
			t.Fatal(err)
		}
		total += blk.NNZ()
	}
	if total != x.NNZ() {
		t.Fatalf("blocks hold %d, want %d", total, x.NNZ())
	}
	if bt.NumBlocks() == 0 {
		t.Fatal("no blocks")
	}
}

func TestBlockedNMTTKRPMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][]int{{8, 9, 7}, {6, 5, 7, 4}} {
		x := randTensorN(rng, dims, 350)
		rank := 24
		factors := make([]*la.Matrix, len(dims))
		for m, d := range dims {
			factors[m] = randMatrix(rng, d, rank)
		}
		want := denseMTTKRP(x, factors, 0, rank)

		grid := make([]int, len(dims))
		for m := range grid {
			grid[m] = 2
		}
		bt, err := BuildBlocked(x, grid, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, opt := range []Options{{}, {RankBlockCols: 16}} {
			out := la.NewMatrix(dims[0], rank)
			if err := bt.MTTKRP(factors, out, opt); err != nil {
				t.Fatalf("dims %v: %v", dims, err)
			}
			if d := out.MaxAbsDiff(want); d > 1e-9 {
				t.Fatalf("dims %v opt %+v: differs by %v", dims, opt, d)
			}
		}
	}
}

func TestBlockedNMTTKRPValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randTensorN(rng, []int{5, 5, 5}, 60)
	bt, err := BuildBlocked(x, []int{1, 1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	good := []*la.Matrix{nil, randMatrix(rng, 5, 8), randMatrix(rng, 5, 8)}
	if err := bt.MTTKRP(good[:2], la.NewMatrix(5, 8), Options{}); err == nil {
		t.Fatal("short factors accepted")
	}
	if err := bt.MTTKRP(good, la.NewMatrix(4, 8), Options{}); err == nil {
		t.Fatal("wrong out rows accepted")
	}
	if err := bt.MTTKRP(good, la.NewMatrix(5, 0), Options{}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if err := bt.MTTKRP([]*la.Matrix{nil, good[1], randMatrix(rng, 5, 4)}, la.NewMatrix(5, 8), Options{}); err == nil {
		t.Fatal("rank mismatch accepted")
	}
}

// Property: blocked and unblocked N-mode kernels agree for random
// order-4 tensors and random grids.
func TestQuickBlockedNAgrees(t *testing.T) {
	f := func(seed int64, g0, g1, g2, g3 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{6, 5, 7, 4}
		x := randTensorN(rng, dims, 150)
		rank := 17
		factors := make([]*la.Matrix, len(dims))
		for m, d := range dims {
			factors[m] = randMatrix(rng, d, rank)
		}
		grid := []int{int(g0%3) + 1, int(g1%3) + 1, int(g2%3) + 1, int(g3%3) + 1}
		bt, err := BuildBlocked(x, grid, nil)
		if err != nil {
			return false
		}
		c, err := Build(x, nil)
		if err != nil {
			return false
		}
		a := la.NewMatrix(dims[0], rank)
		b := la.NewMatrix(dims[0], rank)
		if MTTKRP(c, factors, a, Options{Workers: 1}) != nil {
			return false
		}
		if bt.MTTKRP(factors, b, Options{RankBlockCols: 16}) != nil {
			return false
		}
		return a.MaxAbsDiff(b) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
