//go:build !race

package nmode

const raceEnabled = false
