// Package cachesim provides a software cache simulator and
// address-trace instrumented MTTKRP kernels.
//
// The paper's analysis (Sec. IV) is about DRAM traffic: Equation 1
// models bytes moved as a function of the cache hit rate α, and the
// pressure-point analysis attributes most of the kernel's cost to
// misses on the mode-2 factor matrix. Wall-clock times on this
// reproduction's host do not resolve those effects cleanly (different
// cache sizes, prefetchers, out-of-order windows), so the experiments
// replay each kernel's exact memory-access trace through a
// set-associative LRU hierarchy configured like the paper's POWER8
// (64 KB L1 + 512 KB L2 per core, 128-byte lines) and report measured
// traffic per data structure. Traffic shape is what the paper's claims
// rest on, and it is architecture-independent.
package cachesim

import (
	"fmt"
	"math/bits"
)

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name string
	Size int // bytes
	Ways int
}

// Config describes a cache hierarchy.
type Config struct {
	LineSize int // bytes; POWER8 uses 128
	Levels   []LevelConfig
}

// POWER8 returns the per-core hierarchy of the paper's test platform:
// 64 KB 8-way L1D and 512 KB 8-way L2, 128-byte lines (Sec. VI-A1).
func POWER8() Config {
	return Config{
		LineSize: 128,
		Levels: []LevelConfig{
			{Name: "L1", Size: 64 << 10, Ways: 8},
			{Name: "L2", Size: 512 << 10, Ways: 8},
		},
	}
}

// level is one set-associative LRU cache level.
type level struct {
	setMask uint64
	ways    int
	// sets[s] holds up to `ways` line tags, most recently used first.
	sets [][]uint64
}

func newLevel(cfg LevelConfig, lineSize int) (*level, error) {
	if cfg.Size <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("cachesim: level %q needs positive size and ways", cfg.Name)
	}
	lines := cfg.Size / lineSize
	if lines == 0 || lines%cfg.Ways != 0 {
		return nil, fmt.Errorf("cachesim: level %q: %d lines not divisible by %d ways",
			cfg.Name, lines, cfg.Ways)
	}
	nsets := lines / cfg.Ways
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cachesim: level %q: %d sets is not a power of two", cfg.Name, nsets)
	}
	l := &level{
		setMask: uint64(nsets - 1),
		ways:    cfg.Ways,
		sets:    make([][]uint64, nsets),
	}
	for s := range l.sets {
		l.sets[s] = make([]uint64, 0, cfg.Ways)
	}
	return l, nil
}

// access looks line up, updates LRU order, inserts on miss, and reports
// whether it hit.
func (l *level) access(line uint64) bool {
	set := l.sets[line&l.setMask]
	for idx, tag := range set {
		if tag == line {
			// Move to front (MRU).
			copy(set[1:idx+1], set[:idx])
			set[0] = line
			return true
		}
	}
	// Miss: insert at front, evicting the LRU way if full.
	if len(set) < l.ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = line
	l.sets[line&l.setMask] = set
	return false
}

// Region labels the data structure an access belongs to, so traffic can
// be broken down the way Equation 1 is (factor matrices vs tensor
// stream vs accumulator).
type Region int

const (
	RegionA     Region = iota // mode-1 factor (output)
	RegionB                   // mode-2 factor
	RegionC                   // mode-3 factor
	RegionVal                 // tensor values
	RegionJIdx                // j_index
	RegionFiber               // k_index + k_pointer
	RegionSlice               // i_pointer / slice ids
	RegionAccum               // the accumulator array s
	numRegions
)

var regionNames = [numRegions]string{
	"A", "B", "C", "val", "j_index", "fiber", "slice", "accum",
}

func (r Region) String() string {
	if r < 0 || r >= numRegions {
		return fmt.Sprintf("Region(%d)", int(r))
	}
	return regionNames[r]
}

// Regions lists all regions in display order.
func Regions() []Region {
	out := make([]Region, numRegions)
	for i := range out {
		out[i] = Region(i)
	}
	return out
}

// regionBase gives each region a disjoint 1 TiB address window, so
// structures never alias.
func regionBase(r Region) uint64 { return uint64(r+1) << 40 }

// Hierarchy simulates a multi-level hierarchy and gathers per-region
// counts of which level served each line access.
type Hierarchy struct {
	lineShift uint
	lineSize  int
	levels    []*level
	names     []string

	// served[r][l] counts line accesses of region r served at level l;
	// index len(levels) means DRAM.
	served [numRegions][]int64
}

// NewHierarchy builds a hierarchy from cfg.
func NewHierarchy(cfg Config) (*Hierarchy, error) {
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		return nil, fmt.Errorf("cachesim: line size %d must be a positive power of two", cfg.LineSize)
	}
	if len(cfg.Levels) == 0 {
		return nil, fmt.Errorf("cachesim: need at least one level")
	}
	h := &Hierarchy{
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineSize))),
		lineSize:  cfg.LineSize,
	}
	for _, lc := range cfg.Levels {
		lv, err := newLevel(lc, cfg.LineSize)
		if err != nil {
			return nil, err
		}
		h.levels = append(h.levels, lv)
		h.names = append(h.names, lc.Name)
	}
	for r := range h.served {
		h.served[r] = make([]int64, len(h.levels)+1)
	}
	return h, nil
}

// LineSize returns the configured line size in bytes.
func (h *Hierarchy) LineSize() int { return h.lineSize }

// Touch simulates an access of `size` bytes at `offset` within region
// r. Every line covered is accessed; each line is looked up level by
// level and inserted into every level above (and including) the one
// that missed — a simple inclusive fill policy.
func (h *Hierarchy) Touch(r Region, offset int64, size int) {
	if size <= 0 {
		return
	}
	addr := regionBase(r) + uint64(offset)
	first := addr >> h.lineShift
	last := (addr + uint64(size) - 1) >> h.lineShift
	for line := first; line <= last; line++ {
		h.touchLine(r, line)
	}
}

func (h *Hierarchy) touchLine(r Region, line uint64) {
	for lv, cache := range h.levels {
		if cache.access(line) {
			h.served[r][lv]++
			return
		}
	}
	// Missed everywhere: served by memory. The line was inserted into
	// every level by the access calls above.
	h.served[r][len(h.levels)]++
}

// Traffic summarises the simulation.
type Traffic struct {
	LineSize   int
	LevelNames []string
	// Served[r][l]: line accesses of region r served at level l
	// (index == len(LevelNames) means DRAM).
	Served [][]int64
}

// Snapshot returns accumulated counters.
func (h *Hierarchy) Snapshot() Traffic {
	t := Traffic{
		LineSize:   h.lineSize,
		LevelNames: append([]string(nil), h.names...),
		Served:     make([][]int64, numRegions),
	}
	for r := range h.served {
		t.Served[r] = append([]int64(nil), h.served[r]...)
	}
	return t
}

// Reset clears counters but keeps cache contents.
func (h *Hierarchy) Reset() {
	for r := range h.served {
		clear(h.served[r])
	}
}

// TotalAccesses sums line accesses across regions.
func (t Traffic) TotalAccesses() int64 {
	var s int64
	for _, row := range t.Served {
		for _, v := range row {
			s += v
		}
	}
	return s
}

// MemLines returns the number of lines fetched from DRAM, optionally
// restricted to one region (pass a negative region for all).
func (t Traffic) MemLines(r Region) int64 {
	last := len(t.LevelNames)
	if r >= 0 {
		return t.Served[r][last]
	}
	var s int64
	for _, row := range t.Served {
		s += row[last]
	}
	return s
}

// MemBytes returns DRAM bytes moved (MemLines * LineSize).
func (t Traffic) MemBytes(r Region) int64 { return t.MemLines(r) * int64(t.LineSize) }

// HitRate returns the fraction of line accesses served by any cache
// level (the α of Equation 1), optionally per region.
func (t Traffic) HitRate(r Region) float64 {
	last := len(t.LevelNames)
	var hits, total int64
	add := func(row []int64) {
		for l, v := range row {
			total += v
			if l < last {
				hits += v
			}
		}
	}
	if r >= 0 {
		add(t.Served[r])
	} else {
		for _, row := range t.Served {
			add(row)
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Toucher consumes an address trace: both Hierarchy and Classifier
// implement it, so every traced kernel can feed either the traffic
// counters or the miss classifier.
type Toucher interface {
	Touch(r Region, offset int64, size int)
}

var (
	_ Toucher = (*Hierarchy)(nil)
	_ Toucher = (*Classifier)(nil)
)
