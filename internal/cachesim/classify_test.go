package cachesim

import (
	"math/rand"
	"testing"

	"spblock/internal/tensor"
)

func testClassifier(t *testing.T) *Classifier {
	t.Helper()
	// 4 lines of 64 B, 2 sets x 2 ways.
	c, err := NewClassifier(LevelConfig{Name: "L1", Size: 256, Ways: 2}, 64)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClassifierValidation(t *testing.T) {
	if _, err := NewClassifier(LevelConfig{Size: 256, Ways: 2}, 0); err == nil {
		t.Fatal("zero line size accepted")
	}
	if _, err := NewClassifier(LevelConfig{Size: 0, Ways: 2}, 64); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestClassifierCompulsory(t *testing.T) {
	c := testClassifier(t)
	c.Touch(RegionB, 0, 8)
	c.Touch(RegionB, 0, 8)
	m := c.Region(RegionB)
	if m.Compulsory != 1 || m.Hits != 1 || m.Capacity != 0 || m.Conflict != 0 {
		t.Fatalf("classification = %+v", m)
	}
	if m.Misses() != 1 {
		t.Fatalf("misses = %d", m.Misses())
	}
}

func TestClassifierCapacity(t *testing.T) {
	c := testClassifier(t)
	// Stream 8 distinct lines (twice the 4-line capacity), then revisit
	// the first: it missed in both the real and the fully-associative
	// shadow -> capacity.
	for l := int64(0); l < 8; l++ {
		c.Touch(RegionB, l*64, 8)
	}
	c.Touch(RegionB, 0, 8)
	m := c.Region(RegionB)
	if m.Compulsory != 8 {
		t.Fatalf("compulsory = %d, want 8", m.Compulsory)
	}
	if m.Capacity != 1 || m.Conflict != 0 {
		t.Fatalf("classification = %+v, want one capacity miss", m)
	}
}

func TestClassifierConflict(t *testing.T) {
	c := testClassifier(t)
	// Three lines mapping to set 0 (even line indices) in a 2-way set:
	// they fit the 4-line capacity but not the set -> conflict misses
	// on revisit.
	c.Touch(RegionB, 0*64, 8)
	c.Touch(RegionB, 2*64, 8)
	c.Touch(RegionB, 4*64, 8) // evicts line 0 from the set
	c.Touch(RegionB, 0*64, 8) // shadow (fully assoc, 4 lines) still holds it
	m := c.Region(RegionB)
	if m.Conflict != 1 {
		t.Fatalf("classification = %+v, want one conflict miss", m)
	}
	if m.Capacity != 0 {
		t.Fatalf("unexpected capacity misses: %+v", m)
	}
}

func TestClassifierTotalAndRegions(t *testing.T) {
	c := testClassifier(t)
	c.Touch(RegionA, 0, 8)
	c.Touch(RegionB, 0, 8)
	tot := c.Total()
	if tot.Compulsory != 2 || tot.Hits != 0 {
		t.Fatalf("total = %+v", tot)
	}
	if c.Region(RegionA).Compulsory != 1 {
		t.Fatal("per-region attribution broken")
	}
	c.Touch(RegionA, 0, 0) // no-op
	if c.Total().Misses() != 2 {
		t.Fatal("zero-size touch counted")
	}
}

func TestFALRUBehaviour(t *testing.T) {
	f := newFALRU(2)
	if f.access(1) || f.access(2) {
		t.Fatal("cold accesses hit")
	}
	if !f.access(1) {
		t.Fatal("warm access missed")
	}
	f.access(3) // evicts 2 (LRU), not 1
	if !f.access(1) {
		t.Fatal("recently used line evicted")
	}
	if f.access(2) {
		t.Fatal("LRU line not evicted")
	}
	// Capacity clamp.
	if newFALRU(0).capacity != 1 {
		t.Fatal("capacity not clamped")
	}
}

// The headline use: unpacked power-of-two rank strips generate almost
// pure *conflict* misses on B, and packing converts the kernel's B
// misses to compulsory-only — a precise statement of why Sec. V-B's
// rearrangement works.
func TestStripPackingKillsConflictMisses(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	dims := tensor.Dims{32, 512, 32}
	x := tensor.NewCOO(dims, 20000)
	for p := 0; p < 20000; p++ {
		x.Append(
			tensor.Index(rng.Intn(dims[0])),
			tensor.Index(rng.Intn(dims[1])),
			tensor.Index(rng.Intn(dims[2])),
			1,
		)
	}
	x.Dedup()
	csf, err := tensor.BuildCSF(x)
	if err != nil {
		t.Fatal(err)
	}
	l2 := LevelConfig{Name: "L2", Size: 512 << 10, Ways: 8}

	classify := func(noPack bool) MissClass {
		c, err := NewClassifier(l2, 128)
		if err != nil {
			t.Fatal(err)
		}
		if err := TraceRankB(c, csf, Options{Rank: 512, RankBlockCols: 64, NoStripPacking: noPack}); err != nil {
			t.Fatal(err)
		}
		return c.Region(RegionB)
	}

	unpacked := classify(true)
	packed := classify(false)
	if unpacked.Conflict < 10*maxI64(packed.Conflict, 1) {
		t.Fatalf("unpacked conflicts %d not dominating packed %d", unpacked.Conflict, packed.Conflict)
	}
	// Unpacked misses are mostly conflicts (the strip working set fits
	// the capacity, it just aliases).
	if unpacked.Conflict < unpacked.Capacity {
		t.Fatalf("unpacked misses should be conflict-dominated: %+v", unpacked)
	}
	t.Logf("B misses at L2 — unpacked: %+v | packed: %+v", unpacked, packed)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
