package cachesim

import (
	"fmt"
)

// MissClass breaks one level's misses into the classic three C's:
//
//   - compulsory: the line was never referenced before;
//   - capacity: the line was referenced before but would also have
//     missed in a fully-associative LRU cache of the same size (the
//     working set simply exceeds the capacity);
//   - conflict: the fully-associative cache of the same size would
//     have hit — the miss is an artefact of set mapping.
//
// The conflict column is what the strip-packing rearrangement of
// Sec. V-B eliminates: unpacked power-of-two-stride strips generate
// almost pure conflict misses.
type MissClass struct {
	Hits       int64
	Compulsory int64
	Capacity   int64
	Conflict   int64
}

// Misses returns the total miss count.
func (m MissClass) Misses() int64 { return m.Compulsory + m.Capacity + m.Conflict }

// Classifier wraps a single cache level plus a same-capacity
// fully-associative LRU shadow to classify every access. It implements
// the same Touch surface as Hierarchy, restricted to one level, so the
// traced kernels can run against it unchanged.
type Classifier struct {
	lineShift uint
	lineSize  int
	level     *level
	shadow    *falru
	seen      map[uint64]struct{}

	perRegion [numRegions]MissClass
}

// NewClassifier builds a classifier for one level configuration.
func NewClassifier(cfg LevelConfig, lineSize int) (*Classifier, error) {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("cachesim: line size %d must be a positive power of two", lineSize)
	}
	lv, err := newLevel(cfg, lineSize)
	if err != nil {
		return nil, err
	}
	shift := uint(0)
	for 1<<shift != lineSize {
		shift++
	}
	return &Classifier{
		lineShift: shift,
		lineSize:  lineSize,
		level:     lv,
		shadow:    newFALRU(cfg.Size / lineSize),
		seen:      make(map[uint64]struct{}, 1<<16),
	}, nil
}

// Touch accesses `size` bytes at `offset` of region r, classifying
// every covered line.
func (c *Classifier) Touch(r Region, offset int64, size int) {
	if size <= 0 {
		return
	}
	addr := regionBase(r) + uint64(offset)
	first := addr >> c.lineShift
	last := (addr + uint64(size) - 1) >> c.lineShift
	for line := first; line <= last; line++ {
		realHit := c.level.access(line)
		shadowHit := c.shadow.access(line)
		cls := &c.perRegion[r]
		switch {
		case realHit:
			cls.Hits++
		default:
			if _, ok := c.seen[line]; !ok {
				c.seen[line] = struct{}{}
				cls.Compulsory++
			} else if shadowHit {
				cls.Conflict++
			} else {
				cls.Capacity++
			}
		}
	}
}

// Region returns region r's classification.
func (c *Classifier) Region(r Region) MissClass { return c.perRegion[r] }

// Total sums all regions.
func (c *Classifier) Total() MissClass {
	var t MissClass
	for _, m := range c.perRegion {
		t.Hits += m.Hits
		t.Compulsory += m.Compulsory
		t.Capacity += m.Capacity
		t.Conflict += m.Conflict
	}
	return t
}

// falru is a fully-associative LRU cache implemented as a doubly-linked
// list over a map — O(1) per access.
type falru struct {
	capacity int
	nodes    map[uint64]*falruNode
	head     *falruNode // MRU
	tail     *falruNode // LRU
}

type falruNode struct {
	line       uint64
	prev, next *falruNode
}

func newFALRU(capacity int) *falru {
	if capacity < 1 {
		capacity = 1
	}
	return &falru{capacity: capacity, nodes: make(map[uint64]*falruNode, capacity+1)}
}

// access returns whether the line hit, updating recency and evicting
// the LRU line on insertion past capacity.
func (f *falru) access(line uint64) bool {
	if n, ok := f.nodes[line]; ok {
		f.moveToFront(n)
		return true
	}
	n := &falruNode{line: line}
	f.nodes[line] = n
	f.pushFront(n)
	if len(f.nodes) > f.capacity {
		evict := f.tail
		f.unlink(evict)
		delete(f.nodes, evict.line)
	}
	return false
}

func (f *falru) pushFront(n *falruNode) {
	n.prev = nil
	n.next = f.head
	if f.head != nil {
		f.head.prev = n
	}
	f.head = n
	if f.tail == nil {
		f.tail = n
	}
}

func (f *falru) unlink(n *falruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		f.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		f.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (f *falru) moveToFront(n *falruNode) {
	if f.head == n {
		return
	}
	f.unlink(n)
	f.pushFront(n)
}
