package cachesim

import (
	"fmt"

	"spblock/internal/core"
	"spblock/internal/tensor"
)

// Options configures a traced kernel execution.
type Options struct {
	// Rank is R, the number of factor columns. Required.
	Rank int
	// IndexBytes is the size of tensor indices/pointers: 4 matches this
	// library's layout, 8 matches the paper's byte model. Default 4.
	IndexBytes int
	// RankBlockCols is the strip width for TraceRankB/TraceMB. 0 or
	// >= Rank means one full-width strip (register blocking without
	// packing); anything smaller traces the packed-strip execution the
	// real kernels use.
	RankBlockCols int
	// NoStripPacking traces the ablation variant: strips are accessed
	// in place with stride R instead of being packed contiguously.
	NoStripPacking bool

	// Pressure points (Table I). Each removes or redirects part of the
	// access stream exactly as the paper's PPA variants do:
	SkipB          bool // type 1: accesses to B removed
	BRowZero       bool // type 2: every B access redirected to row 0 (stays in L1)
	SkipAccumLoads bool // type 3: accumulator load/store traffic and A loads eliminated (registers)
	SkipC          bool // type 4: accesses to C removed
	FlopsInner     bool // type 5: per-fiber flops moved into the inner loop (COO emulation)
}

func (o Options) withDefaults() (Options, error) {
	if o.Rank <= 0 {
		return o, fmt.Errorf("cachesim: Rank must be positive, got %d", o.Rank)
	}
	if o.IndexBytes == 0 {
		o.IndexBytes = 4
	}
	if o.IndexBytes != 4 && o.IndexBytes != 8 {
		return o, fmt.Errorf("cachesim: IndexBytes must be 4 or 8, got %d", o.IndexBytes)
	}
	return o, nil
}

const (
	valueBytes = 8
	// fiberPtrOffset separates k_pointer from k_index inside
	// RegionFiber so the two arrays do not alias.
	fiberPtrOffset = int64(1) << 36
	// packWindow separates a factor's packed strip buffer from the
	// factor matrix itself within the same region, so packing traffic
	// is attributed to the factor it serves.
	packWindow = int64(1) << 38
)

// rowBytes returns (offset, size) of columns [r0, r1) of row `row` in a
// factor matrix with the given column stride (in elements).
func rowBytes(row int, stride, r0, r1 int) (int64, int) {
	return int64(row)*int64(stride)*valueBytes + int64(r0)*valueBytes, (r1 - r0) * valueBytes
}

// TraceSPLATT replays Algorithm 1's access stream (with any configured
// pressure points) through h. Factor matrices use stride == Rank.
func TraceSPLATT(h Toucher, t *tensor.CSF, opt Options) error {
	opt, err := opt.withDefaults()
	if err != nil {
		return err
	}
	traceSplattRange(h, t, opt, 0, t.NumSlices())
	return nil
}

func traceSplattRange(h Toucher, t *tensor.CSF, opt Options, lo, hi int) {
	r := opt.Rank
	ib := opt.IndexBytes
	for s := lo; s < hi; s++ {
		i := int(t.SliceID[s])
		h.Touch(RegionSlice, int64(s)*int64(ib), ib)
		aOff, aLen := rowBytes(i, r, 0, r)
		for f := int(t.SlicePtr[s]); f < int(t.SlicePtr[s+1]); f++ {
			h.Touch(RegionFiber, int64(f)*int64(ib), ib)                // k_index
			h.Touch(RegionFiber, fiberPtrOffset+int64(f)*int64(ib), ib) // k_pointer
			k := int(t.FiberK[f])
			if !opt.SkipAccumLoads && !opt.FlopsInner {
				h.Touch(RegionAccum, 0, r*valueBytes) // s <- 0
			}
			for p := int(t.FiberPtr[f]); p < int(t.FiberPtr[f+1]); p++ {
				h.Touch(RegionVal, int64(p)*valueBytes, valueBytes)
				h.Touch(RegionJIdx, int64(p)*int64(ib), ib)
				if !opt.SkipB {
					j := int(t.NzJ[p])
					if opt.BRowZero {
						j = 0
					}
					off, n := rowBytes(j, r, 0, r)
					h.Touch(RegionB, off, n)
				}
				if opt.FlopsInner {
					// Type 5: the fiber epilogue runs per nonzero —
					// C and A are touched for every nonzero.
					if !opt.SkipC {
						off, n := rowBytes(k, r, 0, r)
						h.Touch(RegionC, off, n)
					}
					if !opt.SkipAccumLoads {
						h.Touch(RegionA, aOff, aLen) // load A[i]
					}
					h.Touch(RegionA, aOff, aLen) // store A[i]
					continue
				}
				if !opt.SkipAccumLoads {
					h.Touch(RegionAccum, 0, r*valueBytes) // load s
					h.Touch(RegionAccum, 0, r*valueBytes) // store s
				}
			}
			if opt.FlopsInner {
				continue
			}
			if !opt.SkipC {
				off, n := rowBytes(k, r, 0, r)
				h.Touch(RegionC, off, n)
			}
			if !opt.SkipAccumLoads {
				h.Touch(RegionAccum, 0, r*valueBytes) // read s
				h.Touch(RegionA, aOff, aLen)          // load A[i]
			}
			h.Touch(RegionA, aOff, aLen) // store A[i]
		}
	}
}

// stripLayout carries where a strip's factor data lives during one
// strip of the rank loop: packed buffers (window offset, compact
// stride, column base 0) or the real matrices (stride R, base rr).
type stripLayout struct {
	window  int64 // 0 for the real matrix, packWindow for the packed buffer
	stride  int   // element stride between rows
	colBase int   // first column of the strip within the layout
	width   int   // strip width in columns
}

func (sl stripLayout) touchRow(h Toucher, reg Region, row, r0, r1 int) {
	off, n := rowBytes(row, sl.stride, sl.colBase+r0, sl.colBase+r1)
	h.Touch(reg, sl.window+off, n)
}

// tracePackStrip replays packing columns [rr, rr+w) of an nRows x R
// factor into its compact strip buffer: strided reads of the real
// matrix, sequential writes of the buffer.
func tracePackStrip(h Toucher, reg Region, nRows, stride, rr, w int) {
	for row := 0; row < nRows; row++ {
		off, n := rowBytes(row, stride, rr, rr+w)
		h.Touch(reg, off, n) // read real columns
		pOff, pn := rowBytes(row, w, 0, w)
		h.Touch(reg, packWindow+pOff, pn) // write packed buffer
	}
}

// traceUnpackStrip replays copying the packed output strip back into
// the real output columns.
func traceUnpackStrip(h Toucher, reg Region, nRows, stride, rr, w int) {
	for row := 0; row < nRows; row++ {
		pOff, pn := rowBytes(row, w, 0, w)
		h.Touch(reg, packWindow+pOff, pn) // read packed buffer
		off, n := rowBytes(row, stride, rr, rr+w)
		h.Touch(reg, off, n) // write real columns
	}
}

// traceRankBStrip replays Algorithm 2's register-blocked slice loop for
// one strip. Accumulators are registers: no accumulator traffic, and A
// is loaded+stored per fiber per register block.
func traceRankBStrip(h Toucher, t *tensor.CSF, opt Options, sl stripLayout, lo, hi int) {
	ib := opt.IndexBytes
	for s := lo; s < hi; s++ {
		i := int(t.SliceID[s])
		h.Touch(RegionSlice, int64(s)*int64(ib), ib)
		for f := int(t.SlicePtr[s]); f < int(t.SlicePtr[s+1]); f++ {
			h.Touch(RegionFiber, int64(f)*int64(ib), ib)
			h.Touch(RegionFiber, fiberPtrOffset+int64(f)*int64(ib), ib)
			k := int(t.FiberK[f])
			for r0 := 0; r0 < sl.width; r0 += core.RegisterBlockWidth {
				r1 := r0 + core.RegisterBlockWidth
				if r1 > sl.width {
					r1 = sl.width
				}
				for p := int(t.FiberPtr[f]); p < int(t.FiberPtr[f+1]); p++ {
					h.Touch(RegionVal, int64(p)*valueBytes, valueBytes)
					h.Touch(RegionJIdx, int64(p)*int64(ib), ib)
					if !opt.SkipB {
						sl.touchRow(h, RegionB, int(t.NzJ[p]), r0, r1)
					}
				}
				if !opt.SkipC {
					sl.touchRow(h, RegionC, k, r0, r1)
				}
				sl.touchRow(h, RegionA, i, r0, r1) // load A strip
				sl.touchRow(h, RegionA, i, r0, r1) // store A strip
			}
		}
	}
}

// strips enumerates the rank strips for opt, calling body with each
// strip's layout. dims supplies the factor row counts for packing.
func traceStrips(h Toucher, opt Options, dims tensor.Dims, body func(sl stripLayout)) {
	r := opt.Rank
	bs := opt.RankBlockCols
	if bs <= 0 || bs >= r {
		// Single full-width strip over the real matrices.
		body(stripLayout{window: 0, stride: r, colBase: 0, width: r})
		return
	}
	for rr := 0; rr < r; rr += bs {
		w := bs
		if rr+w > r {
			w = r - rr
		}
		if opt.NoStripPacking {
			// Ablation: strips in place, stride R.
			body(stripLayout{window: 0, stride: r, colBase: rr, width: w})
			continue
		}
		tracePackStrip(h, RegionB, dims[1], r, rr, w)
		tracePackStrip(h, RegionC, dims[2], r, rr, w)
		// Zero the packed output strip (writes).
		for row := 0; row < dims[0]; row++ {
			pOff, pn := rowBytes(row, w, 0, w)
			h.Touch(RegionA, packWindow+pOff, pn)
		}
		body(stripLayout{window: packWindow, stride: w, colBase: 0, width: w})
		traceUnpackStrip(h, RegionA, dims[0], r, rr, w)
	}
}

// TraceRankB replays Algorithm 2's access stream, including the strip
// packing of the factor matrices (Sec. V-B's "stacked strips"
// rearrangement) that the real kernel performs.
func TraceRankB(h Toucher, t *tensor.CSF, opt Options) error {
	opt, err := opt.withDefaults()
	if err != nil {
		return err
	}
	traceStrips(h, opt, t.Dims, func(sl stripLayout) {
		traceRankBStrip(h, t, opt, sl, 0, t.NumSlices())
	})
	return nil
}

// TraceMB replays the multi-dimensionally blocked kernel. With
// RankBlockCols == 0 each block runs the SPLATT trace (MethodMB); with
// RankBlockCols > 0 the strip loop is outermost and each strip sweeps
// all blocks (MethodMBRankB, Figure 3b).
func TraceMB(h Toucher, bt *core.BlockedTensor, opt Options) error {
	opt, err := opt.withDefaults()
	if err != nil {
		return err
	}
	eachBlock := func(f func(blk *tensor.CSF)) {
		for bi := 0; bi < bt.Grid[0]; bi++ {
			for bj := 0; bj < bt.Grid[1]; bj++ {
				for bk := 0; bk < bt.Grid[2]; bk++ {
					if blk := bt.BlockAt(bi, bj, bk); blk != nil {
						f(blk)
					}
				}
			}
		}
	}
	if opt.RankBlockCols <= 0 {
		eachBlock(func(blk *tensor.CSF) {
			traceSplattRange(h, blk, opt, 0, blk.NumSlices())
		})
		return nil
	}
	traceStrips(h, opt, bt.Dims, func(sl stripLayout) {
		eachBlock(func(blk *tensor.CSF) {
			traceRankBStrip(h, blk, opt, sl, 0, blk.NumSlices())
		})
	})
	return nil
}

// TraceCOO replays the coordinate-format kernel of Sec. III-C1: every
// nonzero loads its value, three indices, one row of B and C, and
// loads+stores its row of A. No fiber accumulator exists.
func TraceCOO(h Toucher, t *tensor.COO, opt Options) error {
	opt, err := opt.withDefaults()
	if err != nil {
		return err
	}
	r := opt.Rank
	ib := opt.IndexBytes
	for p := 0; p < t.NNZ(); p++ {
		h.Touch(RegionVal, int64(p)*valueBytes, valueBytes)
		h.Touch(RegionJIdx, int64(p)*int64(ib)*3, 3*ib) // i,j,k indices
		if !opt.SkipB {
			off, n := rowBytes(int(t.J[p]), r, 0, r)
			h.Touch(RegionB, off, n)
		}
		if !opt.SkipC {
			off, n := rowBytes(int(t.K[p]), r, 0, r)
			h.Touch(RegionC, off, n)
		}
		aOff, aLen := rowBytes(int(t.I[p]), r, 0, r)
		h.Touch(RegionA, aOff, aLen)
		h.Touch(RegionA, aOff, aLen)
	}
	return nil
}

// MeasureTraffic runs a traced kernel against a fresh hierarchy and
// returns the traffic snapshot. trace is any of the Trace* functions
// partially applied by the caller.
func MeasureTraffic(cfg Config, trace func(*Hierarchy) error) (Traffic, error) {
	h, err := NewHierarchy(cfg)
	if err != nil {
		return Traffic{}, err
	}
	if err := trace(h); err != nil {
		return Traffic{}, err
	}
	return h.Snapshot(), nil
}
