package cachesim

import (
	"math/rand"
	"testing"

	"spblock/internal/core"
	"spblock/internal/tensor"
)

func randCOO(rng *rand.Rand, dims tensor.Dims, nnz int) *tensor.COO {
	t := tensor.NewCOO(dims, nnz)
	for p := 0; p < nnz; p++ {
		t.Append(
			tensor.Index(rng.Intn(dims[0])),
			tensor.Index(rng.Intn(dims[1])),
			tensor.Index(rng.Intn(dims[2])),
			1,
		)
	}
	t.Dedup()
	return t
}

func mustCSF(t *testing.T, c *tensor.COO) *tensor.CSF {
	t.Helper()
	csf, err := tensor.BuildCSF(c)
	if err != nil {
		t.Fatal(err)
	}
	return csf
}

// hugeConfig is a hierarchy big enough that nothing is ever evicted —
// every structure's distinct lines are counted exactly once as misses.
func hugeConfig() Config {
	return Config{
		LineSize: 64,
		Levels:   []LevelConfig{{Name: "L1", Size: 1 << 26, Ways: 16}},
	}
}

func TestOptionsValidation(t *testing.T) {
	h, _ := NewHierarchy(hugeConfig())
	csf := mustCSF(t, randCOO(rand.New(rand.NewSource(1)), tensor.Dims{4, 4, 4}, 10))
	if err := TraceSPLATT(h, csf, Options{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if err := TraceSPLATT(h, csf, Options{Rank: 8, IndexBytes: 3}); err == nil {
		t.Fatal("bad index bytes accepted")
	}
	if err := TraceSPLATT(h, csf, Options{Rank: 8, IndexBytes: 8}); err != nil {
		t.Fatalf("8-byte indices rejected: %v", err)
	}
}

func TestTraceSPLATTAccessCounts(t *testing.T) {
	// One slice, one fiber, three nonzeros at rank 8 (64 B rows = one
	// line each in a 64 B-line cache).
	c := tensor.NewCOO(tensor.Dims{4, 8, 4}, 0)
	c.Append(2, 1, 3, 1)
	c.Append(2, 4, 3, 1)
	c.Append(2, 6, 3, 1)
	csf := mustCSF(t, c)
	h, _ := NewHierarchy(hugeConfig())
	if err := TraceSPLATT(h, csf, Options{Rank: 8}); err != nil {
		t.Fatal(err)
	}
	tr := h.Snapshot()
	sum := func(r Region) int64 {
		var s int64
		for _, v := range tr.Served[r] {
			s += v
		}
		return s
	}
	// B: one row (one line) per nonzero = 3 accesses.
	if sum(RegionB) != 3 {
		t.Fatalf("B accesses = %d, want 3", sum(RegionB))
	}
	// C: one row at the fiber end = 1.
	if sum(RegionC) != 1 {
		t.Fatalf("C accesses = %d, want 1", sum(RegionC))
	}
	// A: load + store at the fiber end = 2.
	if sum(RegionA) != 2 {
		t.Fatalf("A accesses = %d, want 2", sum(RegionA))
	}
	// Accumulator: zeroing (1) + load+store per nonzero (6) + epilogue read (1) = 8.
	if sum(RegionAccum) != 8 {
		t.Fatalf("accum accesses = %d, want 8", sum(RegionAccum))
	}
	// Values: 3 nonzeros x 8 B within one line = 3 accesses (1 distinct line).
	if sum(RegionVal) != 3 {
		t.Fatalf("val accesses = %d, want 3", sum(RegionVal))
	}
	// Distinct B rows 1, 4, 6 at rank 8: rows 1,4,6 cover offsets
	// 64..127, 256..319, 384..447 -> 3 distinct lines from memory.
	if tr.MemLines(RegionB) != 3 {
		t.Fatalf("B memory lines = %d, want 3", tr.MemLines(RegionB))
	}
}

func TestPressurePointsRemoveTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randCOO(rng, tensor.Dims{16, 64, 16}, 400)
	csf := mustCSF(t, x)

	measure := func(opt Options) Traffic {
		h, _ := NewHierarchy(hugeConfig())
		opt.Rank = 16
		if err := TraceSPLATT(h, csf, opt); err != nil {
			t.Fatal(err)
		}
		return h.Snapshot()
	}

	base := measure(Options{})
	if base.MemLines(RegionB) == 0 {
		t.Fatal("baseline has no B traffic")
	}

	noB := measure(Options{SkipB: true})
	if got := noB.MemLines(RegionB) + noB.Served[RegionB][0]; got != 0 {
		t.Fatalf("type 1 (SkipB) still touches B: %d", got)
	}

	bL1 := measure(Options{BRowZero: true})
	if bL1.MemLines(RegionB) != base.MemLines(RegionB)/int64(len(csfDistinctJ(csf))) &&
		bL1.MemLines(RegionB) > 2 {
		// Row 0 occupies at most ceil(16*8/64) = 2 lines.
		t.Fatalf("type 2 (BRowZero) memory lines = %d, want <= 2", bL1.MemLines(RegionB))
	}

	noAcc := measure(Options{SkipAccumLoads: true})
	if noAcc.Served[RegionAccum][0]+noAcc.MemLines(RegionAccum) != 0 {
		t.Fatal("type 3 (SkipAccumLoads) still touches the accumulator")
	}
	// A is store-only under type 3: half the baseline A accesses.
	var aBase, aNoAcc int64
	for _, v := range base.Served[RegionA] {
		aBase += v
	}
	for _, v := range noAcc.Served[RegionA] {
		aNoAcc += v
	}
	if aNoAcc*2 != aBase {
		t.Fatalf("type 3 A accesses = %d, want half of %d", aNoAcc, aBase)
	}

	noC := measure(Options{SkipC: true})
	var cTotal int64
	for _, v := range noC.Served[RegionC] {
		cTotal += v
	}
	if cTotal != 0 {
		t.Fatal("type 4 (SkipC) still touches C")
	}

	inner := measure(Options{FlopsInner: true})
	var cInner, cBase int64
	for _, v := range inner.Served[RegionC] {
		cInner += v
	}
	for _, v := range base.Served[RegionC] {
		cBase += v
	}
	// Type 5 touches C once per nonzero instead of once per fiber; at
	// rank 16 a row is 128 B = 2 lines of 64 B.
	if cInner != int64(2*csf.NNZ()) {
		t.Fatalf("type 5 C accesses = %d, want 2*nnz=%d", cInner, 2*csf.NNZ())
	}
	if cInner <= cBase {
		t.Fatal("type 5 must increase C accesses")
	}
}

// csfDistinctJ returns the distinct j values (test helper).
func csfDistinctJ(c *tensor.CSF) map[tensor.Index]bool {
	m := map[tensor.Index]bool{}
	for _, j := range c.NzJ {
		m[j] = true
	}
	return m
}

func TestTraceRankBEliminatesAccumulator(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randCOO(rng, tensor.Dims{16, 32, 16}, 300)
	csf := mustCSF(t, x)
	h, _ := NewHierarchy(hugeConfig())
	if err := TraceRankB(h, csf, Options{Rank: 64, RankBlockCols: 32}); err != nil {
		t.Fatal(err)
	}
	tr := h.Snapshot()
	var accum int64
	for _, v := range tr.Served[RegionAccum] {
		accum += v
	}
	if accum != 0 {
		t.Fatalf("rank-blocked kernel generated %d accumulator accesses, want 0", accum)
	}
	// Values are re-read once per register block: rank 64 = 4 register
	// blocks of 16 -> 4x the nonzero count.
	var val int64
	for _, v := range tr.Served[RegionVal] {
		val += v
	}
	if val != int64(4*csf.NNZ()) {
		t.Fatalf("val accesses = %d, want %d", val, 4*csf.NNZ())
	}
}

func TestTraceMBConservesTensorStream(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randCOO(rng, tensor.Dims{12, 12, 12}, 200)
	bt, err := core.BuildBlocked(x, [3]int{2, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := NewHierarchy(hugeConfig())
	if err := TraceMB(h, bt, Options{Rank: 8}); err != nil {
		t.Fatal(err)
	}
	tr := h.Snapshot()
	var val int64
	for _, v := range tr.Served[RegionVal] {
		val += v
	}
	if val != int64(x.NNZ()) {
		t.Fatalf("val accesses = %d, want nnz=%d", val, x.NNZ())
	}
}

func TestTraceCOOCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randCOO(rng, tensor.Dims{8, 8, 8}, 100)
	h, _ := NewHierarchy(hugeConfig())
	if err := TraceCOO(h, x, Options{Rank: 8}); err != nil {
		t.Fatal(err)
	}
	tr := h.Snapshot()
	sum := func(r Region) int64 {
		var s int64
		for _, v := range tr.Served[r] {
			s += v
		}
		return s
	}
	n := int64(x.NNZ())
	if sum(RegionB) != n || sum(RegionC) != n {
		t.Fatalf("B/C accesses = %d/%d, want %d each", sum(RegionB), sum(RegionC), n)
	}
	if sum(RegionA) != 2*n {
		t.Fatalf("A accesses = %d, want %d", sum(RegionA), 2*n)
	}
	if sum(RegionAccum) != 0 {
		t.Fatal("COO kernel has no accumulator")
	}
}

// The core claim of Sec. V: on a tensor whose mode-2 factor exceeds the
// cache, blocking reduces DRAM traffic to B.
func TestBlockingReducesBTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// J = 4096 rows x rank 64 x 8 B = 2 MB of B; L2 is 512 KB.
	dims := tensor.Dims{64, 4096, 64}
	x := randCOO(rng, dims, 40000)
	csf := mustCSF(t, x)
	rank := 64

	baseTr, err := MeasureTraffic(POWER8(), func(h *Hierarchy) error {
		return TraceSPLATT(h, csf, Options{Rank: rank})
	})
	if err != nil {
		t.Fatal(err)
	}

	bt, err := core.BuildBlocked(x, [3]int{1, 8, 1})
	if err != nil {
		t.Fatal(err)
	}
	mbTr, err := MeasureTraffic(POWER8(), func(h *Hierarchy) error {
		return TraceMB(h, bt, Options{Rank: rank})
	})
	if err != nil {
		t.Fatal(err)
	}

	baseB := baseTr.MemBytes(RegionB)
	mbB := mbTr.MemBytes(RegionB)
	if baseB == 0 {
		t.Fatal("baseline B traffic is zero — test tensor too small")
	}
	if mbB >= baseB {
		t.Fatalf("MB did not reduce B DRAM traffic: %d >= %d", mbB, baseB)
	}
	t.Logf("B DRAM bytes: SPLATT=%d MB=%d (%.2fx reduction)", baseB, mbB, float64(baseB)/float64(mbB))
}

// Rank blocking's claim (Sec. V-B): with a huge rank, sweeping strips
// lets factor *rows* stay resident, cutting B traffic.
func TestRankBlockingReducesBTrafficAtHighRank(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Rank 512: B = 512 rows x 512 cols x 8 B = 2 MB >> L2. Per strip
	// of 64 cols, the strip working set is 256 KB < L2.
	dims := tensor.Dims{32, 512, 32}
	x := randCOO(rng, dims, 20000)
	csf := mustCSF(t, x)
	rank := 512

	baseTr, err := MeasureTraffic(POWER8(), func(h *Hierarchy) error {
		return TraceSPLATT(h, csf, Options{Rank: rank})
	})
	if err != nil {
		t.Fatal(err)
	}
	rbTr, err := MeasureTraffic(POWER8(), func(h *Hierarchy) error {
		return TraceRankB(h, csf, Options{Rank: rank, RankBlockCols: 64})
	})
	if err != nil {
		t.Fatal(err)
	}
	baseB := baseTr.MemBytes(RegionB)
	rbB := rbTr.MemBytes(RegionB)
	if rbB >= baseB {
		t.Fatalf("RankB did not reduce B DRAM traffic: %d >= %d", rbB, baseB)
	}
	t.Logf("B DRAM bytes: SPLATT=%d RankB=%d (%.2fx reduction)", baseB, rbB, float64(baseB)/float64(rbB))
}

func TestMeasureTrafficPropagatesErrors(t *testing.T) {
	if _, err := MeasureTraffic(Config{}, func(h *Hierarchy) error { return nil }); err == nil {
		t.Fatal("bad config accepted")
	}
	csf := mustCSF(t, randCOO(rand.New(rand.NewSource(8)), tensor.Dims{4, 4, 4}, 10))
	if _, err := MeasureTraffic(POWER8(), func(h *Hierarchy) error {
		return TraceSPLATT(h, csf, Options{Rank: 0})
	}); err == nil {
		t.Fatal("trace error swallowed")
	}
}

// Ablation (Sec. V-B's "small rearrangement"): with power-of-two ranks,
// unpacked strips put every strip row on the same few cache sets and
// conflict-miss; packing restores the blocking benefit.
func TestStripPackingAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dims := tensor.Dims{32, 512, 32}
	x := randCOO(rng, dims, 20000)
	csf := mustCSF(t, x)
	rank := 512

	packed, err := MeasureTraffic(POWER8(), func(h *Hierarchy) error {
		return TraceRankB(h, csf, Options{Rank: rank, RankBlockCols: 64})
	})
	if err != nil {
		t.Fatal(err)
	}
	unpacked, err := MeasureTraffic(POWER8(), func(h *Hierarchy) error {
		return TraceRankB(h, csf, Options{Rank: rank, RankBlockCols: 64, NoStripPacking: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	pb, ub := packed.MemBytes(RegionB), unpacked.MemBytes(RegionB)
	if pb*2 >= ub {
		t.Fatalf("packing should cut B DRAM traffic by >2x: packed=%d unpacked=%d", pb, ub)
	}
	t.Logf("B DRAM bytes: packed=%d unpacked=%d (%.1fx)", pb, ub, float64(ub)/float64(pb))
}
