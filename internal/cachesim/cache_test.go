package cachesim

import (
	"testing"
)

func tinyConfig() Config {
	// 4 lines of 64 B in 2 sets x 2 ways for L1; 16 lines for L2.
	return Config{
		LineSize: 64,
		Levels: []LevelConfig{
			{Name: "L1", Size: 256, Ways: 2},
			{Name: "L2", Size: 1024, Ways: 2},
		},
	}
}

func TestNewHierarchyValidation(t *testing.T) {
	bad := []Config{
		{LineSize: 0, Levels: []LevelConfig{{Name: "L1", Size: 256, Ways: 2}}},
		{LineSize: 65, Levels: []LevelConfig{{Name: "L1", Size: 256, Ways: 2}}},
		{LineSize: 64},
		{LineSize: 64, Levels: []LevelConfig{{Name: "L1", Size: 0, Ways: 2}}},
		{LineSize: 64, Levels: []LevelConfig{{Name: "L1", Size: 256, Ways: 0}}},
		{LineSize: 64, Levels: []LevelConfig{{Name: "L1", Size: 192, Ways: 2}}}, // 3 lines per way -> 1.5 sets
	}
	for n, cfg := range bad {
		if _, err := NewHierarchy(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", n, cfg)
		}
	}
	if _, err := NewHierarchy(POWER8()); err != nil {
		t.Fatalf("POWER8 config rejected: %v", err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	h, err := NewHierarchy(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	h.Touch(RegionB, 0, 8) // cold: memory
	h.Touch(RegionB, 0, 8) // hot: L1
	tr := h.Snapshot()
	if tr.Served[RegionB][2] != 1 {
		t.Fatalf("memory lines = %d, want 1", tr.Served[RegionB][2])
	}
	if tr.Served[RegionB][0] != 1 {
		t.Fatalf("L1 hits = %d, want 1", tr.Served[RegionB][0])
	}
	if got := tr.HitRate(RegionB); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

func TestTouchSpansLines(t *testing.T) {
	h, _ := NewHierarchy(tinyConfig())
	// 130 bytes starting at offset 60 covers lines 0, 1, 2, 3 (60..189).
	h.Touch(RegionA, 60, 130)
	tr := h.Snapshot()
	var total int64
	for _, v := range tr.Served[RegionA] {
		total += v
	}
	if total != 3 {
		t.Fatalf("line accesses = %d, want 3", total)
	}
	if tr.MemLines(RegionA) != 3 {
		t.Fatalf("all cold accesses must come from memory, got %d", tr.MemLines(RegionA))
	}
}

func TestZeroSizeTouchIgnored(t *testing.T) {
	h, _ := NewHierarchy(tinyConfig())
	h.Touch(RegionA, 0, 0)
	h.Touch(RegionA, 0, -8)
	if h.Snapshot().TotalAccesses() != 0 {
		t.Fatal("zero/negative touches counted")
	}
}

func TestLRUEviction(t *testing.T) {
	h, _ := NewHierarchy(tinyConfig())
	// L1: 2 sets x 2 ways, 64 B lines. Lines 0 and 2 map to set 0
	// (line index even), lines 1 and 3 to set 1.
	h.Touch(RegionA, 0*64, 8) // line 0 -> set 0
	h.Touch(RegionA, 2*64, 8) // line 2 -> set 0
	h.Touch(RegionA, 4*64, 8) // line 4 -> set 0, evicts line 0 (LRU)
	h.Touch(RegionA, 2*64, 8) // line 2: still L1
	h.Touch(RegionA, 0*64, 8) // line 0: evicted from L1, hits L2
	tr := h.Snapshot()
	if tr.Served[RegionA][0] != 1 {
		t.Fatalf("L1 hits = %d, want 1 (only the line-2 touch)", tr.Served[RegionA][0])
	}
	if tr.Served[RegionA][1] != 1 {
		t.Fatalf("L2 hits = %d, want 1 (evicted line 0)", tr.Served[RegionA][1])
	}
	if tr.Served[RegionA][2] != 3 {
		t.Fatalf("memory = %d, want 3 cold misses", tr.Served[RegionA][2])
	}
}

func TestLRURecencyUpdate(t *testing.T) {
	h, _ := NewHierarchy(tinyConfig())
	h.Touch(RegionA, 0*64, 8) // set 0: [0]
	h.Touch(RegionA, 2*64, 8) // set 0: [2, 0]
	h.Touch(RegionA, 0*64, 8) // touch 0 again -> [0, 2]
	h.Touch(RegionA, 4*64, 8) // evicts 2, not 0
	h.Touch(RegionA, 0*64, 8) // must still be an L1 hit
	tr := h.Snapshot()
	if tr.Served[RegionA][0] != 2 {
		t.Fatalf("L1 hits = %d, want 2", tr.Served[RegionA][0])
	}
}

func TestRegionsDoNotAlias(t *testing.T) {
	h, _ := NewHierarchy(tinyConfig())
	h.Touch(RegionA, 0, 8)
	h.Touch(RegionB, 0, 8)
	tr := h.Snapshot()
	// Same offset in different regions must be distinct lines: both
	// cold-miss.
	if tr.MemLines(RegionA) != 1 || tr.MemLines(RegionB) != 1 {
		t.Fatalf("regions aliased: A=%d B=%d", tr.MemLines(RegionA), tr.MemLines(RegionB))
	}
}

func TestMemBytesAndAggregates(t *testing.T) {
	h, _ := NewHierarchy(tinyConfig())
	h.Touch(RegionA, 0, 8)
	h.Touch(RegionB, 0, 8)
	h.Touch(RegionB, 0, 8)
	tr := h.Snapshot()
	if tr.MemBytes(RegionB) != 64 {
		t.Fatalf("MemBytes(B) = %d, want 64", tr.MemBytes(RegionB))
	}
	if tr.MemLines(-1) != 2 {
		t.Fatalf("total mem lines = %d, want 2", tr.MemLines(-1))
	}
	if tr.TotalAccesses() != 3 {
		t.Fatalf("total accesses = %d, want 3", tr.TotalAccesses())
	}
	if got := tr.HitRate(-1); got < 0.33 || got > 0.34 {
		t.Fatalf("aggregate hit rate = %v, want 1/3", got)
	}
}

func TestHitRateEmpty(t *testing.T) {
	h, _ := NewHierarchy(tinyConfig())
	if h.Snapshot().HitRate(-1) != 0 {
		t.Fatal("empty hit rate should be 0")
	}
}

func TestReset(t *testing.T) {
	h, _ := NewHierarchy(tinyConfig())
	h.Touch(RegionA, 0, 8)
	h.Reset()
	if h.Snapshot().TotalAccesses() != 0 {
		t.Fatal("Reset did not clear counters")
	}
	// Cache contents survive: the next touch is a hit.
	h.Touch(RegionA, 0, 8)
	tr := h.Snapshot()
	if tr.Served[RegionA][0] != 1 {
		t.Fatal("Reset cleared cache contents")
	}
}

func TestRegionString(t *testing.T) {
	if RegionB.String() != "B" || RegionAccum.String() != "accum" {
		t.Fatal("region names wrong")
	}
	if Region(99).String() == "" {
		t.Fatal("unknown region should render")
	}
	if len(Regions()) != int(numRegions) {
		t.Fatal("Regions() incomplete")
	}
}

func TestInclusiveFill(t *testing.T) {
	h, _ := NewHierarchy(tinyConfig())
	h.Touch(RegionA, 0, 8) // memory; fills L1 and L2
	// Thrash L1 set 0 so line 0 is evicted from L1 but lives in L2.
	h.Touch(RegionA, 2*64, 8)
	h.Touch(RegionA, 4*64, 8)
	h.Touch(RegionA, 0, 8) // must be served by L2
	tr := h.Snapshot()
	if tr.Served[RegionA][1] != 1 {
		t.Fatalf("L2 hits = %d, want 1 (inclusive fill)", tr.Served[RegionA][1])
	}
}
