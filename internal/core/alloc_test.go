package core

import (
	"math/rand"
	"testing"

	"spblock/internal/kernel"
	"spblock/internal/la"
	"spblock/internal/sched"
	"spblock/internal/tensor"
	"spblock/internal/testutil/raceflag"
)

// TestRunSteadyStateAllocations is the regression guard for the pooled
// workspaces: after a warm-up run sizes the workspace for the rank,
// repeated Executor.Run calls must not touch the heap at all — for any
// method, sequential or parallel. CP-ALS calls MTTKRP 10–1000s of
// times per decomposition, so a single allocation here multiplies into
// allocator pressure and GC noise across every decomposition and every
// autotuning measurement.
func TestRunSteadyStateAllocations(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	rng := rand.New(rand.NewSource(1))
	dims := tensor.Dims{32, 48, 24}
	x := randCOO(rng, dims, 4000)
	const rank = 48
	b := randMatrix(rng, dims[1], rank)
	c := randMatrix(rng, dims[2], rank)
	out := la.NewMatrix(dims[0], rank)
	plans := []Plan{
		{Method: MethodCOO, Workers: 1},
		{Method: MethodCOO, Workers: 4},
		{Method: MethodSPLATT, Workers: 1},
		{Method: MethodSPLATT, Workers: 4},
		{Method: MethodRankB, RankBlockCols: 16, Workers: 1},
		{Method: MethodRankB, RankBlockCols: 16, Workers: 4},
		{Method: MethodRankB, RankBlockCols: 16, NoStripPacking: true, Workers: 1},
		{Method: MethodRankB, Workers: 1}, // whole rank, no strips
		// One plan per registered kernel width plus the scalar variant:
		// the cached-function-pointer dispatch must stay allocation-free
		// for every entry the registry can resolve.
		{Method: MethodRankB, RankBlockCols: 8, Workers: 1},
		{Method: MethodRankB, RankBlockCols: 24, Workers: 1},
		{Method: MethodRankB, RankBlockCols: 32, Workers: 1},
		{Method: MethodRankB, RankBlockCols: 4, Workers: 1}, // below MinWidth: scalar tails
		{Method: MethodMB, Grid: [3]int{4, 2, 2}, Workers: 1},
		{Method: MethodMB, Grid: [3]int{4, 2, 2}, Workers: 4},
		{Method: MethodMBRankB, Grid: [3]int{4, 2, 2}, RankBlockCols: 16, Workers: 1},
		{Method: MethodMBRankB, Grid: [3]int{4, 2, 2}, RankBlockCols: 16, Workers: 4},
		// The stealing and adaptive paths must hold the same zero-alloc
		// contract: the chunk claims are atomic ops over layouts prebuilt
		// in the cold half, and adaptive promotion is a flag flip.
		{Method: MethodSPLATT, Workers: 4, Sched: sched.PolicySteal},
		{Method: MethodSPLATT, Workers: 4, Sched: sched.PolicyAdaptive},
		{Method: MethodMB, Grid: [3]int{4, 2, 2}, Workers: 4, Sched: sched.PolicySteal},
		{Method: MethodMBRankB, Grid: [3]int{4, 2, 2}, RankBlockCols: 16, Workers: 4, Sched: sched.PolicySteal},
		{Method: MethodCOO, Workers: 4, Sched: sched.PolicyAdaptive}, // resolves static, must stay clean
	}
	// Every registered kernel width rides the stealing queue through the
	// width-specialised rank-strip dispatch.
	for _, w := range kernel.Widths() {
		plans = append(plans, Plan{Method: MethodRankB, RankBlockCols: w, Workers: 4, Sched: sched.PolicySteal})
	}
	for _, plan := range plans {
		e, err := NewExecutor(x, plan)
		if err != nil {
			t.Fatal(err)
		}
		// Warm-up: the first Run at a rank sizes the pooled buffers and
		// the parallel launches spawn their first goroutines.
		for i := 0; i < 2; i++ {
			if err := e.Run(b, c, out); err != nil {
				t.Fatal(err)
			}
		}
		e.Metrics().Reset()
		allocs := testing.AllocsPerRun(20, func() {
			if err := e.Run(b, c, out); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: %.2f allocs per steady-state Run, want 0", plan, allocs)
		}
		// The instrumentation layer must have been *collecting* during
		// those zero-alloc runs — an accidentally-dead collector would
		// pass the alloc check trivially.
		snap := e.Metrics().Snapshot()
		if snap.Runs < 20 {
			t.Errorf("%v: collector saw %d runs during the alloc window", plan, snap.Runs)
		}
		if snap.NNZ <= 0 || snap.BytesEst <= 0 || snap.WallNS <= 0 {
			t.Errorf("%v: degenerate counters while collecting: %+v", plan, snap)
		}
		var workerNS int64
		for _, ns := range snap.WorkerNS {
			workerNS += ns
		}
		if workerNS <= 0 {
			t.Errorf("%v: no worker time recorded: %v", plan, snap.WorkerNS)
		}
	}
}

// TestPromotedAdaptiveAllocationFree pins the adaptive path's second
// half: after the controller's promotion flips the queue to the
// stealing layout, steady-state Runs (now claiming and stealing
// chunks, counting steals, and feeding the quiescent controller) must
// still never touch the heap.
func TestPromotedAdaptiveAllocationFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	rng := rand.New(rand.NewSource(3))
	dims := tensor.Dims{32, 48, 24}
	x := randCOO(rng, dims, 4000)
	const rank = 32
	b := randMatrix(rng, dims[1], rank)
	c := randMatrix(rng, dims[2], rank)
	out := la.NewMatrix(dims[0], rank)
	e, err := NewExecutor(x, Plan{Method: MethodSPLATT, Workers: 4, Sched: sched.PolicyAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := e.Run(b, c, out); err != nil {
			t.Fatal(err)
		}
	}
	// Promote exactly the way observe() does.
	e.ws.q.SetStealing(true)
	e.met.SetSched(sched.AdaptiveStealName)
	allocs := testing.AllocsPerRun(20, func() {
		if err := e.Run(b, c, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("promoted adaptive: %.2f allocs per steady-state Run, want 0", allocs)
	}
	if !e.ws.q.Stealing() {
		t.Fatal("promotion did not stick")
	}
}

// TestRankChangeResizesWorkspace: running the same executor at a new
// rank must re-size the pooled buffers (one-time allocations), then go
// allocation-free again — and stay correct at both ranks.
func TestRankChangeResizesWorkspace(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dims := tensor.Dims{16, 20, 12}
	x := randCOO(rng, dims, 800)
	e, err := NewExecutor(x, Plan{Method: MethodRankB, RankBlockCols: 16, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, rank := range []int{48, 17, 48} {
		b := randMatrix(rng, dims[1], rank)
		c := randMatrix(rng, dims[2], rank)
		got := la.NewMatrix(dims[0], rank)
		want := la.NewMatrix(dims[0], rank)
		if err := Reference(x, b, c, want); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if err := e.Run(b, c, got); err != nil {
				t.Fatal(err)
			}
		}
		if d := got.MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("rank %d after resize: differs from oracle by %v", rank, d)
		}
	}
}

// TestNegativeWorkersRejected covers the Plan.Workers validation: a
// negative degree is a caller bug, not a request for GOMAXPROCS.
func TestNegativeWorkersRejected(t *testing.T) {
	x := tensor.NewCOO(tensor.Dims{4, 4, 4}, 0)
	x.Append(1, 1, 1, 1)
	b := la.NewMatrix(4, 2)
	c := la.NewMatrix(4, 2)
	out := la.NewMatrix(4, 2)
	for _, method := range []Method{MethodCOO, MethodSPLATT, MethodMB, MethodRankB, MethodMBRankB} {
		plan := Plan{Method: method, Grid: [3]int{1, 1, 1}, Workers: -1}
		if _, err := NewExecutor(x, plan); err == nil {
			t.Errorf("%v: NewExecutor accepted Workers=-1", method)
		}
		if err := MTTKRP(x, b, c, out, plan); err == nil {
			t.Errorf("%v: MTTKRP accepted Workers=-1", method)
		}
	}
	// Workers 0 (GOMAXPROCS) and positive degrees stay valid.
	for _, w := range []int{0, 1, 3} {
		if _, err := NewExecutor(x, Plan{Method: MethodSPLATT, Workers: w}); err != nil {
			t.Errorf("Workers=%d rejected: %v", w, err)
		}
	}
}
