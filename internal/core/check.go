package core

import (
	"fmt"

	"spblock/internal/analysis/check"
	"spblock/internal/tensor"
)

// validateCSF runs the spblockcheck structure oracle over a SPLATT
// tree. The order-3 structure is a three-level CSF: slices over mode
// 0, fibers over mode 2, leaves over mode 1.
//
//spblock:coldpath
func validateCSF(c *tensor.CSF) error {
	if c == nil {
		return fmt.Errorf("nil CSF")
	}
	return check.Tree(
		[]int{c.Dims[0], c.Dims[1], c.Dims[2]},
		[]int{0, 2, 1},
		[][]int32{c.SliceID, c.FiberK, c.NzJ},
		[][]int32{c.SlicePtr, c.FiberPtr},
		c.NNZ())
}

// validateBlocked runs the oracle over a blocked layout: per-block CSF
// invariants, per-block coordinate containment, exact nonzero
// coverage.
//
//spblock:coldpath
func validateBlocked(bt *BlockedTensor) error {
	if bt == nil {
		return fmt.Errorf("nil BlockedTensor")
	}
	if len(bt.Blocks) != bt.Grid[0]*bt.Grid[1]*bt.Grid[2] {
		return fmt.Errorf("%d blocks for grid %v", len(bt.Blocks), bt.Grid)
	}
	covered := 0
	for id, blk := range bt.Blocks {
		if blk == nil {
			continue
		}
		if err := validateCSF(blk); err != nil {
			return fmt.Errorf("block %d: %w", id, err)
		}
		bi := id / (bt.Grid[1] * bt.Grid[2])
		bj := (id / bt.Grid[2]) % bt.Grid[1]
		bk := id % bt.Grid[2]
		if err := check.IDBox("SliceID", blk.SliceID, bi, bt.BlockDims[0], bt.Dims[0]); err != nil {
			return fmt.Errorf("block %d: %w", id, err)
		}
		if err := check.IDBox("NzJ", blk.NzJ, bj, bt.BlockDims[1], bt.Dims[1]); err != nil {
			return fmt.Errorf("block %d: %w", id, err)
		}
		if err := check.IDBox("FiberK", blk.FiberK, bk, bt.BlockDims[2], bt.Dims[2]); err != nil {
			return fmt.Errorf("block %d: %w", id, err)
		}
		covered += blk.NNZ()
	}
	return check.Coverage(covered, bt.NNZ())
}
