package core

import (
	"math/rand"
	"testing"

	"spblock/internal/la"
	"spblock/internal/tensor"
)

func TestUnpackedStripsStayCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	dims := tensor.Dims{12, 14, 10}
	x := randCOO(rng, dims, 250)
	for _, rank := range []int{16, 17, 48, 65} {
		b := randMatrix(rng, dims[1], rank)
		c := randMatrix(rng, dims[2], rank)
		want := la.NewMatrix(dims[0], rank)
		if err := Reference(x, b, c, want); err != nil {
			t.Fatal(err)
		}
		for _, plan := range []Plan{
			{Method: MethodRankB, RankBlockCols: 16, NoStripPacking: true, Workers: 1},
			{Method: MethodRankB, RankBlockCols: 32, NoStripPacking: true, Workers: 3},
			{Method: MethodMBRankB, Grid: [3]int{2, 2, 2}, RankBlockCols: 16, NoStripPacking: true, Workers: 2},
		} {
			got := la.NewMatrix(dims[0], rank)
			if err := MTTKRP(x, b, c, got, plan); err != nil {
				t.Fatalf("rank %d %v: %v", rank, plan, err)
			}
			if d := got.MaxAbsDiff(want); d > 1e-9 {
				t.Fatalf("rank %d %v: differs by %v", rank, plan, d)
			}
		}
	}
}

func TestPackedAndUnpackedAgreeExactly(t *testing.T) {
	// The two strip drivers must produce bit-identical results: packing
	// only moves data, never reorders the arithmetic.
	rng := rand.New(rand.NewSource(21))
	dims := tensor.Dims{20, 30, 20}
	x := randCOO(rng, dims, 500)
	rank := 64
	b := randMatrix(rng, dims[1], rank)
	c := randMatrix(rng, dims[2], rank)
	packed := la.NewMatrix(dims[0], rank)
	unpacked := la.NewMatrix(dims[0], rank)
	if err := MTTKRP(x, b, c, packed, Plan{Method: MethodRankB, RankBlockCols: 16, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := MTTKRP(x, b, c, unpacked, Plan{Method: MethodRankB, RankBlockCols: 16, NoStripPacking: true, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if d := packed.MaxAbsDiff(unpacked); d != 0 {
		t.Fatalf("drivers disagree by %v (expected bit-identical)", d)
	}
}
