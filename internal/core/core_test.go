package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"spblock/internal/la"
	"spblock/internal/sched"
	"spblock/internal/tensor"
)

func randMatrix(rng *rand.Rand, rows, cols int) *la.Matrix {
	m := la.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randCOO(rng *rand.Rand, dims tensor.Dims, nnz int) *tensor.COO {
	t := tensor.NewCOO(dims, nnz)
	for p := 0; p < nnz; p++ {
		t.Append(
			tensor.Index(rng.Intn(dims[0])),
			tensor.Index(rng.Intn(dims[1])),
			tensor.Index(rng.Intn(dims[2])),
			rng.NormFloat64(),
		)
	}
	t.Dedup()
	return t
}

// allPlans enumerates every kernel configuration worth testing against
// the oracle for a given tensor shape.
func allPlans(dims tensor.Dims) []Plan {
	plans := []Plan{
		{Method: MethodCOO},
		{Method: MethodSPLATT, Workers: 1},
		{Method: MethodSPLATT, Workers: 4},
		{Method: MethodRankB, RankBlockCols: 16, Workers: 1},
		{Method: MethodRankB, RankBlockCols: 32, Workers: 4},
		{Method: MethodRankB, RankBlockCols: 0, Workers: 1}, // whole rank
	}
	grids := [][3]int{
		{1, 1, 1},
		{2, 2, 2},
		{1, 3, 1},
		{4, 1, 2},
	}
	for _, g := range grids {
		ok := g[0] <= dims[0] && g[1] <= dims[1] && g[2] <= dims[2]
		if !ok {
			continue
		}
		plans = append(plans,
			Plan{Method: MethodMB, Grid: g, Workers: 2},
			Plan{Method: MethodMBRankB, Grid: g, RankBlockCols: 16, Workers: 2},
		)
	}
	return plans
}

func TestAllKernelsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	dims := tensor.Dims{13, 11, 9}
	x := randCOO(rng, dims, 250)
	// The paper's analysis spans ranks 16..2048; we cover the odd and
	// sub-register-width cases that stress the tail paths too.
	for _, r := range []int{1, 3, 8, 16, 17, 31, 33, 64} {
		b := randMatrix(rng, dims[1], r)
		c := randMatrix(rng, dims[2], r)
		want := la.NewMatrix(dims[0], r)
		if err := Reference(x, b, c, want); err != nil {
			t.Fatal(err)
		}
		for _, plan := range allPlans(dims) {
			got := la.NewMatrix(dims[0], r)
			if err := MTTKRP(x, b, c, got, plan); err != nil {
				t.Fatalf("rank %d, %v: %v", r, plan, err)
			}
			if d := got.MaxAbsDiff(want); d > 1e-9 {
				t.Fatalf("rank %d, %v: differs from oracle by %v", r, plan, d)
			}
		}
	}
}

func TestKernelsOnPaperExample(t *testing.T) {
	// Figure 1a tensor with hand-computed MTTKRP at rank 2.
	x := tensor.NewCOO(tensor.Dims{3, 3, 3}, 7)
	x.Append(0, 0, 0, 5)
	x.Append(0, 1, 1, 3)
	x.Append(0, 1, 2, 1)
	x.Append(1, 0, 2, 2)
	x.Append(1, 1, 1, 9)
	x.Append(1, 2, 2, 7)
	x.Append(2, 0, 0, 9)
	b := la.NewMatrix(3, 2)
	c := la.NewMatrix(3, 2)
	b.FillFunc(func(i, j int) float64 { return float64(i + 1) })        // rows: 1,2,3
	c.FillFunc(func(i, j int) float64 { return float64(10 * (i + 1)) }) // rows: 10,20,30
	// A[0] = 5*1*10 + 3*2*20 + 1*2*30 = 50+120+60 = 230 (per column)
	// A[1] = 2*1*30 + 9*2*20 + 7*3*30 = 60+360+630 = 1050
	// A[2] = 9*1*10 = 90
	want := [][2]float64{{230, 230}, {1050, 1050}, {90, 90}}
	for _, plan := range allPlans(x.Dims) {
		out := la.NewMatrix(3, 2)
		if err := MTTKRP(x, b, c, out, plan); err != nil {
			t.Fatal(err)
		}
		for i, row := range want {
			for q := 0; q < 2; q++ {
				if got := out.At(i, q); got != row[q] {
					t.Fatalf("%v: A[%d][%d] = %v, want %v", plan, i, q, got, row[q])
				}
			}
		}
	}
}

func TestEmptyTensor(t *testing.T) {
	x := tensor.NewCOO(tensor.Dims{4, 4, 4}, 0)
	b := la.NewMatrix(4, 8)
	c := la.NewMatrix(4, 8)
	for _, plan := range allPlans(x.Dims) {
		out := la.NewMatrix(4, 8)
		out.FillFunc(func(i, j int) float64 { return 1 }) // must be zeroed by Run
		if err := MTTKRP(x, b, c, out, plan); err != nil {
			t.Fatalf("%v: %v", plan, err)
		}
		if out.FrobeniusNorm() != 0 {
			t.Fatalf("%v: empty tensor produced nonzero output", plan)
		}
	}
}

func TestOperandValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randCOO(rng, tensor.Dims{4, 5, 6}, 10)
	ok := func() (b, c, out *la.Matrix) {
		return la.NewMatrix(5, 8), la.NewMatrix(6, 8), la.NewMatrix(4, 8)
	}
	e, err := NewExecutor(x, Plan{Method: MethodSPLATT})
	if err != nil {
		t.Fatal(err)
	}
	b, c, out := ok()
	if err := e.Run(b, c, out); err != nil {
		t.Fatalf("valid operands rejected: %v", err)
	}
	cases := []func() (x, y, z *la.Matrix){
		func() (*la.Matrix, *la.Matrix, *la.Matrix) { b, c, o := ok(); _ = b; return la.NewMatrix(4, 8), c, o },
		func() (*la.Matrix, *la.Matrix, *la.Matrix) { b, c, o := ok(); _ = c; return b, la.NewMatrix(5, 8), o },
		func() (*la.Matrix, *la.Matrix, *la.Matrix) { b, c, o := ok(); _ = o; return b, c, la.NewMatrix(3, 8) },
		func() (*la.Matrix, *la.Matrix, *la.Matrix) { b, c, o := ok(); _ = b; return la.NewMatrix(5, 4), c, o },
		func() (*la.Matrix, *la.Matrix, *la.Matrix) { b, c, o := ok(); _ = o; return b, c, la.NewMatrix(4, 4) },
		func() (*la.Matrix, *la.Matrix, *la.Matrix) {
			return la.NewMatrix(5, 0), la.NewMatrix(6, 0), la.NewMatrix(4, 0)
		},
	}
	for n, mk := range cases {
		bb, cc, oo := mk()
		if err := e.Run(bb, cc, oo); err == nil {
			t.Fatalf("case %d: invalid operands accepted", n)
		}
	}
}

func TestNewExecutorErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randCOO(rng, tensor.Dims{4, 4, 4}, 10)
	if _, err := NewExecutor(x, Plan{Method: Method(99)}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := NewExecutor(x, Plan{Method: MethodMB, Grid: [3]int{0, 1, 1}}); err == nil {
		t.Fatal("zero grid accepted")
	}
	if _, err := NewExecutor(x, Plan{Method: MethodMB, Grid: [3]int{9, 1, 1}}); err == nil {
		t.Fatal("grid larger than mode accepted")
	}
	if _, err := NewExecutor(x, Plan{Method: MethodRankB, RankBlockCols: -1}); err == nil {
		t.Fatal("negative rank block accepted")
	}
	bad := tensor.NewCOO(tensor.Dims{2, 2, 2}, 0)
	bad.Append(7, 0, 0, 1)
	if _, err := NewExecutor(bad, Plan{Method: MethodSPLATT}); err == nil {
		t.Fatal("invalid tensor accepted")
	}
}

func TestRunIsRepeatable(t *testing.T) {
	// An executor is meant to be reused across ALS iterations: Run must
	// zero the output and produce identical results every call.
	rng := rand.New(rand.NewSource(3))
	x := randCOO(rng, tensor.Dims{10, 10, 10}, 100)
	b := randMatrix(rng, 10, 17)
	c := randMatrix(rng, 10, 17)
	e, err := NewExecutor(x, Plan{Method: MethodMBRankB, Grid: [3]int{2, 2, 2}, RankBlockCols: 16})
	if err != nil {
		t.Fatal(err)
	}
	out1 := la.NewMatrix(10, 17)
	out2 := la.NewMatrix(10, 17)
	if err := e.Run(b, c, out1); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(b, c, out2); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(b, c, out2); err != nil { // third run over dirty out2
		t.Fatal(err)
	}
	if d := out1.MaxAbsDiff(out2); d != 0 {
		t.Fatalf("repeated runs differ by %v", d)
	}
}

func TestMethodAndPlanStrings(t *testing.T) {
	for m, want := range map[Method]string{
		MethodCOO: "COO", MethodSPLATT: "SPLATT", MethodMB: "MB",
		MethodRankB: "RankB", MethodMBRankB: "MB+RankB",
	} {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", m, m.String())
		}
	}
	if Method(42).String() == "" {
		t.Fatal("unknown method should render")
	}
	p := Plan{Method: MethodMBRankB, Grid: [3]int{2, 3, 4}, RankBlockCols: 32}
	if s := p.String(); !strings.Contains(s, "2x3x4") || !strings.Contains(s, "bs=32") {
		t.Fatalf("Plan.String = %q", s)
	}
}

// TestSliceShares covers the slice partition the executors now obtain
// through sched.Shares with the CSF nnz-cumulative weight function —
// the same invariants the old in-package sliceShares guaranteed.
func TestSliceShares(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randCOO(rng, tensor.Dims{50, 20, 20}, 2000)
	csf, err := tensor.BuildCSF(x)
	if err != nil {
		t.Fatal(err)
	}
	cumOf := func(c *tensor.CSF) func(int) int64 {
		return func(i int) int64 { return int64(c.FiberPtr[c.SlicePtr[i+1]]) }
	}
	for _, workers := range []int{1, 2, 3, 7, 100} {
		shares := sched.Shares(csf.NumSlices(), workers, cumOf(csf))
		if len(shares) == 0 {
			t.Fatal("no shares")
		}
		// Coverage: contiguous, disjoint, spanning [0, numSlices).
		if shares[0][0] != 0 || shares[len(shares)-1][1] != csf.NumSlices() {
			t.Fatalf("workers=%d: shares %v do not span", workers, shares)
		}
		for s := 1; s < len(shares); s++ {
			if shares[s][0] != shares[s-1][1] {
				t.Fatalf("workers=%d: gap between shares %v", workers, shares)
			}
		}
		for _, sh := range shares {
			if sh[0] >= sh[1] {
				t.Fatalf("workers=%d: empty share %v", workers, sh)
			}
		}
		if len(shares) > workers {
			t.Fatalf("more shares than workers: %d > %d", len(shares), workers)
		}
	}
	// Empty tensor: no shares.
	emptyCSF, _ := tensor.BuildCSF(tensor.NewCOO(tensor.Dims{3, 3, 3}, 0))
	if s := sched.Shares(emptyCSF.NumSlices(), 4, cumOf(emptyCSF)); s != nil {
		t.Fatalf("empty tensor shares = %v", s)
	}
}

func TestBuildBlockedStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dims := tensor.Dims{12, 9, 15}
	x := randCOO(rng, dims, 300)
	bt, err := BuildBlocked(x, [3]int{3, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if bt.NNZ() != x.NNZ() {
		t.Fatalf("blocked nnz %d != %d", bt.NNZ(), x.NNZ())
	}
	if bt.BlockDims != [3]int{4, 3, 3} {
		t.Fatalf("block dims = %v", bt.BlockDims)
	}
	// Every nonzero lands in the block its coordinates dictate, with
	// valid CSF structure and sorted content.
	total := 0
	for bi := 0; bi < 3; bi++ {
		for bj := 0; bj < 3; bj++ {
			for bk := 0; bk < 5; bk++ {
				blk := bt.BlockAt(bi, bj, bk)
				if blk == nil {
					continue
				}
				if err := blk.Validate(); err != nil {
					t.Fatalf("block (%d,%d,%d): %v", bi, bj, bk, err)
				}
				back := blk.ToCOO()
				total += back.NNZ()
				for p := 0; p < back.NNZ(); p++ {
					if int(back.I[p])/4 != bi || int(back.J[p])/3 != bj || int(back.K[p])/3 != bk {
						t.Fatalf("entry (%d,%d,%d) in wrong block (%d,%d,%d)",
							back.I[p], back.J[p], back.K[p], bi, bj, bk)
					}
				}
			}
		}
	}
	if total != x.NNZ() {
		t.Fatalf("blocks hold %d nonzeros, tensor has %d", total, x.NNZ())
	}
	if bt.FactorAccessCounts() != [3]int{15, 15, 9} {
		t.Fatalf("factor access counts = %v", bt.FactorAccessCounts())
	}
}

func TestBuildBlockedOverheadGrowsWithGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randCOO(rng, tensor.Dims{40, 40, 40}, 4000)
	flat, err := BuildBlocked(x, [3]int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := BuildBlocked(x, [3]int{8, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if fine.MemoryBytes() <= flat.MemoryBytes() {
		t.Fatalf("fine grid memory %d not above flat %d — fiber splitting must cost",
			fine.MemoryBytes(), flat.MemoryBytes())
	}
	if flat.NumBlocks() != 1 {
		t.Fatalf("flat grid has %d blocks", flat.NumBlocks())
	}
}

func TestBuildBlockedDoesNotMutateInput(t *testing.T) {
	x := tensor.NewCOO(tensor.Dims{4, 4, 4}, 0)
	x.Append(3, 3, 3, 1)
	x.Append(0, 0, 0, 2) // unsorted
	if _, err := BuildBlocked(x, [3]int{2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	if x.I[0] != 3 {
		t.Fatal("BuildBlocked reordered the caller's tensor")
	}
}

func TestMTTKRPModeEquivalence(t *testing.T) {
	// Mode-2 MTTKRP on X equals mode-1 MTTKRP on X with modes permuted
	// (the identity the library relies on to serve all three modes).
	rng := rand.New(rand.NewSource(7))
	dims := tensor.Dims{6, 7, 8}
	x := randCOO(rng, dims, 120)
	r := 16
	a := randMatrix(rng, dims[0], r)
	c := randMatrix(rng, dims[2], r)

	// Direct mode-2 result via dense contraction oracle:
	// B_out[j] = Σ_{i,k} X[i,j,k] * A[i] .* C[k].
	want := la.NewMatrix(dims[1], r)
	for p := 0; p < x.NNZ(); p++ {
		arow := a.Row(int(x.I[p]))
		crow := c.Row(int(x.K[p]))
		orow := want.Row(int(x.J[p]))
		for q := 0; q < r; q++ {
			orow[q] += x.Val[p] * arow[q] * crow[q]
		}
	}

	perm, err := x.PermuteModes([3]int{1, 0, 2}) // (j, i, k)
	if err != nil {
		t.Fatal(err)
	}
	got := la.NewMatrix(dims[1], r)
	if err := MTTKRP(perm, a, c, got, Plan{Method: MethodMBRankB, Grid: [3]int{2, 2, 2}, RankBlockCols: 16}); err != nil {
		t.Fatal(err)
	}
	if d := got.MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("mode-2 via permutation differs by %v", d)
	}
}

// Property: for random tensors, shapes and grids, the blocked kernel
// agrees with the sequential SPLATT kernel exactly (blocking reorders
// only across fibers, and fiber epilogues are order-independent sums).
func TestQuickBlockedMatchesSPLATT(t *testing.T) {
	f := func(seed int64, g0, g1, g2 uint8, r uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := tensor.Dims{8, 8, 8}
		x := randCOO(rng, dims, 150)
		rank := int(r%24) + 1
		b := randMatrix(rng, dims[1], rank)
		c := randMatrix(rng, dims[2], rank)
		grid := [3]int{int(g0%4) + 1, int(g1%4) + 1, int(g2%4) + 1}

		want := la.NewMatrix(dims[0], rank)
		if err := MTTKRP(x, b, c, want, Plan{Method: MethodSPLATT, Workers: 1}); err != nil {
			return false
		}
		got := la.NewMatrix(dims[0], rank)
		if err := MTTKRP(x, b, c, got, Plan{Method: MethodMBRankB, Grid: grid, RankBlockCols: 16, Workers: 3}); err != nil {
			return false
		}
		return got.MaxAbsDiff(want) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReferenceRefusesHugeShapes(t *testing.T) {
	x := tensor.NewCOO(tensor.Dims{2, 100000, 100000}, 0)
	x.Append(0, 0, 0, 1)
	b := la.NewMatrix(100000, 64)
	c := la.NewMatrix(100000, 64)
	out := la.NewMatrix(2, 64)
	if err := Reference(x, b, c, out); err == nil {
		t.Fatal("Reference accepted an enormous Khatri-Rao product")
	}
}

func TestParallelCOOPrivatization(t *testing.T) {
	// The privatised parallel COO kernel must agree with the sequential
	// one even when ranges split mid-row (output rows are shared).
	rng := rand.New(rand.NewSource(30))
	dims := tensor.Dims{4, 50, 50} // few rows: heavy write sharing
	x := randCOO(rng, dims, 2000)
	b := randMatrix(rng, dims[1], 24)
	c := randMatrix(rng, dims[2], 24)
	want := la.NewMatrix(dims[0], 24)
	if err := MTTKRP(x, b, c, want, Plan{Method: MethodCOO, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 100} {
		got := la.NewMatrix(dims[0], 24)
		if err := MTTKRP(x, b, c, got, Plan{Method: MethodCOO, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		if d := got.MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("workers=%d: differs by %v", workers, d)
		}
	}
}
