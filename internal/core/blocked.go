package core

import (
	"fmt"

	"spblock/internal/kernel"
	"spblock/internal/la"
	"spblock/internal/tensor"
)

// BlockedTensor is the multi-dimensionally blocked representation of
// Sec. V-A (Figure 3a): the index space is cut into Grid[0] x Grid[1] x
// Grid[2] axis-aligned blocks and the nonzeros of each block are stored
// contiguously in their own SPLATT structure. Coordinates stay global,
// so the factor matrices need no reindexing — the locality win comes
// purely from confining each block's factor-row working set.
type BlockedTensor struct {
	Dims      tensor.Dims
	Grid      [3]int
	BlockDims [3]int // ceil(dim/grid) per mode

	// Blocks is indexed (bi*Grid[1]+bj)*Grid[2]+bk; empty blocks are nil.
	Blocks []*tensor.CSF

	nnz int
}

// BuildBlocked reorganises t into grid blocks. The input is unchanged.
// This is the "very little data rearrangement" preprocessing the paper
// contrasts with hypergraph reordering: two linear passes plus one
// fiber sort, amortised over the 10–1000s of MTTKRP calls of a CPD run.
func BuildBlocked(t *tensor.COO, grid [3]int) (*BlockedTensor, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	for m := 0; m < 3; m++ {
		if grid[m] < 1 {
			return nil, fmt.Errorf("core: grid[%d] = %d, must be >= 1", m, grid[m])
		}
		if grid[m] > t.Dims[m] {
			return nil, fmt.Errorf("core: grid[%d] = %d exceeds mode length %d",
				m, grid[m], t.Dims[m])
		}
	}
	bt := &BlockedTensor{
		Dims: t.Dims,
		Grid: grid,
		BlockDims: [3]int{
			ceilDiv(t.Dims[0], grid[0]),
			ceilDiv(t.Dims[1], grid[1]),
			ceilDiv(t.Dims[2], grid[2]),
		},
		nnz: t.NNZ(),
	}
	nBlocks := grid[0] * grid[1] * grid[2]
	bt.Blocks = make([]*tensor.CSF, nBlocks)
	if t.NNZ() == 0 {
		return bt, nil
	}

	// Fiber-sort a copy, then stably bucket nonzeros by block id; the
	// stable pass keeps every block's segment in (i,k,j) order so each
	// block's CSF builds without re-sorting.
	sorted := t.Clone()
	sorted.SortFiberOrder()

	n := sorted.NNZ()
	blockOf := make([]int32, n)
	counts := make([]int32, nBlocks+1)
	for p := 0; p < n; p++ {
		b := bt.blockID(sorted.I[p], sorted.J[p], sorted.K[p])
		blockOf[p] = int32(b)
		counts[b+1]++
	}
	for b := 0; b < nBlocks; b++ {
		counts[b+1] += counts[b]
	}
	bucketed := tensor.NewCOO(t.Dims, 0)
	bucketed.I = make([]tensor.Index, n)
	bucketed.J = make([]tensor.Index, n)
	bucketed.K = make([]tensor.Index, n)
	bucketed.Val = make([]float64, n)
	next := make([]int32, nBlocks)
	copy(next, counts[:nBlocks])
	for p := 0; p < n; p++ {
		b := blockOf[p]
		pos := next[b]
		next[b]++
		bucketed.I[pos] = sorted.I[p]
		bucketed.J[pos] = sorted.J[p]
		bucketed.K[pos] = sorted.K[p]
		bucketed.Val[pos] = sorted.Val[p]
	}

	for b := 0; b < nBlocks; b++ {
		lo, hi := counts[b], counts[b+1]
		if lo == hi {
			continue
		}
		view := &tensor.COO{
			Dims: t.Dims,
			I:    bucketed.I[lo:hi],
			J:    bucketed.J[lo:hi],
			K:    bucketed.K[lo:hi],
			Val:  bucketed.Val[lo:hi],
		}
		csf, err := tensor.BuildCSF(view)
		if err != nil {
			return nil, err
		}
		bt.Blocks[b] = csf
	}
	return bt, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// blockID maps a coordinate to its flat block index.
func (bt *BlockedTensor) blockID(i, j, k tensor.Index) int {
	bi := int(i) / bt.BlockDims[0]
	bj := int(j) / bt.BlockDims[1]
	bk := int(k) / bt.BlockDims[2]
	return (bi*bt.Grid[1]+bj)*bt.Grid[2] + bk
}

// BlockAt returns the CSF of block (bi, bj, bk), or nil when empty.
//
//spblock:hotpath
func (bt *BlockedTensor) BlockAt(bi, bj, bk int) *tensor.CSF {
	return bt.Blocks[(bi*bt.Grid[1]+bj)*bt.Grid[2]+bk]
}

// NNZ returns the total nonzeros across blocks.
func (bt *BlockedTensor) NNZ() int { return bt.nnz }

// NumBlocks returns the count of non-empty blocks.
func (bt *BlockedTensor) NumBlocks() int {
	n := 0
	for _, b := range bt.Blocks {
		if b != nil {
			n++
		}
	}
	return n
}

// MemoryBytes sums the in-memory footprint of all block structures —
// the storage overhead of blocking (more fibers and slices are stored
// because fibers are split at block boundaries).
func (bt *BlockedTensor) MemoryBytes() int64 {
	var s int64
	for _, b := range bt.Blocks {
		if b != nil {
			s += b.MemoryBytes()
		}
	}
	return s
}

// FactorAccessCounts returns how many times each factor matrix is
// streamed in full under this grid (Sec. V-A): A is touched NB·NC
// times, B NA·NC times, C NA·NB times.
func (bt *BlockedTensor) FactorAccessCounts() [3]int {
	return [3]int{
		bt.Grid[1] * bt.Grid[2],
		bt.Grid[0] * bt.Grid[2],
		bt.Grid[0] * bt.Grid[1],
	}
}

// mbLayer runs all blocks of mode-1 layer bi sequentially. bs == 0
// selects the plain SPLATT per-block kernel; bs > 0 applies rank
// blocking inside each block (MB+RankB, Figure 3b).
//
// Two blocks in different mode-1 layers write disjoint output rows, so
// layers are the natural race-free parallel unit (the same argument
// SPLATT uses for slices); Executor.runMB shares layers across workers.
//
//spblock:hotpath
func mbLayer(bt *BlockedTensor, b, c, out *la.Matrix, kern *kernel.Strip, bs, bi int, accum []float64) {
	for bj := 0; bj < bt.Grid[1]; bj++ {
		for bk := 0; bk < bt.Grid[2]; bk++ {
			blk := bt.BlockAt(bi, bj, bk)
			if blk == nil {
				continue
			}
			if bs == 0 {
				splattRange(blk, b, c, out, accum, 0, blk.NumSlices())
			} else {
				rankBRange(blk, b, c, out, kern, bs, 0, blk.NumSlices())
			}
		}
	}
}
