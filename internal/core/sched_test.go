package core

import (
	"math/rand"
	"testing"
	"time"

	"spblock/internal/gen"
	"spblock/internal/la"
	"spblock/internal/sched"
	"spblock/internal/tensor"
)

// schedTestTensors returns the equivalence corpus: a mostly-uniform
// Poisson tensor and a clustered tensor whose dense sub-boxes skew the
// per-slice nonzero counts — the case work stealing exists for.
func schedTestTensors(t *testing.T) map[string]*tensor.COO {
	t.Helper()
	pois, err := gen.Poisson(gen.PoissonParams{Dims: tensor.Dims{40, 30, 25}, Events: 6000}, 11)
	if err != nil {
		t.Fatal(err)
	}
	clus, err := gen.Clustered(gen.ClusteredParams{
		Dims: tensor.Dims{40, 30, 25}, NNZ: 6000, Clusters: 3, ClusterFrac: 0.9,
	}, 12)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*tensor.COO{"poisson": pois, "clustered": clus}
}

func bitIdentical(a, b *la.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if v != b.Data[i] {
			return false
		}
	}
	return true
}

// TestSchedulerEquivalence is the cross-scheduler matrix: for every
// tree-based method, the stealing and adaptive schedulers must produce
// outputs bit-identical to the static scheduler. This is not a
// tolerance check — distinct slices/layers own disjoint output rows
// and each unit's computation is self-contained, so reassigning a
// chunk to a different worker must not move a single bit. Run under
// -race in CI, this also exercises the steal claim protocol against
// the kernel bodies.
func TestSchedulerEquivalence(t *testing.T) {
	const rank = 19 // deliberately not a multiple of any kernel width
	methods := []Plan{
		{Method: MethodSPLATT},
		{Method: MethodRankB, RankBlockCols: 8},
		{Method: MethodMB, Grid: [3]int{6, 2, 2}},
		{Method: MethodMBRankB, Grid: [3]int{6, 2, 2}, RankBlockCols: 8},
	}
	for name, x := range schedTestTensors(t) {
		rng := rand.New(rand.NewSource(99))
		b := randMatrix(rng, x.Dims[1], rank)
		c := randMatrix(rng, x.Dims[2], rank)
		for _, base := range methods {
			base.Workers = 4
			ref := la.NewMatrix(x.Dims[0], rank)
			refExec, err := NewExecutor(x, base)
			if err != nil {
				t.Fatal(err)
			}
			if err := refExec.Run(b, c, ref); err != nil {
				t.Fatal(err)
			}
			for _, pol := range []sched.Policy{sched.PolicySteal, sched.PolicyAdaptive} {
				plan := base
				plan.Sched = pol
				e, err := NewExecutor(x, plan)
				if err != nil {
					t.Fatal(err)
				}
				got := la.NewMatrix(x.Dims[0], rank)
				for run := 0; run < 4; run++ {
					if err := e.Run(b, c, got); err != nil {
						t.Fatal(err)
					}
					if !bitIdentical(got, ref) {
						t.Fatalf("%s %v run %d: output differs from static", name, plan, run)
					}
				}
			}
		}
	}
}

// TestAdaptivePromotionBitIdentical drives the adaptive executor
// through its actual promotion transition (forcing the queue flip the
// controller would perform) and checks the run after promotion is
// still bit-identical — the equivalence matrix above may never promote
// on a fast test tensor, so the transition itself is pinned here.
func TestAdaptivePromotionBitIdentical(t *testing.T) {
	x := schedTestTensors(t)["clustered"]
	const rank = 16
	rng := rand.New(rand.NewSource(5))
	b := randMatrix(rng, x.Dims[1], rank)
	c := randMatrix(rng, x.Dims[2], rank)
	ref := la.NewMatrix(x.Dims[0], rank)
	if err := MTTKRP(x, b, c, ref, Plan{Method: MethodSPLATT, Workers: 1}); err != nil {
		t.Fatal(err)
	}

	e, err := NewExecutor(x, Plan{Method: MethodSPLATT, Workers: 4, Sched: sched.PolicyAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	if e.ctrl == nil {
		t.Fatal("adaptive plan built no controller")
	}
	if e.Sched() != sched.AdaptiveStaticName {
		t.Fatalf("pre-promotion sched = %q", e.Sched())
	}
	got := la.NewMatrix(x.Dims[0], rank)
	if err := e.Run(b, c, got); err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(got, ref) {
		t.Fatal("pre-promotion output differs")
	}

	// Promote the way observe() would: flip the prebuilt layout.
	e.ws.q.SetStealing(true)
	e.met.SetSched(sched.AdaptiveStealName)
	for run := 0; run < 3; run++ {
		if err := e.Run(b, c, got); err != nil {
			t.Fatal(err)
		}
		if !bitIdentical(got, ref) {
			t.Fatalf("post-promotion run %d differs", run)
		}
	}
	if e.Sched() != sched.AdaptiveStealName {
		t.Fatalf("post-promotion sched = %q", e.Sched())
	}
}

// TestAdaptiveRatchetSurvivesSetWorkers is the regression test for the
// stale-baseline bug: a mid-life SetWorkers re-sizes the per-worker
// metrics buckets, and before the fix the adaptive controller's window
// baseline kept its old length — WindowImbalance then reported 1
// ("balanced") on every subsequent run and the static→stealing ratchet
// could never fire again. The ensure path now re-sizes the baseline
// alongside the buckets, so a sustained skew observed *after* the
// worker-count change must still promote.
func TestAdaptiveRatchetSurvivesSetWorkers(t *testing.T) {
	x := schedTestTensors(t)["clustered"]
	const rank = 16
	rng := rand.New(rand.NewSource(21))
	b := randMatrix(rng, x.Dims[1], rank)
	c := randMatrix(rng, x.Dims[2], rank)
	ref := la.NewMatrix(x.Dims[0], rank)
	if err := MTTKRP(x, b, c, ref, Plan{Method: MethodSPLATT, Workers: 1}); err != nil {
		t.Fatal(err)
	}

	e, err := NewExecutor(x, Plan{Method: MethodSPLATT, Workers: 4, Sched: sched.PolicyAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	got := la.NewMatrix(x.Dims[0], rank)
	if err := e.Run(b, c, got); err != nil { // sizes buckets and baseline at 4
		t.Fatal(err)
	}
	if err := e.SetWorkers(3); err != nil {
		t.Fatal(err)
	}
	if e.ctrl == nil {
		t.Fatal("SetWorkers dropped the adaptive controller")
	}
	if e.Sched() != sched.AdaptiveStaticName {
		t.Fatalf("post-resize sched = %q, want %q", e.Sched(), sched.AdaptiveStaticName)
	}
	// Drive the ratchet with synthetic skew: worker 0's bucket gets a
	// large busy-time delta before each run, so every post-resize window
	// observes an imbalance near the new worker count. With the default
	// thresholds (promote above 1.25 sustained for 3 windows) the fourth
	// run must be promoted; a stale 4-long baseline against the resized
	// buckets would observe 1 forever and never promote.
	for run := 0; run < 8 && e.Sched() != sched.AdaptiveStealName; run++ {
		if err := e.Run(b, c, got); err != nil {
			t.Fatal(err)
		}
		if !bitIdentical(got, ref) {
			t.Fatalf("post-resize run %d: output differs", run)
		}
		e.met.AddWorkerTime(0, 500*time.Millisecond)
	}
	if e.Sched() != sched.AdaptiveStealName {
		t.Fatalf("ratchet never fired after SetWorkers: sched = %q", e.Sched())
	}
	if !e.ws.q.Stealing() {
		t.Fatal("promoted executor's queue is not stealing")
	}
	// And the promoted, resized executor still computes the same bits.
	if err := e.Run(b, c, got); err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(got, ref) {
		t.Fatal("post-promotion output differs")
	}
}

// TestSetWorkersKeepsPromotion: an already-promoted adaptive executor
// stays on the stealing layout across a resize — demoting it would
// discard the controller's ratchet state.
func TestSetWorkersKeepsPromotion(t *testing.T) {
	x := schedTestTensors(t)["clustered"]
	e, err := NewExecutor(x, Plan{Method: MethodSPLATT, Workers: 4, Sched: sched.PolicyAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	const rank = 8
	rng := rand.New(rand.NewSource(22))
	b := randMatrix(rng, x.Dims[1], rank)
	c := randMatrix(rng, x.Dims[2], rank)
	out := la.NewMatrix(x.Dims[0], rank)
	if err := e.Run(b, c, out); err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 8 && e.Sched() != sched.AdaptiveStealName; run++ {
		e.met.AddWorkerTime(0, 500*time.Millisecond)
		if err := e.Run(b, c, out); err != nil {
			t.Fatal(err)
		}
	}
	if e.Sched() != sched.AdaptiveStealName {
		t.Fatalf("ratchet never fired: sched = %q", e.Sched())
	}
	if err := e.SetWorkers(2); err != nil {
		t.Fatal(err)
	}
	if e.Sched() != sched.AdaptiveStealName {
		t.Fatalf("promotion lost across SetWorkers: sched = %q", e.Sched())
	}
	if !e.ws.q.Stealing() {
		t.Fatal("resized queue not stealing after prior promotion")
	}
	if err := e.Run(b, c, out); err != nil {
		t.Fatal(err)
	}
	if e.met.Workers() != 2 {
		t.Fatalf("metrics buckets = %d, want 2", e.met.Workers())
	}
}

// TestSetWorkersValidatesAndResizes: negative counts are rejected, and
// a resize rebuilds the runner set and metrics buckets.
func TestSetWorkersValidatesAndResizes(t *testing.T) {
	x := schedTestTensors(t)["poisson"]
	e, err := NewExecutor(x, Plan{Method: MethodSPLATT, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetWorkers(-1); err == nil {
		t.Fatal("SetWorkers(-1) accepted")
	}
	const rank = 8
	rng := rand.New(rand.NewSource(23))
	b := randMatrix(rng, x.Dims[1], rank)
	c := randMatrix(rng, x.Dims[2], rank)
	ref := la.NewMatrix(x.Dims[0], rank)
	if err := MTTKRP(x, b, c, ref, Plan{Method: MethodSPLATT, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	out := la.NewMatrix(x.Dims[0], rank)
	for _, w := range []int{2, 1, 3} {
		if err := e.SetWorkers(w); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(b, c, out); err != nil {
			t.Fatal(err)
		}
		if !bitIdentical(out, ref) {
			t.Fatalf("workers=%d: output differs", w)
		}
	}
}

// TestCOONeverSteals: COO's privatised reduction is order-sensitive,
// so even an explicit steal/adaptive plan must resolve to the static
// layout (and stay bit-identical to the static plan's output).
func TestCOONeverSteals(t *testing.T) {
	x := schedTestTensors(t)["clustered"]
	const rank = 8
	rng := rand.New(rand.NewSource(6))
	b := randMatrix(rng, x.Dims[1], rank)
	c := randMatrix(rng, x.Dims[2], rank)
	ref := la.NewMatrix(x.Dims[0], rank)
	if err := MTTKRP(x, b, c, ref, Plan{Method: MethodCOO, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	for _, pol := range []sched.Policy{sched.PolicySteal, sched.PolicyAdaptive} {
		e, err := NewExecutor(x, Plan{Method: MethodCOO, Workers: 4, Sched: pol})
		if err != nil {
			t.Fatal(err)
		}
		if e.ws.q.Stealing() || e.ws.q.CanSteal() || e.ctrl != nil {
			t.Fatalf("%v: COO executor built a stealing path", pol)
		}
		if e.Sched() != sched.StaticName {
			t.Fatalf("%v: COO resolved sched = %q, want static", pol, e.Sched())
		}
		got := la.NewMatrix(x.Dims[0], rank)
		if err := e.Run(b, c, got); err != nil {
			t.Fatal(err)
		}
		if !bitIdentical(got, ref) {
			t.Fatalf("%v: COO output differs from static plan", pol)
		}
	}
}

// TestInvalidSchedRejected: an out-of-range policy is a caller bug.
func TestInvalidSchedRejected(t *testing.T) {
	x := tensor.NewCOO(tensor.Dims{4, 4, 4}, 0)
	x.Append(1, 1, 1, 1)
	if _, err := NewExecutor(x, Plan{Method: MethodSPLATT, Sched: sched.Policy(9)}); err == nil {
		t.Fatal("NewExecutor accepted an unknown sched policy")
	}
}

// TestPlanStringSchedSuffix: the plan string is the BENCH baseline
// comparison key, so static plans must render exactly as before and
// non-static plans must be distinguishable.
func TestPlanStringSchedSuffix(t *testing.T) {
	p := Plan{Method: MethodSPLATT}
	if got := p.String(); got != "SPLATT" {
		t.Fatalf("static plan string = %q, want unchanged %q", got, "SPLATT")
	}
	p.Sched = sched.PolicySteal
	if got := p.String(); got != "SPLATT sched=steal" {
		t.Fatalf("steal plan string = %q", got)
	}
	p.Sched = sched.PolicyAdaptive
	if got := p.String(); got != "SPLATT sched=adaptive" {
		t.Fatalf("adaptive plan string = %q", got)
	}
}
