package core

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"spblock/internal/kernel"
	"spblock/internal/la"
	"spblock/internal/tensor"
)

func TestMBModeOrder(t *testing.T) {
	cases := []struct {
		dims tensor.Dims
		want [3]int
	}{
		// Longest first: Poisson2-like shape blocks mode-2 (j) first.
		{tensor.Dims{2000, 16000, 2000}, [3]int{1, 2, 0}},
		// All equal: access-volume order mode-2, mode-3, mode-1.
		{tensor.Dims{100, 100, 100}, [3]int{1, 2, 0}},
		// Netflix-like: huge mode-1 first, then mode-2, then tiny mode-3.
		{tensor.Dims{480000, 18000, 80}, [3]int{0, 1, 2}},
		// Mode-3 longest (NELL2-like).
		{tensor.Dims{12000, 9000, 29000}, [3]int{2, 0, 1}},
	}
	for _, tc := range cases {
		if got := mbModeOrder(tc.dims); got != tc.want {
			t.Fatalf("dims %v: order = %v, want %v", tc.dims, got, tc.want)
		}
	}
}

// convexCost builds a synthetic cost with a single optimum, so the
// search procedures can be verified deterministically.
func convexRankCost(optBS int, rank int) CostFunc {
	return func(p Plan) float64 {
		bs := p.RankBlockCols
		if bs == 0 {
			bs = rank
		}
		d := float64(bs - optBS)
		return 100 + d*d
	}
}

func TestSearchRankBFindsSweetSpot(t *testing.T) {
	// Optimum at 48 columns: search must walk the registry ladder
	// (8, 16, 24, 32, 40, 48, 56) and stop at the first worsening rung.
	var trials []Trial
	best := searchRankB(Plan{Method: MethodRankB}, 512, convexRankCost(48, 512), 0.001, &trials)
	if best.RankBlockCols != 48 {
		t.Fatalf("best bs = %d, want 48 (trials: %v)", best.RankBlockCols, trials)
	}
	// Stopping rule: must not have probed far past the optimum — the
	// baseline plus the seven rungs up to the first worsening one.
	if len(trials) > 8 {
		t.Fatalf("search did not stop after worsening: %d trials", len(trials))
	}
}

func TestSearchRankBReachesFullRank(t *testing.T) {
	// Strictly decreasing cost up to bs == rank: the ladder must reach
	// the rank itself (the rung the old `bs < rank` loop skipped).
	rank := 64
	cost := func(p Plan) float64 {
		if p.RankBlockCols == 0 {
			return 100
		}
		return 100 - float64(p.RankBlockCols)
	}
	var trials []Trial
	best := searchRankB(Plan{Method: MethodRankB}, rank, cost, 0.001, &trials)
	if best.RankBlockCols != rank {
		t.Fatalf("best bs = %d, want %d (full-rank rung not evaluated)", best.RankBlockCols, rank)
	}
}

func TestSearchRankBKeepsBaselineWhenBlockingHurts(t *testing.T) {
	// Monotonically worse with more blocks (Poisson3's regime in
	// Figure 4): the unblocked plan must win.
	cost := func(p Plan) float64 {
		if p.RankBlockCols == 0 {
			return 1.0
		}
		return 2.0 + 1/float64(p.RankBlockCols)
	}
	var trials []Trial
	best := searchRankB(Plan{Method: MethodRankB}, 256, cost, 0.01, &trials)
	if best.RankBlockCols != 0 {
		t.Fatalf("best bs = %d, want 0 (no blocking)", best.RankBlockCols)
	}
}

func TestSearchMBFollowsModeOrder(t *testing.T) {
	// Cost optimal at grid {1, 8, 2} for a mode-2-dominant shape.
	dims := tensor.Dims{100, 1000, 100}
	opt := [3]int{1, 8, 2}
	cost := func(p Plan) float64 {
		var d float64
		for m := 0; m < 3; m++ {
			diff := math.Log2(float64(p.Grid[m])) - math.Log2(float64(opt[m]))
			d += diff * diff
		}
		return 10 + d
	}
	var trials []Trial
	best := searchMB(Plan{Method: MethodMB}, dims, cost, 0.0001, &trials)
	if best.Grid != opt {
		t.Fatalf("grid = %v, want %v", best.Grid, opt)
	}
}

func TestSearchMBStaysUnblockedWhenBlockingHurts(t *testing.T) {
	dims := tensor.Dims{64, 64, 64}
	cost := func(p Plan) float64 {
		return float64(p.Grid[0] * p.Grid[1] * p.Grid[2]) // any blocking hurts
	}
	var trials []Trial
	best := searchMB(Plan{Method: MethodMB}, dims, cost, 0.01, &trials)
	if best.Grid != [3]int{1, 1, 1} {
		t.Fatalf("grid = %v, want 1x1x1", best.Grid)
	}
}

func TestSearchMBRespectsModeLengths(t *testing.T) {
	// A mode of length 3 can never get more than 3 blocks (doubling
	// stops at the mode length).
	dims := tensor.Dims{3, 3, 3}
	cost := func(p Plan) float64 {
		return 1 / float64(p.Grid[0]*p.Grid[1]*p.Grid[2]) // more blocks always better
	}
	var trials []Trial
	best := searchMB(Plan{Method: MethodMB}, dims, cost, 0.0001, &trials)
	for m := 0; m < 3; m++ {
		if best.Grid[m] > 3 {
			t.Fatalf("grid[%d] = %d exceeds mode length", m, best.Grid[m])
		}
	}
	if best.Grid != [3]int{2, 2, 2} {
		t.Fatalf("grid = %v, want 2x2x2 (doubling stops at mode length)", best.Grid)
	}
}

func TestAutotuneWithCostCombined(t *testing.T) {
	// MB+RankB: grid tuned first, then rank strips on the frozen grid.
	dims := tensor.Dims{64, 512, 64}
	optGrid := [3]int{1, 4, 1}
	optBS := 32
	cost := func(p Plan) float64 {
		var d float64
		for m := 0; m < 3; m++ {
			diff := math.Log2(float64(p.Grid[m])) - math.Log2(float64(optGrid[m]))
			d += diff * diff
		}
		bs := p.RankBlockCols
		if bs == 0 {
			bs = 256
		}
		d += math.Abs(float64(bs-optBS)) / 16
		return 10 + d
	}
	plan, trials, err := AutotuneWithCost(dims, 256, MethodMBRankB, Plan{Method: MethodMBRankB}, cost, AutotuneOptions{Tolerance: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Grid != optGrid {
		t.Fatalf("grid = %v, want %v", plan.Grid, optGrid)
	}
	if plan.RankBlockCols != optBS {
		t.Fatalf("bs = %d, want %d", plan.RankBlockCols, optBS)
	}
	if plan.Method != MethodMBRankB {
		t.Fatalf("method = %v", plan.Method)
	}
	if len(trials) == 0 {
		t.Fatal("no trial log")
	}
}

func TestAutotuneEndToEnd(t *testing.T) {
	// Real wall-clock autotune on a small tensor: we only assert
	// structural validity of the outcome and that the tuned plan still
	// computes correct results (timing noise makes the chosen sizes
	// machine-dependent by design).
	rng := rand.New(rand.NewSource(8))
	x := randCOO(rng, tensor.Dims{32, 48, 24}, 2000)
	rank := 32
	for _, method := range []Method{MethodRankB, MethodMB, MethodMBRankB} {
		plan, trials, err := Autotune(x, rank, method, AutotuneOptions{Trials: 1, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if plan.Method != method {
			t.Fatalf("method mangled: %v -> %v", method, plan.Method)
		}
		for m := 0; m < 3; m++ {
			if plan.Grid[m] < 1 || plan.Grid[m] > x.Dims[m] {
				t.Fatalf("%v: grid %v out of range", method, plan.Grid)
			}
		}
		if plan.RankBlockCols < 0 || plan.RankBlockCols > rank {
			t.Fatalf("%v: bs = %d out of range", method, plan.RankBlockCols)
		}
		if bs := plan.RankBlockCols; bs != 0 && !slices.Contains(kernel.StripCandidates(rank), bs) {
			t.Fatalf("%v: bs = %d not a registry strip candidate", method, bs)
		}
		if method != MethodSPLATT && len(trials) == 0 {
			t.Fatalf("%v: empty trial log", method)
		}
		// Tuned plan must still be correct.
		b := randMatrix(rng, x.Dims[1], rank)
		c := randMatrix(rng, x.Dims[2], rank)
		want := la.NewMatrix(x.Dims[0], rank)
		if err := Reference(x, b, c, want); err != nil {
			t.Fatal(err)
		}
		got := la.NewMatrix(x.Dims[0], rank)
		if err := MTTKRP(x, b, c, got, plan); err != nil {
			t.Fatal(err)
		}
		if d := got.MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("%v: tuned plan wrong by %v", method, d)
		}
	}
}

func TestAutotuneTrivialMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randCOO(rng, tensor.Dims{8, 8, 8}, 50)
	for _, m := range []Method{MethodCOO, MethodSPLATT} {
		plan, trials, err := Autotune(x, 16, m, AutotuneOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(trials) != 0 {
			t.Fatalf("%v: unexpected trials", m)
		}
		if plan.Method != m {
			t.Fatalf("%v: plan method %v", m, plan.Method)
		}
	}
}

func TestAutotuneErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randCOO(rng, tensor.Dims{8, 8, 8}, 50)
	if _, _, err := Autotune(x, 0, MethodMB, AutotuneOptions{}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	bad := tensor.NewCOO(tensor.Dims{2, 2, 2}, 0)
	bad.Append(5, 0, 0, 1)
	if _, _, err := Autotune(bad, 16, MethodMB, AutotuneOptions{}); err == nil {
		t.Fatal("invalid tensor accepted")
	}
}
