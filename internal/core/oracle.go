package core

import (
	"fmt"

	"spblock/internal/la"
	"spblock/internal/tensor"
)

// Reference computes the mode-1 MTTKRP by explicitly materialising the
// Khatri-Rao product B ⊙ C and multiplying the matricised tensor
// against it — the textbook definition A = X₍₁₎·(B ⊙ C) of Sec. III-B.
// It allocates a dense (J·K)×R matrix and exists purely as a
// correctness oracle for the real kernels; the paper notes this is
// "prohibitively expensive" at scale, so it refuses shapes where the
// product would exceed ~64 M entries.
func Reference(t *tensor.COO, b, c, out *la.Matrix) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if err := validateOperands(t.Dims, b, c, out); err != nil {
		return err
	}
	if float64(b.Rows)*float64(c.Rows)*float64(b.Cols) > 64e6 {
		return fmt.Errorf("core: Reference refuses %dx%d Khatri-Rao product (oracle only)",
			b.Rows*c.Rows, b.Cols)
	}
	kr := la.KhatriRao(b, c)
	out.Zero()
	kDim := c.Rows
	for p := 0; p < t.NNZ(); p++ {
		v := t.Val[p]
		krRow := kr.Row(int(t.J[p])*kDim + int(t.K[p]))
		orow := out.Row(int(t.I[p]))
		for q := range orow {
			orow[q] += v * krRow[q]
		}
	}
	return nil
}
