package core

import (
	"sync"
	"time"

	"spblock/internal/analysis/check"
	"spblock/internal/kernel"
	"spblock/internal/la"
	"spblock/internal/metrics"
	"spblock/internal/sched"
)

// workspace owns every buffer an Executor's kernels touch besides the
// caller's operands, so repeated Run calls perform no steady-state heap
// allocations. CP-ALS invokes MTTKRP 10-1000s of times per
// decomposition (Sec. I); allocating the packed rank strips, per-worker
// fiber accumulators and COO privatised outputs on every call both
// thrashes the allocator and adds GC noise to every measurement the
// autotuner takes.
//
// The worker-count-dependent state (the sched.Queue layouts and the
// worker closures themselves) is built once in NewExecutor; the
// rank-dependent buffers are sized lazily on the first Run and rebuilt
// only when the rank changes. Because the workspace is mutated by Run,
// one Executor must not Run concurrently with itself — use one Executor
// per goroutine (they can share the same tensor structures via separate
// NewExecutor calls, or separate modes of a MultiModeExecutor).
//
//spblock:workspace
type workspace struct {
	// rank the rank-dependent buffers are currently sized for (0 =
	// never sized).
	rank int

	// runners are the pre-built worker bodies, one per parallel worker.
	// Empty when the plan resolves to sequential execution (a `go`
	// statement on a fresh closure allocates; pre-building the closures
	// keeps the parallel launch allocation-free too).
	runners []func()
	wg      sync.WaitGroup

	// Operand state of the in-flight Run (or strip of a Run), published
	// before the workers launch and joined before it changes.
	b, c, out *la.Matrix
	// bs is the rank-block width handed to the blocked kernels for the
	// current strip (0 selects the plain SPLATT per-block kernel).
	bs int

	// q distributes the executor's work units — CSF slice ranges
	// (SPLATT / RankB), mode-1 block layers (MB / MB+RankB), nonzero
	// ranges (COO) — to the prebuilt runners under the plan's
	// scheduling policy. Its layouts depend only on the preprocessed
	// structure and the worker count, so they are built once in
	// initRunners (see internal/sched for the claim protocol).
	q sched.Queue

	// accums holds one fiber-accumulator array per worker (SPLATT and
	// the per-block kernel of MB), each sized to the current rank.
	accums [][]float64
	// privates holds one privatised output copy per COO worker.
	privates []*la.Matrix

	// Packed rank-strip buffers (Sec. V-B "stacked strips") and the
	// reusable view headers handed to kernels for both the packed and
	// the unpacked (ablation) strip drivers.
	bPack, cPack, oPack *la.Matrix
	bView, cView, oView la.Matrix

	// kern is the register-block kernel variant for the effective strip
	// width, resolved once per rank change (RankB / MB+RankB only). The
	// hot paths dispatch through these cached function pointers.
	kern kernel.Strip
}

// ensure sizes the rank-dependent buffers for rank r. No-op when the
// rank is unchanged, which is the steady state of a decomposition.
//
//spblock:coldpath
func (e *Executor) ensure(r int) {
	ws := &e.ws
	if ws.rank == r {
		return
	}
	ws.rank = r
	// The adaptive window baseline must track the worker buckets: after
	// a mid-life SetWorkers the buckets were re-sized, and a baseline
	// whose length no longer matches makes WindowImbalance report 1
	// ("balanced") forever — the promotion ratchet would silently die.
	// SizeWorkers zeroed the fresh buckets, so a zero baseline is exact.
	if e.ctrl != nil && len(e.prevNS) != e.met.Workers() {
		e.prevNS = make([]int64, e.met.Workers())
	}
	nw := len(ws.runners)
	switch e.plan.Method {
	case MethodCOO:
		ws.privates = ws.privates[:0]
		for w := 0; w < nw; w++ {
			ws.privates = append(ws.privates, la.NewMatrix(e.dims[0], r))
		}
	case MethodSPLATT, MethodMB, MethodMBRankB:
		ws.accums = ws.accums[:0]
		for w := 0; w < max(nw, 1); w++ {
			ws.accums = append(ws.accums, make([]float64, r))
		}
	}
	if e.plan.Method == MethodRankB || e.plan.Method == MethodMBRankB {
		if check.Enabled {
			check.Must("core.ensure", check.StripLadder(r, e.rankBlock(r)))
		}
		bs := e.rankBlock(r)
		ws.kern = kernel.Resolve(bs)
		e.met.SetKernel(ws.kern.Name)
		if bs < r && !e.plan.NoStripPacking {
			ws.bPack = la.NewMatrix(e.dims[1], bs)
			ws.cPack = la.NewMatrix(e.dims[2], bs)
			ws.oPack = la.NewMatrix(e.dims[0], bs)
		}
	}
	e.met.SetPerRun(e.perRunMetrics(r))
}

// perRunMetrics derives the per-Run counter deltas from the
// preprocessed structure at rank r — a pure function of (structure,
// rank, strip width), recomputed only on the amortised resize path so
// EndRun's hot path is constant-count integer adds.
//
//spblock:coldpath
func (e *Executor) perRunMetrics(r int) metrics.PerRun {
	var nnz, fibers, blocks int64
	switch {
	case e.coo != nil:
		nnz = int64(e.coo.NNZ())
	case e.csf != nil:
		nnz = int64(e.csf.NNZ())
		fibers = int64(e.csf.NumFibers())
	case e.blocked != nil:
		nnz = int64(e.blocked.NNZ())
		for _, blk := range e.blocked.Blocks {
			if blk != nil {
				fibers += int64(blk.NumFibers())
				blocks++
			}
		}
	}
	strips := 0
	if bs := e.rankBlock(r); bs < r {
		strips = (r + bs - 1) / bs
	}
	walks := int64(max(strips, 1))
	return metrics.PerRun{
		NNZ:      nnz * walks,
		Fibers:   fibers * walks,
		Blocks:   blocks * walks,
		Strips:   int64(strips),
		BytesEst: metrics.EqBytes(nnz, fibers, r, int(walks)),
	}
}

// publish records the operands the pre-built worker closures read.
//
//spblock:hotpath
func (ws *workspace) publish(b, c, out *la.Matrix, bs int) {
	ws.b, ws.c, ws.out, ws.bs = b, c, out, bs
}

// launch runs every worker body and waits for them. The closures were
// built in NewExecutor and goroutine descriptors are recycled by the
// runtime, so a steady-state launch does not allocate.
//
//spblock:hotpath
func (ws *workspace) launch() {
	ws.q.Reset()
	ws.wg.Add(len(ws.runners))
	for _, fn := range ws.runners {
		go fn()
	}
	ws.wg.Wait()
}

// initRunners builds the worker closures for the executor's method and
// the sched.Queue layouts they claim work from. Called once from
// NewExecutor, after the tensor structures exist. Runners are only
// built when the plan resolves to >1 effective workers; otherwise Run
// takes the inline sequential paths. All share/chunk computation lives
// in internal/sched — this function only defines what a work unit *is*
// per method and what its weight function looks like.
//
//spblock:coldpath
func (e *Executor) initRunners() {
	ws := &e.ws
	workers := e.plan.workers()
	switch e.plan.Method {
	case MethodCOO:
		// COO stays static under every policy: the privatised outputs
		// are reduced in worker order (runCOO), so the chunk→worker
		// assignment is part of the floating-point result. No stealing
		// layout is built, which makes promotion a guaranteed no-op.
		chunks := sched.UniformChunks(e.coo.NNZ(), workers)
		if chunks == nil {
			return
		}
		ws.q.InitStatic(chunks)
		for w := range chunks {
			w := w
			ws.runners = append(ws.runners, func() {
				defer ws.wg.Done()
				t0 := time.Now()
				priv := ws.privates[w]
				priv.Zero()
				for {
					lo, hi, _, ok := ws.q.Next(w)
					if !ok {
						break
					}
					cooRange(e.coo, ws.b, ws.c, priv, lo, hi)
				}
				e.met.AddWorkerTime(w, time.Since(t0))
			})
		}
	case MethodSPLATT:
		nw := e.initSliceQueue(workers)
		for w := 0; w < nw; w++ {
			w := w
			ws.runners = append(ws.runners, func() {
				defer ws.wg.Done()
				t0 := time.Now()
				for {
					lo, hi, stolen, ok := ws.q.Next(w)
					if !ok {
						break
					}
					if stolen {
						e.met.AddWorkerSteal(w)
					}
					splattRange(e.csf, ws.b, ws.c, ws.out, ws.accums[w][:ws.out.Cols], lo, hi)
				}
				e.met.AddWorkerTime(w, time.Since(t0))
			})
		}
	case MethodRankB:
		nw := e.initSliceQueue(workers)
		for w := 0; w < nw; w++ {
			w := w
			ws.runners = append(ws.runners, func() {
				defer ws.wg.Done()
				t0 := time.Now()
				for {
					lo, hi, stolen, ok := ws.q.Next(w)
					if !ok {
						break
					}
					if stolen {
						e.met.AddWorkerSteal(w)
					}
					rankBRange(e.csf, ws.b, ws.c, ws.out, &ws.kern, ws.bs, lo, hi)
				}
				e.met.AddWorkerTime(w, time.Since(t0))
			})
		}
	case MethodMB, MethodMBRankB:
		layers := e.blocked.Grid[0]
		if workers > layers {
			workers = layers
		}
		if workers <= 1 {
			return
		}
		// The static layout is the historical shared layer counter:
		// every worker drains one queue of single-layer units in claim
		// order. The stealing layout regroups layers into nnz-balanced
		// chunks with per-worker segments, so a worker stuck on a dense
		// layer no longer serialises the tail of the queue behind it.
		ws.q.InitStaticShared(sched.UnitRanges(layers))
		if e.plan.Sched != sched.PolicyStatic {
			cum := layerCum(e.blocked)
			ws.q.InitStealing(sched.StealChunks(layers, workers, cum), workers)
		}
		for w := 0; w < workers; w++ {
			w := w
			ws.runners = append(ws.runners, func() {
				defer ws.wg.Done()
				t0 := time.Now()
				for {
					lo, hi, stolen, ok := ws.q.Next(w)
					if !ok {
						break
					}
					if stolen {
						e.met.AddWorkerSteal(w)
					}
					for bi := lo; bi < hi; bi++ {
						mbLayer(e.blocked, ws.b, ws.c, ws.out, &ws.kern, ws.bs, bi, ws.accums[w][:ws.out.Cols])
					}
				}
				e.met.AddWorkerTime(w, time.Since(t0))
			})
		}
	}
}

// initSliceQueue builds the CSF slice-range queue shared by the SPLATT
// and RankB runners: nnz-weighted static shares, plus the finer
// stealing chunk list when the plan's policy can promote. Returns the
// worker count the partition supports (0 means run sequentially).
//
//spblock:coldpath
func (e *Executor) initSliceQueue(workers int) int {
	n := e.csf.NumSlices()
	cum := func(i int) int64 { return int64(e.csf.FiberPtr[e.csf.SlicePtr[i+1]]) }
	shares := sched.Shares(n, workers, cum)
	if len(shares) <= 1 {
		return 0
	}
	e.ws.q.InitStatic(shares)
	if e.plan.Sched != sched.PolicyStatic {
		e.ws.q.InitStealing(sched.StealChunks(n, len(shares), cum), len(shares))
	}
	return len(shares)
}

// layerCum returns the cumulative-nonzero weight function over the
// blocked tensor's mode-1 layers, for nnz-balanced steal chunks.
//
//spblock:coldpath
func layerCum(bt *BlockedTensor) func(int) int64 {
	prefix := make([]int64, bt.Grid[0])
	var total int64
	for bi := 0; bi < bt.Grid[0]; bi++ {
		for bj := 0; bj < bt.Grid[1]; bj++ {
			for bk := 0; bk < bt.Grid[2]; bk++ {
				if blk := bt.Blocks[(bi*bt.Grid[1]+bj)*bt.Grid[2]+bk]; blk != nil {
					total += int64(blk.NNZ())
				}
			}
		}
		prefix[bi] = total
	}
	return func(i int) int64 { return prefix[i] }
}
