package core

import (
	"sync"
	"sync/atomic"
	"time"

	"spblock/internal/analysis/check"
	"spblock/internal/kernel"
	"spblock/internal/la"
	"spblock/internal/metrics"
)

// workspace owns every buffer an Executor's kernels touch besides the
// caller's operands, so repeated Run calls perform no steady-state heap
// allocations. CP-ALS invokes MTTKRP 10-1000s of times per
// decomposition (Sec. I); allocating the packed rank strips, per-worker
// fiber accumulators and COO privatised outputs on every call both
// thrashes the allocator and adds GC noise to every measurement the
// autotuner takes.
//
// The worker-count-dependent state (slice shares, nonzero ranges, the
// worker closures themselves) is built once in NewExecutor; the
// rank-dependent buffers are sized lazily on the first Run and rebuilt
// only when the rank changes. Because the workspace is mutated by Run,
// one Executor must not Run concurrently with itself — use one Executor
// per goroutine (they can share the same tensor structures via separate
// NewExecutor calls, or separate modes of a MultiModeExecutor).
//
//spblock:workspace
type workspace struct {
	// rank the rank-dependent buffers are currently sized for (0 =
	// never sized).
	rank int

	// runners are the pre-built worker bodies, one per parallel worker.
	// Empty when the plan resolves to sequential execution (a `go`
	// statement on a fresh closure allocates; pre-building the closures
	// keeps the parallel launch allocation-free too).
	runners []func()
	wg      sync.WaitGroup

	// Operand state of the in-flight Run (or strip of a Run), published
	// before the workers launch and joined before it changes.
	b, c, out *la.Matrix
	// bs is the rank-block width handed to the blocked kernels for the
	// current strip (0 selects the plain SPLATT per-block kernel).
	bs int
	// nextLayer is the MB work queue: workers claim mode-1 layers by
	// atomic increment (replacing a per-Run channel).
	nextLayer atomic.Int64

	// shares are the CSF slice ranges of each worker (SPLATT / RankB);
	// ranges are the nonzero ranges of each worker (COO). Both depend
	// only on the preprocessed structure and the worker count, so they
	// are computed once.
	shares [][2]int
	ranges [][2]int

	// accums holds one fiber-accumulator array per worker (SPLATT and
	// the per-block kernel of MB), each sized to the current rank.
	accums [][]float64
	// privates holds one privatised output copy per COO worker.
	privates []*la.Matrix

	// Packed rank-strip buffers (Sec. V-B "stacked strips") and the
	// reusable view headers handed to kernels for both the packed and
	// the unpacked (ablation) strip drivers.
	bPack, cPack, oPack *la.Matrix
	bView, cView, oView la.Matrix

	// kern is the register-block kernel variant for the effective strip
	// width, resolved once per rank change (RankB / MB+RankB only). The
	// hot paths dispatch through these cached function pointers.
	kern kernel.Strip
}

// ensure sizes the rank-dependent buffers for rank r. No-op when the
// rank is unchanged, which is the steady state of a decomposition.
//
//spblock:coldpath
func (e *Executor) ensure(r int) {
	ws := &e.ws
	if ws.rank == r {
		return
	}
	ws.rank = r
	nw := len(ws.runners)
	switch e.plan.Method {
	case MethodCOO:
		ws.privates = ws.privates[:0]
		for w := 0; w < nw; w++ {
			ws.privates = append(ws.privates, la.NewMatrix(e.dims[0], r))
		}
	case MethodSPLATT, MethodMB, MethodMBRankB:
		ws.accums = ws.accums[:0]
		for w := 0; w < max(nw, 1); w++ {
			ws.accums = append(ws.accums, make([]float64, r))
		}
	}
	if e.plan.Method == MethodRankB || e.plan.Method == MethodMBRankB {
		if check.Enabled {
			check.Must("core.ensure", check.StripLadder(r, e.rankBlock(r)))
		}
		bs := e.rankBlock(r)
		ws.kern = kernel.Resolve(bs)
		e.met.SetKernel(ws.kern.Name)
		if bs < r && !e.plan.NoStripPacking {
			ws.bPack = la.NewMatrix(e.dims[1], bs)
			ws.cPack = la.NewMatrix(e.dims[2], bs)
			ws.oPack = la.NewMatrix(e.dims[0], bs)
		}
	}
	e.met.SetPerRun(e.perRunMetrics(r))
}

// perRunMetrics derives the per-Run counter deltas from the
// preprocessed structure at rank r — a pure function of (structure,
// rank, strip width), recomputed only on the amortised resize path so
// EndRun's hot path is constant-count integer adds.
//
//spblock:coldpath
func (e *Executor) perRunMetrics(r int) metrics.PerRun {
	var nnz, fibers, blocks int64
	switch {
	case e.coo != nil:
		nnz = int64(e.coo.NNZ())
	case e.csf != nil:
		nnz = int64(e.csf.NNZ())
		fibers = int64(e.csf.NumFibers())
	case e.blocked != nil:
		nnz = int64(e.blocked.NNZ())
		for _, blk := range e.blocked.Blocks {
			if blk != nil {
				fibers += int64(blk.NumFibers())
				blocks++
			}
		}
	}
	strips := 0
	if bs := e.rankBlock(r); bs < r {
		strips = (r + bs - 1) / bs
	}
	walks := int64(max(strips, 1))
	return metrics.PerRun{
		NNZ:      nnz * walks,
		Fibers:   fibers * walks,
		Blocks:   blocks * walks,
		Strips:   int64(strips),
		BytesEst: metrics.EqBytes(nnz, fibers, r, int(walks)),
	}
}

// publish records the operands the pre-built worker closures read.
//
//spblock:hotpath
func (ws *workspace) publish(b, c, out *la.Matrix, bs int) {
	ws.b, ws.c, ws.out, ws.bs = b, c, out, bs
}

// launch runs every worker body and waits for them. The closures were
// built in NewExecutor and goroutine descriptors are recycled by the
// runtime, so a steady-state launch does not allocate.
//
//spblock:hotpath
func (ws *workspace) launch() {
	ws.wg.Add(len(ws.runners))
	for _, fn := range ws.runners {
		go fn()
	}
	ws.wg.Wait()
}

// initRunners builds the worker closures for the executor's method.
// Called once from NewExecutor, after the tensor structures exist.
// Runners are only built when the plan resolves to >1 effective
// workers; otherwise Run takes the inline sequential paths.
func (e *Executor) initRunners() {
	ws := &e.ws
	workers := e.plan.workers()
	switch e.plan.Method {
	case MethodCOO:
		ws.ranges = nnzRanges(e.coo.NNZ(), workers)
		for w := range ws.ranges {
			w := w
			ws.runners = append(ws.runners, func() {
				defer ws.wg.Done()
				t0 := time.Now()
				priv := ws.privates[w]
				priv.Zero()
				cooRange(e.coo, ws.b, ws.c, priv, ws.ranges[w][0], ws.ranges[w][1])
				e.met.AddWorkerTime(w, time.Since(t0))
			})
		}
	case MethodSPLATT:
		ws.shares = sliceShares(e.csf, workers)
		if len(ws.shares) <= 1 {
			ws.shares = nil
			return
		}
		for w := range ws.shares {
			w := w
			ws.runners = append(ws.runners, func() {
				defer ws.wg.Done()
				t0 := time.Now()
				sh := ws.shares[w]
				splattRange(e.csf, ws.b, ws.c, ws.out, ws.accums[w][:ws.out.Cols], sh[0], sh[1])
				e.met.AddWorkerTime(w, time.Since(t0))
			})
		}
	case MethodRankB:
		ws.shares = sliceShares(e.csf, workers)
		if len(ws.shares) <= 1 {
			ws.shares = nil
			return
		}
		for w := range ws.shares {
			w := w
			ws.runners = append(ws.runners, func() {
				defer ws.wg.Done()
				t0 := time.Now()
				sh := ws.shares[w]
				rankBRange(e.csf, ws.b, ws.c, ws.out, &ws.kern, ws.bs, sh[0], sh[1])
				e.met.AddWorkerTime(w, time.Since(t0))
			})
		}
	case MethodMB, MethodMBRankB:
		if workers > e.blocked.Grid[0] {
			workers = e.blocked.Grid[0]
		}
		if workers <= 1 {
			return
		}
		for w := 0; w < workers; w++ {
			w := w
			ws.runners = append(ws.runners, func() {
				defer ws.wg.Done()
				t0 := time.Now()
				grid0 := int64(e.blocked.Grid[0])
				for {
					bi := ws.nextLayer.Add(1) - 1
					if bi >= grid0 {
						e.met.AddWorkerTime(w, time.Since(t0))
						return
					}
					mbLayer(e.blocked, ws.b, ws.c, ws.out, &ws.kern, ws.bs, int(bi), ws.accums[w][:ws.out.Cols])
				}
			})
		}
	}
}

// nnzRanges splits n nonzeros into at most `workers` contiguous ranges
// (the COO privatisation shares). Returns nil when one worker suffices.
func nnzRanges(n, workers int) [][2]int {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return nil
	}
	chunk := (n + workers - 1) / workers
	rs := make([][2]int, 0, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		rs = append(rs, [2]int{lo, hi})
	}
	return rs
}
