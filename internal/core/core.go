// Package core implements the paper's contribution: the sparse MTTKRP
// kernel family built around the SPLATT storage format, the two
// blocking optimisations of Sec. V (multi-dimensional blocking and
// rank blocking with register blocking), and the Sec. V-C block-size
// heuristic.
//
// All kernels compute the mode-1 MTTKRP
//
//	A = X₍₁₎ · (B ⊙ C)
//
// for a third-order sparse tensor X ∈ R^{I×J×K} and factor matrices
// B ∈ R^{J×R}, C ∈ R^{K×R}, accumulating into an I×R output. Mode-2
// and mode-3 products are served by permuting the tensor's modes first
// (the three products are structurally identical — Sec. III-B).
package core

import (
	"fmt"
	"runtime"

	"spblock/internal/la"
	"spblock/internal/tensor"
)

// Method selects an MTTKRP kernel.
type Method int

const (
	// MethodCOO is the coordinate-format reference kernel (Sec. III-C1).
	MethodCOO Method = iota
	// MethodSPLATT is Algorithm 1, the baseline the paper optimises.
	MethodSPLATT
	// MethodMB applies multi-dimensional blocking (Sec. V-A).
	MethodMB
	// MethodRankB applies rank blocking with register blocking
	// (Sec. V-B, Algorithm 2).
	MethodRankB
	// MethodMBRankB combines both blockings (Figure 3b).
	MethodMBRankB
)

func (m Method) String() string {
	switch m {
	case MethodCOO:
		return "COO"
	case MethodSPLATT:
		return "SPLATT"
	case MethodMB:
		return "MB"
	case MethodRankB:
		return "RankB"
	case MethodMBRankB:
		return "MB+RankB"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// RegisterBlockWidth is NRegB of Algorithm 2: the number of columns
// processed with fully unrolled scalar accumulators. 16 float64 lanes
// are two 64-byte cache lines, the paper's choice ("a multiple of the
// cache line size").
const RegisterBlockWidth = 16

// Plan describes how to execute MTTKRP on one tensor.
type Plan struct {
	Method Method
	// Grid is the MB block grid (blocks along mode-1, mode-2, mode-3).
	// {1,1,1} means unblocked. Only used by MethodMB and MethodMBRankB.
	Grid [3]int
	// RankBlockCols is BS_RankB of Algorithm 2, the number of columns
	// per rank strip. 0 means "whole rank" (no rank blocking). Only
	// used by MethodRankB and MethodMBRankB.
	RankBlockCols int
	// NoStripPacking disables the Sec. V-B "stacked strips" factor
	// rearrangement and runs rank strips directly on the stride-R
	// matrices. This exists as an ablation knob: with power-of-two
	// ranks the unpacked strips conflict-miss pathologically, which is
	// precisely why the paper prescribes the rearrangement.
	NoStripPacking bool
	// Workers is the parallelism degree; 0 means GOMAXPROCS.
	Workers int
}

func (p Plan) String() string {
	s := p.Method.String()
	if p.Method == MethodMB || p.Method == MethodMBRankB {
		s += fmt.Sprintf(" grid=%dx%dx%d", p.Grid[0], p.Grid[1], p.Grid[2])
	}
	if p.Method == MethodRankB || p.Method == MethodMBRankB {
		s += fmt.Sprintf(" bs=%d", p.RankBlockCols)
	}
	return s
}

func (p Plan) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// validateOperands checks the factor shapes against the tensor dims.
func validateOperands(dims tensor.Dims, b, c, out *la.Matrix) error {
	if b.Cols != c.Cols || b.Cols != out.Cols {
		return fmt.Errorf("core: rank mismatch: B has %d cols, C %d, out %d",
			b.Cols, c.Cols, out.Cols)
	}
	if b.Cols == 0 {
		return fmt.Errorf("core: rank must be positive")
	}
	if out.Rows != dims[0] {
		return fmt.Errorf("core: out has %d rows, tensor mode-1 length is %d", out.Rows, dims[0])
	}
	if b.Rows != dims[1] {
		return fmt.Errorf("core: B has %d rows, tensor mode-2 length is %d", b.Rows, dims[1])
	}
	if c.Rows != dims[2] {
		return fmt.Errorf("core: C has %d rows, tensor mode-3 length is %d", c.Rows, dims[2])
	}
	return nil
}

// Executor owns the preprocessed tensor structures for one plan and
// runs MTTKRP repeatedly against them — matching how CP-ALS calls
// MTTKRP 10–1000s of times per decomposition, amortising the
// (cheap, Sec. V-A) data reorganisation.
type Executor struct {
	plan    Plan
	dims    tensor.Dims
	csf     *tensor.CSF    // for SPLATT / RankB
	blocked *BlockedTensor // for MB / MB+RankB
	coo     *tensor.COO    // for COO
}

// NewExecutor preprocesses t according to plan. The input tensor is
// not retained except by the COO method.
func NewExecutor(t *tensor.COO, plan Plan) (*Executor, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	e := &Executor{plan: plan, dims: t.Dims}
	switch plan.Method {
	case MethodCOO:
		e.coo = t
	case MethodSPLATT, MethodRankB:
		csf, err := tensor.BuildCSF(t)
		if err != nil {
			return nil, err
		}
		e.csf = csf
	case MethodMB, MethodMBRankB:
		bt, err := BuildBlocked(t, plan.Grid)
		if err != nil {
			return nil, err
		}
		e.blocked = bt
	default:
		return nil, fmt.Errorf("core: unknown method %v", plan.Method)
	}
	if plan.Method == MethodRankB || plan.Method == MethodMBRankB {
		if plan.RankBlockCols < 0 {
			return nil, fmt.Errorf("core: negative RankBlockCols %d", plan.RankBlockCols)
		}
	}
	return e, nil
}

// Plan returns the executor's plan.
func (e *Executor) Plan() Plan { return e.plan }

// Dims returns the tensor shape.
func (e *Executor) Dims() tensor.Dims { return e.dims }

// Run computes out = MTTKRP(X, B, C). out is zeroed first.
func (e *Executor) Run(b, c, out *la.Matrix) error {
	if err := validateOperands(e.dims, b, c, out); err != nil {
		return err
	}
	out.Zero()
	workers := e.plan.workers()
	switch e.plan.Method {
	case MethodCOO:
		cooKernelParallel(e.coo, b, c, out, workers)
	case MethodSPLATT:
		splattParallel(e.csf, b, c, out, workers)
	case MethodRankB:
		// Strips are driven from outside the kernel so each strip's
		// factor columns can be packed contiguously (Sec. V-B); the
		// kernel then register-blocks within the packed strip.
		e.stripDriver()(b, c, out, e.rankBlock(out.Cols), func(pb, pc, po *la.Matrix) {
			rankBParallel(e.csf, pb, pc, po, po.Cols, workers)
		})
	case MethodMB:
		mbParallel(e.blocked, b, c, out, 0, workers)
	case MethodMBRankB:
		// Figure 3b: the rank dimension is the outermost loop; inside a
		// strip the spatial blocks run with register blocking.
		e.stripDriver()(b, c, out, e.rankBlock(out.Cols), func(pb, pc, po *la.Matrix) {
			mbParallel(e.blocked, pb, pc, po, po.Cols, workers)
		})
	}
	return nil
}

// stripDriver selects the packed (default) or unpacked (ablation)
// strip execution.
func (e *Executor) stripDriver() func(b, c, out *la.Matrix, bs int, run func(pb, pc, po *la.Matrix)) {
	if e.plan.NoStripPacking {
		return runStrippedUnpacked
	}
	return runStripped
}

// rankBlock resolves the effective strip width for rank R.
func (e *Executor) rankBlock(r int) int {
	bs := e.plan.RankBlockCols
	if bs <= 0 || bs > r {
		return r
	}
	return bs
}

// MTTKRP is the one-shot convenience entry point: it builds an
// executor for plan and runs it once. Repeated products over the same
// tensor should build an Executor instead.
func MTTKRP(t *tensor.COO, b, c, out *la.Matrix, plan Plan) error {
	e, err := NewExecutor(t, plan)
	if err != nil {
		return err
	}
	return e.Run(b, c, out)
}
