// Package core implements the paper's contribution: the sparse MTTKRP
// kernel family built around the SPLATT storage format, the two
// blocking optimisations of Sec. V (multi-dimensional blocking and
// rank blocking with register blocking), and the Sec. V-C block-size
// heuristic.
//
// All kernels compute the mode-1 MTTKRP
//
//	A = X₍₁₎ · (B ⊙ C)
//
// for a third-order sparse tensor X ∈ R^{I×J×K} and factor matrices
// B ∈ R^{J×R}, C ∈ R^{K×R}, accumulating into an I×R output. Mode-2
// and mode-3 products are served by permuting the tensor's modes first
// (the three products are structurally identical — Sec. III-B).
package core

import (
	"fmt"
	"runtime"
	"time"

	"spblock/internal/analysis/check"
	"spblock/internal/kernel"
	"spblock/internal/la"
	"spblock/internal/metrics"
	"spblock/internal/sched"
	"spblock/internal/tensor"
)

// Method selects an MTTKRP kernel.
type Method int

const (
	// MethodCOO is the coordinate-format reference kernel (Sec. III-C1).
	MethodCOO Method = iota
	// MethodSPLATT is Algorithm 1, the baseline the paper optimises.
	MethodSPLATT
	// MethodMB applies multi-dimensional blocking (Sec. V-A).
	MethodMB
	// MethodRankB applies rank blocking with register blocking
	// (Sec. V-B, Algorithm 2).
	MethodRankB
	// MethodMBRankB combines both blockings (Figure 3b).
	MethodMBRankB
)

func (m Method) String() string {
	switch m {
	case MethodCOO:
		return "COO"
	case MethodSPLATT:
		return "SPLATT"
	case MethodMB:
		return "MB"
	case MethodRankB:
		return "RankB"
	case MethodMBRankB:
		return "MB+RankB"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// RegisterBlockWidth is NRegB of Algorithm 2: the default number of
// columns processed with fully unrolled scalar accumulators. 16
// float64 lanes are two 64-byte cache lines, the paper's choice ("a
// multiple of the cache line size"). The actual width dispatched per
// executor comes from the internal/kernel registry (8/16/24/32-wide
// variants, resolved from the effective strip width).
const RegisterBlockWidth = kernel.DefaultWidth

// Plan describes how to execute MTTKRP on one tensor.
type Plan struct {
	Method Method
	// Grid is the MB block grid (blocks along mode-1, mode-2, mode-3).
	// {1,1,1} means unblocked. Only used by MethodMB and MethodMBRankB.
	Grid [3]int
	// RankBlockCols is BS_RankB of Algorithm 2, the number of columns
	// per rank strip. 0 means "whole rank" (no rank blocking). Only
	// used by MethodRankB and MethodMBRankB.
	RankBlockCols int
	// NoStripPacking disables the Sec. V-B "stacked strips" factor
	// rearrangement and runs rank strips directly on the stride-R
	// matrices. This exists as an ablation knob: with power-of-two
	// ranks the unpacked strips conflict-miss pathologically, which is
	// precisely why the paper prescribes the rearrangement.
	NoStripPacking bool
	// Workers is the parallelism degree; 0 means GOMAXPROCS. Negative
	// values are rejected by NewExecutor.
	Workers int
	// Sched selects the work-distribution policy (internal/sched): the
	// zero value is the static layout-driven split the paper assumes,
	// PolicySteal carves chunked work-stealing deques, PolicyAdaptive
	// starts static and promotes to stealing when the measured worker
	// imbalance holds above the controller threshold. MethodCOO always
	// runs static: its privatised outputs are reduced in worker order,
	// so a dynamic chunk→worker assignment would perturb the
	// floating-point reduction order.
	Sched sched.Policy
}

func (p Plan) String() string {
	s := p.Method.String()
	if p.Method == MethodMB || p.Method == MethodMBRankB {
		s += fmt.Sprintf(" grid=%dx%dx%d", p.Grid[0], p.Grid[1], p.Grid[2])
	}
	if p.Method == MethodRankB || p.Method == MethodMBRankB {
		s += fmt.Sprintf(" bs=%d", p.RankBlockCols)
	}
	// Static is the historical default and stays unspelled so existing
	// BENCH baselines (keyed by plan string) keep matching.
	if p.Sched != sched.PolicyStatic {
		s += " sched=" + p.Sched.String()
	}
	return s
}

func (p Plan) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// validateOperands checks the factor shapes against the tensor dims.
//
//spblock:coldpath
func validateOperands(dims tensor.Dims, b, c, out *la.Matrix) error {
	if b.Cols != c.Cols || b.Cols != out.Cols {
		return fmt.Errorf("core: rank mismatch: B has %d cols, C %d, out %d",
			b.Cols, c.Cols, out.Cols)
	}
	if b.Cols == 0 {
		return fmt.Errorf("core: rank must be positive")
	}
	if out.Rows != dims[0] {
		return fmt.Errorf("core: out has %d rows, tensor mode-1 length is %d", out.Rows, dims[0])
	}
	if b.Rows != dims[1] {
		return fmt.Errorf("core: B has %d rows, tensor mode-2 length is %d", b.Rows, dims[1])
	}
	if c.Rows != dims[2] {
		return fmt.Errorf("core: C has %d rows, tensor mode-3 length is %d", c.Rows, dims[2])
	}
	return nil
}

// Executor owns the preprocessed tensor structures for one plan and
// runs MTTKRP repeatedly against them — matching how CP-ALS calls
// MTTKRP 10–1000s of times per decomposition, amortising the
// (cheap, Sec. V-A) data reorganisation.
//
// An Executor also owns a pooled workspace (see workspace.go), so
// repeated Run calls perform no steady-state heap allocations. The
// workspace makes Run unsafe to call concurrently on one Executor;
// build one Executor per goroutine instead.
type Executor struct {
	plan    Plan
	dims    tensor.Dims
	csf     *tensor.CSF    // for SPLATT / RankB
	blocked *BlockedTensor // for MB / MB+RankB
	coo     *tensor.COO    // for COO

	ws  workspace
	met metrics.Collector

	// ctrl is the adaptive policy's promotion loop, nil for static and
	// steal plans (and for executors that resolved to sequential runs).
	// prevNS is its per-worker busy-time window baseline, pre-sized on
	// the cold path so the per-Run observation is allocation-free.
	ctrl   *sched.Controller
	prevNS []int64
}

// NewExecutor preprocesses t according to plan. The input tensor is
// not retained except by the COO method.
func NewExecutor(t *tensor.COO, plan Plan) (*Executor, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if plan.Workers < 0 {
		return nil, fmt.Errorf("core: negative Workers %d", plan.Workers)
	}
	if !plan.Sched.Valid() {
		return nil, fmt.Errorf("core: unknown sched policy %d", plan.Sched)
	}
	e := &Executor{plan: plan, dims: t.Dims}
	switch plan.Method {
	case MethodCOO:
		e.coo = t
	case MethodSPLATT, MethodRankB:
		csf, err := tensor.BuildCSF(t)
		if err != nil {
			return nil, err
		}
		e.csf = csf
	case MethodMB, MethodMBRankB:
		bt, err := BuildBlocked(t, plan.Grid)
		if err != nil {
			return nil, err
		}
		e.blocked = bt
	default:
		return nil, fmt.Errorf("core: unknown method %v", plan.Method)
	}
	if plan.Method == MethodRankB || plan.Method == MethodMBRankB {
		if plan.RankBlockCols < 0 {
			return nil, fmt.Errorf("core: negative RankBlockCols %d", plan.RankBlockCols)
		}
	}
	if check.Enabled {
		switch {
		case e.csf != nil:
			check.Must("core.NewExecutor", validateCSF(e.csf))
		case e.blocked != nil:
			check.Must("core.NewExecutor", validateBlocked(e.blocked))
		}
	}
	e.initRunners()
	e.met.SizeWorkers(len(e.ws.runners))
	e.initSched()
	return e, nil
}

// initSched applies the plan's scheduling policy to the queue the
// runners were built around and, for the adaptive policy, constructs
// the controller (its window baseline is sized by the ensure path,
// which re-sizes it whenever the worker buckets change). Re-entrant:
// SetWorkers calls it again after rebuilding the runners, and an
// adaptive executor keeps its controller — including any promotion
// already ratcheted — across the resize.
//
//spblock:coldpath
func (e *Executor) initSched() {
	if len(e.ws.runners) == 0 {
		// Sequential resolution schedules nothing.
		e.ctrl = nil
		e.prevNS = nil
		e.met.SetSched("")
		return
	}
	switch {
	case e.plan.Sched == sched.PolicySteal && e.ws.q.CanSteal():
		e.ws.q.SetStealing(true)
		e.met.SetSched(sched.StealName)
	case e.plan.Sched == sched.PolicyAdaptive && e.ws.q.CanSteal():
		if e.ctrl == nil {
			e.ctrl = sched.NewController(sched.ControllerConfig{})
		}
		if e.ctrl.Promoted() {
			e.ws.q.SetStealing(true)
			e.met.SetSched(sched.AdaptiveStealName)
		} else {
			e.met.SetSched(sched.AdaptiveStaticName)
		}
	default:
		// Static plans, and non-static plans on a method that never
		// builds a stealing layout (COO's ordered reduction).
		e.ctrl = nil
		e.prevNS = nil
		e.met.SetSched(sched.StaticName)
	}
}

// SetWorkers re-sizes the executor's parallelism mid-life to n workers
// (0 = GOMAXPROCS): the worker closures, sched.Queue layouts and
// per-worker metrics buckets are rebuilt, and the rank-dependent
// buffers (accumulators, privatised outputs, the adaptive window
// baseline) re-size on the next Run's ensure pass. The preprocessed
// tensor structures are untouched — this is what makes the call cheap
// enough for a serving cache to adapt one long-lived pooled stack to
// each job's requested parallelism instead of rebuilding the stack.
//
// SetWorkers must not be called concurrently with Run (the same
// single-Run ownership rule Run itself carries). An adaptive executor
// keeps its controller: promotion state survives, and the resized
// baseline means the ratchet keeps observing — it does not silently
// die the way a stale-length baseline would make it.
//
//spblock:coldpath
func (e *Executor) SetWorkers(n int) error {
	if n < 0 {
		return fmt.Errorf("core: negative Workers %d", n)
	}
	e.plan.Workers = n
	e.ws.runners = nil
	e.ws.q = sched.Queue{}
	e.initRunners()
	e.met.SizeWorkers(len(e.ws.runners))
	e.initSched()
	// Zeroing the sized rank forces the next Run through ensure, which
	// rebuilds the per-worker rank buffers and the window baseline at
	// the new width.
	e.ws.rank = 0
	return nil
}

// MemoryBytes reports the in-memory footprint of the executor's
// preprocessed tensor structure (the CSF, the blocked layout, or the
// aliased COO coordinates) — the storage a long-lived executor cache
// charges against its byte budget.
func (e *Executor) MemoryBytes() int64 {
	switch {
	case e.csf != nil:
		return e.csf.MemoryBytes()
	case e.blocked != nil:
		return e.blocked.MemoryBytes()
	case e.coo != nil:
		// 3 int32 index slices + 1 float64 value slice, all nnz long.
		return int64(e.coo.NNZ()) * (3*4 + 8)
	}
	return 0
}

// Plan returns the executor's plan.
func (e *Executor) Plan() Plan { return e.plan }

// Kernel reports the register-block kernel variant the executor
// dispatches through. It is resolved from the effective strip width on
// the first Run at a given rank, so before any Run it is the zero
// Variant; methods without rank blocking (COO, SPLATT, MB) never
// resolve one.
func (e *Executor) Kernel() kernel.Variant { return e.ws.kern.Variant }

// Sched reports the resolved scheduler identity (the internal/sched
// name constants): what the executor is actually running, not just
// what the plan asked for — an adaptive executor reports
// "adaptive:static" until its controller promotes it. Empty for
// sequential executors.
func (e *Executor) Sched() string { return e.met.Sched() }

// Metrics returns the executor's instrumentation collector: per-Run
// counters and per-worker time buckets, always collecting. Snapshot it
// between Runs, never mid-Run.
func (e *Executor) Metrics() *metrics.Collector { return &e.met }

// Dims returns the tensor shape.
func (e *Executor) Dims() tensor.Dims { return e.dims }

// Run computes out = MTTKRP(X, B, C). out is zeroed first.
//
// After the first call at a given rank, Run is allocation-free: every
// buffer it needs lives in the executor's pooled workspace. Run must
// not be called concurrently on the same Executor.
//
//spblock:hotpath
func (e *Executor) Run(b, c, out *la.Matrix) error {
	if err := validateOperands(e.dims, b, c, out); err != nil {
		return err
	}
	e.ensure(out.Cols)
	start := time.Now()
	out.Zero()
	switch e.plan.Method {
	case MethodCOO:
		e.runCOO(b, c, out)
	case MethodSPLATT:
		e.runSPLATT(b, c, out)
	case MethodRankB, MethodMBRankB:
		// Strips are driven from outside the kernel so each strip's
		// factor columns can be packed contiguously (Sec. V-B); the
		// kernel then register-blocks within the packed strip. For
		// MB+RankB the rank dimension is the outermost loop (Figure 3b)
		// and the spatial blocks run with register blocking inside it.
		e.runStripped(b, c, out)
	case MethodMB:
		e.runMB(b, c, out, 0)
	}
	e.met.EndRun(start)
	e.observe()
	return nil
}

// observe feeds the adaptive controller this run's worker-imbalance
// window and flips the queue to the stealing layout when the
// controller's ratchet fires. The workers are quiescent here (launch
// joined them), both layouts were prebuilt, and the scheduler names
// are constants, so promotion stays on the allocation-free hot path.
//
//spblock:hotpath
func (e *Executor) observe() {
	if e.ctrl == nil {
		return
	}
	if e.ctrl.Observe(e.met.WindowImbalance(e.prevNS)) {
		e.ws.q.SetStealing(true)
		e.met.SetSched(sched.AdaptiveStealName)
	}
}

// runCOO executes the coordinate kernel, privatising the output per
// worker (COO nonzero ranges do not own disjoint output rows).
//
//spblock:hotpath
func (e *Executor) runCOO(b, c, out *la.Matrix) {
	ws := &e.ws
	if len(ws.runners) == 0 {
		cooKernel(e.coo, b, c, out)
		return
	}
	ws.publish(b, c, out, 0)
	ws.launch()
	// Deterministic sequential reduction in worker order.
	for _, priv := range ws.privates {
		addInto(out, priv)
	}
}

// runSPLATT executes Algorithm 1 with slice-range work sharing.
//
//spblock:hotpath
func (e *Executor) runSPLATT(b, c, out *la.Matrix) {
	ws := &e.ws
	if len(ws.runners) == 0 {
		splattRange(e.csf, b, c, out, ws.accums[0][:out.Cols], 0, e.csf.NumSlices())
		return
	}
	ws.publish(b, c, out, 0)
	ws.launch()
}

// runMB executes the blocked kernel over mode-1 layers; bs > 0 applies
// rank blocking inside each block (MB+RankB).
//
//spblock:hotpath
func (e *Executor) runMB(b, c, out *la.Matrix, bs int) {
	ws := &e.ws
	if len(ws.runners) == 0 {
		accum := ws.accums[0][:out.Cols]
		for bi := 0; bi < e.blocked.Grid[0]; bi++ {
			mbLayer(e.blocked, b, c, out, &ws.kern, bs, bi, accum)
		}
		return
	}
	ws.publish(b, c, out, bs)
	ws.launch()
}

// runStripped drives the Sec. V-B strip loop: the rank is processed in
// strips of RankBlockCols columns. By default each factor's strip is
// packed into a pooled contiguous buffer before the kernel runs —
// "the tall and narrow strips of the factor matrix are stacked on top
// of each other ... to ensure a more sequential access to the memory".
//
// Packing matters beyond prefetch friendliness: with the natural
// stride-R layout, strip rows sit one full row apart, so for power-of-
// two ranks every strip row maps to the same handful of cache sets and
// conflict misses erase the blocking benefit entirely. With
// NoStripPacking (the ablation knob) strips are column views of the
// original stride-R matrices instead.
//
//spblock:hotpath
func (e *Executor) runStripped(b, c, out *la.Matrix) {
	ws := &e.ws
	r := out.Cols
	bs := e.rankBlock(r)
	if bs >= r {
		e.stripKernel(b, c, out)
		return
	}
	for rr := 0; rr < r; rr += bs {
		w := bs
		if rr+w > r {
			w = r - rr
		}
		if e.plan.NoStripPacking {
			setStrip(&ws.bView, b, rr, w)
			setStrip(&ws.cView, c, rr, w)
			setStrip(&ws.oView, out, rr, w)
			e.stripKernel(&ws.bView, &ws.cView, &ws.oView)
			continue
		}
		setStrip(&ws.bView, ws.bPack, 0, w)
		setStrip(&ws.cView, ws.cPack, 0, w)
		setStrip(&ws.oView, ws.oPack, 0, w)
		packStrip(&ws.bView, b, rr)
		packStrip(&ws.cView, c, rr)
		ws.oView.Zero()
		e.stripKernel(&ws.bView, &ws.cView, &ws.oView)
		unpackStrip(out, &ws.oView, rr)
	}
}

// stripKernel runs one strip's product; the strip operands must fully
// accumulate into po (whose Cols is the strip width).
//
//spblock:hotpath
func (e *Executor) stripKernel(pb, pc, po *la.Matrix) {
	ws := &e.ws
	if e.plan.Method == MethodMBRankB {
		e.runMB(pb, pc, po, po.Cols)
		return
	}
	if len(ws.runners) == 0 {
		rankBRange(e.csf, pb, pc, po, &ws.kern, po.Cols, 0, e.csf.NumSlices())
		return
	}
	ws.publish(pb, pc, po, po.Cols)
	ws.launch()
}

// rankBlock resolves the effective strip width for rank R.
//
//spblock:hotpath
func (e *Executor) rankBlock(r int) int {
	bs := e.plan.RankBlockCols
	if bs <= 0 || bs > r {
		return r
	}
	return bs
}

// PlanKernel predicts the rank-strip kernel variant an executor built
// for plan resolves at the given rank, without building one — the same
// width clamp and registry lookup the cold ensure half performs.
// Methods that never register-block report the zero Variant.
func PlanKernel(plan Plan, rank int) kernel.Variant {
	if plan.Method != MethodRankB && plan.Method != MethodMBRankB || rank <= 0 {
		return kernel.Variant{}
	}
	bs := plan.RankBlockCols
	if bs <= 0 || bs > rank {
		bs = rank
	}
	return kernel.Resolve(bs).Variant
}

// MTTKRP is the one-shot convenience entry point: it builds an
// executor for plan and runs it once. Repeated products over the same
// tensor should build an Executor instead.
func MTTKRP(t *tensor.COO, b, c, out *la.Matrix, plan Plan) error {
	e, err := NewExecutor(t, plan)
	if err != nil {
		return err
	}
	return e.Run(b, c, out)
}
