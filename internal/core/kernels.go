package core

import (
	"spblock/internal/la"
	"spblock/internal/tensor"
)

// cooRange is the coordinate-format MTTKRP of Sec. III-C1 over
// nonzeros [lo, hi): for every nonzero (i,j,k,v),
// A[i] += v * (B[j] .* C[k]). It performs the Khatri-Rao product "on
// the fly" per nonzero and is the natural baseline the SPLATT format
// improves upon (the fiber accumulator saves the per-nonzero multiply
// against C).
//
// Parallel execution privatises out per worker (COO nonzero ranges do
// not own disjoint output rows, unlike SPLATT's slice sharing); the
// O(workers · I · R) reduction overhead is one more reason the
// fiber-ordered SPLATT layout wins (Sec. III-C). The privatisation
// lives in Executor.runCOO.
//
//spblock:hotpath
func cooRange(t *tensor.COO, b, c, out *la.Matrix, lo, hi int) {
	r := out.Cols
	for p := lo; p < hi; p++ {
		v := t.Val[p]
		brow := b.Row(int(t.J[p]))
		crow := c.Row(int(t.K[p]))
		orow := out.Row(int(t.I[p]))
		for q := 0; q < r; q++ {
			orow[q] += v * brow[q] * crow[q]
		}
	}
}

// cooKernel runs the coordinate kernel over the whole tensor.
//
//spblock:hotpath
func cooKernel(t *tensor.COO, b, c, out *la.Matrix) {
	cooRange(t, b, c, out, 0, t.NNZ())
}

// addInto accumulates src into dst element-wise (the privatisation
// reduction). Shapes must match.
//
//spblock:hotpath
func addInto(dst, src *la.Matrix) {
	for i := 0; i < dst.Rows; i++ {
		d, s := dst.Row(i), src.Row(i)
		for q := range d {
			d[q] += s[q]
		}
	}
}

// splattRange runs Algorithm 1 over slices [lo, hi) of the CSF
// structure, using accum as the per-fiber accumulator array s.
//
// This is a line-for-line transcription of the paper's Algorithm 1:
// the inner loop multiplies each nonzero against a row of B into the
// accumulator; the fiber epilogue scales the accumulator by the row of
// C and adds it into the output row.
//
//spblock:hotpath
func splattRange(t *tensor.CSF, b, c, out *la.Matrix, accum []float64, lo, hi int) {
	r := out.Cols
	for s := lo; s < hi; s++ {
		orow := out.Row(int(t.SliceID[s]))
		for f := t.SlicePtr[s]; f < t.SlicePtr[s+1]; f++ {
			clear(accum)
			for p := t.FiberPtr[f]; p < t.FiberPtr[f+1]; p++ {
				v := t.Val[p]
				brow := b.Row(int(t.NzJ[p]))
				for q := 0; q < r; q++ {
					accum[q] += v * brow[q]
				}
			}
			crow := c.Row(int(t.FiberK[f]))
			for q := 0; q < r; q++ {
				orow[q] += accum[q] * crow[q]
			}
		}
	}
}

// sliceShares partitions slices [0, n) into at most workers contiguous
// ranges with approximately balanced nonzero counts, using the CSF
// pointer arrays. Distinct slices own distinct output rows, so ranges
// can run concurrently without synchronisation (this is SPLATT's own
// parallelisation strategy).
func sliceShares(t *tensor.CSF, workers int) [][2]int {
	n := t.NumSlices()
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n == 0 {
			return nil
		}
		return [][2]int{{0, n}}
	}
	nnz := t.NNZ()
	shares := make([][2]int, 0, workers)
	target := nnz / workers
	lo := 0
	for w := 0; w < workers && lo < n; w++ {
		if w == workers-1 {
			shares = append(shares, [2]int{lo, n})
			break
		}
		// Advance hi until this share holds ~target nonzeros.
		hi := lo
		startNNZ := int(t.FiberPtr[t.SlicePtr[lo]])
		for hi < n {
			hi++
			done := int(t.FiberPtr[t.SlicePtr[hi]]) - startNNZ
			if done >= target {
				break
			}
		}
		shares = append(shares, [2]int{lo, hi})
		lo = hi
	}
	return shares
}

// rankBRange is Algorithm 2 over slices [lo, hi): the rank is swept in
// strips of bs columns (the outer `while rr < R` loop), and within a
// strip each fiber is processed in RegisterBlockWidth-wide register
// blocks whose accumulators live entirely in scalar locals — the
// register blocking that removes the accumulator-array loads the PPA
// identified as a bottleneck (Table I, type 3).
//
//spblock:hotpath
func rankBRange(t *tensor.CSF, b, c, out *la.Matrix, bs, lo, hi int) {
	r := out.Cols
	if bs <= 0 || bs > r {
		bs = r
	}
	for rr := 0; rr < r; rr += bs {
		stripEnd := rr + bs
		if stripEnd > r {
			stripEnd = r
		}
		for s := lo; s < hi; s++ {
			i := int(t.SliceID[s])
			for f := t.SlicePtr[s]; f < t.SlicePtr[s+1]; f++ {
				pLo, pHi := int(t.FiberPtr[f]), int(t.FiberPtr[f+1])
				k := int(t.FiberK[f])
				r0 := rr
				for ; r0+RegisterBlockWidth <= stripEnd; r0 += RegisterBlockWidth {
					fiber16(t, b, c, out, pLo, pHi, i, k, r0)
				}
				if r0 < stripEnd {
					fiberTail(t, b, c, out, pLo, pHi, i, k, r0, stripEnd)
				}
			}
		}
	}
}

// fiber16 processes one fiber for 16 consecutive columns starting at
// r0, with all accumulators as scalar locals (registers). The nonzeros
// of the fiber are re-read for every register block; their reuse
// distance is tiny, so they come from L1 (Sec. V-B).
//
//spblock:hotpath
func fiber16(t *tensor.CSF, b, c, out *la.Matrix, pLo, pHi, i, k, r0 int) {
	var a0, a1, a2, a3, a4, a5, a6, a7 float64
	var a8, a9, a10, a11, a12, a13, a14, a15 float64
	bd, bs := b.Data, b.Stride
	for p := pLo; p < pHi; p++ {
		v := t.Val[p]
		brow := bd[int(t.NzJ[p])*bs+r0:]
		brow = brow[:16:16]
		a0 += v * brow[0]
		a1 += v * brow[1]
		a2 += v * brow[2]
		a3 += v * brow[3]
		a4 += v * brow[4]
		a5 += v * brow[5]
		a6 += v * brow[6]
		a7 += v * brow[7]
		a8 += v * brow[8]
		a9 += v * brow[9]
		a10 += v * brow[10]
		a11 += v * brow[11]
		a12 += v * brow[12]
		a13 += v * brow[13]
		a14 += v * brow[14]
		a15 += v * brow[15]
	}
	crow := c.Data[k*c.Stride+r0:]
	crow = crow[:16:16]
	orow := out.Data[i*out.Stride+r0:]
	orow = orow[:16:16]
	orow[0] += a0 * crow[0]
	orow[1] += a1 * crow[1]
	orow[2] += a2 * crow[2]
	orow[3] += a3 * crow[3]
	orow[4] += a4 * crow[4]
	orow[5] += a5 * crow[5]
	orow[6] += a6 * crow[6]
	orow[7] += a7 * crow[7]
	orow[8] += a8 * crow[8]
	orow[9] += a9 * crow[9]
	orow[10] += a10 * crow[10]
	orow[11] += a11 * crow[11]
	orow[12] += a12 * crow[12]
	orow[13] += a13 * crow[13]
	orow[14] += a14 * crow[14]
	orow[15] += a15 * crow[15]
}

// fiberTail processes one fiber for columns [r0, r1) where the width
// is below RegisterBlockWidth, with a small stack accumulator.
//
//spblock:hotpath
func fiberTail(t *tensor.CSF, b, c, out *la.Matrix, pLo, pHi, i, k, r0, r1 int) {
	var acc [RegisterBlockWidth]float64
	w := r1 - r0
	for p := pLo; p < pHi; p++ {
		v := t.Val[p]
		brow := b.Data[int(t.NzJ[p])*b.Stride+r0:]
		for q := 0; q < w; q++ {
			acc[q] += v * brow[q]
		}
	}
	crow := c.Data[k*c.Stride+r0:]
	orow := out.Data[i*out.Stride+r0:]
	for q := 0; q < w; q++ {
		orow[q] += acc[q] * crow[q]
	}
}
