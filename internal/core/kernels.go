package core

import (
	"spblock/internal/kernel"
	"spblock/internal/la"
	"spblock/internal/tensor"
)

// cooRange is the coordinate-format MTTKRP of Sec. III-C1 over
// nonzeros [lo, hi): for every nonzero (i,j,k,v),
// A[i] += v * (B[j] .* C[k]). It performs the Khatri-Rao product "on
// the fly" per nonzero and is the natural baseline the SPLATT format
// improves upon (the fiber accumulator saves the per-nonzero multiply
// against C).
//
// Parallel execution privatises out per worker (COO nonzero ranges do
// not own disjoint output rows, unlike SPLATT's slice sharing); the
// O(workers · I · R) reduction overhead is one more reason the
// fiber-ordered SPLATT layout wins (Sec. III-C). The privatisation
// lives in Executor.runCOO.
//
//spblock:hotpath
func cooRange(t *tensor.COO, b, c, out *la.Matrix, lo, hi int) {
	r := out.Cols
	for p := lo; p < hi; p++ {
		v := t.Val[p]
		brow := b.Row(int(t.J[p]))
		crow := c.Row(int(t.K[p]))
		orow := out.Row(int(t.I[p]))
		kernel.KRPAxpy(orow[:r], v, brow, crow)
	}
}

// cooKernel runs the coordinate kernel over the whole tensor.
//
//spblock:hotpath
func cooKernel(t *tensor.COO, b, c, out *la.Matrix) {
	cooRange(t, b, c, out, 0, t.NNZ())
}

// addInto accumulates src into dst element-wise (the privatisation
// reduction). Shapes must match.
//
//spblock:hotpath
func addInto(dst, src *la.Matrix) {
	for i := 0; i < dst.Rows; i++ {
		kernel.Add(dst.Row(i), src.Row(i))
	}
}

// splattRange runs Algorithm 1 over slices [lo, hi) of the CSF
// structure, using accum as the per-fiber accumulator array s.
//
// This is a line-for-line transcription of the paper's Algorithm 1:
// the inner loop multiplies each nonzero against a row of B into the
// accumulator; the fiber epilogue scales the accumulator by the row of
// C and adds it into the output row.
//
//spblock:hotpath
func splattRange(t *tensor.CSF, b, c, out *la.Matrix, accum []float64, lo, hi int) {
	r := out.Cols
	for s := lo; s < hi; s++ {
		orow := out.Row(int(t.SliceID[s]))
		for f := t.SlicePtr[s]; f < t.SlicePtr[s+1]; f++ {
			clear(accum)
			for p := t.FiberPtr[f]; p < t.FiberPtr[f+1]; p++ {
				kernel.Axpy(accum[:r], t.Val[p], b.Row(int(t.NzJ[p])))
			}
			kernel.ScaleAdd(orow[:r], accum, c.Row(int(t.FiberK[f])))
		}
	}
}

// rankBRange is Algorithm 2 over slices [lo, hi): the rank is swept in
// strips of bs columns (the outer `while rr < R` loop), and within a
// strip each fiber is processed in kern.Width-wide register blocks
// whose accumulators live entirely in scalar locals — the register
// blocking that removes the accumulator-array loads the PPA identified
// as a bottleneck (Table I, type 3).
//
// kern is the variant the executor resolved once on its cold ensure
// path (kernel.Resolve of the effective strip width); dispatch here is
// a cached function pointer, never an interface or map lookup. The
// resolve contract guarantees every tail is narrower than
// kernel.MaxWidth: tails trail an unrolled body (width < kern.Width),
// or the whole strip is below kernel.MinWidth (scalar variant).
//
//spblock:hotpath
func rankBRange(t *tensor.CSF, b, c, out *la.Matrix, kern *kernel.Strip, bs, lo, hi int) {
	r := out.Cols
	if bs <= 0 || bs > r {
		bs = r
	}
	for rr := 0; rr < r; rr += bs {
		stripEnd := rr + bs
		if stripEnd > r {
			stripEnd = r
		}
		for s := lo; s < hi; s++ {
			i := int(t.SliceID[s])
			for f := t.SlicePtr[s]; f < t.SlicePtr[s+1]; f++ {
				pLo, pHi := int(t.FiberPtr[f]), int(t.FiberPtr[f+1])
				k := int(t.FiberK[f])
				r0 := rr
				if kw := kern.Width; kw > 0 {
					for ; r0+kw <= stripEnd; r0 += kw {
						kern.Fiber(t.Val, t.NzJ, b, c, out, pLo, pHi, i, k, r0)
					}
				}
				if r0 < stripEnd {
					kern.FiberTail(t.Val, t.NzJ, b, c, out, pLo, pHi, i, k, r0, stripEnd)
				}
			}
		}
	}
}
