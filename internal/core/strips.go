package core

import (
	"spblock/internal/la"
)

// runStripped drives rank blocking the way Sec. V-B prescribes: the
// rank is processed in strips of RankBlockCols columns, and each
// factor's strip is packed into a contiguous (rows × strip) buffer
// before the kernel runs — "the tall and narrow strips of the factor
// matrix are stacked on top of each other ... to ensure a more
// sequential access to the memory".
//
// Packing matters beyond prefetch friendliness: with the natural
// stride-R layout, strip rows sit one full row apart, so for power-of-
// two ranks every strip row maps to the same handful of cache sets and
// conflict misses erase the blocking benefit entirely. The packed
// buffers are reused across strips.
//
// run executes the kernel against one strip's packed operands (whose
// Cols is the strip width); it must fully accumulate into the packed
// output, which is then copied back into out's column strip.
func runStripped(b, c, out *la.Matrix, bs int, run func(pb, pc, po *la.Matrix)) {
	r := out.Cols
	if bs <= 0 || bs >= r {
		run(b, c, out)
		return
	}
	bPack := la.NewMatrix(b.Rows, bs)
	cPack := la.NewMatrix(c.Rows, bs)
	oPack := la.NewMatrix(out.Rows, bs)
	for rr := 0; rr < r; rr += bs {
		w := bs
		if rr+w > r {
			w = r - rr
		}
		pb := stripView(bPack, w)
		pc := stripView(cPack, w)
		po := stripView(oPack, w)
		packStrip(pb, b, rr)
		packStrip(pc, c, rr)
		po.Zero()
		run(pb, pc, po)
		unpackStrip(out, po, rr)
	}
}

// runStrippedUnpacked is the ablation variant of runStripped: strips
// are column views of the original stride-R matrices, no packing. The
// kernel sees rows w columns wide but R columns apart, so with
// power-of-two ranks the strip rows collide on a handful of cache sets
// — measurably worse in the cache simulator and on real hardware,
// which is the evidence behind the paper's rearrangement advice.
func runStrippedUnpacked(b, c, out *la.Matrix, bs int, run func(pb, pc, po *la.Matrix)) {
	r := out.Cols
	if bs <= 0 || bs >= r {
		run(b, c, out)
		return
	}
	for rr := 0; rr < r; rr += bs {
		w := bs
		if rr+w > r {
			w = r - rr
		}
		run(b.ColumnView(rr, rr+w), c.ColumnView(rr, rr+w), out.ColumnView(rr, rr+w))
	}
}

// stripView narrows a packed buffer to the first w columns, keeping
// its allocation stride so the buffer is reusable for the final,
// possibly narrower, strip.
func stripView(m *la.Matrix, w int) *la.Matrix {
	return &la.Matrix{Rows: m.Rows, Cols: w, Stride: m.Stride, Data: m.Data}
}

// packStrip copies src columns [rr, rr+dst.Cols) into dst.
func packStrip(dst, src *la.Matrix, rr int) {
	w := dst.Cols
	for i := 0; i < dst.Rows; i++ {
		copy(dst.Row(i), src.Data[i*src.Stride+rr:i*src.Stride+rr+w])
	}
}

// unpackStrip copies the packed output back into dst columns
// [rr, rr+src.Cols).
func unpackStrip(dst, src *la.Matrix, rr int) {
	w := src.Cols
	for i := 0; i < src.Rows; i++ {
		copy(dst.Data[i*dst.Stride+rr:i*dst.Stride+rr+w], src.Row(i))
	}
}
