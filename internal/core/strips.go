package core

import (
	"spblock/internal/la"
)

// setStrip points view at columns [rr, rr+w) of src, sharing src's
// storage and stride. The view header is a pooled value so narrowing
// to a strip allocates nothing; for the packed buffers (rr == 0) the
// kept stride makes the buffer reusable for the final, possibly
// narrower, strip.
//
//spblock:hotpath
func setStrip(view, src *la.Matrix, rr, w int) {
	view.Rows = src.Rows
	view.Cols = w
	view.Stride = src.Stride
	view.Data = src.Data[rr:]
}

// packStrip copies src columns [rr, rr+dst.Cols) into dst.
//
//spblock:hotpath
func packStrip(dst, src *la.Matrix, rr int) {
	w := dst.Cols
	for i := 0; i < dst.Rows; i++ {
		copy(dst.Row(i), src.Data[i*src.Stride+rr:i*src.Stride+rr+w])
	}
}

// unpackStrip copies the packed output back into dst columns
// [rr, rr+src.Cols).
//
//spblock:hotpath
func unpackStrip(dst, src *la.Matrix, rr int) {
	w := src.Cols
	for i := 0; i < src.Rows; i++ {
		copy(dst.Data[i*dst.Stride+rr:i*dst.Stride+rr+w], src.Row(i))
	}
}
