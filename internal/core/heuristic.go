package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"spblock/internal/kernel"
	"spblock/internal/la"
	"spblock/internal/tensor"
)

// AutotuneOptions configures the Sec. V-C block-size heuristic.
type AutotuneOptions struct {
	// Workers is the parallelism used while measuring (0 = GOMAXPROCS).
	Workers int
	// Trials is the number of timed runs per candidate; the minimum is
	// kept (robust against scheduler noise). Default 3.
	Trials int
	// Tolerance is the relative improvement a candidate must deliver to
	// count as "still improving". Default 0.01 (1%).
	Tolerance float64
	// Seed drives the random factor matrices used for measurement.
	Seed int64
}

func (o AutotuneOptions) withDefaults() AutotuneOptions {
	if o.Trials <= 0 {
		o.Trials = 3
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 0.01
	}
	return o
}

// Trial records one measured candidate during autotuning.
type Trial struct {
	Plan Plan
	Cost float64 // seconds per MTTKRP (or synthetic cost in tests)
}

// CostFunc measures the cost of executing one plan; lower is better.
// Production use wires a wall-clock measurement; tests inject analytic
// cost models to verify the search procedure deterministically.
type CostFunc func(Plan) float64

// searchRankB implements the rank-blocking half of the heuristic:
// "go through block sizes in 128-byte increments — equivalent to the
// cache line size — until the performance stops improving". The ladder
// comes from kernel.StripCandidates: every width the kernel registry
// can execute without a super-MinWidth scalar tail, up to and
// including the rank itself — the final rung the old `bs < rank` loop
// never evaluated (the same walk internal/autotune's model ladder
// uses; a parity test pins the two).
//
// base carries the method/grid/workers; the returned plan is base with
// the winning RankBlockCols. The trial log is appended to trials.
func searchRankB(base Plan, rank int, cost CostFunc, tol float64, trials *[]Trial) Plan {
	measure := func(p Plan) float64 {
		c := cost(p)
		*trials = append(*trials, Trial{Plan: p, Cost: c})
		return c
	}
	best := base
	best.RankBlockCols = 0 // whole rank: the unblocked baseline
	bestCost := measure(best)
	for _, bs := range kernel.StripCandidates(rank) {
		cand := base
		cand.RankBlockCols = bs
		c := measure(cand)
		if c < bestCost*(1-tol) {
			best, bestCost = cand, c
		} else if c > bestCost {
			// Performance stopped improving: the paper's stopping rule.
			break
		}
	}
	return best
}

// MBModeOrder exposes the heuristic's mode traversal order for other
// tuning strategies (internal/autotune).
func MBModeOrder(dims tensor.Dims) [3]int { return mbModeOrder(dims) }

// mbModeOrder returns the mode indices in the order the heuristic
// blocks them: descending mode length, ties broken by access volume —
// mode-2 (j) first, then mode-3 (k), then mode-1 (i) — because the PPA
// showed the mode-2 factor is the most expensive to access (Sec. V-C).
func mbModeOrder(dims tensor.Dims) [3]int {
	priority := map[int]int{1: 0, 2: 1, 0: 2}
	order := []int{0, 1, 2}
	sort.Slice(order, func(a, b int) bool {
		ma, mb := order[a], order[b]
		if dims[ma] != dims[mb] {
			return dims[ma] > dims[mb]
		}
		return priority[ma] < priority[mb]
	})
	return [3]int{order[0], order[1], order[2]}
}

// searchMB implements the multi-dimensional half: traverse the modes in
// mbModeOrder, doubling the block count along the current mode while
// performance keeps improving, then freeze it and move on. Not blocking
// a mode at all (count 1) remains the default when doubling never wins.
func searchMB(base Plan, dims tensor.Dims, cost CostFunc, tol float64, trials *[]Trial) Plan {
	measure := func(p Plan) float64 {
		c := cost(p)
		*trials = append(*trials, Trial{Plan: p, Cost: c})
		return c
	}
	best := base
	best.Grid = [3]int{1, 1, 1}
	bestCost := measure(best)
	for _, m := range mbModeOrder(dims) {
		for blocks := 2; blocks <= dims[m]; blocks *= 2 {
			cand := best
			cand.Grid[m] = blocks
			c := measure(cand)
			if c < bestCost*(1-tol) {
				best, bestCost = cand, c
				continue
			}
			break
		}
	}
	return best
}

// Autotune runs the Sec. V-C heuristic for the given method on tensor t
// at the given rank, measuring real executions, and returns the tuned
// plan plus the trial log. Methods without a tunable knob (COO, SPLATT)
// return immediately.
//
// The heuristic costs O(log₂ Iₙ) trials per mode plus O(R/16) rank
// trials — "relatively inexpensive compared to the 10–1000s of
// iterations required for decomposition".
//
// Each candidate runs once for warm-up (sizing the executor's pooled
// workspace) before the timed trials, so the timed runs are
// allocation-free and the measurements carry no allocator or GC noise.
func Autotune(t *tensor.COO, rank int, method Method, opts AutotuneOptions) (Plan, []Trial, error) {
	if err := t.Validate(); err != nil {
		return Plan{}, nil, err
	}
	if rank <= 0 {
		return Plan{}, nil, fmt.Errorf("core: rank must be positive, got %d", rank)
	}
	opts = opts.withDefaults()
	base := Plan{Method: method, Grid: [3]int{1, 1, 1}, Workers: opts.Workers}
	if method == MethodCOO || method == MethodSPLATT {
		return base, nil, nil
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	b := la.NewMatrix(t.Dims[1], rank)
	c := la.NewMatrix(t.Dims[2], rank)
	for i := range b.Data {
		b.Data[i] = rng.Float64()
	}
	for i := range c.Data {
		c.Data[i] = rng.Float64()
	}
	out := la.NewMatrix(t.Dims[0], rank)

	cost := func(p Plan) float64 {
		e, err := NewExecutor(t, p)
		if err != nil {
			return float64(^uint(0) >> 1) // unbuildable plans lose
		}
		if err := e.Run(b, c, out); err != nil { // warm-up
			return float64(^uint(0) >> 1)
		}
		bestSec := 0.0
		for trial := 0; trial < opts.Trials; trial++ {
			start := time.Now()
			if err := e.Run(b, c, out); err != nil {
				return float64(^uint(0) >> 1)
			}
			sec := time.Since(start).Seconds()
			if trial == 0 || sec < bestSec {
				bestSec = sec
			}
		}
		return bestSec
	}
	return AutotuneWithCost(t.Dims, rank, method, base, cost, opts)
}

// AutotuneWithCost is the cost-function-parameterised core of Autotune:
// it runs the same Sec. V-C greedy searches against an arbitrary cost
// model. The autotune package uses it to tune against simulated cache
// traffic instead of wall-clock time, and tests use it with analytic
// costs to verify the search deterministically.
func AutotuneWithCost(dims tensor.Dims, rank int, method Method, base Plan, cost CostFunc, opts AutotuneOptions) (Plan, []Trial, error) {
	opts = opts.withDefaults()
	var trials []Trial
	switch method {
	case MethodRankB:
		p := searchRankB(base, rank, cost, opts.Tolerance, &trials)
		return p, trials, nil
	case MethodMB:
		p := searchMB(base, dims, cost, opts.Tolerance, &trials)
		return p, trials, nil
	case MethodMBRankB:
		// Tune the spatial grid first (it dominates the working set),
		// then the rank strip width on top of the chosen grid.
		mbBase := base
		mbBase.Method = MethodMB
		p := searchMB(mbBase, dims, cost, opts.Tolerance, &trials)
		p.Method = MethodMBRankB
		p = searchRankB(p, rank, cost, opts.Tolerance, &trials)
		return p, trials, nil
	default:
		return base, nil, nil
	}
}
