package gen

import (
	"fmt"
	"math/rand"

	"spblock/internal/tensor"
)

// PoissonParams configures the Chi & Kolda style generative sampler for
// Poisson ("count") tensors. The model: a nonnegative rank-C Kruskal
// tensor M = Σ_c λ_c a_c ∘ b_c ∘ c_c defines Poisson rates; sampling
// `Events` index triples proportionally to M and histogramming them
// yields entry counts that are (conditionally) Poisson. Each event
// picks a component c ∝ λ_c, then one index per mode from that
// component's categorical distribution.
type PoissonParams struct {
	Dims tensor.Dims
	// Events is the number of sampled index triples; the resulting nnz
	// is slightly lower because collisions merge into counts.
	Events int
	// Components is the generative rank C (not the decomposition rank
	// R used by MTTKRP). Defaults to 16 when zero.
	Components int
	// Spread controls how concentrated each component's per-mode
	// distribution is: a component places its mass on roughly
	// Spread * (mode length) indices. Defaults to 0.25 when zero —
	// wide, mostly unstructured patterns, matching the paper's
	// description of the synthetic sets as "more random sparse
	// patterns".
	Spread float64
}

// Poisson generates a count tensor. The result is deduplicated (values
// are event counts) and fiber-sorted.
func Poisson(p PoissonParams, seed int64) (*tensor.COO, error) {
	if !p.Dims.Valid() {
		return nil, fmt.Errorf("gen: invalid dims %v", p.Dims)
	}
	if p.Events <= 0 {
		return nil, fmt.Errorf("gen: Events must be positive, got %d", p.Events)
	}
	comp := p.Components
	if comp <= 0 {
		comp = 16
	}
	spread := p.Spread
	if spread <= 0 {
		spread = 0.25
	}
	if spread > 1 {
		spread = 1
	}

	setup := newRand(seed, 1)
	// Component weights λ: exponential spacing so a few components
	// dominate, as fitted CP models of count data typically show.
	lambda := make([]float64, comp)
	for c := range lambda {
		lambda[c] = setup.ExpFloat64() + 0.1
	}
	compDist := NewCategorical(lambda)

	// Per component, per mode: a categorical over a random support.
	modeDist := make([][3]*Categorical, comp)
	for c := 0; c < comp; c++ {
		for m := 0; m < 3; m++ {
			modeDist[c][m] = componentModeDist(setup, p.Dims[m], spread)
		}
	}

	draw := newRand(seed, 2)
	t := tensor.NewCOO(p.Dims, p.Events)
	for e := 0; e < p.Events; e++ {
		c := compDist.Sample(draw)
		i := tensor.Index(modeDist[c][0].Sample(draw))
		j := tensor.Index(modeDist[c][1].Sample(draw))
		k := tensor.Index(modeDist[c][2].Sample(draw))
		t.Append(i, j, k, 1)
	}
	t.Dedup()
	return t, nil
}

// componentModeDist builds one component's distribution over one mode:
// a contiguous-free random subset of about spread*n indices with
// exponential weights. Sampling outside the support has probability 0,
// which is what keeps the rate tensor sparse.
func componentModeDist(rng *rand.Rand, n int, spread float64) *Categorical {
	support := int(spread * float64(n))
	if support < 1 {
		support = 1
	}
	if support > n {
		support = n
	}
	w := make([]float64, n)
	perm := rng.Perm(n)
	for s := 0; s < support; s++ {
		w[perm[s]] = rng.ExpFloat64() + 1e-3
	}
	return NewCategorical(w)
}
