package gen

import (
	"fmt"
	"math/rand"

	"spblock/internal/tensor"
)

// ClusteredParams configures the generator that stands in for the
// real-world FROSTT tensors. Sec. VI-C of the paper attributes the
// higher real-data speedups to "nice dense sub-structures" absent from
// the Poisson sets; this generator reproduces that structure directly:
//
//   - a fraction ClusterFrac of the nonzeros falls into dense
//     axis-aligned sub-boxes ("communities": users × related items ×
//     short time spans in the Netflix reading);
//   - the remaining background nonzeros follow independent power-law
//     (Zipf-like) popularity per mode, matching the heavy-tailed
//     marginals of review and web data.
type ClusteredParams struct {
	Dims tensor.Dims
	// NNZ is the target number of distinct nonzeros.
	NNZ int
	// Clusters is the number of dense sub-boxes. Defaults to 64.
	Clusters int
	// ClusterFrac is the fraction of nonzeros placed inside clusters.
	// Defaults to 0.6.
	ClusterFrac float64
	// ClusterSide scales cluster box side lengths relative to the mode
	// length; side = max(4, ClusterSide * mode length). Defaults to 0.02.
	ClusterSide float64
	// ZipfS is the background power-law exponent per mode. Defaults to 1.1.
	ZipfS float64
}

// Clustered generates a deduplicated, fiber-sorted tensor with the
// configured dense sub-structure. Values are positive counts (event
// multiplicities), like the rating/count data the real sets contain.
func Clustered(p ClusteredParams, seed int64) (*tensor.COO, error) {
	if !p.Dims.Valid() {
		return nil, fmt.Errorf("gen: invalid dims %v", p.Dims)
	}
	if p.NNZ <= 0 {
		return nil, fmt.Errorf("gen: NNZ must be positive, got %d", p.NNZ)
	}
	clusters := p.Clusters
	if clusters <= 0 {
		clusters = 64
	}
	frac := p.ClusterFrac
	if frac <= 0 {
		frac = 0.6
	}
	if frac > 1 {
		frac = 1
	}
	side := p.ClusterSide
	if side <= 0 {
		side = 0.02
	}
	zipfS := p.ZipfS
	if zipfS <= 0 {
		zipfS = 1.1
	}

	setup := newRand(seed, 3)
	boxes := make([][3][2]int, clusters)
	weights := make([]float64, clusters)
	for c := 0; c < clusters; c++ {
		for m := 0; m < 3; m++ {
			w := int(side * float64(p.Dims[m]))
			if w < 4 {
				w = 4
			}
			if w > p.Dims[m] {
				w = p.Dims[m]
			}
			lo := 0
			if p.Dims[m] > w {
				lo = setup.Intn(p.Dims[m] - w)
			}
			boxes[c][m] = [2]int{lo, lo + w}
		}
		weights[c] = setup.ExpFloat64() + 0.2
	}
	boxDist := NewCategorical(weights)

	// Background mode distributions: permuted power laws, so hubs are
	// scattered through the index space as they are in collected data.
	bg := [3]*Categorical{}
	for m := 0; m < 3; m++ {
		bg[m] = NewCategorical(PowerLawWeights(p.Dims[m], zipfS, SubSeed(seed, 10+m)))
	}

	draw := newRand(seed, 4)
	// Oversample: duplicates merge in Dedup, so aim above the target
	// and trim. 25% headroom is enough for the densities of Table II.
	events := p.NNZ + p.NNZ/4 + 16
	t := tensor.NewCOO(p.Dims, events)
	for e := 0; e < events; e++ {
		if draw.Float64() < frac {
			b := boxes[boxDist.Sample(draw)]
			t.Append(
				tensor.Index(b[0][0]+draw.Intn(b[0][1]-b[0][0])),
				tensor.Index(b[1][0]+draw.Intn(b[1][1]-b[1][0])),
				tensor.Index(b[2][0]+draw.Intn(b[2][1]-b[2][0])),
				1,
			)
		} else {
			t.Append(
				tensor.Index(bg[0].Sample(draw)),
				tensor.Index(bg[1].Sample(draw)),
				tensor.Index(bg[2].Sample(draw)),
				1,
			)
		}
	}
	t.Dedup()
	trimTo(t, p.NNZ, draw)
	return t, nil
}

// trimTo removes random entries until the tensor holds at most target
// nonzeros, keeping the fiber-sorted order.
func trimTo(t *tensor.COO, target int, rng *rand.Rand) {
	excess := t.NNZ() - target
	if excess <= 0 {
		return
	}
	// Mark victims via a partial Fisher-Yates over entry positions.
	n := t.NNZ()
	victims := make(map[int]bool, excess)
	for len(victims) < excess {
		victims[rng.Intn(n)] = true
	}
	w := 0
	for p := 0; p < n; p++ {
		if victims[p] {
			continue
		}
		t.I[w], t.J[w], t.K[w], t.Val[w] = t.I[p], t.J[p], t.K[p], t.Val[p]
		w++
	}
	t.I = t.I[:w]
	t.J = t.J[:w]
	t.K = t.K[:w]
	t.Val = t.Val[:w]
}
