package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spblock/internal/tensor"
)

func TestSplitMix64Deterministic(t *testing.T) {
	s1, s2 := uint64(42), uint64(42)
	for n := 0; n < 10; n++ {
		if SplitMix64(&s1) != SplitMix64(&s2) {
			t.Fatal("SplitMix64 not deterministic")
		}
	}
	// Different states diverge.
	s3 := uint64(43)
	if SplitMix64(&s2) == SplitMix64(&s3) {
		t.Fatal("different states produced same value")
	}
}

func TestSubSeedStreamsAreStable(t *testing.T) {
	a := SubSeed(7, 3)
	b := SubSeed(7, 3)
	if a != b {
		t.Fatal("SubSeed not stable")
	}
	if SubSeed(7, 0) == SubSeed(7, 1) {
		t.Fatal("adjacent streams collide")
	}
	if SubSeed(7, 0) == SubSeed(8, 0) {
		t.Fatal("different masters collide")
	}
}

func TestCategoricalMatchesWeights(t *testing.T) {
	weights := []float64{1, 0, 3, 6}
	c := NewCategorical(weights)
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	counts := make([]int, len(weights))
	for x := 0; x < n; x++ {
		counts[c.Sample(rng)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index sampled %d times", counts[1])
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("index %d: frequency %.3f, want %.3f", i, got, want)
		}
		if math.Abs(c.Weight(i)-want) > 1e-12 {
			t.Fatalf("Weight(%d) = %v, want %v", i, c.Weight(i), want)
		}
	}
}

func TestCategoricalSingleton(t *testing.T) {
	c := NewCategorical([]float64{5})
	rng := rand.New(rand.NewSource(2))
	for x := 0; x < 10; x++ {
		if c.Sample(rng) != 0 {
			t.Fatal("singleton categorical sampled nonzero index")
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for name, w := range map[string][]float64{
		"empty":    {},
		"negative": {1, -1},
		"all zero": {0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			NewCategorical(w)
		}()
	}
}

// Property: alias table probabilities sum to n (conservation), for
// random weight vectors.
func TestQuickCategoricalConservation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%32) + 1
		w := make([]float64, size)
		for i := range w {
			w[i] = rng.Float64() + 1e-6
		}
		c := NewCategorical(w)
		var sum float64
		for _, p := range c.prob {
			if p < 0 || p > 1+1e-9 {
				return false
			}
			sum += p
		}
		// Each cell contributes prob[i] to i and (1-prob[i]) to alias[i]:
		// total probability mass must be n * (1/n) = 1 per column sum.
		mass := make([]float64, size)
		for i := range c.prob {
			mass[i] += c.prob[i]
			mass[c.alias[i]] += 1 - c.prob[i]
		}
		for i := range mass {
			if math.Abs(mass[i]/float64(size)-c.weight[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawWeights(t *testing.T) {
	w := PowerLawWeights(100, 1.1, 5)
	if len(w) != 100 {
		t.Fatalf("len = %d", len(w))
	}
	// All positive, and the multiset of weights is the power law.
	var max float64
	for _, v := range w {
		if v <= 0 {
			t.Fatal("non-positive weight")
		}
		if v > max {
			max = v
		}
	}
	if max != 1 {
		t.Fatalf("max weight = %v, want 1 (rank-0 hub)", max)
	}
	// Determinism.
	w2 := PowerLawWeights(100, 1.1, 5)
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("PowerLawWeights not deterministic")
		}
	}
	// Different seeds permute differently (with overwhelming probability).
	w3 := PowerLawWeights(100, 1.1, 6)
	same := true
	for i := range w {
		if w[i] != w3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical permutations")
	}
}

func TestPoissonBasic(t *testing.T) {
	p := PoissonParams{Dims: tensor.Dims{40, 50, 60}, Events: 5000}
	got, err := Poisson(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.NNZ() == 0 || got.NNZ() > 5000 {
		t.Fatalf("nnz = %d", got.NNZ())
	}
	if !got.IsFiberSorted() {
		t.Fatal("Poisson output not sorted")
	}
	// Count data: all values are positive integers.
	for _, v := range got.Val {
		if v < 1 || v != math.Trunc(v) {
			t.Fatalf("non-count value %v", v)
		}
	}
	// Determinism.
	again, err := Poisson(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	if again.NNZ() != got.NNZ() {
		t.Fatal("Poisson not deterministic")
	}
	for p2 := 0; p2 < got.NNZ(); p2++ {
		if got.I[p2] != again.I[p2] || got.Val[p2] != again.Val[p2] {
			t.Fatal("Poisson not deterministic")
		}
	}
	// Different seed differs.
	other, _ := Poisson(p, 12)
	if other.NNZ() == got.NNZ() {
		identical := true
		for p2 := 0; p2 < got.NNZ(); p2++ {
			if got.I[p2] != other.I[p2] || got.J[p2] != other.J[p2] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical tensors")
		}
	}
}

func TestPoissonErrors(t *testing.T) {
	if _, err := Poisson(PoissonParams{Dims: tensor.Dims{0, 1, 1}, Events: 10}, 1); err == nil {
		t.Fatal("invalid dims accepted")
	}
	if _, err := Poisson(PoissonParams{Dims: tensor.Dims{2, 2, 2}, Events: 0}, 1); err == nil {
		t.Fatal("zero events accepted")
	}
}

func TestPoissonSpreadLimitsSupport(t *testing.T) {
	// With a tiny spread and one component, nonzeros concentrate on a
	// small fraction of each mode.
	p := PoissonParams{Dims: tensor.Dims{200, 200, 200}, Events: 4000, Components: 1, Spread: 0.05}
	got, err := Poisson(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[tensor.Index]bool{}
	for _, i := range got.I {
		distinct[i] = true
	}
	if len(distinct) > 20 {
		t.Fatalf("component support too wide: %d distinct i values, want <= 20", len(distinct))
	}
}

func TestClusteredBasic(t *testing.T) {
	p := ClusteredParams{Dims: tensor.Dims{300, 200, 400}, NNZ: 8000}
	got, err := Clustered(p, 21)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.NNZ() > 8000 || got.NNZ() < 7000 {
		t.Fatalf("nnz = %d, want close to 8000", got.NNZ())
	}
	if !got.IsFiberSorted() {
		t.Fatal("Clustered output not sorted")
	}
	// Determinism.
	again, _ := Clustered(p, 21)
	if again.NNZ() != got.NNZ() {
		t.Fatal("Clustered not deterministic")
	}
}

func TestClusteredErrors(t *testing.T) {
	if _, err := Clustered(ClusteredParams{Dims: tensor.Dims{1, 0, 1}, NNZ: 5}, 1); err == nil {
		t.Fatal("invalid dims accepted")
	}
	if _, err := Clustered(ClusteredParams{Dims: tensor.Dims{5, 5, 5}, NNZ: -1}, 1); err == nil {
		t.Fatal("negative nnz accepted")
	}
}

func TestClusteredHasDenseSubstructure(t *testing.T) {
	// Compare fiber statistics: clustered data should have longer
	// fibers (more nonzeros per (i,k) pair) than an unclustered
	// power-law tensor of the same shape and nnz, because cluster
	// boxes repeatedly hit the same (i,k) pairs.
	dims := tensor.Dims{400, 300, 400}
	nnz := 20000
	cl, err := Clustered(ClusteredParams{Dims: dims, NNZ: nnz, ClusterFrac: 0.9, ClusterSide: 0.02}, 31)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := Clustered(ClusteredParams{Dims: dims, NNZ: nnz, ClusterFrac: 1e-9}, 31)
	if err != nil {
		t.Fatal(err)
	}
	clStats := tensor.ComputeStats(cl)
	bgStats := tensor.ComputeStats(bg)
	if clStats.AvgFiberLength <= bgStats.AvgFiberLength {
		t.Fatalf("clustered avg fiber %.3f not longer than background %.3f",
			clStats.AvgFiberLength, bgStats.AvgFiberLength)
	}
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	want := []string{"Poisson1", "Poisson2", "Poisson3", "NELL2", "Netflix", "Reddit", "Amazon"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names[%d] = %s, want %s (Table II order)", i, names[i], want[i])
		}
	}
	for _, n := range names {
		d, err := Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		if !d.PaperDims.Valid() || !d.BenchDims.Valid() {
			t.Fatalf("%s: invalid dims", n)
		}
		if d.PaperNNZ <= 0 || d.BenchNNZ <= 0 {
			t.Fatalf("%s: invalid nnz", n)
		}
		// Paper sparsity sanity: Table II reports 8.8e-2 ... 2.5e-8.
		s := d.PaperSparsity()
		if s <= 0 || s > 0.1 {
			t.Fatalf("%s: paper sparsity %g out of range", n, s)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup accepted unknown name")
	}
}

func TestRegistryPaperSparsityValues(t *testing.T) {
	// Spot-check against the Sparsity column of Table II.
	cases := map[string]float64{
		"Poisson1": 8.9e-2, // 1.5M / 256^3 = 8.94e-2 (paper rounds to 8.8e-2)
		"Poisson3": 5.0e-6,
		"Reddit":   2.6e-8, // 924M / (1.2M*23K*1.3M); paper rounds to 2.8e-8
	}
	for name, want := range cases {
		d, _ := Lookup(name)
		got := d.PaperSparsity()
		if got < want/1.3 || got > want*1.3 {
			t.Fatalf("%s: sparsity %.3g, want about %.3g", name, got, want)
		}
	}
}

func TestRegistryGenerateSmall(t *testing.T) {
	// GenerateAt lets tests run the registry generators at tiny scale.
	for _, name := range Names() {
		d, _ := Lookup(name)
		small, err := d.GenerateAt(tensor.Dims{64, 64, 64}, 2000, 77)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := small.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if small.NNZ() == 0 {
			t.Fatalf("%s: empty tensor", name)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindPoisson.String() != "poisson" || KindClustered.String() != "clustered" {
		t.Fatal("Kind.String broken")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown Kind should still render")
	}
}
