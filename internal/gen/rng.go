// Package gen produces the synthetic data sets of Table II: Poisson
// "count" tensors following the Chi & Kolda generative model the paper
// cites, and clustered power-law tensors that stand in for the
// real-world FROSTT sets (NELL-2, Netflix, Reddit, Amazon), which are
// not redistributable inside this offline reproduction. The registry
// keeps both the paper-scale shapes (for the record) and scaled-down
// bench shapes that run on one core.
//
// All generators are deterministic functions of an explicit seed.
package gen

import (
	"math"
	"math/rand"
)

// SplitMix64 advances a splitmix64 state and returns the next value.
// It is used to derive independent sub-stream seeds from one master
// seed, so adding a new consumer of randomness never perturbs the
// streams of existing ones.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d4a4f0d4f1f4b9
	return z ^ (z >> 31)
}

// SubSeed returns the n-th derived seed of master.
func SubSeed(master int64, n int) int64 {
	state := uint64(master) ^ 0x6a09e667f3bcc909
	var v uint64
	for x := 0; x <= n; x++ {
		v = SplitMix64(&state)
	}
	return int64(v)
}

// newRand builds a deterministic *rand.Rand for a derived stream.
func newRand(master int64, stream int) *rand.Rand {
	return rand.New(rand.NewSource(SubSeed(master, stream)))
}

// Categorical samples indices 0..n-1 with the given (unnormalised)
// weights using the alias method, giving O(1) sampling after O(n)
// setup. The mode-popularity distributions of the clustered generator
// and the component distributions of the Poisson mixture both use it.
type Categorical struct {
	n      int
	prob   []float64
	alias  []int32
	weight []float64 // retained normalised weights, for tests
}

// NewCategorical builds the alias table. Weights must be non-negative
// with a positive sum.
func NewCategorical(weights []float64) *Categorical {
	n := len(weights)
	if n == 0 {
		panic("gen: empty categorical")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("gen: negative categorical weight")
		}
		sum += w
	}
	if sum <= 0 {
		panic("gen: categorical weights sum to zero")
	}
	c := &Categorical{
		n:      n,
		prob:   make([]float64, n),
		alias:  make([]int32, n),
		weight: make([]float64, n),
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		c.weight[i] = w / sum
		scaled[i] = w / sum * float64(n)
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		c.prob[s] = scaled[s]
		c.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		c.prob[i] = 1
	}
	for _, i := range small {
		c.prob[i] = 1
	}
	return c
}

// Sample draws one index.
func (c *Categorical) Sample(rng *rand.Rand) int {
	i := rng.Intn(c.n)
	if rng.Float64() < c.prob[i] {
		return i
	}
	return int(c.alias[i])
}

// Weight returns the normalised probability of index i (test hook).
func (c *Categorical) Weight(i int) float64 { return c.weight[i] }

// PowerLawWeights returns n weights with w[r] ∝ 1/(r+1)^s applied to a
// deterministic permutation of the indices, so "hub" indices are spread
// over the whole mode rather than clustered at zero. Real tensor modes
// (users, items, words) are heavy-tailed in exactly this way.
func PowerLawWeights(n int, s float64, seed int64) []float64 {
	rng := newRand(seed, 0)
	perm := rng.Perm(n)
	w := make([]float64, n)
	for r := 0; r < n; r++ {
		w[perm[r]] = math.Pow(1/float64(r+1), s)
	}
	return w
}
