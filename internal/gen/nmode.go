package gen

import (
	"fmt"
	"math/rand"

	"spblock/internal/nmode"
)

// PoissonNParams generalises PoissonParams to arbitrary order: the
// same Chi & Kolda generative sampler, with one categorical
// distribution per mode per component.
type PoissonNParams struct {
	Dims []int
	// Events is the number of sampled index tuples; the resulting nnz
	// is slightly lower because collisions merge into counts.
	Events int
	// Components is the generative rank C. Defaults to 16 when zero.
	Components int
	// Spread controls how concentrated each component's per-mode
	// distribution is. Defaults to 0.25 when zero.
	Spread float64
}

// PoissonN generates an order-N count tensor. The result is
// deduplicated (values are event counts) and sorted.
func PoissonN(p PoissonNParams, seed int64) (*nmode.Tensor, error) {
	n := len(p.Dims)
	if err := validateDimsN(p.Dims); err != nil {
		return nil, err
	}
	if p.Events <= 0 {
		return nil, fmt.Errorf("gen: Events must be positive, got %d", p.Events)
	}
	comp := p.Components
	if comp <= 0 {
		comp = 16
	}
	spread := p.Spread
	if spread <= 0 {
		spread = 0.25
	}
	if spread > 1 {
		spread = 1
	}

	setup := newRand(seed, 1)
	lambda := make([]float64, comp)
	for c := range lambda {
		lambda[c] = setup.ExpFloat64() + 0.1
	}
	compDist := NewCategorical(lambda)

	modeDist := make([][]*Categorical, comp)
	for c := 0; c < comp; c++ {
		modeDist[c] = make([]*Categorical, n)
		for m := 0; m < n; m++ {
			modeDist[c][m] = componentModeDist(setup, p.Dims[m], spread)
		}
	}

	draw := newRand(seed, 2)
	t := nmode.NewTensor(p.Dims, p.Events)
	coords := make([]nmode.Index, n)
	for e := 0; e < p.Events; e++ {
		c := compDist.Sample(draw)
		for m := 0; m < n; m++ {
			coords[m] = nmode.Index(modeDist[c][m].Sample(draw))
		}
		t.Append(coords, 1)
	}
	if _, err := t.Dedup(); err != nil {
		return nil, err
	}
	return t, nil
}

// ClusteredNParams generalises ClusteredParams to arbitrary order:
// dense axis-aligned sub-boxes over a Zipf background, per mode.
type ClusteredNParams struct {
	Dims []int
	// NNZ is the target number of distinct nonzeros.
	NNZ int
	// Clusters is the number of dense sub-boxes. Defaults to 64.
	Clusters int
	// ClusterFrac is the fraction of nonzeros placed inside clusters.
	// Defaults to 0.6.
	ClusterFrac float64
	// ClusterSide scales cluster box side lengths relative to the mode
	// length; side = max(4, ClusterSide * mode length). Defaults to 0.02.
	ClusterSide float64
	// ZipfS is the background power-law exponent per mode. Defaults to 1.1.
	ZipfS float64
}

// ClusteredN generates a deduplicated order-N tensor with the
// configured dense sub-structure.
func ClusteredN(p ClusteredNParams, seed int64) (*nmode.Tensor, error) {
	n := len(p.Dims)
	if err := validateDimsN(p.Dims); err != nil {
		return nil, err
	}
	if p.NNZ <= 0 {
		return nil, fmt.Errorf("gen: NNZ must be positive, got %d", p.NNZ)
	}
	clusters := p.Clusters
	if clusters <= 0 {
		clusters = 64
	}
	frac := p.ClusterFrac
	if frac <= 0 {
		frac = 0.6
	}
	if frac > 1 {
		frac = 1
	}
	side := p.ClusterSide
	if side <= 0 {
		side = 0.02
	}
	zipfS := p.ZipfS
	if zipfS <= 0 {
		zipfS = 1.1
	}

	setup := newRand(seed, 3)
	boxes := make([][][2]int, clusters)
	weights := make([]float64, clusters)
	for c := 0; c < clusters; c++ {
		boxes[c] = make([][2]int, n)
		for m := 0; m < n; m++ {
			w := int(side * float64(p.Dims[m]))
			if w < 4 {
				w = 4
			}
			if w > p.Dims[m] {
				w = p.Dims[m]
			}
			lo := 0
			if p.Dims[m] > w {
				lo = setup.Intn(p.Dims[m] - w)
			}
			boxes[c][m] = [2]int{lo, lo + w}
		}
		weights[c] = setup.ExpFloat64() + 0.2
	}
	boxDist := NewCategorical(weights)

	bg := make([]*Categorical, n)
	for m := 0; m < n; m++ {
		bg[m] = NewCategorical(PowerLawWeights(p.Dims[m], zipfS, SubSeed(seed, 10+m)))
	}

	draw := newRand(seed, 4)
	events := p.NNZ + p.NNZ/4 + 16
	t := nmode.NewTensor(p.Dims, events)
	coords := make([]nmode.Index, n)
	for e := 0; e < events; e++ {
		if draw.Float64() < frac {
			b := boxes[boxDist.Sample(draw)]
			for m := 0; m < n; m++ {
				coords[m] = nmode.Index(b[m][0] + draw.Intn(b[m][1]-b[m][0]))
			}
		} else {
			for m := 0; m < n; m++ {
				coords[m] = nmode.Index(bg[m].Sample(draw))
			}
		}
		t.Append(coords, 1)
	}
	if _, err := t.Dedup(); err != nil {
		return nil, err
	}
	trimToN(t, p.NNZ, draw)
	return t, nil
}

func validateDimsN(dims []int) error {
	if len(dims) < 2 {
		return fmt.Errorf("gen: order-%d shape needs at least 2 modes", len(dims))
	}
	for m, d := range dims {
		if d <= 0 {
			return fmt.Errorf("gen: invalid dims %v (mode %d)", dims, m)
		}
	}
	return nil
}

// trimToN removes random entries until the tensor holds at most target
// nonzeros, keeping the sorted order.
func trimToN(t *nmode.Tensor, target int, rng *rand.Rand) {
	excess := t.NNZ() - target
	if excess <= 0 {
		return
	}
	n := t.NNZ()
	victims := make(map[int]bool, excess)
	for len(victims) < excess {
		victims[rng.Intn(n)] = true
	}
	w := 0
	for p := 0; p < n; p++ {
		if victims[p] {
			continue
		}
		for m := range t.Idx {
			t.Idx[m][w] = t.Idx[m][p]
		}
		t.Val[w] = t.Val[p]
		w++
	}
	for m := range t.Idx {
		t.Idx[m] = t.Idx[m][:w]
	}
	t.Val = t.Val[:w]
}
