package gen

import (
	"fmt"
	"sort"

	"spblock/internal/tensor"
)

// Kind identifies a dataset family.
type Kind int

const (
	// KindPoisson marks the synthetic Poisson count tensors
	// (Poisson1–Poisson3 in Table II).
	KindPoisson Kind = iota
	// KindClustered marks the real-world stand-ins (NELL-2, Netflix,
	// Reddit, Amazon) generated with dense sub-structure.
	KindClustered
)

func (k Kind) String() string {
	switch k {
	case KindPoisson:
		return "poisson"
	case KindClustered:
		return "clustered"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DatasetSpec describes one row of Table II together with the scaled
// shape the offline benchmarks use.
type DatasetSpec struct {
	Name string
	Kind Kind

	// PaperDims and PaperNNZ are the shapes reported in Table II.
	PaperDims tensor.Dims
	PaperNNZ  int64

	// BenchDims and BenchNNZ are the scaled shapes generated for the
	// single-core reproduction (chosen so each tensor builds and runs
	// in seconds while keeping the mode-length *ratios* of the paper).
	BenchDims tensor.Dims
	BenchNNZ  int

	// Generator knobs.
	Clusters    int
	ClusterFrac float64
	ClusterSide float64
	ZipfS       float64
	Components  int
	Spread      float64
}

// PaperSparsity returns nnz / volume for the paper-scale shape.
func (d DatasetSpec) PaperSparsity() float64 {
	return float64(d.PaperNNZ) / d.PaperDims.Volume()
}

// Generate builds the bench-scale tensor deterministically from seed.
func (d DatasetSpec) Generate(seed int64) (*tensor.COO, error) {
	switch d.Kind {
	case KindPoisson:
		return Poisson(PoissonParams{
			Dims:       d.BenchDims,
			Events:     d.BenchNNZ + d.BenchNNZ/8,
			Components: d.Components,
			Spread:     d.Spread,
		}, seed)
	case KindClustered:
		return Clustered(ClusteredParams{
			Dims:        d.BenchDims,
			NNZ:         d.BenchNNZ,
			Clusters:    d.Clusters,
			ClusterFrac: d.ClusterFrac,
			ClusterSide: d.ClusterSide,
			ZipfS:       d.ZipfS,
		}, seed)
	default:
		return nil, fmt.Errorf("gen: unknown dataset kind %v", d.Kind)
	}
}

// GenerateAt builds the tensor at an arbitrary shape using the spec's
// generator knobs — used by experiments that sweep sizes.
func (d DatasetSpec) GenerateAt(dims tensor.Dims, nnz int, seed int64) (*tensor.COO, error) {
	s := d
	s.BenchDims = dims
	s.BenchNNZ = nnz
	return s.Generate(seed)
}

// Registry holds the seven data sets of Table II, keyed by name.
// Poisson1 is kept at full paper scale (it is tiny); the others are
// scaled down by roughly 8x per mode (64-512x in nnz) so the whole
// experiment suite runs on a single core.
var Registry = map[string]DatasetSpec{
	"Poisson1": {
		Name: "Poisson1", Kind: KindPoisson,
		PaperDims: tensor.Dims{256, 256, 256}, PaperNNZ: 1_500_000,
		BenchDims: tensor.Dims{256, 256, 256}, BenchNNZ: 1_500_000,
		Components: 16, Spread: 0.5,
	},
	"Poisson2": {
		Name: "Poisson2", Kind: KindPoisson,
		PaperDims: tensor.Dims{2_000, 16_000, 2_000}, PaperNNZ: 121_000_000,
		BenchDims: tensor.Dims{250, 2_000, 250}, BenchNNZ: 1_900_000,
		Components: 16, Spread: 0.35,
	},
	"Poisson3": {
		Name: "Poisson3", Kind: KindPoisson,
		PaperDims: tensor.Dims{30_000, 30_000, 30_000}, PaperNNZ: 135_000_000,
		BenchDims: tensor.Dims{3_750, 3_750, 3_750}, BenchNNZ: 2_100_000,
		Components: 24, Spread: 0.3,
	},
	"NELL2": {
		Name: "NELL2", Kind: KindClustered,
		PaperDims: tensor.Dims{12_000, 9_000, 29_000}, PaperNNZ: 77_000_000,
		BenchDims: tensor.Dims{1_500, 1_125, 3_625}, BenchNNZ: 1_200_000,
		Clusters: 48, ClusterFrac: 0.65, ClusterSide: 0.03, ZipfS: 1.05,
	},
	"Netflix": {
		Name: "Netflix", Kind: KindClustered,
		PaperDims: tensor.Dims{480_000, 18_000, 80}, PaperNNZ: 80_000_000,
		BenchDims: tensor.Dims{60_000, 2_250, 80}, BenchNNZ: 1_250_000,
		Clusters: 64, ClusterFrac: 0.6, ClusterSide: 0.02, ZipfS: 1.1,
	},
	"Reddit": {
		Name: "Reddit", Kind: KindClustered,
		PaperDims: tensor.Dims{1_200_000, 23_000, 1_300_000}, PaperNNZ: 924_000_000,
		BenchDims: tensor.Dims{75_000, 1_450, 81_250}, BenchNNZ: 1_800_000,
		Clusters: 96, ClusterFrac: 0.55, ClusterSide: 0.012, ZipfS: 1.15,
	},
	"Amazon": {
		Name: "Amazon", Kind: KindClustered,
		PaperDims: tensor.Dims{4_800_000, 1_800_000, 1_800_000}, PaperNNZ: 1_700_000_000,
		BenchDims: tensor.Dims{150_000, 56_250, 56_250}, BenchNNZ: 1_700_000,
		Clusters: 128, ClusterFrac: 0.7, ClusterSide: 0.008, ZipfS: 1.1,
	},
}

// Names returns the registry keys in Table II order.
func Names() []string {
	order := map[string]int{
		"Poisson1": 0, "Poisson2": 1, "Poisson3": 2,
		"NELL2": 3, "Netflix": 4, "Reddit": 5, "Amazon": 6,
	}
	names := make([]string, 0, len(Registry))
	for n := range Registry {
		names = append(names, n)
	}
	sort.Slice(names, func(a, b int) bool { return order[names[a]] < order[names[b]] })
	return names
}

// Lookup fetches a spec by name.
func Lookup(name string) (DatasetSpec, error) {
	d, ok := Registry[name]
	if !ok {
		return DatasetSpec{}, fmt.Errorf("gen: unknown dataset %q (have %v)", name, Names())
	}
	return d, nil
}
