package roofline

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWordsMatchesEquation1(t *testing.T) {
	p := Params{NNZ: 1000, Fibers: 100, Rank: 16, Alpha: 0.5}
	got, err := Words(p)
	if err != nil {
		t.Fatal(err)
	}
	want := 2*1000.0 + 2*100 + 0.5*16*1000 + 0.5*16*100
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Q = %v, want %v", got, want)
	}
	b, _ := Bytes(p)
	if b != got*8 {
		t.Fatalf("Bytes = %v, want %v", b, got*8)
	}
}

func TestFlopsMatchesEquation2(t *testing.T) {
	p := Params{NNZ: 1000, Fibers: 100, Rank: 16}
	got, err := Flops(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2*16*1100 {
		t.Fatalf("W = %v, want %v", got, 2*16*1100)
	}
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{NNZ: -1, Fibers: 1, Rank: 1, Alpha: 0},
		{NNZ: 1, Fibers: -1, Rank: 1, Alpha: 0},
		{NNZ: 1, Fibers: 1, Rank: 0, Alpha: 0},
		{NNZ: 1, Fibers: 1, Rank: 1, Alpha: -0.1},
		{NNZ: 1, Fibers: 1, Rank: 1, Alpha: 1.1},
	}
	for n, p := range bad {
		if _, err := Words(p); err == nil {
			t.Fatalf("case %d accepted by Words", n)
		}
		if _, err := Flops(p); err == nil {
			t.Fatalf("case %d accepted by Flops", n)
		}
		if _, err := Intensity(p); err == nil {
			t.Fatalf("case %d accepted by Intensity", n)
		}
	}
	if _, err := ClosedFormIntensity(0, 0.5); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := ClosedFormIntensity(16, 2); err == nil {
		t.Fatal("alpha 2 accepted")
	}
}

func TestClosedFormLimits(t *testing.T) {
	// Sec. IV-A: intensity ranges from R/(8+4R) at α=0 to R/8 at α=1.
	for _, r := range []int{16, 128, 2048} {
		lo, err := ClosedFormIntensity(r, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := float64(r) / (8 + 4*float64(r)); math.Abs(lo-want) > 1e-12 {
			t.Fatalf("rank %d α=0: %v, want %v", r, lo, want)
		}
		hi, err := ClosedFormIntensity(r, 1)
		if err != nil {
			t.Fatal(err)
		}
		if want := float64(r) / 8; math.Abs(hi-want) > 1e-12 {
			t.Fatalf("rank %d α=1: %v, want %v", r, hi, want)
		}
	}
}

func TestPaperQuotedValues(t *testing.T) {
	// "Even for a very high cache hit rate of 95%, the arithmetic
	// intensity ranges from 1.43 at rank 16 to at most 4.90 at rank
	// 2048."
	v16, _ := ClosedFormIntensity(16, 0.95)
	if math.Abs(v16-1.43) > 0.01 {
		t.Fatalf("I(16, .95) = %.3f, want 1.43", v16)
	}
	v2048, _ := ClosedFormIntensity(2048, 0.95)
	if math.Abs(v2048-4.90) > 0.02 {
		t.Fatalf("I(2048, .95) = %.3f, want 4.90", v2048)
	}
}

func TestIntensityConvergesToClosedForm(t *testing.T) {
	// With nnz >> F the exact intensity approaches Equation 3.
	p := Params{NNZ: 10_000_000, Fibers: 1000, Rank: 128, Alpha: 0.8}
	exact, err := Intensity(p)
	if err != nil {
		t.Fatal(err)
	}
	closed, _ := ClosedFormIntensity(128, 0.8)
	if math.Abs(exact-closed)/closed > 0.01 {
		t.Fatalf("exact %v vs closed form %v differ by more than 1%%", exact, closed)
	}
}

func TestFigure2Series(t *testing.T) {
	series, err := Figure2Series()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(Figure2Alphas) {
		t.Fatalf("rows = %d", len(series))
	}
	for ai, row := range series {
		if len(row) != len(Figure2Ranks) {
			t.Fatalf("row %d has %d cols", ai, len(row))
		}
		// Intensity grows (weakly) with rank within a series.
		for c := 1; c < len(row); c++ {
			if row[c] < row[c-1] {
				t.Fatalf("α=%v: intensity not monotone in rank: %v", Figure2Alphas[ai], row)
			}
		}
	}
	// Higher α gives higher intensity at fixed rank (series ordering in
	// Figure 2). Figure2Alphas is sorted descending.
	for c := range Figure2Ranks {
		for ai := 1; ai < len(series); ai++ {
			if series[ai][c] > series[ai-1][c] {
				t.Fatalf("rank %d: α=%v above α=%v", Figure2Ranks[c],
					Figure2Alphas[ai], Figure2Alphas[ai-1])
			}
		}
	}
}

func TestMachineRoofline(t *testing.T) {
	m := Machine{Name: "test", PeakGFLOP: 100, MemGBs: 10}
	if m.Balance() != 10 {
		t.Fatalf("balance = %v", m.Balance())
	}
	if got := m.AttainableGFLOP(5); got != 50 {
		t.Fatalf("attainable(5) = %v, want 50 (memory bound)", got)
	}
	if got := m.AttainableGFLOP(50); got != 100 {
		t.Fatalf("attainable(50) = %v, want 100 (compute bound)", got)
	}
	if !m.MemoryBound(5) || m.MemoryBound(50) {
		t.Fatal("MemoryBound misclassifies")
	}
}

func TestMostlyMemoryBound(t *testing.T) {
	// The paper's conclusion: "Given that state-of-the-art CPUs and
	// GPUs today have system balance ranging from 6 to 12, SPLATT
	// MTTKRP will likely be memory bound in most cases" — at α = 0.95
	// the intensity never exceeds 4.90, below the whole 6–12 range.
	generic := Machine{Name: "generic", PeakGFLOP: 600, MemGBs: 100} // balance 6
	for _, r := range Figure2Ranks {
		i, _ := ClosedFormIntensity(r, 0.95)
		if !generic.MemoryBound(i) {
			t.Fatalf("rank %d at α=.95 classified compute bound (I=%v, balance=%v)",
				r, i, generic.Balance())
		}
	}
	// "Only when the data fits completely in the cache and the rank is
	// high enough (> 64), can SPLATT MTTKRP become compute bound":
	// α = 1 gives I = R/8, which crosses balance 12 above rank 96.
	steep := Machine{Name: "balance12", PeakGFLOP: 1200, MemGBs: 100}
	i64, _ := ClosedFormIntensity(64, 1.0)
	if !steep.MemoryBound(i64) {
		t.Fatalf("rank 64 fully cached should still be memory bound at balance 12 (I=%v)", i64)
	}
	i128, _ := ClosedFormIntensity(128, 1.0)
	if steep.MemoryBound(i128) {
		t.Fatalf("rank 128 fully cached should be compute bound at balance 12 (I=%v)", i128)
	}
	// POWER8's own single-socket balance is lower still, so the flip
	// happens there too.
	if POWER8Socket.MemoryBound(i128) {
		t.Fatalf("rank 128 fully cached should be compute bound on POWER8 (balance=%v)",
			POWER8Socket.Balance())
	}
}

// Property: intensity is monotone in alpha and bounded by R/8.
func TestQuickIntensityMonotoneInAlpha(t *testing.T) {
	f := func(rank uint16, a1, a2 uint8) bool {
		r := int(rank%2048) + 1
		x := float64(a1%101) / 100
		y := float64(a2%101) / 100
		if x > y {
			x, y = y, x
		}
		ix, err1 := ClosedFormIntensity(r, x)
		iy, err2 := ClosedFormIntensity(r, y)
		if err1 != nil || err2 != nil {
			return false
		}
		return ix <= iy+1e-12 && iy <= float64(r)/8+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
