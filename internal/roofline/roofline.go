// Package roofline implements the analytic model of Sec. IV-A:
// Equations 1–3 for the data traffic Q, flop count W and arithmetic
// intensity I of the SPLATT MTTKRP kernel, the Figure 2 intensity
// curves, and a machine descriptor for placing the kernel on a roofline.
package roofline

import (
	"fmt"
)

// Params are the model inputs: tensor shape statistics, the
// decomposition rank and the overall cache hit rate α of Equation 1.
type Params struct {
	NNZ    int64
	Fibers int64
	Rank   int
	Alpha  float64
}

func (p Params) validate() error {
	if p.NNZ < 0 || p.Fibers < 0 {
		return fmt.Errorf("roofline: negative shape statistics")
	}
	if p.Rank <= 0 {
		return fmt.Errorf("roofline: rank must be positive, got %d", p.Rank)
	}
	if p.Alpha < 0 || p.Alpha > 1 {
		return fmt.Errorf("roofline: alpha %v outside [0,1]", p.Alpha)
	}
	return nil
}

// Words evaluates Equation 1: the number of 64-bit words moved from
// memory,
//
//	Q = 2·nnz + 2·F + (1−α)·R·nnz + (1−α)·R·F
//
// (val + j_index, k_index + k_pointer, mode-2 factor, mode-3 factor;
// i_pointer and the mode-1 factor are ignored as the paper does).
func Words(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	nnz, f := float64(p.NNZ), float64(p.Fibers)
	r := float64(p.Rank)
	return 2*nnz + 2*f + (1-p.Alpha)*r*nnz + (1-p.Alpha)*r*f, nil
}

// Bytes is Words scaled by the paper's 8-byte word assumption.
func Bytes(p Params) (float64, error) {
	w, err := Words(p)
	return w * 8, err
}

// Flops evaluates Equation 2: W = 2·R·(nnz + F).
func Flops(p Params) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	return 2 * float64(p.Rank) * float64(p.NNZ+p.Fibers), nil
}

// Intensity evaluates the exact arithmetic intensity W / (Q·8 bytes)
// using the full Equations 1–2.
func Intensity(p Params) (float64, error) {
	w, err := Flops(p)
	if err != nil {
		return 0, err
	}
	q, err := Bytes(p)
	if err != nil {
		return 0, err
	}
	return w / q, nil
}

// ClosedFormIntensity evaluates Equation 3, the nnz ≫ F simplification
//
//	I = R / (8 + 4·R·(1−α))
//
// which the paper plots in Figure 2.
func ClosedFormIntensity(rank int, alpha float64) (float64, error) {
	if rank <= 0 {
		return 0, fmt.Errorf("roofline: rank must be positive, got %d", rank)
	}
	if alpha < 0 || alpha > 1 {
		return 0, fmt.Errorf("roofline: alpha %v outside [0,1]", alpha)
	}
	r := float64(rank)
	return r / (8 + 4*r*(1-alpha)), nil
}

// Figure2Ranks are the rank values on Figure 2's x axis.
var Figure2Ranks = []int{16, 32, 64, 128, 256, 512, 1024, 2048}

// Figure2Alphas are the cache hit rates of Figure 2's series.
var Figure2Alphas = []float64{1.0, 0.95, 0.9, 0.8, 0.7, 0.6, 0.4, 0.2, 0.0}

// Figure2Series returns the Figure 2 data: one intensity row per alpha,
// one column per rank.
func Figure2Series() ([][]float64, error) {
	out := make([][]float64, len(Figure2Alphas))
	for ai, alpha := range Figure2Alphas {
		row := make([]float64, len(Figure2Ranks))
		for ri, rank := range Figure2Ranks {
			v, err := ClosedFormIntensity(rank, alpha)
			if err != nil {
				return nil, err
			}
			row[ri] = v
		}
		out[ai] = row
	}
	return out, nil
}

// Machine describes a roofline: peak floating-point throughput and
// memory bandwidth.
type Machine struct {
	Name      string
	PeakGFLOP float64 // GFLOP/s
	MemGBs    float64 // GB/s
}

// POWER8Socket is the paper's test platform, one socket: 10 cores at
// 3.49 GHz, each issuing two 128-bit (2-wide) FMA instructions per
// cycle (Sec. VI-A1) = 10 · 3.49 · 2 · 2 · 2 ≈ 279 GFLOP/s, with about
// 75 GB/s read bandwidth.
var POWER8Socket = Machine{Name: "POWER8 socket", PeakGFLOP: 279.2, MemGBs: 75}

// Balance returns the machine's flops-per-byte balance point: kernels
// with lower arithmetic intensity are memory bound.
func (m Machine) Balance() float64 { return m.PeakGFLOP / m.MemGBs }

// AttainableGFLOP returns the roofline bound min(peak, I · bandwidth)
// for a kernel of arithmetic intensity i (flops/byte).
func (m Machine) AttainableGFLOP(i float64) float64 {
	mem := i * m.MemGBs
	if mem < m.PeakGFLOP {
		return mem
	}
	return m.PeakGFLOP
}

// MemoryBound reports whether a kernel of intensity i is limited by
// memory bandwidth on m.
func (m Machine) MemoryBound(i float64) bool { return i < m.Balance() }
