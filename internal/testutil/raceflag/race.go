//go:build race

// Package raceflag exposes whether the enclosing binary was built with
// the race detector, so allocation-count tests can skip themselves:
// race instrumentation allocates on its own and makes AllocsPerRun
// assertions meaningless.
package raceflag

// Enabled reports that this binary runs under the race detector.
const Enabled = true
