package cpd

import (
	"fmt"
	"math"

	"spblock/internal/als"
	"spblock/internal/ooc"
)

// OOCOptions configures an out-of-core CP-ALS decomposition. The
// rank/iteration/seed knobs mirror NOptions; the memory knobs live on
// ooc.Options when the engine is opened.
type OOCOptions struct {
	// Rank is the decomposition rank R. Required.
	Rank int
	// MaxIters bounds the ALS sweeps. Default 50.
	MaxIters int
	// Tol stops iteration when the fit improves by less than this.
	// Default 1e-5.
	Tol float64
	// Seed drives the random factor initialisation. With the same
	// seed, rank and iteration budget, the streamed decomposition's
	// trajectory is bit-identical to CPALSN over the same tensor with
	// the same blocking grid.
	Seed int64
}

// CPALSOOC decomposes a staged tensor with the shared CP-ALS sweep
// loop, every MTTKRP product streamed through e's bounded-memory
// prefetch pipeline. Only the working set of blocks plus the factor
// matrices are resident; the tensor itself never is. ‖X‖ comes from
// the staging pass (same summation order as the in-memory drivers),
// so the fit sequence matches the in-memory run exactly.
func CPALSOOC(e *ooc.Engine, opts OOCOptions) (*NResult, error) {
	if opts.Rank <= 0 {
		return nil, fmt.Errorf("cpd: rank must be positive, got %d", opts.Rank)
	}
	if len(e.Dims()) < 2 {
		return nil, fmt.Errorf("cpd: CPALSOOC needs order >= 2")
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 50
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-5
	}
	ares, aerr := als.Run(e, als.Config{
		Rank:      opts.Rank,
		MaxIters:  opts.MaxIters,
		Tol:       opts.Tol,
		Seed:      opts.Seed,
		NormX:     math.Sqrt(e.NormSq()),
		ErrPrefix: "cpd",
	})
	if ares == nil {
		return nil, aerr
	}
	return &NResult{
		Lambda:    ares.Lambda,
		Factors:   ares.Factors,
		Fits:      ares.Fits,
		Iters:     ares.Iters,
		Converged: ares.Converged,
		Phases:    ares.Phases,
	}, aerr
}
