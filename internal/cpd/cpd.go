// Package cpd implements the canonical polyadic decomposition via
// alternating least squares (CP-ALS), the algorithm whose inner loop is
// the MTTKRP kernel this library optimises (Sec. I: MTTKRP is "the most
// expensive part of tensor decompositions" and runs 10–1000s of times
// per decomposition).
//
// Each of the three mode products is served by a mode-permuted executor
// from internal/core, so every blocking optimisation applies to all
// three modes.
package cpd

import (
	"fmt"
	"math"
	"math/rand"

	"spblock/internal/core"
	"spblock/internal/engine"
	"spblock/internal/la"
	"spblock/internal/memo"
	"spblock/internal/tensor"
)

// Options configures a decomposition.
type Options struct {
	// Rank is the decomposition rank R. Required.
	Rank int
	// MaxIters bounds the ALS sweeps. Default 50.
	MaxIters int
	// Tol stops iteration when the fit improves by less than this.
	// Default 1e-5.
	Tol float64
	// Plan selects the MTTKRP kernel (its Grid is interpreted in
	// mode-1 orientation and permuted for the other modes). Default:
	// SPLATT.
	Plan core.Plan
	// Memoize shares the mode-3 contraction between the mode-1 and
	// mode-2 products via internal/memo (the dimension-tree trade of
	// the paper's related work): ~1/3 fewer flops per sweep at the cost
	// of a P×R buffer (P = distinct (i,j) pairs). Mode 3 still uses the
	// configured Plan.
	Memoize bool
	// Seed drives the random factor initialisation.
	Seed int64
}

func (o Options) withDefaults() (Options, error) {
	if o.Rank <= 0 {
		return o, fmt.Errorf("cpd: rank must be positive, got %d", o.Rank)
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 50
	}
	if o.Tol <= 0 {
		o.Tol = 1e-5
	}
	if o.Plan.Grid == ([3]int{}) {
		o.Plan.Grid = [3]int{1, 1, 1}
	}
	return o, nil
}

// Result holds a fitted Kruskal tensor: X ≈ Σ_r λ_r · A[:,r] ∘ B[:,r] ∘ C[:,r].
type Result struct {
	Lambda  []float64
	Factors [3]*la.Matrix
	// Fits records the model fit 1 − ‖X − M‖/‖X‖ after each sweep.
	Fits      []float64
	Iters     int
	Converged bool
}

// Fit returns the final fit, or 0 before any sweep ran.
func (r *Result) Fit() float64 {
	if len(r.Fits) == 0 {
		return 0
	}
	return r.Fits[len(r.Fits)-1]
}

// CPALS decomposes t with alternating least squares.
func CPALS(t *tensor.COO, opts Options) (*Result, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	r := opts.Rank

	var memoEng *memo.Engine
	if opts.Memoize {
		var err error
		memoEng, err = memo.NewEngine(t)
		if err != nil {
			return nil, err
		}
	}

	// Build the engine once per decomposition: each mode's permuted
	// executor is constructed a single time and its pooled workspace is
	// reused by every sweep. The memoized path folds modes 1-2 from the
	// memo buffer, so it only needs the mode-3 executor.
	modes := []int{0, 1, 2}
	if memoEng != nil {
		modes = []int{2}
	}
	eng, err := engine.NewMultiModeExecutor(t, opts.Plan, modes...)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	res := &Result{Lambda: make([]float64, r)}
	for n := 0; n < 3; n++ {
		m := la.NewMatrix(t.Dims[n], r)
		for i := range m.Data {
			m.Data[i] = rng.Float64()
		}
		res.Factors[n] = m
	}
	grams := [3]*la.Matrix{}
	for n := 0; n < 3; n++ {
		grams[n] = la.Gram(res.Factors[n])
	}

	normX := math.Sqrt(t.NormSquared())
	mttkrpOut := [3]*la.Matrix{}
	for n := 0; n < 3; n++ {
		mttkrpOut[n] = la.NewMatrix(t.Dims[n], r)
	}

	prevFit := 0.0
	for iter := 0; iter < opts.MaxIters; iter++ {
		if memoEng != nil {
			// One contraction with the current C serves both the
			// mode-1 and mode-2 folds of this sweep.
			if err := memoEng.ComputeS(res.Factors[2]); err != nil {
				return res, err
			}
		}
		for n := 0; n < 3; n++ {
			mp := engine.Modes[n]
			out := mttkrpOut[n]
			switch {
			case memoEng != nil && n == 0:
				if err := memoEng.FoldMode1(res.Factors[1], out); err != nil {
					return res, err
				}
			case memoEng != nil && n == 1:
				if err := memoEng.FoldMode2(res.Factors[0], out); err != nil {
					return res, err
				}
			default:
				if err := eng.Run(n, res.Factors, out); err != nil {
					return res, err
				}
			}
			// V = hadamard of the other modes' Gram matrices.
			v := la.Hadamard(grams[mp.BFactor], grams[mp.CFactor])
			res.Factors[n].CopyFrom(out)
			if err := la.SolveSPD(v, res.Factors[n]); err != nil {
				return res, fmt.Errorf("cpd: mode-%d solve: %w", n+1, err)
			}
			copy(res.Lambda, la.NormalizeColumns(res.Factors[n]))
			// Guard against dead columns: a zero column would make all
			// later Gram products singular; re-seed it randomly.
			for q := 0; q < r; q++ {
				if res.Lambda[q] == 0 {
					for i := 0; i < res.Factors[n].Rows; i++ {
						res.Factors[n].Set(i, q, rng.Float64())
					}
				}
			}
			grams[n] = la.Gram(res.Factors[n])
		}

		fit := computeFit(normX, res, grams, mttkrpOut[2])
		res.Fits = append(res.Fits, fit)
		res.Iters = iter + 1
		if iter > 0 && math.Abs(fit-prevFit) < opts.Tol {
			res.Converged = true
			break
		}
		prevFit = fit
	}
	return res, nil
}

// computeFit evaluates 1 − ‖X − M‖/‖X‖ with the standard identity
// ‖X − M‖² = ‖X‖² + ‖M‖² − 2⟨X, M⟩, where ⟨X, M⟩ falls out of the last
// mode's MTTKRP: ⟨X, M⟩ = Σ_{i,r} λ_r · MTTKRP₃[i][r] · C[i][r], and
// ‖M‖² = λᵀ (G_A ∘ G_B ∘ G_C) λ.
func computeFit(normX float64, res *Result, grams [3]*la.Matrix, lastMTTKRP *la.Matrix) float64 {
	r := len(res.Lambda)
	// ‖M‖².
	gAll := la.Hadamard(la.Hadamard(grams[0], grams[1]), grams[2])
	var normM2 float64
	for p := 0; p < r; p++ {
		row := gAll.Row(p)
		for q := 0; q < r; q++ {
			normM2 += res.Lambda[p] * res.Lambda[q] * row[q]
		}
	}
	if normM2 < 0 {
		normM2 = 0
	}
	// ⟨X, M⟩ — the mode-3 factor was updated from lastMTTKRP, then
	// normalised, so C .* lastMTTKRP summed with λ weights recovers the
	// inner product.
	var inner float64
	c := res.Factors[2]
	for i := 0; i < c.Rows; i++ {
		crow, mrow := c.Row(i), lastMTTKRP.Row(i)
		for q := 0; q < r; q++ {
			inner += res.Lambda[q] * crow[q] * mrow[q]
		}
	}
	residual2 := normX*normX + normM2 - 2*inner
	if residual2 < 0 {
		residual2 = 0
	}
	if normX == 0 {
		return 1
	}
	return 1 - math.Sqrt(residual2)/normX
}

// ReconstructDense materialises the fitted model as a dense tensor in a
// flat I*J*K slice (row-major i, j, k) — a test and example helper for
// small shapes only.
func ReconstructDense(res *Result, dims tensor.Dims) ([]float64, error) {
	if dims.Volume() > 16e6 {
		return nil, fmt.Errorf("cpd: ReconstructDense refuses %v (too large)", dims)
	}
	a, b, c := res.Factors[0], res.Factors[1], res.Factors[2]
	if a.Rows != dims[0] || b.Rows != dims[1] || c.Rows != dims[2] {
		return nil, fmt.Errorf("cpd: factors do not match dims %v", dims)
	}
	out := make([]float64, dims[0]*dims[1]*dims[2])
	r := len(res.Lambda)
	for i := 0; i < dims[0]; i++ {
		arow := a.Row(i)
		for j := 0; j < dims[1]; j++ {
			brow := b.Row(j)
			base := (i*dims[1] + j) * dims[2]
			for k := 0; k < dims[2]; k++ {
				crow := c.Row(k)
				var s float64
				for q := 0; q < r; q++ {
					s += res.Lambda[q] * arow[q] * brow[q] * crow[q]
				}
				out[base+k] = s
			}
		}
	}
	return out, nil
}
