// Package cpd implements the canonical polyadic decomposition via
// alternating least squares (CP-ALS), the algorithm whose inner loop is
// the MTTKRP kernel this library optimises (Sec. I: MTTKRP is "the most
// expensive part of tensor decompositions" and runs 10–1000s of times
// per decomposition).
//
// Each of the three mode products is served by a mode-permuted executor
// from internal/core, so every blocking optimisation applies to all
// three modes.
package cpd

import (
	"context"
	"fmt"
	"math"

	"spblock/internal/als"
	"spblock/internal/autotune"
	"spblock/internal/core"
	"spblock/internal/engine"
	"spblock/internal/la"
	"spblock/internal/memo"
	"spblock/internal/metrics"
	"spblock/internal/sched"
	"spblock/internal/tensor"
)

// Options configures a decomposition.
type Options struct {
	// Rank is the decomposition rank R. Required.
	Rank int
	// MaxIters bounds the ALS sweeps. Default 50.
	MaxIters int
	// Tol stops iteration when the fit improves by less than this.
	// Default 1e-5.
	Tol float64
	// Plan selects the MTTKRP kernel (its Grid is interpreted in
	// mode-1 orientation and permuted for the other modes). Default:
	// SPLATT.
	Plan core.Plan
	// Memoize shares the mode-3 contraction between the mode-1 and
	// mode-2 products via internal/memo (the dimension-tree trade of
	// the paper's related work): ~1/3 fewer flops per sweep at the cost
	// of a P×R buffer (P = distinct (i,j) pairs). Mode 3 still uses the
	// configured Plan.
	Memoize bool
	// Seed drives the random factor initialisation.
	Seed int64
	// Replan enables the between-sweep replan hook (sched.Replanner): a
	// controller watches the engine's per-mode worker imbalance across
	// sweeps and, when the ratchet fires, re-costs the plan space with
	// autotune.Replan and rebuilds the engine on the winner — the
	// "optional layout switch between sweeps" this library's autotuning
	// layer exists for. Incompatible with Memoize (the memoized kernel
	// folds two of the three modes outside the engine, so a rebuilt plan
	// would only govern a third of the sweep).
	Replan bool
	// MaxReplans bounds how many times the replan controller may invoke
	// the autotuner per decomposition. Default 1 when Replan is set.
	MaxReplans int
	// ReplanController overrides the replan controller's thresholds;
	// zero fields take the internal/sched defaults.
	ReplanController sched.ControllerConfig
	// Ctx cancels the decomposition between mode products (see
	// als.Config.Ctx): a canceled run returns the partial result with
	// ctx's error within one mode product. nil means never canceled.
	Ctx context.Context
}

func (o Options) withDefaults() (Options, error) {
	if o.Rank <= 0 {
		return o, fmt.Errorf("cpd: rank must be positive, got %d", o.Rank)
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 50
	}
	if o.Tol <= 0 {
		o.Tol = 1e-5
	}
	if o.Plan.Grid == ([3]int{}) {
		o.Plan.Grid = [3]int{1, 1, 1}
	}
	if o.Replan && o.Memoize {
		return o, fmt.Errorf("cpd: Replan is incompatible with Memoize")
	}
	if o.Replan && o.MaxReplans <= 0 {
		o.MaxReplans = 1
	}
	return o, nil
}

// Result holds a fitted Kruskal tensor: X ≈ Σ_r λ_r · A[:,r] ∘ B[:,r] ∘ C[:,r].
type Result struct {
	Lambda  []float64
	Factors [3]*la.Matrix
	// Fits records the model fit 1 − ‖X − M‖/‖X‖ after each sweep.
	Fits      []float64
	Iters     int
	Converged bool
	// Phases buckets the decomposition's wall time by phase (MTTKRP vs
	// solve vs fit) — see metrics.PhaseTimes.
	Phases metrics.PhaseTimes
	// Plan is the plan the final sweeps ran on — Options.Plan with
	// defaults applied, updated if between-sweep replanning switched
	// layouts.
	Plan core.Plan
	// Replans counts the replan controller's autotuner invocations
	// (0 when Options.Replan is off or the controller never fired).
	Replans int
}

// Fit returns the final fit, or 0 before any sweep ran.
func (r *Result) Fit() float64 {
	if len(r.Fits) == 0 {
		return 0
	}
	return r.Fits[len(r.Fits)-1]
}

// engineKernel adapts the order-3 multi-mode engine to the shared ALS
// core.
type engineKernel struct {
	dims []int
	eng  *engine.MultiModeExecutor
}

func (k *engineKernel) Dims() []int { return k.dims }

func (k *engineKernel) MTTKRP(mode int, factors []*la.Matrix, out *la.Matrix) error {
	return k.eng.Run(mode, [3]*la.Matrix{factors[0], factors[1], factors[2]}, out)
}

// memoKernel folds modes 1-2 from the shared mode-3 contraction
// (refreshed once per sweep via StartSweep); mode 3 still runs through
// the configured engine plan.
type memoKernel struct {
	engineKernel
	memo *memo.Engine
}

func (k *memoKernel) StartSweep(factors []*la.Matrix) error {
	return k.memo.ComputeS(factors[2])
}

func (k *memoKernel) MTTKRP(mode int, factors []*la.Matrix, out *la.Matrix) error {
	switch mode {
	case 0:
		return k.memo.FoldMode1(factors[1], out)
	case 1:
		return k.memo.FoldMode2(factors[0], out)
	}
	return k.engineKernel.MTTKRP(mode, factors, out)
}

// replanKernel wraps engineKernel with the between-sweep replan loop:
// als.Run calls ReplanSweep after every successful non-final sweep, a
// controller ratchets on the engine's observed worker imbalance, and a
// fired ratchet asks autotune.Replan for a cheaper (method, grid,
// strip, sched) combination under that imbalance. A changed plan
// rebuilds the multi-mode engine — legal exactly here, between sweeps,
// where no executor is mid-Run.
type replanKernel struct {
	engineKernel
	t       *tensor.COO
	rank    int
	plan    core.Plan
	cfg     sched.ControllerConfig
	ctrl    *sched.Controller
	prev    [3][]int64
	max     int
	seed    int64
	replans int
}

func newReplanKernel(t *tensor.COO, eng *engine.MultiModeExecutor, opts Options) *replanKernel {
	k := &replanKernel{
		engineKernel: engineKernel{dims: t.Dims[:], eng: eng},
		t:            t,
		rank:         opts.Rank,
		plan:         opts.Plan,
		cfg:          opts.ReplanController,
		ctrl:         sched.NewController(opts.ReplanController),
		max:          opts.MaxReplans,
		seed:         opts.Seed,
	}
	k.sizeWindows()
	return k
}

// sizeWindows re-bases the per-mode imbalance windows against the
// current engine's collectors (fresh collectors start at zero, so fresh
// zero baselines are exact).
func (k *replanKernel) sizeWindows() {
	for mode := 0; mode < 3; mode++ {
		met, err := k.eng.Metrics(mode)
		if err != nil {
			k.prev[mode] = nil
			continue
		}
		k.prev[mode] = make([]int64, met.Workers())
	}
}

// ReplanSweep implements sched.Replanner.
func (k *replanKernel) ReplanSweep(sweep int) error {
	if k.replans >= k.max {
		return nil
	}
	// The observation is the worst per-mode imbalance this sweep: each
	// mode has its own executor and the sweep is only as balanced as its
	// most skewed mode product.
	imb := 1.0
	for mode := 0; mode < 3; mode++ {
		met, err := k.eng.Metrics(mode)
		if err != nil {
			return err
		}
		if v := met.WindowImbalance(k.prev[mode]); v > imb {
			imb = v
		}
	}
	if !k.ctrl.Observe(imb) {
		return nil
	}
	k.replans++
	// Re-arm the one-way ratchet so a later window of sustained
	// imbalance can spend the remaining replan budget.
	k.ctrl = sched.NewController(k.cfg)
	res, err := autotune.Replan(k.t, k.rank, k.plan, imb, autotune.Options{Seed: k.seed, Workers: k.plan.Workers})
	if err != nil {
		return err
	}
	if res.Plan.String() == k.plan.String() {
		return nil
	}
	eng, err := engine.NewMultiModeExecutor(k.t, res.Plan)
	if err != nil {
		return err
	}
	k.eng, k.plan = eng, res.Plan
	k.sizeWindows()
	return nil
}

// CPALS decomposes t with alternating least squares. The sweep loop
// itself lives in internal/als; this driver only assembles the kernel.
func CPALS(t *tensor.COO, opts Options) (*Result, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}

	var memoEng *memo.Engine
	if opts.Memoize {
		var err error
		memoEng, err = memo.NewEngine(t)
		if err != nil {
			return nil, err
		}
	}

	// Build the engine once per decomposition: each mode's permuted
	// executor is constructed a single time and its pooled workspace is
	// reused by every sweep. The memoized path folds modes 1-2 from the
	// memo buffer, so it only needs the mode-3 executor.
	modes := []int{0, 1, 2}
	if memoEng != nil {
		modes = []int{2}
	}
	eng, err := engine.NewMultiModeExecutor(t, opts.Plan, modes...)
	if err != nil {
		return nil, err
	}

	ek := engineKernel{dims: t.Dims[:], eng: eng}
	var k als.Kernel = &ek
	var rk *replanKernel
	switch {
	case memoEng != nil:
		k = &memoKernel{engineKernel: ek, memo: memoEng}
	case opts.Replan:
		rk = newReplanKernel(t, eng, opts)
		k = rk
	}
	ares, aerr := als.Run(k, als.Config{
		Rank:      opts.Rank,
		MaxIters:  opts.MaxIters,
		Tol:       opts.Tol,
		Seed:      opts.Seed,
		NormX:     math.Sqrt(t.NormSquared()),
		ErrPrefix: "cpd",
		Ctx:       opts.Ctx,
	})
	if ares == nil {
		return nil, aerr
	}
	res := fromALS(ares, opts.Plan)
	if rk != nil {
		res.Plan = rk.plan
		res.Replans = rk.replans
	}
	return res, aerr
}

// fromALS assembles the order-3 Result from the shared loop's result.
func fromALS(ares *als.Result, plan core.Plan) *Result {
	res := &Result{
		Lambda:    ares.Lambda,
		Fits:      ares.Fits,
		Iters:     ares.Iters,
		Converged: ares.Converged,
		Phases:    ares.Phases,
		Plan:      plan,
	}
	copy(res.Factors[:], ares.Factors)
	return res
}

// CPALSEngine decomposes t through a caller-supplied multi-mode engine
// built over the same tensor — the path a serving cache uses to reuse
// one preprocessed executor stack across many decompositions instead of
// paying the per-mode CSF/block builds on every job. The engine must
// have all three mode executors built; its plan (not Options.Plan)
// selects the kernels, and the returned Result.Plan reports it from the
// mode-0 executor (whose permutation is the identity, so the plan is in
// the caller's orientation).
//
// Memoize and Replan are rejected: the memoized kernel folds two modes
// outside the engine, and replanning rebuilds engines mid-run — either
// would bypass or dangle the cached stack the caller is leasing. The
// caller owns the engine's single-Run-per-mode exclusivity for the
// whole call.
func CPALSEngine(t *tensor.COO, eng *engine.MultiModeExecutor, opts Options) (*Result, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if opts.Memoize || opts.Replan {
		return nil, fmt.Errorf("cpd: CPALSEngine does not support Memoize or Replan")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if eng == nil {
		return nil, fmt.Errorf("cpd: CPALSEngine needs a non-nil engine")
	}
	if eng.Dims() != t.Dims {
		return nil, fmt.Errorf("cpd: engine dims %v do not match tensor dims %v", eng.Dims(), t.Dims)
	}
	e0, err := eng.Executor(0)
	if err != nil {
		return nil, fmt.Errorf("cpd: %w", err)
	}
	for mode := 1; mode < 3; mode++ {
		if _, err := eng.Executor(mode); err != nil {
			return nil, fmt.Errorf("cpd: %w", err)
		}
	}
	ares, aerr := als.Run(&engineKernel{dims: t.Dims[:], eng: eng}, als.Config{
		Rank:      opts.Rank,
		MaxIters:  opts.MaxIters,
		Tol:       opts.Tol,
		Seed:      opts.Seed,
		NormX:     math.Sqrt(t.NormSquared()),
		ErrPrefix: "cpd",
		Ctx:       opts.Ctx,
	})
	if ares == nil {
		return nil, aerr
	}
	return fromALS(ares, e0.Plan()), aerr
}

// ReconstructDense materialises the fitted model as a dense tensor in a
// flat I*J*K slice (row-major i, j, k) — a test and example helper for
// small shapes only.
func ReconstructDense(res *Result, dims tensor.Dims) ([]float64, error) {
	if dims.Volume() > 16e6 {
		return nil, fmt.Errorf("cpd: ReconstructDense refuses %v (too large)", dims)
	}
	a, b, c := res.Factors[0], res.Factors[1], res.Factors[2]
	if a.Rows != dims[0] || b.Rows != dims[1] || c.Rows != dims[2] {
		return nil, fmt.Errorf("cpd: factors do not match dims %v", dims)
	}
	out := make([]float64, dims[0]*dims[1]*dims[2])
	r := len(res.Lambda)
	for i := 0; i < dims[0]; i++ {
		arow := a.Row(i)
		for j := 0; j < dims[1]; j++ {
			brow := b.Row(j)
			base := (i*dims[1] + j) * dims[2]
			for k := 0; k < dims[2]; k++ {
				crow := c.Row(k)
				var s float64
				for q := 0; q < r; q++ {
					s += res.Lambda[q] * arow[q] * brow[q] * crow[q]
				}
				out[base+k] = s
			}
		}
	}
	return out, nil
}
