package cpd

import (
	"math"
	"math/rand"
	"testing"

	"spblock/internal/la"
	"spblock/internal/nmode"
	"spblock/internal/tensor"
)

// plantedTensorN builds a dense order-N tensor of exact rank r.
func plantedTensorN(seed int64, dims []int, r int) *nmode.Tensor {
	rng := rand.New(rand.NewSource(seed))
	factors := make([]*la.Matrix, len(dims))
	for m, d := range dims {
		factors[m] = la.NewMatrix(d, r)
		for i := range factors[m].Data {
			factors[m].Data[i] = rng.Float64() + 0.1
		}
	}
	t := nmode.NewTensor(dims, 0)
	coords := make([]nmode.Index, len(dims))
	var fill func(mode int)
	fill = func(mode int) {
		if mode == len(dims) {
			var s float64
			for q := 0; q < r; q++ {
				v := 1.0
				for m := range dims {
					v *= factors[m].At(int(coords[m]), q)
				}
				s += v
			}
			t.Append(coords, s)
			return
		}
		for i := 0; i < dims[mode]; i++ {
			coords[mode] = nmode.Index(i)
			fill(mode + 1)
		}
	}
	fill(0)
	return t
}

func TestCPALSNValidation(t *testing.T) {
	x := plantedTensorN(1, []int{3, 3, 3}, 1)
	if _, err := CPALSN(x, NOptions{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	bad := nmode.NewTensor([]int{2, 2}, 0)
	bad.Append([]nmode.Index{5, 0}, 1)
	if _, err := CPALSN(bad, NOptions{Rank: 2}); err == nil {
		t.Fatal("invalid tensor accepted")
	}
}

func TestCPALSNRecoversOrder4Structure(t *testing.T) {
	dims := []int{5, 6, 4, 5}
	x := plantedTensorN(2, dims, 2)
	res, err := CPALSN(x, NOptions{Rank: 2, MaxIters: 300, Tol: 1e-11, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit() < 0.995 {
		t.Fatalf("fit = %v, want > 0.995 for an exactly rank-2 tensor", res.Fit())
	}
	if len(res.Factors) != 4 || len(res.Lambda) != 2 {
		t.Fatal("result shape wrong")
	}
}

func TestCPALSNMatchesThreeModeCPALS(t *testing.T) {
	// On an order-3 tensor, the generic N-mode path and the specialised
	// third-order path must converge to comparable fits.
	dims3 := []int{8, 7, 6}
	xN := plantedTensorN(3, dims3, 3)

	res, err := CPALSN(xN, NOptions{Rank: 3, MaxIters: 60, Tol: 1e-10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The specialised path on the same data.
	x3 := tensorFromN(xN)
	res3, err := CPALS(x3, Options{Rank: 3, MaxIters: 60, Tol: 1e-10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Fit()-res3.Fit()) > 0.02 {
		t.Fatalf("N-mode fit %v vs 3-mode fit %v", res.Fit(), res3.Fit())
	}
}

// TestCPALSNTrajectoryMatchesCPALS is the strong form of the agreement
// test: with the shared internal/als sweep loop, the same seed, and the
// default kernels (both SPLATT on the order-3 fast path), the two entry
// points must produce the same fit trajectory — not just comparable
// endpoints.
func TestCPALSNTrajectoryMatchesCPALS(t *testing.T) {
	dims3 := []int{9, 8, 7}
	xN := plantedTensorN(11, dims3, 3)
	x3 := tensorFromN(xN)

	resN, err := CPALSN(xN, NOptions{Rank: 3, MaxIters: 25, Tol: 1e-12, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	res3, err := CPALS(x3, Options{Rank: 3, MaxIters: 25, Tol: 1e-12, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if resN.Iters != res3.Iters || len(resN.Fits) != len(res3.Fits) {
		t.Fatalf("iters %d vs %d, fits %d vs %d",
			resN.Iters, res3.Iters, len(resN.Fits), len(res3.Fits))
	}
	for i := range resN.Fits {
		if d := math.Abs(resN.Fits[i] - res3.Fits[i]); d > 1e-8 {
			t.Fatalf("sweep %d: fit %v vs %v (diff %v)", i, resN.Fits[i], res3.Fits[i], d)
		}
	}
	for q := range resN.Lambda {
		if d := math.Abs(resN.Lambda[q] - res3.Lambda[q]); d > 1e-6 {
			t.Fatalf("lambda[%d]: %v vs %v", q, resN.Lambda[q], res3.Lambda[q])
		}
	}
	for m := 0; m < 3; m++ {
		if d := resN.Factors[m].MaxAbsDiff(res3.Factors[m]); d > 1e-6 {
			t.Fatalf("factor %d differs by %v", m, d)
		}
	}
}

// tensorFromN converts an order-3 nmode.Tensor to the tensor.COO form.
func tensorFromN(x *nmode.Tensor) *tensor.COO {
	t := tensor.NewCOO(tensor.Dims{x.Dims[0], x.Dims[1], x.Dims[2]}, x.NNZ())
	for p := 0; p < x.NNZ(); p++ {
		t.Append(x.Idx[0][p], x.Idx[1][p], x.Idx[2][p], x.Val[p])
	}
	return t
}

func TestCPALSNMonotoneFits(t *testing.T) {
	dims := []int{6, 5, 4, 3}
	x := plantedTensorN(6, dims, 3)
	res, err := CPALSN(x, NOptions{Rank: 2, MaxIters: 30, Tol: 1e-12, Seed: 7,
		Kernel: nmode.Options{RankBlockCols: 16}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Fits); i++ {
		if res.Fits[i] < res.Fits[i-1]-1e-8 {
			t.Fatalf("fit decreased at sweep %d: %v -> %v", i, res.Fits[i-1], res.Fits[i])
		}
	}
	for _, f := range res.Fits {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("non-finite fit %v", f)
		}
	}
}

func TestCPALSNOrder2IsMatrixFactorisation(t *testing.T) {
	// Order-2 CP is just a low-rank matrix factorisation; an exactly
	// rank-1 matrix must fit essentially perfectly.
	dims := []int{10, 12}
	x := plantedTensorN(8, dims, 1)
	res, err := CPALSN(x, NOptions{Rank: 1, MaxIters: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit() < 0.9999 {
		t.Fatalf("rank-1 matrix fit = %v", res.Fit())
	}
}
