package cpd

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"spblock/internal/als"
	"spblock/internal/engine"
	"spblock/internal/nmode"
	"spblock/internal/ooc"
)

func stageForTest(t *testing.T, x *nmode.Tensor, grid []int) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "in.tns")
	if err := nmode.SaveTNSFile(path, x); err != nil {
		t.Fatal(err)
	}
	stage := filepath.Join(dir, "staged")
	if _, err := ooc.Stage(path, stage, ooc.StageOptions{Grid: grid}); err != nil {
		t.Fatal(err)
	}
	return stage
}

func randSparseN(seed int64, dims []int, nnz int) *nmode.Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := nmode.NewTensor(dims, nnz)
	coords := make([]nmode.Index, len(dims))
	for p := 0; p < nnz; p++ {
		for m, d := range dims {
			coords[m] = nmode.Index(rng.Intn(d))
		}
		x.Append(coords, rng.NormFloat64())
	}
	return x
}

func requireSameResult(t *testing.T, tag string, a, b *NResult) {
	t.Helper()
	if a.Iters != b.Iters || a.Converged != b.Converged {
		t.Fatalf("%s: trajectory diverged: iters %d/%d converged %v/%v",
			tag, a.Iters, b.Iters, a.Converged, b.Converged)
	}
	for i, f := range a.Fits {
		if math.Float64bits(f) != math.Float64bits(b.Fits[i]) {
			t.Fatalf("%s: fit %d differs: %v vs %v", tag, i, f, b.Fits[i])
		}
	}
	for q, l := range a.Lambda {
		if math.Float64bits(l) != math.Float64bits(b.Lambda[q]) {
			t.Fatalf("%s: lambda %d differs: %v vs %v", tag, q, l, b.Lambda[q])
		}
	}
	for m := range a.Factors {
		for i, v := range a.Factors[m].Data {
			if math.Float64bits(v) != math.Float64bits(b.Factors[m].Data[i]) {
				t.Fatalf("%s: factor %d element %d differs: %v vs %v",
					tag, m, i, v, b.Factors[m].Data[i])
			}
		}
	}
}

// TestCPALSOOCMatchesCPALSNOrder4 pins the end-to-end contract: a full
// CP-ALS decomposition streamed at a 25% working-set budget is
// bit-identical — fits, lambdas, factors — to the in-memory engine
// over the same tensor and grid (order 4 uses the generic N-mode
// executors in both paths).
func TestCPALSOOCMatchesCPALSNOrder4(t *testing.T) {
	dims := []int{9, 12, 7, 8}
	grid := []int{2, 3, 2, 2}
	x := randSparseN(11, dims, 800)
	stage := stageForTest(t, x, grid)
	man, err := ooc.LoadManifest(stage)
	if err != nil {
		t.Fatal(err)
	}
	opts := NOptions{Rank: 6, MaxIters: 10, Tol: 1e-12, Seed: 3,
		Kernel: nmode.Options{Grid: grid, Workers: 2}}
	want, err := CPALSN(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := ooc.Open(stage, ooc.Options{BudgetBytes: man.TotalBlockBytes() / 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	got, err := CPALSOOC(e, OOCOptions{Rank: 6, MaxIters: 10, Tol: 1e-12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "order4", want, got)
	// The product count must be one per (sweep, mode).
	for m := range dims {
		snap := e.Metrics(m).Snapshot()
		if snap.Runs != int64(got.Iters) {
			t.Fatalf("mode %d ran %d products for %d sweeps", m, snap.Runs, got.Iters)
		}
	}
}

// TestCPALSOOCMatchesGenericOrder3 pins the order-3 equivalence
// against the generic N-mode engine (the ooc path's in-memory
// comparator — the order-3 fast path is a different kernel family and
// is not expected to be bit-identical).
func TestCPALSOOCMatchesGenericOrder3(t *testing.T) {
	dims := []int{15, 11, 13}
	grid := []int{3, 2, 2}
	x := randSparseN(13, dims, 900)
	stage := stageForTest(t, x, grid)

	eng, err := engine.NewNEngineGeneric(x, nmode.Options{Grid: grid, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var normX float64
	for _, v := range x.Val {
		normX += v * v
	}
	cfg := als.Config{Rank: 5, MaxIters: 8, Tol: 1e-12, Seed: 9,
		NormX: math.Sqrt(normX), ErrPrefix: "cpd"}
	ares, err := als.Run(&nKernel{dims: x.Dims, eng: eng}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := &NResult{Lambda: ares.Lambda, Factors: ares.Factors, Fits: ares.Fits,
		Iters: ares.Iters, Converged: ares.Converged}

	e, err := ooc.Open(stage, ooc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	got, err := CPALSOOC(e, OOCOptions{Rank: 5, MaxIters: 8, Tol: 1e-12, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "order3", want, got)
}

func TestCPALSOOCValidation(t *testing.T) {
	x := randSparseN(17, []int{6, 6, 6}, 60)
	stage := stageForTest(t, x, []int{2, 2, 2})
	e, err := ooc.Open(stage, ooc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := CPALSOOC(e, OOCOptions{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	res, err := CPALSOOC(e, OOCOptions{Rank: 3, MaxIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 2 || len(res.Fits) != 2 {
		t.Fatalf("iters=%d fits=%d", res.Iters, len(res.Fits))
	}
}
