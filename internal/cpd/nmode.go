package cpd

import (
	"fmt"
	"math"

	"spblock/internal/als"
	"spblock/internal/engine"
	"spblock/internal/la"
	"spblock/internal/metrics"
	"spblock/internal/nmode"
)

// NOptions configures an order-N CP-ALS decomposition.
type NOptions struct {
	// Rank is the decomposition rank R. Required.
	Rank int
	// MaxIters bounds the ALS sweeps. Default 50.
	MaxIters int
	// Tol stops iteration when the fit improves by less than this.
	// Default 1e-5.
	Tol float64
	// Kernel configures the N-mode MTTKRP (rank strips, workers, MB
	// grid). Third-order inputs take the engine's order-3 fast path.
	Kernel nmode.Options
	// Seed drives the random factor initialisation.
	Seed int64
}

// NResult is a fitted order-N Kruskal tensor.
type NResult struct {
	Lambda    []float64
	Factors   []*la.Matrix
	Fits      []float64
	Iters     int
	Converged bool
	// Phases buckets the decomposition's wall time by phase (MTTKRP vs
	// solve vs fit) — see metrics.PhaseTimes.
	Phases metrics.PhaseTimes
}

// Fit returns the final fit, or 0 before any sweep ran.
func (r *NResult) Fit() float64 {
	if len(r.Fits) == 0 {
		return 0
	}
	return r.Fits[len(r.Fits)-1]
}

// nKernel adapts the order-N engine to the shared ALS core.
type nKernel struct {
	dims []int
	eng  *engine.NEngine
}

func (k *nKernel) Dims() []int { return k.dims }

func (k *nKernel) MTTKRP(mode int, factors []*la.Matrix, out *la.Matrix) error {
	return k.eng.Run(mode, factors, out)
}

// CPALSN decomposes an order-N sparse tensor with alternating least
// squares on the unified engine: one pooled mode-rooted executor per
// mode, built once per decomposition, with the sweep loop shared with
// CPALS via internal/als.
func CPALSN(t *nmode.Tensor, opts NOptions) (*NResult, error) {
	if opts.Rank <= 0 {
		return nil, fmt.Errorf("cpd: rank must be positive, got %d", opts.Rank)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if t.Order() < 2 {
		return nil, fmt.Errorf("cpd: CPALSN needs order >= 2")
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 50
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-5
	}

	eng, err := engine.NewNEngine(t, opts.Kernel)
	if err != nil {
		return nil, err
	}

	var normX float64
	for _, v := range t.Val {
		normX += v * v
	}
	ares, aerr := als.Run(&nKernel{dims: t.Dims, eng: eng}, als.Config{
		Rank:      opts.Rank,
		MaxIters:  opts.MaxIters,
		Tol:       opts.Tol,
		Seed:      opts.Seed,
		NormX:     math.Sqrt(normX),
		ErrPrefix: "cpd",
	})
	if ares == nil {
		return nil, aerr
	}
	return &NResult{
		Lambda:    ares.Lambda,
		Factors:   ares.Factors,
		Fits:      ares.Fits,
		Iters:     ares.Iters,
		Converged: ares.Converged,
		Phases:    ares.Phases,
	}, aerr
}
