package cpd

import (
	"fmt"
	"math"
	"math/rand"

	"spblock/internal/la"
	"spblock/internal/nmode"
)

// NOptions configures an order-N CP-ALS decomposition.
type NOptions struct {
	// Rank is the decomposition rank R. Required.
	Rank int
	// MaxIters bounds the ALS sweeps. Default 50.
	MaxIters int
	// Tol stops iteration when the fit improves by less than this.
	// Default 1e-5.
	Tol float64
	// Kernel configures the N-mode MTTKRP (rank strips, workers).
	Kernel nmode.Options
	// Seed drives the random factor initialisation.
	Seed int64
}

// NResult is a fitted order-N Kruskal tensor.
type NResult struct {
	Lambda    []float64
	Factors   []*la.Matrix
	Fits      []float64
	Iters     int
	Converged bool
}

// Fit returns the final fit, or 0 before any sweep ran.
func (r *NResult) Fit() float64 {
	if len(r.Fits) == 0 {
		return 0
	}
	return r.Fits[len(r.Fits)-1]
}

// CPALSN decomposes an order-N sparse tensor with alternating least
// squares, one CSF tree per mode (the higher-order generalisation the
// paper defers to the CSF work of Smith & Karypis).
func CPALSN(t *nmode.Tensor, opts NOptions) (*NResult, error) {
	if opts.Rank <= 0 {
		return nil, fmt.Errorf("cpd: rank must be positive, got %d", opts.Rank)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if t.Order() < 2 {
		return nil, fmt.Errorf("cpd: CPALSN needs order >= 2")
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 50
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-5
	}
	n := t.Order()
	r := opts.Rank

	trees := make([]*nmode.CSF, n)
	for mode := 0; mode < n; mode++ {
		c, err := nmode.Build(t, nmode.DefaultModeOrder(t.Dims, mode))
		if err != nil {
			return nil, err
		}
		trees[mode] = c
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	res := &NResult{
		Lambda:  make([]float64, r),
		Factors: make([]*la.Matrix, n),
	}
	grams := make([]*la.Matrix, n)
	for mode := 0; mode < n; mode++ {
		m := la.NewMatrix(t.Dims[mode], r)
		for i := range m.Data {
			m.Data[i] = rng.Float64()
		}
		res.Factors[mode] = m
		grams[mode] = la.Gram(m)
	}

	var normX float64
	for _, v := range t.Val {
		normX += v * v
	}
	normX = math.Sqrt(normX)

	outs := make([]*la.Matrix, n)
	for mode := 0; mode < n; mode++ {
		outs[mode] = la.NewMatrix(t.Dims[mode], r)
	}

	prevFit := 0.0
	for iter := 0; iter < opts.MaxIters; iter++ {
		for mode := 0; mode < n; mode++ {
			if err := nmode.MTTKRP(trees[mode], res.Factors, outs[mode], opts.Kernel); err != nil {
				return res, err
			}
			// V = hadamard of all other modes' Gram matrices.
			var v *la.Matrix
			for other := 0; other < n; other++ {
				if other == mode {
					continue
				}
				if v == nil {
					v = grams[other].Clone()
				} else {
					la.HadamardInPlace(v, grams[other])
				}
			}
			res.Factors[mode].CopyFrom(outs[mode])
			if err := la.SolveSPD(v, res.Factors[mode]); err != nil {
				return res, fmt.Errorf("cpd: mode-%d solve: %w", mode+1, err)
			}
			copy(res.Lambda, la.NormalizeColumns(res.Factors[mode]))
			for q := 0; q < r; q++ {
				if res.Lambda[q] == 0 {
					for i := 0; i < res.Factors[mode].Rows; i++ {
						res.Factors[mode].Set(i, q, rng.Float64())
					}
				}
			}
			grams[mode] = la.Gram(res.Factors[mode])
		}

		fit := computeFitN(normX, res, grams, outs[n-1])
		res.Fits = append(res.Fits, fit)
		res.Iters = iter + 1
		if iter > 0 && math.Abs(fit-prevFit) < opts.Tol {
			res.Converged = true
			break
		}
		prevFit = fit
	}
	return res, nil
}

// computeFitN generalises computeFit: ⟨X, M⟩ falls out of the last
// mode's MTTKRP against the (normalised) last factor and λ.
func computeFitN(normX float64, res *NResult, grams []*la.Matrix, lastMTTKRP *la.Matrix) float64 {
	r := len(res.Lambda)
	var gAll *la.Matrix
	for _, g := range grams {
		if gAll == nil {
			gAll = g.Clone()
		} else {
			la.HadamardInPlace(gAll, g)
		}
	}
	var normM2 float64
	for p := 0; p < r; p++ {
		row := gAll.Row(p)
		for q := 0; q < r; q++ {
			normM2 += res.Lambda[p] * res.Lambda[q] * row[q]
		}
	}
	if normM2 < 0 {
		normM2 = 0
	}
	var inner float64
	last := res.Factors[len(res.Factors)-1]
	for i := 0; i < last.Rows; i++ {
		frow, mrow := last.Row(i), lastMTTKRP.Row(i)
		for q := 0; q < r; q++ {
			inner += res.Lambda[q] * frow[q] * mrow[q]
		}
	}
	residual2 := normX*normX + normM2 - 2*inner
	if residual2 < 0 {
		residual2 = 0
	}
	if normX == 0 {
		return 1
	}
	return 1 - math.Sqrt(residual2)/normX
}
