package cpd

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"spblock/internal/core"
	"spblock/internal/engine"
	"spblock/internal/la"
	"spblock/internal/sched"
	"spblock/internal/tensor"
)

// plantedTensor builds a dense tensor that is exactly rank `r` (as a
// COO with every entry stored), so CP-ALS at that rank can reach fit ≈ 1.
func plantedTensor(seed int64, dims tensor.Dims, r int) *tensor.COO {
	rng := rand.New(rand.NewSource(seed))
	var f [3]*la.Matrix
	for n := 0; n < 3; n++ {
		f[n] = la.NewMatrix(dims[n], r)
		for i := range f[n].Data {
			f[n].Data[i] = rng.Float64() + 0.1
		}
	}
	t := tensor.NewCOO(dims, dims[0]*dims[1]*dims[2])
	for i := 0; i < dims[0]; i++ {
		for j := 0; j < dims[1]; j++ {
			for k := 0; k < dims[2]; k++ {
				var s float64
				for q := 0; q < r; q++ {
					s += f[0].At(i, q) * f[1].At(j, q) * f[2].At(k, q)
				}
				t.Append(tensor.Index(i), tensor.Index(j), tensor.Index(k), s)
			}
		}
	}
	return t
}

func TestOptionsValidation(t *testing.T) {
	x := plantedTensor(1, tensor.Dims{3, 3, 3}, 1)
	if _, err := CPALS(x, Options{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	bad := tensor.NewCOO(tensor.Dims{2, 2, 2}, 0)
	bad.Append(9, 0, 0, 1)
	if _, err := CPALS(bad, Options{Rank: 2}); err == nil {
		t.Fatal("invalid tensor accepted")
	}
}

func TestCPALSRecoversPlantedStructure(t *testing.T) {
	dims := tensor.Dims{8, 9, 10}
	x := plantedTensor(2, dims, 3)
	// ALS converges slowly near the optimum (the well-known "swamp"
	// behaviour), so give it plenty of sweeps.
	res, err := CPALS(x, Options{Rank: 3, MaxIters: 500, Tol: 1e-12, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit() < 0.999 {
		t.Fatalf("fit = %v, want > 0.999 for an exactly rank-3 tensor", res.Fit())
	}
	// Reconstruction must match the data.
	dense, err := ReconstructDense(res, dims)
	if err != nil {
		t.Fatal(err)
	}
	var maxDiff, maxVal float64
	for p := 0; p < x.NNZ(); p++ {
		idx := (int(x.I[p])*dims[1]+int(x.J[p]))*dims[2] + int(x.K[p])
		if d := math.Abs(dense[idx] - x.Val[p]); d > maxDiff {
			maxDiff = d
		}
		if v := math.Abs(x.Val[p]); v > maxVal {
			maxVal = v
		}
	}
	if maxDiff > 0.01*maxVal {
		t.Fatalf("reconstruction error %v exceeds 1%% of max %v", maxDiff, maxVal)
	}
}

func TestCPALSFitMonotonicallyImproves(t *testing.T) {
	// ALS is a monotone algorithm: the fit must never decrease by more
	// than numerical noise between sweeps.
	dims := tensor.Dims{10, 8, 12}
	x := plantedTensor(3, dims, 5)
	res, err := CPALS(x, Options{Rank: 4, MaxIters: 40, Tol: 1e-12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Fits); i++ {
		if res.Fits[i] < res.Fits[i-1]-1e-8 {
			t.Fatalf("fit decreased at sweep %d: %v -> %v", i, res.Fits[i-1], res.Fits[i])
		}
	}
}

func TestCPALSAllKernelsAgree(t *testing.T) {
	// The decomposition trajectory is a deterministic function of the
	// seed; since every kernel computes the same MTTKRP, all plans must
	// yield identical fits (up to float round-off from different
	// summation orders).
	dims := tensor.Dims{12, 10, 8}
	x := plantedTensor(4, dims, 3)
	plans := []core.Plan{
		{Method: core.MethodSPLATT, Workers: 1},
		{Method: core.MethodCOO},
		{Method: core.MethodRankB, RankBlockCols: 16, Workers: 1},
		{Method: core.MethodMB, Grid: [3]int{2, 2, 2}, Workers: 1},
		{Method: core.MethodMBRankB, Grid: [3]int{2, 2, 2}, RankBlockCols: 16, Workers: 2},
	}
	var fits []float64
	for _, p := range plans {
		res, err := CPALS(x, Options{Rank: 3, MaxIters: 15, Tol: 1e-12, Seed: 9, Plan: p})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		fits = append(fits, res.Fit())
	}
	for i := 1; i < len(fits); i++ {
		if math.Abs(fits[i]-fits[0]) > 1e-6 {
			t.Fatalf("plan %v fit %v differs from SPLATT fit %v", plans[i], fits[i], fits[0])
		}
	}
}

func TestCPALSConvergesAndStops(t *testing.T) {
	dims := tensor.Dims{6, 6, 6}
	x := plantedTensor(5, dims, 2)
	res, err := CPALS(x, Options{Rank: 2, MaxIters: 500, Tol: 1e-9, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d sweeps (fit %v)", res.Iters, res.Fit())
	}
	if res.Iters >= 500 {
		t.Fatal("converged flag set but all iterations used")
	}
	if len(res.Fits) != res.Iters {
		t.Fatalf("fits length %d != iters %d", len(res.Fits), res.Iters)
	}
}

func TestCPALSOnSparseTensor(t *testing.T) {
	// A genuinely sparse random tensor won't fit perfectly, but ALS
	// must run, improve, and stay finite.
	rng := rand.New(rand.NewSource(6))
	dims := tensor.Dims{30, 25, 20}
	x := tensor.NewCOO(dims, 500)
	for p := 0; p < 500; p++ {
		x.Append(
			tensor.Index(rng.Intn(dims[0])),
			tensor.Index(rng.Intn(dims[1])),
			tensor.Index(rng.Intn(dims[2])),
			rng.Float64()+0.5,
		)
	}
	x.Dedup()
	res, err := CPALS(x, Options{Rank: 8, MaxIters: 25, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fits) == 0 {
		t.Fatal("no sweeps ran")
	}
	for _, f := range res.Fits {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("non-finite fit %v", f)
		}
	}
	if res.Fit() <= 0 {
		t.Fatalf("final fit %v should be positive", res.Fit())
	}
	if res.Fit() < res.Fits[0]-1e-9 {
		t.Fatal("fit regressed from first sweep")
	}
}

func TestCPALSRankLargerThanModes(t *testing.T) {
	// Rank exceeding a mode length triggers rank-deficient normal
	// equations; the ridge fallback must keep ALS alive.
	x := plantedTensor(7, tensor.Dims{4, 5, 6}, 2)
	res, err := CPALS(x, Options{Rank: 8, MaxIters: 10, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Fits {
		if math.IsNaN(f) {
			t.Fatal("NaN fit with over-complete rank")
		}
	}
}

func TestReconstructDenseGuards(t *testing.T) {
	x := plantedTensor(8, tensor.Dims{4, 4, 4}, 2)
	res, err := CPALS(x, Options{Rank: 2, MaxIters: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReconstructDense(res, tensor.Dims{4000, 4000, 4000}); err == nil {
		t.Fatal("huge reconstruction accepted")
	}
	if _, err := ReconstructDense(res, tensor.Dims{5, 4, 4}); err == nil {
		t.Fatal("mismatched dims accepted")
	}
}

func TestLambdaPositiveAndSorted(t *testing.T) {
	x := plantedTensor(9, tensor.Dims{8, 8, 8}, 3)
	res, err := CPALS(x, Options{Rank: 3, MaxIters: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for q, l := range res.Lambda {
		if l < 0 || math.IsNaN(l) {
			t.Fatalf("lambda[%d] = %v", q, l)
		}
	}
	// Factor columns are unit norm after the final sweep.
	for n := 0; n < 3; n++ {
		norms := la.ColumnNorms(res.Factors[n])
		for q, v := range norms {
			if math.Abs(v-1) > 1e-8 && v != 0 {
				t.Fatalf("factor %d column %d norm %v, want 1", n, q, v)
			}
		}
	}
}

func TestMemoizedCPALSMatchesPlain(t *testing.T) {
	// Memoization rearranges arithmetic but computes the same sweep:
	// the fit trajectories must agree to float tolerance.
	dims := tensor.Dims{10, 9, 8}
	x := plantedTensor(11, dims, 3)
	plain, err := CPALS(x, Options{Rank: 3, MaxIters: 12, Tol: 1e-14, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	memoized, err := CPALS(x, Options{Rank: 3, MaxIters: 12, Tol: 1e-14, Seed: 21, Memoize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Fits) != len(memoized.Fits) {
		t.Fatalf("sweep counts differ: %d vs %d", len(plain.Fits), len(memoized.Fits))
	}
	for i := range plain.Fits {
		if math.Abs(plain.Fits[i]-memoized.Fits[i]) > 1e-8 {
			t.Fatalf("sweep %d: memoized fit %v vs plain %v", i, memoized.Fits[i], plain.Fits[i])
		}
	}
}

func TestMemoizedCPALSOnSparseTensor(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	dims := tensor.Dims{25, 20, 30}
	x := tensor.NewCOO(dims, 600)
	for p := 0; p < 600; p++ {
		x.Append(
			tensor.Index(rng.Intn(dims[0])),
			tensor.Index(rng.Intn(dims[1])),
			tensor.Index(rng.Intn(dims[2])),
			rng.Float64()+0.2,
		)
	}
	x.Dedup()
	res, err := CPALS(x, Options{Rank: 6, MaxIters: 15, Seed: 23, Memoize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit() <= 0 || math.IsNaN(res.Fit()) {
		t.Fatalf("memoized decomposition broken: fit=%v", res.Fit())
	}
}

// TestReplanFiresAndDecomposes forces the replan controller to its most
// trigger-happy setting (any observation >= 1.0 fires after one sweep)
// so the autotuner runs and the engine may be rebuilt mid-decomposition
// — and the decomposition still converges to the planted structure.
func TestReplanFiresAndDecomposes(t *testing.T) {
	dims := tensor.Dims{8, 9, 10}
	x := plantedTensor(5, dims, 2)
	res, err := CPALS(x, Options{
		Rank:             2,
		MaxIters:         60,
		Tol:              1e-10,
		Seed:             4,
		Plan:             core.Plan{Method: core.MethodSPLATT, Workers: 2},
		Replan:           true,
		MaxReplans:       1,
		ReplanController: sched.ControllerConfig{PromoteAbove: 1.0, Patience: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replans != 1 {
		t.Fatalf("Replans = %d, want exactly the MaxReplans budget of 1", res.Replans)
	}
	if res.Plan.Workers != 2 {
		t.Fatalf("replanned plan lost the worker count: %v", res.Plan)
	}
	if res.Fit() < 0.99 {
		t.Fatalf("replanned decomposition fit %v, want >= 0.99", res.Fit())
	}
}

// TestReplanQuietControllerNeverFires: with the default thresholds, a
// tiny balanced problem should never trip a replan — the plan the
// caller asked for is the plan the decomposition ends on.
func TestReplanQuietControllerNeverFires(t *testing.T) {
	x := plantedTensor(6, tensor.Dims{6, 6, 6}, 2)
	want := core.Plan{Method: core.MethodSPLATT, Grid: [3]int{1, 1, 1}, Workers: 1}
	res, err := CPALS(x, Options{Rank: 2, MaxIters: 10, Seed: 1, Plan: want, Replan: true})
	if err != nil {
		t.Fatal(err)
	}
	// A sequential executor always observes imbalance 1 < the default
	// PromoteAbove, so the controller cannot fire.
	if res.Replans != 0 {
		t.Fatalf("Replans = %d on a sequential run, want 0", res.Replans)
	}
	if res.Plan.String() != want.String() {
		t.Fatalf("plan changed without a replan: %v", res.Plan)
	}
}

func TestReplanRejectsMemoize(t *testing.T) {
	x := plantedTensor(7, tensor.Dims{4, 4, 4}, 1)
	if _, err := CPALS(x, Options{Rank: 2, Replan: true, Memoize: true}); err == nil {
		t.Fatal("Replan+Memoize accepted")
	}
}

// TestCPALSEngineMatchesCPALS pins the caller-supplied-engine path: the
// same tensor, seed and plan through a prebuilt engine must produce the
// bit-identical trajectory CPALS produces when it builds its own —
// the property that lets a serving cache substitute one for the other.
func TestCPALSEngineMatchesCPALS(t *testing.T) {
	x := plantedTensor(5, tensor.Dims{10, 9, 8}, 3)
	opts := Options{
		Rank: 3, MaxIters: 12, Tol: 1e-12, Seed: 7,
		Plan: core.Plan{Method: core.MethodMB, Grid: [3]int{2, 2, 2}},
	}
	want, err := CPALS(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.NewMultiModeExecutor(x, opts.Plan)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2; trial++ { // the engine is reusable across jobs
		got, err := CPALSEngine(x, eng, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Fits) != len(want.Fits) {
			t.Fatalf("trial %d: %d sweeps vs %d", trial, len(got.Fits), len(want.Fits))
		}
		for i := range got.Fits {
			if got.Fits[i] != want.Fits[i] {
				t.Fatalf("trial %d sweep %d: fit %v != %v", trial, i, got.Fits[i], want.Fits[i])
			}
		}
		for mode := 0; mode < 3; mode++ {
			for i, v := range got.Factors[mode].Data {
				if v != want.Factors[mode].Data[i] {
					t.Fatalf("trial %d: factor %d differs at %d", trial, mode, i)
				}
			}
		}
		if got.Plan.String() != want.Plan.String() {
			t.Fatalf("trial %d: plan %v vs %v", trial, got.Plan, want.Plan)
		}
	}
}

func TestCPALSEngineValidation(t *testing.T) {
	x := plantedTensor(5, tensor.Dims{6, 5, 4}, 2)
	eng, err := engine.NewMultiModeExecutor(x, core.Plan{Method: core.MethodSPLATT})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Rank: 2}
	if _, err := CPALSEngine(x, nil, opts); err == nil {
		t.Error("nil engine accepted")
	}
	bad := opts
	bad.Memoize = true
	if _, err := CPALSEngine(x, eng, bad); err == nil {
		t.Error("Memoize accepted")
	}
	bad = opts
	bad.Replan = true
	if _, err := CPALSEngine(x, eng, bad); err == nil {
		t.Error("Replan accepted")
	}
	other := plantedTensor(6, tensor.Dims{5, 5, 5}, 2)
	if _, err := CPALSEngine(other, eng, opts); err == nil {
		t.Error("dims mismatch accepted")
	}
	partial, err := engine.NewMultiModeExecutor(x, core.Plan{Method: core.MethodSPLATT}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CPALSEngine(x, partial, opts); err == nil {
		t.Error("engine missing mode 1 accepted")
	}
}

func TestCPALSCtxCanceled(t *testing.T) {
	x := plantedTensor(5, tensor.Dims{8, 7, 6}, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := CPALS(x, Options{Rank: 2, MaxIters: 20, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CPALS err = %v, want context.Canceled", err)
	}
	if res == nil || res.Iters != 0 {
		t.Fatalf("canceled CPALS ran sweeps: %+v", res)
	}
	eng, err := engine.NewMultiModeExecutor(x, core.Plan{Method: core.MethodSPLATT})
	if err != nil {
		t.Fatal(err)
	}
	res, err = CPALSEngine(x, eng, Options{Rank: 2, MaxIters: 20, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CPALSEngine err = %v, want context.Canceled", err)
	}
	if res == nil || res.Iters != 0 {
		t.Fatalf("canceled CPALSEngine ran sweeps: %+v", res)
	}
}
