package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spblock/internal/tensor"
)

func TestChunkValidation(t *testing.T) {
	if _, err := Chunk([]int64{1}, 0); err == nil {
		t.Fatal("parts 0 accepted")
	}
	if _, err := Chunk([]int64{-1}, 2); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestChunkUniform(t *testing.T) {
	w := make([]int64, 100)
	for i := range w {
		w[i] = 1
	}
	bounds, err := Chunk(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 25, 50, 75, 100}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", bounds, want)
		}
	}
}

func TestChunkSkewed(t *testing.T) {
	// One huge slice up front: the greedy rule gives it its own part
	// and rebalances the rest.
	w := []int64{1000, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	bounds, err := Chunk(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bounds[1] != 1 {
		t.Fatalf("first part should hold only the heavy slice, bounds = %v", bounds)
	}
	// Remaining 9 unit slices split into two parts of ~4/5.
	if bounds[2]-bounds[1] < 3 || bounds[2]-bounds[1] > 6 {
		t.Fatalf("middle part imbalanced: %v", bounds)
	}
}

func TestChunkMorePartsThanSlices(t *testing.T) {
	bounds, err := Chunk([]int64{5, 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bounds[0] != 0 || bounds[4] != 2 {
		t.Fatalf("bounds = %v", bounds)
	}
	for i := 1; i <= 4; i++ {
		if bounds[i] < bounds[i-1] {
			t.Fatalf("non-monotone bounds %v", bounds)
		}
	}
}

func TestChunkAllZeros(t *testing.T) {
	bounds, err := Chunk(make([]int64, 10), 3)
	if err != nil {
		t.Fatal(err)
	}
	if bounds[0] != 0 || bounds[3] != 10 {
		t.Fatalf("bounds = %v", bounds)
	}
}

// Property: bounds always cover [0, n] monotonically, and no part
// exceeds twice the ideal weight plus the heaviest single slice (the
// greedy guarantee).
func TestQuickChunkInvariants(t *testing.T) {
	f := func(seed int64, pp uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		parts := int(pp%8) + 1
		w := make([]int64, n)
		var total, maxW int64
		for i := range w {
			w[i] = int64(rng.Intn(50))
			total += w[i]
			if w[i] > maxW {
				maxW = w[i]
			}
		}
		bounds, err := Chunk(w, parts)
		if err != nil || len(bounds) != parts+1 {
			return false
		}
		if bounds[0] != 0 || bounds[parts] != n {
			return false
		}
		for i := 1; i <= parts; i++ {
			if bounds[i] < bounds[i-1] {
				return false
			}
		}
		ideal := total/int64(parts) + 1
		for i := 0; i < parts; i++ {
			var sum int64
			for x := bounds[i]; x < bounds[i+1]; x++ {
				sum += w[x]
			}
			if i < parts-1 && sum > ideal+maxW {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceWeights(t *testing.T) {
	x := tensor.NewCOO(tensor.Dims{3, 4, 5}, 0)
	x.Append(0, 1, 2, 1)
	x.Append(0, 3, 2, 1)
	x.Append(2, 1, 4, 1)
	w0, err := SliceWeights(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w0[0] != 2 || w0[1] != 0 || w0[2] != 1 {
		t.Fatalf("mode-0 weights = %v", w0)
	}
	w1, _ := SliceWeights(x, 1)
	if w1[1] != 2 || w1[3] != 1 {
		t.Fatalf("mode-1 weights = %v", w1)
	}
	w2, _ := SliceWeights(x, 2)
	if w2[2] != 2 || w2[4] != 1 {
		t.Fatalf("mode-2 weights = %v", w2)
	}
	if _, err := SliceWeights(x, 3); err == nil {
		t.Fatal("mode 3 accepted")
	}
}

func TestGrid3Shapes(t *testing.T) {
	// Netflix-like: nearly all parts go to the huge mode-1.
	g, err := Grid3(64, tensor.Dims{480000, 18000, 80})
	if err != nil {
		t.Fatal(err)
	}
	if g[0]*g[1]*g[2] != 64 {
		t.Fatalf("grid %v does not multiply to 64", g)
	}
	if g[0] < 16 {
		t.Fatalf("grid %v should put most parts on the 480K mode", g)
	}
	if g[2] > 2 {
		t.Fatalf("grid %v overpartitions the length-80 mode", g)
	}

	// Cubic tensor: balanced grid.
	g2, err := Grid3(64, tensor.Dims{30000, 30000, 30000})
	if err != nil {
		t.Fatal(err)
	}
	if g2 != [3]int{4, 4, 4} {
		t.Fatalf("cubic grid = %v, want 4x4x4", g2)
	}
}

func TestGrid3RespectsModeLengths(t *testing.T) {
	// p exceeds one mode: that mode cannot take more parts than length.
	g, err := Grid3(16, tensor.Dims{2, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if g[0] > 2 {
		t.Fatalf("grid %v exceeds mode length 2", g)
	}
	if g[0]*g[1]*g[2] != 16 {
		t.Fatalf("grid %v wrong product", g)
	}
	// Impossible: p larger than volume.
	if _, err := Grid3(1000, tensor.Dims{2, 2, 2}); err == nil {
		t.Fatal("impossible grid accepted")
	}
	if _, err := Grid3(0, tensor.Dims{2, 2, 2}); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestGrid3PrimeP(t *testing.T) {
	g, err := Grid3(7, tensor.Dims{100, 50, 10})
	if err != nil {
		t.Fatal(err)
	}
	if g[0]*g[1]*g[2] != 7 {
		t.Fatalf("grid %v", g)
	}
	if g[0] != 7 {
		t.Fatalf("grid %v should place the prime on the longest mode", g)
	}
}

func TestDivisors(t *testing.T) {
	got := Divisors(24)
	want := []int{1, 2, 3, 4, 6, 8, 12, 24}
	if len(got) != len(want) {
		t.Fatalf("divisors = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("divisors = %v, want %v", got, want)
		}
	}
	if d := Divisors(1); len(d) != 1 || d[0] != 1 {
		t.Fatalf("Divisors(1) = %v", d)
	}
}

func TestNewGrid4(t *testing.T) {
	g, err := NewGrid4(32, 4, 64, tensor.Dims{1000, 1000, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if g.RankParts != 4 || g.Inner[0]*g.Inner[1]*g.Inner[2] != 8 {
		t.Fatalf("grid = %+v", g)
	}
	if g.String() != "2x2x2x4" {
		t.Fatalf("String = %q", g.String())
	}
	if _, err := NewGrid4(32, 5, 64, tensor.Dims{10, 10, 10}); err == nil {
		t.Fatal("t not dividing p accepted")
	}
	if _, err := NewGrid4(32, 4, 66, tensor.Dims{10, 10, 10}); err == nil {
		t.Fatal("rank not divisible by t accepted")
	}
}

func TestRankStrips(t *testing.T) {
	b, err := RankStrips(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 16, 32, 48, 64}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("strips = %v", b)
		}
	}
	if _, err := RankStrips(64, 5); err == nil {
		t.Fatal("uneven strips accepted")
	}
	if _, err := RankStrips(64, 0); err == nil {
		t.Fatal("t=0 accepted")
	}
}
