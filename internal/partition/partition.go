// Package partition implements the data distribution machinery of the
// distributed experiments: the greedy nnz-balancing slice chunker of
// the medium-grained decomposition (Sec. VI-D, after Smith & Karypis),
// processor-grid factorisation for 3D grids, and the 4D rank-partitioned
// grid of the paper's contribution.
package partition

import (
	"fmt"
	"sort"

	"spblock/internal/tensor"
)

// Chunk partitions indices [0, n) (n = len(weights)) into at most
// `parts` contiguous ranges using the paper's greedy rule: "adding
// slices to a block until it has at least nnz/parts nonzeros". It
// returns parts+1 boundaries (some trailing ranges may be empty when
// the weights are very skewed).
func Chunk(weights []int64, parts int) ([]int, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("partition: parts must be positive, got %d", parts)
	}
	n := len(weights)
	var total int64
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("partition: negative weight")
		}
		total += w
	}
	bounds := make([]int, parts+1)
	remaining := total
	idx := 0
	for part := 0; part < parts-1; part++ {
		// Rebalance the target against what is actually left, so one
		// heavy early slice does not starve every later part.
		target := remaining / int64(parts-part)
		var acc int64
		for idx < n && acc < target {
			acc += weights[idx]
			idx++
		}
		bounds[part+1] = idx
		remaining -= acc
	}
	bounds[parts] = n
	return bounds, nil
}

// SliceWeights counts nonzeros per index of the given mode.
func SliceWeights(t *tensor.COO, mode int) ([]int64, error) {
	if mode < 0 || mode > 2 {
		return nil, fmt.Errorf("partition: mode %d out of range", mode)
	}
	w := make([]int64, t.Dims[mode])
	var coords []tensor.Index
	switch mode {
	case 0:
		coords = t.I
	case 1:
		coords = t.J
	default:
		coords = t.K
	}
	for _, c := range coords {
		w[c]++
	}
	return w, nil
}

// Grid3 factorises p into a q×r×s processor grid proportional to the
// mode lengths: the medium-grained decomposition's communication volume
// is Σ_m dims[m]/g[m]·R words per rank, which is minimised when g is
// proportional to the mode lengths (subject to q·r·s = p and
// g[m] <= dims[m]).
func Grid3(p int, dims tensor.Dims) ([3]int, error) {
	if p <= 0 {
		return [3]int{}, fmt.Errorf("partition: p must be positive, got %d", p)
	}
	if !dims.Valid() {
		return [3]int{}, fmt.Errorf("partition: invalid dims %v", dims)
	}
	best := [3]int{}
	bestCost := -1.0
	for _, g := range factorTriples(p) {
		// Try all assignments of the triple to the three modes.
		perms := [][3]int{
			{g[0], g[1], g[2]}, {g[0], g[2], g[1]},
			{g[1], g[0], g[2]}, {g[1], g[2], g[0]},
			{g[2], g[0], g[1]}, {g[2], g[1], g[0]},
		}
		for _, cand := range perms {
			if cand[0] > dims[0] || cand[1] > dims[1] || cand[2] > dims[2] {
				continue
			}
			cost := float64(dims[0])/float64(cand[0]) +
				float64(dims[1])/float64(cand[1]) +
				float64(dims[2])/float64(cand[2])
			if bestCost < 0 || cost < bestCost {
				best, bestCost = cand, cost
			}
		}
	}
	if bestCost < 0 {
		return [3]int{}, fmt.Errorf("partition: no valid 3D grid for p=%d and dims %v", p, dims)
	}
	return best, nil
}

// factorTriples enumerates unordered triples (a, b, c) with a·b·c = p.
func factorTriples(p int) [][3]int {
	var out [][3]int
	for a := 1; a*a*a <= p; a++ {
		if p%a != 0 {
			continue
		}
		pa := p / a
		for b := a; b*b <= pa; b++ {
			if pa%b != 0 {
				continue
			}
			out = append(out, [3]int{a, b, pa / b})
		}
	}
	return out
}

// Divisors returns the positive divisors of p in increasing order.
func Divisors(p int) []int {
	var d []int
	for i := 1; i*i <= p; i++ {
		if p%i == 0 {
			d = append(d, i)
			if i != p/i {
				d = append(d, p/i)
			}
		}
	}
	sort.Ints(d)
	return d
}

// Grid4 describes the paper's 4D partitioning: t rank-groups, each an
// inner q'×r'×s' grid over a full tensor replica working on R/t factor
// columns.
type Grid4 struct {
	Inner     [3]int
	RankParts int
}

func (g Grid4) String() string {
	return fmt.Sprintf("%dx%dx%dx%d", g.Inner[0], g.Inner[1], g.Inner[2], g.RankParts)
}

// NewGrid4 builds the 4D grid for p processors with t rank parts:
// p must be divisible by t, and the rank R must split into t
// register-width-friendly parts.
func NewGrid4(p, t, rank int, dims tensor.Dims) (Grid4, error) {
	if t <= 0 || p%t != 0 {
		return Grid4{}, fmt.Errorf("partition: rank parts %d must divide p=%d", t, p)
	}
	if rank%t != 0 {
		return Grid4{}, fmt.Errorf("partition: rank %d not divisible by %d rank parts", rank, t)
	}
	inner, err := Grid3(p/t, dims)
	if err != nil {
		return Grid4{}, err
	}
	return Grid4{Inner: inner, RankParts: t}, nil
}

// RankStrips splits R columns into t equal strips, returning boundaries.
func RankStrips(rank, t int) ([]int, error) {
	if t <= 0 || rank%t != 0 {
		return nil, fmt.Errorf("partition: cannot split rank %d into %d strips", rank, t)
	}
	bounds := make([]int, t+1)
	for i := 0; i <= t; i++ {
		bounds[i] = i * (rank / t)
	}
	return bounds, nil
}
