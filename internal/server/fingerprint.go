// Package server implements spblockd, a long-running decomposition
// service over the library's execution stack: clients upload .tns
// tensors and submit MTTKRP / CP-ALS / CP-APR jobs against them over
// HTTP. Its core is an executor cache keyed by tensor fingerprint —
// the whole-engine generalisation of internal/memo's storage-for-time
// trade: the expensive per-mode preprocessing (permutation, CSF and
// block builds, workspace sizing) is paid once per distinct tensor and
// reused by every job any tenant submits for it, with exclusive leases
// serialising jobs on one stack because pooled workspaces are
// single-Run by contract (see internal/core).
//
// Admission control is two-layered: a bounded worker pool caps the
// process-wide decomposition concurrency (excess jobs queue), and a
// per-tenant in-flight quota rejects tenants that would monopolise the
// pool (HTTP 429). Jobs are cancellable mid-sweep: the request context
// — bounded by an optional per-job timeout — threads through the
// CP-ALS / CP-APR loops, which check it between mode products.
package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"

	"spblock/internal/tensor"
)

// Fingerprint returns a content hash identifying t up to nonzero
// storage order: the sha256 of the dims and the (i, j, k, value)
// stream in canonical coordinate order. Two uploads of the same
// logical tensor — however their lines were ordered — map to the same
// cache entry, while any changed value, coordinate or mode length maps
// elsewhere. The tensor is not mutated (the canonical order is
// realised through an index permutation, not a sort of t itself);
// callers should Dedup first so duplicate coordinates cannot make the
// canonical order ambiguous.
func Fingerprint(t *tensor.COO) string {
	n := t.NNZ()
	perm := make([]int, n)
	for p := range perm {
		perm[p] = p
	}
	sort.Slice(perm, func(a, b int) bool {
		pa, pb := perm[a], perm[b]
		if t.I[pa] != t.I[pb] {
			return t.I[pa] < t.I[pb]
		}
		if t.J[pa] != t.J[pb] {
			return t.J[pa] < t.J[pb]
		}
		return t.K[pa] < t.K[pb]
	})
	h := sha256.New()
	var buf [24]byte
	for m := 0; m < 3; m++ {
		binary.LittleEndian.PutUint64(buf[m*8:], uint64(t.Dims[m]))
	}
	h.Write(buf[:24])
	for _, p := range perm {
		binary.LittleEndian.PutUint32(buf[0:], uint32(t.I[p]))
		binary.LittleEndian.PutUint32(buf[4:], uint32(t.J[p]))
		binary.LittleEndian.PutUint32(buf[8:], uint32(t.K[p]))
		binary.LittleEndian.PutUint64(buf[12:], math.Float64bits(t.Val[p]))
		h.Write(buf[:20])
	}
	return hex.EncodeToString(h.Sum(nil))
}
