package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"spblock/internal/cpapr"
	"spblock/internal/cpd"
	"spblock/internal/la"
	"spblock/internal/metrics"
	"spblock/internal/tensor"
)

// Options configures a Server.
type Options struct {
	// Cache configures the executor cache (byte budget, kernel plan).
	Cache CacheConfig
	// MaxConcurrent bounds how many jobs run at once across all
	// tenants; excess jobs queue until a slot frees or their context
	// is done. Default: GOMAXPROCS.
	MaxConcurrent int
	// TenantQuota bounds one tenant's in-flight (running or queued)
	// jobs; requests over it are rejected with 429 immediately rather
	// than queued, so one tenant cannot occupy the whole admission
	// queue. Default: MaxConcurrent.
	TenantQuota int
	// MaxUploadBytes bounds a tensor upload body. Default 64 MiB.
	MaxUploadBytes int64
}

// Server is the spblockd HTTP service: tensor uploads, decomposition
// jobs against cached executor stacks, and a metrics scrape.
type Server struct {
	opts  Options
	cache *Cache
	sem   chan struct{}

	mu       sync.Mutex
	inflight map[string]int

	jobsDone     int64
	jobsFailed   int64
	jobsCanceled int64
	jobsRejected int64
}

// New builds a Server with opts' defaults applied.
func New(opts Options) *Server {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if opts.TenantQuota <= 0 {
		opts.TenantQuota = opts.MaxConcurrent
	}
	if opts.MaxUploadBytes <= 0 {
		opts.MaxUploadBytes = 64 << 20
	}
	return &Server{
		opts:     opts,
		cache:    NewCache(opts.Cache),
		sem:      make(chan struct{}, opts.MaxConcurrent),
		inflight: make(map[string]int),
	}
}

// Handler returns the service's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/tensors", s.handleUpload)
	mux.HandleFunc("/jobs", s.handleJob)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)}); err != nil {
		return // client went away; nothing useful left to do
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return // client went away mid-response
	}
}

// uploadResponse is the body of a successful POST /tensors.
type uploadResponse struct {
	Fingerprint string `json:"fingerprint"`
	Dims        [3]int `json:"dims"`
	NNZ         int    `json:"nnz"`
	Cached      bool   `json:"cached"`
}

// handleUpload ingests a FROSTT .tns body, dedups it and registers it
// in the executor cache under its content fingerprint.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a .tns body to /tensors")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	t, err := tensor.ReadTNS(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parsing tensor: %v", err)
		return
	}
	t.Dedup()
	e, existed := s.cache.Put(t)
	writeJSON(w, uploadResponse{
		Fingerprint: e.Fingerprint(),
		Dims:        e.Tensor().Dims,
		NNZ:         e.Tensor().NNZ(),
		Cached:      existed,
	})
}

// jobRequest is the body of POST /jobs.
type jobRequest struct {
	// Fingerprint names the uploaded tensor to operate on.
	Fingerprint string `json:"fingerprint"`
	// Kind is "mttkrp", "cpals" or "cpapr".
	Kind string `json:"kind"`
	// Rank is the decomposition (or factor) rank. Required.
	Rank int `json:"rank"`
	// MaxIters / Tol / Seed parameterise the decomposition kinds.
	MaxIters int     `json:"maxIters,omitempty"`
	Tol      float64 `json:"tol,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	// Reps is the mttkrp kind's repetition count (default 1).
	Reps int `json:"reps,omitempty"`
	// Workers, when positive, re-sizes the cached stack's parallelism
	// for this job only; jobs that leave it unset run at the plan's
	// worker count regardless of what earlier jobs asked for. mttkrp
	// and cpals only.
	Workers int `json:"workers,omitempty"`
	// TimeoutMs bounds the job's wall time; on expiry the job is
	// canceled between mode products and 504 is returned.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// jobResponse is the body of a successful POST /jobs.
type jobResponse struct {
	Fingerprint string `json:"fingerprint"`
	Kind        string `json:"kind"`
	Tenant      string `json:"tenant"`
	// ElapsedMs is the job's service time (not counting queueing).
	ElapsedMs float64 `json:"elapsedMs"`

	// CP-ALS / CP-APR fields.
	Iters     int     `json:"iters,omitempty"`
	Converged bool    `json:"converged,omitempty"`
	Fit       float64 `json:"fit,omitempty"`
	FinalKL   float64 `json:"finalKL,omitempty"`
	Plan      string  `json:"plan,omitempty"`

	// MTTKRP fields.
	Reps     int                `json:"reps,omitempty"`
	ModeSnap []metrics.Snapshot `json:"modeSnapshots,omitempty"`
}

// tenantOf extracts the caller's tenant identity.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// admit reserves one of tenant's quota slots, or reports rejection.
func (s *Server) admit(tenant string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[tenant] >= s.opts.TenantQuota {
		s.jobsRejected++
		return false
	}
	s.inflight[tenant]++
	return true
}

func (s *Server) done(tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight[tenant]--
	if s.inflight[tenant] == 0 {
		delete(s.inflight, tenant)
	}
}

func (s *Server) countOutcome(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		s.jobsDone++
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.jobsCanceled++
	default:
		s.jobsFailed++
	}
}

// handleJob admits, schedules and runs one decomposition job
// synchronously: the response is the job's result, and closing the
// request (or exceeding timeoutMs) cancels the job between mode
// products.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a job description to /jobs")
		return
	}
	var req jobRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "parsing job: %v", err)
		return
	}
	if req.Rank <= 0 {
		httpError(w, http.StatusBadRequest, "rank must be positive, got %d", req.Rank)
		return
	}
	switch req.Kind {
	case "mttkrp", "cpals", "cpapr":
	default:
		httpError(w, http.StatusBadRequest, "unknown job kind %q (want mttkrp, cpals or cpapr)", req.Kind)
		return
	}

	tenant := tenantOf(r)
	if !s.admit(tenant) {
		httpError(w, http.StatusTooManyRequests, "tenant %q is at its quota of %d in-flight jobs", tenant, s.opts.TenantQuota)
		return
	}
	defer s.done(tenant)

	ctx := r.Context()
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}

	// Worker-pool admission: queue for a slot, bounded by the job's
	// own context so an impatient client stops occupying the queue.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.countOutcome(ctx.Err())
		httpError(w, statusFor(ctx.Err()), "canceled while queued: %v", ctx.Err())
		return
	}
	defer func() { <-s.sem }()

	entry, ok := s.cache.Get(req.Fingerprint)
	if !ok {
		httpError(w, http.StatusNotFound, "no tensor with fingerprint %q (upload it to /tensors first)", req.Fingerprint)
		return
	}
	if err := entry.Acquire(ctx); err != nil {
		s.countOutcome(err)
		httpError(w, statusFor(err), "canceled while waiting for the tensor's executor lease: %v", err)
		return
	}
	defer entry.Release()

	start := time.Now()
	resp, err := s.runJob(ctx, entry, req)
	entry.publish(metrics.CommStats{})
	s.countOutcome(err)
	if err != nil {
		httpError(w, statusFor(err), "%s job on %.12s: %v", req.Kind, req.Fingerprint, err)
		return
	}
	resp.Fingerprint = req.Fingerprint
	resp.Kind = req.Kind
	resp.Tenant = tenant
	resp.ElapsedMs = float64(time.Since(start).Microseconds()) / 1e3
	writeJSON(w, resp)
}

// statusFor maps job errors onto HTTP statuses: deadline → 504,
// client cancel → 499 (nginx's convention; Go has no named constant),
// anything else → 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// runJob executes one job under the entry's lease.
func (s *Server) runJob(ctx context.Context, entry *Entry, req jobRequest) (*jobResponse, error) {
	switch req.Kind {
	case "mttkrp":
		return s.runMTTKRP(ctx, entry, req)
	case "cpals":
		eng, err := s.cache.Executor(entry)
		if err != nil {
			return nil, err
		}
		if err := entry.applyWorkers(req.Workers); err != nil {
			return nil, err
		}
		res, err := cpd.CPALSEngine(entry.Tensor(), eng, cpd.Options{
			Rank:     req.Rank,
			MaxIters: req.MaxIters,
			Tol:      req.Tol,
			Seed:     req.Seed,
			Ctx:      ctx,
		})
		if err != nil {
			return nil, err
		}
		return &jobResponse{
			Iters:     res.Iters,
			Converged: res.Converged,
			Fit:       res.Fit(),
			Plan:      res.Plan.String(),
		}, nil
	case "cpapr":
		res, err := cpapr.Decompose(entry.Tensor(), cpapr.Options{
			Rank:     req.Rank,
			MaxIters: req.MaxIters,
			Tol:      req.Tol,
			Seed:     req.Seed,
			Workers:  req.Workers,
			Ctx:      ctx,
		})
		if err != nil {
			return nil, err
		}
		return &jobResponse{
			Iters:     res.Iters,
			Converged: res.Converged,
			FinalKL:   res.FinalKL(),
		}, nil
	}
	return nil, fmt.Errorf("unknown job kind %q", req.Kind)
}

// runMTTKRP runs req.Reps repetitions of all three mode products with
// seeded random factors — the service face of the benchmark driver.
func (s *Server) runMTTKRP(ctx context.Context, entry *Entry, req jobRequest) (*jobResponse, error) {
	eng, err := s.cache.Executor(entry)
	if err != nil {
		return nil, err
	}
	if err := entry.applyWorkers(req.Workers); err != nil {
		return nil, err
	}
	reps := req.Reps
	if reps <= 0 {
		reps = 1
	}
	dims := entry.Tensor().Dims
	rng := rand.New(rand.NewSource(req.Seed))
	var factors [3]*la.Matrix
	var outs [3]*la.Matrix
	for m := 0; m < 3; m++ {
		factors[m] = la.NewMatrix(dims[m], req.Rank)
		for i := range factors[m].Data {
			factors[m].Data[i] = rng.Float64()
		}
		outs[m] = la.NewMatrix(dims[m], req.Rank)
	}
	for rep := 0; rep < reps; rep++ {
		for mode := 0; mode < 3; mode++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("canceled before rep %d mode-%d product: %w", rep+1, mode+1, err)
			}
			if err := eng.Run(mode, factors, outs[mode]); err != nil {
				return nil, err
			}
		}
	}
	snaps := make([]metrics.Snapshot, 3)
	for mode := 0; mode < 3; mode++ {
		met, err := eng.Metrics(mode)
		if err != nil {
			return nil, err
		}
		snaps[mode] = met.Snapshot()
	}
	return &jobResponse{Reps: reps, ModeSnap: snaps}, nil
}

// handleMetrics serves the Prometheus-style text scrape: server-level
// job and cache counters plus every cached entry's published per-mode
// executor snapshots and communication stats. Entries are reported
// from their published copies — the scrape never touches an executor,
// so it cannot race a running job.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	entries := s.cache.Snapshot()
	sort.Slice(entries, func(a, b int) bool { return entries[a].Fingerprint < entries[b].Fingerprint })

	s.mu.Lock()
	done, failed, canceled, rejected := s.jobsDone, s.jobsFailed, s.jobsCanceled, s.jobsRejected
	tenants := make(map[string]int, len(s.inflight))
	for t, n := range s.inflight {
		tenants[t] = n
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("spblockd_jobs_total{outcome=\"done\"} %d\n", done)
	p("spblockd_jobs_total{outcome=\"failed\"} %d\n", failed)
	p("spblockd_jobs_total{outcome=\"canceled\"} %d\n", canceled)
	p("spblockd_jobs_total{outcome=\"rejected\"} %d\n", rejected)
	names := make([]string, 0, len(tenants))
	for t := range tenants {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, t := range names {
		p("spblockd_tenant_inflight{tenant=%q} %d\n", t, tenants[t])
	}
	p("spblockd_cache_entries %d\n", cs.Entries)
	p("spblockd_cache_bytes %d\n", cs.Bytes)
	p("spblockd_cache_hits_total %d\n", cs.Hits)
	p("spblockd_cache_misses_total %d\n", cs.Misses)
	p("spblockd_executor_builds_total %d\n", cs.Builds)
	p("spblockd_cache_evictions_total %d\n", cs.Evictions)

	for _, e := range entries {
		fp := e.Fingerprint[:12]
		p("spblockd_entry_bytes{fp=%q} %d\n", fp, e.Bytes)
		p("spblockd_entry_nnz{fp=%q} %d\n", fp, e.NNZ)
		p("spblockd_entry_jobs_total{fp=%q} %d\n", fp, e.Jobs)
		p("spblockd_entry_leases_total{fp=%q} %d\n", fp, e.Leases)
		built := 0
		if e.Built {
			built = 1
		}
		p("spblockd_entry_executor_built{fp=%q} %d\n", fp, built)
		for mode, snap := range e.Snaps {
			if snap.Runs == 0 {
				continue
			}
			p("spblockd_mode_runs_total{fp=%q,mode=\"%d\"} %d\n", fp, mode, snap.Runs)
			p("spblockd_mode_wall_ns_total{fp=%q,mode=\"%d\"} %d\n", fp, mode, snap.WallNS)
			p("spblockd_mode_nnz_total{fp=%q,mode=\"%d\"} %d\n", fp, mode, snap.NNZ)
			p("spblockd_mode_steals_total{fp=%q,mode=\"%d\"} %d\n", fp, mode, snap.Steals())
			if snap.Sched != "" {
				p("spblockd_mode_sched{fp=%q,mode=\"%d\",sched=%q} 1\n", fp, mode, snap.Sched)
			}
		}
		p("spblockd_comm_retries_total{fp=%q} %d\n", fp, e.Comm.Retries)
		p("spblockd_comm_timeouts_total{fp=%q} %d\n", fp, e.Comm.Timeouts)
		p("spblockd_comm_sweep_retries_total{fp=%q} %d\n", fp, e.Comm.SweepRetries)
	}
}
