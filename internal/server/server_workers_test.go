package server

import (
	"testing"

	"spblock/internal/core"
)

// TestWorkerCountDoesNotBleedAcrossJobs pins per-job worker
// resolution on a shared cached stack: a job that names a Workers
// count gets it, and the next job that leaves Workers unset runs at
// the plan's count — it must not inherit the previous job's resize
// through the cached executor.
func TestWorkerCountDoesNotBleedAcrossJobs(t *testing.T) {
	_, ts, fp := newTestServer(t, Options{
		Cache: CacheConfig{Plan: core.Plan{Method: core.MethodSPLATT, Workers: 2}},
	})
	run := func(workers int) []int {
		t.Helper()
		code, jr, raw := postJob(t, ts.URL, "", jobRequest{
			Fingerprint: fp, Kind: "mttkrp", Rank: 8, Workers: workers,
		})
		if code != 200 {
			t.Fatalf("mttkrp job (workers=%d) failed: %d %s", workers, code, raw)
		}
		counts := make([]int, len(jr.ModeSnap))
		for m, snap := range jr.ModeSnap {
			counts[m] = len(snap.WorkerNS)
		}
		return counts
	}

	for m, n := range run(3) {
		if n != 3 {
			t.Fatalf("job asking for 3 workers ran mode %d with %d", m, n)
		}
	}
	for m, n := range run(0) {
		if n != 2 {
			t.Fatalf("job with Workers unset ran mode %d with %d workers; the previous job's resize bled through (plan says 2)", m, n)
		}
	}
	// A repeat of the plan's count must not pay a SetWorkers rebuild —
	// the stack is already at 2 — and still reports 2.
	for m, n := range run(2) {
		if n != 2 {
			t.Fatalf("job asking for the plan's 2 workers ran mode %d with %d", m, n)
		}
	}
}
