package server

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"spblock/internal/core"
	"spblock/internal/engine"
	"spblock/internal/metrics"
	"spblock/internal/tensor"
)

// Entry is one cached tensor plus its lazily built multi-mode executor
// stack. The executor and the per-entry statistics are owned by the
// lease holder: a job acquires the lease for its whole run (workspaces
// are single-Run by contract), mutates freely, and publishes its
// statistics under mu before releasing, so /metrics never observes a
// stack mid-Run.
type Entry struct {
	fp string
	t  *tensor.COO

	// lease is the exclusivity token: buffered capacity 1, full while
	// a job owns the entry. Acquisition is context-cancellable.
	lease chan struct{}

	// eng is built on first use under the lease (nil until then).
	eng  *engine.MultiModeExecutor
	plan core.Plan
	// workers is the stack's currently applied parallelism, owned by
	// the lease holder like eng. It starts at the plan's value (what
	// the build uses) and lets each job restore its own resolved count
	// without paying a SetWorkers rebuild when nothing changed.
	workers int

	// mu guards everything below — the published statistics side of
	// the entry, written by lease holders at job end and read by the
	// /metrics scrape without touching the executor.
	mu      sync.Mutex
	built   bool
	bytes   int64
	lastUse uint64
	jobs    int64
	leases  int64
	// pending counts Get handouts that have not yet been leased. An
	// entry with pending > 0 is pinned against eviction: evicting it
	// would orphan the caller's reference, and a later Executor build
	// on the orphan would charge bytes the cache can never reclaim.
	pending int
	snaps   [3]metrics.Snapshot
	comm    metrics.CommStats
}

// Fingerprint returns the entry's cache key.
func (e *Entry) Fingerprint() string { return e.fp }

// Tensor returns the cached tensor. It is immutable once cached.
func (e *Entry) Tensor() *tensor.COO { return e.t }

// Acquire takes the entry's exclusive lease, waiting until the current
// holder releases it or ctx is done. Either way the Get pin is
// consumed: a caller that gives up on the lease no longer holds a
// reference the cache needs to protect.
func (e *Entry) Acquire(ctx context.Context) error {
	select {
	case e.lease <- struct{}{}:
	default:
		select {
		case e.lease <- struct{}{}:
		case <-ctx.Done():
			e.unpin()
			return ctx.Err()
		}
	}
	e.mu.Lock()
	e.leases++
	e.mu.Unlock()
	e.unpin()
	return nil
}

// unpin consumes one Get pin, saturating at zero so Acquire after a
// bare Put (no Get) stays balanced.
func (e *Entry) unpin() {
	e.mu.Lock()
	if e.pending > 0 {
		e.pending--
	}
	e.mu.Unlock()
}

// pinned reads the handout pin under mu.
func (e *Entry) pinned() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pending > 0
}

// tryAcquire takes the lease only if it is free (the eviction probe).
func (e *Entry) tryAcquire() bool {
	select {
	case e.lease <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns the lease. Only the current holder may call it.
func (e *Entry) Release() { <-e.lease }

// publish records a finished job's observable state: per-mode metric
// snapshots from the (possibly just built) executor and any
// communication/fault counters the job reported. Must be called by the
// lease holder, after the job's last Run — the snapshot is taken here,
// under exclusivity, precisely so the scrape path never has to.
func (e *Entry) publish(comm metrics.CommStats) {
	var snaps [3]metrics.Snapshot
	if e.eng != nil {
		for mode := 0; mode < 3; mode++ {
			if met, err := e.eng.Metrics(mode); err == nil {
				snaps[mode] = met.Snapshot()
			}
		}
	}
	e.mu.Lock()
	e.jobs++
	if e.eng != nil {
		e.snaps = snaps
	}
	e.comm.Merge(comm)
	e.mu.Unlock()
}

// EntryStats is the scrape-side copy of an entry's published state.
type EntryStats struct {
	Fingerprint string
	Dims        tensor.Dims
	NNZ         int
	Bytes       int64
	Jobs        int64
	Leases      int64
	Built       bool
	Snaps       [3]metrics.Snapshot
	Comm        metrics.CommStats
}

// Stats copies the published statistics out under mu.
func (e *Entry) Stats() EntryStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EntryStats{
		Fingerprint: e.fp,
		Dims:        e.t.Dims,
		NNZ:         e.t.NNZ(),
		Bytes:       e.bytes,
		Jobs:        e.jobs,
		Leases:      e.leases,
		Built:       e.built,
		Snaps:       e.snaps,
		Comm:        e.comm,
	}
}

// CacheConfig parameterises the executor cache.
type CacheConfig struct {
	// MaxBytes is the byte budget over cached tensors plus built
	// executor structures. When an insert or build pushes the total
	// over it, least-recently-used unleased entries are evicted until
	// the total fits (or only leased entries remain — the budget is a
	// target, never a reason to tear a stack out from under a job).
	// 0 means unlimited.
	MaxBytes int64
	// Plan is the kernel plan executor stacks are built with.
	Plan core.Plan
}

// CacheStats is a point-in-time copy of the cache's counters.
type CacheStats struct {
	Entries   int
	Bytes     int64
	Hits      int64
	Misses    int64
	Builds    int64
	Evictions int64
}

// Cache is the fingerprint-keyed executor cache. The map and the
// counters are guarded by mu; the entries themselves are guarded by
// their leases (executor side) and their own mutexes (stats side), so
// holding a lease across a long decomposition never blocks the cache.
type Cache struct {
	cfg CacheConfig

	mu      sync.Mutex
	tick    uint64
	total   int64
	entries map[string]*Entry

	hits      int64
	misses    int64
	builds    int64
	evictions int64
}

// NewCache builds an empty cache.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.Plan.Grid == ([3]int{}) {
		cfg.Plan.Grid = [3]int{1, 1, 1}
	}
	return &Cache{cfg: cfg, entries: make(map[string]*Entry)}
}

// tensorBytes estimates a COO tensor's resident footprint.
func tensorBytes(t *tensor.COO) int64 {
	return int64(t.NNZ()) * (3*4 + 8)
}

// Put inserts t under its fingerprint, or returns the existing entry
// when the same logical tensor is already cached (the upload-side
// dedup). The caller must have Validated and Deduped t.
func (c *Cache) Put(t *tensor.COO) (e *Entry, existed bool) {
	fp := Fingerprint(t)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[fp]; ok {
		c.touchLocked(e)
		return e, true
	}
	e = &Entry{fp: fp, t: t, lease: make(chan struct{}, 1), plan: c.cfg.Plan, workers: c.cfg.Plan.Workers}
	e.bytes = tensorBytes(t)
	c.entries[fp] = e
	c.total += e.bytes
	c.touchLocked(e)
	c.evictLocked(e)
	return e, false
}

// Get looks a fingerprint up, counting the job-side hit or miss. The
// returned entry is pinned against eviction until the caller's next
// Acquire resolves (successfully or not): the handout window between
// Get and Acquire is lease-free, and evicting during it would leave
// the caller holding an entry the cache has already forgotten.
func (c *Cache) Get(fp string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[fp]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.touchLocked(e)
	e.mu.Lock()
	e.pending++
	e.mu.Unlock()
	return e, true
}

// Executor returns the entry's multi-mode stack, building all three
// mode executors on first use and charging the build against the byte
// budget. The caller must hold the entry's lease.
func (c *Cache) Executor(e *Entry) (*engine.MultiModeExecutor, error) {
	if e.eng != nil {
		return e.eng, nil
	}
	eng, err := engine.NewMultiModeExecutor(e.t, e.plan)
	if err != nil {
		return nil, fmt.Errorf("server: building executors for %s: %w", e.fp[:12], err)
	}
	e.eng = eng
	delta := eng.MemoryBytes()
	e.mu.Lock()
	e.built = true
	e.bytes += delta
	e.mu.Unlock()
	c.mu.Lock()
	c.builds++
	// Only charge the build if the entry is still the cache's: an entry
	// evicted between handout and build is an orphan whose bytes were
	// already deducted, and charging it would inflate the budget with
	// bytes no future eviction can recover.
	if c.entries[e.fp] == e {
		c.total += delta
		c.evictLocked(e)
	}
	c.mu.Unlock()
	return eng, nil
}

// applyWorkers resolves a job's parallelism — the request's count when
// positive, the plan's otherwise — and applies it to the built stack
// only when it differs from what the previous lease holder left
// behind. A job that does not name a count must not inherit the
// previous job's resize: the plan's count is the entry's baseline, and
// restoring it here is what keeps one client's Workers knob from
// bleeding into the next client's job. Must be called by the lease
// holder, after the stack is built.
func (e *Entry) applyWorkers(requested int) error {
	w := requested
	if w <= 0 {
		w = e.plan.Workers
	}
	if w == e.workers {
		return nil
	}
	if err := e.eng.SetWorkers(w); err != nil {
		return err
	}
	e.workers = w
	return nil
}

// touchLocked bumps e's LRU clock. Caller holds c.mu.
func (c *Cache) touchLocked(e *Entry) {
	c.tick++
	e.mu.Lock()
	e.lastUse = c.tick
	e.mu.Unlock()
}

// evictLocked drops least-recently-used entries until the budget fits,
// never touching `keep` or any entry whose lease a job holds — the
// budget is a target, not a license to tear a stack out from under a
// running decomposition. When only leased entries remain, the cache
// stays over budget until they release. Caller holds c.mu.
func (c *Cache) evictLocked(keep *Entry) {
	if c.cfg.MaxBytes <= 0 {
		return
	}
	for c.total > c.cfg.MaxBytes {
		candidates := make([]*Entry, 0, len(c.entries))
		for _, e := range c.entries {
			if e != keep {
				candidates = append(candidates, e)
			}
		}
		sort.Slice(candidates, func(a, b int) bool {
			return candidates[a].use() < candidates[b].use()
		})
		evicted := false
		for _, victim := range candidates {
			if victim.pinned() {
				// Handed out by Get but not yet leased: the holder is
				// about to Acquire and build against this entry.
				continue
			}
			if !victim.tryAcquire() {
				continue
			}
			delete(c.entries, victim.fp)
			victim.mu.Lock()
			c.total -= victim.bytes
			victim.mu.Unlock()
			c.evictions++
			victim.Release()
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

// use reads the LRU clock under mu.
func (e *Entry) use() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastUse
}

// Stats copies the cache counters out.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Bytes:     c.total,
		Hits:      c.hits,
		Misses:    c.misses,
		Builds:    c.builds,
		Evictions: c.evictions,
	}
}

// Snapshot copies every entry's published statistics, for the scrape.
func (c *Cache) Snapshot() []EntryStats {
	c.mu.Lock()
	list := make([]*Entry, 0, len(c.entries))
	for _, e := range c.entries {
		list = append(list, e)
	}
	c.mu.Unlock()
	out := make([]EntryStats, 0, len(list))
	for _, e := range list {
		out = append(out, e.Stats())
	}
	return out
}
