package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spblock/internal/core"
	"spblock/internal/gen"
	"spblock/internal/tensor"
)

func randCOO(seed int64, dims tensor.Dims, nnz int) *tensor.COO {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.NewCOO(dims, nnz)
	for p := 0; p < nnz; p++ {
		t.Append(
			tensor.Index(rng.Intn(dims[0])),
			tensor.Index(rng.Intn(dims[1])),
			tensor.Index(rng.Intn(dims[2])),
			rng.NormFloat64(),
		)
	}
	t.Dedup()
	return t
}

// shuffled returns a copy of t with its nonzeros in a different
// storage order — the same logical tensor.
func shuffled(t *tensor.COO, seed int64) *tensor.COO {
	c := t.Clone()
	rng := rand.New(rand.NewSource(seed))
	for p := len(c.Val) - 1; p > 0; p-- {
		q := rng.Intn(p + 1)
		c.I[p], c.I[q] = c.I[q], c.I[p]
		c.J[p], c.J[q] = c.J[q], c.J[p]
		c.K[p], c.K[q] = c.K[q], c.K[p]
		c.Val[p], c.Val[q] = c.Val[q], c.Val[p]
	}
	return c
}

func TestFingerprintCollisionResistance(t *testing.T) {
	x := randCOO(1, tensor.Dims{20, 18, 16}, 300)
	fp := Fingerprint(x)
	if got := Fingerprint(shuffled(x, 2)); got != fp {
		t.Errorf("permuted nonzero order changed the fingerprint")
	}
	if got := Fingerprint(x.Clone()); got != fp {
		t.Errorf("clone changed the fingerprint")
	}

	val := x.Clone()
	val.Val[17] += 1e-12
	if Fingerprint(val) == fp {
		t.Errorf("changed value kept the fingerprint")
	}
	coord := x.Clone()
	coord.I[17] = (coord.I[17] + 1) % tensor.Index(coord.Dims[0])
	if Fingerprint(coord) == fp {
		t.Errorf("changed coordinate kept the fingerprint")
	}
	wide := x.Clone()
	wide.Dims[2]++
	if Fingerprint(wide) == fp {
		t.Errorf("changed dims kept the fingerprint")
	}
}

func TestCacheEvictionUnderByteBudget(t *testing.T) {
	t1 := randCOO(1, tensor.Dims{12, 10, 8}, 200)
	budget := 2*tensorBytes(t1) + tensorBytes(t1)/2
	c := NewCache(CacheConfig{MaxBytes: budget})
	e1, _ := c.Put(t1)
	e2, _ := c.Put(randCOO(2, tensor.Dims{12, 10, 8}, 200))
	if got := c.Stats().Entries; got != 2 {
		t.Fatalf("entries = %d, want 2", got)
	}
	// Touch e2 so e1 is the LRU victim, then overflow the budget.
	if _, ok := c.Get(e2.Fingerprint()); !ok {
		t.Fatal("e2 lookup missed")
	}
	e3, _ := c.Put(randCOO(3, tensor.Dims{12, 10, 8}, 200))
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("evictions=%d entries=%d, want 1 and 2", st.Evictions, st.Entries)
	}
	if _, ok := c.entries[e1.Fingerprint()]; ok {
		t.Fatal("LRU entry e1 survived")
	}
	if st.Bytes > budget {
		t.Fatalf("cache over budget after eviction: %d > %d", st.Bytes, budget)
	}

	// A leased entry must never be evicted, even as the LRU victim.
	if err := e2.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(e3.Fingerprint()); !ok { // make e2 the LRU
		t.Fatal("e3 lookup missed")
	}
	c.Put(randCOO(4, tensor.Dims{12, 10, 8}, 200))
	if _, ok := c.entries[e2.Fingerprint()]; !ok {
		t.Fatal("leased entry was evicted")
	}
	e2.Release()
}

// TestLeaseExclusion races N goroutines over one cached executor: the
// lease must serialise them (the unsynchronised counter below is a
// data race unless it does — run under -race).
func TestLeaseExclusion(t *testing.T) {
	c := NewCache(CacheConfig{Plan: core.Plan{Method: core.MethodSPLATT}})
	e, _ := c.Put(randCOO(1, tensor.Dims{12, 10, 8}, 200))
	var unguarded int
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				if err := e.Acquire(context.Background()); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Executor(e); err != nil {
					t.Error(err)
					e.Release()
					return
				}
				unguarded++
				e.Release()
			}
		}()
	}
	wg.Wait()
	if unguarded != 8*50 {
		t.Fatalf("lease lost %d increments", 8*50-unguarded)
	}
	if got := c.Stats().Builds; got != 1 {
		t.Fatalf("executor built %d times, want 1", got)
	}
}

func TestLeaseAcquireHonorsContext(t *testing.T) {
	c := NewCache(CacheConfig{})
	e, _ := c.Put(randCOO(1, tensor.Dims{8, 8, 8}, 100))
	if err := e.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := e.Acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Acquire on a held lease = %v, want DeadlineExceeded", err)
	}
	e.Release()
}

// newTestServer spins up a service plus one uploaded Poisson tensor,
// returning the server, its base URL and the tensor's fingerprint.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server, string) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	x, err := gen.Poisson(gen.PoissonParams{Dims: tensor.Dims{30, 24, 20}, Events: 1500}, 5)
	if err != nil {
		t.Fatal(err)
	}
	return s, ts, upload(t, ts.URL, x)
}

func upload(t *testing.T, url string, x *tensor.COO) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tensor.WriteTNS(&buf, x); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/tensors", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var up uploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || up.Fingerprint == "" {
		t.Fatalf("upload failed: %d %+v", resp.StatusCode, up)
	}
	return up.Fingerprint
}

func postJob(t *testing.T, url, tenant string, req jobRequest) (int, jobResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		hr.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	var jr jobResponse
	if err := json.NewDecoder(io2{&out, resp.Body}).Decode(&jr); err != nil {
		jr = jobResponse{}
	}
	return resp.StatusCode, jr, out.String()
}

// io2 tees the decoded body so failures can report it.
type io2 struct {
	buf *bytes.Buffer
	r   interface{ Read([]byte) (int, error) }
}

func (t io2) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	t.buf.Write(p[:n])
	return n, err
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func metricValue(t *testing.T, scrape, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(scrape, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v int64
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%d", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %q not in scrape:\n%s", name, scrape)
	return 0
}

// TestConcurrentCPALSClientsShareExecutor is the tentpole's acceptance
// test: 8 concurrent clients run CP-ALS against the same fingerprinted
// tensor and the service reuses one cached executor stack — one build,
// 8+ cache hits, all observable through /metrics.
func TestConcurrentCPALSClientsShareExecutor(t *testing.T) {
	_, ts, fp := newTestServer(t, Options{
		MaxConcurrent: 8,
		Cache:         CacheConfig{Plan: core.Plan{Method: core.MethodSPLATT, Workers: 2}},
	})
	const clients = 8
	var wg sync.WaitGroup
	fits := make([]float64, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			code, jr, raw := postJob(t, ts.URL, fmt.Sprintf("tenant-%d", g%3), jobRequest{
				Fingerprint: fp, Kind: "cpals", Rank: 4, MaxIters: 6, Tol: 1e-12, Seed: 9,
			})
			if code != http.StatusOK {
				t.Errorf("client %d: status %d: %s", g, code, raw)
				return
			}
			if jr.Iters == 0 {
				t.Errorf("client %d: no sweeps ran: %s", g, raw)
			}
			fits[g] = jr.Fit
		}(g)
	}
	wg.Wait()
	// Same tensor, seed and plan through one shared stack: every
	// client gets the bit-identical decomposition.
	for g := 1; g < clients; g++ {
		if fits[g] != fits[0] {
			t.Errorf("client %d fit %v != client 0 fit %v", g, fits[g], fits[0])
		}
	}
	m := scrape(t, ts.URL)
	if got := metricValue(t, m, "spblockd_executor_builds_total"); got != 1 {
		t.Errorf("executor built %d times for %d clients, want 1", got, clients)
	}
	if got := metricValue(t, m, "spblockd_cache_hits_total"); got < clients {
		t.Errorf("cache hits = %d, want >= %d", got, clients)
	}
	if got := metricValue(t, m, `spblockd_entry_jobs_total{fp="`+fp[:12]+`"}`); got != clients {
		t.Errorf("entry jobs = %d, want %d", got, clients)
	}
	if got := metricValue(t, m, `spblockd_jobs_total{outcome="done"}`); got != clients {
		t.Errorf("done jobs = %d, want %d", got, clients)
	}
}

// TestJobTimeoutCancelsMidSweep pins the cancel path: a CP-ALS job
// with an unreachable sweep budget and a tiny timeout must come back
// promptly as 504, and the entry must keep serving afterwards.
func TestJobTimeoutCancelsMidSweep(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	// A tensor and rank big enough that reaching an exact ALS fixed
	// point (the only way a Tol this small converges) takes far longer
	// than the timeout, so the deadline provably lands mid-run.
	big, err := gen.Poisson(gen.PoissonParams{Dims: tensor.Dims{60, 50, 40}, Events: 40000}, 6)
	if err != nil {
		t.Fatal(err)
	}
	fp := upload(t, ts.URL, big)
	start := time.Now()
	code, _, raw := postJob(t, ts.URL, "", jobRequest{
		Fingerprint: fp, Kind: "cpals", Rank: 48, MaxIters: 1_000_000, Tol: 1e-300,
		TimeoutMs: 100,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", code, raw)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("canceled job took %v to return", el)
	}
	if !strings.Contains(raw, "deadline") {
		t.Errorf("error body does not mention the deadline: %s", raw)
	}
	code, jr, raw := postJob(t, ts.URL, "", jobRequest{
		Fingerprint: fp, Kind: "cpals", Rank: 3, MaxIters: 3, Tol: 1e-12,
	})
	if code != http.StatusOK || jr.Iters != 3 {
		t.Fatalf("entry dead after canceled job: %d %s", code, raw)
	}
	m := scrape(t, ts.URL)
	if got := metricValue(t, m, `spblockd_jobs_total{outcome="canceled"}`); got != 1 {
		t.Errorf("canceled jobs = %d, want 1", got)
	}
}

// TestTenantQuotaRejects holds an entry's lease so a tenant's first
// job parks in admission, then asserts the tenant's next job is turned
// away with 429 while another tenant still gets in.
func TestTenantQuotaRejects(t *testing.T) {
	s, ts, fp := newTestServer(t, Options{MaxConcurrent: 4, TenantQuota: 1})
	e, ok := s.cache.Get(fp)
	if !ok {
		t.Fatal("entry missing")
	}
	if err := e.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan int, 1)
	go func() {
		code, _, _ := postJob(t, ts.URL, "greedy", jobRequest{
			Fingerprint: fp, Kind: "cpals", Rank: 2, MaxIters: 2,
		})
		blocked <- code
	}()
	// Wait until the first job is counted in-flight (parked on the lease).
	for deadline := time.Now().Add(5 * time.Second); ; {
		s.mu.Lock()
		n := s.inflight["greedy"]
		s.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	code, _, raw := postJob(t, ts.URL, "greedy", jobRequest{
		Fingerprint: fp, Kind: "cpals", Rank: 2, MaxIters: 2,
	})
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota job: status %d, want 429: %s", code, raw)
	}
	e.Release()
	if code := <-blocked; code != http.StatusOK {
		t.Fatalf("parked job finished with %d, want 200", code)
	}
	// The quota is per-tenant: with greedy drained, another tenant
	// runs immediately.
	if code, _, raw := postJob(t, ts.URL, "patient", jobRequest{
		Fingerprint: fp, Kind: "mttkrp", Rank: 4,
	}); code != http.StatusOK {
		t.Fatalf("other tenant rejected: %d %s", code, raw)
	}
	m := scrape(t, ts.URL)
	if got := metricValue(t, m, `spblockd_jobs_total{outcome="rejected"}`); got != 1 {
		t.Errorf("rejected jobs = %d, want 1", got)
	}
}

func TestJobValidationAndKinds(t *testing.T) {
	_, ts, fp := newTestServer(t, Options{})
	if code, _, _ := postJob(t, ts.URL, "", jobRequest{Fingerprint: fp, Kind: "cpals"}); code != http.StatusBadRequest {
		t.Errorf("rank 0: status %d, want 400", code)
	}
	if code, _, _ := postJob(t, ts.URL, "", jobRequest{Fingerprint: fp, Kind: "tucker", Rank: 2}); code != http.StatusBadRequest {
		t.Errorf("unknown kind: status %d, want 400", code)
	}
	if code, _, _ := postJob(t, ts.URL, "", jobRequest{Fingerprint: "beef", Kind: "cpals", Rank: 2}); code != http.StatusNotFound {
		t.Errorf("unknown fingerprint: status %d, want 404", code)
	}
	code, jr, raw := postJob(t, ts.URL, "", jobRequest{Fingerprint: fp, Kind: "mttkrp", Rank: 6, Reps: 3, Workers: 2})
	if code != http.StatusOK || jr.Reps != 3 || len(jr.ModeSnap) != 3 {
		t.Fatalf("mttkrp job: %d %s", code, raw)
	}
	if jr.ModeSnap[0].Runs != 3 {
		t.Errorf("mode-0 runs = %d, want 3", jr.ModeSnap[0].Runs)
	}
	code, jr, raw = postJob(t, ts.URL, "", jobRequest{Fingerprint: fp, Kind: "cpapr", Rank: 3, MaxIters: 4})
	if code != http.StatusOK || jr.Iters == 0 {
		t.Fatalf("cpapr job: %d %s", code, raw)
	}
}

// TestUploadDedup uploads the same logical tensor twice in different
// storage orders and expects one cache entry.
func TestUploadDedup(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	x := randCOO(3, tensor.Dims{15, 12, 10}, 250)
	var fps [2]string
	for trial, v := range []*tensor.COO{x, shuffled(x, 4)} {
		var buf bytes.Buffer
		if err := tensor.WriteTNS(&buf, v); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/tensors", "text/plain", &buf)
		if err != nil {
			t.Fatal(err)
		}
		var up uploadResponse
		if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if up.Cached != (trial == 1) {
			t.Errorf("trial %d: cached = %v", trial, up.Cached)
		}
		fps[trial] = up.Fingerprint
	}
	if fps[0] != fps[1] {
		t.Errorf("re-upload under a different storage order got a new fingerprint")
	}
	if got := s.cache.Stats().Entries; got != 1 {
		t.Errorf("entries = %d, want 1", got)
	}
}
