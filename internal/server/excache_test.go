package server

import (
	"context"
	"testing"

	"spblock/internal/core"
	"spblock/internal/tensor"
)

// entryBytesSum adds up the resident entries' published byte counts —
// the number Cache.Stats().Bytes must always equal. Any gap is mass
// the budget can never reclaim (or has double-reclaimed).
func entryBytesSum(c *Cache) int64 {
	var sum int64
	for _, es := range c.Snapshot() {
		sum += es.Bytes
	}
	return sum
}

// resident reports membership without going through Get, which would
// count a hit, bump the LRU clock and pin the entry.
func resident(c *Cache, fp string) bool {
	for _, es := range c.Snapshot() {
		if es.Fingerprint == fp {
			return true
		}
	}
	return false
}

// TestExecutorBuildOnOrphanedEntryNotCharged replays the accounting
// race: an entry handed out and then evicted before its job builds the
// executor stack. The build's MemoryBytes must NOT be charged to the
// cache total — the entry is an orphan whose bytes were already
// deducted at eviction, so the charge would inflate the budget
// permanently (no future eviction can find the entry to refund it).
//
// The handout here goes through Put's return value, which carries no
// eviction pin — exactly the lease-free window the race needs.
func TestExecutorBuildOnOrphanedEntryNotCharged(t *testing.T) {
	a := randCOO(1, tensor.Dims{12, 10, 8}, 200)
	budget := tensorBytes(a) + tensorBytes(a)/8
	c := NewCache(CacheConfig{MaxBytes: budget, Plan: core.Plan{Method: core.MethodSPLATT}})

	ea, _ := c.Put(a)
	// A second insert pushes over budget and evicts the unleased,
	// unpinned entry: ea is now orphaned but the job still holds it.
	c.Put(randCOO(2, tensor.Dims{12, 10, 8}, 200))
	if resident(c, ea.Fingerprint()) {
		t.Fatal("orphan setup failed: first entry was not evicted")
	}

	// The orphan's job proceeds obliviously: lease, build, run, release.
	if err := ea.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Executor(ea); err != nil {
		t.Fatal(err)
	}
	ea.Release()

	// The orphaned job is done; the cache total must account exactly
	// for the entries it still holds, nothing more.
	if got, want := c.Stats().Bytes, entryBytesSum(c); got != want {
		t.Fatalf("orphan build leaked into the budget: cache says %d bytes, resident entries hold %d", got, want)
	}
	if es := ea.Stats(); !es.Built || es.Bytes <= tensorBytes(a) {
		t.Fatalf("orphan's own stats must still see the build: %+v", es)
	}
}

// TestGetPinsEntryAgainstEviction pins the other half of the fix: an
// entry handed out by Get must survive eviction pressure until the
// holder's Acquire resolves, so the Get→Acquire window can never
// orphan a job's entry.
func TestGetPinsEntryAgainstEviction(t *testing.T) {
	a := randCOO(3, tensor.Dims{12, 10, 8}, 200)
	budget := tensorBytes(a) + tensorBytes(a)/8
	c := NewCache(CacheConfig{MaxBytes: budget, Plan: core.Plan{Method: core.MethodSPLATT}})

	ea, _ := c.Put(a)
	fp := ea.Fingerprint()
	got, ok := c.Get(fp)
	if !ok {
		t.Fatal("entry vanished immediately after Put")
	}

	// Eviction pressure during the handout window: the pinned entry
	// must be passed over even though it is least recently used.
	c.Put(randCOO(4, tensor.Dims{12, 10, 8}, 200))
	if !resident(c, fp) {
		t.Fatal("pinned entry was evicted during the Get→Acquire window")
	}

	// Acquire consumes the pin; afterwards the entry is fair game.
	if err := got.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Executor(got); err != nil {
		t.Fatal(err)
	}
	got.Release()
	if bytes, want := c.Stats().Bytes, entryBytesSum(c); bytes != want {
		t.Fatalf("cache says %d bytes, resident entries hold %d", bytes, want)
	}

	c.Put(randCOO(5, tensor.Dims{12, 10, 8}, 200))
	if resident(c, fp) {
		t.Fatal("released entry survived eviction pressure after its pin was consumed")
	}
	if bytes, want := c.Stats().Bytes, entryBytesSum(c); bytes != want {
		t.Fatalf("evicting the built entry did not refund its bytes: cache says %d, entries hold %d", bytes, want)
	}
}

// TestAcquireCancelConsumesPin guards the failure path: a caller that
// gives up waiting for the lease must not leave its Get pin behind, or
// the entry would be unevictable forever.
func TestAcquireCancelConsumesPin(t *testing.T) {
	a := randCOO(6, tensor.Dims{12, 10, 8}, 200)
	budget := tensorBytes(a) + tensorBytes(a)/8
	c := NewCache(CacheConfig{MaxBytes: budget, Plan: core.Plan{Method: core.MethodSPLATT}})

	ea, _ := c.Put(a)
	if err := ea.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	pinned, ok := c.Get(ea.Fingerprint())
	if !ok {
		t.Fatal("entry missing")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := pinned.Acquire(ctx); err == nil {
		t.Fatal("Acquire succeeded against a held lease with a canceled context")
	}
	ea.Release()

	// The canceled caller is gone; the entry must be evictable again.
	c.Put(randCOO(7, tensor.Dims{12, 10, 8}, 200))
	if resident(c, ea.Fingerprint()) {
		t.Fatal("canceled Acquire leaked its pin: entry is unevictable")
	}
}
