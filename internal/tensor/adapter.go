package tensor

import (
	"fmt"

	"spblock/internal/nmode"
)

// FromNMode returns a third-order COO view of t that shares t's
// coordinate and value storage (nmode.Index and tensor.Index are the
// same type, so no element is copied). Mutating either tensor's
// entries is visible through both.
func FromNMode(t *nmode.Tensor) (*COO, error) {
	if t.Order() != 3 {
		return nil, fmt.Errorf("%w: order-%d tensor where third order is required",
			ErrBadTensor, t.Order())
	}
	return &COO{
		Dims: Dims{t.Dims[0], t.Dims[1], t.Dims[2]},
		I:    t.Idx[0],
		J:    t.Idx[1],
		K:    t.Idx[2],
		Val:  t.Val,
	}, nil
}

// ToNMode returns an order-N view of t sharing its storage — the
// inverse of FromNMode.
func ToNMode(t *COO) *nmode.Tensor {
	return &nmode.Tensor{
		Dims: []int{t.Dims[0], t.Dims[1], t.Dims[2]},
		Idx:  [][]nmode.Index{t.I, t.J, t.K},
		Val:  t.Val,
	}
}
