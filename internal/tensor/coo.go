// Package tensor implements the sparse tensor substrate of the paper:
// the coordinate (COO) format, the SPLATT / compressed-sparse-fiber
// structure of Figure 1b, conversions between them, FROSTT-style text
// I/O and basic shape statistics.
//
// Tensors here are third-order (the paper restricts its analysis to
// 3-mode data; Sec. III-C notes the methodology extends trivially to
// higher order). Mode indices are named i (mode-1), j (mode-2) and
// k (mode-3), matching Algorithm 1 of the paper.
package tensor

import (
	"errors"
	"fmt"
	"sort"
)

// Index is the in-memory coordinate type. The paper's byte model
// assumes 64-bit indices; our kernels use 32-bit indices (all the
// evaluated tensors have mode lengths < 2^31), which the cache-traffic
// experiments account for explicitly.
type Index = int32

// Dims holds the mode lengths of a third-order tensor.
type Dims [3]int

// Valid reports whether all mode lengths are positive.
func (d Dims) Valid() bool { return d[0] > 0 && d[1] > 0 && d[2] > 0 }

// Volume returns the product of the mode lengths as a float64 (the
// integer product overflows for paper-scale shapes such as Amazon's
// 4.8M x 1.8M x 1.8M).
func (d Dims) Volume() float64 {
	return float64(d[0]) * float64(d[1]) * float64(d[2])
}

func (d Dims) String() string { return fmt.Sprintf("%dx%dx%d", d[0], d[1], d[2]) }

// COO is a third-order sparse tensor in coordinate format (Figure 1a):
// parallel slices of mode indices plus values.
type COO struct {
	Dims Dims
	I    []Index
	J    []Index
	K    []Index
	Val  []float64
}

// NewCOO allocates an empty COO tensor with the given mode lengths and
// capacity hint.
func NewCOO(dims Dims, capacity int) *COO {
	return &COO{
		Dims: dims,
		I:    make([]Index, 0, capacity),
		J:    make([]Index, 0, capacity),
		K:    make([]Index, 0, capacity),
		Val:  make([]float64, 0, capacity),
	}
}

// NNZ returns the number of stored entries.
//
//spblock:hotpath
func (t *COO) NNZ() int { return len(t.Val) }

// Density returns nnz / (I*J*K).
func (t *COO) Density() float64 {
	if !t.Dims.Valid() {
		return 0
	}
	return float64(t.NNZ()) / t.Dims.Volume()
}

// Append adds a nonzero. It does not check bounds; call Validate before
// handing user-supplied data to kernels.
func (t *COO) Append(i, j, k Index, v float64) {
	t.I = append(t.I, i)
	t.J = append(t.J, j)
	t.K = append(t.K, k)
	t.Val = append(t.Val, v)
}

// ErrBadTensor wraps structural validation failures.
var ErrBadTensor = errors.New("tensor: invalid tensor")

// Validate checks structural invariants: positive dims, equal slice
// lengths and in-range coordinates.
func (t *COO) Validate() error {
	if !t.Dims.Valid() {
		return fmt.Errorf("%w: non-positive dims %v", ErrBadTensor, t.Dims)
	}
	n := len(t.Val)
	if len(t.I) != n || len(t.J) != n || len(t.K) != n {
		return fmt.Errorf("%w: ragged coordinate slices (%d,%d,%d,%d)",
			ErrBadTensor, len(t.I), len(t.J), len(t.K), n)
	}
	for p := 0; p < n; p++ {
		if t.I[p] < 0 || int(t.I[p]) >= t.Dims[0] ||
			t.J[p] < 0 || int(t.J[p]) >= t.Dims[1] ||
			t.K[p] < 0 || int(t.K[p]) >= t.Dims[2] {
			return fmt.Errorf("%w: entry %d at (%d,%d,%d) outside %v",
				ErrBadTensor, p, t.I[p], t.J[p], t.K[p], t.Dims)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (t *COO) Clone() *COO {
	c := NewCOO(t.Dims, t.NNZ())
	c.I = append(c.I, t.I...)
	c.J = append(c.J, t.J...)
	c.K = append(c.K, t.K...)
	c.Val = append(c.Val, t.Val...)
	return c
}

// cooSorter orders entries by (i, k, j): slices first, then fibers
// within a slice, then nonzeros within a fiber. This is exactly the
// order the SPLATT structure of Figure 1b stores mode-2 fibers in.
type cooSorter struct{ t *COO }

func (s cooSorter) Len() int { return s.t.NNZ() }
func (s cooSorter) Less(a, b int) bool {
	t := s.t
	if t.I[a] != t.I[b] {
		return t.I[a] < t.I[b]
	}
	if t.K[a] != t.K[b] {
		return t.K[a] < t.K[b]
	}
	return t.J[a] < t.J[b]
}
func (s cooSorter) Swap(a, b int) {
	t := s.t
	t.I[a], t.I[b] = t.I[b], t.I[a]
	t.J[a], t.J[b] = t.J[b], t.J[a]
	t.K[a], t.K[b] = t.K[b], t.K[a]
	t.Val[a], t.Val[b] = t.Val[b], t.Val[a]
}

// SortFiberOrder sorts entries into (i, k, j) order in place. Large
// tensors use a stable LSD counting sort (three linear passes, one per
// mode), which is substantially faster than a comparison sort for the
// multi-million-nonzero inputs the experiments run on; small tensors
// fall back to sort.Sort.
func (t *COO) SortFiberOrder() {
	const countingSortThreshold = 1 << 12
	n := t.NNZ()
	if n < countingSortThreshold || !t.coordsInRange() {
		sort.Sort(cooSorter{t})
		return
	}
	srcI, srcJ, srcK, srcV := t.I, t.J, t.K, t.Val
	dstI := make([]Index, n)
	dstJ := make([]Index, n)
	dstK := make([]Index, n)
	dstV := make([]float64, n)
	// Least-significant key first: j, then k, then i. Each pass is a
	// stable counting sort, so the final order is (i, k, j).
	for pass := 0; pass < 3; pass++ {
		var key []Index
		var dim int
		switch pass {
		case 0:
			key, dim = srcJ, t.Dims[1]
		case 1:
			key, dim = srcK, t.Dims[2]
		default:
			key, dim = srcI, t.Dims[0]
		}
		counts := make([]int32, dim+1)
		for _, v := range key {
			counts[v+1]++
		}
		for d := 0; d < dim; d++ {
			counts[d+1] += counts[d]
		}
		for p := 0; p < n; p++ {
			pos := counts[key[p]]
			counts[key[p]]++
			dstI[pos], dstJ[pos], dstK[pos], dstV[pos] = srcI[p], srcJ[p], srcK[p], srcV[p]
		}
		srcI, dstI = dstI, srcI
		srcJ, dstJ = dstJ, srcJ
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}
	t.I, t.J, t.K, t.Val = srcI, srcJ, srcK, srcV
}

// coordsInRange reports whether all coordinates lie inside Dims, the
// precondition for the counting-sort fast path.
func (t *COO) coordsInRange() bool {
	for p := 0; p < t.NNZ(); p++ {
		if t.I[p] < 0 || int(t.I[p]) >= t.Dims[0] ||
			t.J[p] < 0 || int(t.J[p]) >= t.Dims[1] ||
			t.K[p] < 0 || int(t.K[p]) >= t.Dims[2] {
			return false
		}
	}
	return true
}

// IsFiberSorted reports whether entries are in (i, k, j) order.
func (t *COO) IsFiberSorted() bool { return sort.IsSorted(cooSorter{t}) }

// Dedup merges duplicate coordinates by summing their values. The
// tensor is left fiber-sorted. Returns the number of merged entries.
func (t *COO) Dedup() int {
	if t.NNZ() == 0 {
		return 0
	}
	t.SortFiberOrder()
	w := 0
	for p := 1; p < t.NNZ(); p++ {
		if t.I[p] == t.I[w] && t.J[p] == t.J[w] && t.K[p] == t.K[w] {
			t.Val[w] += t.Val[p]
			continue
		}
		w++
		t.I[w], t.J[w], t.K[w], t.Val[w] = t.I[p], t.J[p], t.K[p], t.Val[p]
	}
	merged := t.NNZ() - (w + 1)
	t.I = t.I[:w+1]
	t.J = t.J[:w+1]
	t.K = t.K[:w+1]
	t.Val = t.Val[:w+1]
	return merged
}

// PermuteModes returns a new tensor whose mode order is rearranged so
// that new mode m holds what old mode perm[m] held. perm must be a
// permutation of {0,1,2}. MTTKRP for mode n on tensor X equals MTTKRP
// for mode 1 on X permuted so that mode n comes first — this is how the
// library serves all three mode products with one kernel family.
func (t *COO) PermuteModes(perm [3]int) (*COO, error) {
	seen := [3]bool{}
	for _, p := range perm {
		if p < 0 || p > 2 || seen[p] {
			return nil, fmt.Errorf("%w: bad mode permutation %v", ErrBadTensor, perm)
		}
		seen[p] = true
	}
	out := NewCOO(Dims{t.Dims[perm[0]], t.Dims[perm[1]], t.Dims[perm[2]]}, t.NNZ())
	old := [3][]Index{t.I, t.J, t.K}
	for p := 0; p < t.NNZ(); p++ {
		out.Append(old[perm[0]][p], old[perm[1]][p], old[perm[2]][p], t.Val[p])
	}
	return out, nil
}

// NormSquared returns Σ v².
func (t *COO) NormSquared() float64 {
	var s float64
	for _, v := range t.Val {
		s += v * v
	}
	return s
}

// CountFibers returns the number of distinct non-empty (i, k) mode-2
// fibers. The tensor need not be sorted.
func (t *COO) CountFibers() int {
	if t.NNZ() == 0 {
		return 0
	}
	if t.IsFiberSorted() {
		f := 1
		for p := 1; p < t.NNZ(); p++ {
			if t.I[p] != t.I[p-1] || t.K[p] != t.K[p-1] {
				f++
			}
		}
		return f
	}
	seen := make(map[[2]Index]struct{}, t.NNZ()/2)
	for p := 0; p < t.NNZ(); p++ {
		seen[[2]Index{t.I[p], t.K[p]}] = struct{}{}
	}
	return len(seen)
}
