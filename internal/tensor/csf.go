package tensor

import (
	"fmt"
)

// CSF is the SPLATT storage of Figure 1b: nonzeros grouped into mode-2
// fibers (fixed i and k, varying j), fibers grouped into slices
// (fixed i).
//
// Unlike the figure, which keeps an i_pointer entry for every row, we
// store only non-empty slices together with their row ids. For the
// full tensors of the paper the two are equivalent (the paper ignores
// i_pointer traffic in its byte model because it is negligible); for
// the sub-tensors produced by multi-dimensional blocking, compressing
// empty slices is essential because each block sees only a fraction of
// the rows.
type CSF struct {
	Dims Dims

	// SliceID[s] is the mode-1 coordinate of slice s; slices are in
	// increasing order. len(SliceID) == number of non-empty slices.
	SliceID []Index
	// SlicePtr[s] .. SlicePtr[s+1] is the fiber range of slice s.
	SlicePtr []int32
	// FiberK[f] is the mode-3 coordinate shared by fiber f's nonzeros.
	FiberK []Index
	// FiberPtr[f] .. FiberPtr[f+1] is the nonzero range of fiber f.
	FiberPtr []int32
	// NzJ[p] is the mode-2 coordinate of nonzero p.
	NzJ []Index
	// Val[p] is the value of nonzero p.
	Val []float64
}

// NNZ returns the number of stored nonzeros.
func (c *CSF) NNZ() int { return len(c.Val) }

// NumFibers returns the number of non-empty mode-2 fibers.
func (c *CSF) NumFibers() int { return len(c.FiberK) }

// NumSlices returns the number of non-empty mode-1 slices.
//
//spblock:hotpath
func (c *CSF) NumSlices() int { return len(c.SliceID) }

// MemoryBytes reports the actual in-memory footprint of this structure
// (4-byte indices/pointers, 8-byte values).
func (c *CSF) MemoryBytes() int64 {
	return int64(4*(len(c.SliceID)+len(c.SlicePtr)+len(c.FiberK)+len(c.FiberPtr)+len(c.NzJ)) +
		8*len(c.Val))
}

// PaperMemoryBytes reports the paper's Sec. III-C byte model for the
// SPLATT format, 16 + 8·I + 16·F + 16·nnz, which assumes 64-bit indices
// and a dense i_pointer array.
func (c *CSF) PaperMemoryBytes() int64 {
	return 16 + 8*int64(c.Dims[0]) + 16*int64(c.NumFibers()) + 16*int64(c.NNZ())
}

// BuildCSF converts a COO tensor into the SPLATT structure. The input
// is not modified; a fiber-sorted copy is made unless the input is
// already sorted. Duplicate coordinates are kept as distinct nonzeros
// (run Dedup first if that matters).
func BuildCSF(t *COO) (*CSF, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	src := t
	if !t.IsFiberSorted() {
		src = t.Clone()
		src.SortFiberOrder()
	}
	return buildCSFSorted(src), nil
}

// buildCSFSorted builds the structure from entries already in (i, k, j)
// order.
func buildCSFSorted(t *COO) *CSF {
	nnz := t.NNZ()
	c := &CSF{Dims: t.Dims}
	if nnz == 0 {
		c.SlicePtr = []int32{0}
		c.FiberPtr = []int32{0}
		return c
	}
	// First pass: count slices and fibers.
	slices, fibers := 1, 1
	for p := 1; p < nnz; p++ {
		if t.I[p] != t.I[p-1] {
			slices++
			fibers++
		} else if t.K[p] != t.K[p-1] {
			fibers++
		}
	}
	c.SliceID = make([]Index, 0, slices)
	c.SlicePtr = make([]int32, 0, slices+1)
	c.FiberK = make([]Index, 0, fibers)
	c.FiberPtr = make([]int32, 0, fibers+1)
	c.NzJ = make([]Index, nnz)
	c.Val = make([]float64, nnz)
	copy(c.NzJ, t.J)
	copy(c.Val, t.Val)

	for p := 0; p < nnz; p++ {
		newSlice := p == 0 || t.I[p] != t.I[p-1]
		if newSlice {
			c.SliceID = append(c.SliceID, t.I[p])
			c.SlicePtr = append(c.SlicePtr, int32(len(c.FiberK)))
		}
		if newSlice || t.K[p] != t.K[p-1] {
			c.FiberK = append(c.FiberK, t.K[p])
			c.FiberPtr = append(c.FiberPtr, int32(p))
		}
	}
	c.SlicePtr = append(c.SlicePtr, int32(len(c.FiberK)))
	c.FiberPtr = append(c.FiberPtr, int32(nnz))
	return c
}

// ToCOO expands the structure back to coordinate format in fiber-sorted
// order.
func (c *CSF) ToCOO() *COO {
	out := NewCOO(c.Dims, c.NNZ())
	for s := 0; s < c.NumSlices(); s++ {
		i := c.SliceID[s]
		for f := c.SlicePtr[s]; f < c.SlicePtr[s+1]; f++ {
			k := c.FiberK[f]
			for p := c.FiberPtr[f]; p < c.FiberPtr[f+1]; p++ {
				out.Append(i, c.NzJ[p], k, c.Val[p])
			}
		}
	}
	return out
}

// Validate checks the structural invariants of the CSF layout:
// monotone pointers, sorted slice ids, sorted fiber keys within each
// slice, sorted j within each fiber, and in-range coordinates.
func (c *CSF) Validate() error {
	if !c.Dims.Valid() {
		return fmt.Errorf("%w: non-positive dims %v", ErrBadTensor, c.Dims)
	}
	s := c.NumSlices()
	if len(c.SlicePtr) != s+1 {
		return fmt.Errorf("%w: SlicePtr length %d, want %d", ErrBadTensor, len(c.SlicePtr), s+1)
	}
	f := c.NumFibers()
	if len(c.FiberPtr) != f+1 {
		return fmt.Errorf("%w: FiberPtr length %d, want %d", ErrBadTensor, len(c.FiberPtr), f+1)
	}
	if len(c.NzJ) != len(c.Val) {
		return fmt.Errorf("%w: NzJ/Val length mismatch", ErrBadTensor)
	}
	if c.SlicePtr[0] != 0 || int(c.SlicePtr[s]) != f {
		return fmt.Errorf("%w: SlicePtr does not span fibers", ErrBadTensor)
	}
	if c.FiberPtr[0] != 0 || int(c.FiberPtr[f]) != c.NNZ() {
		return fmt.Errorf("%w: FiberPtr does not span nonzeros", ErrBadTensor)
	}
	for x := 0; x < s; x++ {
		if c.SliceID[x] < 0 || int(c.SliceID[x]) >= c.Dims[0] {
			return fmt.Errorf("%w: slice id %d out of range", ErrBadTensor, c.SliceID[x])
		}
		if x > 0 && c.SliceID[x] <= c.SliceID[x-1] {
			return fmt.Errorf("%w: slice ids not strictly increasing at %d", ErrBadTensor, x)
		}
		if c.SlicePtr[x] >= c.SlicePtr[x+1] {
			return fmt.Errorf("%w: empty slice %d stored", ErrBadTensor, x)
		}
		for y := c.SlicePtr[x]; y < c.SlicePtr[x+1]; y++ {
			if c.FiberK[y] < 0 || int(c.FiberK[y]) >= c.Dims[2] {
				return fmt.Errorf("%w: fiber k %d out of range", ErrBadTensor, c.FiberK[y])
			}
			if y > c.SlicePtr[x] && c.FiberK[y] <= c.FiberK[y-1] {
				return fmt.Errorf("%w: fiber keys not increasing in slice %d", ErrBadTensor, x)
			}
			if c.FiberPtr[y] >= c.FiberPtr[y+1] {
				return fmt.Errorf("%w: empty fiber %d stored", ErrBadTensor, y)
			}
			for p := c.FiberPtr[y]; p < c.FiberPtr[y+1]; p++ {
				if c.NzJ[p] < 0 || int(c.NzJ[p]) >= c.Dims[1] {
					return fmt.Errorf("%w: j index %d out of range", ErrBadTensor, c.NzJ[p])
				}
				if p > c.FiberPtr[y] && c.NzJ[p] < c.NzJ[p-1] {
					return fmt.Errorf("%w: j indices not sorted in fiber %d", ErrBadTensor, y)
				}
			}
		}
	}
	return nil
}

// AvgFiberLength returns nnz / fibers, the quantity that controls how
// much work the SPLATT format saves over COO (Sec. III-C: "the more
// nonzeros there are in the fiber, the more computation and data
// movement can be saved").
func (c *CSF) AvgFiberLength() float64 {
	if c.NumFibers() == 0 {
		return 0
	}
	return float64(c.NNZ()) / float64(c.NumFibers())
}
