package tensor

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ModeProfile summarises the nonzero distribution along one mode — the
// quantities the paper's analysis turns on: how many rows of the
// mode's factor matrix are touched, how skewed the access frequencies
// are (heavy-tailed modes keep their hub rows cached), and how balanced
// a greedy slice partition can be.
type ModeProfile struct {
	Mode   int
	Length int
	// NonEmpty is the number of indices with at least one nonzero —
	// the factor rows actually touched.
	NonEmpty int
	// MaxCount / MeanCount describe the per-index nonzero distribution.
	MaxCount  int64
	MeanCount float64
	// Gini is the Gini coefficient of the per-index counts in [0, 1):
	// 0 = uniform, →1 = all mass on one index. Real-world modes are
	// strongly skewed; Poisson modes are not.
	Gini float64
	// TopShare[k] is the fraction of nonzeros carried by the heaviest
	// 10^-(k+1) fraction of indices (top 10%, top 1%).
	TopShare [2]float64
}

// ProfileMode computes the ModeProfile for one mode.
func ProfileMode(t *COO, mode int) (ModeProfile, error) {
	if mode < 0 || mode > 2 {
		return ModeProfile{}, fmt.Errorf("tensor: mode %d out of range", mode)
	}
	if err := t.Validate(); err != nil {
		return ModeProfile{}, err
	}
	var coords []Index
	switch mode {
	case 0:
		coords = t.I
	case 1:
		coords = t.J
	default:
		coords = t.K
	}
	counts := make([]int64, t.Dims[mode])
	for _, c := range coords {
		counts[c]++
	}
	p := ModeProfile{Mode: mode, Length: t.Dims[mode]}
	var total int64
	for _, c := range counts {
		if c > 0 {
			p.NonEmpty++
		}
		if c > p.MaxCount {
			p.MaxCount = c
		}
		total += c
	}
	if p.Length > 0 {
		p.MeanCount = float64(total) / float64(p.Length)
	}
	if total == 0 {
		return p, nil
	}
	sort.Slice(counts, func(a, b int) bool { return counts[a] > counts[b] })
	// Top-share: heaviest 10% and 1% of indices.
	for k, frac := range []float64{0.1, 0.01} {
		n := int(math.Ceil(frac * float64(p.Length)))
		if n < 1 {
			n = 1
		}
		var s int64
		for _, c := range counts[:n] {
			s += c
		}
		p.TopShare[k] = float64(s) / float64(total)
	}
	// Gini over descending counts: G = (n+1-2*Σ cum_i/total)/n with
	// ascending order; flip for descending.
	n := len(counts)
	var cum, weighted int64
	for i := n - 1; i >= 0; i-- { // ascending traversal
		cum += counts[i]
		weighted += cum
	}
	p.Gini = (float64(n+1) - 2*float64(weighted)/float64(total)) / float64(n)
	if p.Gini < 0 {
		p.Gini = 0
	}
	return p, nil
}

// Profile aggregates all three mode profiles plus fiber statistics.
type Profile struct {
	Stats Stats
	Modes [3]ModeProfile
	// MaxFiberLen is the longest mode-2 fiber.
	MaxFiberLen int
}

// ProfileTensor computes the full profile.
func ProfileTensor(t *COO) (Profile, error) {
	p := Profile{Stats: ComputeStats(t)}
	for m := 0; m < 3; m++ {
		mp, err := ProfileMode(t, m)
		if err != nil {
			return Profile{}, err
		}
		p.Modes[m] = mp
	}
	if t.NNZ() > 0 {
		csf, err := BuildCSF(t)
		if err != nil {
			return Profile{}, err
		}
		for f := 0; f < csf.NumFibers(); f++ {
			if l := int(csf.FiberPtr[f+1] - csf.FiberPtr[f]); l > p.MaxFiberLen {
				p.MaxFiberLen = l
			}
		}
	}
	return p, nil
}

// String renders the profile as a small report.
func (p Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s maxFiber=%d\n", p.Stats, p.MaxFiberLen)
	for m := 0; m < 3; m++ {
		mp := p.Modes[m]
		fmt.Fprintf(&b, "  mode-%d: len=%d nonEmpty=%d (%.0f%%) max=%d gini=%.2f top10%%=%.0f%% top1%%=%.0f%%\n",
			m+1, mp.Length, mp.NonEmpty,
			100*float64(mp.NonEmpty)/float64(maxIntT(mp.Length, 1)),
			mp.MaxCount, mp.Gini, 100*mp.TopShare[0], 100*mp.TopShare[1])
	}
	return strings.TrimRight(b.String(), "\n")
}

func maxIntT(a, b int) int {
	if a > b {
		return a
	}
	return b
}
