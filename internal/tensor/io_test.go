package tensor

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadTNSBasic(t *testing.T) {
	in := `# a comment
1 1 1 5.0

1 2 2 3
3 1 1 9.5
`
	c, err := ReadTNS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 3 {
		t.Fatalf("nnz = %d", c.NNZ())
	}
	if c.Dims != (Dims{3, 2, 2}) {
		t.Fatalf("dims = %v", c.Dims)
	}
	if c.I[2] != 2 || c.Val[2] != 9.5 {
		t.Fatal("entries parsed wrong")
	}
}

func TestReadTNSDimsComment(t *testing.T) {
	in := "# dims: 10 20 30\n1 1 1 1\n"
	c, err := ReadTNS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Dims != (Dims{10, 20, 30}) {
		t.Fatalf("dims = %v", c.Dims)
	}
}

func TestReadTNSErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields":      "1 1 1\n",
		"too many fields":     "1 1 1 1 1\n",
		"bad coordinate":      "x 1 1 1\n",
		"zero coordinate":     "0 1 1 1\n",
		"negative coordinate": "-2 1 1 1\n",
		"bad value":           "1 1 1 zz\n",
		"bad dims comment":    "# dims: 1 2\n1 1 1 1\n",
		"coordinate too big":  "4294967296 1 1 1\n",
		"dims below data":     "# dims: 1 1 1\n2 1 1 1\n",
	}
	for name, in := range cases {
		if _, err := ReadTNS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error for %q", name, in)
		}
	}
}

func TestReadTNSEmpty(t *testing.T) {
	c, err := ReadTNS(strings.NewReader("# nothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 0 {
		t.Fatal("phantom entries")
	}
	if !c.Dims.Valid() {
		t.Fatal("empty tensor must still have valid dims")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := randomCOO(rng, Dims{9, 5, 7}, 150)
	orig.Dedup()
	var buf bytes.Buffer
	if err := WriteTNS(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTNS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dims != orig.Dims {
		t.Fatalf("dims %v != %v", back.Dims, orig.Dims)
	}
	if !sameMultiset(entryMultiset(orig), entryMultiset(back)) {
		t.Fatal("round trip changed entries")
	}
}

func TestRoundTripPreservesEmptyTrailingSlices(t *testing.T) {
	c := NewCOO(Dims{100, 100, 100}, 0)
	c.Append(0, 0, 0, 1) // only the first cell is used
	var buf bytes.Buffer
	if err := WriteTNS(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTNS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dims != c.Dims {
		t.Fatalf("dims comment lost: %v", back.Dims)
	}
}

func TestFileSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.tns")
	rng := rand.New(rand.NewSource(4))
	orig := randomCOO(rng, Dims{4, 4, 4}, 20)
	orig.Dedup()
	if err := SaveTNSFile(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTNSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(entryMultiset(orig), entryMultiset(back)) {
		t.Fatal("file round trip changed entries")
	}
	if _, err := LoadTNSFile(filepath.Join(dir, "missing.tns")); err == nil {
		t.Fatal("loading a missing file should fail")
	}
}

func TestComputeStats(t *testing.T) {
	c := NewCOO(Dims{10, 10, 10}, 0)
	c.Append(0, 0, 0, 1)
	c.Append(0, 1, 0, 1) // same fiber
	c.Append(0, 0, 1, 1) // new fiber
	s := ComputeStats(c)
	if s.NNZ != 3 || s.Fibers != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Density != 3e-3 {
		t.Fatalf("density = %v", s.Density)
	}
	if s.AvgFiberLength != 1.5 {
		t.Fatalf("avg fiber = %v", s.AvgFiberLength)
	}
	if s.COOBytes != 96 {
		t.Fatalf("COOBytes = %d", s.COOBytes)
	}
	if s.SPLATTBytes != 16+80+32+48 {
		t.Fatalf("SPLATTBytes = %d", s.SPLATTBytes)
	}
	if !strings.Contains(s.String(), "nnz=3") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestWriteTNSPreservesPrecision(t *testing.T) {
	c := NewCOO(Dims{1, 1, 1}, 0)
	c.Append(0, 0, 0, 0.1234567890123456789)
	var buf bytes.Buffer
	if err := WriteTNS(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTNS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Val[0] != c.Val[0] {
		t.Fatalf("value %v != %v", back.Val[0], c.Val[0])
	}
}
