package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildCSFEmpty(t *testing.T) {
	c := NewCOO(Dims{4, 4, 4}, 0)
	csf, err := BuildCSF(c)
	if err != nil {
		t.Fatal(err)
	}
	if csf.NNZ() != 0 || csf.NumFibers() != 0 || csf.NumSlices() != 0 {
		t.Fatal("empty CSF has phantom content")
	}
	if err := csf.Validate(); err != nil {
		t.Fatal(err)
	}
	back := csf.ToCOO()
	if back.NNZ() != 0 {
		t.Fatal("empty round trip failed")
	}
}

func TestBuildCSFRejectsInvalid(t *testing.T) {
	bad := NewCOO(Dims{2, 2, 2}, 0)
	bad.Append(5, 0, 0, 1)
	if _, err := BuildCSF(bad); err == nil {
		t.Fatal("BuildCSF accepted out-of-range tensor")
	}
}

func TestBuildCSFDoesNotMutateInput(t *testing.T) {
	c := NewCOO(Dims{3, 3, 3}, 0)
	c.Append(2, 2, 2, 1)
	c.Append(0, 0, 0, 2) // unsorted on purpose
	wasSorted := c.IsFiberSorted()
	if wasSorted {
		t.Fatal("test setup: input should be unsorted")
	}
	if _, err := BuildCSF(c); err != nil {
		t.Fatal(err)
	}
	if c.IsFiberSorted() {
		t.Fatal("BuildCSF sorted the caller's tensor in place")
	}
}

func TestCSFRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, nnz := range []int{1, 2, 17, 300} {
		c := randomCOO(rng, Dims{7, 8, 9}, nnz)
		c.Dedup()
		csf, err := BuildCSF(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := csf.Validate(); err != nil {
			t.Fatalf("nnz=%d: %v", nnz, err)
		}
		back := csf.ToCOO()
		if !sameMultiset(entryMultiset(c), entryMultiset(back)) {
			t.Fatalf("nnz=%d: round trip changed entries", nnz)
		}
		if !back.IsFiberSorted() {
			t.Fatal("ToCOO output not fiber sorted")
		}
	}
}

func TestCSFCountsMatchCOO(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := randomCOO(rng, Dims{10, 10, 10}, 400)
	c.Dedup()
	csf, err := BuildCSF(c)
	if err != nil {
		t.Fatal(err)
	}
	if csf.NNZ() != c.NNZ() {
		t.Fatalf("nnz %d != %d", csf.NNZ(), c.NNZ())
	}
	if csf.NumFibers() != c.CountFibers() {
		t.Fatalf("fibers %d != %d", csf.NumFibers(), c.CountFibers())
	}
	// Slice count equals distinct i values.
	seen := map[Index]bool{}
	for _, i := range c.I {
		seen[i] = true
	}
	if csf.NumSlices() != len(seen) {
		t.Fatalf("slices %d != %d", csf.NumSlices(), len(seen))
	}
}

func TestCSFMemoryModels(t *testing.T) {
	c := NewCOO(Dims{3, 3, 3}, 7)
	c.Append(0, 0, 0, 5)
	c.Append(0, 1, 1, 3)
	c.Append(0, 1, 2, 1)
	c.Append(1, 0, 2, 2)
	c.Append(1, 1, 1, 9)
	c.Append(1, 2, 2, 7)
	c.Append(2, 0, 0, 9)
	csf, err := BuildCSF(c)
	if err != nil {
		t.Fatal(err)
	}
	// Paper model: 16 + 8*3 + 16*6 + 16*7 = 248.
	if got := csf.PaperMemoryBytes(); got != 248 {
		t.Fatalf("PaperMemoryBytes = %d, want 248", got)
	}
	// Actual: 4*(3 slices + 4 sliceptr + 6 fiberK + 7 fiberptr + 7 nzJ) + 8*7 = 4*27+56 = 164.
	if got := csf.MemoryBytes(); got != 164 {
		t.Fatalf("MemoryBytes = %d, want 164", got)
	}
	// COO paper model for comparison: 32*7 = 224 > SPLATT in fiber-rich data.
	if ComputeStats(c).COOBytes != 224 {
		t.Fatal("COO byte model wrong")
	}
}

func TestCSFValidateCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	fresh := func() *CSF {
		c := randomCOO(rng, Dims{5, 5, 5}, 60)
		c.Dedup()
		csf, err := BuildCSF(c)
		if err != nil {
			t.Fatal(err)
		}
		return csf
	}

	corruptions := []struct {
		name string
		mut  func(c *CSF)
	}{
		{"slice id out of range", func(c *CSF) { c.SliceID[0] = 99 }},
		{"slice ids out of order", func(c *CSF) {
			if len(c.SliceID) > 1 {
				c.SliceID[1] = c.SliceID[0]
			} else {
				c.SliceID[0] = -1
			}
		}},
		{"fiber k out of range", func(c *CSF) { c.FiberK[0] = -3 }},
		{"j out of range", func(c *CSF) { c.NzJ[0] = 99 }},
		{"sliceptr broken", func(c *CSF) { c.SlicePtr[0] = 1 }},
		{"fiberptr broken", func(c *CSF) { c.FiberPtr[len(c.FiberPtr)-1]++ }},
		{"ragged val", func(c *CSF) { c.Val = c.Val[:len(c.Val)-1] }},
	}
	for _, tc := range corruptions {
		csf := fresh()
		tc.mut(csf)
		if err := csf.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted corrupted structure", tc.name)
		}
	}
}

func TestAvgFiberLength(t *testing.T) {
	c := NewCOO(Dims{2, 4, 2}, 0)
	// One fiber with 4 nonzeros, one with 2.
	for j := 0; j < 4; j++ {
		c.Append(0, Index(j), 0, 1)
	}
	c.Append(1, 0, 1, 1)
	c.Append(1, 1, 1, 1)
	csf, err := BuildCSF(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := csf.AvgFiberLength(); got != 3 {
		t.Fatalf("AvgFiberLength = %v, want 3", got)
	}
	empty := &CSF{Dims: Dims{1, 1, 1}, SlicePtr: []int32{0}, FiberPtr: []int32{0}}
	if empty.AvgFiberLength() != 0 {
		t.Fatal("empty AvgFiberLength should be 0")
	}
}

// Property: COO -> CSF -> COO round-trips the entry multiset and the
// CSF always validates, for arbitrary deduped tensors.
func TestQuickCSFRoundTrip(t *testing.T) {
	f := func(seed int64, di, dj, dk uint8, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := Dims{int(di%9) + 1, int(dj%9) + 1, int(dk%9) + 1}
		c := randomCOO(rng, dims, int(n%400))
		c.Dedup()
		csf, err := BuildCSF(c)
		if err != nil {
			return false
		}
		if csf.Validate() != nil {
			return false
		}
		if csf.NumFibers() != c.CountFibers() || csf.NNZ() != c.NNZ() {
			return false
		}
		return sameMultiset(entryMultiset(c), entryMultiset(csf.ToCOO()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
