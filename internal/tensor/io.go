package tensor

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadTNS parses a FROSTT-style text tensor: one nonzero per line as
// "i j k value" with 1-based coordinates, blank lines and '#' comments
// ignored. Mode lengths are the maximum coordinate seen unless a
// comment of the form "# dims: I J K" declares them.
func ReadTNS(r io.Reader) (*COO, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	t := NewCOO(Dims{1, 1, 1}, 1024)
	var declared *Dims
	line := 0
	var maxI, maxJ, maxK Index
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if rest, ok := strings.CutPrefix(text, "# dims:"); ok {
				var d Dims
				if _, err := fmt.Sscan(rest, &d[0], &d[1], &d[2]); err != nil {
					return nil, fmt.Errorf("tensor: line %d: bad dims comment: %w", line, err)
				}
				declared = &d
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 4 {
			return nil, fmt.Errorf("tensor: line %d: want 4 fields (i j k val), got %d", line, len(fields))
		}
		var coord [3]int64
		for m := 0; m < 3; m++ {
			v, err := strconv.ParseInt(fields[m], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("tensor: line %d: bad coordinate %q: %w", line, fields[m], err)
			}
			if v < 1 {
				return nil, fmt.Errorf("tensor: line %d: coordinates are 1-based, got %d", line, v)
			}
			if v > 1<<31-1 {
				return nil, fmt.Errorf("tensor: line %d: coordinate %d exceeds int32 range", line, v)
			}
			coord[m] = v
		}
		val, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("tensor: line %d: bad value %q: %w", line, fields[3], err)
		}
		i, j, k := Index(coord[0]-1), Index(coord[1]-1), Index(coord[2]-1)
		if i+1 > maxI {
			maxI = i + 1
		}
		if j+1 > maxJ {
			maxJ = j + 1
		}
		if k+1 > maxK {
			maxK = k + 1
		}
		t.Append(i, j, k, val)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tensor: read: %w", err)
	}
	if declared != nil {
		t.Dims = *declared
	} else {
		t.Dims = Dims{int(maxI), int(maxJ), int(maxK)}
		if t.NNZ() == 0 {
			t.Dims = Dims{1, 1, 1}
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteTNS writes the tensor in FROSTT text form with a dims comment so
// trailing empty slices survive a round trip.
func WriteTNS(w io.Writer, t *COO) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# dims: %d %d %d\n", t.Dims[0], t.Dims[1], t.Dims[2]); err != nil {
		return err
	}
	for p := 0; p < t.NNZ(); p++ {
		if _, err := fmt.Fprintf(bw, "%d %d %d %s\n",
			t.I[p]+1, t.J[p]+1, t.K[p]+1,
			strconv.FormatFloat(t.Val[p], 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadTNSFile reads a tensor from a file path.
func LoadTNSFile(path string) (*COO, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTNS(f)
}

// SaveTNSFile writes a tensor to a file path.
func SaveTNSFile(path string, t *COO) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTNS(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Stats summarises a tensor's shape, in the vocabulary of Table II and
// the Sec. IV byte model.
type Stats struct {
	Dims           Dims
	NNZ            int
	Fibers         int
	Density        float64
	AvgFiberLength float64
	COOBytes       int64 // paper model: 32 * nnz
	SPLATTBytes    int64 // paper model: 16 + 8I + 16F + 16nnz
}

// ComputeStats gathers Stats for a COO tensor.
func ComputeStats(t *COO) Stats {
	f := t.CountFibers()
	s := Stats{
		Dims:     t.Dims,
		NNZ:      t.NNZ(),
		Fibers:   f,
		Density:  t.Density(),
		COOBytes: 32 * int64(t.NNZ()),
		SPLATTBytes: 16 + 8*int64(t.Dims[0]) +
			16*int64(f) + 16*int64(t.NNZ()),
	}
	if f > 0 {
		s.AvgFiberLength = float64(t.NNZ()) / float64(f)
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("%v nnz=%d fibers=%d density=%.3g avgFiber=%.2f",
		s.Dims, s.NNZ, s.Fibers, s.Density, s.AvgFiberLength)
}
