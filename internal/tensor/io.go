package tensor

import (
	"errors"
	"fmt"
	"io"
	"os"

	"spblock/internal/nmode"
)

// ReadTNS parses a FROSTT-style text tensor: one nonzero per line as
// "i j k value" with 1-based coordinates, blank lines and '#' comments
// ignored. Mode lengths are the maximum coordinate seen unless a
// comment of the form "# dims: I J K" declares them.
//
// Parsing is delegated to the order-N reader in internal/nmode (the
// canonical TNS parser); this adapter fixes the order at 3 and converts
// zero-copy. Empty input with no dims comment — where the order is
// unknowable — is legal here because the order is pinned: it yields an
// empty 1x1x1 tensor.
func ReadTNS(r io.Reader) (*COO, error) {
	nt, err := nmode.ReadTNS(r)
	if err != nil {
		if errors.Is(err, nmode.ErrNoData) {
			return NewCOO(Dims{1, 1, 1}, 0), nil
		}
		return nil, err
	}
	if nt.Order() != 3 {
		return nil, fmt.Errorf("%w: order-%d data where third order is required",
			ErrBadTensor, nt.Order())
	}
	t, err := FromNMode(nt)
	if err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteTNS writes the tensor in FROSTT text form with a dims comment so
// trailing empty slices survive a round trip. The order-N writer does
// the formatting over a zero-copy view.
func WriteTNS(w io.Writer, t *COO) error {
	return nmode.WriteTNS(w, ToNMode(t))
}

// LoadTNSFile reads a tensor from a file path.
func LoadTNSFile(path string) (*COO, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTNS(f)
}

// SaveTNSFile writes a tensor to a file path.
func SaveTNSFile(path string, t *COO) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTNS(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Stats summarises a tensor's shape, in the vocabulary of Table II and
// the Sec. IV byte model.
type Stats struct {
	Dims           Dims
	NNZ            int
	Fibers         int
	Density        float64
	AvgFiberLength float64
	COOBytes       int64 // paper model: 32 * nnz
	SPLATTBytes    int64 // paper model: 16 + 8I + 16F + 16nnz
}

// ComputeStats gathers Stats for a COO tensor.
func ComputeStats(t *COO) Stats {
	f := t.CountFibers()
	s := Stats{
		Dims:     t.Dims,
		NNZ:      t.NNZ(),
		Fibers:   f,
		Density:  t.Density(),
		COOBytes: 32 * int64(t.NNZ()),
		SPLATTBytes: 16 + 8*int64(t.Dims[0]) +
			16*int64(f) + 16*int64(t.NNZ()),
	}
	if f > 0 {
		s.AvgFiberLength = float64(t.NNZ()) / float64(f)
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("%v nnz=%d fibers=%d density=%.3g avgFiber=%.2f",
		s.Dims, s.NNZ, s.Fibers, s.Density, s.AvgFiberLength)
}
