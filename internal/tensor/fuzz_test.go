package tensor

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTNS drives the text parser with arbitrary inputs: it must
// never panic, and whatever it accepts must validate and round-trip.
func FuzzReadTNS(f *testing.F) {
	seeds := []string{
		"1 1 1 5.0\n",
		"# dims: 3 3 3\n1 2 3 -1e4\n2 2 2 0.5\n",
		"# comment\n\n10 1 1 1\n",
		"1 1 1 1\n1 1 1 2\n",
		"9999999 1 1 1\n",
		"1 1 1 nan\n",
		"a b c d\n",
		"# dims: 0 0 0\n",
		"1 1 1 1e309\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		c, err := ReadTNS(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("accepted tensor fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteTNS(&buf, c); err != nil {
			t.Fatalf("cannot re-serialise accepted tensor: %v", err)
		}
		back, err := ReadTNS(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted tensor failed: %v", err)
		}
		if back.NNZ() != c.NNZ() || back.Dims != c.Dims {
			t.Fatalf("round trip changed shape: %v/%d vs %v/%d",
				back.Dims, back.NNZ(), c.Dims, c.NNZ())
		}
	})
}
