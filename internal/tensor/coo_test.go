package tensor

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// randomCOO builds a random tensor with possibly duplicate coordinates.
func randomCOO(rng *rand.Rand, dims Dims, nnz int) *COO {
	t := NewCOO(dims, nnz)
	for p := 0; p < nnz; p++ {
		t.Append(
			Index(rng.Intn(dims[0])),
			Index(rng.Intn(dims[1])),
			Index(rng.Intn(dims[2])),
			rng.NormFloat64(),
		)
	}
	return t
}

// entryKey serialises entry p for multiset comparisons.
type entryKey struct {
	i, j, k Index
	v       float64
}

func entryMultiset(t *COO) map[entryKey]int {
	m := make(map[entryKey]int, t.NNZ())
	for p := 0; p < t.NNZ(); p++ {
		m[entryKey{t.I[p], t.J[p], t.K[p], t.Val[p]}]++
	}
	return m
}

func sameMultiset(a, b map[entryKey]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestDimsValidVolume(t *testing.T) {
	if (Dims{0, 1, 1}).Valid() || (Dims{1, -1, 1}).Valid() {
		t.Fatal("Valid accepted non-positive dims")
	}
	d := Dims{100, 200, 300}
	if !d.Valid() {
		t.Fatal("Valid rejected positive dims")
	}
	if d.Volume() != 6e6 {
		t.Fatalf("Volume = %v", d.Volume())
	}
	if d.String() != "100x200x300" {
		t.Fatalf("String = %q", d.String())
	}
	// Volume must not overflow for paper-scale Amazon dims.
	amazon := Dims{4_800_000, 1_800_000, 1_800_000}
	if amazon.Volume() <= 0 {
		t.Fatal("Volume overflowed")
	}
}

func TestAppendAndNNZ(t *testing.T) {
	c := NewCOO(Dims{3, 3, 3}, 0)
	if c.NNZ() != 0 {
		t.Fatal("fresh tensor not empty")
	}
	c.Append(0, 1, 2, 5)
	c.Append(2, 2, 2, -1)
	if c.NNZ() != 2 {
		t.Fatalf("NNZ = %d", c.NNZ())
	}
	if c.I[1] != 2 || c.J[0] != 1 || c.K[0] != 2 || c.Val[1] != -1 {
		t.Fatal("entries stored incorrectly")
	}
}

func TestValidateCatchesBadTensors(t *testing.T) {
	ok := NewCOO(Dims{2, 2, 2}, 0)
	ok.Append(1, 1, 1, 1)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid tensor rejected: %v", err)
	}

	bad := NewCOO(Dims{2, 0, 2}, 0)
	if err := bad.Validate(); err == nil {
		t.Fatal("zero dim accepted")
	}

	oob := NewCOO(Dims{2, 2, 2}, 0)
	oob.Append(2, 0, 0, 1)
	if err := oob.Validate(); err == nil {
		t.Fatal("out-of-range i accepted")
	}
	oob2 := NewCOO(Dims{2, 2, 2}, 0)
	oob2.Append(0, 0, -1, 1)
	if err := oob2.Validate(); err == nil {
		t.Fatal("negative k accepted")
	}

	ragged := NewCOO(Dims{2, 2, 2}, 0)
	ragged.Append(0, 0, 0, 1)
	ragged.I = ragged.I[:0]
	if err := ragged.Validate(); err == nil {
		t.Fatal("ragged slices accepted")
	}
}

func TestPaperExampleFigure1(t *testing.T) {
	// The 3x3x3 tensor of Figure 1a (converted to 0-based indices).
	c := NewCOO(Dims{3, 3, 3}, 7)
	c.Append(0, 0, 0, 5)
	c.Append(0, 1, 1, 3)
	c.Append(0, 1, 2, 1)
	c.Append(1, 0, 2, 2)
	c.Append(1, 1, 1, 9)
	c.Append(1, 2, 2, 7)
	c.Append(2, 0, 0, 9)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Figure 1b: 6 fibers across 3 rows.
	if got := c.CountFibers(); got != 6 {
		t.Fatalf("fibers = %d, want 6 (Figure 1b)", got)
	}
	csf, err := BuildCSF(c)
	if err != nil {
		t.Fatal(err)
	}
	if csf.NumSlices() != 3 || csf.NumFibers() != 6 || csf.NNZ() != 7 {
		t.Fatalf("CSF shape %d/%d/%d, want 3/6/7",
			csf.NumSlices(), csf.NumFibers(), csf.NNZ())
	}
	// Row 1 of the figure holds fibers k=1,2,3 (1-based) = 0,1,2 here.
	if csf.SlicePtr[1]-csf.SlicePtr[0] != 3 {
		t.Fatalf("row 0 fiber count = %d, want 3", csf.SlicePtr[1]-csf.SlicePtr[0])
	}
}

func TestSortFiberOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := randomCOO(rng, Dims{5, 6, 7}, 200)
	before := entryMultiset(c)
	c.SortFiberOrder()
	if !c.IsFiberSorted() {
		t.Fatal("not sorted after SortFiberOrder")
	}
	if !sameMultiset(before, entryMultiset(c)) {
		t.Fatal("sort changed the entry multiset")
	}
	// Strict (i,k,j) order check.
	for p := 1; p < c.NNZ(); p++ {
		a := [3]Index{c.I[p-1], c.K[p-1], c.J[p-1]}
		b := [3]Index{c.I[p], c.K[p], c.J[p]}
		if a[0] > b[0] || (a[0] == b[0] && (a[1] > b[1] || (a[1] == b[1] && a[2] > b[2]))) {
			t.Fatalf("order violated at %d: %v > %v", p, a, b)
		}
	}
}

func TestDedupSumsValues(t *testing.T) {
	c := NewCOO(Dims{2, 2, 2}, 0)
	c.Append(1, 1, 1, 2)
	c.Append(0, 0, 0, 1)
	c.Append(1, 1, 1, 3)
	c.Append(1, 1, 1, -1)
	merged := c.Dedup()
	if merged != 2 {
		t.Fatalf("merged = %d, want 2", merged)
	}
	if c.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", c.NNZ())
	}
	// After dedup the tensor is sorted: (0,0,0)=1 then (1,1,1)=4.
	if c.Val[0] != 1 || c.Val[1] != 4 {
		t.Fatalf("values = %v", c.Val)
	}
}

func TestDedupEmpty(t *testing.T) {
	c := NewCOO(Dims{1, 1, 1}, 0)
	if c.Dedup() != 0 {
		t.Fatal("dedup on empty tensor")
	}
}

func TestPermuteModes(t *testing.T) {
	c := NewCOO(Dims{2, 3, 4}, 0)
	c.Append(1, 2, 3, 7)
	p, err := c.PermuteModes([3]int{1, 2, 0}) // new mode order (j, k, i)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dims != (Dims{3, 4, 2}) {
		t.Fatalf("dims = %v", p.Dims)
	}
	if p.I[0] != 2 || p.J[0] != 3 || p.K[0] != 1 || p.Val[0] != 7 {
		t.Fatalf("entry = (%d,%d,%d,%v)", p.I[0], p.J[0], p.K[0], p.Val[0])
	}
	if _, err := c.PermuteModes([3]int{0, 0, 1}); err == nil {
		t.Fatal("accepted non-permutation")
	}
	if _, err := c.PermuteModes([3]int{0, 1, 3}); err == nil {
		t.Fatal("accepted out-of-range mode")
	}
}

func TestPermuteIdentityAndInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomCOO(rng, Dims{4, 5, 6}, 50)
	id, err := c.PermuteModes([3]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(entryMultiset(c), entryMultiset(id)) {
		t.Fatal("identity permutation changed entries")
	}
	// (1,2,0) then (2,0,1) is the identity.
	p1, _ := c.PermuteModes([3]int{1, 2, 0})
	p2, _ := p1.PermuteModes([3]int{2, 0, 1})
	if p2.Dims != c.Dims || !sameMultiset(entryMultiset(c), entryMultiset(p2)) {
		t.Fatal("permutation inverse does not round-trip")
	}
}

func TestNormSquared(t *testing.T) {
	c := NewCOO(Dims{2, 2, 2}, 0)
	c.Append(0, 0, 0, 3)
	c.Append(1, 1, 1, 4)
	if c.NormSquared() != 25 {
		t.Fatalf("NormSquared = %v", c.NormSquared())
	}
}

func TestCountFibersSortedAndUnsorted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := randomCOO(rng, Dims{6, 6, 6}, 120)
	unsorted := c.CountFibers()
	s := c.Clone()
	s.SortFiberOrder()
	if got := s.CountFibers(); got != unsorted {
		t.Fatalf("fiber count differs sorted=%d unsorted=%d", got, unsorted)
	}
}

func TestDensity(t *testing.T) {
	c := NewCOO(Dims{10, 10, 10}, 0)
	c.Append(0, 0, 0, 1)
	if c.Density() != 1e-3 {
		t.Fatalf("density = %v", c.Density())
	}
	bad := &COO{Dims: Dims{0, 1, 1}}
	if bad.Density() != 0 {
		t.Fatal("density of invalid dims should be 0")
	}
}

// Property: sorting preserves the multiset of entries for arbitrary
// random tensors (testing/quick drives shapes and seeds).
func TestQuickSortIsPermutation(t *testing.T) {
	f := func(seed int64, di, dj, dk uint8, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := Dims{int(di%8) + 1, int(dj%8) + 1, int(dk%8) + 1}
		c := randomCOO(rng, dims, int(n%512))
		before := entryMultiset(c)
		c.SortFiberOrder()
		return c.IsFiberSorted() && sameMultiset(before, entryMultiset(c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dedup leaves exactly the distinct coordinates, each with
// the sum of its duplicates' values.
func TestQuickDedup(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := Dims{3, 3, 3}
		c := randomCOO(rng, dims, int(n%256))
		// Oracle: map-based accumulation.
		oracle := make(map[[3]Index]float64)
		for p := 0; p < c.NNZ(); p++ {
			oracle[[3]Index{c.I[p], c.J[p], c.K[p]}] += c.Val[p]
		}
		c.Dedup()
		if c.NNZ() != len(oracle) {
			return false
		}
		for p := 0; p < c.NNZ(); p++ {
			want := oracle[[3]Index{c.I[p], c.J[p], c.K[p]}]
			if diff := c.Val[p] - want; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return sort.IsSorted(cooSorter{c})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSortFiberOrderCountingSortPath(t *testing.T) {
	// Above the threshold (4096 entries) the LSD counting sort runs;
	// it must agree with the comparison sort exactly.
	rng := rand.New(rand.NewSource(77))
	big := randomCOO(rng, Dims{50, 60, 70}, 10000)
	before := entryMultiset(big)
	ref := big.Clone()
	sort.Sort(cooSorter{ref}) // force the comparison path

	big.SortFiberOrder()
	if !big.IsFiberSorted() {
		t.Fatal("counting sort output not sorted")
	}
	if !sameMultiset(before, entryMultiset(big)) {
		t.Fatal("counting sort changed the entry multiset")
	}
	for p := 0; p < big.NNZ(); p++ {
		if big.I[p] != ref.I[p] || big.K[p] != ref.K[p] || big.J[p] != ref.J[p] {
			t.Fatalf("counting sort diverges from comparison sort at %d", p)
		}
	}
}

func TestSortFiberOrderOutOfRangeFallsBack(t *testing.T) {
	// Coordinates outside Dims would crash the counting sort; the
	// implementation must detect them and fall back to comparisons.
	c := NewCOO(Dims{2, 2, 2}, 0)
	for p := 0; p < 5000; p++ {
		c.Append(Index(p%10), Index(p%7), Index(p%3), 1) // i up to 9 > dims
	}
	c.SortFiberOrder() // must not panic
	if !c.IsFiberSorted() {
		t.Fatal("fallback did not sort")
	}
}
