package tensor

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestProfileModeUniform(t *testing.T) {
	// One nonzero per index: Gini 0, everything non-empty.
	c := NewCOO(Dims{10, 10, 10}, 0)
	for i := 0; i < 10; i++ {
		c.Append(Index(i), Index(i), Index(i), 1)
	}
	p, err := ProfileMode(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.NonEmpty != 10 || p.MaxCount != 1 {
		t.Fatalf("profile = %+v", p)
	}
	if p.Gini > 1e-9 {
		t.Fatalf("uniform counts should have Gini 0, got %v", p.Gini)
	}
	if math.Abs(p.MeanCount-1) > 1e-12 {
		t.Fatalf("mean = %v", p.MeanCount)
	}
	// Top 10% of 10 indices = 1 index = 10% of mass.
	if math.Abs(p.TopShare[0]-0.1) > 1e-9 {
		t.Fatalf("top10 share = %v", p.TopShare[0])
	}
}

func TestProfileModeSkewed(t *testing.T) {
	// All nonzeros on a single index: Gini near 1, top shares 100%.
	c := NewCOO(Dims{100, 4, 4}, 0)
	for k := 0; k < 4; k++ {
		for j := 0; j < 4; j++ {
			c.Append(7, Index(j), Index(k), 1)
		}
	}
	p, err := ProfileMode(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.NonEmpty != 1 {
		t.Fatalf("nonEmpty = %d", p.NonEmpty)
	}
	if p.Gini < 0.9 {
		t.Fatalf("single-hub mode should have Gini near 1, got %v", p.Gini)
	}
	if p.TopShare[0] != 1 || p.TopShare[1] != 1 {
		t.Fatalf("top shares = %v", p.TopShare)
	}
}

func TestProfileModeValidation(t *testing.T) {
	c := NewCOO(Dims{2, 2, 2}, 0)
	if _, err := ProfileMode(c, 3); err == nil {
		t.Fatal("mode 3 accepted")
	}
	bad := NewCOO(Dims{2, 2, 2}, 0)
	bad.Append(5, 0, 0, 1)
	if _, err := ProfileMode(bad, 0); err == nil {
		t.Fatal("invalid tensor accepted")
	}
}

func TestProfileModeEmpty(t *testing.T) {
	c := NewCOO(Dims{5, 5, 5}, 0)
	p, err := ProfileMode(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NonEmpty != 0 || p.Gini != 0 || p.MaxCount != 0 {
		t.Fatalf("empty profile = %+v", p)
	}
}

func TestProfileTensor(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := randomCOO(rng, Dims{20, 30, 25}, 500)
	c.Dedup()
	p, err := ProfileTensor(c)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.NNZ != c.NNZ() {
		t.Fatal("stats mismatch")
	}
	if p.MaxFiberLen < 1 {
		t.Fatalf("max fiber = %d", p.MaxFiberLen)
	}
	s := p.String()
	for _, want := range []string{"mode-1", "mode-2", "mode-3", "gini"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestProfileDistinguishesClusteredFromUniform(t *testing.T) {
	// A Zipf-ish mode should profile as more skewed than a uniform one.
	rng := rand.New(rand.NewSource(2))
	uniform := randomCOO(rng, Dims{200, 50, 50}, 3000)
	skewed := NewCOO(Dims{200, 50, 50}, 3000)
	for p := 0; p < 3000; p++ {
		// Quadratic skew toward low indices.
		u := rng.Float64()
		skewed.Append(Index(float64(199)*u*u), Index(rng.Intn(50)), Index(rng.Intn(50)), 1)
	}
	pu, err := ProfileMode(uniform, 0)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := ProfileMode(skewed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Gini <= pu.Gini {
		t.Fatalf("skewed Gini %v not above uniform %v", ps.Gini, pu.Gini)
	}
	if ps.TopShare[0] <= pu.TopShare[0] {
		t.Fatalf("skewed top-10%% %v not above uniform %v", ps.TopShare[0], pu.TopShare[0])
	}
}
