// Package metrics is the always-compiled, allocation-free kernel
// instrumentation layer. The paper's argument rests on *measured*
// memory traffic and load balance (the roofline placement of Sec. IV-A
// and the pressure-point analysis of Sec. IV-B), yet an uninstrumented
// executor runs blind: a perf claim in a bench log cannot be decomposed
// into "how many nonzeros moved", "how many strips re-walked the
// tensor" or "which worker sat idle". This package gives every executor
// a Collector that answers those questions for free.
//
// The design obeys the //spblock:hotpath zero-alloc contract by
// splitting each counter into a cold half and a hot half:
//
//   - the cold half (SizeWorkers, SetPerRun) runs at construction and on
//     the amortised rank-resize path. It precomputes the per-Run counter
//     deltas — nnz processed, fibers touched, blocks visited, strips
//     packed, estimated bytes moved per Equation 1 — from the
//     preprocessed structure, because those deltas are a pure function
//     of (structure, rank, strip width) and never change between
//     resizes;
//   - the hot half (EndRun, AddWorkerTime) is a handful of integer adds
//     against pre-sized fields. No allocation, no locking, no map, no
//     interface: spblock-lint's hotpathalloc analyzer traverses these
//     bodies from every annotated kernel entry point and they pass
//     unmodified.
//
// Per-worker wall time lives in a bucket slice pre-sized to the worker
// count; each worker owns exactly one element, so concurrent writes are
// race-free by index disjointness (the same argument the kernels use
// for output rows). Snapshot copies everything out and derives the two
// numbers the paper's figures are built from: load imbalance
// (max/mean worker busy time, the Fig. 5 quantity) and achieved GB/s
// against the Equation 1 traffic estimate (the Fig. 4 roofline
// placement).
package metrics

import (
	"time"

	"spblock/internal/roofline"
)

// PerRun holds the structure-derived counter deltas one executor Run
// contributes. It is precomputed on the cold (workspace-resize) path so
// the hot path only performs constant-count integer additions.
type PerRun struct {
	// NNZ is the number of nonzeros the kernels process per Run. Rank
	// strips re-walk the whole structure once per strip, so with S
	// strips this is S times the stored nonzero count — exactly the
	// index-retraffic cost Sec. V-B trades against factor locality.
	NNZ int64
	// Fibers is the number of fiber (accumulator) epilogues per Run,
	// again counted once per strip walk. Blocked layouts store more
	// fibers than the unblocked CSF (fibers split at block boundaries);
	// that overhead is visible here.
	Fibers int64
	// Blocks is the number of non-empty spatial blocks visited per Run
	// (0 for unblocked layouts).
	Blocks int64
	// Strips is the number of rank-strip kernel invocations per Run
	// (0 when rank blocking is off or the strip covers the whole rank).
	Strips int64
	// BytesEst is the Equation 1 estimate of bytes moved per Run at
	// alpha = 0 (see EqBytes).
	BytesEst int64
}

// EqBytes evaluates the Equation 1 traffic model at alpha = 0 (every
// factor access misses — the compulsory-traffic upper bound) for a
// structure walked `strips` times at total rank `rank`:
//
//	Q = strips·(2·nnz + 2·F) + R·nnz + R·F   words of 8 bytes.
//
// The index terms (val + j index, k index + k pointer) are re-read on
// every strip walk; the factor terms stream each of the R columns
// exactly once across all strips (each strip touches only its own
// columns), so they do not scale with the strip count. strips < 1 is
// treated as 1 (a plain unstripped walk).
func EqBytes(nnz, fibers int64, rank, strips int) int64 {
	if strips < 1 {
		strips = 1
	}
	return 8 * (2*int64(strips)*(nnz+fibers) + int64(rank)*(nnz+fibers))
}

// Collector accumulates per-Run counters and per-worker wall-time
// buckets for one executor. The zero value is usable for sequential
// executors after SizeWorkers; executors embed one Collector by value
// and expose it through a Metrics() accessor.
//
// Concurrency: AddWorkerTime(w, ·) is called by worker w only, and
// distinct workers own distinct bucket elements; every other method is
// called from the executor's Run goroutine. A Collector must not be
// snapshotted while its executor is mid-Run (the same single-Run rule
// the pooled workspaces already impose).
type Collector struct {
	perRun PerRun
	kernel string
	sched  string

	runs       int64
	totals     PerRun
	runNS      int64
	workerNS   []int64
	steals     []int64
	ioWaitNS   int64
	prefetchNS []int64
}

// SizeWorkers pre-sizes the per-worker time buckets (and the parallel
// steal buckets). Called once at executor construction, after the
// worker closures are built; n < 1 is clamped to one bucket (the
// sequential path).
func (c *Collector) SizeWorkers(n int) {
	if n < 1 {
		n = 1
	}
	c.workerNS = make([]int64, n)
	c.steals = make([]int64, n)
}

// Workers returns the number of per-worker buckets (1 for sequential
// executors) — the length a WindowImbalance baseline must have.
func (c *Collector) Workers() int { return len(c.workerNS) }

// SetPerRun installs the precomputed per-Run counter deltas. Called on
// the amortised resize path whenever the rank or strip width changes.
func (c *Collector) SetPerRun(p PerRun) { c.perRun = p }

// SetKernel records the register-block kernel variant the executor
// resolved for its current rank (e.g. "w16"; see internal/kernel).
// Called on the same amortised resize path as SetPerRun; empty means
// the executor's method dispatches no rank-strip kernel.
func (c *Collector) SetKernel(name string) { c.kernel = name }

// SetSched records the executor's resolved scheduler identity (the
// internal/sched name constants, e.g. "static", "steal",
// "adaptive:static"). The adaptive executor calls it again at
// promotion time with a preallocated constant, so the call is legal on
// the hot path; empty means the executor runs sequentially and
// schedules nothing.
//
//spblock:hotpath
func (c *Collector) SetSched(name string) { c.sched = name }

// Sched returns the recorded scheduler identity.
func (c *Collector) Sched() string { return c.sched }

// EndRun closes out one executor Run that started at `start`: it adds
// the precomputed counter deltas and the wall time. On the sequential
// path (one bucket) the run's wall time is also the worker's busy time.
//
// Hot-path safe: constant integer adds only.
//
//spblock:hotpath
func (c *Collector) EndRun(start time.Time) {
	c.runs++
	c.totals.NNZ += c.perRun.NNZ
	c.totals.Fibers += c.perRun.Fibers
	c.totals.Blocks += c.perRun.Blocks
	c.totals.Strips += c.perRun.Strips
	c.totals.BytesEst += c.perRun.BytesEst
	ns := time.Since(start).Nanoseconds()
	c.runNS += ns
	if len(c.workerNS) == 1 {
		c.workerNS[0] += ns
	}
}

// AddWorkerTime adds dt to worker w's busy-time bucket. Called by the
// worker closures around their kernel bodies; each worker writes only
// its own element.
//
// Hot-path safe: one integer add.
func (c *Collector) AddWorkerTime(w int, dt time.Duration) {
	c.workerNS[w] += dt.Nanoseconds()
}

// AddWorkerSteal counts one stolen chunk claimed by worker w. Same
// index-disjointness contract as AddWorkerTime.
//
// Hot-path safe: one integer add.
func (c *Collector) AddWorkerSteal(w int) {
	c.steals[w]++
}

// SizePrefetchers pre-sizes the per-decoder prefetch busy-time buckets
// for an out-of-core executor. Cold path, called once at construction;
// n < 1 clears the buckets (the in-memory executors never call this,
// so their Snapshots omit the prefetch fields entirely).
func (c *Collector) SizePrefetchers(n int) {
	if n < 1 {
		c.prefetchNS = nil
		return
	}
	c.prefetchNS = make([]int64, n)
}

// AddIOWait adds dt to the consumer-side IO stall time: wall time the
// kernel loop spent blocked waiting for the next decoded block. Called
// only from the executor's Run goroutine.
//
// Hot-path safe: one integer add.
//
//spblock:hotpath
func (c *Collector) AddIOWait(dt time.Duration) {
	c.ioWaitNS += dt.Nanoseconds()
}

// AddPrefetch adds dt to decoder w's busy-time bucket (read + decode,
// excluding backpressure waits). Each decoder writes only its own
// element — the same index-disjointness contract as AddWorkerTime.
//
// Hot-path safe: one integer add.
//
//spblock:hotpath
func (c *Collector) AddPrefetch(w int, dt time.Duration) {
	c.prefetchNS[w] += dt.Nanoseconds()
}

// WindowImbalance returns the max/mean load-imbalance factor of the
// worker busy time accumulated since the previous call — the adaptive
// controller's per-run observation. prev is the caller-owned window
// baseline, pre-sized to the worker count on the cold path; the call
// updates it in place, so it is allocation-free and legal after EndRun
// on the hot path (the workers are quiescent there — same single-Run
// rule as Snapshot). Returns 1 (balanced) for sequential executors, a
// mis-sized baseline, or an empty window.
//
//spblock:hotpath
func (c *Collector) WindowImbalance(prev []int64) float64 {
	n := len(c.workerNS)
	if n <= 1 || len(prev) != n {
		return 1
	}
	var sum, maxNS int64
	for i, ns := range c.workerNS {
		d := ns - prev[i]
		prev[i] = ns
		sum += d
		if d > maxNS {
			maxNS = d
		}
	}
	if sum <= 0 {
		return 1
	}
	return float64(maxNS) * float64(n) / float64(sum)
}

// Reset zeroes the accumulated totals and time buckets, keeping the
// bucket sizing and the per-Run deltas. Benchmarks call it after
// warm-up so a report covers exactly the timed window.
func (c *Collector) Reset() {
	c.runs = 0
	c.totals = PerRun{}
	c.runNS = 0
	for i := range c.workerNS {
		c.workerNS[i] = 0
	}
	for i := range c.steals {
		c.steals[i] = 0
	}
	c.ioWaitNS = 0
	for i := range c.prefetchNS {
		c.prefetchNS[i] = 0
	}
}

// Snapshot is a point-in-time copy of a Collector's accumulated state,
// plus the derived report quantities. It is a plain value: safe to
// retain, compare and serialise (all fields are JSON-tagged for the
// BENCH record schema).
type Snapshot struct {
	// Runs is the number of completed executor Runs.
	Runs int64 `json:"runs"`
	// NNZ is the total nonzeros processed across runs (strip walks
	// counted once per strip).
	NNZ int64 `json:"nnz"`
	// Fibers is the total fiber epilogues across runs.
	Fibers int64 `json:"fibers"`
	// Blocks is the total non-empty blocks visited across runs.
	Blocks int64 `json:"blocks"`
	// Strips is the total rank-strip invocations across runs.
	Strips int64 `json:"strips"`
	// BytesEst is the total Equation 1 (alpha = 0) byte estimate.
	BytesEst int64 `json:"bytes_est"`
	// WallNS is the total wall time spent inside Run, in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// WorkerNS holds each worker's accumulated busy time in
	// nanoseconds; a single entry means the executor ran sequentially.
	WorkerNS []int64 `json:"worker_ns,omitempty"`
	// Kernel names the register-block kernel variant the executor
	// dispatched through ("w8"/"w16"/"w24"/"w32"/"scalar"; see
	// internal/kernel). Empty for methods without a rank-strip kernel.
	Kernel string `json:"kernel,omitempty"`
	// Sched names the resolved scheduler (internal/sched: "static",
	// "steal", "adaptive:static", "adaptive:steal"). Empty for
	// sequential executors. BENCH schema v3.
	Sched string `json:"sched,omitempty"`
	// WorkerSteals holds each worker's stolen-chunk count; omitted when
	// no chunk was ever stolen. BENCH schema v3.
	WorkerSteals []int64 `json:"worker_steals,omitempty"`
	// IOWaitNS is the wall time the out-of-core consumer loop spent
	// blocked waiting for the next decoded block, in nanoseconds.
	// Omitted (zero) for in-memory executors.
	IOWaitNS int64 `json:"io_wait_ns,omitempty"`
	// PrefetchNS holds each out-of-core decoder's busy time (read +
	// decode) in nanoseconds. Omitted for in-memory executors.
	PrefetchNS []int64 `json:"prefetch_ns,omitempty"`
}

// Snapshot copies the collector's state out. Cold path: it allocates
// the bucket copy.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		Runs:     c.runs,
		NNZ:      c.totals.NNZ,
		Fibers:   c.totals.Fibers,
		Blocks:   c.totals.Blocks,
		Strips:   c.totals.Strips,
		BytesEst: c.totals.BytesEst,
		WallNS:   c.runNS,
		WorkerNS: append([]int64(nil), c.workerNS...),
		Kernel:   c.kernel,
		Sched:    c.sched,
		IOWaitNS: c.ioWaitNS,
	}
	for _, v := range c.steals {
		if v != 0 {
			s.WorkerSteals = append([]int64(nil), c.steals...)
			break
		}
	}
	if c.prefetchNS != nil {
		s.PrefetchNS = append([]int64(nil), c.prefetchNS...)
	}
	return s
}

// Steals returns the total stolen-chunk count across workers.
func (s Snapshot) Steals() int64 {
	var t int64
	for _, v := range s.WorkerSteals {
		t += v
	}
	return t
}

// PrefetchTotalNS returns the summed decoder busy time across the
// prefetch buckets (0 for in-memory executors).
func (s Snapshot) PrefetchTotalNS() int64 {
	var t int64
	for _, v := range s.PrefetchNS {
		t += v
	}
	return t
}

// IOWaitFraction returns the fraction of Run wall time the consumer
// loop spent stalled on IO — 0 means decode was fully hidden behind
// kernel execution, 1 means the run was IO-bound end to end. Returns 0
// before any timed run.
func (s Snapshot) IOWaitFraction() float64 {
	if s.WallNS <= 0 {
		return 0
	}
	f := float64(s.IOWaitNS) / float64(s.WallNS)
	if f > 1 {
		f = 1
	}
	return f
}

// OverlapNS returns the decoder busy time hidden behind kernel
// execution: total prefetch work minus the part the consumer actually
// waited for, clamped at 0.
func (s Snapshot) OverlapNS() int64 {
	o := s.PrefetchTotalNS() - s.IOWaitNS
	if o < 0 {
		o = 0
	}
	return o
}

// OverlapFraction returns the fraction of prefetch (IO + decode) work
// that overlapped with kernel execution — 1 means all IO was hidden,
// 0 means the pipeline serialised. Returns 0 when no prefetch work was
// recorded.
func (s Snapshot) OverlapFraction() float64 {
	t := s.PrefetchTotalNS()
	if t <= 0 {
		return 0
	}
	return float64(s.OverlapNS()) / float64(t)
}

// NsPerRun returns the mean wall time per Run in nanoseconds, or 0
// before any run completed.
func (s Snapshot) NsPerRun() int64 {
	if s.Runs == 0 {
		return 0
	}
	return s.WallNS / s.Runs
}

// Imbalance returns the load-imbalance factor max/mean over the worker
// busy-time buckets — 1.0 means perfectly balanced, W means one worker
// did all the work of W. Returns 1 for sequential executors or before
// any timed work.
func (s Snapshot) Imbalance() float64 {
	if len(s.WorkerNS) <= 1 {
		return 1
	}
	var sum, maxNS int64
	for _, ns := range s.WorkerNS {
		sum += ns
		if ns > maxNS {
			maxNS = ns
		}
	}
	if sum <= 0 {
		return 1
	}
	mean := float64(sum) / float64(len(s.WorkerNS))
	return float64(maxNS) / mean
}

// AchievedGBs returns the achieved memory throughput in GB/s implied
// by the Equation 1 traffic estimate over the measured wall time, or 0
// before any timed run.
func (s Snapshot) AchievedGBs() float64 {
	if s.WallNS <= 0 {
		return 0
	}
	return float64(s.BytesEst) / float64(s.WallNS)
}

// RooflineFraction places the achieved throughput against machine m's
// memory bandwidth: 1.0 means the kernel saturates the roofline's
// memory roof under the alpha = 0 traffic model.
func (s Snapshot) RooflineFraction(m roofline.Machine) float64 {
	if m.MemGBs <= 0 {
		return 0
	}
	return s.AchievedGBs() / m.MemGBs
}

// PhaseTimes buckets a decomposition's wall time by phase: the MTTKRP
// products (the kernel this library optimises), the normal-equation
// solves, and the fit/norm evaluation. internal/als fills one per
// CP-ALS run so "MTTKRP dominates the decomposition" (Sec. I) is a
// measured statement, not an assumption.
type PhaseTimes struct {
	// MTTKRPNS is the total wall time of MTTKRP dispatches (including
	// the memoized path's shared-contraction refresh), in nanoseconds.
	MTTKRPNS int64 `json:"mttkrp_ns"`
	// SolveNS is the total wall time of the Gram/Hadamard assembly, SPD
	// solve, column normalisation and Gram refresh, in nanoseconds.
	SolveNS int64 `json:"solve_ns"`
	// NormNS is the total wall time of the per-sweep fit evaluation, in
	// nanoseconds.
	NormNS int64 `json:"norm_ns"`
}

// TotalNS returns the summed phase time.
func (p PhaseTimes) TotalNS() int64 { return p.MTTKRPNS + p.SolveNS + p.NormNS }

// CommStats aggregates the distributed runtime's fault-tolerance
// telemetry across a decomposition: the reliability protocol's message
// resends and expired waits, the modeled backoff those retries added to
// the α-β communication time, and the driver-level degradation events
// (sweeps restarted, ranks lost, sweeps completed on a shrunken rank
// set). Every field is zero when fault injection is off, so a healthy
// run reports a zero value — the same "instrumentation is free"
// contract the kernel counters follow.
type CommStats struct {
	// Retries counts point-to-point resends inside the collectives.
	Retries int64 `json:"retries"`
	// Timeouts counts ack/receive waits that expired.
	Timeouts int64 `json:"timeouts"`
	// BackoffSec is the modeled retry backoff added to communication
	// time (it is already included in the modeled seconds).
	BackoffSec float64 `json:"backoff_sec"`
	// Crashes counts ranks lost to injected crashes.
	Crashes int `json:"crashes"`
	// SweepRetries counts ALS sweeps restarted after a kernel failure.
	SweepRetries int `json:"sweep_retries"`
	// DegradedSweeps counts sweeps completed after the runtime
	// re-partitioned over the surviving ranks.
	DegradedSweeps int `json:"degraded_sweeps"`
}

// Merge adds o's counters into c.
func (c *CommStats) Merge(o CommStats) {
	c.Retries += o.Retries
	c.Timeouts += o.Timeouts
	c.BackoffSec += o.BackoffSec
	c.Crashes += o.Crashes
	c.SweepRetries += o.SweepRetries
	c.DegradedSweeps += o.DegradedSweeps
}

// Faulted reports whether any fault-tolerance machinery engaged.
func (c CommStats) Faulted() bool {
	return c != CommStats{}
}

// MTTKRPShare returns MTTKRP's fraction of the accounted time, or 0
// before any phase ran.
func (p PhaseTimes) MTTKRPShare() float64 {
	t := p.TotalNS()
	if t <= 0 {
		return 0
	}
	return float64(p.MTTKRPNS) / float64(t)
}
