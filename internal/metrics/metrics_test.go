package metrics

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"spblock/internal/roofline"
)

func TestEqBytes(t *testing.T) {
	// One walk, rank 32, 100 nnz + 20 fibers:
	// 8 * (2*1*(120) + 32*120) = 8 * (240 + 3840) = 32640.
	if got := EqBytes(100, 20, 32, 1); got != 32640 {
		t.Fatalf("EqBytes = %d, want 32640", got)
	}
	// strips < 1 clamps to one walk.
	if EqBytes(100, 20, 32, 0) != EqBytes(100, 20, 32, 1) {
		t.Fatal("strips=0 must price as one walk")
	}
	// Two strips re-read the index terms but stream the factors once:
	// 8 * (2*2*120 + 32*120) = 8 * (480 + 3840) = 34560.
	if got := EqBytes(100, 20, 32, 2); got != 34560 {
		t.Fatalf("EqBytes strips=2 = %d, want 34560", got)
	}
}

func TestCollectorAccumulates(t *testing.T) {
	var c Collector
	c.SizeWorkers(2)
	c.SetPerRun(PerRun{NNZ: 100, Fibers: 20, Blocks: 4, Strips: 2, BytesEst: 1000})
	start := time.Now().Add(-time.Millisecond)
	c.EndRun(start)
	c.EndRun(start)
	c.AddWorkerTime(0, 3*time.Millisecond)
	c.AddWorkerTime(1, time.Millisecond)

	s := c.Snapshot()
	if s.Runs != 2 || s.NNZ != 200 || s.Fibers != 40 || s.Blocks != 8 || s.Strips != 4 || s.BytesEst != 2000 {
		t.Fatalf("totals wrong: %+v", s)
	}
	if s.WallNS < 2*time.Millisecond.Nanoseconds() {
		t.Fatalf("wall ns %d too small", s.WallNS)
	}
	if len(s.WorkerNS) != 2 || s.WorkerNS[0] != 3e6 || s.WorkerNS[1] != 1e6 {
		t.Fatalf("worker buckets wrong: %v", s.WorkerNS)
	}
	// max/mean = 3ms / 2ms = 1.5.
	if im := s.Imbalance(); im != 1.5 {
		t.Fatalf("imbalance = %v, want 1.5", im)
	}
	if s.NsPerRun() != s.WallNS/2 {
		t.Fatalf("ns/run = %d", s.NsPerRun())
	}

	// Snapshot is a copy: mutating the collector afterwards must not
	// change it.
	c.EndRun(start)
	if s.Runs != 2 {
		t.Fatal("snapshot aliased collector state")
	}

	c.Reset()
	s = c.Snapshot()
	if s.Runs != 0 || s.NNZ != 0 || s.WallNS != 0 || s.WorkerNS[0] != 0 || s.WorkerNS[1] != 0 {
		t.Fatalf("reset incomplete: %+v", s)
	}
	// Reset keeps the per-run deltas: the next run still counts.
	c.EndRun(start)
	if got := c.Snapshot(); got.NNZ != 100 {
		t.Fatalf("per-run deltas lost on reset: %+v", got)
	}
}

func TestCollectorSequentialBucket(t *testing.T) {
	var c Collector
	c.SizeWorkers(0) // clamps to one bucket
	c.SetPerRun(PerRun{NNZ: 10})
	c.EndRun(time.Now().Add(-time.Millisecond))
	s := c.Snapshot()
	if len(s.WorkerNS) != 1 || s.WorkerNS[0] <= 0 {
		t.Fatalf("sequential bucket not fed from EndRun: %v", s.WorkerNS)
	}
	if s.Imbalance() != 1 {
		t.Fatalf("sequential imbalance = %v, want 1", s.Imbalance())
	}
}

func TestSnapshotDerivedEdgeCases(t *testing.T) {
	var s Snapshot
	if s.NsPerRun() != 0 || s.AchievedGBs() != 0 {
		t.Fatal("zero snapshot must derive zeros")
	}
	if s.Imbalance() != 1 {
		t.Fatalf("empty imbalance = %v, want 1", s.Imbalance())
	}
	s.WorkerNS = []int64{0, 0}
	if s.Imbalance() != 1 {
		t.Fatal("all-idle buckets must report balanced")
	}
	// bytes/ns is numerically GB/s: 2000 bytes in 1000 ns = 2 GB/s.
	s = Snapshot{BytesEst: 2000, WallNS: 1000}
	if g := s.AchievedGBs(); g != 2 {
		t.Fatalf("achieved GB/s = %v, want 2", g)
	}
	m := roofline.Machine{MemGBs: 200}
	if f := s.RooflineFraction(m); f != 0.01 {
		t.Fatalf("roofline fraction = %v, want 0.01", f)
	}
	if s.RooflineFraction(roofline.Machine{}) != 0 {
		t.Fatal("zero machine must derive 0")
	}
}

func TestCollectorSchedAndSteals(t *testing.T) {
	var c Collector
	c.SizeWorkers(3)
	c.SetSched("steal")
	if c.Sched() != "steal" {
		t.Fatalf("Sched() = %q", c.Sched())
	}

	// No steals yet: the snapshot omits the buckets entirely so
	// static-scheduled BENCH records stay free of dead fields.
	s := c.Snapshot()
	if s.Sched != "steal" {
		t.Fatalf("snapshot sched = %q", s.Sched)
	}
	if s.WorkerSteals != nil || s.Steals() != 0 {
		t.Fatalf("steal-free snapshot carries buckets: %v", s.WorkerSteals)
	}

	c.AddWorkerSteal(1)
	c.AddWorkerSteal(1)
	c.AddWorkerSteal(2)
	s = c.Snapshot()
	if len(s.WorkerSteals) != 3 || s.WorkerSteals[1] != 2 || s.WorkerSteals[2] != 1 {
		t.Fatalf("steal buckets wrong: %v", s.WorkerSteals)
	}
	if s.Steals() != 3 {
		t.Fatalf("Steals() = %d, want 3", s.Steals())
	}

	// Reset zeroes the buckets but keeps the scheduler identity (it is
	// resize-path state, like the kernel name).
	c.Reset()
	s = c.Snapshot()
	if s.WorkerSteals != nil || s.Sched != "steal" {
		t.Fatalf("reset: %+v", s)
	}
}

func TestWindowImbalance(t *testing.T) {
	var c Collector
	c.SizeWorkers(2)
	prev := make([]int64, 2)

	c.AddWorkerTime(0, 3*time.Millisecond)
	c.AddWorkerTime(1, 1*time.Millisecond)
	// Window 1: max 3ms over mean 2ms.
	if im := c.WindowImbalance(prev); im != 1.5 {
		t.Fatalf("window 1 imbalance = %v, want 1.5", im)
	}

	// Window 2 sees only the delta since window 1 — the cumulative
	// buckets grew, but the window is balanced.
	c.AddWorkerTime(0, 2*time.Millisecond)
	c.AddWorkerTime(1, 2*time.Millisecond)
	if im := c.WindowImbalance(prev); im != 1 {
		t.Fatalf("window 2 imbalance = %v, want 1", im)
	}

	// Empty window and mis-sized baselines report balanced.
	if im := c.WindowImbalance(prev); im != 1 {
		t.Fatalf("empty window imbalance = %v, want 1", im)
	}
	if im := c.WindowImbalance(make([]int64, 5)); im != 1 {
		t.Fatalf("mis-sized baseline imbalance = %v, want 1", im)
	}
	var seq Collector
	seq.SizeWorkers(1)
	if im := seq.WindowImbalance(make([]int64, 1)); im != 1 {
		t.Fatalf("sequential window imbalance = %v, want 1", im)
	}
}

func TestPhaseTimes(t *testing.T) {
	p := PhaseTimes{MTTKRPNS: 600, SolveNS: 300, NormNS: 100}
	if p.TotalNS() != 1000 {
		t.Fatalf("total = %d", p.TotalNS())
	}
	if p.MTTKRPShare() != 0.6 {
		t.Fatalf("share = %v", p.MTTKRPShare())
	}
	if (PhaseTimes{}).MTTKRPShare() != 0 {
		t.Fatal("empty share must be 0")
	}
	// JSON keys are part of the BENCH-adjacent report contract.
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"mttkrp_ns":600,"solve_ns":300,"norm_ns":100}`
	if string(data) != want {
		t.Fatalf("phase JSON = %s, want %s", data, want)
	}
}

func TestCommStats(t *testing.T) {
	var c CommStats
	if c.Faulted() {
		t.Fatal("zero CommStats reports faulted")
	}
	c.Merge(CommStats{Retries: 2, Timeouts: 1, BackoffSec: 0.5, Crashes: 1,
		SweepRetries: 3, DegradedSweeps: 4})
	c.Merge(CommStats{Retries: 1, BackoffSec: 0.25})
	if c.Retries != 3 || c.Timeouts != 1 || c.BackoffSec != 0.75 ||
		c.Crashes != 1 || c.SweepRetries != 3 || c.DegradedSweeps != 4 {
		t.Fatalf("merge wrong: %+v", c)
	}
	if !c.Faulted() {
		t.Fatal("nonzero CommStats not faulted")
	}
	// JSON keys are part of the chaos-report contract.
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"retries":3,"timeouts":1,"backoff_sec":0.75,"crashes":1,"sweep_retries":3,"degraded_sweeps":4}`
	if string(data) != want {
		t.Fatalf("CommStats JSON = %s, want %s", data, want)
	}
}

func TestCollectorIOWaitAndPrefetch(t *testing.T) {
	var c Collector
	c.SizeWorkers(1)
	c.SizePrefetchers(2)
	start := time.Now().Add(-10 * time.Millisecond)
	c.AddIOWait(2 * time.Millisecond)
	c.AddPrefetch(0, 5*time.Millisecond)
	c.AddPrefetch(1, 3*time.Millisecond)
	c.EndRun(start)

	s := c.Snapshot()
	if s.IOWaitNS != (2 * time.Millisecond).Nanoseconds() {
		t.Fatalf("IOWaitNS = %d", s.IOWaitNS)
	}
	if len(s.PrefetchNS) != 2 || s.PrefetchTotalNS() != (8*time.Millisecond).Nanoseconds() {
		t.Fatalf("prefetch buckets wrong: %v", s.PrefetchNS)
	}
	if s.OverlapNS() != (6 * time.Millisecond).Nanoseconds() {
		t.Fatalf("OverlapNS = %d", s.OverlapNS())
	}
	if f := s.OverlapFraction(); f < 0.74 || f > 0.76 {
		t.Fatalf("OverlapFraction = %v, want 0.75", f)
	}
	if f := s.IOWaitFraction(); f <= 0 || f > 1 {
		t.Fatalf("IOWaitFraction = %v", f)
	}

	// Reset clears the new counters but keeps the bucket sizing.
	c.Reset()
	s = c.Snapshot()
	if s.IOWaitNS != 0 || s.PrefetchTotalNS() != 0 || len(s.PrefetchNS) != 2 {
		t.Fatalf("reset did not clear ooc counters: %+v", s)
	}

	// In-memory executors never size prefetchers: their snapshots omit
	// the ooc fields from the BENCH record entirely.
	var plain Collector
	plain.SizeWorkers(1)
	data, err := json.Marshal(plain.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "io_wait_ns") || strings.Contains(string(data), "prefetch_ns") {
		t.Fatalf("in-memory snapshot leaks ooc fields: %s", data)
	}
	// Derived helpers are safe on empty snapshots.
	var empty Snapshot
	if empty.IOWaitFraction() != 0 || empty.OverlapFraction() != 0 || empty.OverlapNS() != 0 {
		t.Fatal("empty snapshot fractions must be 0")
	}
}
