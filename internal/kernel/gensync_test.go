package kernel

import (
	"bytes"
	"os"
	"os/exec"
	"testing"
)

// TestGeneratedKernelsInSync re-runs the width generator and compares
// its output byte-for-byte against the committed widths_gen.go: a hand
// edit to the generated file, or a generator change without
// regeneration, fails here (and in CI's `go generate` + `git diff`
// step) instead of silently drifting. Regenerate with:
//
//	go generate ./internal/kernel
func TestGeneratedKernelsInSync(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	cmd := exec.Command(goBin, "run", "./gen", "-stdout")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	got, err := cmd.Output()
	if err != nil {
		t.Fatalf("go run ./gen -stdout: %v\n%s", err, stderr.String())
	}
	want, err := os.ReadFile("widths_gen.go")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("widths_gen.go is out of sync with its generator; run `go generate ./internal/kernel`")
	}
}
