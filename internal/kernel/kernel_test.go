package kernel

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"spblock/internal/la"
)

func TestWidths(t *testing.T) {
	got := Widths()
	want := []int{8, 16, 24, 32}
	if !slices.Equal(got, want) {
		t.Fatalf("Widths() = %v, want %v", got, want)
	}
	if got[0] != MinWidth || got[len(got)-1] != MaxWidth {
		t.Fatalf("Widths() = %v inconsistent with MinWidth=%d, MaxWidth=%d", got, MinWidth, MaxWidth)
	}
	if !slices.Contains(got, DefaultWidth) {
		t.Fatalf("DefaultWidth=%d not registered in %v", DefaultWidth, got)
	}
}

func TestResolvePolicy(t *testing.T) {
	cases := []struct {
		width int
		name  string
	}{
		{0, "scalar"}, {1, "scalar"}, {7, "scalar"},
		{8, "w8"}, {12, "w8"}, {15, "w8"},
		{16, "w16"}, {20, "w16"}, {23, "w16"},
		{24, "w24"}, {30, "w16"}, // no exact 30: step at DefaultWidth
		{32, "w32"},
		{40, "w16"}, {48, "w16"}, {100, "w16"}, {512, "w16"},
	}
	for _, tc := range cases {
		s := Resolve(tc.width)
		if s.Name != tc.name {
			t.Errorf("Resolve(%d) = %q, want %q", tc.width, s.Name, tc.name)
		}
		if s.FiberTail == nil || s.LeafTail == nil {
			t.Errorf("Resolve(%d) missing tail kernels", tc.width)
		}
		if s.Width > 0 && (s.Fiber == nil || s.Leaf == nil) {
			t.Errorf("Resolve(%d) width %d missing unrolled kernels", tc.width, s.Width)
		}
		if s.Width == 0 && s.Name != "scalar" {
			t.Errorf("Resolve(%d) has Width 0 but name %q", tc.width, s.Name)
		}
	}
}

func TestStripCandidates(t *testing.T) {
	cases := []struct {
		rank int
		want []int
	}{
		{0, nil},
		{1, []int{1}},
		{7, []int{7}},
		{8, []int{8}},
		{16, []int{8, 16}},
		{20, []int{8, 16, 20}},
		{48, []int{8, 16, 24, 32, 40, 48}},
	}
	for _, tc := range cases {
		got := StripCandidates(tc.rank)
		if !slices.Equal(got, tc.want) {
			t.Errorf("StripCandidates(%d) = %v, want %v", tc.rank, got, tc.want)
		}
	}
	// Every candidate must be executable: positive, at most the rank,
	// and ascending with no duplicates.
	got := StripCandidates(512)
	for x, bs := range got {
		if bs <= 0 || bs > 512 {
			t.Fatalf("candidate %d out of range for rank 512", bs)
		}
		if x > 0 && bs <= got[x-1] {
			t.Fatalf("candidates not strictly ascending: %v", got)
		}
	}
	if got[len(got)-1] != 512 {
		t.Fatalf("rank itself missing from candidates: %v", got)
	}
}

// scenario is one randomized kernel invocation: operands with
// independent strides, a fiber of nonzeros, and a column window.
type scenario struct {
	vals     []float64
	ids      []int32
	b, c, o  *la.Matrix
	pLo, pHi int
	i, k     int
}

// randMatrix builds a rows x cols matrix with extra stride padding so
// kernels that over-read past Cols would corrupt detectable slots.
func randMatrix(rng *rand.Rand, rows, cols, pad int) *la.Matrix {
	m := &la.Matrix{Rows: rows, Cols: cols, Stride: cols + pad, Data: make([]float64, rows*(cols+pad))}
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randScenario(rng *rand.Rand, rank, fibLen int) scenario {
	rowsB := 1 + rng.Intn(9)
	sc := scenario{
		vals: make([]float64, fibLen+rng.Intn(4)),
		b:    randMatrix(rng, rowsB, rank, rng.Intn(3)),
		c:    randMatrix(rng, 1+rng.Intn(5), rank, rng.Intn(3)),
	}
	sc.o = randMatrix(rng, 1+rng.Intn(5), rank, rng.Intn(3))
	sc.ids = make([]int32, len(sc.vals))
	for p := range sc.vals {
		sc.vals[p] = rng.NormFloat64()
		sc.ids[p] = int32(rng.Intn(rowsB))
	}
	sc.pLo = rng.Intn(len(sc.vals) - fibLen + 1)
	sc.pHi = sc.pLo + fibLen
	sc.i = rng.Intn(sc.o.Rows)
	sc.k = rng.Intn(sc.c.Rows)
	return sc
}

// refFiber is the naive reference for the fiber contract: per column,
// accumulate the fiber then scale by C and add into the output row.
func refFiber(sc scenario, out *la.Matrix, r0, r1 int) {
	for q := r0; q < r1; q++ {
		var acc float64
		for p := sc.pLo; p < sc.pHi; p++ {
			acc += sc.vals[p] * sc.b.Data[int(sc.ids[p])*sc.b.Stride+q]
		}
		out.Data[sc.i*out.Stride+q] += acc * sc.c.Data[sc.k*sc.c.Stride+q]
	}
}

// refLeaf is the naive reference for the leaf contract.
func refLeaf(sc scenario, buf []float64, q0, q1 int) {
	for q := q0; q < q1; q++ {
		for p := sc.pLo; p < sc.pHi; p++ {
			buf[q] += sc.vals[p] * sc.b.Data[int(sc.ids[p])*sc.b.Stride+q]
		}
	}
}

func close64(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-9*(math.Abs(a)+math.Abs(b)+1)
}

func checkFiber(t *testing.T, sc scenario, s Strip, r0, r1 int) {
	t.Helper()
	got := &la.Matrix{Rows: sc.o.Rows, Cols: sc.o.Cols, Stride: sc.o.Stride, Data: slices.Clone(sc.o.Data)}
	want := &la.Matrix{Rows: sc.o.Rows, Cols: sc.o.Cols, Stride: sc.o.Stride, Data: slices.Clone(sc.o.Data)}
	if s.Width > 0 && r1-r0 == s.Width {
		s.Fiber(sc.vals, sc.ids, sc.b, sc.c, got, sc.pLo, sc.pHi, sc.i, sc.k, r0)
	} else {
		s.FiberTail(sc.vals, sc.ids, sc.b, sc.c, got, sc.pLo, sc.pHi, sc.i, sc.k, r0, r1)
	}
	refFiber(sc, want, r0, r1)
	for x := range want.Data {
		if !close64(got.Data[x], want.Data[x]) {
			t.Fatalf("%s fiber [%d,%d): Data[%d] = %v, want %v (fiber len %d)",
				s.Name, r0, r1, x, got.Data[x], want.Data[x], sc.pHi-sc.pLo)
		}
	}
}

func checkLeaf(t *testing.T, sc scenario, s Strip, q0, q1 int) {
	t.Helper()
	buf := make([]float64, sc.b.Cols)
	for q := range buf {
		buf[q] = float64(q) * 0.25
	}
	got := slices.Clone(buf)
	want := slices.Clone(buf)
	if s.Width > 0 && q1-q0 == s.Width {
		s.Leaf(sc.vals, sc.ids, sc.b, got, sc.pLo, sc.pHi, q0)
	} else {
		s.LeafTail(sc.vals, sc.ids, sc.b, got, sc.pLo, sc.pHi, q0, q1)
	}
	refLeaf(sc, want, q0, q1)
	for q := range want {
		if !close64(got[q], want[q]) {
			t.Fatalf("%s leaf [%d,%d): buf[%d] = %v, want %v", s.Name, q0, q1, q, got[q], want[q])
		}
	}
}

// TestKernelsMatchReference differentially tests every registered
// width (and the scalar tails) against the naive per-column reference
// over a deterministic sweep of ranks, strides, offsets and fiber
// lengths — including empty fibers.
func TestKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		rank := 1 + rng.Intn(2*MaxWidth)
		fibLen := rng.Intn(12)
		sc := randScenario(rng, rank, fibLen)
		for _, s := range specialized {
			if s.Width > rank {
				continue
			}
			r0 := rng.Intn(rank - s.Width + 1)
			checkFiber(t, sc, s, r0, r0+s.Width)
			checkLeaf(t, sc, s, r0, r0+s.Width)
		}
		// Scalar tails at a random sub-MaxWidth window.
		w := 1 + rng.Intn(min(rank, MaxWidth-1))
		r0 := rng.Intn(rank - w + 1)
		checkFiber(t, sc, scalarStrip, r0, r0+w)
		checkLeaf(t, sc, scalarStrip, r0, r0+w)
	}
}

// FuzzFiberKernel drives every fiber variant against the reference
// with fuzzer-chosen shapes.
func FuzzFiberKernel(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(5), uint8(0))
	f.Add(int64(42), uint8(33), uint8(0), uint8(3))
	f.Add(int64(-9), uint8(64), uint8(11), uint8(60))
	f.Fuzz(func(t *testing.T, seed int64, rankRaw, fibRaw, offRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		rank := 1 + int(rankRaw)%(2*MaxWidth)
		sc := randScenario(rng, rank, int(fibRaw)%16)
		for _, s := range specialized {
			if s.Width > rank {
				continue
			}
			r0 := int(offRaw) % (rank - s.Width + 1)
			checkFiber(t, sc, s, r0, r0+s.Width)
		}
		w := 1 + int(fibRaw)%min(rank, MaxWidth-1)
		r0 := int(offRaw) % (rank - w + 1)
		checkFiber(t, sc, scalarStrip, r0, r0+w)
	})
}

// FuzzLeafKernel drives every leaf variant against the reference with
// fuzzer-chosen shapes.
func FuzzLeafKernel(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(5), uint8(0))
	f.Add(int64(42), uint8(33), uint8(0), uint8(3))
	f.Add(int64(-9), uint8(64), uint8(11), uint8(60))
	f.Fuzz(func(t *testing.T, seed int64, rankRaw, fibRaw, offRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		rank := 1 + int(rankRaw)%(2*MaxWidth)
		sc := randScenario(rng, rank, int(fibRaw)%16)
		for _, s := range specialized {
			if s.Width > rank {
				continue
			}
			q0 := int(offRaw) % (rank - s.Width + 1)
			checkLeaf(t, sc, s, q0, q0+s.Width)
		}
		w := 1 + int(fibRaw)%min(rank, MaxWidth-1)
		q0 := int(offRaw) % (rank - w + 1)
		checkLeaf(t, sc, scalarStrip, q0, q0+w)
	})
}

func TestHelpersMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(40)
		pad := rng.Intn(3)
		mk := func() []float64 {
			s := make([]float64, n+pad)
			for i := range s {
				s[i] = rng.NormFloat64()
			}
			return s
		}
		acc, row, scale := mk(), mk(), mk()
		v := rng.NormFloat64()

		got, want := slices.Clone(acc), slices.Clone(acc)
		Axpy(got[:n], v, row)
		for q := 0; q < n; q++ {
			want[q] += v * row[q]
		}
		if !slices.Equal(got, want) {
			t.Fatalf("Axpy mismatch at n=%d", n)
		}

		got, want = slices.Clone(acc), slices.Clone(acc)
		ScaleAdd(got[:n], row, scale)
		for q := 0; q < n; q++ {
			want[q] += row[q] * scale[q]
		}
		if !slices.Equal(got, want) {
			t.Fatalf("ScaleAdd mismatch at n=%d", n)
		}

		got, want = slices.Clone(acc), slices.Clone(acc)
		KRPAxpy(got[:n], v, row, scale)
		for q := 0; q < n; q++ {
			want[q] += v * row[q] * scale[q]
		}
		if !slices.Equal(got, want) {
			t.Fatalf("KRPAxpy mismatch at n=%d", n)
		}

		got, want = slices.Clone(acc), slices.Clone(acc)
		Add(got[:n], row)
		for q := 0; q < n; q++ {
			want[q] += row[q]
		}
		if !slices.Equal(got, want) {
			t.Fatalf("Add mismatch at n=%d", n)
		}
	}
}
