// Package kernel owns the register-blocked rank-strip accumulate
// contract shared by the order-3 (internal/core) and order-N
// (internal/nmode) MTTKRP inner loops: the innermost body of the
// paper's Algorithm 2 (Sec. V-B), where a fiber's nonzeros are swept
// with all column accumulators held in scalar locals (registers).
//
// The package exposes width-specialized unrolled bodies (8-, 16-, 24-
// and 32-wide, emitted by the gen/ generator into widths_gen.go) plus
// scalar tails, bundled per width into a Strip. Callers resolve a
// Strip exactly once on their cold ensure path (Resolve) and dispatch
// through the cached function pointers on the hot path — no interface
// boxing, no map lookup, no per-call branching beyond the strip loop
// itself. The contract deliberately takes raw slices (vals, ids)
// rather than a tensor type so one kernel body serves both the CSF
// fiber layout (core) and the N-mode leaf level (nmode):
// tensor.Index and nmode.Index are both aliases of int32.
package kernel

import (
	"slices"

	"spblock/internal/la"
)

//go:generate go run ./gen -out widths_gen.go

const (
	// MinWidth is the narrowest unrolled body; widths below it run
	// entirely in the scalar tail.
	MinWidth = 8
	// DefaultWidth is the paper's cache-line register block: 16 float64
	// columns = 128 bytes (Sec. V-B). Strips wider than any registered
	// width step at DefaultWidth.
	DefaultWidth = 16
	// MaxWidth bounds both the widest unrolled body and the scalar
	// tails' stack accumulators (a tail is always narrower than the
	// unrolled width it trails).
	MaxWidth = 32
)

// FiberKernel processes one CSF fiber for Width consecutive columns
// starting at r0, fusing Algorithm 2's fiber epilogue: the register
// accumulators are scaled by C's row k and added into output row i.
// vals/ids are the fiber's nonzero values and mode-2 coordinates,
// indexed by [pLo, pHi).
type FiberKernel func(vals []float64, ids []int32, b, c, out *la.Matrix, pLo, pHi, i, k, r0 int)

// FiberTailKernel is FiberKernel for a partial block spanning columns
// [r0, r1) with r1-r0 < MaxWidth.
type FiberTailKernel func(vals []float64, ids []int32, b, c, out *la.Matrix, pLo, pHi, i, k, r0, r1 int)

// LeafKernel accumulates Width consecutive columns (starting at q0) of
// the N-mode leaf level into buf: buf[q] += vals[p] * leaf[ids[p]][q]
// over p in [pLo, pHi). No epilogue — the tree walk scales buf against
// the parent levels.
type LeafKernel func(vals []float64, ids []int32, leaf *la.Matrix, buf []float64, pLo, pHi, q0 int)

// LeafTailKernel is LeafKernel for a partial block spanning columns
// [q0, q1) with q1-q0 < MaxWidth.
type LeafTailKernel func(vals []float64, ids []int32, leaf *la.Matrix, buf []float64, pLo, pHi, q0, q1 int)

// Variant identifies a registered kernel implementation.
type Variant struct {
	// Width is the unrolled register-block width in columns; 0 means
	// the scalar variant (everything runs in the tail bodies).
	Width int
	// Name is the stable identifier recorded in metrics and BENCH
	// output: "w8", "w16", "w24", "w32" or "scalar".
	Name string
}

// Strip bundles the function pointers a resolved strip width dispatches
// through: the unrolled fiber/leaf bodies plus the tails that finish
// columns the unrolled width does not cover. Width 0 (scalar) leaves
// Fiber/Leaf nil; callers must gate the unrolled step on Width > 0.
type Strip struct {
	Variant
	Fiber     FiberKernel
	Leaf      LeafKernel
	FiberTail FiberTailKernel
	LeafTail  LeafTailKernel
}

// scalarStrip serves widths below MinWidth entirely from the tails.
var scalarStrip = Strip{
	Variant:   Variant{Width: 0, Name: "scalar"},
	FiberTail: ScalarFiberTail,
	LeafTail:  ScalarLeafTail,
}

// Widths returns the registered unrolled widths in ascending order.
func Widths() []int {
	ws := make([]int, 0, len(specialized))
	for _, s := range specialized {
		ws = append(ws, s.Width)
	}
	slices.Sort(ws)
	return ws
}

// Resolve maps a strip width (in columns) to the kernel variant that
// executes it: an exact-width unrolled body when one is registered,
// otherwise the widest registered body not exceeding
// min(width, DefaultWidth) — so irregular wide strips step at the
// paper's cache-line width and leave the remainder to the tail — and
// the scalar variant when the width is below MinWidth. Called once per
// rank change on the ensure path; the result is cached by the caller.
//
//spblock:coldpath
func Resolve(width int) Strip {
	if width < MinWidth {
		return scalarStrip
	}
	best := scalarStrip
	for _, s := range specialized {
		if s.Width == width {
			return s
		}
		if s.Width <= min(width, DefaultWidth) && s.Width > best.Width {
			best = s
		}
	}
	return best
}

// StripCandidates returns the RankBlockCols values worth measuring for
// a tensor of the given rank: every multiple of MinWidth up to the
// rank (each decomposes into registered unrolled widths with at most a
// sub-MinWidth scalar tail) plus the rank itself — the unblocked
// "whole rank as one strip" endpoint the Sec. V-C ladder must also
// evaluate (a bs == rank strip is not the same plan as bs == 0 only
// in name; both searches treat 0 separately). Ascending, deduplicated;
// a rank below MinWidth yields just {rank}.
//
//spblock:coldpath
func StripCandidates(rank int) []int {
	if rank <= 0 {
		return nil
	}
	if rank < MinWidth {
		return []int{rank}
	}
	cands := make([]int, 0, rank/MinWidth+1)
	for bs := MinWidth; bs < rank; bs += MinWidth {
		cands = append(cands, bs)
	}
	return append(cands, rank)
}

// ScalarFiberTail finishes one fiber for columns [r0, r1) with
// r1-r0 < MaxWidth, using a small stack accumulator. It is the tail of
// every fiber variant and the whole body of the scalar variant.
//
//spblock:hotpath
func ScalarFiberTail(vals []float64, ids []int32, b, c, out *la.Matrix, pLo, pHi, i, k, r0, r1 int) {
	var acc [MaxWidth]float64
	w := r1 - r0
	for p := pLo; p < pHi; p++ {
		v := vals[p]
		brow := b.Data[int(ids[p])*b.Stride+r0:]
		for q := 0; q < w; q++ {
			acc[q] += v * brow[q]
		}
	}
	crow := c.Data[k*c.Stride+r0:]
	orow := out.Data[i*out.Stride+r0:]
	for q := 0; q < w; q++ {
		orow[q] += acc[q] * crow[q]
	}
}

// ScalarLeafTail finishes one leaf accumulation for columns [q0, q1)
// with q1-q0 < MaxWidth.
//
//spblock:hotpath
func ScalarLeafTail(vals []float64, ids []int32, leaf *la.Matrix, buf []float64, pLo, pHi, q0, q1 int) {
	var acc [MaxWidth]float64
	w := q1 - q0
	for p := pLo; p < pHi; p++ {
		v := vals[p]
		row := leaf.Data[int(ids[p])*leaf.Stride+q0:]
		for q := 0; q < w; q++ {
			acc[q] += v * row[q]
		}
	}
	b := buf[q0:]
	for q := 0; q < w; q++ {
		b[q] += acc[q]
	}
}

// Axpy accumulates acc[q] += v * row[q] over len(acc) columns — the
// whole-rank fiber accumulate of Algorithm 1's inner loop. Small
// enough to inline across packages.
//
//spblock:hotpath
func Axpy(acc []float64, v float64, row []float64) {
	for q, x := range row[:len(acc)] {
		acc[q] += v * x
	}
}

// ScaleAdd accumulates out[q] += acc[q] * scale[q] over len(out)
// columns — the fiber epilogue (Algorithm 1) and the N-mode mid-level
// combine.
//
//spblock:hotpath
func ScaleAdd(out, acc, scale []float64) {
	for q, a := range acc[:len(out)] {
		out[q] += a * scale[q]
	}
}

// KRPAxpy accumulates out[q] += v * brow[q] * crow[q] over len(out)
// columns — the on-the-fly Khatri-Rao product of the COO baseline
// (Sec. III-C1).
//
//spblock:hotpath
func KRPAxpy(out []float64, v float64, brow, crow []float64) {
	for q, bq := range brow[:len(out)] {
		out[q] += v * bq * crow[q]
	}
}

// Add accumulates dst[q] += src[q] over len(dst) columns — the
// privatisation reduction and the N-mode root epilogue.
//
//spblock:hotpath
func Add(dst, src []float64) {
	for q, s := range src[:len(dst)] {
		dst[q] += s
	}
}
