package mpi

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// chatter is a deterministic traffic body: collective rounds with no
// TimeCompute (ComputeSec is wall-measured, so determinism assertions
// must avoid it).
func chatter(rounds int) func(*Comm) error {
	return func(c *Comm) error {
		for i := 0; i < rounds; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
			if _, err := c.Allgatherv([]float64{float64(c.Rank()*10 + i)}); err != nil {
				return err
			}
			if _, err := c.Allreduce([]float64{1, float64(i)}); err != nil {
				return err
			}
		}
		return nil
	}
}

func TestZeroFaultPathBitIdentical(t *testing.T) {
	// An unarmed plan must take the exact legacy code path: RunStats
	// bit-identical to a plain Run, reliability counters all zero.
	base, err := Run(4, DefaultCluster(), chatter(3))
	if err != nil {
		t.Fatal(err)
	}
	withPlan, err := RunWithFaults(4, DefaultCluster(), NewFaultPlan(7), chatter(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, withPlan) {
		t.Fatalf("unarmed plan changed stats:\n%+v\nvs\n%+v", base, withPlan)
	}
	if withPlan.TotalRetries() != 0 || withPlan.TotalTimeouts() != 0 ||
		withPlan.TotalBackoffSec() != 0 || len(withPlan.CrashedRanks()) != 0 {
		t.Fatalf("reliability counters nonzero on clean run: %+v", withPlan)
	}
}

func TestFaultScheduleDeterministic(t *testing.T) {
	// Dup and delay faults add no waiting, so the whole schedule —
	// counters and modeled seconds — must replay bit-identically from
	// the same seed across two fresh plans.
	mk := func() *FaultPlan {
		p := NewFaultPlan(42)
		p.DupProb = 0.4
		p.DelayProb = 0.4
		p.DelaySec = 1e-3
		return p
	}
	a, err := RunWithFaults(5, Zero(), mk(), chatter(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWithFaults(5, Zero(), mk(), chatter(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different stats:\n%+v\nvs\n%+v", a, b)
	}
	var dups, delays int64
	for _, rs := range a.PerRank {
		dups += rs.Dups
		delays += rs.Delays
	}
	if dups == 0 || delays == 0 {
		t.Fatalf("faults not injected: dups=%d delays=%d", dups, delays)
	}
}

func TestRetryScheduleDeterministic(t *testing.T) {
	// Drops force real ack timeouts and retries; the injected-fault and
	// retry counters must still replay exactly (modeled seconds too —
	// backoff is modeled, not measured).
	mk := func() *FaultPlan {
		p := NewFaultPlan(99)
		p.DropProb = 0.3
		p.Timeout = 150 * time.Millisecond
		return p
	}
	body := func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 4; i++ {
				if err := c.Send(1, i, []float64{float64(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 4; i++ {
			got, err := c.Recv(0, i)
			if err != nil {
				return err
			}
			if len(got) != 1 || got[0] != float64(i) {
				return fmt.Errorf("message %d arrived as %v", i, got)
			}
		}
		return nil
	}
	a, err := RunWithFaults(2, Zero(), mk(), body)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWithFaults(2, Zero(), mk(), body)
	if err != nil {
		t.Fatal(err)
	}
	if a.PerRank[0].Drops == 0 {
		t.Fatal("no drops injected; raise DropProb or rounds")
	}
	if a.PerRank[0].Retries == 0 || a.PerRank[0].BackoffSec == 0 {
		t.Fatalf("drops did not trigger retries: %+v", a.PerRank[0])
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("retry schedule not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

func TestEpochReRollsSchedule(t *testing.T) {
	// Two Runs sharing one plan draw different epochs — a retried sweep
	// must not deterministically hit the identical fault wall.
	p := NewFaultPlan(5)
	p.DupProb = 0.5
	a, err := RunWithFaults(3, Zero(), p, chatter(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWithFaults(3, Zero(), p, chatter(3))
	if err != nil {
		t.Fatal(err)
	}
	var da, db int64
	for r := range a.PerRank {
		da += a.PerRank[r].Dups
		db += b.PerRank[r].Dups
	}
	if da == 0 && db == 0 {
		t.Fatal("no dups injected in either epoch")
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("consecutive epochs produced the identical schedule")
	}
}

func TestCorruptionCaughtAndRetried(t *testing.T) {
	// Corrupted payloads must be discarded by the checksum and recovered
	// by retry — the data that arrives is the data that was sent.
	p := NewFaultPlan(11)
	p.CorruptProb = 0.5
	p.Timeout = 150 * time.Millisecond
	stats, err := RunWithFaults(2, Zero(), p, func(c *Comm) error {
		payload := []float64{3.14, 2.71, 1.41}
		if c.Rank() == 0 {
			for i := 0; i < 6; i++ {
				if err := c.Send(1, 0, payload); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 6; i++ {
			got, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			for j := range payload {
				if got[j] != payload[j] {
					return fmt.Errorf("transfer %d corrupted: %v", i, got)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PerRank[0].Corruptions == 0 {
		t.Fatal("no corruption injected; raise CorruptProb or rounds")
	}
	if stats.PerRank[0].Retries == 0 {
		t.Fatal("corrupted transfers were not retried")
	}
}

func TestCrashSurfacesAsError(t *testing.T) {
	p := NewFaultPlan(1)
	p.CrashRank = 2
	p.CrashAfterOps = 3
	p.Timeout = 50 * time.Millisecond
	p.MaxRetries = 2
	done := make(chan struct{})
	var stats RunStats
	var err error
	go func() {
		defer close(done)
		stats, err = RunWithFaults(4, Zero(), p, chatter(10))
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("crash run hung")
	}
	if err == nil {
		t.Fatal("crash did not surface as an error")
	}
	crashed := CrashedRanks(err)
	if len(crashed) != 1 || crashed[0] != 2 {
		t.Fatalf("CrashedRanks = %v, want [2]; err: %v", crashed, err)
	}
	if got := stats.CrashedRanks(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("stats.CrashedRanks = %v, want [2]", got)
	}
	var rf *RankFailure
	if !errors.As(err, &rf) {
		t.Fatalf("error does not carry a RankFailure: %v", err)
	}
	if rf.Collective == "" {
		t.Fatalf("RankFailure does not name the collective: %+v", rf)
	}
}

func TestSendTimeoutAfterRetryExhaustion(t *testing.T) {
	p := NewFaultPlan(1)
	p.DropProb = 1.0 // every attempt vanishes
	p.MaxRetries = 1
	p.Timeout = 30 * time.Millisecond
	_, err := RunWithFaults(2, Zero(), p, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 5, []float64{1})
		}
		_, err := c.Recv(0, 5)
		return err
	})
	if err == nil {
		t.Fatal("total loss did not surface as an error")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("error is not ErrTimeout: %v", err)
	}
	var rf *RankFailure
	if !errors.As(err, &rf) || rf.Collective != "Send" && rf.Collective != "Recv" {
		t.Fatalf("failure does not name the operation: %v", err)
	}
}

func TestStallChargesModeledTime(t *testing.T) {
	p := NewFaultPlan(1)
	p.StallRank = 1
	p.StallSec = 0.25
	stats, err := RunWithFaults(3, Zero(), p, chatter(2))
	if err != nil {
		t.Fatal(err)
	}
	if stats.PerRank[1].Stalls < 2 {
		t.Fatalf("stall rank stalled %d times, want >= 2", stats.PerRank[1].Stalls)
	}
	if stats.PerRank[1].CommSec < 0.5 {
		t.Fatalf("stall time not charged: CommSec = %v", stats.PerRank[1].CommSec)
	}
	if stats.PerRank[0].Stalls != 0 || stats.PerRank[2].Stalls != 0 {
		t.Fatal("stall leaked to other ranks")
	}
}

func TestWithoutCrashDisarmsOnlyCrash(t *testing.T) {
	p := NewFaultPlan(3)
	p.DropProb = 0.1
	p.CrashRank = 1
	p.CrashAfterOps = 5
	q := p.WithoutCrash()
	if q.CrashRank != -1 {
		t.Fatalf("crash still armed: %d", q.CrashRank)
	}
	if q.DropProb != 0.1 || q.Seed != 3 {
		t.Fatalf("link faults lost: %+v", q)
	}
	var nilPlan *FaultPlan
	if nilPlan.WithoutCrash() != nil {
		t.Fatal("nil plan must stay nil")
	}
}

func TestFaultedSubcommsUnderConcurrency(t *testing.T) {
	// Race-detector stress: concurrent collectives on disjoint
	// sub-communicators with the reliability protocol active. Drops are
	// rare and the retry budget generous, so the run must succeed.
	p := NewFaultPlan(13)
	p.DropProb = 0.02
	p.DupProb = 0.1
	p.Timeout = time.Second
	_, err := RunWithFaults(8, Zero(), p, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			if _, err := sub.Allgatherv([]float64{float64(c.Rank())}); err != nil {
				return err
			}
			if _, err := sub.Allreduce(make([]float64, 4)); err != nil {
				return err
			}
			if _, err := sub.ReduceScatter(make([]float64, 4), []int{1, 1, 1, 1}); err != nil {
				return err
			}
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPoisonedComputeSurfacesError(t *testing.T) {
	// TimeCompute must hand a failing local kernel back as the rank's
	// error — never a panic.
	_, err := Run(2, Zero(), func(c *Comm) error {
		if c.Rank() == 1 {
			return c.TimeCompute(func() error { return fmt.Errorf("poisoned executor") })
		}
		return c.TimeCompute(func() error { return nil })
	})
	if err == nil {
		t.Fatal("kernel error swallowed")
	}
}
