package mpi

// CostModel converts logical communication operations into modeled
// seconds using the classical α-β (latency-bandwidth) model with
// ring-algorithm collectives — the standard first-order model for
// cluster interconnects.
type CostModel struct {
	// LatencySec is α, the per-message latency.
	LatencySec float64
	// BytesPerSec is 1/β, the point-to-point bandwidth.
	BytesPerSec float64
}

// DefaultCluster models a 2018-era InfiniBand EDR cluster like the
// paper's POWER8 system: ~1.5 µs latency, ~12 GB/s per-node bandwidth.
func DefaultCluster() CostModel {
	return CostModel{LatencySec: 1.5e-6, BytesPerSec: 12e9}
}

// Zero returns a free network (useful to isolate compute in tests).
func Zero() CostModel { return CostModel{} }

func (m CostModel) beta(bytes float64) float64 {
	if m.BytesPerSec <= 0 {
		return 0
	}
	return bytes / m.BytesPerSec
}

// PointToPoint models one message of n bytes.
func (m CostModel) PointToPoint(bytes int64) float64 {
	if bytes < 0 {
		bytes = 0
	}
	return m.LatencySec + m.beta(float64(bytes))
}

// Barrier models a dissemination barrier: ceil(log2 p) rounds of α.
func (m CostModel) Barrier(p int) float64 {
	return float64(log2ceil(p)) * m.LatencySec
}

// Allgather models a ring allgather where totalBytes is the sum of all
// ranks' contributions: (p−1) steps, each moving totalBytes/p.
func (m CostModel) Allgather(p int, totalBytes int64) float64 {
	if p <= 1 {
		return 0
	}
	steps := float64(p - 1)
	return steps*m.LatencySec + m.beta(steps/float64(p)*float64(totalBytes))
}

// ReduceScatter models a ring reduce-scatter over vectors of totalBytes.
func (m CostModel) ReduceScatter(p int, totalBytes int64) float64 {
	if p <= 1 {
		return 0
	}
	steps := float64(p - 1)
	return steps*m.LatencySec + m.beta(steps/float64(p)*float64(totalBytes))
}

// Allreduce models reduce-scatter followed by allgather.
func (m CostModel) Allreduce(p int, bytes int64) float64 {
	if p <= 1 {
		return 0
	}
	return m.ReduceScatter(p, bytes) + m.Allgather(p, bytes)
}

func log2ceil(p int) int {
	n := 0
	for v := 1; v < p; v <<= 1 {
		n++
	}
	return n
}
