// Fault injection for the in-process MPI runtime. At the scale the
// paper's communication argument targets (Sec. VI-D; Ballard & Rouse's
// communication lower bounds), faults are the norm: links drop or
// corrupt packets, switches delay them, nodes stall under interference
// and occasionally die. A FaultPlan injects exactly those failures
// underneath the collectives, deterministically from a seed, so the
// retry/timeout machinery and the distributed drivers' degradation
// paths are testable and every observed schedule is replayable.
//
// Determinism. Per-message faults (drop, duplicate, corrupt, delay)
// are decided by a splitmix64 hash of (seed, epoch, kind, src, dst,
// seq, attempt) — a pure function of the message's logical coordinates,
// independent of goroutine scheduling. Because every collective in this
// runtime is star-shaped and each rank executes sequentially, the
// per-pair message sequence is deterministic too, so a faulted schedule
// replayed with the same seed injects the identical fault set and
// produces identical RunStats counters. The epoch increments once per
// Run sharing the plan, so a retried execution (e.g. a CP-ALS sweep
// retry) sees a fresh — but still reproducible — schedule instead of
// deterministically hitting the same wall forever.
//
// Rank faults (stall, crash) are positional: StallRank sleeps and
// charges modeled time before every runtime operation; CrashRank stops
// executing after CrashAfterOps operations and every later operation on
// that rank returns ErrCrashed. Peers discover the death by timeout (or
// by the crashed flag, which only shortens the real wait — the modeled
// accounting stays deterministic).
package mpi

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Fault sentinels. Collectives wrap them in *RankFailure so callers can
// identify both the failing rank and the collective.
var (
	// ErrCrashed reports the injected death of the rank itself.
	ErrCrashed = errors.New("rank crashed (injected fault)")
	// ErrPeerCrashed reports a peer that is known to have crashed.
	ErrPeerCrashed = errors.New("peer rank crashed")
	// ErrTimeout reports an exhausted retry/timeout budget.
	ErrTimeout = errors.New("timed out")
)

// RankFailure is the per-rank error unit of the runtime: which rank
// failed, inside which collective, implicating which peer (-1 if none).
// Run joins every rank's failure into its returned error; use
// errors.As / CrashedRanks to dissect it.
type RankFailure struct {
	Rank       int
	Peer       int
	Collective string
	Err        error
}

func (e *RankFailure) Error() string {
	if e.Peer >= 0 {
		return fmt.Sprintf("mpi: rank %d: %s: peer %d: %v", e.Rank, e.Collective, e.Peer, e.Err)
	}
	return fmt.Sprintf("mpi: rank %d: %s: %v", e.Rank, e.Collective, e.Err)
}

func (e *RankFailure) Unwrap() error { return e.Err }

// CrashedRanks walks a (possibly joined, possibly wrapped) error from
// Run and returns the sorted set of ranks known to have crashed —
// self-reports (ErrCrashed) and peer observations (ErrPeerCrashed).
func CrashedRanks(err error) []int {
	seen := map[int]bool{}
	var walk func(error)
	walk = func(err error) {
		if err == nil {
			return
		}
		var rf *RankFailure
		if errors.As(err, &rf) {
			if errors.Is(rf.Err, ErrCrashed) {
				seen[rf.Rank] = true
			}
			if errors.Is(rf.Err, ErrPeerCrashed) && rf.Peer >= 0 {
				seen[rf.Peer] = true
			}
		}
		switch u := err.(type) {
		case interface{ Unwrap() []error }:
			for _, e := range u.Unwrap() {
				walk(e)
			}
		case interface{ Unwrap() error }:
			walk(u.Unwrap())
		}
	}
	walk(err)
	ranks := make([]int, 0, len(seen))
	for r := range seen {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// FaultPlan is a seeded, deterministic fault schedule plus the
// reliability knobs the collectives run with while it is active.
// Construct one with NewFaultPlan (a hand-built literal must set
// StallRank and CrashRank to -1 explicitly, or they target rank 0).
// A nil plan — or one with no faults configured — leaves the runtime on
// its exact pre-fault-layer path: no acks, no checksums, bit-identical
// RunStats.
//
// One plan may be shared across consecutive Runs (each Run draws a new
// epoch); it must not be shared by concurrent Runs.
type FaultPlan struct {
	// Seed drives every per-message fault decision.
	Seed int64

	// Per-message fault probabilities in [0, 1], decided independently
	// per transmission attempt.
	DropProb    float64 // message vanishes on the wire
	DupProb     float64 // message is delivered twice
	CorruptProb float64 // payload bit-flip (caught by checksum, dropped)
	DelayProb   float64 // message arrives late by DelaySec modeled seconds

	// DelaySec is the modeled latency added to a delayed message,
	// charged to the receiving rank's communication time.
	DelaySec float64

	// StallRank, if >= 0, is a global rank that stalls before every
	// runtime operation: it really sleeps StallSleep (so peers can
	// observe timeouts) and charges StallSec modeled seconds.
	StallRank  int
	StallSleep time.Duration
	StallSec   float64

	// CrashRank, if >= 0, is a global rank that dies after
	// CrashAfterOps runtime operations (Send/Recv/collective entries):
	// that operation and every later one on the rank returns ErrCrashed.
	CrashRank     int
	CrashAfterOps int

	// Timeout is the per-attempt ack wait of the reliability protocol;
	// a receive abandons after Timeout*(MaxRetries+2). Default 2s.
	Timeout time.Duration
	// MaxRetries bounds the resend attempts per message. Default 5.
	MaxRetries int
	// BackoffSec is the modeled base backoff charged per resend,
	// doubling each attempt (the α-β model has no notion of a timeout,
	// so retries enter it as explicit backoff plus the retransmission's
	// point-to-point cost). Default 1ms.
	BackoffSec float64

	// epoch counts Runs that used this plan (atomic).
	epoch uint64
}

// NewFaultPlan returns a plan with no faults enabled and the default
// reliability knobs; set the probability / rank fields to arm it.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{
		Seed:       seed,
		StallRank:  -1,
		CrashRank:  -1,
		Timeout:    2 * time.Second,
		MaxRetries: 5,
		BackoffSec: 1e-3,
	}
}

// active reports whether any fault is configured. An inactive plan
// keeps the runtime on the legacy (ack-free) path.
func (p *FaultPlan) active() bool {
	if p == nil {
		return false
	}
	return p.DropProb > 0 || p.DupProb > 0 || p.CorruptProb > 0 || p.DelayProb > 0 ||
		p.StallRank >= 0 || p.CrashRank >= 0
}

// WithoutCrash returns a copy of the plan with the crash fault disarmed
// (and a fresh epoch stream) — the shape a driver wants after it has
// re-partitioned around the dead rank: the node is gone, the link
// faults remain.
func (p *FaultPlan) WithoutCrash() *FaultPlan {
	if p == nil {
		return nil
	}
	cp := FaultPlan{
		Seed:        p.Seed,
		DropProb:    p.DropProb,
		DupProb:     p.DupProb,
		CorruptProb: p.CorruptProb,
		DelayProb:   p.DelayProb,
		DelaySec:    p.DelaySec,
		StallRank:   p.StallRank,
		StallSleep:  p.StallSleep,
		StallSec:    p.StallSec,
		CrashRank:   -1,
		Timeout:     p.Timeout,
		MaxRetries:  p.MaxRetries,
		BackoffSec:  p.BackoffSec,
	}
	return &cp
}

// nextEpoch reserves this Run's epoch in the plan's schedule stream.
func (p *FaultPlan) nextEpoch() uint64 {
	return atomic.AddUint64(&p.epoch, 1) - 1
}

// Fault kinds hashed into the per-message decisions.
const (
	kindDrop = iota + 1
	kindDup
	kindCorrupt
	kindDelay
)

// faultState is one Run's instantiation of a plan: normalized knobs,
// the epoch, and the reliability-protocol state (per-pair sequence
// numbers, ack channels, crash flags).
type faultState struct {
	plan  FaultPlan // value copy, knobs normalized
	epoch uint64

	// sendSeq[from*size+to] is owned by rank `from`'s goroutine;
	// recvSeq[from*size+to] by rank `to`'s. No locks needed: each rank
	// executes its runtime operations sequentially.
	sendSeq []int64
	recvSeq []int64
	// acks[from*size+to] carries ack sequence numbers from `to` back to
	// `from`.
	acks []chan int64

	crashed []atomic.Bool
	// ops[rank] counts runtime operations, owned by the rank goroutine.
	ops []int64
}

func newFaultState(size int, plan *FaultPlan) *faultState {
	if !plan.active() {
		return nil
	}
	cp := *plan.WithoutCrash()
	cp.CrashRank = plan.CrashRank
	if cp.Timeout <= 0 {
		cp.Timeout = 2 * time.Second
	}
	if cp.MaxRetries < 0 {
		cp.MaxRetries = 0
	} else if cp.MaxRetries == 0 {
		cp.MaxRetries = 5
	}
	if cp.BackoffSec <= 0 {
		cp.BackoffSec = 1e-3
	}
	fs := &faultState{
		plan:    cp,
		epoch:   plan.nextEpoch(),
		sendSeq: make([]int64, size*size),
		recvSeq: make([]int64, size*size),
		acks:    make([]chan int64, size*size),
		crashed: make([]atomic.Bool, size),
		ops:     make([]int64, size),
	}
	for i := range fs.acks {
		fs.acks[i] = make(chan int64, mailDepth)
	}
	return fs
}

// recvDeadline bounds a blocking receive: long enough to cover the
// sender's full retry budget, so a receive only expires when the peer
// gave up or died.
func (fs *faultState) recvDeadline() time.Duration {
	return fs.plan.Timeout * time.Duration(fs.plan.MaxRetries+2)
}

// roll returns the deterministic uniform draw for one fault decision.
func (fs *faultState) roll(kind, src, dst int, seq int64, attempt int) float64 {
	h := splitmix64(uint64(fs.plan.Seed))
	h = splitmix64(h ^ fs.epoch)
	h = splitmix64(h ^ uint64(kind))
	h = splitmix64(h ^ uint64(src)<<32 ^ uint64(dst))
	h = splitmix64(h ^ uint64(seq))
	h = splitmix64(h ^ uint64(attempt))
	return float64(h>>11) / float64(1<<53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// checksum is an FNV-1a over the payload bits; it exists to catch
// injected corruption, not adversarial tampering.
func checksum(data []float64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range data {
		b := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (b >> s) & 0xff
			h *= prime
		}
	}
	return h
}

// corrupt flips one bit of one element, chosen deterministically.
func corrupt(data []float64, h uint64) {
	if len(data) == 0 {
		return
	}
	i := int(h % uint64(len(data)))
	bit := uint(splitmix64(h) % 64)
	data[i] = math.Float64frombits(math.Float64bits(data[i]) ^ 1<<bit)
}
