// Package mpi is an in-process message-passing runtime standing in for
// MPI in the distributed experiments (Sec. VI-D). Ranks run as
// goroutines; point-to-point messages travel over channels; the
// collectives the distributed MTTKRP needs (Barrier, Allgatherv,
// ReduceScatter, Allreduce, Split) are built on top.
//
// Because the reproduction host has a single core, wall-clock time of
// concurrently running ranks is meaningless. The runtime therefore
// separates the two components of the modeled execution time:
//
//   - compute: each rank wraps its kernel in Comm.TimeCompute, which
//     serialises ranks on one global token so the measured section runs
//     alone and the measurement is clean;
//   - communication: every collective records its logical operation and
//     byte volume; an α-β CostModel converts those into modeled seconds
//     per rank.
//
// The data movement itself is real — collectives actually move the
// bytes between goroutines — so correctness is testable independently
// of the time model.
//
// The runtime is fault-tolerant: RunWithFaults threads a seeded
// FaultPlan (see faults.go) under the collectives. While a plan is
// active, point-to-point transfers run a sequence-numbered,
// checksummed, acked protocol with timeout and retry-with-backoff, and
// every collective returns a *RankFailure identifying the failing rank
// and collective instead of hanging or panicking. With no plan (or an
// unarmed one) the runtime takes its original ack-free path and RunStats
// are bit-identical to the pre-fault-layer behaviour.
package mpi

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// mailDepth bounds each (src, dst) mailbox and ack channel. Generous:
// our collectives have at most one message in flight per pair, but user
// code may pipeline and the retry protocol may retransmit.
const mailDepth = 64

// message is one point-to-point transfer. seq, sum and delaySec are
// only populated while a FaultPlan is active.
type message struct {
	tag      int
	seq      int64
	sum      uint64
	delaySec float64
	data     []float64
}

// world is the shared state of one Run.
type world struct {
	size int
	// mail[from*size+to] carries messages in FIFO order.
	mail []chan message

	computeToken chan struct{}

	mu    sync.Mutex
	stats []RankStats

	model CostModel

	// fs is the Run's fault-injection state; nil on the legacy path.
	fs *faultState
}

// RankStats aggregates one rank's accounted costs and, when fault
// injection is active, its reliability telemetry (all zero otherwise).
type RankStats struct {
	ComputeSec float64
	CommSec    float64
	BytesSent  int64 // point-to-point payload bytes this rank sent

	// Retries counts resend attempts after an unacknowledged message.
	Retries int64
	// Timeouts counts ack/receive waits that expired.
	Timeouts int64
	// BackoffSec is the modeled backoff time added by the retries
	// (charged into CommSec as well).
	BackoffSec float64
	// Injected fault counts, attributed to the rank that observed them
	// (sender for drops/dups/corruptions, receiver for delays).
	Drops, Dups, Corruptions, Delays int64
	// Stalls counts injected stall pauses on this rank.
	Stalls int64
	// Crashed marks a rank killed by the injected crash fault.
	Crashed bool
}

// RunStats is returned by Run.
type RunStats struct {
	PerRank []RankStats
}

// ModeledSeconds returns the modeled parallel execution time:
// max over ranks of (compute + modeled communication).
func (s RunStats) ModeledSeconds() float64 {
	var worst float64
	for _, r := range s.PerRank {
		if t := r.ComputeSec + r.CommSec; t > worst {
			worst = t
		}
	}
	return worst
}

// TotalBytes sums point-to-point bytes across ranks.
func (s RunStats) TotalBytes() int64 {
	var b int64
	for _, r := range s.PerRank {
		b += r.BytesSent
	}
	return b
}

// TotalRetries sums message resends across ranks.
func (s RunStats) TotalRetries() int64 {
	var n int64
	for _, r := range s.PerRank {
		n += r.Retries
	}
	return n
}

// TotalTimeouts sums expired ack/receive waits across ranks.
func (s RunStats) TotalTimeouts() int64 {
	var n int64
	for _, r := range s.PerRank {
		n += r.Timeouts
	}
	return n
}

// TotalBackoffSec sums the modeled retry backoff across ranks.
func (s RunStats) TotalBackoffSec() float64 {
	var sec float64
	for _, r := range s.PerRank {
		sec += r.BackoffSec
	}
	return sec
}

// CrashedRanks lists the ranks the injector killed during the Run.
func (s RunStats) CrashedRanks() []int {
	var ranks []int
	for r, rs := range s.PerRank {
		if rs.Crashed {
			ranks = append(ranks, r)
		}
	}
	return ranks
}

// Comm is a communicator: a subset of ranks that can exchange messages
// and run collectives. The initial communicator spans all ranks.
type Comm struct {
	w *world
	// group lists the global ranks in this communicator, sorted.
	group []int
	// me is this rank's index within group.
	me int
	// tagSalt namespaces collective traffic per communicator so
	// concurrent collectives on different communicators don't collide.
	tagSalt int
}

// Run starts size ranks, each executing body with its own communicator
// over the world, and waits for all of them. Equivalent to
// RunWithFaults with a nil plan: a perfect network.
func Run(size int, model CostModel, body func(*Comm) error) (RunStats, error) {
	return RunWithFaults(size, model, nil, body)
}

// RunWithFaults starts size ranks under the given fault plan (nil or
// unarmed = the exact legacy fault-free path) and waits for all of
// them. All ranks run to completion or failure; every rank's error is
// joined into the returned error, each wrapped as (or in) a
// *RankFailure naming the rank and collective, so a failing rank
// surfaces as an error — never a panic and never a hang past the
// collective timeout budget.
func RunWithFaults(size int, model CostModel, plan *FaultPlan, body func(*Comm) error) (RunStats, error) {
	if size <= 0 {
		return RunStats{}, fmt.Errorf("mpi: size must be positive, got %d", size)
	}
	w := &world{
		size:         size,
		mail:         make([]chan message, size*size),
		computeToken: make(chan struct{}, 1),
		stats:        make([]RankStats, size),
		model:        model,
		fs:           newFaultState(size, plan),
	}
	for i := range w.mail {
		w.mail[i] = make(chan message, mailDepth)
	}
	w.computeToken <- struct{}{}

	group := make([]int, size)
	for i := range group {
		group[i] = i
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = body(&Comm{w: w, group: group, me: rank})
		}(r)
	}
	wg.Wait()
	if w.fs != nil {
		for r := range w.stats {
			if w.fs.crashed[r].Load() {
				w.stats[r].Crashed = true
			}
		}
	}
	var failures []error
	for _, err := range errs {
		if err != nil {
			failures = append(failures, err)
		}
	}
	return RunStats{PerRank: w.stats}, errors.Join(failures...)
}

// Rank returns this rank's index within the communicator.
func (c *Comm) Rank() int { return c.me }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// GlobalRank returns this rank's index in the world communicator.
func (c *Comm) GlobalRank() int { return c.group[c.me] }

// enterOp is the rank-fault gate at every runtime operation: it counts
// the operation, applies an injected stall, and fires the injected
// crash. Returns nil on the fault-free path.
func (c *Comm) enterOp(op string) error {
	fs := c.w.fs
	if fs == nil {
		return nil
	}
	me := c.GlobalRank()
	fs.ops[me]++
	if fs.crashed[me].Load() {
		return &RankFailure{Rank: me, Peer: -1, Collective: op, Err: ErrCrashed}
	}
	if fs.plan.CrashRank == me && fs.ops[me] > int64(fs.plan.CrashAfterOps) {
		fs.crashed[me].Store(true)
		return &RankFailure{Rank: me, Peer: -1, Collective: op, Err: ErrCrashed}
	}
	if fs.plan.StallRank == me {
		if fs.plan.StallSleep > 0 {
			time.Sleep(fs.plan.StallSleep)
		}
		c.w.mu.Lock()
		c.w.stats[me].Stalls++
		c.w.stats[me].CommSec += fs.plan.StallSec
		c.w.mu.Unlock()
	}
	return nil
}

// TimeCompute runs f while holding the global compute token, so the
// measured section executes alone on the machine, and accounts the
// elapsed time to this rank's compute budget. f's error is returned
// unchanged — the rank-error path for a failing local kernel.
func (c *Comm) TimeCompute(f func() error) error {
	if err := c.enterOp("TimeCompute"); err != nil {
		return err
	}
	<-c.w.computeToken
	start := time.Now()
	err := f()
	sec := time.Since(start).Seconds()
	c.w.computeToken <- struct{}{}
	c.w.mu.Lock()
	c.w.stats[c.GlobalRank()].ComputeSec += sec
	c.w.mu.Unlock()
	return err
}

// chargeComm adds modeled seconds to this rank.
func (c *Comm) chargeComm(sec float64) {
	c.w.mu.Lock()
	c.w.stats[c.GlobalRank()].CommSec += sec
	c.w.mu.Unlock()
}

// Send delivers data to rank `to` of this communicator with a tag.
// Payloads are copied, so the caller may reuse the slice. Under an
// active fault plan the transfer is acked and retried; an exhausted
// retry budget or a crashed peer returns a *RankFailure.
func (c *Comm) Send(to, tag int, data []float64) error {
	if err := c.enterOp("Send"); err != nil {
		return err
	}
	return c.send("Send", to, tag, data)
}

// Recv receives the next message from rank `from` of this communicator.
// Messages between a pair arrive in FIFO order; the tag is checked and
// a mismatch panics (it indicates a protocol bug, not a runtime race).
// Under an active fault plan the wait is bounded by the plan's timeout
// budget and an expiry returns a *RankFailure.
func (c *Comm) Recv(from, tag int) ([]float64, error) {
	if err := c.enterOp("Recv"); err != nil {
		return nil, err
	}
	return c.recv("Recv", from, tag)
}

// send is the internal point-to-point transmit (no op gate — the
// calling collective already passed it).
func (c *Comm) send(op string, to, tag int, data []float64) error {
	from := c.GlobalRank()
	dst := c.group[to]
	if c.w.fs != nil {
		return c.sendReliable(op, from, dst, tag^c.tagSalt, data)
	}
	cp := append([]float64(nil), data...)
	c.w.mail[from*c.w.size+dst] <- message{tag: tag ^ c.tagSalt, data: cp}
	c.w.mu.Lock()
	c.w.stats[from].BytesSent += int64(8 * len(cp))
	c.w.mu.Unlock()
	return nil
}

// recv is the internal point-to-point receive.
func (c *Comm) recv(op string, from, tag int) ([]float64, error) {
	src := c.group[from]
	me := c.GlobalRank()
	if c.w.fs != nil {
		return c.recvReliable(op, src, me, tag^c.tagSalt)
	}
	m := <-c.w.mail[src*c.w.size+me]
	if m.tag != tag^c.tagSalt {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d",
			me, tag, src, m.tag^c.tagSalt))
	}
	return m.data, nil
}

// sendReliable transmits one sequence-numbered, checksummed message and
// waits for its ack, retrying with modeled backoff on loss. Fault
// decisions are drawn per attempt from the plan's deterministic hash.
func (c *Comm) sendReliable(op string, from, dst, wireTag int, data []float64) error {
	fs := c.w.fs
	w := c.w
	pair := from*w.size + dst
	seq := fs.sendSeq[pair]
	fs.sendSeq[pair]++
	sum := checksum(data)

	for attempt := 0; ; attempt++ {
		if fs.crashed[dst].Load() {
			return &RankFailure{Rank: from, Peer: dst, Collective: op, Err: ErrPeerCrashed}
		}
		drop := fs.plan.DropProb > 0 && fs.roll(kindDrop, from, dst, seq, attempt) < fs.plan.DropProb
		dup := fs.plan.DupProb > 0 && fs.roll(kindDup, from, dst, seq, attempt) < fs.plan.DupProb
		corr := fs.plan.CorruptProb > 0 && len(data) > 0 &&
			fs.roll(kindCorrupt, from, dst, seq, attempt) < fs.plan.CorruptProb
		delay := fs.plan.DelayProb > 0 && fs.roll(kindDelay, from, dst, seq, attempt) < fs.plan.DelayProb

		m := message{tag: wireTag, seq: seq, sum: sum, data: append([]float64(nil), data...)}
		if corr {
			corrupt(m.data, splitmix64(uint64(fs.plan.Seed)^uint64(seq)<<16^uint64(attempt)))
		}
		if delay {
			m.delaySec = fs.plan.DelaySec
		}

		copies := 0
		if drop {
			w.mu.Lock()
			w.stats[from].Drops++
			w.mu.Unlock()
		} else {
			if trySend(w.mail[pair], m) {
				copies++
			}
			if dup {
				dm := m
				dm.data = append([]float64(nil), m.data...)
				if trySend(w.mail[pair], dm) {
					copies++
					w.mu.Lock()
					w.stats[from].Dups++
					w.mu.Unlock()
				}
			}
		}
		w.mu.Lock()
		w.stats[from].BytesSent += int64(8 * len(m.data) * copies)
		if corr && copies > 0 {
			w.stats[from].Corruptions++
		}
		// Retransmissions and duplicates are traffic the base collective
		// charge does not know about; price each extra wire copy.
		extra := copies
		if attempt == 0 && copies > 0 {
			extra--
		}
		if extra > 0 {
			w.stats[from].CommSec += float64(extra) * w.model.PointToPoint(int64(8*len(m.data)))
		}
		w.mu.Unlock()

		if c.awaitAck(pair, seq) {
			return nil
		}
		w.mu.Lock()
		w.stats[from].Timeouts++
		w.mu.Unlock()
		if attempt >= fs.plan.MaxRetries {
			return &RankFailure{Rank: from, Peer: dst, Collective: op,
				Err: fmt.Errorf("send %w after %d attempts", ErrTimeout, attempt+1)}
		}
		backoff := fs.plan.BackoffSec * float64(int64(1)<<uint(attempt))
		w.mu.Lock()
		w.stats[from].Retries++
		w.stats[from].BackoffSec += backoff
		w.stats[from].CommSec += backoff
		w.mu.Unlock()
	}
}

// awaitAck waits up to the plan timeout for an ack covering seq,
// discarding stale acks from earlier (duplicated) deliveries.
func (c *Comm) awaitAck(pair int, seq int64) bool {
	fs := c.w.fs
	timer := time.NewTimer(fs.plan.Timeout)
	defer timer.Stop()
	for {
		select {
		case got := <-fs.acks[pair]:
			if got >= seq {
				return true
			}
		case <-timer.C:
			return false
		}
	}
}

// recvReliable receives the next in-sequence valid message from src,
// discarding duplicates and corrupted payloads (the missing ack makes
// the sender retry those), within the plan's receive deadline.
func (c *Comm) recvReliable(op string, src, me, wireTag int) ([]float64, error) {
	fs := c.w.fs
	w := c.w
	pair := src*w.size + me
	deadline := time.Now().Add(fs.recvDeadline())
	for {
		if fs.crashed[src].Load() {
			return nil, &RankFailure{Rank: me, Peer: src, Collective: op, Err: ErrPeerCrashed}
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			w.mu.Lock()
			w.stats[me].Timeouts++
			w.mu.Unlock()
			return nil, &RankFailure{Rank: me, Peer: src, Collective: op,
				Err: fmt.Errorf("receive %w", ErrTimeout)}
		}
		// Wake periodically so a peer crash is noticed before the full
		// deadline elapses (an early exit only; accounting is unchanged).
		poll := remaining
		if poll > 5*time.Millisecond {
			poll = 5 * time.Millisecond
		}
		timer := time.NewTimer(poll)
		select {
		case m := <-w.mail[pair]:
			timer.Stop()
			if m.seq < fs.recvSeq[pair] {
				continue // duplicate of an already-acked message
			}
			if checksum(m.data) != m.sum {
				continue // corrupted; no ack, the sender will retry
			}
			fs.recvSeq[pair] = m.seq + 1
			trySendAck(fs.acks[pair], m.seq)
			if m.delaySec > 0 {
				w.mu.Lock()
				w.stats[me].Delays++
				w.stats[me].CommSec += m.delaySec
				w.mu.Unlock()
			}
			if m.tag != wireTag {
				panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d",
					me, wireTag^c.tagSalt, src, m.tag^c.tagSalt))
			}
			return m.data, nil
		case <-timer.C:
		}
	}
}

// trySend is a non-blocking channel send; a full mailbox behaves like a
// dropped message (the retry protocol recovers it).
func trySend(ch chan message, m message) bool {
	select {
	case ch <- m:
		return true
	default:
		return false
	}
}

func trySendAck(ch chan int64, seq int64) {
	select {
	case ch <- seq:
	default:
	}
}

const (
	tagBarrier = 1 << 20
	tagGather  = 2 << 20
	tagScatter = 3 << 20
	tagSplit   = 4 << 20
)

// Barrier blocks until every rank in the communicator reaches it.
func (c *Comm) Barrier() error {
	if err := c.enterOp("Barrier"); err != nil {
		return err
	}
	p := c.Size()
	if p == 1 {
		return nil
	}
	if c.me == 0 {
		for r := 1; r < p; r++ {
			if _, err := c.recv("Barrier", r, tagBarrier); err != nil {
				return err
			}
		}
		for r := 1; r < p; r++ {
			if err := c.send("Barrier", r, tagBarrier, nil); err != nil {
				return err
			}
		}
	} else {
		if err := c.send("Barrier", 0, tagBarrier, nil); err != nil {
			return err
		}
		if _, err := c.recv("Barrier", 0, tagBarrier); err != nil {
			return err
		}
	}
	c.chargeComm(c.w.model.Barrier(p))
	return nil
}

// Allgatherv gathers every rank's (variable-length) contribution and
// returns them indexed by rank. All ranks receive identical results.
func (c *Comm) Allgatherv(mine []float64) ([][]float64, error) {
	if err := c.enterOp("Allgatherv"); err != nil {
		return nil, err
	}
	p := c.Size()
	out := make([][]float64, p)
	out[c.me] = append([]float64(nil), mine...)
	if p > 1 {
		if c.me == 0 {
			for r := 1; r < p; r++ {
				part, err := c.recv("Allgatherv", r, tagGather+r)
				if err != nil {
					return nil, err
				}
				out[r] = part
			}
			flat, lens := flatten(out)
			for r := 1; r < p; r++ {
				if err := c.send("Allgatherv", r, tagScatter, append(lens, flat...)); err != nil {
					return nil, err
				}
			}
		} else {
			if err := c.send("Allgatherv", 0, tagGather+c.me, mine); err != nil {
				return nil, err
			}
			packed, err := c.recv("Allgatherv", 0, tagScatter)
			if err != nil {
				return nil, err
			}
			unflatten(packed, p, out)
		}
	}
	var total int64
	for _, part := range out {
		total += int64(8 * len(part))
	}
	c.chargeComm(c.w.model.Allgather(p, total))
	return out, nil
}

// flatten packs parts into (lengths, data) for a single transfer.
func flatten(parts [][]float64) (flat, lens []float64) {
	lens = make([]float64, len(parts))
	for i, p := range parts {
		lens[i] = float64(len(p))
		flat = append(flat, p...)
	}
	return flat, lens
}

func unflatten(packed []float64, p int, out [][]float64) {
	lens := packed[:p]
	rest := packed[p:]
	for i := 0; i < p; i++ {
		n := int(lens[i])
		out[i] = append([]float64(nil), rest[:n]...)
		rest = rest[n:]
	}
}

// ReduceScatter element-wise sums each rank's data vector (all must
// have identical length Σ counts) and returns to rank r the segment of
// the sum described by counts[r].
func (c *Comm) ReduceScatter(data []float64, counts []int) ([]float64, error) {
	if err := c.enterOp("ReduceScatter"); err != nil {
		return nil, err
	}
	p := c.Size()
	if len(counts) != p {
		return nil, fmt.Errorf("mpi: ReduceScatter needs %d counts, got %d", p, len(counts))
	}
	total := 0
	for _, n := range counts {
		if n < 0 {
			return nil, fmt.Errorf("mpi: negative count")
		}
		total += n
	}
	if len(data) != total {
		return nil, fmt.Errorf("mpi: ReduceScatter data length %d != sum of counts %d", len(data), total)
	}
	var sum []float64
	if c.me == 0 {
		sum = append([]float64(nil), data...)
		for r := 1; r < p; r++ {
			other, err := c.recv("ReduceScatter", r, tagGather+r)
			if err != nil {
				return nil, err
			}
			for i := range sum {
				sum[i] += other[i]
			}
		}
		off := counts[0]
		for r := 1; r < p; r++ {
			if err := c.send("ReduceScatter", r, tagScatter, sum[off:off+counts[r]]); err != nil {
				return nil, err
			}
			off += counts[r]
		}
		sum = sum[:counts[0]]
	} else {
		if err := c.send("ReduceScatter", 0, tagGather+c.me, data); err != nil {
			return nil, err
		}
		var err error
		sum, err = c.recv("ReduceScatter", 0, tagScatter)
		if err != nil {
			return nil, err
		}
	}
	c.chargeComm(c.w.model.ReduceScatter(p, int64(8*total)))
	return append([]float64(nil), sum...), nil
}

// Allreduce element-wise sums data across ranks; every rank receives
// the full reduced vector.
func (c *Comm) Allreduce(data []float64) ([]float64, error) {
	if err := c.enterOp("Allreduce"); err != nil {
		return nil, err
	}
	p := c.Size()
	out := append([]float64(nil), data...)
	if p > 1 {
		if c.me == 0 {
			for r := 1; r < p; r++ {
				other, err := c.recv("Allreduce", r, tagGather+r)
				if err != nil {
					return nil, err
				}
				for i := range out {
					out[i] += other[i]
				}
			}
			for r := 1; r < p; r++ {
				if err := c.send("Allreduce", r, tagScatter, out); err != nil {
					return nil, err
				}
			}
		} else {
			if err := c.send("Allreduce", 0, tagGather+c.me, data); err != nil {
				return nil, err
			}
			var err error
			out, err = c.recv("Allreduce", 0, tagScatter)
			if err != nil {
				return nil, err
			}
		}
	}
	c.chargeComm(c.w.model.Allreduce(p, int64(8*len(data))))
	return out, nil
}

// Split partitions the communicator: ranks passing the same color form
// a new communicator, ordered by (key, rank). Every rank must call it.
func (c *Comm) Split(color, key int) (*Comm, error) {
	p := c.Size()
	// Exchange (color, key) via an allgather of two-element vectors.
	pairs, err := c.Allgatherv([]float64{float64(color), float64(key)})
	if err != nil {
		return nil, err
	}
	type member struct{ color, key, rank int }
	var mine []member
	for r := 0; r < p; r++ {
		mc, mk := int(pairs[r][0]), int(pairs[r][1])
		if mc == color {
			mine = append(mine, member{mc, mk, r})
		}
	}
	sort.Slice(mine, func(a, b int) bool {
		if mine[a].key != mine[b].key {
			return mine[a].key < mine[b].key
		}
		return mine[a].rank < mine[b].rank
	})
	group := make([]int, len(mine))
	me := -1
	for i, m := range mine {
		group[i] = c.group[m.rank]
		if m.rank == c.me {
			me = i
		}
	}
	return &Comm{w: c.w, group: group, me: me, tagSalt: c.tagSalt ^ (color+1)*0x9e37}, nil
}
