// Package mpi is an in-process message-passing runtime standing in for
// MPI in the distributed experiments (Sec. VI-D). Ranks run as
// goroutines; point-to-point messages travel over channels; the
// collectives the distributed MTTKRP needs (Barrier, Allgatherv,
// ReduceScatter, Allreduce, Split) are built on top.
//
// Because the reproduction host has a single core, wall-clock time of
// concurrently running ranks is meaningless. The runtime therefore
// separates the two components of the modeled execution time:
//
//   - compute: each rank wraps its kernel in Comm.TimeCompute, which
//     serialises ranks on one global token so the measured section runs
//     alone and the measurement is clean;
//   - communication: every collective records its logical operation and
//     byte volume; an α-β CostModel converts those into modeled seconds
//     per rank.
//
// The data movement itself is real — collectives actually move the
// bytes between goroutines — so correctness is testable independently
// of the time model.
package mpi

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// message is one point-to-point transfer.
type message struct {
	tag  int
	data []float64
}

// world is the shared state of one Run.
type world struct {
	size int
	// mail[from*size+to] carries messages in FIFO order.
	mail []chan message

	computeToken chan struct{}

	mu    sync.Mutex
	stats []RankStats

	model CostModel
}

// RankStats aggregates one rank's accounted costs.
type RankStats struct {
	ComputeSec float64
	CommSec    float64
	BytesSent  int64 // point-to-point payload bytes this rank sent
}

// RunStats is returned by Run.
type RunStats struct {
	PerRank []RankStats
}

// ModeledSeconds returns the modeled parallel execution time:
// max over ranks of (compute + modeled communication).
func (s RunStats) ModeledSeconds() float64 {
	var worst float64
	for _, r := range s.PerRank {
		if t := r.ComputeSec + r.CommSec; t > worst {
			worst = t
		}
	}
	return worst
}

// TotalBytes sums point-to-point bytes across ranks.
func (s RunStats) TotalBytes() int64 {
	var b int64
	for _, r := range s.PerRank {
		b += r.BytesSent
	}
	return b
}

// Comm is a communicator: a subset of ranks that can exchange messages
// and run collectives. The initial communicator spans all ranks.
type Comm struct {
	w *world
	// group lists the global ranks in this communicator, sorted.
	group []int
	// me is this rank's index within group.
	me int
	// tagSalt namespaces collective traffic per communicator so
	// concurrent collectives on different communicators don't collide.
	tagSalt int
}

// Run starts size ranks, each executing body with its own communicator
// over the world, and waits for all of them. The first non-nil error is
// returned (all ranks still run to completion or failure).
func Run(size int, model CostModel, body func(*Comm) error) (RunStats, error) {
	if size <= 0 {
		return RunStats{}, fmt.Errorf("mpi: size must be positive, got %d", size)
	}
	w := &world{
		size:         size,
		mail:         make([]chan message, size*size),
		computeToken: make(chan struct{}, 1),
		stats:        make([]RankStats, size),
		model:        model,
	}
	for i := range w.mail {
		// Generous buffering: our collectives have at most one message
		// in flight per (src, dst) pair, but user code may pipeline.
		w.mail[i] = make(chan message, 64)
	}
	w.computeToken <- struct{}{}

	group := make([]int, size)
	for i := range group {
		group[i] = i
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = body(&Comm{w: w, group: group, me: rank})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return RunStats{PerRank: w.stats}, err
		}
	}
	return RunStats{PerRank: w.stats}, nil
}

// Rank returns this rank's index within the communicator.
func (c *Comm) Rank() int { return c.me }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// GlobalRank returns this rank's index in the world communicator.
func (c *Comm) GlobalRank() int { return c.group[c.me] }

// TimeCompute runs f while holding the global compute token, so the
// measured section executes alone on the machine, and accounts the
// elapsed time to this rank's compute budget.
func (c *Comm) TimeCompute(f func()) {
	<-c.w.computeToken
	start := time.Now()
	f()
	sec := time.Since(start).Seconds()
	c.w.computeToken <- struct{}{}
	c.w.mu.Lock()
	c.w.stats[c.GlobalRank()].ComputeSec += sec
	c.w.mu.Unlock()
}

// chargeComm adds modeled seconds to this rank.
func (c *Comm) chargeComm(sec float64) {
	c.w.mu.Lock()
	c.w.stats[c.GlobalRank()].CommSec += sec
	c.w.mu.Unlock()
}

// Send delivers data to rank `to` of this communicator with a tag.
// Payloads are copied, so the caller may reuse the slice.
func (c *Comm) Send(to, tag int, data []float64) {
	cp := append([]float64(nil), data...)
	from := c.GlobalRank()
	dst := c.group[to]
	c.w.mail[from*c.w.size+dst] <- message{tag: tag ^ c.tagSalt, data: cp}
	c.w.mu.Lock()
	c.w.stats[from].BytesSent += int64(8 * len(cp))
	c.w.mu.Unlock()
}

// Recv receives the next message from rank `from` of this communicator.
// Messages between a pair arrive in FIFO order; the tag is checked and
// a mismatch panics (it indicates a protocol bug, not a runtime race).
func (c *Comm) Recv(from, tag int) []float64 {
	src := c.group[from]
	m := <-c.w.mail[src*c.w.size+c.GlobalRank()]
	if m.tag != tag^c.tagSalt {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d",
			c.GlobalRank(), tag, src, m.tag^c.tagSalt))
	}
	return m.data
}

const (
	tagBarrier = 1 << 20
	tagGather  = 2 << 20
	tagScatter = 3 << 20
	tagSplit   = 4 << 20
)

// Barrier blocks until every rank in the communicator reaches it.
func (c *Comm) Barrier() {
	p := c.Size()
	if p == 1 {
		return
	}
	if c.me == 0 {
		for r := 1; r < p; r++ {
			c.Recv(r, tagBarrier)
		}
		for r := 1; r < p; r++ {
			c.Send(r, tagBarrier, nil)
		}
	} else {
		c.Send(0, tagBarrier, nil)
		c.Recv(0, tagBarrier)
	}
	c.chargeComm(c.w.model.Barrier(p))
}

// Allgatherv gathers every rank's (variable-length) contribution and
// returns them indexed by rank. All ranks receive identical results.
func (c *Comm) Allgatherv(mine []float64) [][]float64 {
	p := c.Size()
	out := make([][]float64, p)
	out[c.me] = append([]float64(nil), mine...)
	if p > 1 {
		if c.me == 0 {
			for r := 1; r < p; r++ {
				out[r] = c.Recv(r, tagGather+r)
			}
			flat, lens := flatten(out)
			for r := 1; r < p; r++ {
				c.Send(r, tagScatter, append(lens, flat...))
			}
		} else {
			c.Send(0, tagGather+c.me, mine)
			packed := c.Recv(0, tagScatter)
			unflatten(packed, p, out)
		}
	}
	var total int64
	for _, part := range out {
		total += int64(8 * len(part))
	}
	c.chargeComm(c.w.model.Allgather(p, total))
	return out
}

// flatten packs parts into (lengths, data) for a single transfer.
func flatten(parts [][]float64) (flat, lens []float64) {
	lens = make([]float64, len(parts))
	for i, p := range parts {
		lens[i] = float64(len(p))
		flat = append(flat, p...)
	}
	return flat, lens
}

func unflatten(packed []float64, p int, out [][]float64) {
	lens := packed[:p]
	rest := packed[p:]
	for i := 0; i < p; i++ {
		n := int(lens[i])
		out[i] = append([]float64(nil), rest[:n]...)
		rest = rest[n:]
	}
}

// ReduceScatter element-wise sums each rank's data vector (all must
// have identical length Σ counts) and returns to rank r the segment of
// the sum described by counts[r].
func (c *Comm) ReduceScatter(data []float64, counts []int) ([]float64, error) {
	p := c.Size()
	if len(counts) != p {
		return nil, fmt.Errorf("mpi: ReduceScatter needs %d counts, got %d", p, len(counts))
	}
	total := 0
	for _, n := range counts {
		if n < 0 {
			return nil, fmt.Errorf("mpi: negative count")
		}
		total += n
	}
	if len(data) != total {
		return nil, fmt.Errorf("mpi: ReduceScatter data length %d != sum of counts %d", len(data), total)
	}
	var sum []float64
	if c.me == 0 {
		sum = append([]float64(nil), data...)
		for r := 1; r < p; r++ {
			other := c.Recv(r, tagGather+r)
			for i := range sum {
				sum[i] += other[i]
			}
		}
		off := counts[0]
		for r := 1; r < p; r++ {
			c.Send(r, tagScatter, sum[off:off+counts[r]])
			off += counts[r]
		}
		sum = sum[:counts[0]]
	} else {
		c.Send(0, tagGather+c.me, data)
		sum = c.Recv(0, tagScatter)
	}
	c.chargeComm(c.w.model.ReduceScatter(p, int64(8*total)))
	return append([]float64(nil), sum...), nil
}

// Allreduce element-wise sums data across ranks; every rank receives
// the full reduced vector.
func (c *Comm) Allreduce(data []float64) []float64 {
	p := c.Size()
	out := append([]float64(nil), data...)
	if p > 1 {
		if c.me == 0 {
			for r := 1; r < p; r++ {
				other := c.Recv(r, tagGather+r)
				for i := range out {
					out[i] += other[i]
				}
			}
			for r := 1; r < p; r++ {
				c.Send(r, tagScatter, out)
			}
		} else {
			c.Send(0, tagGather+c.me, data)
			out = c.Recv(0, tagScatter)
		}
	}
	c.chargeComm(c.w.model.Allreduce(p, int64(8*len(data))))
	return out
}

// Split partitions the communicator: ranks passing the same color form
// a new communicator, ordered by (key, rank). Every rank must call it.
func (c *Comm) Split(color, key int) *Comm {
	p := c.Size()
	// Exchange (color, key) via an allgather of two-element vectors.
	pairs := c.Allgatherv([]float64{float64(color), float64(key)})
	type member struct{ color, key, rank int }
	var mine []member
	for r := 0; r < p; r++ {
		mc, mk := int(pairs[r][0]), int(pairs[r][1])
		if mc == color {
			mine = append(mine, member{mc, mk, r})
		}
	}
	sort.Slice(mine, func(a, b int) bool {
		if mine[a].key != mine[b].key {
			return mine[a].key < mine[b].key
		}
		return mine[a].rank < mine[b].rank
	})
	group := make([]int, len(mine))
	me := -1
	for i, m := range mine {
		group[i] = c.group[m.rank]
		if m.rank == c.me {
			me = i
		}
	}
	return &Comm{w: c.w, group: group, me: me, tagSalt: c.tagSalt ^ (color+1)*0x9e37}
}
