package mpi

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunValidatesSize(t *testing.T) {
	if _, err := Run(0, Zero(), func(c *Comm) error { return nil }); err == nil {
		t.Fatal("size 0 accepted")
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	_, err := Run(4, Zero(), func(c *Comm) error {
		if c.Rank() == 2 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
}

func TestRunRecoversPanics(t *testing.T) {
	_, err := Run(2, Zero(), func(c *Comm) error {
		if c.Rank() == 1 {
			panic("kaboom")
		}
		// Rank 0 must not deadlock on a dead partner in this test, so
		// it does no communication.
		return nil
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestSendRecvFIFO(t *testing.T) {
	_, err := Run(2, Zero(), func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2})
			c.Send(1, 7, []float64{3})
			return nil
		}
		first, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		second, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if len(first) != 2 || first[0] != 1 || len(second) != 1 || second[0] != 3 {
			return fmt.Errorf("FIFO violated: %v then %v", first, second)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	_, err := Run(2, Zero(), func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = -1 // mutate after send
			c.Barrier()
			return nil
		}
		got, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		c.Barrier()
		if got[0] != 42 {
			return fmt.Errorf("payload aliased: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronises(t *testing.T) {
	var counter atomic.Int64
	_, err := Run(8, Zero(), func(c *Comm) error {
		counter.Add(1)
		c.Barrier()
		if got := counter.Load(); got != 8 {
			return fmt.Errorf("rank %d passed barrier with counter %d", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherv(t *testing.T) {
	_, err := Run(5, Zero(), func(c *Comm) error {
		mine := make([]float64, c.Rank()+1) // variable lengths
		for i := range mine {
			mine[i] = float64(c.Rank()*100 + i)
		}
		all, err := c.Allgatherv(mine)
		if err != nil {
			return err
		}
		if len(all) != 5 {
			return fmt.Errorf("got %d parts", len(all))
		}
		for r, part := range all {
			if len(part) != r+1 {
				return fmt.Errorf("part %d has %d entries", r, len(part))
			}
			for i, v := range part {
				if v != float64(r*100+i) {
					return fmt.Errorf("part %d[%d] = %v", r, i, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatter(t *testing.T) {
	_, err := Run(4, Zero(), func(c *Comm) error {
		// Everyone contributes [rank, rank, rank, rank, ...] over 10 elements.
		data := make([]float64, 10)
		for i := range data {
			data[i] = float64(c.Rank() + 1)
		}
		counts := []int{1, 2, 3, 4}
		part, err := c.ReduceScatter(data, counts)
		if err != nil {
			return err
		}
		if len(part) != counts[c.Rank()] {
			return fmt.Errorf("rank %d got %d elements, want %d", c.Rank(), len(part), counts[c.Rank()])
		}
		for _, v := range part {
			if v != 1+2+3+4 {
				return fmt.Errorf("rank %d got %v, want 10", c.Rank(), v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterValidation(t *testing.T) {
	_, err := Run(2, Zero(), func(c *Comm) error {
		if _, err := c.ReduceScatter([]float64{1}, []int{1}); err == nil {
			return fmt.Errorf("bad counts accepted")
		}
		if _, err := c.ReduceScatter([]float64{1}, []int{1, 3}); err == nil {
			return fmt.Errorf("bad data length accepted")
		}
		return nil
	})
	// The runtime itself reports the deliberate failures, but ranks may
	// deadlock-free exit; only assert no unexpected error text.
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduce(t *testing.T) {
	_, err := Run(6, Zero(), func(c *Comm) error {
		out, err := c.Allreduce([]float64{float64(c.Rank()), 1})
		if err != nil {
			return err
		}
		if out[0] != 15 || out[1] != 6 {
			return fmt.Errorf("allreduce = %v", out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitFormsGroups(t *testing.T) {
	_, err := Run(6, Zero(), func(c *Comm) error {
		color := c.Rank() % 2
		sub, err := c.Split(color, c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			return fmt.Errorf("subcomm size %d", sub.Size())
		}
		// Collectives within the subgroup see only its members.
		all, err := sub.Allgatherv([]float64{float64(c.Rank())})
		if err != nil {
			return err
		}
		for i, part := range all {
			want := float64(color + 2*i)
			if part[0] != want {
				return fmt.Errorf("subgroup member %d is %v, want %v", i, part[0], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyOrdersRanks(t *testing.T) {
	_, err := Run(4, Zero(), func(c *Comm) error {
		// Reverse order via key.
		sub, err := c.Split(0, -c.Rank())
		if err != nil {
			return err
		}
		wantIdx := 3 - c.Rank()
		if sub.Rank() != wantIdx {
			return fmt.Errorf("global %d got sub rank %d, want %d", c.Rank(), sub.Rank(), wantIdx)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTimeComputeAccounting(t *testing.T) {
	stats, err := Run(3, Zero(), func(c *Comm) error {
		return c.TimeCompute(func() error {
			s := 0.0
			for i := 0; i < 100000; i++ {
				s += float64(i)
			}
			_ = s
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, rs := range stats.PerRank {
		if rs.ComputeSec <= 0 {
			t.Fatalf("rank %d compute time not recorded", r)
		}
	}
	if stats.ModeledSeconds() <= 0 {
		t.Fatal("modeled time zero")
	}
}

func TestBytesAccounting(t *testing.T) {
	stats, err := Run(2, DefaultCluster(), func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 100))
		} else {
			c.Recv(0, 0)
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PerRank[0].BytesSent < 800 {
		t.Fatalf("rank 0 sent %d bytes, want >= 800", stats.PerRank[0].BytesSent)
	}
	if stats.TotalBytes() < 800 {
		t.Fatal("total bytes wrong")
	}
	// Collectives with a real cost model must charge comm seconds.
	if stats.PerRank[0].CommSec <= 0 {
		t.Fatal("no comm time charged")
	}
}

func TestCostModelFormulas(t *testing.T) {
	m := CostModel{LatencySec: 1e-6, BytesPerSec: 1e9}
	if got := m.PointToPoint(1e9); math.Abs(got-(1e-6+1)) > 1e-9 {
		t.Fatalf("p2p = %v", got)
	}
	if m.PointToPoint(-5) != 1e-6 {
		t.Fatal("negative bytes not clamped")
	}
	if m.Allgather(1, 100) != 0 || m.ReduceScatter(1, 100) != 0 || m.Allreduce(1, 100) != 0 {
		t.Fatal("single-rank collectives must be free")
	}
	// Ring allgather of total 8 bytes on 4 ranks: 3α + (3/4)*8/B.
	want := 3e-6 + 6/1e9
	if got := m.Allgather(4, 8); math.Abs(got-want) > 1e-15 {
		t.Fatalf("allgather = %v, want %v", got, want)
	}
	// Allreduce = RS + AG.
	if got := m.Allreduce(4, 8); math.Abs(got-2*want) > 1e-15 {
		t.Fatalf("allreduce = %v, want %v", got, 2*want)
	}
	if m.Barrier(8) != 3e-6 {
		t.Fatalf("barrier = %v", m.Barrier(8))
	}
	if Zero().Allgather(4, 1<<30) != 0 {
		t.Fatal("zero model should be free")
	}
}

// Property: Allreduce equals the local sum of all contributions, for
// arbitrary rank counts and vectors.
func TestQuickAllreduceIsSum(t *testing.T) {
	f := func(pp uint8, seed int64) bool {
		p := int(pp%6) + 1
		n := int((seed%7+7)%7) + 1
		ok := true
		_, err := Run(p, Zero(), func(c *Comm) error {
			data := make([]float64, n)
			for i := range data {
				data[i] = float64(c.Rank()*n + i)
			}
			got, err := c.Allreduce(data)
			if err != nil {
				return err
			}
			for i := range got {
				var want float64
				for r := 0; r < p; r++ {
					want += float64(r*n + i)
				}
				if got[i] != want {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
