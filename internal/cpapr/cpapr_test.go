package cpapr

import (
	"math"
	"math/rand"
	"testing"

	"spblock/internal/gen"
	"spblock/internal/la"
	"spblock/internal/tensor"
)

// plantedCounts builds a small dense count tensor from a nonnegative
// rank-r Kruskal model, rounding model values to integers.
func plantedCounts(seed int64, dims tensor.Dims, r int) *tensor.COO {
	rng := rand.New(rand.NewSource(seed))
	var f [3]*la.Matrix
	for n := 0; n < 3; n++ {
		f[n] = la.NewMatrix(dims[n], r)
		for i := range f[n].Data {
			f[n].Data[i] = 2 * rng.Float64()
		}
	}
	t := tensor.NewCOO(dims, 0)
	for i := 0; i < dims[0]; i++ {
		for j := 0; j < dims[1]; j++ {
			for k := 0; k < dims[2]; k++ {
				var m float64
				for q := 0; q < r; q++ {
					m += f[0].At(i, q) * f[1].At(j, q) * f[2].At(k, q)
				}
				v := math.Round(m)
				if v > 0 {
					t.Append(tensor.Index(i), tensor.Index(j), tensor.Index(k), v)
				}
			}
		}
	}
	return t
}

func TestValidation(t *testing.T) {
	x := plantedCounts(1, tensor.Dims{4, 4, 4}, 2)
	if _, err := Decompose(x, Options{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	neg := tensor.NewCOO(tensor.Dims{2, 2, 2}, 0)
	neg.Append(0, 0, 0, -1)
	if _, err := Decompose(neg, Options{Rank: 2}); err == nil {
		t.Fatal("negative values accepted")
	}
	bad := tensor.NewCOO(tensor.Dims{2, 2, 2}, 0)
	bad.Append(5, 0, 0, 1)
	if _, err := Decompose(bad, Options{Rank: 2}); err == nil {
		t.Fatal("invalid tensor accepted")
	}
}

func TestKLDecreasesMonotonically(t *testing.T) {
	// Multiplicative updates for KL are provably monotone; the
	// objective must never increase beyond numerical noise.
	x := plantedCounts(2, tensor.Dims{10, 9, 8}, 3)
	res, err := Decompose(x, Options{Rank: 3, MaxIters: 40, Tol: 1e-15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KL) < 5 {
		t.Fatalf("only %d sweeps ran", len(res.KL))
	}
	for i := 1; i < len(res.KL); i++ {
		if res.KL[i] > res.KL[i-1]+1e-6*math.Abs(res.KL[i-1]) {
			t.Fatalf("KL increased at sweep %d: %v -> %v", i, res.KL[i-1], res.KL[i])
		}
	}
}

func TestFactorsStayNonnegative(t *testing.T) {
	x := plantedCounts(4, tensor.Dims{8, 8, 8}, 2)
	res, err := Decompose(x, Options{Rank: 4, MaxIters: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for n, f := range res.Factors {
		for _, v := range f.Data {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("factor %d contains %v", n, v)
			}
		}
	}
}

func TestRecoversPlantedModel(t *testing.T) {
	dims := tensor.Dims{9, 8, 7}
	x := plantedCounts(6, dims, 2)
	res, err := Decompose(x, Options{Rank: 2, MaxIters: 300, Tol: 1e-12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// The fitted model should reproduce the stored counts to well under
	// one count on average (the data is exactly low-rank up to
	// rounding).
	var errSum, n float64
	for p := 0; p < x.NNZ(); p++ {
		m := res.ModelValue(int(x.I[p]), int(x.J[p]), int(x.K[p]))
		errSum += math.Abs(m - x.Val[p])
		n++
	}
	if mean := errSum / n; mean > 0.5 {
		t.Fatalf("mean absolute model error %v, want < 0.5 counts", mean)
	}
}

func TestConvergenceFlag(t *testing.T) {
	x := plantedCounts(8, tensor.Dims{6, 6, 6}, 1)
	res, err := Decompose(x, Options{Rank: 1, MaxIters: 500, Tol: 1e-8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d sweeps (KL %v)", res.Iters, res.FinalKL())
	}
	if res.Iters >= 500 {
		t.Fatal("converged flag with all iterations used")
	}
}

func TestOnGeneratedPoissonData(t *testing.T) {
	// End-to-end with the paper's data generator: decompose a Poisson
	// count tensor sampled from a 4-component mixture; KL must improve
	// substantially over the initial guess.
	x, err := gen.Poisson(gen.PoissonParams{
		Dims: tensor.Dims{40, 40, 40}, Events: 8000, Components: 4, Spread: 0.3,
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decompose(x, Options{Rank: 4, MaxIters: 60, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KL) < 2 {
		t.Fatal("too few sweeps")
	}
	first, last := res.KL[0], res.FinalKL()
	if !(last < first) {
		t.Fatalf("KL did not improve: %v -> %v", first, last)
	}
	if math.IsNaN(last) || math.IsInf(last, 0) {
		t.Fatalf("non-finite objective %v", last)
	}
}

func TestObjectiveMatchesBruteForce(t *testing.T) {
	// The collapsed Σ m_full term must equal the dense enumeration.
	rng := rand.New(rand.NewSource(14))
	dims := tensor.Dims{5, 4, 3}
	var f [3]*la.Matrix
	for n := 0; n < 3; n++ {
		f[n] = la.NewMatrix(dims[n], 2)
		for i := range f[n].Data {
			f[n].Data[i] = rng.Float64() + 0.1
		}
	}
	x := tensor.NewCOO(dims, 0)
	x.Append(1, 2, 0, 3)
	x.Append(4, 0, 2, 1)

	got := Objective(x, f)
	var want float64
	for i := 0; i < dims[0]; i++ {
		for j := 0; j < dims[1]; j++ {
			for k := 0; k < dims[2]; k++ {
				var m float64
				for q := 0; q < 2; q++ {
					m += f[0].At(i, q) * f[1].At(j, q) * f[2].At(k, q)
				}
				want += m
			}
		}
	}
	for p := 0; p < x.NNZ(); p++ {
		var m float64
		for q := 0; q < 2; q++ {
			m += f[0].At(int(x.I[p]), q) * f[1].At(int(x.J[p]), q) * f[2].At(int(x.K[p]), q)
		}
		want -= x.Val[p] * math.Log(m)
	}
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("Objective = %v, brute force = %v", got, want)
	}
}

func TestFinalKLBeforeRun(t *testing.T) {
	r := &Result{}
	if !math.IsInf(r.FinalKL(), 1) {
		t.Fatal("FinalKL before any sweep should be +Inf")
	}
}
