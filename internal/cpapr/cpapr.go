// Package cpapr implements a Poisson (KL-divergence) nonnegative CP
// decomposition with multiplicative updates — the model family behind
// the paper's synthetic data: Sec. VI-A2 generates its Poisson tensors
// "using the same method presented in" Chi & Kolda ("On tensors,
// sparsity, and nonnegative factorizations") and Hansen et al., whose
// decompositions minimise the KL divergence rather than the Frobenius
// norm, because count data is Poisson- not Gaussian-distributed.
//
// The multiplicative-update (Lee–Seung style) rule per mode is
//
//	A ← A ∘ ((X ⊘ M)₍₁₎ · Π) ⊘ (1 · Π)
//
// where M is the current model and Π the Khatri-Rao product of the
// other factors. Its sparse form only evaluates the model at the
// nonzeros — per nonzero (i,j,k): m = Σ_r a_ir·b_jr·c_kr, then
// Φ[i,r] += (x/m)·b_jr·c_kr — the same access pattern as MTTKRP with
// one extra inner product, so everything the paper says about MTTKRP's
// memory behaviour applies here too.
package cpapr

import (
	"fmt"
	"math"
	"math/rand"

	"spblock/internal/la"
	"spblock/internal/tensor"
)

// Options configures the decomposition.
type Options struct {
	// Rank is the decomposition rank R. Required.
	Rank int
	// MaxIters bounds the multiplicative-update sweeps. Default 100.
	MaxIters int
	// Tol stops iteration when the KL objective improves by less than
	// this relative amount. Default 1e-6.
	Tol float64
	// MinValue clamps factor entries away from zero so multiplicative
	// updates cannot get permanently stuck. Default 1e-12.
	MinValue float64
	// Seed drives the random positive initialisation.
	Seed int64
}

// Result holds the fitted nonnegative Kruskal tensor.
type Result struct {
	Factors [3]*la.Matrix
	// KL records the objective Σ m − Σ x·log m (the Poisson negative
	// log-likelihood up to an x-only constant) after each sweep.
	KL        []float64
	Iters     int
	Converged bool
}

// FinalKL returns the last objective value (or +Inf before any sweep).
func (r *Result) FinalKL() float64 {
	if len(r.KL) == 0 {
		return math.Inf(1)
	}
	return r.KL[len(r.KL)-1]
}

// Decompose fits a rank-R nonnegative model to the count tensor t.
// All values must be nonnegative.
func Decompose(t *tensor.COO, opts Options) (*Result, error) {
	if opts.Rank <= 0 {
		return nil, fmt.Errorf("cpapr: rank must be positive, got %d", opts.Rank)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	for _, v := range t.Val {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("cpapr: negative or NaN value %v (KL needs counts)", v)
		}
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 100
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}
	if opts.MinValue <= 0 {
		opts.MinValue = 1e-12
	}
	r := opts.Rank

	rng := rand.New(rand.NewSource(opts.Seed))
	res := &Result{}
	for n := 0; n < 3; n++ {
		m := la.NewMatrix(t.Dims[n], r)
		for i := range m.Data {
			m.Data[i] = rng.Float64() + 0.1
		}
		res.Factors[n] = m
	}

	phi := [3]*la.Matrix{}
	for n := 0; n < 3; n++ {
		phi[n] = la.NewMatrix(t.Dims[n], r)
	}

	prev := math.Inf(1)
	for iter := 0; iter < opts.MaxIters; iter++ {
		for n := 0; n < 3; n++ {
			updateMode(t, res.Factors, phi[n], n, opts.MinValue)
		}
		kl := Objective(t, res.Factors)
		res.KL = append(res.KL, kl)
		res.Iters = iter + 1
		if iter > 0 {
			denom := math.Abs(prev)
			if denom < 1 {
				denom = 1
			}
			if (prev-kl)/denom < opts.Tol {
				res.Converged = true
				break
			}
		}
		prev = kl
	}
	return res, nil
}

// updateMode applies one multiplicative update to factors[mode].
func updateMode(t *tensor.COO, factors [3]*la.Matrix, phi *la.Matrix, mode int, minVal float64) {
	r := phi.Cols
	phi.Zero()
	a, b, c := factors[0], factors[1], factors[2]
	// Numerator: Φ = (X ⊘ M)₍mode₎ · Π, sparsely.
	for p := 0; p < t.NNZ(); p++ {
		arow := a.Row(int(t.I[p]))
		brow := b.Row(int(t.J[p]))
		crow := c.Row(int(t.K[p]))
		var m float64
		for q := 0; q < r; q++ {
			m += arow[q] * brow[q] * crow[q]
		}
		if m < minVal {
			m = minVal
		}
		ratio := t.Val[p] / m
		if ratio == 0 {
			continue
		}
		var dst, o1, o2 []float64
		switch mode {
		case 0:
			dst, o1, o2 = phi.Row(int(t.I[p])), brow, crow
		case 1:
			dst, o1, o2 = phi.Row(int(t.J[p])), arow, crow
		default:
			dst, o1, o2 = phi.Row(int(t.K[p])), arow, brow
		}
		for q := 0; q < r; q++ {
			dst[q] += ratio * o1[q] * o2[q]
		}
	}
	// Denominator: column sums of Π = product of the other factors'
	// column sums.
	denom := make([]float64, r)
	for q := 0; q < r; q++ {
		denom[q] = 1
	}
	for other := 0; other < 3; other++ {
		if other == mode {
			continue
		}
		sums := columnSums(factors[other])
		for q := 0; q < r; q++ {
			denom[q] *= sums[q]
		}
	}
	f := factors[mode]
	for i := 0; i < f.Rows; i++ {
		frow, prow := f.Row(i), phi.Row(i)
		for q := 0; q < r; q++ {
			d := denom[q]
			if d < minVal {
				d = minVal
			}
			frow[q] *= prow[q] / d
			if frow[q] < minVal {
				frow[q] = minVal
			}
		}
	}
}

func columnSums(m *la.Matrix) []float64 {
	s := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for q := range row {
			s[q] += row[q]
		}
	}
	return s
}

// Objective evaluates Σ m_full − Σ_nnz x·log m: the Poisson deviance up
// to the x-only constant Σ (x·log x − x). Lower is better. The dense
// Σ m_full term collapses to Σ_r Π_n (column sum of factor n).
func Objective(t *tensor.COO, factors [3]*la.Matrix) float64 {
	r := factors[0].Cols
	var total float64
	sums := [3][]float64{}
	for n := 0; n < 3; n++ {
		sums[n] = columnSums(factors[n])
	}
	for q := 0; q < r; q++ {
		total += sums[0][q] * sums[1][q] * sums[2][q]
	}
	a, b, c := factors[0], factors[1], factors[2]
	for p := 0; p < t.NNZ(); p++ {
		if t.Val[p] == 0 {
			continue
		}
		arow := a.Row(int(t.I[p]))
		brow := b.Row(int(t.J[p]))
		crow := c.Row(int(t.K[p]))
		var m float64
		for q := 0; q < r; q++ {
			m += arow[q] * brow[q] * crow[q]
		}
		if m < 1e-300 {
			m = 1e-300
		}
		total -= t.Val[p] * math.Log(m)
	}
	return total
}

// ModelValue evaluates the fitted model at one coordinate.
func (r *Result) ModelValue(i, j, k int) float64 {
	var m float64
	for q := 0; q < r.Factors[0].Cols; q++ {
		m += r.Factors[0].At(i, q) * r.Factors[1].At(j, q) * r.Factors[2].At(k, q)
	}
	return m
}
